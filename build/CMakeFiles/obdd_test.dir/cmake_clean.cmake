file(REMOVE_RECURSE
  "CMakeFiles/obdd_test.dir/tests/obdd_test.cc.o"
  "CMakeFiles/obdd_test.dir/tests/obdd_test.cc.o.d"
  "obdd_test"
  "obdd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obdd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
