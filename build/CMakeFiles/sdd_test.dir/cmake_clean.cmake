file(REMOVE_RECURSE
  "CMakeFiles/sdd_test.dir/tests/sdd_test.cc.o"
  "CMakeFiles/sdd_test.dir/tests/sdd_test.cc.o.d"
  "sdd_test"
  "sdd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
