# Empty dependencies file for ctsdd.
# This may be replaced when dependencies are built.
