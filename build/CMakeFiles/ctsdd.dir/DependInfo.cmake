
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/builder.cc" "CMakeFiles/ctsdd.dir/src/circuit/builder.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/circuit/builder.cc.o.d"
  "/root/repo/src/circuit/circuit.cc" "CMakeFiles/ctsdd.dir/src/circuit/circuit.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/circuit/circuit.cc.o.d"
  "/root/repo/src/circuit/eval.cc" "CMakeFiles/ctsdd.dir/src/circuit/eval.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/circuit/eval.cc.o.d"
  "/root/repo/src/circuit/families.cc" "CMakeFiles/ctsdd.dir/src/circuit/families.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/circuit/families.cc.o.d"
  "/root/repo/src/circuit/io.cc" "CMakeFiles/ctsdd.dir/src/circuit/io.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/circuit/io.cc.o.d"
  "/root/repo/src/circuit/primal_graph.cc" "CMakeFiles/ctsdd.dir/src/circuit/primal_graph.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/circuit/primal_graph.cc.o.d"
  "/root/repo/src/circuit/tseitin.cc" "CMakeFiles/ctsdd.dir/src/circuit/tseitin.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/circuit/tseitin.cc.o.d"
  "/root/repo/src/compile/factor_compile.cc" "CMakeFiles/ctsdd.dir/src/compile/factor_compile.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/compile/factor_compile.cc.o.d"
  "/root/repo/src/compile/isa.cc" "CMakeFiles/ctsdd.dir/src/compile/isa.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/compile/isa.cc.o.d"
  "/root/repo/src/compile/pipeline.cc" "CMakeFiles/ctsdd.dir/src/compile/pipeline.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/compile/pipeline.cc.o.d"
  "/root/repo/src/compile/sdd_canonical.cc" "CMakeFiles/ctsdd.dir/src/compile/sdd_canonical.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/compile/sdd_canonical.cc.o.d"
  "/root/repo/src/compile/widths.cc" "CMakeFiles/ctsdd.dir/src/compile/widths.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/compile/widths.cc.o.d"
  "/root/repo/src/db/database.cc" "CMakeFiles/ctsdd.dir/src/db/database.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/db/database.cc.o.d"
  "/root/repo/src/db/inversion.cc" "CMakeFiles/ctsdd.dir/src/db/inversion.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/db/inversion.cc.o.d"
  "/root/repo/src/db/lineage.cc" "CMakeFiles/ctsdd.dir/src/db/lineage.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/db/lineage.cc.o.d"
  "/root/repo/src/db/query.cc" "CMakeFiles/ctsdd.dir/src/db/query.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/db/query.cc.o.d"
  "/root/repo/src/db/query_compile.cc" "CMakeFiles/ctsdd.dir/src/db/query_compile.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/db/query_compile.cc.o.d"
  "/root/repo/src/func/bool_func.cc" "CMakeFiles/ctsdd.dir/src/func/bool_func.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/func/bool_func.cc.o.d"
  "/root/repo/src/func/factor.cc" "CMakeFiles/ctsdd.dir/src/func/factor.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/func/factor.cc.o.d"
  "/root/repo/src/graph/elimination.cc" "CMakeFiles/ctsdd.dir/src/graph/elimination.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/graph/elimination.cc.o.d"
  "/root/repo/src/graph/exact_treewidth.cc" "CMakeFiles/ctsdd.dir/src/graph/exact_treewidth.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/graph/exact_treewidth.cc.o.d"
  "/root/repo/src/graph/generators.cc" "CMakeFiles/ctsdd.dir/src/graph/generators.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "CMakeFiles/ctsdd.dir/src/graph/graph.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/graph/graph.cc.o.d"
  "/root/repo/src/graph/lower_bound.cc" "CMakeFiles/ctsdd.dir/src/graph/lower_bound.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/graph/lower_bound.cc.o.d"
  "/root/repo/src/graph/path_decomposition.cc" "CMakeFiles/ctsdd.dir/src/graph/path_decomposition.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/graph/path_decomposition.cc.o.d"
  "/root/repo/src/graph/tree_decomposition.cc" "CMakeFiles/ctsdd.dir/src/graph/tree_decomposition.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/graph/tree_decomposition.cc.o.d"
  "/root/repo/src/lowerbound/comm_matrix.cc" "CMakeFiles/ctsdd.dir/src/lowerbound/comm_matrix.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/lowerbound/comm_matrix.cc.o.d"
  "/root/repo/src/lowerbound/rank.cc" "CMakeFiles/ctsdd.dir/src/lowerbound/rank.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/lowerbound/rank.cc.o.d"
  "/root/repo/src/nnf/checks.cc" "CMakeFiles/ctsdd.dir/src/nnf/checks.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/nnf/checks.cc.o.d"
  "/root/repo/src/nnf/nnf.cc" "CMakeFiles/ctsdd.dir/src/nnf/nnf.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/nnf/nnf.cc.o.d"
  "/root/repo/src/nnf/rectangle_cover.cc" "CMakeFiles/ctsdd.dir/src/nnf/rectangle_cover.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/nnf/rectangle_cover.cc.o.d"
  "/root/repo/src/nnf/wmc.cc" "CMakeFiles/ctsdd.dir/src/nnf/wmc.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/nnf/wmc.cc.o.d"
  "/root/repo/src/obdd/obdd.cc" "CMakeFiles/ctsdd.dir/src/obdd/obdd.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/obdd/obdd.cc.o.d"
  "/root/repo/src/obdd/obdd_compile.cc" "CMakeFiles/ctsdd.dir/src/obdd/obdd_compile.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/obdd/obdd_compile.cc.o.d"
  "/root/repo/src/sdd/sdd.cc" "CMakeFiles/ctsdd.dir/src/sdd/sdd.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/sdd/sdd.cc.o.d"
  "/root/repo/src/sdd/sdd_compile.cc" "CMakeFiles/ctsdd.dir/src/sdd/sdd_compile.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/sdd/sdd_compile.cc.o.d"
  "/root/repo/src/util/logging.cc" "CMakeFiles/ctsdd.dir/src/util/logging.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "CMakeFiles/ctsdd.dir/src/util/random.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "CMakeFiles/ctsdd.dir/src/util/status.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/util/status.cc.o.d"
  "/root/repo/src/viz/dot.cc" "CMakeFiles/ctsdd.dir/src/viz/dot.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/viz/dot.cc.o.d"
  "/root/repo/src/vtree/from_decomposition.cc" "CMakeFiles/ctsdd.dir/src/vtree/from_decomposition.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/vtree/from_decomposition.cc.o.d"
  "/root/repo/src/vtree/vtree.cc" "CMakeFiles/ctsdd.dir/src/vtree/vtree.cc.o" "gcc" "CMakeFiles/ctsdd.dir/src/vtree/vtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
