file(REMOVE_RECURSE
  "libctsdd.a"
)
