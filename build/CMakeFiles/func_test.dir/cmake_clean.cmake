file(REMOVE_RECURSE
  "CMakeFiles/func_test.dir/tests/func_test.cc.o"
  "CMakeFiles/func_test.dir/tests/func_test.cc.o.d"
  "func_test"
  "func_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/func_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
