file(REMOVE_RECURSE
  "CMakeFiles/vtree_test.dir/tests/vtree_test.cc.o"
  "CMakeFiles/vtree_test.dir/tests/vtree_test.cc.o.d"
  "vtree_test"
  "vtree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
