# Empty dependencies file for probabilistic_query.
# This may be replaced when dependencies are built.
