file(REMOVE_RECURSE
  "CMakeFiles/probabilistic_query.dir/examples/probabilistic_query.cpp.o"
  "CMakeFiles/probabilistic_query.dir/examples/probabilistic_query.cpp.o.d"
  "probabilistic_query"
  "probabilistic_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probabilistic_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
