# Empty dependencies file for bench_thm5_inversion_lb.
# This may be replaced when dependencies are built.
