file(REMOVE_RECURSE
  "CMakeFiles/bench_thm5_inversion_lb.dir/bench/bench_thm5_inversion_lb.cc.o"
  "CMakeFiles/bench_thm5_inversion_lb.dir/bench/bench_thm5_inversion_lb.cc.o.d"
  "bench_thm5_inversion_lb"
  "bench_thm5_inversion_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm5_inversion_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
