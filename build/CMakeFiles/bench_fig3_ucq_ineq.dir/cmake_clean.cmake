file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_ucq_ineq.dir/bench/bench_fig3_ucq_ineq.cc.o"
  "CMakeFiles/bench_fig3_ucq_ineq.dir/bench/bench_fig3_ucq_ineq.cc.o.d"
  "bench_fig3_ucq_ineq"
  "bench_fig3_ucq_ineq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_ucq_ineq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
