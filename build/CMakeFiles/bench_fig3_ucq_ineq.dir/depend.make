# Empty dependencies file for bench_fig3_ucq_ineq.
# This may be replaced when dependencies are built.
