# Empty dependencies file for bench_width_sandwich.
# This may be replaced when dependencies are built.
