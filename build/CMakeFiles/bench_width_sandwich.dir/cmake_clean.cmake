file(REMOVE_RECURSE
  "CMakeFiles/bench_width_sandwich.dir/bench/bench_width_sandwich.cc.o"
  "CMakeFiles/bench_width_sandwich.dir/bench/bench_width_sandwich.cc.o.d"
  "bench_width_sandwich"
  "bench_width_sandwich.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_width_sandwich.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
