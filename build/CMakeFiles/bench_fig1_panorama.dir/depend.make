# Empty dependencies file for bench_fig1_panorama.
# This may be replaced when dependencies are built.
