file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_panorama.dir/bench/bench_fig1_panorama.cc.o"
  "CMakeFiles/bench_fig1_panorama.dir/bench/bench_fig1_panorama.cc.o.d"
  "bench_fig1_panorama"
  "bench_fig1_panorama.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_panorama.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
