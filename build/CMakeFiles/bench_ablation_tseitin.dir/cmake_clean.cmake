file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tseitin.dir/bench/bench_ablation_tseitin.cc.o"
  "CMakeFiles/bench_ablation_tseitin.dir/bench/bench_ablation_tseitin.cc.o.d"
  "bench_ablation_tseitin"
  "bench_ablation_tseitin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tseitin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
