# Empty dependencies file for bench_ablation_tseitin.
# This may be replaced when dependencies are built.
