file(REMOVE_RECURSE
  "CMakeFiles/apply_core_test.dir/tests/apply_core_test.cc.o"
  "CMakeFiles/apply_core_test.dir/tests/apply_core_test.cc.o.d"
  "apply_core_test"
  "apply_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apply_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
