# Empty dependencies file for apply_core_test.
# This may be replaced when dependencies are built.
