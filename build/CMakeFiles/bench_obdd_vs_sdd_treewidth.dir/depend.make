# Empty dependencies file for bench_obdd_vs_sdd_treewidth.
# This may be replaced when dependencies are built.
