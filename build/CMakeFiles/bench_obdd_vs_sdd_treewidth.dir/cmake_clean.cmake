file(REMOVE_RECURSE
  "CMakeFiles/bench_obdd_vs_sdd_treewidth.dir/bench/bench_obdd_vs_sdd_treewidth.cc.o"
  "CMakeFiles/bench_obdd_vs_sdd_treewidth.dir/bench/bench_obdd_vs_sdd_treewidth.cc.o.d"
  "bench_obdd_vs_sdd_treewidth"
  "bench_obdd_vs_sdd_treewidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obdd_vs_sdd_treewidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
