file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ucq.dir/bench/bench_fig2_ucq.cc.o"
  "CMakeFiles/bench_fig2_ucq.dir/bench/bench_fig2_ucq.cc.o.d"
  "bench_fig2_ucq"
  "bench_fig2_ucq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ucq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
