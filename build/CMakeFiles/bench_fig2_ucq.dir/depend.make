# Empty dependencies file for bench_fig2_ucq.
# This may be replaced when dependencies are built.
