file(REMOVE_RECURSE
  "CMakeFiles/bench_result1_linear_size.dir/bench/bench_result1_linear_size.cc.o"
  "CMakeFiles/bench_result1_linear_size.dir/bench/bench_result1_linear_size.cc.o.d"
  "bench_result1_linear_size"
  "bench_result1_linear_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_result1_linear_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
