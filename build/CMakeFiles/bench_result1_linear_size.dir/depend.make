# Empty dependencies file for bench_result1_linear_size.
# This may be replaced when dependencies are built.
