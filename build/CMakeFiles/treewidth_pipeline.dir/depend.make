# Empty dependencies file for treewidth_pipeline.
# This may be replaced when dependencies are built.
