file(REMOVE_RECURSE
  "CMakeFiles/treewidth_pipeline.dir/examples/treewidth_pipeline.cpp.o"
  "CMakeFiles/treewidth_pipeline.dir/examples/treewidth_pipeline.cpp.o.d"
  "treewidth_pipeline"
  "treewidth_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewidth_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
