# Empty dependencies file for bench_pathwidth_obdd.
# This may be replaced when dependencies are built.
