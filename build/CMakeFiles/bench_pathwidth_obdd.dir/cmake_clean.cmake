file(REMOVE_RECURSE
  "CMakeFiles/bench_pathwidth_obdd.dir/bench/bench_pathwidth_obdd.cc.o"
  "CMakeFiles/bench_pathwidth_obdd.dir/bench/bench_pathwidth_obdd.cc.o.d"
  "bench_pathwidth_obdd"
  "bench_pathwidth_obdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pathwidth_obdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
