# Empty dependencies file for bench_kc_micro.
# This may be replaced when dependencies are built.
