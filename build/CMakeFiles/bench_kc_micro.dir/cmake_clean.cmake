file(REMOVE_RECURSE
  "CMakeFiles/bench_kc_micro.dir/bench/bench_kc_micro.cc.o"
  "CMakeFiles/bench_kc_micro.dir/bench/bench_kc_micro.cc.o.d"
  "bench_kc_micro"
  "bench_kc_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kc_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
