file(REMOVE_RECURSE
  "CMakeFiles/bench_isa_sdd.dir/bench/bench_isa_sdd.cc.o"
  "CMakeFiles/bench_isa_sdd.dir/bench/bench_isa_sdd.cc.o.d"
  "bench_isa_sdd"
  "bench_isa_sdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_isa_sdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
