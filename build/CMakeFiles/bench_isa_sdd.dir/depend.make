# Empty dependencies file for bench_isa_sdd.
# This may be replaced when dependencies are built.
