file(REMOVE_RECURSE
  "CMakeFiles/bench_disjointness_rank.dir/bench/bench_disjointness_rank.cc.o"
  "CMakeFiles/bench_disjointness_rank.dir/bench/bench_disjointness_rank.cc.o.d"
  "bench_disjointness_rank"
  "bench_disjointness_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disjointness_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
