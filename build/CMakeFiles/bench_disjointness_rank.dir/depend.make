# Empty dependencies file for bench_disjointness_rank.
# This may be replaced when dependencies are built.
