// Ablation (Section 1 discussion): the paper's *direct* compilation vs
// the Petke–Razgon *indirect* route through Tseitin forms,
//   C(X) == (exists Z) D_T(X, Z),
// whose size depends on the circuit size m rather than the variable
// count n, and whose quantification step destroys determinism for DNNF.
// With a canonical SDD manager the quantified result re-canonicalizes to
// the same SDD the direct route produces — so what the ablation exposes
// is the *cost*: the Tseitin intermediate is much larger (it carries one
// variable per gate) and the quantification pass does real work.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "circuit/families.h"
#include "circuit/tseitin.h"
#include "compile/pipeline.h"
#include "sdd/sdd.h"
#include "sdd/sdd_compile.h"
#include "util/timer.h"
#include "vtree/from_decomposition.h"

namespace ctsdd {
namespace {

void Run() {
  bench::Header(
      "Ablation: direct treewidth compilation vs the Tseitin route "
      "(exists Z) D_T(X, Z)  [ladder k=2]");
  std::printf("%5s %5s %6s | %9s %8s | %9s %10s %9s\n", "rows", "n",
              "m(cnf)", "direct_sz", "direct_ms", "tseitin_sz",
              "afterEx_sz", "route_ms");
  for (int rows = 4; rows <= 12; rows += 2) {
    const Circuit circuit = LadderCircuit(rows, 2);
    const int n = static_cast<int>(circuit.Vars().size());

    // Direct route.
    Timer direct_timer;
    const auto direct = CompileWithTreewidth(circuit);
    const double direct_ms = direct_timer.ElapsedMillis();
    if (!direct.ok()) continue;

    // Tseitin route: compile D_T(X, Z), then existentially quantify Z.
    Timer route_timer;
    const Cnf cnf = TseitinCnf(circuit);
    const Circuit cnf_circuit = CnfToCircuit(cnf);
    const auto vtree = VtreeForCircuit(cnf_circuit);
    if (!vtree.ok()) continue;
    SddManager manager(vtree.value());
    const auto dt = CompileCircuitToSdd(&manager, cnf_circuit);
    const int tseitin_size = manager.Size(dt);
    std::vector<int> gate_vars;
    for (int v = n; v < cnf.num_vars; ++v) gate_vars.push_back(v);
    const auto quantified = manager.ExistsAll(dt, gate_vars);
    const double route_ms = route_timer.ElapsedMillis();

    std::printf("%5d %5d %6d | %9d %8.1f | %9d %10d %9.1f\n", rows, n,
                cnf.num_vars, direct->sdd.size, direct_ms, tseitin_size,
                manager.Size(quantified), route_ms);
  }
  bench::Note(
      "direct_sz depends on n only; tseitin_sz carries one variable per "
      "gate (m), and quantification does the extra work the paper's "
      "direct construction avoids — with a *deterministic* target the "
      "indirect route could not even express the result (Section 1).");
}

}  // namespace
}  // namespace ctsdd

int main() {
  ctsdd::Run();
  return 0;
}
