// Figure 1: the compilability panorama for Boolean functions. One witness
// family per region, with the measured quantity that places it there:
//
//   CPW(O(1)) = OBDD(O(1))       banded CNFs: OBDD width constant in n
//   CTW(O(1)) = SDD(O(1))        tree CNFs: SDD width constant, OBDD width
//     (strictly above CPW)       grows (pathwidth Theta(log n))
//   OBDD(n^O(1)) strictly above  majority: OBDD size polynomial but OBDD
//     CTW(O(1))                  and SDD widths grow with n
//   SDD(n^O(1)) strictly above   ISA: polynomial SDD on the Appendix A
//     OBDD(n^O(1))               vtree, exponential-in-m OBDD

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "circuit/families.h"
#include "compile/isa.h"
#include "compile/pipeline.h"
#include "obdd/obdd.h"
#include "obdd/obdd_compile.h"

namespace ctsdd {
namespace {

void RegionCpw() {
  bench::Header("Fig 1 region CPW(O(1)) = OBDD(O(1)) [banded CNF, band 2]");
  std::printf("%6s %6s %10s %10s %10s %10s\n", "n", "vars", "obdd_size",
              "obdd_width", "sdd_size", "sdd_width");
  for (int n = 6; n <= 30; n += 6) {
    const Circuit c = BandedCnfCircuit(n, 2);
    ObddManager obdd(c.Vars());
    const auto root = CompileCircuitToObdd(&obdd, c);
    const auto sdd = CompileWithTreewidth(c);
    std::printf("%6d %6d %10d %10d %10d %10d\n", n,
                static_cast<int>(c.Vars().size()), obdd.Size(root),
                obdd.Width(root), sdd.ok() ? sdd->sdd.size : -1,
                sdd.ok() ? sdd->sdd.width : -1);
  }
  bench::Note("expected: OBDD width constant (region inside OBDD(O(1)))");
}

void RegionCtw() {
  bench::Header(
      "Fig 1 region CTW(O(1)) = SDD(O(1)) \\ CPW(O(1)) [tree CNF]");
  std::printf("%7s %6s %11s %11s %10s %10s\n", "leaves", "vars",
              "obdd_width*", "obdd_size*", "sdd_width", "sdd_size");
  std::vector<double> ns;
  std::vector<double> obdd_widths;
  int max_sdd_width = 0;
  for (int leaves = 4; leaves <= 64; leaves *= 2) {
    const Circuit c = TreeCnfCircuit(leaves);
    // OBDD under the natural heap order (BFS of the tree) — a reasonable
    // order; the lower-bound claim is about all orders, which we probe by
    // the best of a few natural candidates.
    ObddManager obdd(c.Vars());
    const auto obdd_root = CompileCircuitToObdd(&obdd, c);
    const auto sdd = CompileWithTreewidth(c);
    ns.push_back(c.Vars().size());
    obdd_widths.push_back(obdd.Width(obdd_root));
    if (sdd.ok()) max_sdd_width = std::max(max_sdd_width, sdd->sdd.width);
    std::printf("%7d %6d %11d %11d %10d %10d\n", leaves,
                static_cast<int>(c.Vars().size()), obdd.Width(obdd_root),
                obdd.Size(obdd_root), sdd.ok() ? sdd->sdd.width : -1,
                sdd.ok() ? sdd->sdd.size : -1);
  }
  std::printf("  -> OBDD width grows (fitted n-exponent %.2f), SDD width "
              "bounded at %d: the family separates CTW(O(1)) from "
              "CPW(O(1))\n",
              bench::LogLogSlope(ns, obdd_widths), max_sdd_width);
}

void RegionObddPoly() {
  bench::Header(
      "Fig 1 region OBDD(n^O(1)) \\ CTW(O(1)) [majority]");
  std::printf("%6s %10s %10s %10s %10s\n", "n", "obdd_size", "obdd_width",
              "sdd_size", "sdd_width");
  std::vector<double> ns;
  std::vector<double> sizes;
  for (int n = 5; n <= 25; n += 5) {
    const Circuit c = MajorityCircuit(n);
    ObddManager obdd(c.Vars());
    const auto root = CompileCircuitToObdd(&obdd, c);
    const auto sdd = CompileWithTreewidth(c);
    ns.push_back(n);
    sizes.push_back(obdd.Size(root));
    std::printf("%6d %10d %10d %10d %10d\n", n, obdd.Size(root),
                obdd.Width(root), sdd.ok() ? sdd->sdd.size : -1,
                sdd.ok() ? sdd->sdd.width : -1);
  }
  std::printf("  -> OBDD size polynomial (exponent %.2f) with *growing* "
              "width: majority sits in OBDD(n^O(1)) but outside "
              "OBDD(O(1))=CPW(O(1)); its SDD width grows too, consistent "
              "with unbounded circuit treewidth\n",
              bench::LogLogSlope(ns, sizes));
}

void RegionSddPoly() {
  bench::Header(
      "Fig 1 region SDD(n^O(1)) \\ OBDD(n^O(1)) [ISA, Appendix A]");
  // The region witness is ISA: Proposition 3's explicit (non-canonical)
  // SDD on T_n has size O(n^{13/5}) — reported analytically from the
  // construction's small-term inventory — while OBDDs are exponential in
  // m. See bench_isa_sdd for the full measurement incl. canonical sizes.
  std::printf("%4s %4s %6s %13s %12s %12s\n", "k", "m", "n", "witness<=",
              "n^{13/5}", "obdd_size");
  for (const IsaParams params :
       {IsaParams{1, 2}, IsaParams{2, 4}, IsaParams{5, 8}}) {
    const double small_terms = std::pow(3.0, params.m + 1) + 1;
    const double witness =
        small_terms * (2.0 * params.NumVars() + 2) +
        std::exp2(params.k + 1) - 2;
    if (params.m <= 4) {
      const Circuit c = IsaCircuit(params);
      ObddManager obdd(c.Vars());
      const auto root = CompileCircuitToObdd(&obdd, c);
      std::printf("%4d %4d %6d %13.0f %12.0f %12d\n", params.k, params.m,
                  params.NumVars(), witness,
                  std::pow(params.NumVars(), 2.6), obdd.Size(root));
    } else {
      std::printf("%4d %4d %6d %13.0f %12.0f %12s\n", params.k, params.m,
                  params.NumVars(), witness,
                  std::pow(params.NumVars(), 2.6), "(exp in m)");
    }
  }
  bench::Note(
      "ISA witnesses SDD(n^O(1)) \\ OBDD(n^O(1)): polynomial SDD witness, "
      "exponential OBDDs");
}

}  // namespace
}  // namespace ctsdd

int main() {
  ctsdd::RegionCpw();
  ctsdd::RegionCtw();
  ctsdd::RegionObddPoly();
  ctsdd::RegionSddPoly();
  return 0;
}
