// Steady-state serving benchmark for the serve/ subsystem.
//
// Models a query server in front of a *changing* database: the stream
// issues >= 10k mixed UCQ probability requests (named Section 4 families
// plus parameterized per-constant queries, fresh weights per request)
// while the database content is regenerated every few hundred requests
// — same schema and tuple ids (so the same managers keep serving), new
// random S-edges (so every generation brings genuinely novel lineage
// functions). That is the workload where managers grow without limit
// today: each generation's compilations deposit nodes that nothing ever
// reclaims.
//
// Reported:
//   - steady-state throughput (QPS) and latency percentiles,
//   - plan-cache hit rate, evictions, GC runs/reclaim,
//   - the resident-node trajectory per decile of the stream — with GC +
//     plan eviction it plateaus; the no-GC configuration (ceiling and
//     plan cache effectively unbounded) climbs monotonically with every
//     database generation,
//   - repeated-query throughput against the cold per-query compile path
//     (CompileQuery from scratch per request, the pre-serve regime).
//
// --json=PATH appends machine-readable sections (see bench_util.h);
// point it at a scratch path, then hand-merge into ../BENCH_serve.json.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "db/lineage.h"
#include "db/query.h"
#include "db/query_compile.h"
#include "serve/query_service.h"
#include "util/random.h"
#include "util/timer.h"

namespace ctsdd {
namespace {

// R/S/T over domain [n] with tuple ids fixed by construction order
// (R: 0..n-1, S: n..n+edges-1, T: tail) and exactly `edges` random
// S-pairs — so every generation shares the variable universe (and thus
// the pooled managers) while computing novel lineage functions.
Database RandomContentDb(int n, int edges, uint64_t seed) {
  Rng rng(seed);
  Database db;
  db.AddRelation("R", 1);
  db.AddRelation("S", 2);
  db.AddRelation("T", 1);
  for (int l = 1; l <= n; ++l) db.AddTuple("R", {l}, 0.3);
  const std::vector<int> perm = rng.Permutation(n * n);
  for (int i = 0; i < edges; ++i) {
    const int l = 1 + perm[i] / n;
    const int m = 1 + perm[i] % n;
    db.AddTuple("S", {l, m}, 0.3);
  }
  for (int m = 1; m <= n; ++m) db.AddTuple("T", {m}, 0.3);
  return db;
}

std::vector<Ucq> QueryPopulation(int domain) {
  std::vector<Ucq> queries;
  queries.push_back(HierarchicalRSQuery());
  queries.push_back(NonHierarchicalH0Query());
  queries.push_back(InequalityExampleQuery());
  for (int c = 1; c <= domain; ++c) queries.push_back(PerConstantRsQuery(c));
  for (int c = 1; c <= domain; ++c) {
    for (int d = c + 1; d <= domain; ++d) {
      Ucq pair = PerConstantRsQuery(c);
      pair.disjuncts.push_back(PerConstantRsQuery(d).disjuncts[0]);
      queries.push_back(std::move(pair));
    }
  }
  return queries;
}

struct StreamResult {
  double qps = 0.0;
  std::vector<int> live_per_decile;  // resident nodes at each decile
  ServiceStats stats;
};

StreamResult RunStream(const std::vector<Ucq>& queries,
                       const ServeOptions& options, int total_requests,
                       int domain, int edges, int generations,
                       int batch_size, uint64_t seed) {
  QueryService service(options);
  Rng rng(seed);
  StreamResult out;
  Timer timer;
  const int generation_len = std::max(1, total_requests / generations);
  std::unique_ptr<Database> db;
  int issued = 0;
  int next_decile = total_requests / 10;
  while (issued < total_requests) {
    if (issued % generation_len == 0) {
      // A new database generation: same ids, novel content. The old
      // generation's plans go stale in the cache (never requested
      // again) and are shed by LRU under the bounded configuration.
      db = std::make_unique<Database>(
          RandomContentDb(domain, edges, seed + issued / generation_len));
    }
    const int n = std::min({batch_size, total_requests - issued,
                            generation_len - issued % generation_len});
    std::vector<QueryRequest> batch;
    batch.reserve(n);
    for (int i = 0; i < n; ++i) {
      QueryRequest request;
      request.query = queries[rng.NextBelow(queries.size())];
      request.db = db.get();
      request.route = rng.NextBool(0.5) ? PlanRoute::kObdd : PlanRoute::kSdd;
      request.strategy = VtreeStrategy::kBalanced;
      // Fresh weights per request: plan reuse must survive them.
      request.weights.resize(db->num_tuples());
      for (double& p : request.weights) p = 0.1 + 0.8 * rng.NextDouble();
      batch.push_back(std::move(request));
    }
    const auto responses = service.ExecuteBatch(batch);
    for (const QueryResponse& r : responses) {
      if (!r.status.ok()) {
        std::fprintf(stderr, "request failed: %s\n",
                     r.status.ToString().c_str());
        std::exit(1);
      }
    }
    issued += n;
    while (issued >= next_decile && out.live_per_decile.size() < 10) {
      out.live_per_decile.push_back(service.stats().totals.live_nodes);
      next_decile += total_requests / 10;
    }
  }
  out.qps = issued / timer.ElapsedSeconds();
  out.stats = service.stats();
  return out;
}

void PrintTrajectory(const char* label, const StreamResult& r) {
  std::printf("  %-7s live-nodes per decile:", label);
  for (int v : r.live_per_decile) std::printf(" %7d", v);
  std::printf("\n");
}

}  // namespace
}  // namespace ctsdd

int main(int argc, char** argv) {
  using namespace ctsdd;
  std::string json_path;
  int total_requests = 10000;
  int domain = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      total_requests = std::atoi(argv[i] + 11);
    }
    if (std::strncmp(argv[i], "--domain=", 9) == 0) {
      domain = std::atoi(argv[i] + 9);
    }
  }
  // Edge count capped by the full bipartite graph (tiny domains).
  const int edges = std::min(4 * domain, domain * domain);
  const int generations = 20;

  bench::Header("serve: steady-state mixed UCQ stream over a changing db");
  const std::vector<Ucq> queries = QueryPopulation(domain);
  bench::Note("domain " + std::to_string(domain) + ", " +
              std::to_string(2 * domain + edges) + " tuples, " +
              std::to_string(queries.size()) + " query shapes, " +
              std::to_string(generations) + " db generations, " +
              std::to_string(total_requests) + " requests");

  // Bounded configuration: the production shape. The ceiling must sit
  // above the largest single working set (one generation's plans in one
  // manager) — below that, every check collects, sheds live plans, and
  // recompiles them on the next request (GC thrash).
  ServeOptions bounded;
  bounded.num_shards = 4;
  bounded.plan_cache_capacity = 48;
  // Pools deep enough that the long-lived managers (the named queries'
  // fixed variable set) survive the per-constant churn and rely on node
  // GC, not wholesale retirement, to stay bounded.
  bounded.manager_pool_capacity = 32;
  bounded.gc_live_node_ceiling = 1 << 17;
  bounded.gc_check_interval = 16;
  const StreamResult gc =
      RunStream(queries, bounded, total_requests, domain, edges, generations,
                /*batch_size=*/64, /*seed=*/42);

  // Unbounded baseline: ceiling, plan cache, and manager pools too large
  // to ever act — the pre-serve regime where no node is ever collected
  // and no manager ever retired.
  ServeOptions unbounded = bounded;
  unbounded.plan_cache_capacity = 1 << 20;
  unbounded.manager_pool_capacity = 1 << 20;
  unbounded.gc_live_node_ceiling = 1 << 30;
  const StreamResult nogc =
      RunStream(queries, unbounded, total_requests, domain, edges,
                generations, /*batch_size=*/64, /*seed=*/42);

  PrintTrajectory("gc", gc);
  PrintTrajectory("no-gc", nogc);
  std::printf(
      "  [gc]    %.0f qps, hit rate %.1f%%, p50 %.3f ms, p95 %.3f ms, "
      "p99 %.3f ms\n",
      gc.qps, 100.0 * gc.stats.plan_hit_rate(), gc.stats.p50_ms,
      gc.stats.p95_ms, gc.stats.p99_ms);
  std::printf(
      "  [gc]    gc_runs %llu, reclaimed %llu, plan evictions %llu, "
      "final live %d (peak %d)\n",
      static_cast<unsigned long long>(gc.stats.totals.gc_runs),
      static_cast<unsigned long long>(gc.stats.totals.gc_reclaimed),
      static_cast<unsigned long long>(gc.stats.totals.plan_evictions),
      gc.stats.totals.live_nodes, gc.stats.totals.peak_live_nodes);
  std::printf(
      "  [no-gc] %.0f qps, hit rate %.1f%%, final live %d "
      "(monotone growth)\n",
      nogc.qps, 100.0 * nogc.stats.plan_hit_rate(),
      nogc.stats.totals.live_nodes);

  bench::Header("serve: repeated query vs cold per-query compile");
  const Database steady_db = RandomContentDb(domain, edges, /*seed=*/1);
  const Ucq repeated = NonHierarchicalH0Query();
  const int reps = 100;
  // Cold path: full CompileQuery (lineage + OBDD + SDD + cross-check)
  // from scratch per request — the one-shot pipeline regime.
  const double cold_ms = bench::MinMillis(3, [&] {
    for (int i = 0; i < reps; ++i) {
      auto r = CompileQuery(repeated, steady_db, VtreeStrategy::kBalanced);
      if (!r.ok()) std::exit(1);
    }
  });
  // Served path: one shard, plan cached after the first request.
  ServeOptions single;
  single.num_shards = 1;
  double served_ms = 0.0;
  {
    QueryService service(single);
    Rng rng(7);
    QueryRequest request;
    request.query = repeated;
    request.db = &steady_db;
    request.route = PlanRoute::kSdd;
    (void)service.Execute(request);  // warm the plan
    served_ms = bench::MinMillis(3, [&] {
      for (int i = 0; i < reps; ++i) {
        request.weights.assign(steady_db.num_tuples(),
                               0.1 + 0.8 * rng.NextDouble());
        (void)service.Execute(request);
      }
    });
  }
  std::printf(
      "  cold %.3f ms/query, served %.3f ms/query (weights varied), "
      "speedup %.1fx\n",
      cold_ms / reps, served_ms / reps, cold_ms / served_ms);

  if (!json_path.empty()) {
    // Plateau: sampling instants are noisy (pre/post GC), so compare
    // halves — the second half's peak must not exceed 2x the first
    // half's (the no-GC baseline grows ~5x half-over-half here).
    const auto& d = gc.live_per_decile;
    const int first_half = *std::max_element(d.begin(), d.begin() + 5);
    const int second_half = *std::max_element(d.begin() + 5, d.end());
    const bool plateau_ok = second_half <= 2 * first_half;
    bench::WriteJsonSection(
        json_path, "serve_steady_state",
        {
            {"requests", static_cast<double>(total_requests)},
            {"qps", gc.qps},
            {"p50_ms", gc.stats.p50_ms},
            {"p95_ms", gc.stats.p95_ms},
            {"p99_ms", gc.stats.p99_ms},
            {"plan_hit_rate", gc.stats.plan_hit_rate()},
            {"plan_evictions",
             static_cast<double>(gc.stats.totals.plan_evictions)},
            {"gc_runs", static_cast<double>(gc.stats.totals.gc_runs)},
            {"gc_reclaimed",
             static_cast<double>(gc.stats.totals.gc_reclaimed)},
            {"final_live_nodes",
             static_cast<double>(gc.stats.totals.live_nodes)},
            {"peak_live_nodes",
             static_cast<double>(gc.stats.totals.peak_live_nodes)},
            {"plateau_ok", plateau_ok ? 1.0 : 0.0},
        },
        /*append=*/true);
    bench::WriteJsonSection(
        json_path, "serve_unbounded_baseline",
        {
            {"qps", nogc.qps},
            {"second_decile_live_nodes",
             static_cast<double>(nogc.live_per_decile[1])},
            {"final_live_nodes",
             static_cast<double>(nogc.stats.totals.live_nodes)},
        },
        /*append=*/true);
    bench::WriteJsonSection(
        json_path, "serve_repeated_vs_cold",
        {
            {"cold_ms_per_query", cold_ms / reps},
            {"served_ms_per_query", served_ms / reps},
            {"speedup", cold_ms / served_ms},
        },
        /*append=*/true);
  }
  return 0;
}
