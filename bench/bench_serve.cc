// Steady-state serving benchmark for the serve/ subsystem.
//
// Models a query server in front of a *changing* database: the stream
// issues >= 10k mixed UCQ probability requests (named Section 4 families
// plus parameterized per-constant queries, fresh weights per request)
// while the database content is regenerated every few hundred requests
// — same schema and tuple ids (so the same managers keep serving), new
// random S-edges (so every generation brings genuinely novel lineage
// functions). That is the workload where managers grow without limit
// today: each generation's compilations deposit nodes that nothing ever
// reclaims.
//
// Reported:
//   - steady-state throughput (QPS) and latency percentiles,
//   - plan-cache hit rate, evictions, GC runs/reclaim,
//   - the resident-node trajectory per decile of the stream — with GC +
//     plan eviction it plateaus; the no-GC configuration (ceiling and
//     plan cache effectively unbounded) climbs monotonically with every
//     database generation,
//   - repeated-query throughput against the cold per-query compile path
//     (CompileQuery from scratch per request, the pre-serve regime).
//
// --json=PATH appends machine-readable sections (see bench_util.h);
// point it at a scratch path, then hand-merge into ../BENCH_serve.json.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "db/lineage.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "db/query.h"
#include "db/query_compile.h"
#include "obdd/obdd.h"
#include "obdd/obdd_compile.h"
#include "sdd/sdd.h"
#include "sdd/sdd_compile.h"
#include "serve/query_service.h"
#include "serve/shard.h"
#include "util/budget.h"
#include "util/fault_injection.h"
#include "util/mem_governor.h"
#include "util/random.h"
#include "util/timer.h"
#include "vtree/vtree.h"

namespace ctsdd {
namespace {

// R/S/T over domain [n] with tuple ids fixed by construction order
// (R: 0..n-1, S: n..n+edges-1, T: tail) and exactly `edges` random
// S-pairs — so every generation shares the variable universe (and thus
// the pooled managers) while computing novel lineage functions.
Database RandomContentDb(int n, int edges, uint64_t seed) {
  Rng rng(seed);
  Database db;
  db.AddRelation("R", 1);
  db.AddRelation("S", 2);
  db.AddRelation("T", 1);
  for (int l = 1; l <= n; ++l) db.AddTuple("R", {l}, 0.3);
  const std::vector<int> perm = rng.Permutation(n * n);
  for (int i = 0; i < edges; ++i) {
    const int l = 1 + perm[i] / n;
    const int m = 1 + perm[i] % n;
    db.AddTuple("S", {l, m}, 0.3);
  }
  for (int m = 1; m <= n; ++m) db.AddTuple("T", {m}, 0.3);
  return db;
}

std::vector<Ucq> QueryPopulation(int domain) {
  std::vector<Ucq> queries;
  queries.push_back(HierarchicalRSQuery());
  queries.push_back(NonHierarchicalH0Query());
  queries.push_back(InequalityExampleQuery());
  for (int c = 1; c <= domain; ++c) queries.push_back(PerConstantRsQuery(c));
  for (int c = 1; c <= domain; ++c) {
    for (int d = c + 1; d <= domain; ++d) {
      Ucq pair = PerConstantRsQuery(c);
      pair.disjuncts.push_back(PerConstantRsQuery(d).disjuncts[0]);
      queries.push_back(std::move(pair));
    }
  }
  return queries;
}

struct StreamResult {
  double qps = 0.0;
  std::vector<int> live_per_decile;  // resident nodes at each decile
  ServiceStats stats;
};

StreamResult RunStream(const std::vector<Ucq>& queries,
                       const ServeOptions& options, int total_requests,
                       int domain, int edges, int generations,
                       int batch_size, uint64_t seed) {
  QueryService service(options);
  Rng rng(seed);
  StreamResult out;
  Timer timer;
  const int generation_len = std::max(1, total_requests / generations);
  std::unique_ptr<Database> db;
  int issued = 0;
  int next_decile = total_requests / 10;
  while (issued < total_requests) {
    if (issued % generation_len == 0) {
      // A new database generation: same ids, novel content. The old
      // generation's plans go stale in the cache (never requested
      // again) and are shed by LRU under the bounded configuration.
      db = std::make_unique<Database>(
          RandomContentDb(domain, edges, seed + issued / generation_len));
    }
    const int n = std::min({batch_size, total_requests - issued,
                            generation_len - issued % generation_len});
    std::vector<QueryRequest> batch;
    batch.reserve(n);
    for (int i = 0; i < n; ++i) {
      QueryRequest request;
      request.query = queries[rng.NextBelow(queries.size())];
      request.db = db.get();
      request.route = rng.NextBool(0.5) ? PlanRoute::kObdd : PlanRoute::kSdd;
      request.strategy = VtreeStrategy::kBalanced;
      // Fresh weights per request: plan reuse must survive them.
      request.weights.resize(db->num_tuples());
      for (double& p : request.weights) p = 0.1 + 0.8 * rng.NextDouble();
      batch.push_back(std::move(request));
    }
    const auto responses = service.ExecuteBatch(batch);
    for (const QueryResponse& r : responses) {
      if (!r.status.ok()) {
        std::fprintf(stderr, "request failed: %s\n",
                     r.status.ToString().c_str());
        std::exit(1);
      }
    }
    issued += n;
    while (issued >= next_decile && out.live_per_decile.size() < 10) {
      out.live_per_decile.push_back(service.stats().totals.live_nodes);
      next_decile += total_requests / 10;
    }
  }
  out.qps = issued / timer.ElapsedSeconds();
  out.stats = service.stats();
  return out;
}

void PrintTrajectory(const char* label, const StreamResult& r) {
  std::printf("  %-7s live-nodes per decile:", label);
  for (int v : r.live_per_decile) std::printf(" %7d", v);
  std::printf("\n");
}

// --- Overload section: open-loop arrivals past capacity -------------------

// 20% of the overload stream is adversarial: unions of `width`
// per-constant disjuncts — wide lineages whose compiles dwarf the
// typical request and (under a compile budget) exercise the
// degradation ladder.
std::vector<Ucq> AdversarialPopulation(int domain, int width) {
  std::vector<Ucq> queries;
  for (int c = 1; c <= domain; ++c) {
    Ucq wide = PerConstantRsQuery(c);
    for (int k = 1; k < width; ++k) {
      wide.disjuncts.push_back(
          PerConstantRsQuery(1 + (c - 1 + k) % domain).disjuncts[0]);
    }
    queries.push_back(std::move(wide));
  }
  return queries;
}

struct OverloadResult {
  double offered_qps = 0.0;
  double accepted_p99_ms = 0.0;
  double shed_rate = 0.0;       // arrivals still shed after all retries
  double failure_rate = 0.0;    // arrivals failed after all retries
  uint64_t wrong_answers = 0;   // accepted answers not matching the oracle
  uint64_t retries = 0;         // extra attempts spent honoring hints
  uint64_t retry_successes = 0; // arrivals rescued by a backed-off retry
  ServiceStats stats;
};

// Paced open-loop driver: arrival i is due at i/target_qps; a small
// submitter pool picks up due arrivals and blocks per-request on the
// service (sheds return immediately, so submitters keep pace even when
// the shard queues are full). Clients are well-behaved: an UNAVAILABLE
// answer with a retry hint is retried after sleeping the hinted backoff,
// up to `max_attempts` tries per arrival. Accepted-request latency is
// the client-observed latency of the answering attempt, queue wait
// included, backoff sleeps excluded.
OverloadResult RunOverload(const std::vector<Ucq>& shapes,
                           const std::vector<double>& oracle,
                           const std::vector<int>& schedule,
                           const Database& db, const ServeOptions& options,
                           double target_qps, int max_attempts = 3) {
  QueryService service(options);
  std::atomic<size_t> next(0);
  std::mutex agg_mu;
  std::vector<double> accepted_ms;
  uint64_t sheds = 0, failures = 0, wrong = 0;
  uint64_t retries = 0, retry_successes = 0;
  const auto t0 = std::chrono::steady_clock::now();
  auto submitter = [&] {
    std::vector<double> local_ms;
    uint64_t local_sheds = 0, local_failures = 0, local_wrong = 0;
    uint64_t local_retries = 0, local_rescued = 0;
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= schedule.size()) break;
      const auto due =
          t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(i / target_qps));
      std::this_thread::sleep_until(due);
      QueryRequest request;
      request.query = shapes[schedule[i]];
      request.db = &db;
      request.route =
          schedule[i] % 2 == 0 ? PlanRoute::kObdd : PlanRoute::kSdd;
      QueryResponse response;
      double ms = 0;
      int attempts = 0;
      for (;;) {
        const auto start = std::chrono::steady_clock::now();
        response = service.Execute(request);
        ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
                 .count();
        ++attempts;
        // Only transient UNAVAILABLE outcomes that carry a hint are
        // retried; quarantine/budget rejections are final to the client.
        if (response.status.ok() || attempts >= max_attempts ||
            response.status.code() != StatusCode::kUnavailable ||
            response.retry_after_ms <= 0) {
          break;
        }
        ++local_retries;
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            std::min(response.retry_after_ms, 100.0)));
      }
      if (response.status.ok()) {
        local_ms.push_back(ms);
        if (attempts > 1) ++local_rescued;
        if (std::abs(response.probability - oracle[schedule[i]]) > 1e-9) {
          ++local_wrong;
        }
      } else {
        ++local_failures;
        if (response.status.code() == StatusCode::kUnavailable) ++local_sheds;
      }
    }
    std::lock_guard<std::mutex> lock(agg_mu);
    accepted_ms.insert(accepted_ms.end(), local_ms.begin(), local_ms.end());
    sheds += local_sheds;
    failures += local_failures;
    wrong += local_wrong;
    retries += local_retries;
    retry_successes += local_rescued;
  };
  std::vector<std::thread> threads;
  // Enough submitters that arrivals keep their schedule even when the
  // service lags — otherwise the driver degenerates to closed-loop and
  // the shard queues never fill.
  for (int t = 0; t < 64; ++t) threads.emplace_back(submitter);
  for (auto& t : threads) t.join();

  OverloadResult out;
  out.offered_qps = target_qps;
  if (!accepted_ms.empty()) {
    std::sort(accepted_ms.begin(), accepted_ms.end());
    out.accepted_p99_ms =
        accepted_ms[static_cast<size_t>(0.99 * (accepted_ms.size() - 1))];
  }
  out.shed_rate = static_cast<double>(sheds) / schedule.size();
  out.failure_rate = static_cast<double>(failures) / schedule.size();
  out.wrong_answers = wrong;
  out.retries = retries;
  out.retry_successes = retry_successes;
  out.stats = service.stats();
  return out;
}

// --- Recovery section: chaos stream with supervision ----------------------

// Node-allocation demand of one route's compile, capped at `cap` (a
// return of `cap` means "at least cap": the measuring budget tripped).
uint64_t RouteDemand(const Ucq& query, const Database& db, PlanRoute route,
                     uint64_t cap) {
  auto lineage = BuildLineage(query, db);
  if (!lineage.ok()) std::exit(1);
  const Circuit& circuit = lineage.value();
  WorkBudget budget(cap);
  bool aborted = false;
  if (route == PlanRoute::kObdd) {
    ObddManager manager(circuit.Vars());
    manager.AttachBudget(&budget);
    aborted = CompileCircuitToObdd(&manager, circuit) < 0;
  } else {
    auto vtree =
        VtreeForStrategy(circuit, circuit.Vars(), VtreeStrategy::kBalanced);
    if (!vtree.ok()) std::exit(1);
    SddManager manager(std::move(vtree).value());
    manager.AttachBudget(&budget);
    aborted = CompileCircuitToSdd(&manager, circuit) < 0;
  }
  return aborted ? cap : budget.used();
}

// The ladder serves a request iff its cheaper route fits the budget.
uint64_t MinRouteDemand(const Ucq& query, const Database& db, uint64_t cap) {
  return std::min(RouteDemand(query, db, PlanRoute::kObdd, cap),
                  RouteDemand(query, db, PlanRoute::kSdd, cap));
}

struct RecoveryResult {
  double qps = 0.0;
  double availability = 0.0;   // non-poison arrivals eventually answered
  double accepted_p99_ms = 0.0;
  uint64_t wrong_answers = 0;
  uint64_t retries = 0;
  uint64_t non_poison_failed = 0;
  uint64_t poison_offered = 0;
  uint64_t poison_answered = 0;  // must stay 0: poison never compiles
  ServiceStats stats;
};

// Closed-loop chaos driver: a submitter pool drives the whole schedule
// through the service while (when `inject`) armed fault sites hang a
// shard worker past the heartbeat window every ~hang_every dequeues and
// kill one every ~death_every. Clients honor retry_after_ms exactly like
// the overload clients. Poison arrivals (schedule entry == poison_idx)
// are expected to fail typed; everything else counts against
// availability if it still fails after `max_attempts`.
RecoveryResult RunRecovery(const std::vector<Ucq>& shapes,
                           const std::vector<double>& oracle,
                           const std::vector<int>& schedule, int poison_idx,
                           const Database& db, const ServeOptions& options,
                           bool inject, int max_attempts) {
  if (inject) {
    fault::FaultSpec hang;
    hang.fire_every = 211;  // ~every 200 dequeues, a 40 ms stall
    hang.delay_ms = 40;
    fault::Arm("serve.shard.hang", hang);
    fault::FaultSpec death;
    death.fire_every = 389;  // offset cadence: restarts overlap hangs
    death.action = [] { ShardWorker::RequestDeathOnCurrentThread(); };
    fault::Arm("serve.shard.death", death);
  }
  RecoveryResult out;
  {
    QueryService service(options);
    std::atomic<size_t> next(0);
    std::mutex agg_mu;
    std::vector<double> accepted_ms;
    Timer timer;
    auto submitter = [&] {
      std::vector<double> local_ms;
      uint64_t local_wrong = 0, local_retries = 0, local_failed = 0;
      uint64_t local_poison = 0, local_poison_ok = 0;
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= schedule.size()) break;
        const bool is_poison = schedule[i] == poison_idx;
        QueryRequest request;
        request.query = shapes[schedule[i]];
        request.db = &db;
        request.route =
            schedule[i] % 2 == 0 ? PlanRoute::kObdd : PlanRoute::kSdd;
        QueryResponse response;
        double ms = 0;
        int attempts = 0;
        for (;;) {
          const auto start = std::chrono::steady_clock::now();
          response = service.Execute(request);
          ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();
          ++attempts;
          if (response.status.ok() || attempts >= max_attempts ||
              response.status.code() != StatusCode::kUnavailable ||
              response.retry_after_ms <= 0) {
            break;
          }
          ++local_retries;
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(
                  std::min(response.retry_after_ms, 100.0)));
        }
        if (is_poison) {
          ++local_poison;
          if (response.status.ok()) ++local_poison_ok;
          continue;
        }
        if (response.status.ok()) {
          local_ms.push_back(ms);
          if (std::abs(response.probability - oracle[schedule[i]]) > 1e-9) {
            ++local_wrong;
          }
        } else {
          ++local_failed;
        }
      }
      std::lock_guard<std::mutex> lock(agg_mu);
      accepted_ms.insert(accepted_ms.end(), local_ms.begin(), local_ms.end());
      out.wrong_answers += local_wrong;
      out.retries += local_retries;
      out.non_poison_failed += local_failed;
      out.poison_offered += local_poison;
      out.poison_answered += local_poison_ok;
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) threads.emplace_back(submitter);
    for (auto& t : threads) t.join();
    out.qps = schedule.size() / timer.ElapsedSeconds();
    const uint64_t non_poison = schedule.size() - out.poison_offered;
    out.availability =
        non_poison == 0
            ? 1.0
            : static_cast<double>(non_poison - out.non_poison_failed) /
                  static_cast<double>(non_poison);
    if (!accepted_ms.empty()) {
      std::sort(accepted_ms.begin(), accepted_ms.end());
      out.accepted_p99_ms =
          accepted_ms[static_cast<size_t>(0.99 * (accepted_ms.size() - 1))];
    }
    out.stats = service.stats();
  }
  if (inject) fault::DisarmAll();
  return out;
}

// --- Introspection section: debug-server overhead under load --------------

// Minimal loopback GET draining the whole response (bench-local scraper;
// the debug server closes after one response).
bool ScrapeOnce(int port, const char* path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return false;
  }
  const std::string request = std::string("GET ") + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) < 0) {
    ::close(fd);
    return false;
  }
  char buf[4096];
  while (::read(fd, buf, sizeof(buf)) > 0) {
  }
  ::close(fd);
  return true;
}

// Closed-loop matched stream for the overhead comparison: same schedule,
// same options, every accepted answer oracle-checked. Returns QPS.
// Runs the schedule (repeating whole passes until at least `min_seconds`
// of wall time has elapsed — a single pass over a warm plan cache is far
// too quick to amortize a 1 Hz scrape) and returns throughput in QPS.
// Every OK answer is checked against the oracle.
double RunMatchedStream(const std::vector<Ucq>& shapes,
                        const std::vector<double>& oracle,
                        const std::vector<int>& schedule, const Database& db,
                        QueryService* service, uint64_t* wrong,
                        double min_seconds = 0.0) {
  Timer timer;
  size_t total = 0;
  do {
    for (size_t at = 0; at < schedule.size();) {
      const size_t n = std::min<size_t>(32, schedule.size() - at);
      std::vector<QueryRequest> batch(n);
      for (size_t i = 0; i < n; ++i) {
        batch[i].query = shapes[schedule[at + i]];
        batch[i].db = &db;
        batch[i].route =
            schedule[at + i] % 2 == 0 ? PlanRoute::kObdd : PlanRoute::kSdd;
      }
      const auto responses = service->ExecuteBatch(batch);
      for (size_t i = 0; i < n; ++i) {
        if (responses[i].status.ok() &&
            std::abs(responses[i].probability - oracle[schedule[at + i]]) >
                1e-9) {
          ++*wrong;
        }
      }
      at += n;
    }
    total += schedule.size();
  } while (timer.ElapsedSeconds() < min_seconds);
  return total / timer.ElapsedSeconds();
}

}  // namespace
}  // namespace ctsdd

int main(int argc, char** argv) {
  using namespace ctsdd;
  std::string json_path;
  std::string trace_out;
  std::string metrics_out;
  std::string profile_out;
  int total_requests = 10000;
  int domain = 8;
  int debug_port = -1;
  int linger_secs = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--trace_out=", 12) == 0) {
      trace_out = argv[i] + 12;
    }
    if (std::strncmp(argv[i], "--metrics_out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    }
    if (std::strncmp(argv[i], "--profile_out=", 14) == 0) {
      profile_out = argv[i] + 14;
    }
    if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      total_requests = std::atoi(argv[i] + 11);
    }
    if (std::strncmp(argv[i], "--domain=", 9) == 0) {
      domain = std::atoi(argv[i] + 9);
    }
    if (std::strncmp(argv[i], "--debug_port=", 13) == 0) {
      debug_port = std::atoi(argv[i] + 13);
    }
    if (std::strncmp(argv[i], "--linger_secs=", 14) == 0) {
      linger_secs = std::atoi(argv[i] + 14);
    }
  }
  // Edge count capped by the full bipartite graph (tiny domains).
  const int edges = std::min(4 * domain, domain * domain);
  const int generations = 20;

  bench::Header("serve: steady-state mixed UCQ stream over a changing db");
  const std::vector<Ucq> queries = QueryPopulation(domain);
  bench::Note("domain " + std::to_string(domain) + ", " +
              std::to_string(2 * domain + edges) + " tuples, " +
              std::to_string(queries.size()) + " query shapes, " +
              std::to_string(generations) + " db generations, " +
              std::to_string(total_requests) + " requests");

  // Bounded configuration: the production shape. The ceiling must sit
  // above the largest single working set (one generation's plans in one
  // manager) — below that, every check collects, sheds live plans, and
  // recompiles them on the next request (GC thrash).
  ServeOptions bounded;
  bounded.num_shards = 4;
  bounded.plan_cache_capacity = 48;
  // Pools deep enough that the long-lived managers (the named queries'
  // fixed variable set) survive the per-constant churn and rely on node
  // GC, not wholesale retirement, to stay bounded.
  bounded.manager_pool_capacity = 32;
  bounded.gc_live_node_ceiling = 1 << 17;
  bounded.gc_check_interval = 16;
  const StreamResult gc =
      RunStream(queries, bounded, total_requests, domain, edges, generations,
                /*batch_size=*/64, /*seed=*/42);

  // Unbounded baseline: ceiling, plan cache, and manager pools too large
  // to ever act — the pre-serve regime where no node is ever collected
  // and no manager ever retired.
  ServeOptions unbounded = bounded;
  unbounded.plan_cache_capacity = 1 << 20;
  unbounded.manager_pool_capacity = 1 << 20;
  unbounded.gc_live_node_ceiling = 1 << 30;
  const StreamResult nogc =
      RunStream(queries, unbounded, total_requests, domain, edges,
                generations, /*batch_size=*/64, /*seed=*/42);

  PrintTrajectory("gc", gc);
  PrintTrajectory("no-gc", nogc);
  std::printf(
      "  [gc]    %.0f qps, hit rate %.1f%%, p50 %.3f ms, p95 %.3f ms, "
      "p99 %.3f ms\n",
      gc.qps, 100.0 * gc.stats.plan_hit_rate(), gc.stats.p50_ms,
      gc.stats.p95_ms, gc.stats.p99_ms);
  std::printf(
      "  [gc]    gc_runs %llu, reclaimed %llu, plan evictions %llu, "
      "final live %d (peak %d)\n",
      static_cast<unsigned long long>(gc.stats.totals.gc_runs),
      static_cast<unsigned long long>(gc.stats.totals.gc_reclaimed),
      static_cast<unsigned long long>(gc.stats.totals.plan_evictions),
      gc.stats.totals.live_nodes, gc.stats.totals.peak_live_nodes);
  std::printf(
      "  [no-gc] %.0f qps, hit rate %.1f%%, final live %d "
      "(monotone growth)\n",
      nogc.qps, 100.0 * nogc.stats.plan_hit_rate(),
      nogc.stats.totals.live_nodes);

  bench::Header("serve: repeated query vs cold per-query compile");
  const Database steady_db = RandomContentDb(domain, edges, /*seed=*/1);
  const Ucq repeated = NonHierarchicalH0Query();
  const int reps = 100;
  // Cold path: full CompileQuery (lineage + OBDD + SDD + cross-check)
  // from scratch per request — the one-shot pipeline regime.
  const double cold_ms = bench::MinMillis(3, [&] {
    for (int i = 0; i < reps; ++i) {
      auto r = CompileQuery(repeated, steady_db, VtreeStrategy::kBalanced);
      if (!r.ok()) std::exit(1);
    }
  });
  // Served path: one shard, plan cached after the first request.
  ServeOptions single;
  single.num_shards = 1;
  double served_ms = 0.0;
  {
    QueryService service(single);
    Rng rng(7);
    QueryRequest request;
    request.query = repeated;
    request.db = &steady_db;
    request.route = PlanRoute::kSdd;
    (void)service.Execute(request);  // warm the plan
    served_ms = bench::MinMillis(3, [&] {
      for (int i = 0; i < reps; ++i) {
        request.weights.assign(steady_db.num_tuples(),
                               0.1 + 0.8 * rng.NextDouble());
        (void)service.Execute(request);
      }
    });
  }
  std::printf(
      "  cold %.3f ms/query, served %.3f ms/query (weights varied), "
      "speedup %.1fx\n",
      cold_ms / reps, served_ms / reps, cold_ms / served_ms);

  bench::Header("serve: overload — open-loop arrivals at 1.5x capacity");
  // 80% mixed shapes, 20% adversarial wide unions (4 disjuncts each).
  std::vector<Ucq> shapes = QueryPopulation(domain);
  const size_t normal_shapes = shapes.size();
  for (Ucq& wide : AdversarialPopulation(domain, 6)) {
    shapes.push_back(std::move(wide));
  }
  std::vector<double> oracle(shapes.size());
  for (size_t i = 0; i < shapes.size(); ++i) {
    auto r = CompileQuery(shapes[i], steady_db, VtreeStrategy::kBalanced);
    if (!r.ok()) std::exit(1);
    oracle[i] = r->probability;
  }
  Rng sched_rng(99);
  std::vector<int> schedule(3000);
  for (int& s : schedule) {
    s = sched_rng.NextBool(0.2)
            ? static_cast<int>(
                  normal_shapes + sched_rng.NextBelow(shapes.size() -
                                                      normal_shapes))
            : static_cast<int>(sched_rng.NextBelow(normal_shapes));
  }

  // The robustness configuration: bounded queues shed past depth 8 per
  // shard, a 50 ms deadline bounds queue wait, and an 8192-node compile
  // budget caps any single adversarial compile (tripping it runs the
  // degradation ladder to the alternate representation).
  ServeOptions overloaded = bounded;
  overloaded.max_queue_depth = 8;
  overloaded.default_deadline_ms = 50;
  overloaded.compile_node_budget = 8192;

  // Capacity: closed-loop throughput of this exact population and
  // configuration (warm caches, no pacing).
  double capacity_qps = 0.0;
  {
    QueryService service(overloaded);
    Timer timer;
    for (size_t at = 0; at < schedule.size();) {
      const size_t n = std::min<size_t>(64, schedule.size() - at);
      std::vector<QueryRequest> batch(n);
      for (size_t i = 0; i < n; ++i) {
        batch[i].query = shapes[schedule[at + i]];
        batch[i].db = &steady_db;
        batch[i].route = schedule[at + i] % 2 == 0 ? PlanRoute::kObdd
                                                   : PlanRoute::kSdd;
      }
      (void)service.ExecuteBatch(batch);
      at += n;
    }
    capacity_qps = schedule.size() / timer.ElapsedSeconds();
  }

  const OverloadResult unloaded = RunOverload(
      shapes, oracle, schedule, steady_db, overloaded, 0.5 * capacity_qps);
  const OverloadResult overload = RunOverload(
      shapes, oracle, schedule, steady_db, overloaded, 1.5 * capacity_qps);
  const double p99_ratio =
      unloaded.accepted_p99_ms > 0
          ? overload.accepted_p99_ms / unloaded.accepted_p99_ms
          : 0.0;
  const bool resident_ok = overload.stats.totals.peak_live_nodes <=
                           2 * unloaded.stats.totals.peak_live_nodes + 1024;
  std::printf("  capacity %.0f qps (closed loop, warm)\n", capacity_qps);
  std::printf(
      "  [0.5x]  accepted p99 %.3f ms, shed rate %.1f%%, failures %.1f%%\n",
      unloaded.accepted_p99_ms, 100.0 * unloaded.shed_rate,
      100.0 * unloaded.failure_rate);
  std::printf(
      "  [1.5x]  accepted p99 %.3f ms (%.2fx baseline), shed rate %.1f%%, "
      "failures %.1f%%, wrong answers %llu\n",
      overload.accepted_p99_ms, p99_ratio, 100.0 * overload.shed_rate,
      100.0 * overload.failure_rate,
      static_cast<unsigned long long>(overload.wrong_answers));
  std::printf(
      "  [1.5x]  peak live %d (0.5x peak %d, bounded: %s), "
      "gc pause p99 %.3f ms\n",
      overload.stats.totals.peak_live_nodes,
      unloaded.stats.totals.peak_live_nodes, resident_ok ? "yes" : "NO",
      overload.stats.gc_pause_p99_ms);
  std::printf(
      "  [1.5x]  timeouts %llu, sheds %llu, budget aborts %llu, "
      "ladder fallbacks %llu\n",
      static_cast<unsigned long long>(overload.stats.totals.timeouts),
      static_cast<unsigned long long>(overload.stats.totals.sheds),
      static_cast<unsigned long long>(overload.stats.totals.budget_aborts),
      static_cast<unsigned long long>(overload.stats.totals.fallbacks));
  std::printf(
      "  [1.5x]  retries honoring retry_after_ms: %llu "
      "(%llu arrivals rescued)\n",
      static_cast<unsigned long long>(overload.retries),
      static_cast<unsigned long long>(overload.retry_successes));

  bench::Header("serve: memory pressure — hard ceiling at 60% of peak bytes");
  // Phase 1 (unconstrained): the same open-loop stream with accounting
  // flowing into a disabled governor (hard = 0: charges and peak are
  // tracked, nothing is enforced) to measure the unbounded accounted
  // footprint.
  const double mem_rate = 0.5 * capacity_qps;
  MemGovernor unbounded_gov;
  ServeOptions unconstrained_opts = overloaded;
  unconstrained_opts.mem_governor = &unbounded_gov;
  const OverloadResult unconstrained = RunOverload(
      shapes, oracle, schedule, steady_db, unconstrained_opts, mem_rate);
  const uint64_t unbounded_peak = unbounded_gov.peak_bytes();

  // Phase 2 (governed): hard ceiling at 60% of that peak, plus
  // byte-level reservation chaos — every ~257th governed reservation is
  // an injected allocation failure. Memory rejections are typed
  // RESOURCE_EXHAUSTED with a retry hint and final to these clients;
  // every accepted answer must still be oracle-exact, and the accounted
  // bytes must never cross the ceiling.
  const uint64_t mem_hard = unbounded_peak - unbounded_peak * 2 / 5;
  MemGovernor governed_gov;
  governed_gov.SetWatermarks(0, mem_hard);
  ServeOptions governed_opts = overloaded;
  governed_opts.mem_governor = &governed_gov;
  fault::FaultSpec flaky_reserve;
  flaky_reserve.fire_every = 257;
  flaky_reserve.action = [] {
    MemGovernor::FailNextReservationOnCurrentThread();
  };
  fault::Arm("mem.reserve", flaky_reserve);
  const OverloadResult governed = RunOverload(
      shapes, oracle, schedule, steady_db, governed_opts, mem_rate);
  fault::DisarmAll();

  const MemGovernorStats& mem = governed.stats.governor;
  const bool ceiling_ok =
      governed_gov.peak_bytes() <= mem_hard && mem.hard_breaches == 0;
  const double mem_p99_ratio =
      unconstrained.accepted_p99_ms > 0
          ? governed.accepted_p99_ms / unconstrained.accepted_p99_ms
          : 0.0;
  const bool mem_p99_ok =
      governed.accepted_p99_ms <= 2.0 * unconstrained.accepted_p99_ms;
  std::printf(
      "  unconstrained peak %.1f MB; governed ceiling %.1f MB (60%%)\n",
      unbounded_peak / (1024.0 * 1024.0), mem_hard / (1024.0 * 1024.0));
  std::printf(
      "  governed peak %.1f MB, hard breaches %llu (ceiling held: %s), "
      "wrong answers %llu\n",
      governed_gov.peak_bytes() / (1024.0 * 1024.0),
      static_cast<unsigned long long>(mem.hard_breaches),
      ceiling_ok ? "yes" : "NO",
      static_cast<unsigned long long>(governed.wrong_answers));
  std::printf(
      "  accepted p99 %.3f ms (%.2fx unconstrained %.3f ms, within 2x: %s), "
      "failures %.1f%%\n",
      governed.accepted_p99_ms, mem_p99_ratio, unconstrained.accepted_p99_ms,
      mem_p99_ok ? "yes" : "NO", 100.0 * governed.failure_rate);
  std::printf(
      "  admit denials %llu (injected %llu), compile cancels %llu, "
      "mem rejects %llu, mem aborts %llu, pressure evictions %llu\n",
      static_cast<unsigned long long>(mem.admit_denials),
      static_cast<unsigned long long>(mem.injected_denials),
      static_cast<unsigned long long>(mem.compile_cancels),
      static_cast<unsigned long long>(governed.stats.totals.mem_rejects),
      static_cast<unsigned long long>(governed.stats.totals.mem_aborts),
      static_cast<unsigned long long>(
          governed.stats.totals.pressure_evictions));
  std::printf(
      "  tier transitions soft %llu / critical %llu; rejected by cause: "
      "memory %llu, quarantine %llu\n",
      static_cast<unsigned long long>(mem.soft_transitions),
      static_cast<unsigned long long>(mem.critical_transitions),
      static_cast<unsigned long long>(governed.stats.rejected_memory),
      static_cast<unsigned long long>(governed.stats.rejected_quarantine));

  bench::Header("serve: recovery — chaos stream under supervision");
  // Poison: the shape whose *cheaper* ladder route demands the most
  // nodes. The serving budget is pinned between the rest of the
  // population and the poison shape, so normal traffic always has a
  // route that fits while the poison exhausts both — the genuine
  // negative-cache case (measured, not injected).
  const uint64_t demand_cap = 1u << 16;
  std::vector<uint64_t> demands(shapes.size());
  for (size_t i = 0; i < shapes.size(); ++i) {
    demands[i] = MinRouteDemand(shapes[i], steady_db, demand_cap);
  }
  const int poison_idx = static_cast<int>(
      std::max_element(demands.begin(), demands.end()) - demands.begin());
  uint64_t second_max = 0;
  for (size_t i = 0; i < demands.size(); ++i) {
    if (static_cast<int>(i) != poison_idx) {
      second_max = std::max(second_max, demands[i]);
    }
  }
  // 4x headroom over the cold-measured demand: a warm pooled manager can
  // cost more than a fresh one (apply-cache misses against resident
  // nodes), and the budget must never exhaust on legitimate traffic —
  // a double-route exhaust is a quarantine strike.
  const uint64_t recovery_budget = 4 * second_max + 512;
  const bool poison_separable = demands[poison_idx] > recovery_budget + 256;
  bench::Note("poison shape: min-route demand " +
              std::to_string(demands[poison_idx]) + " nodes vs population max " +
              std::to_string(second_max) + "; serving budget " +
              std::to_string(recovery_budget) +
              (poison_separable ? "" : " (WARNING: not separable)"));

  ServeOptions recovery = bounded;
  recovery.max_queue_depth = 16;
  recovery.compile_node_budget = recovery_budget;
  recovery.heartbeat_window_ms = 20;
  recovery.hedge_after_ms = 25;
  recovery.quarantine_threshold = 3;
  recovery.quarantine_parole_ms = 120000;  // beyond the stream: permanent
  recovery.quarantine_parole_max_ms = 120000;

  // ~2% of the stream is the poison shape; the rest draws uniformly from
  // the normal population.
  Rng rec_rng(4242);
  std::vector<int> rec_schedule(total_requests);
  for (int& s : rec_schedule) {
    s = rec_rng.NextBool(0.02)
            ? poison_idx
            : static_cast<int>(rec_rng.NextBelow(normal_shapes));
  }

  const RecoveryResult fault_free =
      RunRecovery(shapes, oracle, rec_schedule, poison_idx, steady_db,
                  recovery, /*inject=*/false, /*max_attempts=*/5);
  const RecoveryResult chaos =
      RunRecovery(shapes, oracle, rec_schedule, poison_idx, steady_db,
                  recovery, /*inject=*/true, /*max_attempts=*/5);
  const double recovery_p99_ratio =
      fault_free.accepted_p99_ms > 0
          ? chaos.accepted_p99_ms / fault_free.accepted_p99_ms
          : 0.0;
  // Tail gate: recovery may add at most one detection window to the
  // accepted tail on top of 1.5x the fault-free p99. The additive term
  // matters when the fault-free baseline is sub-millisecond (long warm
  // streams are nearly all cache hits): a victim queued behind a stall
  // waits up to a window before supervision acts, and gating on the
  // bare ratio would then fail runs whose absolute tail is fine.
  const bool recovery_p99_ok =
      chaos.accepted_p99_ms <=
      1.5 * fault_free.accepted_p99_ms + recovery.heartbeat_window_ms;
  // Resident bound under chaos: every restart leaves a carcass whose
  // frozen nodes coexist with the fresh worker's recompiles until the
  // supervisor reaps it, so the peak may exceed the fault-free peak by
  // up to one worker's share per restart (skew makes per-shard share an
  // estimate, hence the 2x base).
  const int per_worker_share = std::max(
      1, fault_free.stats.totals.peak_live_nodes /
             static_cast<int>(recovery.num_shards));
  const bool recovery_resident_ok =
      chaos.stats.totals.peak_live_nodes <=
      2 * fault_free.stats.totals.peak_live_nodes +
          static_cast<int>(chaos.stats.supervision.shard_restarts) *
              per_worker_share +
          1024;
  // Each quarantine strike is one full ladder compile burned on the
  // poison signature. Sequentially that is bounded by the threshold;
  // concurrent submitters can each have one pre-quarantine compile in
  // flight, hence the allowance.
  const bool poison_bounded =
      chaos.stats.supervision.quarantine_strikes <=
      static_cast<uint64_t>(recovery.quarantine_threshold) + 8;
  std::printf(
      "  [fault-free] %.0f qps, availability %.3f%% (%llu non-poison failed, "
      "%llu budget aborts), accepted p99 %.3f ms\n",
      fault_free.qps, 100.0 * fault_free.availability,
      static_cast<unsigned long long>(fault_free.non_poison_failed),
      static_cast<unsigned long long>(fault_free.stats.totals.budget_aborts),
      fault_free.accepted_p99_ms);
  std::printf(
      "  [chaos]      %.0f qps, availability %.3f%% (non-poison), accepted "
      "p99 %.3f ms (%.2fx fault-free, within 1.5x + window: %s), "
      "wrong answers %llu\n",
      chaos.qps, 100.0 * chaos.availability, chaos.accepted_p99_ms,
      recovery_p99_ratio, recovery_p99_ok ? "yes" : "NO",
      static_cast<unsigned long long>(chaos.wrong_answers));
  std::printf(
      "  [chaos]      hangs %llu, deaths %llu, restarts %llu, failed on "
      "restart %llu, client retries %llu\n",
      static_cast<unsigned long long>(chaos.stats.supervision.hangs_detected),
      static_cast<unsigned long long>(chaos.stats.supervision.deaths_detected),
      static_cast<unsigned long long>(chaos.stats.supervision.shard_restarts),
      static_cast<unsigned long long>(
          chaos.stats.supervision.failed_on_restart),
      static_cast<unsigned long long>(chaos.retries));
  std::printf(
      "  [chaos]      hedges %llu (wins %llu, cancels %llu), poison: %llu "
      "offered, %llu strikes (bounded: %s), %llu fast rejects, %llu answered\n",
      static_cast<unsigned long long>(
          chaos.stats.supervision.hedges_dispatched),
      static_cast<unsigned long long>(chaos.stats.supervision.hedge_wins),
      static_cast<unsigned long long>(chaos.stats.supervision.hedge_cancels),
      static_cast<unsigned long long>(chaos.poison_offered),
      static_cast<unsigned long long>(
          chaos.stats.supervision.quarantine_strikes),
      poison_bounded ? "yes" : "NO",
      static_cast<unsigned long long>(
          chaos.stats.supervision.quarantine_rejects),
      static_cast<unsigned long long>(chaos.poison_answered));
  std::printf(
      "  [chaos]      peak live %d (fault-free %d, bounded: %s)\n",
      chaos.stats.totals.peak_live_nodes,
      fault_free.stats.totals.peak_live_nodes,
      recovery_resident_ok ? "yes" : "NO");

  bench::Header("serve: introspection — debug server idle and scraped at 1 Hz");
  // Three matched runs of the same warm WMC-dominated schedule: no debug
  // server, server bound but idle, and server scraped at ~1 Hz (the
  // Prometheus cadence). Every accepted answer is oracle-checked in all
  // three — introspection must never perturb results, only (boundedly)
  // throughput.
  Rng intro_rng(2026);
  std::vector<int> intro_schedule(std::max(1000, total_requests / 4));
  for (int& s : intro_schedule) {
    s = static_cast<int>(intro_rng.NextBelow(normal_shapes));
  }
  ServeOptions intro = bounded;
  intro.num_shards = 2;
  uint64_t intro_wrong = 0;
  double qps_no_debug = 0, qps_idle = 0, qps_scraped = 0;
  // Each configuration runs for >= kIntroSeconds so a 1 Hz scraper gets
  // several scrapes in and their cost is amortized over a real stream;
  // best-of-kIntroReps per configuration shaves scheduler noise (on a
  // 1-CPU host one badly-timed preemption can cost 20%).
  const double kIntroSeconds = 3.0;
  const int kIntroReps = 2;
  std::atomic<uint64_t> scrape_count{0}, scrape_attempts{0};
  for (int rep = 0; rep < kIntroReps; ++rep) {
    {
      QueryService service(intro);
      qps_no_debug = std::max(
          qps_no_debug, RunMatchedStream(shapes, oracle, intro_schedule,
                                         steady_db, &service, &intro_wrong,
                                         kIntroSeconds));
    }
    {
      ServeOptions with_debug = intro;
      with_debug.debug_port = 0;
      QueryService service(with_debug);
      qps_idle = std::max(
          qps_idle, RunMatchedStream(shapes, oracle, intro_schedule,
                                     steady_db, &service, &intro_wrong,
                                     kIntroSeconds));
    }
    {
      ServeOptions with_debug = intro;
      with_debug.debug_port = 0;
      QueryService service(with_debug);
      std::atomic<bool> stop{false};
      std::thread scraper([&, port = service.debug_port()] {
        const char* paths[] = {"/metrics", "/healthz", "/statusz", "/plansz"};
        size_t i = 0;
        // Deadline-based 1 Hz cadence: under full CPU contention
        // individual sleeps stretch, so pace against absolute wakeup
        // times instead of accumulating sleep_for drift.
        auto next = std::chrono::steady_clock::now();
        while (!stop.load(std::memory_order_relaxed)) {
          scrape_attempts.fetch_add(1, std::memory_order_relaxed);
          if (port > 0 && ScrapeOnce(port, paths[i++ % 4])) {
            scrape_count.fetch_add(1, std::memory_order_relaxed);
          }
          next += std::chrono::seconds(1);
          while (!stop.load(std::memory_order_relaxed) &&
                 std::chrono::steady_clock::now() < next) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
        }
      });
      qps_scraped = std::max(
          qps_scraped, RunMatchedStream(shapes, oracle, intro_schedule,
                                        steady_db, &service, &intro_wrong,
                                        kIntroSeconds));
      stop.store(true);
      scraper.join();
    }
  }
  const double idle_ratio = qps_no_debug > 0 ? qps_idle / qps_no_debug : 0.0;
  const double scraped_ratio =
      qps_no_debug > 0 ? qps_scraped / qps_no_debug : 0.0;
  // Honest yes/NO on the acceptance gates (noisy on a 1-CPU host where
  // the scraper thread steals cycles outright; recorded, not enforced).
  const bool idle_ok = idle_ratio >= 0.98;
  const bool scraped_ok = scraped_ratio >= 0.95;
  std::printf(
      "  no-debug %.0f qps; idle %.0f qps (%.3fx, within 2%%: %s); "
      "scraped %.0f qps (%.3fx, within 5%%: %s)\n",
      qps_no_debug, qps_idle, idle_ratio, idle_ok ? "yes" : "NO", qps_scraped,
      scraped_ratio, scraped_ok ? "yes" : "NO");
  std::printf(
      "  %llu/%llu scrapes served, wrong answers across all runs: %llu\n",
      static_cast<unsigned long long>(scrape_count.load()),
      static_cast<unsigned long long>(scrape_attempts.load()),
      static_cast<unsigned long long>(intro_wrong));

  if (!profile_out.empty()) {
    bench::Header("serve: sampling profile (collapsed stacks)");
    if (!obs::Profiler::Supported()) {
      std::fprintf(stderr, "  profiler unsupported on this platform\n");
    } else {
      // The driving thread does real per-request work (batch assembly,
      // oracle checks) — register it so the profile covers the whole
      // closed loop, not just the worker threads. A fresh service per
      // pass keeps the stream compile-heavy: warm cached serving burns
      // so little CPU that tick-granularity CPU-clock timers (~250
      // fires per CPU-second per thread) would see almost nothing.
      obs::Profiler::RegisterCurrentThread("bench-main");
      obs::Profiler::Clear();
      obs::Profiler::Arm();
      uint64_t profiled_wrong = 0;
      Timer profile_timer;
      do {
        QueryService service(intro);
        (void)RunMatchedStream(shapes, oracle, intro_schedule, steady_db,
                               &service, &profiled_wrong);
      } while (profile_timer.ElapsedSeconds() < 2.0);
      obs::Profiler::Disarm();
      const obs::Profiler::Stats pstats = obs::Profiler::stats();
      const std::string collapsed = obs::Profiler::Collapsed();
      if (std::FILE* f = std::fopen(profile_out.c_str(), "w")) {
        std::fwrite(collapsed.data(), 1, collapsed.size(), f);
        std::fclose(f);
      } else {
        std::fprintf(stderr, "cannot write %s\n", profile_out.c_str());
        return 1;
      }
      std::printf(
          "  %llu samples (%llu dropped, %llu truncated) -> %s\n",
          static_cast<unsigned long long>(pstats.samples),
          static_cast<unsigned long long>(pstats.dropped),
          static_cast<unsigned long long>(pstats.truncated),
          profile_out.c_str());
    }
  }

  // --- Traced segment: a short stream with the tracer armed ---------------
  // Fresh database content (cold compiles) and exec workers, so the
  // exported trace carries the full span taxonomy: request tracks,
  // queue.wait, shard.process, compile (+ budget.lease instants), wmc,
  // gc spans, and exec.task spans on the exec-N tracks. The segment runs
  // at a capped domain regardless of --domain: the export is a taxonomy
  // artifact gated by scripts/validate_trace.py, and it must fit the
  // per-thread rings without wrapping (a wrapped ring overwrites early
  // terminal events and leaves async request tracks unbalanced).
  if (!trace_out.empty() || !metrics_out.empty()) {
    bench::Header("serve: traced segment (tracer armed)");
    obs::Tracer::Clear();
    obs::Tracer::Arm(/*events_per_thread=*/size_t{1} << 17);
    ServeOptions traced = bounded;
    traced.num_shards = 2;
    traced.exec_workers = 2;  // cold compiles fork: exec.task spans appear
    traced.heartbeat_window_ms = 200;
    traced.hedge_after_ms = 50;
    const int traced_domain = std::min(domain, 5);
    const int traced_edges =
        std::min(4 * traced_domain, traced_domain * traced_domain);
    const std::vector<Ucq> traced_queries = QueryPopulation(traced_domain);
    {
      QueryService service(traced);
      const Database traced_db =
          RandomContentDb(traced_domain, traced_edges, /*seed=*/777);
      Rng rng(123);
      std::vector<QueryRequest> batch;
      for (int i = 0; i < 256; ++i) {
        QueryRequest request;
        request.query = traced_queries[rng.NextBelow(traced_queries.size())];
        request.db = &traced_db;
        request.route =
            rng.NextBool(0.5) ? PlanRoute::kObdd : PlanRoute::kSdd;
        batch.push_back(std::move(request));
        if (batch.size() == 32) {
          (void)service.ExecuteBatch(batch);
          batch.clear();
        }
      }
      if (!batch.empty()) (void)service.ExecuteBatch(batch);
      if (!metrics_out.empty()) {
        const std::string metrics_json = service.MetricsJson();
        if (std::FILE* f = std::fopen(metrics_out.c_str(), "w")) {
          std::fwrite(metrics_json.data(), 1, metrics_json.size(), f);
          std::fclose(f);
          std::printf("  metrics snapshot -> %s\n", metrics_out.c_str());
        } else {
          std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
          return 1;
        }
      }
    }
    obs::Tracer::Disarm();
    if (!trace_out.empty()) {
      if (!obs::Tracer::WriteChromeTrace(trace_out)) {
        std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
        return 1;
      }
      std::printf("  chrome trace -> %s (%llu events dropped)\n",
                  trace_out.c_str(),
                  static_cast<unsigned long long>(obs::Tracer::Dropped()));
    }
    obs::Tracer::Clear();
  }

  if (!json_path.empty()) {
    bench::WriteMetaSection(
        json_path,
        {{"governed_ceiling_bytes", static_cast<double>(mem_hard)}});
    // Plateau: sampling instants are noisy (pre/post GC), so compare
    // halves — the second half's peak must not exceed 2x the first
    // half's (the no-GC baseline grows ~5x half-over-half here).
    const auto& d = gc.live_per_decile;
    const int first_half = *std::max_element(d.begin(), d.begin() + 5);
    const int second_half = *std::max_element(d.begin() + 5, d.end());
    const bool plateau_ok = second_half <= 2 * first_half;
    bench::WriteJsonSection(
        json_path, "serve_steady_state",
        {
            {"requests", static_cast<double>(total_requests)},
            {"qps", gc.qps},
            {"p50_ms", gc.stats.p50_ms},
            {"p95_ms", gc.stats.p95_ms},
            {"p99_ms", gc.stats.p99_ms},
            {"plan_hit_rate", gc.stats.plan_hit_rate()},
            {"plan_evictions",
             static_cast<double>(gc.stats.totals.plan_evictions)},
            {"gc_runs", static_cast<double>(gc.stats.totals.gc_runs)},
            {"gc_reclaimed",
             static_cast<double>(gc.stats.totals.gc_reclaimed)},
            {"final_live_nodes",
             static_cast<double>(gc.stats.totals.live_nodes)},
            {"peak_live_nodes",
             static_cast<double>(gc.stats.totals.peak_live_nodes)},
            {"plateau_ok", plateau_ok ? 1.0 : 0.0},
        },
        /*append=*/true);
    bench::WriteJsonSection(
        json_path, "serve_unbounded_baseline",
        {
            {"qps", nogc.qps},
            {"second_decile_live_nodes",
             static_cast<double>(nogc.live_per_decile[1])},
            {"final_live_nodes",
             static_cast<double>(nogc.stats.totals.live_nodes)},
        },
        /*append=*/true);
    bench::WriteJsonSection(
        json_path, "serve_repeated_vs_cold",
        {
            {"cold_ms_per_query", cold_ms / reps},
            {"served_ms_per_query", served_ms / reps},
            {"speedup", cold_ms / served_ms},
        },
        /*append=*/true);
    bench::WriteJsonSection(
        json_path, "serve_overload",
        {
            {"capacity_qps", capacity_qps},
            {"offered_multiplier", 1.5},
            {"adversarial_fraction", 0.2},
            {"accepted_p99_ms", overload.accepted_p99_ms},
            {"unloaded_p99_ms", unloaded.accepted_p99_ms},
            {"p99_ratio", p99_ratio},
            {"shed_rate", overload.shed_rate},
            {"failure_rate", overload.failure_rate},
            {"wrong_answers",
             static_cast<double>(overload.wrong_answers)},
            {"peak_live_nodes",
             static_cast<double>(overload.stats.totals.peak_live_nodes)},
            {"resident_bounded", resident_ok ? 1.0 : 0.0},
            {"gc_pause_p99_ms", overload.stats.gc_pause_p99_ms},
            {"client_retries", static_cast<double>(overload.retries)},
            {"retry_successes",
             static_cast<double>(overload.retry_successes)},
        },
        /*append=*/true);
    bench::WriteJsonSection(
        json_path, "memory_pressure",
        {
            {"unbounded_peak_bytes", static_cast<double>(unbounded_peak)},
            {"hard_bytes", static_cast<double>(mem_hard)},
            {"governed_peak_bytes",
             static_cast<double>(governed_gov.peak_bytes())},
            {"hard_breaches", static_cast<double>(mem.hard_breaches)},
            {"ceiling_held", ceiling_ok ? 1.0 : 0.0},
            {"wrong_answers", static_cast<double>(governed.wrong_answers)},
            {"accepted_p99_ms", governed.accepted_p99_ms},
            {"unconstrained_p99_ms", unconstrained.accepted_p99_ms},
            {"p99_ratio", mem_p99_ratio},
            {"p99_ok", mem_p99_ok ? 1.0 : 0.0},
            {"failure_rate", governed.failure_rate},
            {"admit_denials", static_cast<double>(mem.admit_denials)},
            {"injected_denials", static_cast<double>(mem.injected_denials)},
            {"compile_cancels", static_cast<double>(mem.compile_cancels)},
            {"mem_rejects",
             static_cast<double>(governed.stats.totals.mem_rejects)},
            {"mem_aborts",
             static_cast<double>(governed.stats.totals.mem_aborts)},
            {"pressure_evictions",
             static_cast<double>(governed.stats.totals.pressure_evictions)},
            {"soft_transitions", static_cast<double>(mem.soft_transitions)},
            {"critical_transitions",
             static_cast<double>(mem.critical_transitions)},
            {"rejected_memory",
             static_cast<double>(governed.stats.rejected_memory)},
            {"rejected_quarantine",
             static_cast<double>(governed.stats.rejected_quarantine)},
        },
        /*append=*/true);
    bench::WriteJsonSection(
        json_path, "recovery",
        {
            {"requests", static_cast<double>(total_requests)},
            {"poison_fraction", 0.02},
            {"poison_min_demand",
             static_cast<double>(demands[poison_idx])},
            {"population_max_demand", static_cast<double>(second_max)},
            {"compile_node_budget", static_cast<double>(recovery_budget)},
            {"poison_separable", poison_separable ? 1.0 : 0.0},
            {"fault_free_qps", fault_free.qps},
            {"chaos_qps", chaos.qps},
            {"availability", chaos.availability},
            {"fault_free_p99_ms", fault_free.accepted_p99_ms},
            {"chaos_p99_ms", chaos.accepted_p99_ms},
            {"p99_ratio", recovery_p99_ratio},
            {"p99_ok", recovery_p99_ok ? 1.0 : 0.0},
            {"wrong_answers", static_cast<double>(chaos.wrong_answers)},
            {"client_retries", static_cast<double>(chaos.retries)},
            {"hangs_detected",
             static_cast<double>(chaos.stats.supervision.hangs_detected)},
            {"deaths_detected",
             static_cast<double>(chaos.stats.supervision.deaths_detected)},
            {"shard_restarts",
             static_cast<double>(chaos.stats.supervision.shard_restarts)},
            {"failed_on_restart",
             static_cast<double>(chaos.stats.supervision.failed_on_restart)},
            {"hedges_dispatched",
             static_cast<double>(chaos.stats.supervision.hedges_dispatched)},
            {"hedge_wins",
             static_cast<double>(chaos.stats.supervision.hedge_wins)},
            {"quarantine_strikes",
             static_cast<double>(chaos.stats.supervision.quarantine_strikes)},
            {"quarantine_rejects",
             static_cast<double>(chaos.stats.supervision.quarantine_rejects)},
            {"poison_offered", static_cast<double>(chaos.poison_offered)},
            {"poison_answered", static_cast<double>(chaos.poison_answered)},
            {"poison_strikes_bounded", poison_bounded ? 1.0 : 0.0},
            {"peak_live_nodes",
             static_cast<double>(chaos.stats.totals.peak_live_nodes)},
            {"resident_bounded", recovery_resident_ok ? 1.0 : 0.0},
        },
        /*append=*/true);
    bench::WriteJsonSection(
        json_path, "serve_introspection",
        {
            {"requests", static_cast<double>(intro_schedule.size())},
            {"qps_no_debug", qps_no_debug},
            {"qps_debug_idle", qps_idle},
            {"qps_debug_scraped_1hz", qps_scraped},
            {"idle_ratio", idle_ratio},
            {"scraped_ratio", scraped_ratio},
            {"idle_within_2pct", idle_ok ? 1.0 : 0.0},
            {"scraped_within_5pct", scraped_ok ? 1.0 : 0.0},
            {"scrapes_served", static_cast<double>(scrape_count.load())},
            {"scrape_attempts", static_cast<double>(scrape_attempts.load())},
            {"wrong_answers", static_cast<double>(intro_wrong)},
        },
        /*append=*/true);
  }

  // --- Linger: keep a debug-served instance alive for external scrapes ----
  // CI's smoke-scrape job backgrounds `bench_serve --debug_port=P
  // --linger_secs=N` and curls the endpoints; light background load keeps
  // /plansz populated and gives /profilez something to sample.
  if (linger_secs > 0) {
    bench::Header("serve: lingering for external scrapes");
    ServeOptions lingering = bounded;
    lingering.num_shards = 2;
    lingering.debug_port = debug_port >= 0 ? debug_port : 0;
    QueryService service(lingering);
    std::printf("  debug server on 127.0.0.1:%d for %d s\n",
                service.debug_port(), linger_secs);
    std::fflush(stdout);
    std::atomic<bool> stop{false};
    std::thread load([&] {
      Rng rng(555);
      while (!stop.load(std::memory_order_relaxed)) {
        QueryRequest request;
        request.query = shapes[rng.NextBelow(normal_shapes)];
        request.db = &steady_db;
        request.route =
            rng.NextBool(0.5) ? PlanRoute::kObdd : PlanRoute::kSdd;
        (void)service.Execute(request);
        // Fast enough cadence that an external /profilez scrape has CPU
        // to sample, slow enough to leave the box responsive.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    std::this_thread::sleep_for(std::chrono::seconds(linger_secs));
    stop.store(true);
    load.join();
  }
  return 0;
}
