// Result 1 / Theorem 4 / bound (4): a circuit of n variables and treewidth
// k compiles to an SDD of width f(k) and size O(f(k) * n) — *linear in n*
// at fixed k. Sweep the fixed-treewidth ladder family, compile through the
// full pipeline (tree decomposition -> Lemma 1 vtree -> canonical SDD),
// and report size/vars ratios plus the fitted power-law exponent (should
// be ~1.0, versus the n^O(f(k)) bound (1) of the OBDD route).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "circuit/families.h"
#include "compile/pipeline.h"
#include "util/timer.h"

namespace ctsdd {
namespace {

void Run() {
  bench::Header(
      "Result 1 (Thm 4, bound (4)): SDD size is linear in n at fixed "
      "treewidth k [ladder family, Lemma-1 vtree]");
  std::printf("%4s %6s %6s %8s %9s %9s %11s %9s\n", "k", "rows", "vars",
              "tw(dec)", "sdd_size", "sdd_width", "size/vars", "ms");
  for (int k = 1; k <= 3; ++k) {
    std::vector<double> xs;
    std::vector<double> ys;
    int width_seen = 0;
    for (int rows = 4; rows <= 24; rows += 4) {
      const Circuit circuit = LadderCircuit(rows, k);
      Timer timer;
      const auto result = CompileWithTreewidth(circuit);
      if (!result.ok()) {
        std::printf("pipeline failed: %s\n",
                    result.status().ToString().c_str());
        return;
      }
      const int vars = static_cast<int>(circuit.Vars().size());
      xs.push_back(vars);
      ys.push_back(result->sdd.size);
      width_seen = std::max(width_seen, result->sdd.width);
      std::printf("%4d %6d %6d %8d %9d %9d %11.2f %9.1f\n", k, rows, vars,
                  result->decomposition_width, result->sdd.size,
                  result->sdd.width,
                  static_cast<double>(result->sdd.size) / vars,
                  timer.ElapsedMillis());
    }
    // Linearity shows in the *marginal* cost: gates added per extra
    // variable must be constant once the width saturates.
    std::printf("  -> k=%d: marginal gates/var over the sweep:", k);
    for (size_t i = 1; i < xs.size(); ++i) {
      std::printf(" %.1f", (ys[i] - ys[i - 1]) / (xs[i] - xs[i - 1]));
    }
    std::printf("  (constant tail = linear size, bound (4)); max SDD "
                "width f(k) observed = %d (bounded in n)\n", width_seen);
  }
}

}  // namespace
}  // namespace ctsdd

int main() {
  ctsdd::Run();
  return 0;
}
