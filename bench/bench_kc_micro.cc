// Micro benchmarks (google-benchmark) for the knowledge-compilation
// substrate: OBDD/SDD apply throughput, model counting, weighted model
// counting, and the full treewidth pipeline.
//
// Run with --apply_core_json=PATH to instead execute the fixed apply-core
// suite (deterministic apply-heavy workloads) and write its timings as a
// machine-readable JSON section — the artifact tracked in
// BENCH_apply_core.json across perf PRs.

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "benchmark/benchmark.h"
#include "circuit/families.h"
#include "compile/pipeline.h"
#include "func/bool_func.h"
#include "obdd/obdd.h"
#include "obdd/obdd_compile.h"
#include "sdd/sdd.h"
#include "sdd/sdd_compile.h"
#include "util/random.h"
#include "vtree/from_decomposition.h"

namespace ctsdd {
namespace {

std::vector<int> Iota(int n) {
  std::vector<int> v(n);
  for (int i = 0; i < n; ++i) v[i] = i;
  return v;
}

void BM_ObddCompileParity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Circuit c = ParityCircuit(n);
  for (auto _ : state) {
    ObddManager m(Iota(n));
    benchmark::DoNotOptimize(CompileCircuitToObdd(&m, c));
  }
}
BENCHMARK(BM_ObddCompileParity)->Arg(16)->Arg(64)->Arg(256);

void BM_ObddCompileMajority(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Circuit c = MajorityCircuit(n);
  for (auto _ : state) {
    ObddManager m(Iota(n));
    benchmark::DoNotOptimize(CompileCircuitToObdd(&m, c));
  }
}
BENCHMARK(BM_ObddCompileMajority)->Arg(16)->Arg(32)->Arg(64);

void BM_SddCompileLadder(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Circuit c = LadderCircuit(rows, 2);
  const auto vtree = VtreeForCircuit(c);
  for (auto _ : state) {
    SddManager m(vtree.value());
    benchmark::DoNotOptimize(CompileCircuitToSdd(&m, c));
  }
}
BENCHMARK(BM_SddCompileLadder)->Arg(8)->Arg(16)->Arg(24);

void BM_SddApplyRandom(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(42);
  const Vtree vt = Vtree::Balanced(Iota(n));
  SddManager m(vt);
  const BoolFunc fa = BoolFunc::Random(Iota(n), &rng);
  const BoolFunc fb = BoolFunc::Random(Iota(n), &rng);
  const auto a = CompileFuncToSdd(&m, fa);
  const auto b = CompileFuncToSdd(&m, fb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.And(a, b));
    benchmark::DoNotOptimize(m.Or(a, b));
  }
}
BENCHMARK(BM_SddApplyRandom)->Arg(8)->Arg(12);

void BM_SddModelCount(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Circuit c = LadderCircuit(rows, 2);
  const auto vtree = VtreeForCircuit(c);
  SddManager m(vtree.value());
  const auto root = CompileCircuitToSdd(&m, c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.CountModels(root));
  }
}
BENCHMARK(BM_SddModelCount)->Arg(8)->Arg(16)->Arg(24);

void BM_SddWmc(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Circuit c = LadderCircuit(rows, 2);
  const auto vtree = VtreeForCircuit(c);
  SddManager m(vtree.value());
  const auto root = CompileCircuitToSdd(&m, c);
  std::map<int, double> probs;
  for (int v : c.Vars()) probs[v] = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.WeightedModelCount(root, probs));
  }
}
BENCHMARK(BM_SddWmc)->Arg(8)->Arg(16)->Arg(24);

void BM_TreewidthPipeline(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Circuit c = LadderCircuit(rows, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompileWithTreewidth(c));
  }
}
BENCHMARK(BM_TreewidthPipeline)->Arg(8)->Arg(16)->Arg(24);

// --- Apply-core suite ------------------------------------------------------
//
// Fixed, deterministic, apply-heavy workloads that exercise exactly the
// layers the high-throughput apply core owns: the OBDD/SDD unique tables
// and computed caches, the n-ary gate folds in the compilers, and the
// word-parallel BoolFunc kernel that CompileFuncToObdd memoizes on.

void PrintSddDiagnostics(const char* label, const SddManager& m) {
  bench::PrintSddDiagnostics(label, m.apply_cache_stats(),
                             m.sem_cache_stats(), m.apply_memo_stats(),
                             m.counters());
}

void RunApplyCoreSuite(const std::string& json_path) {
  std::vector<bench::JsonMetric> metrics;
  auto record = [&](const char* name, double ms) {
    metrics.push_back({name, ms});
    std::printf("  %-28s %10.2f ms\n", name, ms);
  };
  bench::Header("apply-core suite");

  record("obdd_parity512_compile_ms", bench::MinMillis(3, [] {
           const Circuit c = ParityCircuit(512);
           ObddManager m(Iota(512));
           benchmark::DoNotOptimize(CompileCircuitToObdd(&m, c));
         }));
  record("obdd_majority64_compile_ms", bench::MinMillis(3, [] {
           const Circuit c = MajorityCircuit(64);
           ObddManager m(Iota(64));
           benchmark::DoNotOptimize(CompileCircuitToObdd(&m, c));
         }));
  record("obdd_banded_cnf_compile_ms", bench::MinMillis(3, [] {
           const Circuit c = BandedCnfCircuit(1024, 6);
           ObddManager m(Iota(1024));
           benchmark::DoNotOptimize(CompileCircuitToObdd(&m, c));
         }));
  record("obdd_func18_compile_ms", bench::MinMillis(3, [] {
           Rng rng(271828);
           const BoolFunc f = BoolFunc::Random(Iota(18), &rng);
           ObddManager m(Iota(18));
           benchmark::DoNotOptimize(CompileFuncToObdd(&m, f));
         }));
  {
    // Kept alive across reps so the last rep's manager can be inspected.
    std::unique_ptr<SddManager> last;
    record("sdd_apply_pairs12_ms", bench::MinMillis(3, [&] {
             Rng rng(314159);
             const int n = 12, k = 8;
             last = std::make_unique<SddManager>(Vtree::Balanced(Iota(n)));
             SddManager& m = *last;
             std::vector<SddManager::NodeId> roots;
             for (int i = 0; i < k; ++i) {
               roots.push_back(
                   CompileFuncToSdd(&m, BoolFunc::Random(Iota(n), &rng)));
             }
             for (int i = 0; i < k; ++i) {
               for (int j = i + 1; j < k; ++j) {
                 benchmark::DoNotOptimize(m.And(roots[i], roots[j]));
                 benchmark::DoNotOptimize(m.Or(roots[i], roots[j]));
               }
             }
           }));
    PrintSddDiagnostics("pairs12", *last);
  }
  {
    // Vtree-guided semantic compilation on unstructured functions: the
    // partition path end to end (cofactor sweeps, word partitions, the
    // semantic node cache), with no circuit applies in sight.
    std::unique_ptr<SddManager> last;
    record("sdd_semantic_compile_ms", bench::MinMillis(3, [&] {
             Rng rng(8675309);
             const int n = 14;
             last = std::make_unique<SddManager>(Vtree::Balanced(Iota(n)));
             for (int i = 0; i < 12; ++i) {
               benchmark::DoNotOptimize(CompileFuncToSdd(
                   last.get(), BoolFunc::Random(Iota(n), &rng)));
             }
           }));
    PrintSddDiagnostics("semantic_compile", *last);
  }
  {
    std::unique_ptr<SddManager> last;
    record("sdd_ladder20_compile_ms", bench::MinMillis(3, [&] {
             const Circuit c = LadderCircuit(20, 3);
             const auto vtree = VtreeForCircuit(c);
             last = std::make_unique<SddManager>(vtree.value());
             benchmark::DoNotOptimize(CompileCircuitToSdd(last.get(), c));
           }));
    PrintSddDiagnostics("ladder20", *last);
  }

  if (bench::WriteJsonSection(json_path, "kc_micro_apply_core", metrics,
                              /*append=*/false)) {
    bench::WriteMetaSection(json_path);
    std::printf("  wrote %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace ctsdd

int main(int argc, char** argv) {
  // --apply_core_json=PATH runs the fixed suite instead of google-benchmark.
  static constexpr char kFlag[] = "--apply_core_json=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      ctsdd::RunApplyCoreSuite(argv[i] + sizeof(kFlag) - 1);
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
