// Micro benchmarks (google-benchmark) for the knowledge-compilation
// substrate: OBDD/SDD apply throughput, model counting, weighted model
// counting, and the full treewidth pipeline.

#include <map>
#include <vector>

#include "benchmark/benchmark.h"
#include "circuit/families.h"
#include "compile/pipeline.h"
#include "func/bool_func.h"
#include "obdd/obdd.h"
#include "obdd/obdd_compile.h"
#include "sdd/sdd.h"
#include "sdd/sdd_compile.h"
#include "util/random.h"
#include "vtree/from_decomposition.h"

namespace ctsdd {
namespace {

std::vector<int> Iota(int n) {
  std::vector<int> v(n);
  for (int i = 0; i < n; ++i) v[i] = i;
  return v;
}

void BM_ObddCompileParity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Circuit c = ParityCircuit(n);
  for (auto _ : state) {
    ObddManager m(Iota(n));
    benchmark::DoNotOptimize(CompileCircuitToObdd(&m, c));
  }
}
BENCHMARK(BM_ObddCompileParity)->Arg(16)->Arg(64)->Arg(256);

void BM_ObddCompileMajority(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Circuit c = MajorityCircuit(n);
  for (auto _ : state) {
    ObddManager m(Iota(n));
    benchmark::DoNotOptimize(CompileCircuitToObdd(&m, c));
  }
}
BENCHMARK(BM_ObddCompileMajority)->Arg(16)->Arg(32)->Arg(64);

void BM_SddCompileLadder(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Circuit c = LadderCircuit(rows, 2);
  const auto vtree = VtreeForCircuit(c);
  for (auto _ : state) {
    SddManager m(vtree.value());
    benchmark::DoNotOptimize(CompileCircuitToSdd(&m, c));
  }
}
BENCHMARK(BM_SddCompileLadder)->Arg(8)->Arg(16)->Arg(24);

void BM_SddApplyRandom(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(42);
  const Vtree vt = Vtree::Balanced(Iota(n));
  SddManager m(vt);
  const BoolFunc fa = BoolFunc::Random(Iota(n), &rng);
  const BoolFunc fb = BoolFunc::Random(Iota(n), &rng);
  const auto a = CompileFuncToSdd(&m, fa);
  const auto b = CompileFuncToSdd(&m, fb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.And(a, b));
    benchmark::DoNotOptimize(m.Or(a, b));
  }
}
BENCHMARK(BM_SddApplyRandom)->Arg(8)->Arg(12);

void BM_SddModelCount(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Circuit c = LadderCircuit(rows, 2);
  const auto vtree = VtreeForCircuit(c);
  SddManager m(vtree.value());
  const auto root = CompileCircuitToSdd(&m, c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.CountModels(root));
  }
}
BENCHMARK(BM_SddModelCount)->Arg(8)->Arg(16)->Arg(24);

void BM_SddWmc(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Circuit c = LadderCircuit(rows, 2);
  const auto vtree = VtreeForCircuit(c);
  SddManager m(vtree.value());
  const auto root = CompileCircuitToSdd(&m, c);
  std::map<int, double> probs;
  for (int v : c.Vars()) probs[v] = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.WeightedModelCount(root, probs));
  }
}
BENCHMARK(BM_SddWmc)->Arg(8)->Arg(16)->Arg(24);

void BM_TreewidthPipeline(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Circuit c = LadderCircuit(rows, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompileWithTreewidth(c));
  }
}
BENCHMARK(BM_TreewidthPipeline)->Arg(8)->Arg(16)->Arg(24);

}  // namespace
}  // namespace ctsdd

BENCHMARK_MAIN();
