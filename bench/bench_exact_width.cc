// Exact-width engine benchmark: the pruned branch-and-bound solvers
// (graph/exact_treewidth.h) against the dense subset-DP oracle
// (graph/width_oracle.h) on identical instances, branch-and-bound-only
// sizes the dense engine cannot reach, the WidthCache repeat-call path,
// and the CircuitTreewidthBounds vtree sweep that dominated tier-1 test
// time before this engine existed.
//
// Emits two JSON sections (min of 3 reps each, the BENCH protocol):
//   exact_width_dense — the old engine's times (feasible sizes only)
//   exact_width_bnb   — the new engine on the same workloads + extras
// Point --json at a scratch path and hand-merge into
// BENCH_exact_width.json (a curated before/after artifact).

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "circuit/families.h"
#include "circuit/primal_graph.h"
#include "compile/widths.h"
#include "func/bool_func.h"
#include "graph/exact_treewidth.h"
#include "graph/generators.h"
#include "graph/width_cache.h"
#include "graph/width_oracle.h"
#include "util/random.h"

namespace ctsdd {
namespace {

constexpr int kReps = 3;

// Sparse random instances in the circuit-primal-graph regime (partial
// k-trees keep the treewidth moderate while the search space grows).
Graph Instance(int n, int k, uint64_t seed) {
  Rng rng(seed);
  return RandomPartialKTree(n, k, 0.8, &rng);
}

void Run(const std::string& json_path, bool skip_dense) {
  bench::Header("Exact width: dense subset DP vs pruned branch-and-bound");
  std::vector<bench::JsonMetric> dense;
  std::vector<bench::JsonMetric> bnb;

  std::printf("%-34s %12s %12s %9s\n", "workload", "dense_ms", "bnb_ms",
              "speedup");
  // Head-to-head on identical instances at dense-feasible sizes. The
  // dense side costs ~25-30 s by design; --skip_dense (CI smoke) keeps
  // only the sub-second branch-and-bound side.
  for (const int n : {16, 18, 20, 22, 24}) {
    const Graph g = Instance(n, 5, /*seed=*/n);
    int tw_dense = -1;
    const double dense_ms =
        skip_dense ? 0.0
                   : bench::MinMillis(kReps, [&] {
                       tw_dense = DenseExactTreewidth(g).value();
                     });
    int tw_bnb = -1;
    const double bnb_ms = bench::MinMillis(kReps, [&] {
      WidthCache::Global().Clear();  // time the solver, not the cache
      tw_bnb = ExactTreewidth(g).value();
    });
    if (!skip_dense && tw_dense != tw_bnb) {
      std::printf("  !! width mismatch on n=%d: dense %d vs bnb %d\n", n,
                  tw_dense, tw_bnb);
    }
    const std::string key = "tw_n" + std::to_string(n) + "_ms";
    if (!skip_dense) dense.push_back({key, dense_ms});
    bnb.push_back({key, bnb_ms});
    std::printf("%-34s %12.2f %12.3f %8.0fx\n", ("treewidth n=" +
                std::to_string(n) + " (tw=" + std::to_string(tw_bnb) + ")")
                .c_str(),
                dense_ms, bnb_ms, dense_ms / bnb_ms);
  }
  {
    const Graph g = Instance(20, 4, /*seed=*/7);
    int pw_dense = -1;
    const double dense_ms =
        skip_dense ? 0.0
                   : bench::MinMillis(kReps, [&] {
                       pw_dense = DenseExactPathwidth(g).value();
                     });
    int pw_bnb = -1;
    const double bnb_ms = bench::MinMillis(kReps, [&] {
      WidthCache::Global().Clear();
      pw_bnb = ExactPathwidth(g).value();
    });
    if (!skip_dense && pw_dense != pw_bnb) {
      std::printf("  !! pathwidth mismatch: dense %d vs bnb %d\n", pw_dense,
                  pw_bnb);
    }
    if (!skip_dense) dense.push_back({"pw_n20_ms", dense_ms});
    bnb.push_back({"pw_n20_ms", bnb_ms});
    std::printf("%-34s %12.2f %12.3f %8.0fx\n",
                ("pathwidth n=20 (pw=" + std::to_string(pw_bnb) + ")").c_str(),
                dense_ms, bnb_ms, dense_ms / bnb_ms);
  }

  // Beyond the dense engine's ceiling: branch-and-bound only.
  for (const int n : {26, 28, 30, 32}) {
    const Graph g = Instance(n, 5, /*seed=*/100 + n);
    int tw = -1;
    const double ms = bench::MinMillis(kReps, [&] {
      WidthCache::Global().Clear();
      tw = ExactTreewidth(g).value();
    });
    const std::string key = "tw_n" + std::to_string(n) + "_ms";
    bnb.push_back({key, ms});
    std::printf("%-34s %12s %12.3f %9s\n", ("treewidth n=" +
                std::to_string(n) + " (tw=" + std::to_string(tw) + ")")
                .c_str(),
                "(2^n)", ms, "-");
  }

  // Cross-call memoization: the same circuit's primal graph re-solved.
  {
    const Circuit circuit = LadderCircuit(6, 2);
    double warm_ms = 0;
    const double cold_ms = bench::MinMillis(kReps, [&] {
      WidthCache::Global().Clear();
      ExactCircuitTreewidth(circuit).value();
      warm_ms = bench::MinMillis(
          10, [&] { ExactCircuitTreewidth(circuit).value(); });
    });
    bnb.push_back({"ladder6_tw_cold_ms", cold_ms});
    bnb.push_back({"ladder6_tw_cached_ms", warm_ms});
    std::printf("%-34s %12s %12.3f %9s\n", "ladder6 tw cold", "-", cold_ms,
                "-");
    std::printf("%-34s %12s %12.4f %9s\n", "ladder6 tw cached", "-", warm_ms,
                "-");
  }

  // The workload that used to burn ~330 s of tier-1 time: the full
  // 120-vtree CircuitTreewidthBounds sweep (compile + bounded exact
  // treewidth per vtree). Dense timing comes from the seed measurement in
  // BENCH_exact_width.json; regenerating it would take minutes by design.
  {
    Rng rng(5);
    const BoolFunc parity = BoolFunc::FromCircuit(ParityCircuit(4));
    const BoolFunc random4 = BoolFunc::Random({0, 1, 2, 3}, &rng);
    const double parity_ms = bench::MinMillis(kReps, [&] {
      WidthCache::Global().Clear();
      CircuitTreewidthBounds(parity);
    });
    const double random_ms = bench::MinMillis(kReps, [&] {
      WidthCache::Global().Clear();
      CircuitTreewidthBounds(random4);
    });
    bnb.push_back({"ctw_bounds_parity4_ms", parity_ms});
    bnb.push_back({"ctw_bounds_random4_ms", random_ms});
    std::printf("%-34s %12s %12.2f %9s\n", "ctw bounds sweep (parity4)", "-",
                parity_ms, "-");
    std::printf("%-34s %12s %12.2f %9s\n", "ctw bounds sweep (random4)", "-",
                random_ms, "-");
  }

  if (!json_path.empty()) {
    bool ok = true;
    if (!skip_dense) {
      ok = bench::WriteJsonSection(json_path, "exact_width_dense", dense);
    }
    if (ok && bench::WriteJsonSection(json_path, "exact_width_bnb", bnb,
                                      /*append=*/!skip_dense)) {
      bench::WriteMetaSection(json_path);
      std::printf("  wrote %s\n", json_path.c_str());
    }
  }
}

}  // namespace
}  // namespace ctsdd

int main(int argc, char** argv) {
  static constexpr char kFlag[] = "--json=";
  std::string json_path;
  bool skip_dense = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      json_path = argv[i] + sizeof(kFlag) - 1;
    } else if (std::strcmp(argv[i], "--skip_dense") == 0) {
      skip_dense = true;
    }
  }
  ctsdd::Run(json_path, skip_dense);
  return 0;
}
