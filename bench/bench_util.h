// Shared helpers for the table-emitting benchmark harnesses: fixed-width
// row printing and growth-rate estimation (log-log slope between sweep
// points), so every bench reports the paper's qualitative shape —
// constant vs linear vs polynomial vs exponential — next to raw numbers.

#ifndef CTSDD_BENCH_BENCH_UTIL_H_
#define CTSDD_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace ctsdd {
namespace bench {

// Line-buffer stdout even when piped, so partially completed sweeps
// survive timeouts and show up in tee'd logs as they happen.
inline void EnsureLineBuffered() {
  static const bool done = [] {
    std::setvbuf(stdout, nullptr, _IOLBF, 0);
    return true;
  }();
  (void)done;
}

inline void Header(const std::string& title) {
  EnsureLineBuffered();
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void Note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

// Least-squares slope of log(y) against log(x): the fitted exponent of a
// power law y ~ x^slope. Ignores non-positive entries.
inline double LogLogSlope(const std::vector<double>& x,
                          const std::vector<double>& y) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (size_t i = 0; i < x.size() && i < y.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

// Least-squares slope of log2(y) against x: the fitted exponent base of
// an exponential law y ~ 2^{slope * x}.
inline double SemiLogSlope(const std::vector<double>& x,
                           const std::vector<double>& y) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (size_t i = 0; i < x.size() && i < y.size(); ++i) {
    if (y[i] <= 0) continue;
    const double ly = std::log2(y[i]);
    sx += x[i];
    sy += ly;
    sxx += x[i] * x[i];
    sxy += x[i] * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

}  // namespace bench
}  // namespace ctsdd

#endif  // CTSDD_BENCH_BENCH_UTIL_H_
