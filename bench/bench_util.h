// Shared helpers for the table-emitting benchmark harnesses: fixed-width
// row printing and growth-rate estimation (log-log slope between sweep
// points), so every bench reports the paper's qualitative shape —
// constant vs linear vs polynomial vs exponential — next to raw numbers.

#ifndef CTSDD_BENCH_BENCH_UTIL_H_
#define CTSDD_BENCH_BENCH_UTIL_H_

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sdd/sdd.h"

namespace ctsdd {
namespace bench {

// Cache hit rates and work counters of an SDD manager, printed after SDD
// workloads so perf regressions in the tracked artifacts come with a
// diagnosis (did a cache hit rate drop? did element products explode?).
// Shared by bench_kc_micro and bench_isa_sdd.
inline void PrintSddDiagnostics(const char* label,
                                const SddManager::CacheStats& apply_cache,
                                const SddManager::CacheStats& sem_cache,
                                const SddManager::CacheStats& apply_memo,
                                const SddManager::PerfCounters& c) {
  auto rate = [](const SddManager::CacheStats& s) {
    return s.lookups == 0 ? 0.0
                          : 100.0 * static_cast<double>(s.hits) /
                                static_cast<double>(s.lookups);
  };
  std::printf(
      "    [%s] apply_cache %.1f%% of %llu, sem_cache %.1f%% of %llu, "
      "apply_memo %.1f%% of %llu\n",
      label, rate(apply_cache),
      static_cast<unsigned long long>(apply_cache.lookups), rate(sem_cache),
      static_cast<unsigned long long>(sem_cache.lookups), rate(apply_memo),
      static_cast<unsigned long long>(apply_memo.lookups));
  std::printf(
      "    [%s] applies %llu, products %llu, sem_hits %llu, absorb %llu, "
      "merges %llu, nary %llu (fallbacks %llu), partitions %llu "
      "(memo_hits %llu)\n",
      label, static_cast<unsigned long long>(c.apply_calls),
      static_cast<unsigned long long>(c.element_products),
      static_cast<unsigned long long>(c.sem_apply_hits),
      static_cast<unsigned long long>(c.absorb_collapses),
      static_cast<unsigned long long>(c.compression_merges),
      static_cast<unsigned long long>(c.nary_applies),
      static_cast<unsigned long long>(c.nary_fallbacks),
      static_cast<unsigned long long>(c.semantic_partitions),
      static_cast<unsigned long long>(c.semantic_memo_hits));
}

// Line-buffer stdout even when piped, so partially completed sweeps
// survive timeouts and show up in tee'd logs as they happen.
inline void EnsureLineBuffered() {
  static const bool done = [] {
    std::setvbuf(stdout, nullptr, _IOLBF, 0);
    return true;
  }();
  (void)done;
}

inline void Header(const std::string& title) {
  EnsureLineBuffered();
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void Note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

// Least-squares slope of log(y) against log(x): the fitted exponent of a
// power law y ~ x^slope. Ignores non-positive entries.
inline double LogLogSlope(const std::vector<double>& x,
                          const std::vector<double>& y) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (size_t i = 0; i < x.size() && i < y.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

// Least-squares slope of log2(y) against x: the fitted exponent base of
// an exponential law y ~ 2^{slope * x}.
inline double SemiLogSlope(const std::vector<double>& x,
                           const std::vector<double>& y) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (size_t i = 0; i < x.size() && i < y.size(); ++i) {
    if (y[i] <= 0) continue;
    const double ly = std::log2(y[i]);
    sx += x[i];
    sy += ly;
    sxx += x[i] * x[i];
    sxy += x[i] * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

// --- Machine-readable benchmark records -----------------------------------
//
// Benches that feed the perf trajectory emit flat JSON files of the shape
//   { "section": { "metric": value, ... }, ... }
// via WriteJsonSection below. Appending re-reads the file (it must be in
// the flat format written here — point benches at a scratch path, not at
// a curated artifact like BENCH_apply_core.json), replaces any existing
// section of the same name, and splices the new section before the
// closing brace, so several bench binaries can contribute sections to one
// file and reruns stay idempotent.

struct JsonMetric {
  std::string key;
  double value;
};

// True iff `s` is in the flat two-level shape WriteJsonSection produces:
// braces nest at most two deep and every depth-1 value is an object. A
// curated artifact like BENCH_apply_core.json (nested sections, string
// values) fails this check, which protects it from being clobbered.
inline bool IsFlatSectionFormat(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (++depth > 2) return false;
    } else if (c == '}') {
      --depth;
    } else if (c == ':' && depth == 1) {
      size_t j = i + 1;
      while (j < s.size() &&
             std::isspace(static_cast<unsigned char>(s[j]))) {
        ++j;
      }
      if (j >= s.size() || s[j] != '{') return false;
    }
  }
  return true;
}

// Returns false (leaving the file untouched) when the path cannot be
// written or holds content this writer did not produce.
inline bool WriteJsonSection(const std::string& path,
                             const std::string& section,
                             const std::vector<JsonMetric>& metrics,
                             bool append = false) {
  std::string existing;
  if (append) {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = buf.str();
      if (!existing.empty() && !IsFlatSectionFormat(existing)) {
        std::fprintf(stderr,
                     "WriteJsonSection: refusing to append to %s: not in "
                     "the flat bench-section format (use a scratch path)\n",
                     path.c_str());
        return false;
      }
      // Trim trailing whitespace and the closing brace.
      while (!existing.empty() &&
             (std::isspace(static_cast<unsigned char>(existing.back())) ||
              existing.back() == '}')) {
        const bool was_brace = existing.back() == '}';
        existing.pop_back();
        if (was_brace) break;
      }
      // Drop a previous section with the same name (sections are flat, so
      // its first '}' closes it) to keep keys unique across reruns.
      const std::string marker = "\"" + section + "\": {";
      const size_t pos = existing.find(marker);
      if (pos != std::string::npos) {
        size_t end = existing.find('}', pos);
        if (end != std::string::npos) {
          ++end;
          while (end < existing.size() &&
                 (std::isspace(static_cast<unsigned char>(existing[end])) ||
                  existing[end] == ',')) {
            ++end;
          }
          size_t start = existing.rfind('\n', pos);
          if (start == std::string::npos) start = pos;
          existing.erase(start, end - start);
        }
      }
      // Normalize the tail so exactly one separator is emitted below.
      while (!existing.empty() &&
             (std::isspace(static_cast<unsigned char>(existing.back())) ||
              existing.back() == ',')) {
        existing.pop_back();
      }
      if (existing == "{") existing.clear();
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "WriteJsonSection: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  if (existing.empty()) {
    out << "{\n";
  } else {
    out << existing << ",\n";
  }
  out << "  \"" << section << "\": {\n";
  for (size_t i = 0; i < metrics.size(); ++i) {
    char num[64];
    std::snprintf(num, sizeof(num), "%.6g", metrics[i].value);
    out << "    \"" << metrics[i].key << "\": " << num
        << (i + 1 < metrics.size() ? ",\n" : "\n");
  }
  out << "  }\n}\n";
  return true;
}

// Version of the flat-section schema above. Bump on any change to the
// section shape or metric semantics so trajectory consumers can gate.
inline constexpr double kBenchSchemaVersion = 2;

// Writes (or refreshes) the shared "meta" section every emitter stamps
// into its BENCH_*.json: schema version plus the host topology the
// numbers were measured on — without it, a perf delta between two
// artifact snapshots cannot be told apart from a host change. `extras`
// carries emitter-specific context (e.g. the governed memory ceiling).
inline bool WriteMetaSection(const std::string& path,
                             std::vector<JsonMetric> extras = {},
                             bool append = true) {
  std::vector<JsonMetric> metrics;
  metrics.push_back({"schema_version", kBenchSchemaVersion});
  metrics.push_back(
      {"host_cores",
       static_cast<double>(std::thread::hardware_concurrency())});
  for (JsonMetric& m : extras) metrics.push_back(std::move(m));
  return WriteJsonSection(path, "meta", metrics, append);
}

// Runs `body` `reps` times and returns the fastest wall-clock milliseconds —
// the standard min-of-reps estimator for microbenchmarks (robust to one-off
// scheduler noise without needing long runs).
template <typename Body>
double MinMillis(int reps, Body&& body) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace bench
}  // namespace ctsdd

#endif  // CTSDD_BENCH_BENCH_UTIL_H_
