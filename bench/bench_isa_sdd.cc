// Proposition 3 (Appendix A): ISA_n has *an* SDD of size O(n^{13/5})
// respecting the special vtree T_n, although its OBDD size is exponential
// in m.
//
// Two measurements are reported side by side:
//  1. the analytic size of the paper's explicit (non-canonical) SDD
//     witness — counted from the construction's own inventory: at most
//     3^{m+1}+1 small terms on Z_m (equation (38)), each AND gate pairing
//     a small term with an input gate, plus the O(n) upper OBDD over Y;
//  2. the size of the *canonical* (compressed + trimmed) SDD on the same
//     vtree T_n, which is what a canonicity-maintaining compiler builds.
// The canonical size exceeds the witness bound — compression is not a
// size-optimization, exactly the canonicity/succinctness tradeoff of Van
// den Broeck & Darwiche [15] that the paper cites. Proposition 3 claims
// existence, which measurement (1) reproduces; measurement (2) documents
// what canonical compilation pays on the same vtree.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "circuit/families.h"
#include "compile/isa.h"
#include "obdd/obdd.h"
#include "obdd/obdd_compile.h"

namespace ctsdd {
namespace {

// Size inventory of the Appendix A witness: number of small terms on Z_m
// times the input-gate bound, plus the 2^{k+1}-2 gates of the Y spine —
// the quantity the proof of Proposition 3 bounds by O(n^{13/5}).
double WitnessSizeBound(const IsaParams& p) {
  const double small_terms = std::pow(3.0, p.m + 1) + 1;  // (38)
  const double inputs = 2.0 * p.NumVars() + 2;
  const double y_spine = std::exp2(p.k + 1) - 2;
  return small_terms * inputs + y_spine;
}

void Run(const std::string& json_path) {
  bench::Header(
      "Prop. 3: ISA on the Appendix A vtree T_n — explicit witness bound "
      "vs canonical SDD");
  std::vector<bench::JsonMetric> metrics;
  std::printf("%4s %4s %6s %13s %12s %10s %12s %9s\n", "k", "m", "n",
              "witness<=", "n^{13/5}", "canonical", "obdd_size", "ms");
  std::vector<double> ns;
  std::vector<double> witness;
  for (const IsaParams params : {IsaParams{1, 2}, IsaParams{2, 4}}) {
    // Min of 3 full compiles (fresh managers each rep), matching the
    // BENCH_apply_core.json protocol.
    int sdd_size = 0;
    int obdd_size = 0;
    IsaCompilation comp;
    const double ms = bench::MinMillis(3, [&] {
      comp = CompileIsaOnAppendixVtree(params);
      const Circuit c = IsaCircuit(params);
      ObddManager obdd(c.Vars());
      obdd_size = obdd.Size(CompileCircuitToObdd(&obdd, c));
      sdd_size = comp.sdd.size;
    });
    ns.push_back(params.NumVars());
    witness.push_back(WitnessSizeBound(params));
    std::printf("%4d %4d %6d %13.0f %12.0f %10d %12d %9.1f\n", params.k,
                params.m, params.NumVars(), WitnessSizeBound(params),
                std::pow(params.NumVars(), 13.0 / 5.0), sdd_size, obdd_size,
                ms);
    // Cache hit rates and work counters from the last timed compile, so
    // perf regressions in this artifact come with a diagnosis.
    {
      const std::string label =
          "isa_k" + std::to_string(params.k) + "_m" + std::to_string(params.m);
      bench::PrintSddDiagnostics(label.c_str(), comp.apply_cache,
                                 comp.sem_cache, comp.apply_memo,
                                 comp.counters);
    }
    metrics.push_back({"isa_k" + std::to_string(params.k) + "_m" +
                           std::to_string(params.m) + "_compile_ms",
                       ms});
  }
  // The (5, 8) instance (n = 261) is reported analytically: the witness
  // stays polynomial while OBDDs are exponential in m; compiling the
  // canonical SDD at this size is out of reach for the same reason the
  // canonical sizes above already exceed the witness.
  {
    const IsaParams params{5, 8};
    ns.push_back(params.NumVars());
    witness.push_back(WitnessSizeBound(params));
    std::printf("%4d %4d %6d %13.0f %12.0f %10s %12s %9s\n", params.k,
                params.m, params.NumVars(), WitnessSizeBound(params),
                std::pow(params.NumVars(), 13.0 / 5.0), "-", "(exp in m)",
                "-");
  }
  std::printf("  -> witness size grows ~n^%.2f (Prop. 3 upper bound "
              "13/5 = 2.60); canonical SDDs on T_n are larger — the "
              "canonicity/succinctness tradeoff of [15]\n",
              bench::LogLogSlope(ns, witness));
  if (!json_path.empty()) {
    // Appends next to the kc_micro section so one artifact carries the
    // whole apply-core picture.
    if (bench::WriteJsonSection(json_path, "isa_sdd", metrics,
                                /*append=*/true)) {
      bench::WriteMetaSection(json_path);
      std::printf("  appended isa_sdd section to %s\n", json_path.c_str());
    }
  }
}

}  // namespace
}  // namespace ctsdd

int main(int argc, char** argv) {
  static constexpr char kFlag[] = "--json=";
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      json_path = argv[i] + sizeof(kFlag) - 1;
    }
  }
  ctsdd::Run(json_path);
  return 0;
}
