// Theorems 1-2 and equation (8): rank(cm(D_n, X, Y)) = 2^n, every
// disjoint rectangle cover across (X, Y) has >= 2^n rectangles, the
// canonical factor cover achieves it, and the SDD consequences: a vtree
// separating X from Y forces exponential size while the paired vtree
// stays linear.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "circuit/families.h"
#include "func/bool_func.h"
#include "lowerbound/rank.h"
#include "nnf/rectangle_cover.h"
#include "sdd/sdd.h"
#include "sdd/sdd_compile.h"

namespace ctsdd {
namespace {

Vtree PairedVtree(int n) {
  Vtree vt;
  int acc = -1;
  for (int i = 0; i < n; ++i) {
    const int pair = vt.AddInternal(vt.AddLeaf(i), vt.AddLeaf(n + i));
    acc = (acc < 0) ? pair : vt.AddInternal(acc, pair);
  }
  vt.SetRoot(acc);
  return vt;
}

Vtree SeparatedVtree(int n) {
  std::vector<int> vars;
  for (int i = 0; i < 2 * n; ++i) vars.push_back(i);
  return Vtree::Balanced(vars);  // left half = X, right half = Y
}

void Run() {
  bench::Header(
      "Disjointness D_n: rank lower bound (8) vs canonical cover vs SDD "
      "size under separating / paired vtrees");
  std::printf("%4s %8s %10s %12s %12s %12s\n", "n", "rank", "2^n",
              "cover_size", "sdd_sep", "sdd_paired");
  std::vector<double> ns;
  std::vector<double> sep_sizes;
  for (int n = 1; n <= 9; ++n) {
    int rank = -1;
    int cover = -1;
    if (n <= 8) {  // rank/cover need the 2n-variable truth table
      rank = DisjointnessRank(n);
      const BoolFunc f = BoolFunc::FromCircuit(DisjointnessCircuit(n));
      std::vector<int> x_vars;
      for (int i = 0; i < n; ++i) x_vars.push_back(i);
      cover =
          static_cast<int>(CanonicalRectangleCover(f, x_vars).size());
    }
    const Circuit c = DisjointnessCircuit(n);
    SddManager sep(SeparatedVtree(n));
    const int sep_size = sep.Size(CompileCircuitToSdd(&sep, c));
    SddManager paired(PairedVtree(n));
    const int paired_size = paired.Size(CompileCircuitToSdd(&paired, c));
    ns.push_back(n);
    sep_sizes.push_back(sep_size);
    if (rank >= 0) {
      std::printf("%4d %8d %10d %12d %12d %12d\n", n, rank, 1 << n, cover,
                  sep_size, paired_size);
    } else {
      std::printf("%4d %8s %10d %12s %12d %12d\n", n, "-", 1 << n, "-",
                  sep_size, paired_size);
    }
  }
  std::printf("  -> rank == 2^n exactly (equation (8)); separated-vtree "
              "SDD grows ~2^{%.2f n} while the paired vtree stays "
              "linear\n",
              bench::SemiLogSlope(ns, sep_sizes));
}

}  // namespace
}  // namespace ctsdd

int main() {
  ctsdd::Run();
  return 0;
}
