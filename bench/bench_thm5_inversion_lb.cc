// Theorem 5 / Lemma 8 (Result 3): if a query contains an inversion of
// length k, some lineage on O(n^2) variables needs deterministic
// structured NNF size 2^{Omega(n/k)}.
//
// Executable form of Lemma 8: fix a vtree T over the variables shared by
// H^0_{k,n}, ..., H^k_{k,n}; compile every H^i as an SDD respecting T and
// take the *maximum* size — Lemma 8 says this maximum is exponential for
// every T. We probe several vtree strategies (including the paper's own
// treewidth pipeline applied to the combined circuit) and report the
// minimum over strategies of the maximum over i, next to the analytic
// lower bound 2^{n/5k} and the rank certificate of the hardest slice.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "circuit/builder.h"
#include "circuit/families.h"
#include "sdd/sdd.h"
#include "sdd/sdd_compile.h"
#include "util/random.h"
#include "vtree/from_decomposition.h"
#include "vtree/vtree.h"

namespace ctsdd {
namespace {

std::vector<int> AllVars(int k, int n) {
  const HFamilyVars vars{k, n};
  std::vector<int> all(vars.TotalVars());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  return all;
}

// Balanced combination of subtrees (left-linear chains are pathological
// for apply-based compilation).
int CombineBalanced(Vtree* vt, std::vector<int> roots) {
  while (roots.size() > 1) {
    std::vector<int> next;
    for (size_t i = 0; i + 1 < roots.size(); i += 2) {
      next.push_back(vt->AddInternal(roots[i], roots[i + 1]));
    }
    if (roots.size() % 2 == 1) next.push_back(roots.back());
    roots = std::move(next);
  }
  return roots[0];
}

// Vtree grouping the chain cell-wise: for each (l, m), a subtree over
// z^1_{l,m}, ..., z^k_{l,m}, with the X and Y blocks on the sides — a
// plausible "good" structure an SDD compiler might find (it makes every
// middle layer H^i, 0 < i < k, linear-size).
Vtree CellGroupedVtree(int k, int n) {
  const HFamilyVars vars{k, n};
  Vtree vt;
  std::vector<int> blocks;
  for (int l = 1; l <= n; ++l) blocks.push_back(vt.AddLeaf(vars.X(l)));
  for (int l = 1; l <= n; ++l) {
    for (int m = 1; m <= n; ++m) {
      std::vector<int> cell;
      for (int i = 1; i <= k; ++i) cell.push_back(vt.AddLeaf(vars.Z(i, l, m)));
      blocks.push_back(CombineBalanced(&vt, cell));
    }
  }
  for (int m = 1; m <= n; ++m) blocks.push_back(vt.AddLeaf(vars.Y(m)));
  vt.SetRoot(CombineBalanced(&vt, blocks));
  return vt;
}

// Union circuit H^0 v ... v H^k — a stand-in for the lineage whose
// cofactors realize every H^i (Lemma 7).
Circuit UnionCircuit(int k, int n) {
  Circuit c;
  c.DeclareVars(HFamilyVars{k, n}.TotalVars());
  ExprFactory f(&c);
  std::vector<int> disjuncts;
  for (int i = 0; i <= k; ++i) {
    const Circuit hi = HChainCircuit(k, n, i);
    // Inline hi into c.
    std::vector<int> map(hi.num_gates());
    for (int g = 0; g < hi.num_gates(); ++g) {
      const Gate& gate = hi.gate(g);
      switch (gate.kind) {
        case GateKind::kVar:
          map[g] = c.VarGate(gate.var);
          break;
        case GateKind::kConstFalse:
          map[g] = c.ConstGate(false);
          break;
        case GateKind::kConstTrue:
          map[g] = c.ConstGate(true);
          break;
        case GateKind::kNot:
          map[g] = c.NotGate(map[gate.inputs[0]]);
          break;
        case GateKind::kAnd:
        case GateKind::kOr: {
          std::vector<int> inputs;
          for (int in : gate.inputs) inputs.push_back(map[in]);
          map[g] = gate.kind == GateKind::kAnd
                       ? c.AndGate(std::move(inputs))
                       : c.OrGate(std::move(inputs));
          break;
        }
      }
    }
    disjuncts.push_back(map[hi.output()]);
  }
  c.SetOutput(c.OrGate(std::move(disjuncts)));
  return c;
}

int MaxSddSizeOverLayers(int k, int n, const Vtree& vtree) {
  int max_size = 0;
  for (int i = 0; i <= k; ++i) {
    SddManager m(vtree);
    const auto root = CompileCircuitToSdd(&m, HChainCircuit(k, n, i));
    max_size = std::max(max_size, m.Size(root));
  }
  return max_size;
}

void Run() {
  for (int k = 1; k <= 2; ++k) {
    bench::Header("Theorem 5 / Lemma 8: inversion length k=" +
                  std::to_string(k) +
                  " -> max_i SDD size of H^i is 2^{Omega(n/k)} for every "
                  "vtree");
    std::printf("%4s %6s %10s %10s %10s %10s %12s %10s\n", "n", "vars",
                "rlinear", "balanced", "cellgrp", "pipeline",
                "min(max_i)", "2^{n/5k}");
    std::vector<double> ns;
    std::vector<double> best;
    const int n_max = (k == 1) ? 6 : 4;
    for (int n = 2; n <= n_max; ++n) {
      const std::vector<int> all = AllVars(k, n);
      // Per-strategy caps: layer-separating vtrees (right-linear,
      // balanced over the layer-contiguous numbering) make the middle
      // layers Theta(2^{n^2}) for k >= 2 — the theorem's content, but too
      // expensive to materialize past small n; the Lemma-1 vtree of the
      // union circuit is additionally apply-hostile. Skipped entries
      // print "-" and are excluded from the min (soundly: the minimum
      // over a subset only *over*estimates min over all strategies, and
      // the bound claims exponential growth for every vtree).
      const int s_rl = (n <= (k == 1 ? 6 : 3))
                           ? MaxSddSizeOverLayers(k, n, Vtree::RightLinear(all))
                           : -1;
      const int s_bal = (n <= (k == 1 ? 6 : 3))
                            ? MaxSddSizeOverLayers(k, n, Vtree::Balanced(all))
                            : -1;
      const int s_cell = MaxSddSizeOverLayers(k, n, CellGroupedVtree(k, n));
      int s_pipe = -1;
      if (n <= (k == 1 ? 4 : 3)) {
        const auto vt = VtreeForCircuit(UnionCircuit(k, n));
        if (vt.ok()) s_pipe = MaxSddSizeOverLayers(k, n, vt.value());
      }
      int min_max = s_cell;
      for (int s : {s_rl, s_bal, s_pipe}) {
        if (s >= 0) min_max = std::min(min_max, s);
      }
      ns.push_back(n);
      best.push_back(min_max);
      auto cell_of = [](int s, char* buf, size_t len) {
        if (s >= 0) {
          std::snprintf(buf, len, "%d", s);
        } else {
          std::snprintf(buf, len, "-");
        }
      };
      char rl_buf[16], bal_buf[16], pipe_buf[16];
      cell_of(s_rl, rl_buf, sizeof(rl_buf));
      cell_of(s_bal, bal_buf, sizeof(bal_buf));
      cell_of(s_pipe, pipe_buf, sizeof(pipe_buf));
      std::printf("%4d %6d %10s %10s %10d %10s %12d %10.1f\n", n,
                  static_cast<int>(all.size()), rl_buf, bal_buf, s_cell,
                  pipe_buf, min_max, std::exp2(n / (5.0 * k)));
    }
    std::printf("  -> min-over-vtrees of max-over-layers grows ~2^{%.2f "
                "n}; Lemma 8 guarantees exponent >= 1/(5k) = %.2f\n",
                bench::SemiLogSlope(ns, best), 1.0 / (5 * k));
  }
}

}  // namespace
}  // namespace ctsdd

int main() {
  ctsdd::Run();
  return 0;
}
