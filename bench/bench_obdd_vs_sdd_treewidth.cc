// Bound (1) vs bound (4): on bounded-treewidth circuit families, the
// OBDD route gives size n^O(f(k)) (Jha–Suciu) while the paper's pipeline
// gives SDDs of size O(f(k) n). Sweep tree CNFs (treewidth O(1),
// pathwidth Theta(log n)) and ladders, compare growth exponents.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "circuit/families.h"
#include "compile/pipeline.h"
#include "obdd/obdd.h"
#include "obdd/obdd_compile.h"

namespace ctsdd {
namespace {

void Sweep(const char* name, const std::vector<Circuit>& circuits) {
  bench::Header(std::string("OBDD (bound (1)) vs treewidth-SDD (bound (4)) "
                            "[") + name + "]");
  std::printf("%6s %10s %10s %10s %10s %12s\n", "vars", "obdd_size",
              "obdd_width", "sdd_size", "sdd_width", "sdd/vars");
  std::vector<double> ns;
  std::vector<double> obdd_sizes;
  std::vector<double> sdd_sizes;
  for (const Circuit& c : circuits) {
    ObddManager obdd(c.Vars());
    const auto obdd_root = CompileCircuitToObdd(&obdd, c);
    const auto sdd = CompileWithTreewidth(c);
    if (!sdd.ok()) continue;
    const int vars = static_cast<int>(c.Vars().size());
    ns.push_back(vars);
    obdd_sizes.push_back(obdd.Size(obdd_root));
    sdd_sizes.push_back(sdd->sdd.size);
    std::printf("%6d %10d %10d %10d %10d %12.2f\n", vars,
                obdd.Size(obdd_root), obdd.Width(obdd_root), sdd->sdd.size,
                sdd->sdd.width,
                static_cast<double>(sdd->sdd.size) / vars);
  }
  std::printf("  -> fitted exponents: OBDD size ~ n^%.2f, SDD size ~ "
              "n^%.2f (paper: OBDD polynomial with k-dependent degree, "
              "SDD linear)\n",
              bench::LogLogSlope(ns, obdd_sizes),
              bench::LogLogSlope(ns, sdd_sizes));
}

}  // namespace
}  // namespace ctsdd

int main() {
  using ctsdd::Circuit;
  using ctsdd::LadderCircuit;
  using ctsdd::TreeCnfCircuit;
  {
    std::vector<Circuit> tree_cnfs;
    for (int leaves = 4; leaves <= 64; leaves *= 2) {
      tree_cnfs.push_back(TreeCnfCircuit(leaves));
    }
    ctsdd::Sweep("tree CNF, treewidth O(1)", tree_cnfs);
  }
  {
    std::vector<Circuit> ladders;
    for (int rows = 4; rows <= 24; rows += 4) {
      ladders.push_back(LadderCircuit(rows, 3));
    }
    ctsdd::Sweep("ladder, k=3", ladders);
  }
  return 0;
}
