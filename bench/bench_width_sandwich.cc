// Proposition 2 and inequalities (22)-(23), (29)-(30): the width sandwich.
// For random functions and named families: fw, fiw, sdw relative to a
// common vtree, the treewidth of the compiled C_{F,T}, and the checks
//   fiw <= fw^2, sdw <= 2^{2 fw + 1}, tw(C_{F,T}) <= 3 fiw.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "circuit/families.h"
#include "circuit/primal_graph.h"
#include "compile/factor_compile.h"
#include "compile/sdd_canonical.h"
#include "compile/widths.h"
#include "func/bool_func.h"
#include "graph/exact_treewidth.h"
#include "util/random.h"

namespace ctsdd {
namespace {

void Row(const char* name, const BoolFunc& f, const Vtree& vt) {
  const int fw = FactorWidth(f, vt);
  const FactorCompilation cft = CompileFactorNnf(f, vt);
  const SddCanonicalCompilation sft = CompileCanonicalSdd(f, vt);
  int tw_cft;
  if (cft.circuit.num_gates() <= kMaxExactVertices) {
    tw_cft = ExactCircuitTreewidth(cft.circuit).value();
  } else {
    tw_cft = HeuristicCircuitTreewidth(cft.circuit);
  }
  const bool ok22 = cft.fiw <= fw * fw;
  const bool ok29 = sft.sdw <= (1 << std::min(2 * fw + 1, 30));
  const bool ok23 = tw_cft <= 3 * cft.fiw;
  std::printf("%-14s %4d %4d %4d %4d %10d %7s %7s %7s\n", name,
              f.num_vars(), fw, cft.fiw, sft.sdw, tw_cft,
              ok22 ? "ok" : "FAIL", ok29 ? "ok" : "FAIL",
              ok23 ? "ok" : "FAIL");
}

void Run() {
  bench::Header(
      "Width sandwich (Prop. 2, (22)-(23), (29)-(30)): fw / fiw / sdw / "
      "tw(C_{F,T})");
  std::printf("%-14s %4s %4s %4s %4s %10s %7s %7s %7s\n", "function", "n",
              "fw", "fiw", "sdw", "tw(CFT)", "(22)", "(29)", "(23)");
  Rng rng(2024);
  for (int i = 0; i < 6; ++i) {
    std::vector<int> vars;
    for (int v = 0; v < 4 + (i % 3); ++v) vars.push_back(v);
    const BoolFunc f = BoolFunc::Random(vars, &rng);
    const Vtree vt = Vtree::Random(vars, &rng);
    Row(("random#" + std::to_string(i)).c_str(), f, vt);
  }
  {
    const BoolFunc f = BoolFunc::FromCircuit(ParityCircuit(6));
    Row("parity6", f, Vtree::Balanced(f.vars()));
  }
  {
    const BoolFunc f = BoolFunc::FromCircuit(MajorityCircuit(5));
    Row("majority5", f, Vtree::Balanced(f.vars()));
  }
  {
    const BoolFunc f = BoolFunc::FromCircuit(DisjointnessCircuit(3));
    Row("disjoint3", f, Vtree::Balanced(f.vars()));
  }
  {
    const BoolFunc f = BoolFunc::FromCircuit(BandedCnfCircuit(6, 2));
    Row("banded6", f, Vtree::Balanced(f.vars()));
  }
  bench::Note("(22): fiw <= fw^2   (29): sdw <= 2^{2fw+1}   (23): "
              "tw(C_{F,T}) <= 3 fiw (hence ctw(F)/3 <= fiw(F))");

  bench::Header("Exact minimized widths over ALL vtrees (n <= 5)");
  std::printf("%-14s %6s %8s %8s\n", "function", "fw*", "fiw*", "sdw*");
  {
    const BoolFunc f = BoolFunc::FromCircuit(ParityCircuit(4));
    std::printf("%-14s %6d %8d %8d\n", "parity4",
                MinFactorWidthOverVtrees(f), MinFiwOverVtrees(f),
                MinSdwOverVtrees(f));
  }
  {
    const BoolFunc f = BoolFunc::FromCircuit(MajorityCircuit(5));
    std::printf("%-14s %6d %8d %8d\n", "majority5",
                MinFactorWidthOverVtrees(f), MinFiwOverVtrees(f),
                MinSdwOverVtrees(f));
  }
  {
    Rng rng2(7);
    const BoolFunc f = BoolFunc::Random({0, 1, 2, 3, 4}, &rng2);
    std::printf("%-14s %6d %8d %8d\n", "random5",
                MinFactorWidthOverVtrees(f), MinFiwOverVtrees(f),
                MinSdwOverVtrees(f));
  }
}

}  // namespace
}  // namespace ctsdd

int main() {
  ctsdd::Run();
  return 0;
}
