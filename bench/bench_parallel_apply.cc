// Speedup curves for the exec/ work-stealing parallel apply/compile
// paths: each workload runs sequentially (no pool attached), then with a
// TaskPool of 1/2/4/8 workers attached to the manager. The 1-worker
// configuration spawns no threads and routes through the sequential code
// path — its time vs `seq` bounds the attach overhead — while the larger
// pools exercise the concurrent unique-table/cache protocols and the
// fork-join recursion.
//
// Speedups are real parallelism measurements and therefore bounded by the
// host: on a single-core container every multi-worker configuration adds
// synchronization without adding compute, so the curve flattens at ~1x.
// The JSON records host_cpus so the artifact is interpretable; regenerate
// on a multi-core host for the scaling curve (workloads fork hundreds of
// independent element-product rows / cofactor branches, so available
// parallelism is not the limiter).
//
// Workloads (all cold-compile / apply-heavy, fresh managers per rep,
// min-of-3):
//   sdd_apply_pairs12  8 random 12-var functions + all pairwise And/Or
//                      (the kc_micro apply suite's SDD workload)
//   sdd_semantic14     12 random 14-var semantic compiles
//   isa_k2_m4          the Appendix-A ISA compile (k=2, m=4, n=18)
//   obdd_ite16         6 random 16-var functions + pairwise And/Or/Xor

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "compile/isa.h"
#include "circuit/families.h"
#include "exec/task_pool.h"
#include "func/bool_func.h"
#include "obdd/obdd.h"
#include "obdd/obdd_compile.h"
#include "sdd/sdd.h"
#include "sdd/sdd_compile.h"
#include "util/random.h"
#include "vtree/vtree.h"

namespace ctsdd {
namespace {

std::vector<int> Iota(int n) {
  std::vector<int> v(n);
  for (int i = 0; i < n; ++i) v[i] = i;
  return v;
}

constexpr int kWorkerCounts[] = {1, 2, 4, 8};

// Local sink (this binary does not link google-benchmark).
template <typename T>
inline void Consume(T&& value) {
  asm volatile("" : : "g"(value) : "memory");
}

// Runs `body(pool)` with no pool, then per worker count, and emits one
// JSON section: seq_ms, w{N}_ms, speedup_w4 (= seq_ms / w4_ms).
template <typename Body>
void RunWorkload(const char* name, const std::string& json_path,
                 bool* first_section, const Body& body) {
  std::vector<bench::JsonMetric> metrics;
  const double seq_ms =
      bench::MinMillis(3, [&] { body(static_cast<exec::TaskPool*>(nullptr)); });
  metrics.push_back({"seq_ms", seq_ms});
  std::printf("  %-18s seq %8.2f ms |", name, seq_ms);
  double w4_ms = seq_ms;
  for (const int workers : kWorkerCounts) {
    exec::TaskPool pool(workers);
    const double ms = bench::MinMillis(3, [&] { body(&pool); });
    metrics.push_back({"w" + std::to_string(workers) + "_ms", ms});
    if (workers == 4) w4_ms = ms;
    std::printf(" %dw %8.2f ms", workers, ms);
  }
  const double speedup = w4_ms > 0 ? seq_ms / w4_ms : 0.0;
  metrics.push_back({"speedup_w4", speedup});
  std::printf(" | x%.2f @4w\n", speedup);
  if (!json_path.empty()) {
    bench::WriteJsonSection(json_path, name, metrics,
                            /*append=*/!*first_section);
    *first_section = false;
  }
}

void Run(const std::string& json_path) {
  bench::Header("parallel apply/compile: speedup vs workers (exec/)");
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf("  host: %u hardware thread(s)%s\n", host_cpus,
              host_cpus <= 1 ? "  [single-core host: multi-worker curves "
                               "measure overhead, not scaling]"
                             : "");
  bool first_section = true;

  RunWorkload("sdd_apply_pairs12", json_path, &first_section,
              [&](exec::TaskPool* pool) {
                Rng rng(314159);
                const int n = 12, k = 8;
                SddManager m(Vtree::Balanced(Iota(n)));
                m.AttachExecutor(pool);
                std::vector<SddManager::NodeId> roots;
                for (int i = 0; i < k; ++i) {
                  roots.push_back(
                      CompileFuncToSdd(&m, BoolFunc::Random(Iota(n), &rng)));
                }
                for (int i = 0; i < k; ++i) {
                  for (int j = i + 1; j < k; ++j) {
                    Consume(m.And(roots[i], roots[j]));
                    Consume(m.Or(roots[i], roots[j]));
                  }
                }
              });

  RunWorkload("sdd_semantic14", json_path, &first_section,
              [&](exec::TaskPool* pool) {
                Rng rng(8675309);
                const int n = 14;
                SddManager m(Vtree::Balanced(Iota(n)));
                m.AttachExecutor(pool);
                for (int i = 0; i < 12; ++i) {
                  Consume(
                      CompileFuncToSdd(&m, BoolFunc::Random(Iota(n), &rng)));
                }
              });

  {
    const IsaParams params{2, 4};
    const Circuit circuit = IsaCircuit(params);
    const Vtree vtree = IsaVtree(params);
    RunWorkload("isa_k2_m4", json_path, &first_section,
                [&](exec::TaskPool* pool) {
                  SddManager m(vtree);
                  m.AttachExecutor(pool);
                  Consume(CompileCircuitToSdd(&m, circuit));
                });
  }

  RunWorkload("obdd_ite16", json_path, &first_section,
              [&](exec::TaskPool* pool) {
                Rng rng(271828);
                const int n = 16, k = 6;
                ObddManager m(Iota(n));
                m.AttachExecutor(pool);
                std::vector<ObddManager::NodeId> roots;
                for (int i = 0; i < k; ++i) {
                  roots.push_back(
                      CompileFuncToObdd(&m, BoolFunc::Random(Iota(n), &rng)));
                }
                for (int i = 0; i < k; ++i) {
                  for (int j = i + 1; j < k; ++j) {
                    Consume(m.And(roots[i], roots[j]));
                    Consume(m.Or(roots[i], roots[j]));
                    Consume(m.Xor(roots[i], roots[j]));
                  }
                }
              });

  if (!json_path.empty()) {
    bench::WriteMetaSection(json_path);
    std::printf("  wrote %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace ctsdd

int main(int argc, char** argv) {
  static constexpr char kFlag[] = "--json=";
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      json_path = argv[i] + sizeof(kFlag) - 1;
    }
  }
  ctsdd::Run(json_path);
  return 0;
}
