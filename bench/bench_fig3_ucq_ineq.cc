// Figure 3: query compilation panorama for UCQs *with inequalities*.
//   - Inversion-free UCQ with inequalities: polynomial-size OBDDs whose
//     width grows with n (OBDD(n^O(1)) but conjectured outside
//     OBDD(O(1))); SDDs match.
//   - Inversions still force exponential deterministic structured size,
//     inequalities or not (Theorem 5 covers both; the gray region is
//     empty).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "db/inversion.h"
#include "db/lineage.h"
#include "db/query.h"
#include "db/query_compile.h"

namespace ctsdd {
namespace {

Database UnaryUnaryDatabase(int n) {
  // R block first, then S block: the order that exhibits width Theta(n).
  Database db;
  db.AddRelation("R", 1);
  db.AddRelation("S", 1);
  for (int l = 1; l <= n; ++l) db.AddTuple("R", {l}, 0.5);
  for (int l = 1; l <= n; ++l) db.AddTuple("S", {l}, 0.5);
  return db;
}

void InequalityFreeOfInversions() {
  bench::Header(
      "Fig 3 (inversion-free + inequality): R(x),S(y),x!=y -> polynomial "
      "OBDD with width growing in n");
  const Ucq q = DistinctPairQuery();
  std::printf("query: %s   has_ineq=%d inversion=%d\n",
              q.DebugString().c_str(), q.HasInequalities(),
              HasInversion(q));
  std::printf("%4s %8s %10s %10s %10s %12s\n", "n", "tuples", "obdd_size",
              "obdd_wid", "sdd_size", "P(Q)");
  std::vector<double> ns;
  std::vector<double> sizes;
  std::vector<double> widths;
  for (int n = 2; n <= 10; ++n) {
    const Database db = UnaryUnaryDatabase(n);
    const auto comp = CompileQuery(q, db, VtreeStrategy::kRightLinear);
    if (!comp.ok()) continue;
    ns.push_back(comp->num_tuples);
    sizes.push_back(comp->obdd_size);
    widths.push_back(comp->obdd_width);
    std::printf("%4d %8d %10d %10d %10d %12.6f\n", n, comp->num_tuples,
                comp->obdd_size, comp->obdd_width, comp->sdd_size,
                comp->probability);
  }
  std::printf("  -> OBDD size polynomial (fitted exponent %.2f) with "
              "width growing ~n^%.2f: the Figure 3 region OBDD(n^O(1)) "
              "outside OBDD(O(1)) (inversion-free + inequalities, "
              "Jha-Suciu)\n",
              bench::LogLogSlope(ns, sizes),
              bench::LogLogSlope(ns, widths));
}

void InequalityWithInversion() {
  bench::Header(
      "Fig 3 (inversion + inequality): chain UCQ + inequality disjunct -> "
      "still exponential");
  Ucq q = InversionChainUcq(1);
  {
    // Add an inequality-bearing disjunct: R(x), R(x'), x != x'.
    ConjunctiveQuery extra;
    extra.atoms.push_back({"R", {0}});
    extra.atoms.push_back({"R", {2}});
    extra.inequalities.push_back({0, 2});
    q.disjuncts.push_back(extra);
  }
  std::printf("query: %s   has_ineq=%d inversion_length=%d\n",
              q.DebugString().c_str(), q.HasInequalities(),
              FindInversionLength(q));
  std::printf("%4s %8s %10s %10s %12s\n", "n", "tuples", "obdd_size",
              "sdd_size", "P(Q)");
  std::vector<double> ns;
  std::vector<double> sdd_sizes;
  for (int n = 2; n <= 4; ++n) {
    const Database db = ChainDatabase(1, n);
    const auto comp = CompileQuery(q, db, VtreeStrategy::kBalanced);
    if (!comp.ok()) {
      std::printf("  n=%d failed: %s\n", n,
                  comp.status().ToString().c_str());
      continue;
    }
    ns.push_back(n);
    sdd_sizes.push_back(comp->sdd_size);
    std::printf("%4d %8d %10d %10d %12.6f\n", n, comp->num_tuples,
                comp->obdd_size, comp->sdd_size, comp->probability);
  }
  std::printf("  -> SDD size grows ~2^{%.2f n}: inequalities do not "
              "rescue inversions (Theorem 5)\n",
              bench::SemiLogSlope(ns, sdd_sizes));
}

}  // namespace
}  // namespace ctsdd

int main() {
  ctsdd::InequalityFreeOfInversions();
  ctsdd::InequalityWithInversion();
  return 0;
}
