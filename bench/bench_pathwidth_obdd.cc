// Bound (2) (Jha–Suciu, reproved by the paper's construction on linear
// vtrees): circuits of pathwidth k have OBDD *width* f(k), hence OBDD
// size O(f(k) n). Sweep banded CNFs at fixed band; derive the variable
// order from a path layout of the circuit's primal graph and report the
// (constant) OBDD width, versus a deliberately bad (reversed-interleaved)
// order for contrast.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "circuit/families.h"
#include "circuit/primal_graph.h"
#include "graph/path_decomposition.h"
#include "obdd/obdd.h"
#include "obdd/obdd_compile.h"

namespace ctsdd {
namespace {

std::vector<int> OrderFromPathLayout(const Circuit& c) {
  const Graph primal = PrimalGraph(c);
  const std::vector<int> layout = BfsLayout(primal);
  std::vector<int> order;
  for (int gate : layout) {
    if (c.gate(gate).kind == GateKind::kVar) {
      order.push_back(c.gate(gate).var);
    }
  }
  return order;
}

void Run() {
  for (int band = 2; band <= 4; ++band) {
    bench::Header("Bound (2): pathwidth-" + std::to_string(band - 1) +
                  "-ish banded CNF -> constant OBDD width on the "
                  "path-layout order");
    std::printf("%6s %12s %12s %12s\n", "n", "width(path)", "size(path)",
                "size/n");
    int max_width = 0;
    for (int n = 8; n <= 40; n += 8) {
      const Circuit c = BandedCnfCircuit(n, band);
      const std::vector<int> order = OrderFromPathLayout(c);
      ObddManager obdd(order);
      const auto root = CompileCircuitToObdd(&obdd, c);
      max_width = std::max(max_width, obdd.Width(root));
      std::printf("%6d %12d %12d %12.2f\n", n, obdd.Width(root),
                  obdd.Size(root),
                  static_cast<double>(obdd.Size(root)) / n);
    }
    std::printf("  -> max OBDD width over the sweep: %d (constant in n; "
                "size is O(f(k) n))\n", max_width);
  }
}

}  // namespace
}  // namespace ctsdd

int main() {
  ctsdd::Run();
  return 0;
}
