// Figure 2: query compilation panorama for UCQs (no inequalities).
//   - Inversion-free (hierarchical) UCQs: constant-width, linear-size
//     OBDD lineages — everything collapses to OBDD(O(1)).
//   - UCQs with inversions: lineages exponential for deterministic
//     structured forms (SDDs included) — the gray region is empty.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "db/inversion.h"
#include "db/lineage.h"
#include "db/query.h"
#include "db/query_compile.h"

namespace ctsdd {
namespace {

Database InterleavedRsDatabase(int n) {
  Database db;
  db.AddRelation("R", 1);
  db.AddRelation("S", 2);
  for (int l = 1; l <= n; ++l) {
    db.AddTuple("R", {l}, 0.5);
    for (int m = 1; m <= n; ++m) db.AddTuple("S", {l, m}, 0.5);
  }
  return db;
}

void HierarchicalSide() {
  bench::Header(
      "Fig 2 (inversion-free side): hierarchical UCQ R(x),S(x,y) -> "
      "constant OBDD width");
  const Ucq q = HierarchicalRSQuery();
  std::printf("query: %s   hierarchical=%d inversion=%d\n",
              q.DebugString().c_str(), IsHierarchicalUcq(q),
              HasInversion(q));
  std::printf("%4s %8s %10s %10s %10s %12s\n", "n", "tuples", "obdd_size",
              "obdd_wid", "sdd_size", "P(Q)");
  int max_width = 0;
  for (int n = 2; n <= 8; ++n) {
    const Database db = InterleavedRsDatabase(n);
    const auto comp = CompileQuery(q, db, VtreeStrategy::kRightLinear);
    if (!comp.ok()) continue;
    max_width = std::max(max_width, comp->obdd_width);
    std::printf("%4d %8d %10d %10d %10d %12.6f\n", n, comp->num_tuples,
                comp->obdd_size, comp->obdd_width, comp->sdd_size,
                comp->probability);
  }
  std::printf("  -> max OBDD width %d: constant in n (OBDD(O(1)) = "
              "SDD(n^O(1)) for UCQ lineages)\n", max_width);
}

void InversionSide() {
  bench::Header(
      "Fig 2 (inversion side): chain UCQ with inversion length 1 -> "
      "exponential lineage compilations");
  const Ucq q = InversionChainUcq(1);
  std::printf("query: %s   hierarchical=%d inversion_length=%d\n",
              q.DebugString().c_str(), IsHierarchicalUcq(q),
              FindInversionLength(q));
  std::printf("%4s %8s %10s %10s %12s\n", "n", "tuples", "obdd_size",
              "sdd_size", "P(Q)");
  std::vector<double> ns;
  std::vector<double> sdd_sizes;
  for (int n = 2; n <= 6; ++n) {
    const Database db = ChainDatabase(1, n);
    const auto comp = CompileQuery(q, db, VtreeStrategy::kBalanced);
    if (!comp.ok()) continue;
    ns.push_back(n);
    sdd_sizes.push_back(comp->sdd_size);
    std::printf("%4d %8d %10d %10d %12.6f\n", n, comp->num_tuples,
                comp->obdd_size, comp->sdd_size, comp->probability);
  }
  std::printf("  -> SDD size grows ~2^{%.2f n} (Theorem 5: exponential "
              "for every deterministic structured form)\n",
              bench::SemiLogSlope(ns, sdd_sizes));
}

}  // namespace
}  // namespace ctsdd

int main() {
  ctsdd::HierarchicalSide();
  ctsdd::InversionSide();
  return 0;
}
