// Sampling CPU profiler: per-thread POSIX interval timers delivering
// SIGPROF on the thread's own CPU clock, an async-signal-safe
// frame-pointer unwinder, and per-thread lock-free sample buffers
// aggregated off-signal into flamegraph-collapsed folded stacks.
//
// The design center mirrors the tracer's (obs/trace.h): ProfilerArmed()
// is one relaxed load, so a service that never arms the profiler pays a
// load and a predictable branch at its (few) registration sites and
// nothing anywhere else — there is no instrumentation on computation
// paths at all; samples are taken by the kernel's timer interrupt.
//
// Sampling discipline (same as the trace rings): the signal handler
// appends [depth, pc...] frames to a pre-allocated per-thread buffer
// with plain stores published by one release store of the cursor; when
// the buffer is full the sample is counted in dropped() and discarded,
// so accounting is exact — attempted() == samples() + dropped() always.
// The handler allocates nothing, takes no locks, and touches only
// thread-own state; buffer words are read by the collector only below
// the acquired cursor, so collection during disarm is race-free.
//
// Threads opt in via RegisterCurrentThread() (called automatically by
// obs::SetCurrentThreadName, which every serve/exec worker thread hits
// at startup). Registration while armed self-creates the thread's
// timer; threads that exit simply stop producing samples.
//
// Platform: Linux x86_64 (timer_create + SIGEV_THREAD_ID + RBP chain).
// Elsewhere Supported() is false and Arm() fails cleanly. Meaningful
// stacks need frame pointers (-fno-omit-frame-pointer, set for Release
// in CMakeLists) and exported symbols for dladdr (CMAKE_ENABLE_EXPORTS).

#ifndef CTSDD_OBS_PROFILER_H_
#define CTSDD_OBS_PROFILER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ctsdd::obs {

namespace internal {
extern std::atomic<bool> g_profiler_armed;
}  // namespace internal

// One relaxed load; the disarmed fast path everywhere.
inline bool ProfilerArmed() {
  return internal::g_profiler_armed.load(std::memory_order_relaxed);
}

class Profiler {
 public:
  struct Stats {
    uint64_t attempted = 0;  // timer fires that reached the handler
    uint64_t samples = 0;    // stored in a buffer
    uint64_t dropped = 0;    // discarded: buffer full (exact)
    uint64_t truncated = 0;  // stored, but the unwind hit the depth cap
    int threads = 0;         // registered threads at snapshot time
  };

  // True when this build/platform can sample (Linux x86_64).
  static bool Supported();

  // Registers the calling thread for sampling, idempotently. `name`
  // labels the thread's stacks in the collapsed output (empty = "tid-N").
  // Called by obs::SetCurrentThreadName; call directly for threads that
  // never name themselves (e.g. a bench main).
  static void RegisterCurrentThread(const std::string& name = "");

  // Arms sampling on every registered thread: one CPU-clock interval
  // timer per thread at `interval_us` microseconds of thread CPU time,
  // buffers sized to `buffer_words` uintptr_t words each (a sample costs
  // depth + 1 words). False when unsupported or already armed. The
  // default interval is prime, so periodic program structure cannot
  // alias against the sampling clock.
  //
  // Rate caveat: Linux expires CPU-clock timers at scheduler-tick
  // granularity, so the delivered rate is bounded by CONFIG_HZ
  // (typically 250 fires per CPU-second per thread) no matter how small
  // `interval_us` is, and threads that are mostly blocked accrue
  // samples only in proportion to CPU actually burned — which is the
  // point of sampling on the CPU clock.
  static bool Arm(int interval_us = 997, size_t buffer_words = size_t{1} << 18);
  static void Disarm();
  static bool armed() { return ProfilerArmed(); }

  static Stats stats();

  // Folded-stack aggregation of everything sampled since the last
  // Clear(): one "thread;outer;...;leaf count" line per distinct stack,
  // flamegraph.pl / speedscope ready, sorted by descending count.
  // Symbolized via dladdr (module+offset fallback). Call while
  // disarmed — collection is only ordered against handlers that already
  // published their cursor.
  static std::string Collapsed();

  // Drops buffered samples and resets the counters (keeps registrations
  // and buffers).
  static void Clear();
};

}  // namespace ctsdd::obs

#endif  // CTSDD_OBS_PROFILER_H_
