#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

#include "obs/profiler.h"
#include "util/spinlock.h"

namespace ctsdd::obs {

namespace internal {
std::atomic<bool> g_armed{false};
}  // namespace internal

namespace {

std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<uint32_t> g_next_span_id{1};
std::atomic<size_t> g_capacity{size_t{1} << 14};

// One thread's event ring. Registered into a process-wide list and kept
// alive by shared_ptr past thread exit, so Snapshot after a worker has
// been joined still sees its events. The spinlock is uncontended in
// steady state (the owner thread records; Snapshot/Clear are rare
// coordinator calls) — the cost per event is one uncontended RMW pair.
struct ThreadBuffer {
  SpinLock lock;
  std::vector<TraceEvent> ring;  // allocated lazily at first record
  uint64_t written = 0;          // total appended (>= ring.size() => wrapped)
  std::string name;
  int tid = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: threads outlive main
  return *r;
}

std::atomic<uint64_t> g_dropped{0};

// Thread-local recording state: the buffer plus the ambient span the
// next nested TraceSpan parents under.
struct ThreadState {
  std::shared_ptr<ThreadBuffer> buffer;
  uint64_t current_trace = 0;
  uint32_t current_span = 0;
};

ThreadState& State() {
  thread_local ThreadState state;
  if (state.buffer == nullptr) {
    state.buffer = std::make_shared<ThreadBuffer>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    state.buffer->tid = static_cast<int>(r.buffers.size()) + 1;
    r.buffers.push_back(state.buffer);
  }
  return state;
}

void Push(const TraceEvent& event) {
  ThreadBuffer& buf = *State().buffer;
  SpinLockGuard guard(buf.lock);
  if (buf.ring.empty()) {
    buf.ring.resize(g_capacity.load(std::memory_order_relaxed));
  }
  if (buf.written >= buf.ring.size()) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
  }
  buf.ring[buf.written % buf.ring.size()] = event;
  ++buf.written;
}

std::chrono::steady_clock::time_point Epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      *out += hex;
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

double TraceNowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - Epoch())
      .count();
}

uint64_t NewTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

uint32_t NewSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

void SetCurrentThreadName(const std::string& name) {
  {
    ThreadBuffer& buf = *State().buffer;
    SpinLockGuard guard(buf.lock);
    buf.name = name;
  }
  // Every named thread is a profiling candidate; registration is
  // idempotent and costs one TLS check after the first call.
  Profiler::RegisterCurrentThread(name);
}

TraceContext CurrentContext() {
  if (!TraceArmed()) return {};
  ThreadState& state = State();
  return {state.current_trace, state.current_span};
}

void RecordEvent(const TraceEvent& event) { Push(event); }

void TraceInstant(const char* cat, const char* name, TraceContext ctx,
                  const char* arg_name, uint64_t arg) {
  if (!TraceArmed()) return;
  ThreadState& state = State();
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.phase = 'i';
  e.trace_id = ctx.trace_id != 0 ? ctx.trace_id : state.current_trace;
  e.parent_span = ctx.span_id != 0 ? ctx.span_id : state.current_span;
  e.ts_us = TraceNowUs();
  e.arg1_name = arg_name;
  e.arg1 = arg;
  Push(e);
}

void TraceCompleteSince(const char* cat, const char* name, double start_us,
                        TraceContext ctx) {
  if (!TraceArmed()) return;
  ThreadState& state = State();
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.phase = 'X';
  e.span_id = NewSpanId();
  e.trace_id = ctx.trace_id != 0 ? ctx.trace_id : state.current_trace;
  e.parent_span = ctx.span_id != 0 ? ctx.span_id : state.current_span;
  e.ts_us = start_us;
  e.dur_us = TraceNowUs() - start_us;
  if (e.dur_us < 0) e.dur_us = 0;
  Push(e);
}

void TraceAsyncBegin(const char* cat, const char* name, uint64_t trace_id) {
  if (!TraceArmed()) return;
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.phase = 'b';
  e.trace_id = trace_id;
  e.ts_us = TraceNowUs();
  Push(e);
}

void TraceAsyncEnd(const char* cat, const char* name, uint64_t trace_id) {
  if (!TraceArmed()) return;
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.phase = 'e';
  e.trace_id = trace_id;
  e.ts_us = TraceNowUs();
  Push(e);
}

void TraceAsyncSince(const char* cat, const char* name, uint64_t trace_id,
                     double start_us) {
  if (!TraceArmed()) return;
  TraceEvent b;
  b.cat = cat;
  b.name = name;
  b.phase = 'b';
  b.trace_id = trace_id;
  b.ts_us = start_us;
  Push(b);
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.phase = 'e';
  e.trace_id = trace_id;
  e.ts_us = TraceNowUs();
  if (e.ts_us < start_us) e.ts_us = start_us;
  Push(e);
}

TraceSpan::TraceSpan(const char* cat, const char* name, TraceContext ctx)
    : armed_(TraceArmed()), cat_(cat), name_(name) {
  if (!armed_) return;
  ThreadState& state = State();
  saved_trace_ = state.current_trace;
  saved_span_ = state.current_span;
  trace_id_ = ctx.trace_id != 0 ? ctx.trace_id : state.current_trace;
  parent_span_ = ctx.span_id != 0 ? ctx.span_id : state.current_span;
  span_id_ = NewSpanId();
  state.current_trace = trace_id_;
  state.current_span = span_id_;
  start_us_ = TraceNowUs();
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  ThreadState& state = State();
  state.current_trace = saved_trace_;
  state.current_span = saved_span_;
  TraceEvent e;
  e.cat = cat_;
  e.name = name_;
  e.phase = 'X';
  e.span_id = span_id_;
  e.parent_span = parent_span_;
  e.trace_id = trace_id_;
  e.ts_us = start_us_;
  e.dur_us = TraceNowUs() - start_us_;
  if (e.dur_us < 0) e.dur_us = 0;
  e.arg1_name = arg1_name_;
  e.arg1 = arg1_;
  e.arg2_name = arg2_name_;
  e.arg2 = arg2_;
  Push(e);
}

void Tracer::Arm(size_t events_per_thread) {
#ifdef CTSDD_NO_TRACE
  (void)events_per_thread;
#else
  g_capacity.store(events_per_thread == 0 ? 1 : events_per_thread,
                   std::memory_order_relaxed);
  internal::g_armed.store(true, std::memory_order_release);
#endif
}

void Tracer::Disarm() {
  internal::g_armed.store(false, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::Snapshot(std::vector<int>* tids) {
  std::vector<TraceEvent> out;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& buf : r.buffers) {
    SpinLockGuard guard(buf->lock);
    if (buf->ring.empty()) continue;
    const uint64_t n = buf->written < buf->ring.size()
                           ? buf->written
                           : static_cast<uint64_t>(buf->ring.size());
    const uint64_t first = buf->written - n;
    for (uint64_t i = 0; i < n; ++i) {
      out.push_back(buf->ring[(first + i) % buf->ring.size()]);
      if (tids != nullptr) tids->push_back(buf->tid);
    }
  }
  return out;
}

std::vector<std::string> Tracer::ThreadNames() {
  std::vector<std::string> out;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& buf : r.buffers) {
    SpinLockGuard guard(buf->lock);
    out.push_back(buf->name);
  }
  return out;
}

uint64_t Tracer::Dropped() {
  return g_dropped.load(std::memory_order_relaxed);
}

void Tracer::Clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& buf : r.buffers) {
    SpinLockGuard guard(buf->lock);
    buf->written = 0;
  }
  g_dropped.store(0, std::memory_order_relaxed);
}

std::string Tracer::ChromeTraceJson() {
  std::vector<int> tids;
  const std::vector<TraceEvent> events = Snapshot(&tids);
  std::string out;
  out.reserve(events.size() * 160 + 256);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  const auto emit_prefix = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  // Thread-name metadata rows first, so Perfetto labels the tracks.
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto& buf : r.buffers) {
      SpinLockGuard guard(buf->lock);
      if (buf->name.empty()) continue;
      emit_prefix();
      char head[96];
      std::snprintf(head, sizeof(head),
                    "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                    "\"name\":\"thread_name\",\"args\":{\"name\":\"",
                    buf->tid);
      out += head;
      AppendEscaped(&out, buf->name);
      out += "\"}}";
    }
  }
  char num[352];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    emit_prefix();
    out += "{\"ph\":\"";
    out.push_back(e.phase);
    out += "\",\"pid\":1,\"cat\":\"";
    out += e.cat != nullptr ? e.cat : "misc";
    out += "\",\"name\":\"";
    out += e.name != nullptr ? e.name : "?";
    out += "\"";
    std::snprintf(num, sizeof(num), ",\"tid\":%d,\"ts\":%.3f", tids[i],
                  e.ts_us);
    out += num;
    if (e.phase == 'X') {
      std::snprintf(num, sizeof(num), ",\"dur\":%.3f", e.dur_us);
      out += num;
    }
    if (e.phase == 'b' || e.phase == 'e') {
      std::snprintf(num, sizeof(num), ",\"id\":\"%llx\"",
                    static_cast<unsigned long long>(e.trace_id));
      out += num;
    }
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    std::snprintf(num, sizeof(num),
                  ",\"args\":{\"trace_id\":%llu,\"span_id\":%u,"
                  "\"parent_span\":%u",
                  static_cast<unsigned long long>(e.trace_id), e.span_id,
                  e.parent_span);
    out += num;
    if (e.arg1_name != nullptr) {
      std::snprintf(num, sizeof(num), ",\"%s\":%llu", e.arg1_name,
                    static_cast<unsigned long long>(e.arg1));
      out += num;
    }
    if (e.arg2_name != nullptr) {
      std::snprintf(num, sizeof(num), ",\"%s\":%llu", e.arg2_name,
                    static_cast<unsigned long long>(e.arg2));
      out += num;
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) {
  const std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return n == json.size();
}

}  // namespace ctsdd::obs
