// Unified metrics: typed counters/gauges and log-linear (HDR-style)
// histograms behind one registry with stable JSON and Prometheus dumps.
//
// Recording is wait-free relaxed atomics — a histogram Record is one
// bucket fetch_add plus count/sum/min/max updates, safe from any thread
// with no lock and no sampling window, so percentiles never drop
// samples under load (the defect in the sliding-window recorder this
// replaces). Histograms are value-exact below 2^(kSubBits+1) and keep
// <= 1/32 relative bucket width above it, and merge losslessly
// (bucket-wise adds), so per-shard or per-phase histograms can be
// combined without re-recording.
//
// Naming convention: lower-case dotted paths, coarse-to-fine —
// "<subsystem>.<object>.<measure>[_<unit>]" (e.g. "serve.latency_us",
// "governor.admit_denials"). Units ride in the name suffix; histograms
// here are unit-agnostic integer streams.
//
// Thread-safety: metric objects are fully concurrent. The registry maps
// names to stable pointers under a mutex — call Get* once at setup and
// keep the pointer; the hot path never touches the map.

#ifndef CTSDD_OBS_METRICS_H_
#define CTSDD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ctsdd::obs {

class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  // Snapshot-style overwrite, for folding an externally maintained
  // monotone counter into the registry at snapshot time.
  void Set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log-linear histogram over uint64 values. Buckets: values below
// 2^(kSubBits+1) map to themselves (exact); above, each power-of-two
// range splits into 2^kSubBits linear sub-buckets, so the relative
// bucket width is bounded by 2^-kSubBits everywhere.
class Histogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr uint64_t kSubCount = uint64_t{1} << kSubBits;
  // Bit-widths 1..64: widths <= kSubBits+1 share the exact linear range
  // (2 * kSubCount entries), and each of the 64 - (kSubBits+1) wider
  // widths contributes one kSubCount block — 1920 buckets at kSubBits=5.
  static constexpr size_t kBucketCount =
      static_cast<size_t>((64 - kSubBits + 1) * kSubCount);

  static size_t BucketIndex(uint64_t value) {
    const int width = 64 - __builtin_clzll(value | 1);
    if (width <= kSubBits + 1) return static_cast<size_t>(value);
    const int shift = width - (kSubBits + 1);
    return static_cast<size_t>(
        (static_cast<uint64_t>(shift + 1) << kSubBits) +
        ((value >> shift) - kSubCount));
  }

  // Representative (midpoint) value of a bucket; exact below the
  // log-linear threshold.
  static uint64_t BucketValue(size_t index) {
    if (index < 2 * kSubCount) return static_cast<uint64_t>(index);
    const int shift = static_cast<int>(index >> kSubBits) - 1;
    const uint64_t lower = (kSubCount + (index & (kSubCount - 1))) << shift;
    return lower + ((uint64_t{1} << shift) >> 1);
  }

  // Largest value mapped to a bucket (inclusive). Fine buckets tile
  // each [2^w, 2^(w+1)) block exactly, so no bucket straddles a
  // power-of-two boundary — the property the Prometheus exposition
  // leans on to coarsen 1920 fine buckets into exact cumulative
  // power-of-two `le` buckets.
  static uint64_t BucketUpperBound(size_t index) {
    if (index < 2 * kSubCount) return static_cast<uint64_t>(index);
    const int shift = static_cast<int>(index >> kSubBits) - 1;
    const uint64_t lower = (kSubCount + (index & (kSubCount - 1))) << shift;
    return lower + ((uint64_t{1} << shift) - 1);
  }

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  // Lossless bucket-wise merge of `other` into this histogram.
  void Merge(const Histogram& other) {
    for (size_t i = 0; i < kBucketCount; ++i) {
      const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
      if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
    const uint64_t omin = other.min_.load(std::memory_order_relaxed);
    uint64_t seen = min_.load(std::memory_order_relaxed);
    while (omin < seen &&
           !min_.compare_exchange_weak(seen, omin,
                                       std::memory_order_relaxed)) {
    }
    const uint64_t omax = other.max_.load(std::memory_order_relaxed);
    seen = max_.load(std::memory_order_relaxed);
    while (omax > seen &&
           !max_.compare_exchange_weak(seen, omax,
                                       std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const {
    const uint64_t v = min_.load(std::memory_order_relaxed);
    return v == UINT64_MAX ? 0 : v;
  }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  // p in [0, 1]; the representative value at the oracle rank
  // min(n-1, round(p * (n-1))). 0 when empty.
  uint64_t ValueAtPercentile(double p) const;

 private:
  std::atomic<uint64_t> buckets_[kBucketCount] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Stable pointers (valid for the registry's lifetime); registering the
  // same name twice returns the same object. A name registered as one
  // kind must not be re-requested as another (checked). `help` becomes
  // the Prometheus HELP line; the first non-empty help for a name wins.
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "");

  // Flat JSON object, keys sorted: scalars as integers, histograms as
  // {"count","sum","min","max","p50","p90","p99","p999"}.
  std::string JsonSnapshot() const;

  // Prometheus text exposition, conformant: every metric gets HELP and
  // TYPE lines (dots become underscores); histograms export cumulative
  // `_bucket{le=...}` series on exact power-of-two boundaries plus
  // `_sum`/`_count`, with the `le="+Inf"` bucket and `_count` computed
  // from the same bucket snapshot so they always agree under concurrent
  // recording.
  std::string PrometheusText() const;

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace ctsdd::obs

#endif  // CTSDD_OBS_METRICS_H_
