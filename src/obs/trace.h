// Structured tracing: request-scoped spans recorded into per-thread
// ring buffers, exportable as Chrome trace-event JSON (Perfetto).
//
// The design center is the disarmed cost: TraceArmed() is one relaxed
// load of a global flag, and every instrumentation site is guarded by
// it, so a service that never arms the tracer pays a load + predictable
// branch per site (and building with -DCTSDD_NO_TRACE folds even that
// to a constant). When armed, each thread appends fixed-size POD events
// to its own bounded ring buffer — no shared structure is touched on
// the hot path, so recording threads never contend with each other.
// Buffers wrap (oldest events are overwritten, counted in dropped()),
// making the tracer safe to leave armed indefinitely.
//
// Propagation model: a TraceContext is {trace_id, span_id}. Within one
// thread, parentage is implicit — TraceSpan maintains a thread-local
// current-span, and a nested span parents under it. Across a hand-off
// (service thread -> shard queue, shard -> hedge sibling, forker ->
// stealing exec worker) the producer captures CurrentContext() into the
// work item and the consumer passes it to its root TraceSpan, whose
// explicit fields override the consumer thread's ambient context.
//
// Event names and categories must be string literals (the buffer stores
// the pointers); per-thread track names may be dynamic.
//
// Thread-safety: everything here may be called from any thread. Arm /
// Disarm / Snapshot are intended for a coordinator (bench main, test
// body); Snapshot while producers are recording is safe but sees a
// torn-across-threads view, so export quiescent for coherent traces.

#ifndef CTSDD_OBS_TRACE_H_
#define CTSDD_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ctsdd::obs {

// Request correlation handle threaded through hand-offs. trace_id 0
// means "not part of a traced request" (events still record, tied to
// whatever the recording thread was doing); span_id 0 means "no
// explicit parent — use the consuming thread's current span".
struct TraceContext {
  uint64_t trace_id = 0;
  uint32_t span_id = 0;
};

// One fixed-size buffer entry. `phase` follows the Chrome trace-event
// phases used here: 'X' complete (ts + dur), 'i' instant, 'b'/'e'
// async begin/end (request lifetime tracks, id = trace_id).
struct TraceEvent {
  const char* cat = nullptr;
  const char* name = nullptr;
  char phase = 'X';
  uint32_t span_id = 0;
  uint32_t parent_span = 0;
  uint64_t trace_id = 0;
  double ts_us = 0;
  double dur_us = 0;
  // Up to two optional integer args (names are literals, null = unset).
  const char* arg1_name = nullptr;
  uint64_t arg1 = 0;
  const char* arg2_name = nullptr;
  uint64_t arg2 = 0;
};

namespace internal {
extern std::atomic<bool> g_armed;
}  // namespace internal

#ifdef CTSDD_NO_TRACE
// Compiled-out baseline: every guard folds to `if (false)`.
inline constexpr bool TraceArmed() { return false; }
#else
inline bool TraceArmed() {
  return internal::g_armed.load(std::memory_order_relaxed);
}
#endif

// Microseconds since the tracer's process-local epoch (steady clock).
double TraceNowUs();

// Fresh nonzero ids (process-wide atomic counters).
uint64_t NewTraceId();
uint32_t NewSpanId();

// Labels the calling thread's track in exported traces ("shard-3",
// "exec-1", ...). Idempotent; cheap enough to call per thread start.
void SetCurrentThreadName(const std::string& name);

// The calling thread's innermost open armed span, for hand-off capture.
// Zeros when disarmed or no span is open.
TraceContext CurrentContext();

// Low-level append to the calling thread's buffer (no armed check).
void RecordEvent(const TraceEvent& event);

// Instant event ('i'), attached under `ctx` (or the thread's current
// span when ctx is zero). No-op when disarmed.
void TraceInstant(const char* cat, const char* name, TraceContext ctx = {},
                  const char* arg_name = nullptr, uint64_t arg = 0);

// Complete event ('X') whose start was sampled earlier by the caller
// (e.g. queue-wait measured from a submit timestamp). No-op disarmed.
void TraceCompleteSince(const char* cat, const char* name, double start_us,
                        TraceContext ctx = {});

// Async request-lifetime track: begin at admission, end exactly once at
// publish. Pairs match on (cat, name, trace_id). No-ops when disarmed.
void TraceAsyncBegin(const char* cat, const char* name, uint64_t trace_id);
void TraceAsyncEnd(const char* cat, const char* name, uint64_t trace_id);

// Back-dated async span on the request track: emits a 'b' at `start_us`
// and an 'e' at now, in one call from the consuming thread. For
// intervals that are not thread-scoped — a queue wait starts while the
// dequeuing worker is busy with earlier work, so recording it as an 'X'
// on that worker's track would break per-thread span nesting. Nests
// under the request's (cat, trace_id) async track. No-op when disarmed.
void TraceAsyncSince(const char* cat, const char* name, uint64_t trace_id,
                     double start_us);

// RAII complete-event span. Captures the armed flag at construction, so
// a span closes consistently even if the tracer disarms mid-flight.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name, TraceContext ctx = {});
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void AddArg(const char* name, uint64_t value) {
    arg1_name_ = name;
    arg1_ = value;
  }
  void AddArg2(const char* name, uint64_t value) {
    arg2_name_ = name;
    arg2_ = value;
  }

  bool armed() const { return armed_; }
  uint32_t span_id() const { return span_id_; }
  uint64_t trace_id() const { return trace_id_; }

 private:
  bool armed_;
  const char* cat_;
  const char* name_;
  uint64_t trace_id_ = 0;
  uint32_t span_id_ = 0;
  uint32_t parent_span_ = 0;
  uint64_t saved_trace_ = 0;
  uint32_t saved_span_ = 0;
  double start_us_ = 0;
  const char* arg1_name_ = nullptr;
  uint64_t arg1_ = 0;
  const char* arg2_name_ = nullptr;
  uint64_t arg2_ = 0;
};

// Coordinator surface. All static: the tracer is process-wide, like the
// fault-injection registry — per-service tracers would force every
// instrumentation site in managers and exec to thread a handle.
class Tracer {
 public:
  // Arms recording. `events_per_thread` sizes each thread's ring (first
  // arm wins for threads that already allocated; new threads use the
  // latest value). Idempotent while armed.
  static void Arm(size_t events_per_thread = size_t{1} << 14);
  static void Disarm();

  // Copies out every buffered event, oldest-first per thread. The
  // per-event thread index (into thread_names()) rides in `tids` when
  // non-null, aligned with the returned vector.
  static std::vector<TraceEvent> Snapshot(std::vector<int>* tids = nullptr);
  static std::vector<std::string> ThreadNames();

  // Events overwritten by ring wraparound since the last Clear().
  static uint64_t Dropped();

  // Drops buffered events (keeps buffers and registrations).
  static void Clear();

  // Chrome trace-event JSON ({"traceEvents": [...]}); Perfetto-loadable.
  static std::string ChromeTraceJson();
  static bool WriteChromeTrace(const std::string& path);
};

}  // namespace ctsdd::obs

#endif  // CTSDD_OBS_TRACE_H_
