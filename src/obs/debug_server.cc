#include "obs/debug_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace ctsdd::obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

// Writes the full buffer, tolerating short writes; MSG_NOSIGNAL so a
// client that hung up mid-response costs an errno, not a SIGPIPE.
void SendAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client gone or stalled past SO_SNDTIMEO; give up
    }
    off += static_cast<size_t>(n);
  }
}

void WriteResponse(int fd, const DebugServer::Response& r) {
  std::string head = "HTTP/1.1 " + std::to_string(r.status) + " " +
                     StatusText(r.status) + "\r\n";
  head += "Content-Type: " + r.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  for (const auto& [k, v] : r.headers) head += k + ": " + v + "\r\n";
  head += "Connection: close\r\n\r\n";
  SendAll(fd, head.data(), head.size());
  SendAll(fd, r.body.data(), r.body.size());
}

}  // namespace

int64_t DebugServer::Request::IntParam(const std::string& key, int64_t def,
                                       int64_t lo, int64_t hi) const {
  auto it = params.find(key);
  int64_t v = def;
  if (it != params.end() && !it->second.empty()) {
    char* end = nullptr;
    long long parsed = std::strtoll(it->second.c_str(), &end, 10);
    if (end != nullptr && *end == '\0') v = parsed;
  }
  if (v < lo) v = lo;
  if (v > hi) v = hi;
  return v;
}

void DebugServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

bool DebugServer::Start(int port, const std::string& bind_addr) {
  if (running_.load(std::memory_order_acquire)) {
    error_ = "already running";
    return false;
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad bind address: " + bind_addr;
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(listen_fd_, 8) != 0) {
    error_ = std::string("bind/listen: ") + std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return true;
}

void DebugServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void DebugServer::ServeLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int rc = poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc <= 0) continue;  // timeout or EINTR: re-check the stop flag
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Bound how long a stalled client can hold the (single) server
    // thread on either side of the exchange.
    timeval tv{.tv_sec = 5, .tv_usec = 0};
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    ServeConnection(fd);
    close(fd);
  }
}

void DebugServer::ServeConnection(int fd) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::string req;
  req.reserve(1024);
  char buf[1024];
  bool have_headers = false;
  while (req.size() <= kMaxRequestBytes) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // client closed, or SO_RCVTIMEO expired
    req.append(buf, static_cast<size_t>(n));
    if (req.find("\r\n\r\n") != std::string::npos ||
        req.find("\n\n") != std::string::npos) {
      have_headers = true;
      break;
    }
  }
  if (req.size() > kMaxRequestBytes) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    WriteResponse(fd, {413, "text/plain; charset=utf-8",
                       "request exceeds " + std::to_string(kMaxRequestBytes) +
                           " bytes\n"});
    return;
  }
  if (!have_headers || req.empty()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    WriteResponse(fd, {400, "text/plain; charset=utf-8",
                       "malformed request\n"});
    return;
  }

  // Request line: METHOD SP target SP version.
  const size_t eol = req.find_first_of("\r\n");
  const std::string line = req.substr(0, eol);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    WriteResponse(fd, {400, "text/plain; charset=utf-8",
                       "malformed request line\n"});
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    Response r{405, "text/plain; charset=utf-8",
               "only GET is supported\n"};
    r.headers.emplace_back("Allow", "GET");
    WriteResponse(fd, r);
    return;
  }

  Request parsed;
  const size_t q = target.find('?');
  parsed.path = target.substr(0, q);
  if (q != std::string::npos) {
    std::string query = target.substr(q + 1);
    size_t pos = 0;
    while (pos < query.size()) {
      size_t amp = query.find('&', pos);
      if (amp == std::string::npos) amp = query.size();
      std::string pair = query.substr(pos, amp - pos);
      const size_t eq = pair.find('=');
      if (eq != std::string::npos) {
        parsed.params[pair.substr(0, eq)] = pair.substr(eq + 1);
      } else if (!pair.empty()) {
        parsed.params[pair] = "";
      }
      pos = amp + 1;
    }
  }

  auto it = handlers_.find(parsed.path);
  if (it == handlers_.end()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    std::string body = "404: unknown path " + parsed.path + "\nendpoints:\n";
    for (const auto& [path, handler] : handlers_) body += "  " + path + "\n";
    WriteResponse(fd, {404, "text/plain; charset=utf-8", std::move(body)});
    return;
  }
  Response resp;
  try {
    resp = it->second(parsed);
  } catch (const std::exception& e) {
    resp = {500, "text/plain; charset=utf-8",
            std::string("handler error: ") + e.what() + "\n"};
  } catch (...) {
    resp = {500, "text/plain; charset=utf-8", "handler error\n"};
  }
  WriteResponse(fd, resp);
}

}  // namespace ctsdd::obs
