#include "obs/profiler.h"

#if defined(__linux__) && defined(__x86_64__)
#define CTSDD_PROFILER_SUPPORTED 1
#else
#define CTSDD_PROFILER_SUPPORTED 0
#endif

#if CTSDD_PROFILER_SUPPORTED

#ifndef _GNU_SOURCE
#define _GNU_SOURCE
#endif

#include <cxxabi.h>
#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

// Older glibc spells the thread-directed sigevent field only through the
// union; newer glibc provides the macro. Normalize.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif

#endif  // CTSDD_PROFILER_SUPPORTED

namespace ctsdd::obs {

namespace internal {
std::atomic<bool> g_profiler_armed{false};
}  // namespace internal

#if CTSDD_PROFILER_SUPPORTED

namespace {

constexpr int kMaxDepth = 64;

struct ThreadState {
  pid_t tid = 0;
  clockid_t cpu_clock{};
  char name[32] = {0};
  uintptr_t stack_hi = 0;  // top of this thread's stack (exclusive)

  // Sample buffer: records of [depth, pc0(leaf), pc1, ...]. Written only
  // by the owning thread's signal handler; `used` is the publication
  // cursor (store-release after the record's plain stores, load-acquire
  // by the collector). `buf` itself is atomic because Arm() installs it
  // from the arming thread while the owner's handler may already be
  // running (the release store pairs with the handler's acquire load,
  // which also orders the capacity read); capacity is written before
  // the buf release-store and never changes afterwards.
  std::atomic<uintptr_t*> buf{nullptr};
  size_t capacity = 0;
  std::atomic<size_t> used{0};

  std::atomic<uint64_t> attempted{0};
  std::atomic<uint64_t> samples{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint64_t> truncated{0};

  timer_t timer{};
  bool timer_active = false;
};

// The handler reads only this trivially-initialized TLS pointer; no lazy
// construction, so the access is async-signal-safe.
__thread ThreadState* tls_state = nullptr;

std::mutex& RegistryMu() {
  static std::mutex mu;
  return mu;
}

std::vector<ThreadState*>& Registry() {
  static std::vector<ThreadState*>* v = new std::vector<ThreadState*>();
  return *v;
}

size_t g_buffer_words = size_t{1} << 18;  // guarded by RegistryMu()
int g_interval_us = 997;                  // guarded by RegistryMu()

void ProfSignalHandler(int /*signo*/, siginfo_t* /*info*/, void* uctx) {
  if (!internal::g_profiler_armed.load(std::memory_order_relaxed)) return;
  ThreadState* st = tls_state;
  if (st == nullptr) return;
  // Async-signal hygiene: nothing below is allowed to leak an errno
  // change into the interrupted code.
  const int saved_errno = errno;
  st->attempted.fetch_add(1, std::memory_order_relaxed);
  uintptr_t* buf = st->buf.load(std::memory_order_acquire);
  if (buf == nullptr) {
    // Armed raced our buffer installation; the attempt is still counted.
    st->dropped.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }

  const ucontext_t* uc = static_cast<const ucontext_t*>(uctx);
  uintptr_t pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  uintptr_t fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  uintptr_t sp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);

  uintptr_t pcs[kMaxDepth];
  int depth = 0;
  pcs[depth++] = pc;

  // Walk the RBP chain. Each frame pointer must lie within the live
  // stack window, stay word-aligned, and strictly increase, so a
  // corrupt or foreign-ABI frame terminates the walk instead of
  // faulting: everything dereferenced is between SP and the stack top,
  // which is mapped by construction.
  uintptr_t lo = sp;
  const uintptr_t hi = st->stack_hi;
  while (depth < kMaxDepth) {
    if (fp < lo || fp + 2 * sizeof(uintptr_t) > hi ||
        (fp & (sizeof(uintptr_t) - 1)) != 0) {
      break;
    }
    const uintptr_t* frame = reinterpret_cast<const uintptr_t*>(fp);
    uintptr_t next = frame[0];
    uintptr_t ret = frame[1];
    if (ret < 4096) break;
    pcs[depth++] = ret;
    if (next <= fp) break;
    lo = fp;
    fp = next;
  }
  if (depth == kMaxDepth) {
    st->truncated.fetch_add(1, std::memory_order_relaxed);
  }

  const size_t need = static_cast<size_t>(depth) + 1;
  const size_t cur = st->used.load(std::memory_order_relaxed);
  if (cur + need > st->capacity) {
    st->dropped.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  buf[cur] = static_cast<uintptr_t>(depth);
  for (int i = 0; i < depth; ++i) buf[cur + 1 + i] = pcs[i];
  st->used.store(cur + need, std::memory_order_release);
  st->samples.fetch_add(1, std::memory_order_relaxed);
  errno = saved_errno;
}

void InstallHandlerOnce() {
  static bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = ProfSignalHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGPROF, &sa, nullptr);
    return true;
  }();
  (void)installed;
}

// Creates (but does not start) the thread's CPU-clock timer. Fails for
// threads that have already exited — Arm() uses this as the liveness
// probe so dead registry entries get neither a timer nor a buffer.
bool CreateTimer(ThreadState* st) {
  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = st->tid;
  return timer_create(st->cpu_clock, &sev, &st->timer) == 0;
}

// Starts a timer made by CreateTimer. Deletes it on failure.
bool StartCreatedTimer(ThreadState* st, int interval_us) {
  struct itimerspec its;
  its.it_interval.tv_sec = interval_us / 1000000;
  its.it_interval.tv_nsec = (interval_us % 1000000) * 1000L;
  its.it_value = its.it_interval;
  if (timer_settime(st->timer, 0, &its, nullptr) != 0) {
    timer_delete(st->timer);
    return false;
  }
  st->timer_active = true;
  return true;
}

std::string SanitizeFrame(std::string s) {
  for (char& c : s) {
    if (c == ';' || c == '\n' || c == '\r') c = ':';
  }
  return s;
}

std::string Symbolize(uintptr_t pc, bool is_return_address,
                      std::unordered_map<uintptr_t, std::string>* cache) {
  auto it = cache->find(pc);
  if (it != cache->end()) return it->second;
  // Return addresses point one past the call; step back inside it so the
  // call site's own function is attributed, not its successor.
  const uintptr_t lookup = is_return_address ? pc - 1 : pc;
  std::string out;
  Dl_info info;
  if (dladdr(reinterpret_cast<void*>(lookup), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = -1;
    char* dem = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    out = (status == 0 && dem != nullptr) ? dem : info.dli_sname;
    std::free(dem);
  } else if (dladdr(reinterpret_cast<void*>(lookup), &info) != 0 &&
             info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    base = base != nullptr ? base + 1 : info.dli_fname;
    char tmp[256];
    std::snprintf(tmp, sizeof(tmp), "%s+0x%" PRIxPTR, base,
                  pc - reinterpret_cast<uintptr_t>(info.dli_fbase));
    out = tmp;
  } else {
    char tmp[32];
    std::snprintf(tmp, sizeof(tmp), "0x%" PRIxPTR, pc);
    out = tmp;
  }
  out = SanitizeFrame(std::move(out));
  cache->emplace(pc, out);
  return out;
}

}  // namespace

bool Profiler::Supported() { return true; }

void Profiler::RegisterCurrentThread(const std::string& name) {
  if (tls_state != nullptr) {
    if (!name.empty()) {
      std::lock_guard<std::mutex> lock(RegistryMu());
      std::snprintf(tls_state->name, sizeof(tls_state->name), "%s",
                    name.c_str());
    }
    return;
  }
  auto* st = new ThreadState();  // leaked: outlives its thread by design
  st->tid = static_cast<pid_t>(syscall(SYS_gettid));
  if (pthread_getcpuclockid(pthread_self(), &st->cpu_clock) != 0) {
    st->cpu_clock = CLOCK_THREAD_CPUTIME_ID;
  }
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
      st->stack_hi = reinterpret_cast<uintptr_t>(addr) + size;
    }
    pthread_attr_destroy(&attr);
  }
  if (!name.empty()) {
    std::snprintf(st->name, sizeof(st->name), "%s", name.c_str());
  } else {
    std::snprintf(st->name, sizeof(st->name), "tid-%d",
                  static_cast<int>(st->tid));
  }

  std::lock_guard<std::mutex> lock(RegistryMu());
  Registry().push_back(st);
  if (internal::g_profiler_armed.load(std::memory_order_relaxed)) {
    // Late registrant while armed: give it a buffer and a timer now.
    st->capacity = g_buffer_words;
    st->buf.store(new uintptr_t[g_buffer_words], std::memory_order_release);
    tls_state = st;
    InstallHandlerOnce();
    if (CreateTimer(st)) StartCreatedTimer(st, g_interval_us);
  } else {
    tls_state = st;
  }
}

bool Profiler::Arm(int interval_us, size_t buffer_words) {
  if (interval_us <= 0) interval_us = 997;
  if (buffer_words < kMaxDepth + 1) buffer_words = kMaxDepth + 1;
  std::lock_guard<std::mutex> lock(RegistryMu());
  if (internal::g_profiler_armed.load(std::memory_order_relaxed)) return false;
  g_buffer_words = buffer_words;
  g_interval_us = interval_us;
  InstallHandlerOnce();
  // Timer creation doubles as the liveness probe (it fails for exited
  // tids): the registry keeps dead threads' states forever by design,
  // and they must not cost a buffer on every arm — a supervised service
  // respawns shard workers, so the dead set grows without bound.
  std::vector<ThreadState*> live;
  for (ThreadState* st : Registry()) {
    if (st->timer_active || !CreateTimer(st)) continue;
    live.push_back(st);
    if (st->buf.load(std::memory_order_relaxed) == nullptr) {
      // Buffer capacity is fixed at the thread's first arm; later arms
      // with a different size keep the original allocation, which may
      // still be visible to an in-flight handler. Capacity is written
      // before the buffer pointer is released: a handler that acquires
      // the pointer sees the matching capacity.
      st->capacity = buffer_words;
      st->buf.store(new uintptr_t[buffer_words], std::memory_order_release);
    }
  }
  // Publish armed before the first timer can fire so no sample is lost
  // to the handler's disarmed check.
  internal::g_profiler_armed.store(true, std::memory_order_seq_cst);
  for (ThreadState* st : live) StartCreatedTimer(st, interval_us);
  return true;
}

void Profiler::Disarm() {
  std::lock_guard<std::mutex> lock(RegistryMu());
  if (!internal::g_profiler_armed.load(std::memory_order_relaxed)) return;
  internal::g_profiler_armed.store(false, std::memory_order_seq_cst);
  for (ThreadState* st : Registry()) {
    if (st->timer_active) {
      timer_delete(st->timer);
      st->timer_active = false;
    }
  }
}

Profiler::Stats Profiler::stats() {
  Stats s;
  std::lock_guard<std::mutex> lock(RegistryMu());
  for (ThreadState* st : Registry()) {
    s.attempted += st->attempted.load(std::memory_order_relaxed);
    s.samples += st->samples.load(std::memory_order_relaxed);
    s.dropped += st->dropped.load(std::memory_order_relaxed);
    s.truncated += st->truncated.load(std::memory_order_relaxed);
    ++s.threads;
  }
  return s;
}

std::string Profiler::Collapsed() {
  std::lock_guard<std::mutex> lock(RegistryMu());
  std::unordered_map<uintptr_t, std::string> symcache;
  std::map<std::string, uint64_t> folded;
  for (ThreadState* st : Registry()) {
    const size_t n = st->used.load(std::memory_order_acquire);
    uintptr_t* buf = st->buf.load(std::memory_order_acquire);
    if (buf == nullptr) continue;
    size_t i = 0;
    while (i < n) {
      const size_t depth = static_cast<size_t>(buf[i]);
      if (depth == 0 || i + 1 + depth > n) break;  // corrupt record guard
      std::string key(st->name);
      // Records store leaf-first; collapsed format wants root-first.
      for (size_t f = depth; f-- > 0;) {
        key += ';';
        key += Symbolize(buf[i + 1 + f], /*is_return_address=*/f != 0,
                         &symcache);
      }
      folded[key] += 1;
      i += 1 + depth;
    }
  }
  std::vector<std::pair<std::string, uint64_t>> lines(folded.begin(),
                                                      folded.end());
  std::sort(lines.begin(), lines.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::string out;
  for (const auto& [stack, count] : lines) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

void Profiler::Clear() {
  std::lock_guard<std::mutex> lock(RegistryMu());
  for (ThreadState* st : Registry()) {
    st->used.store(0, std::memory_order_relaxed);
    st->attempted.store(0, std::memory_order_relaxed);
    st->samples.store(0, std::memory_order_relaxed);
    st->dropped.store(0, std::memory_order_relaxed);
    st->truncated.store(0, std::memory_order_relaxed);
  }
}

#else  // !CTSDD_PROFILER_SUPPORTED

bool Profiler::Supported() { return false; }
void Profiler::RegisterCurrentThread(const std::string&) {}
bool Profiler::Arm(int, size_t) { return false; }
void Profiler::Disarm() {}
Profiler::Stats Profiler::stats() { return {}; }
std::string Profiler::Collapsed() { return std::string(); }
void Profiler::Clear() {}

#endif  // CTSDD_PROFILER_SUPPORTED

}  // namespace ctsdd::obs
