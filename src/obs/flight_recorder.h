// Flight recorder: a bounded ring of recent request records that dumps
// automatically when the serving stack hits an anomaly, so chaos-suite
// failures and production incidents come with evidence attached.
//
// Every completed request — including service-level rejects that never
// reached a worker — appends one fixed-size record: signature, route,
// per-phase timing breakdown (queue / compile / WMC / GC), terminal
// status code, and the bytes the request's shard account moved. The
// ring holds the most recent `capacity` records; recording is one short
// mutex-guarded copy (requests complete at most a few hundred thousand
// times per second, far below where this section matters).
//
// Anomaly triggers (see NoteAnomaly callers in serve/):
//   - kQuarantineStrike : a signature burned a full double-route ladder
//   - kMemoryDenial     : governor denial/critical-tier compile reject
//   - kHangDetected     : supervisor declared a shard hung or dead
//   - kLatencyOutlier   : a request far above the live p99 estimate
// Each trigger counts always; a JSON dump of the ring is produced at
// most once per `min_dump_interval_ms` (kept in memory, and written to
// `dump_dir`/flight_<seq>.json when a directory is configured).
//
// Thread-safety: all methods are safe from any thread.

#ifndef CTSDD_OBS_FLIGHT_RECORDER_H_
#define CTSDD_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ctsdd::obs {

struct FlightRecord {
  uint64_t trace_id = 0;
  uint64_t query_sig = 0;
  uint64_t db_sig = 0;
  int shard = -1;
  int route = -1;       // serve PlanRoute as int; -1 = never routed
  int status_code = 0;  // StatusCode as int; 0 = OK
  bool cache_hit = false;
  bool degraded = false;
  bool hedged = false;   // answered by the hedge copy
  double queue_ms = 0;   // admission -> dequeue
  double compile_ms = 0; // lineage + compile (0 on cache hits)
  double wmc_ms = 0;     // weighted model count pass
  double gc_ms = 0;      // GC pauses attributed to this request
  double total_ms = 0;
  int64_t bytes_charged = 0;  // shard-account byte delta over the request
  int plan_size = 0;
  double ts_ms = 0;  // completion time since recorder construction
};

enum class Anomaly : int {
  kQuarantineStrike = 0,
  kMemoryDenial = 1,
  kHangDetected = 2,
  kLatencyOutlier = 3,
};
inline constexpr int kAnomalyCount = 4;
const char* AnomalyName(Anomaly anomaly);

class FlightRecorder {
 public:
  struct Options {
    size_t capacity = 256;
    // Empty = in-memory dumps only (last_dump_json); otherwise dumps are
    // also written to <dump_dir>/flight_<seq>.json.
    std::string dump_dir;
    double min_dump_interval_ms = 250;
  };

  FlightRecorder();  // default Options
  explicit FlightRecorder(Options options);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Appends one completed-request record; fires kLatencyOutlier when the
  // record's total exceeds the configured outlier threshold.
  void Record(const FlightRecord& record);

  // Registers an anomaly, dumping the ring unless rate-limited.
  // `detail` may be any string (copied).
  void NoteAnomaly(Anomaly anomaly, const std::string& detail);

  // Live outlier bar for Record's kLatencyOutlier trigger; 0 (the
  // default) disables the trigger. Callers refresh it from the latency
  // histogram (e.g. 8 x p99) every so often.
  void SetLatencyOutlierMs(double ms) {
    outlier_ms_.store(ms, std::memory_order_relaxed);
  }

  uint64_t records() const {
    return total_records_.load(std::memory_order_relaxed);
  }
  uint64_t anomalies() const {
    return anomalies_.load(std::memory_order_relaxed);
  }
  uint64_t anomaly_count(Anomaly anomaly) const {
    return anomaly_counts_[static_cast<int>(anomaly)].load(
        std::memory_order_relaxed);
  }
  uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }

  // Oldest-first copy of the ring.
  std::vector<FlightRecord> Snapshot() const;

  // The ring as dump JSON, on demand (not rate-limited, not counted).
  std::string DumpJson(const std::string& reason) const;

  // Most recent anomaly dump ("" before the first).
  std::string last_dump_json() const;

 private:
  void DumpLocked(const std::string& reason);

  const Options options_;
  const std::chrono::steady_clock::time_point start_;

  std::atomic<uint64_t> total_records_{0};
  std::atomic<uint64_t> anomalies_{0};
  std::atomic<uint64_t> anomaly_counts_[kAnomalyCount] = {};
  std::atomic<uint64_t> dumps_{0};
  std::atomic<double> outlier_ms_{0};

  mutable std::mutex mu_;
  std::vector<FlightRecord> ring_;
  uint64_t written_ = 0;
  std::chrono::steady_clock::time_point last_dump_;
  bool dumped_once_ = false;
  std::string last_dump_json_;
};

}  // namespace ctsdd::obs

#endif  // CTSDD_OBS_FLIGHT_RECORDER_H_
