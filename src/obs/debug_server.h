// Minimal dependency-free HTTP/1.1 introspection endpoint.
//
// One background thread owns one listening POSIX socket and serves one
// connection at a time: accept, read a bounded GET request, dispatch to
// a registered handler, write the response, close. That is deliberately
// all — no keep-alive, no pipelining, no TLS, no thread pool. The
// server exists so an operator (or CI) can curl a live process; it is
// not a web framework, and serializing requests means a misbehaving
// scraper can slow introspection but can never amplify load on the
// serving threads.
//
// Security posture: binds 127.0.0.1 unless explicitly told otherwise.
// The endpoints expose internals (plans, memory, stacks) — never bind a
// non-loopback address on an untrusted network.
//
// Robustness: requests larger than kMaxRequestBytes get 413, non-GET
// gets 405, unparseable gets 400, unknown paths get 404 listing the
// registered endpoints. Per-connection socket timeouts bound how long a
// stalled client can hold the server. Handlers run on the server
// thread and may block (e.g. /tracez arms the tracer and sleeps); the
// accept queue simply backs up meanwhile.

#ifndef CTSDD_OBS_DEBUG_SERVER_H_
#define CTSDD_OBS_DEBUG_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace ctsdd::obs {

class DebugServer {
 public:
  static constexpr size_t kMaxRequestBytes = 8192;

  struct Request {
    std::string path;                          // decoded path, no query
    std::map<std::string, std::string> params;  // query key=value pairs

    // Integer query param with fallback; clamped to [lo, hi].
    int64_t IntParam(const std::string& key, int64_t def, int64_t lo,
                     int64_t hi) const;
  };

  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
    // Extra response headers, e.g. exact profiler drop counts.
    std::vector<std::pair<std::string, std::string>> headers;
  };

  using Handler = std::function<Response(const Request&)>;

  DebugServer() = default;
  ~DebugServer() { Stop(); }
  DebugServer(const DebugServer&) = delete;
  DebugServer& operator=(const DebugServer&) = delete;

  // Registers an exact-path handler. Call before Start(); the handler
  // table is not mutated afterwards, so the server thread reads it
  // without locks.
  void Handle(std::string path, Handler handler);

  // Binds `bind_addr:port` (port 0 picks an ephemeral port, readable
  // via port()) and starts the server thread. False on bind/listen
  // failure with the reason in error().
  bool Start(int port, const std::string& bind_addr = "127.0.0.1");

  // Stops the server thread and closes the socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  int port() const { return port_; }
  const std::string& error() const { return error_; }

  // Requests served / rejected (4xx/5xx from the framing layer, not
  // handler-returned statuses), for the metrics registry.
  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  void ServeLoop();
  void ServeConnection(int fd);

  std::map<std::string, Handler> handlers_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int port_ = -1;
  std::string error_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace ctsdd::obs

#endif  // CTSDD_OBS_DEBUG_SERVER_H_
