#include "obs/flight_recorder.h"

#include <cstdio>
#include <utility>

namespace ctsdd::obs {

namespace {

double SinceMs(std::chrono::steady_clock::time_point then,
               std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - then).count();
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      *out += hex;
    } else {
      out->push_back(c);
    }
  }
}

void AppendRecord(std::string* out, const FlightRecord& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"trace_id\": %llu, \"query_sig\": \"%016llx\", "
      "\"db_sig\": \"%016llx\", \"shard\": %d, \"route\": %d, "
      "\"status\": %d, \"cache_hit\": %d, \"degraded\": %d, "
      "\"hedged\": %d, \"queue_ms\": %.3f, \"compile_ms\": %.3f, "
      "\"wmc_ms\": %.3f, \"gc_ms\": %.3f, \"total_ms\": %.3f, "
      "\"bytes_charged\": %lld, \"plan_size\": %d, \"ts_ms\": %.3f}",
      static_cast<unsigned long long>(r.trace_id),
      static_cast<unsigned long long>(r.query_sig),
      static_cast<unsigned long long>(r.db_sig), r.shard, r.route,
      r.status_code, r.cache_hit ? 1 : 0, r.degraded ? 1 : 0,
      r.hedged ? 1 : 0, r.queue_ms, r.compile_ms, r.wmc_ms, r.gc_ms,
      r.total_ms, static_cast<long long>(r.bytes_charged), r.plan_size,
      r.ts_ms);
  *out += buf;
}

}  // namespace

const char* AnomalyName(Anomaly anomaly) {
  switch (anomaly) {
    case Anomaly::kQuarantineStrike:
      return "quarantine_strike";
    case Anomaly::kMemoryDenial:
      return "memory_denial";
    case Anomaly::kHangDetected:
      return "hang_detected";
    case Anomaly::kLatencyOutlier:
      return "latency_outlier";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder() : FlightRecorder(Options()) {}

FlightRecorder::FlightRecorder(Options options)
    : options_(std::move(options)),
      start_(std::chrono::steady_clock::now()) {
  ring_.resize(options_.capacity == 0 ? 1 : options_.capacity);
}

void FlightRecorder::Record(const FlightRecord& record) {
  total_records_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    FlightRecord& slot = ring_[written_ % ring_.size()];
    slot = record;
    slot.ts_ms = SinceMs(start_, std::chrono::steady_clock::now());
    ++written_;
  }
  const double bar = outlier_ms_.load(std::memory_order_relaxed);
  if (bar > 0 && record.total_ms > bar) {
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "total_ms %.3f over outlier bar %.3f", record.total_ms,
                  bar);
    NoteAnomaly(Anomaly::kLatencyOutlier, detail);
  }
}

void FlightRecorder::NoteAnomaly(Anomaly anomaly, const std::string& detail) {
  anomalies_.fetch_add(1, std::memory_order_relaxed);
  anomaly_counts_[static_cast<int>(anomaly)].fetch_add(
      1, std::memory_order_relaxed);
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  if (dumped_once_ &&
      SinceMs(last_dump_, now) < options_.min_dump_interval_ms) {
    return;  // rate-limited: counted above, no fresh dump
  }
  last_dump_ = now;
  dumped_once_ = true;
  std::string reason = AnomalyName(anomaly);
  if (!detail.empty()) reason += ": " + detail;
  DumpLocked(reason);
}

void FlightRecorder::DumpLocked(const std::string& reason) {
  const uint64_t seq = dumps_.fetch_add(1, std::memory_order_relaxed);
  std::string out = "{\"reason\": \"";
  AppendEscaped(&out, reason);
  char head[96];
  std::snprintf(head, sizeof(head), "\", \"ts_ms\": %.3f, \"records\": [\n",
                SinceMs(start_, std::chrono::steady_clock::now()));
  out += head;
  const uint64_t n = written_ < ring_.size()
                         ? written_
                         : static_cast<uint64_t>(ring_.size());
  const uint64_t first = written_ - n;
  for (uint64_t i = 0; i < n; ++i) {
    AppendRecord(&out, ring_[(first + i) % ring_.size()]);
    out += i + 1 < n ? ",\n" : "\n";
  }
  out += "]}\n";
  last_dump_json_ = out;
  if (!options_.dump_dir.empty()) {
    char path[512];
    std::snprintf(path, sizeof(path), "%s/flight_%llu.json",
                  options_.dump_dir.c_str(),
                  static_cast<unsigned long long>(seq));
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fwrite(out.data(), 1, out.size(), f);
      std::fclose(f);
    }
  }
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightRecord> out;
  const uint64_t n = written_ < ring_.size()
                         ? written_
                         : static_cast<uint64_t>(ring_.size());
  const uint64_t first = written_ - n;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    out.push_back(ring_[(first + i) % ring_.size()]);
  }
  return out;
}

std::string FlightRecorder::DumpJson(const std::string& reason) const {
  // Const-friendly variant of DumpLocked without counter/side effects:
  // snapshot then format.
  std::string out = "{\"reason\": \"";
  AppendEscaped(&out, reason);
  char head[96];
  std::snprintf(head, sizeof(head), "\", \"ts_ms\": %.3f, \"records\": [\n",
                SinceMs(start_, std::chrono::steady_clock::now()));
  out += head;
  const std::vector<FlightRecord> records = Snapshot();
  for (size_t i = 0; i < records.size(); ++i) {
    AppendRecord(&out, records[i]);
    out += i + 1 < records.size() ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

std::string FlightRecorder::last_dump_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_dump_json_;
}

}  // namespace ctsdd::obs
