#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace ctsdd::obs {

uint64_t Histogram::ValueAtPercentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  const uint64_t rank = std::min<uint64_t>(
      n - 1, static_cast<uint64_t>(p * static_cast<double>(n - 1) + 0.5));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    cumulative += bucket(i);
    if (cumulative > rank) return BucketValue(i);
  }
  return max();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  CTSDD_CHECK(e.gauge == nullptr && e.histogram == nullptr)
      << "metric kind mismatch for " << name;
  if (e.help.empty()) e.help = help;
  if (e.counter == nullptr) e.counter = std::make_unique<Counter>();
  return e.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  CTSDD_CHECK(e.counter == nullptr && e.histogram == nullptr)
      << "metric kind mismatch for " << name;
  if (e.help.empty()) e.help = help;
  if (e.gauge == nullptr) e.gauge = std::make_unique<Gauge>();
  return e.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  CTSDD_CHECK(e.counter == nullptr && e.gauge == nullptr)
      << "metric kind mismatch for " << name;
  if (e.help.empty()) e.help = help;
  if (e.histogram == nullptr) e.histogram = std::make_unique<Histogram>();
  return e.histogram.get();
}

std::string MetricsRegistry::JsonSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n";
  bool first = true;
  char buf[256];
  for (const auto& [name, e] : entries_) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"" + name + "\": ";
    if (e.counter != nullptr) {
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(e.counter->value()));
      out += buf;
    } else if (e.gauge != nullptr) {
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(e.gauge->value()));
      out += buf;
    } else {
      const Histogram& h = *e.histogram;
      std::snprintf(
          buf, sizeof(buf),
          "{\"count\": %llu, \"sum\": %llu, \"min\": %llu, \"max\": %llu, "
          "\"p50\": %llu, \"p90\": %llu, \"p99\": %llu, \"p999\": %llu}",
          static_cast<unsigned long long>(h.count()),
          static_cast<unsigned long long>(h.sum()),
          static_cast<unsigned long long>(h.min()),
          static_cast<unsigned long long>(h.max()),
          static_cast<unsigned long long>(h.ValueAtPercentile(0.50)),
          static_cast<unsigned long long>(h.ValueAtPercentile(0.90)),
          static_cast<unsigned long long>(h.ValueAtPercentile(0.99)),
          static_cast<unsigned long long>(h.ValueAtPercentile(0.999)));
      out += buf;
    }
  }
  out += "\n}\n";
  return out;
}

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  // Metric names must not start with a digit.
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

// HELP text escaping per the exposition format: backslash and newline.
std::string EscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

// Label-value escaping: backslash, double-quote, newline.
std::string EscapeLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[160];
  for (const auto& [name, e] : entries_) {
    const std::string prom = PrometheusName(name);
    const std::string help = e.help.empty() ? name : e.help;
    out += "# HELP " + prom + " " + EscapeHelp(help) + "\n";
    if (e.counter != nullptr) {
      out += "# TYPE " + prom + " counter\n";
      std::snprintf(buf, sizeof(buf), "%s %llu\n", prom.c_str(),
                    static_cast<unsigned long long>(e.counter->value()));
      out += buf;
    } else if (e.gauge != nullptr) {
      out += "# TYPE " + prom + " gauge\n";
      std::snprintf(buf, sizeof(buf), "%s %lld\n", prom.c_str(),
                    static_cast<long long>(e.gauge->value()));
      out += buf;
    } else {
      const Histogram& h = *e.histogram;
      out += "# TYPE " + prom + " histogram\n";
      // One snapshot of the fine buckets drives every exported line, so
      // the +Inf bucket and _count agree even while other threads
      // record. Fine buckets tile power-of-two blocks exactly, so
      // boundaries of the form 2^k - 1 (all values < 2^k) are exact,
      // never approximated.
      uint64_t fine[Histogram::kBucketCount];
      uint64_t total = 0;
      uint64_t top = 0;  // largest upper bound with any mass
      for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
        fine[i] = h.bucket(i);
        if (fine[i] != 0) {
          total += fine[i];
          top = Histogram::BucketUpperBound(i);
        }
      }
      size_t i = 0;
      uint64_t cumulative = 0;
      for (int k = 0; k < 64; ++k) {
        const uint64_t boundary = (uint64_t{1} << k) - 1;
        while (i < Histogram::kBucketCount &&
               Histogram::BucketUpperBound(i) <= boundary) {
          cumulative += fine[i];
          ++i;
        }
        std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%s\"} %llu\n",
                      prom.c_str(),
                      EscapeLabelValue(std::to_string(boundary)).c_str(),
                      static_cast<unsigned long long>(cumulative));
        out += buf;
        if (boundary >= top) break;  // remaining boundaries add nothing
      }
      std::snprintf(buf, sizeof(buf),
                    "%s_bucket{le=\"+Inf\"} %llu\n%s_sum %llu\n"
                    "%s_count %llu\n",
                    prom.c_str(), static_cast<unsigned long long>(total),
                    prom.c_str(), static_cast<unsigned long long>(h.sum()),
                    prom.c_str(), static_cast<unsigned long long>(total));
      out += buf;
    }
  }
  return out;
}

}  // namespace ctsdd::obs
