#include "graph/elimination.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace ctsdd {
namespace {

// Number of fill edges eliminating v would create in `g`.
int FillIn(const Graph& g, int v) {
  const auto& nbrs = g.Neighbors(v);
  int fill = 0;
  for (auto it = nbrs.begin(); it != nbrs.end(); ++it) {
    auto jt = it;
    for (++jt; jt != nbrs.end(); ++jt) {
      if (!g.HasEdge(*it, *jt)) ++fill;
    }
  }
  return fill;
}

}  // namespace

std::vector<int> GreedyEliminationOrder(const Graph& graph,
                                        EliminationHeuristic heuristic,
                                        Rng* rng) {
  Graph g = graph;  // working copy; elimination mutates it
  const int n = g.num_vertices();
  std::vector<bool> eliminated(n, false);
  std::vector<int> order;
  order.reserve(n);
  for (int step = 0; step < n; ++step) {
    int best = -1;
    long best_score = std::numeric_limits<long>::max();
    int num_tied = 0;
    for (int v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      const long score = heuristic == EliminationHeuristic::kMinDegree
                             ? g.Degree(v)
                             : FillIn(g, v);
      if (score < best_score) {
        best_score = score;
        best = v;
        num_tied = 1;
      } else if (score == best_score && rng != nullptr) {
        // Reservoir sampling over tied candidates.
        ++num_tied;
        if (rng->NextBelow(num_tied) == 0) best = v;
      }
    }
    CTSDD_CHECK_GE(best, 0);
    g.MakeNeighborsClique(best);
    g.IsolateVertex(best);
    eliminated[best] = true;
    order.push_back(best);
  }
  return order;
}

int EliminationOrderWidth(const Graph& graph, const std::vector<int>& order) {
  Graph g = graph;
  int width = 0;
  for (int v : order) {
    width = std::max(width, g.Degree(v));
    g.MakeNeighborsClique(v);
    g.IsolateVertex(v);
  }
  return width;
}

TreeDecomposition DecompositionFromOrder(const Graph& graph,
                                         const std::vector<int>& order) {
  const int n = graph.num_vertices();
  CTSDD_CHECK_EQ(static_cast<int>(order.size()), n);
  if (n == 0) {
    TreeDecomposition td;
    td.AddNode({}, -1);
    return td;
  }
  // Bag of vertex v = {v} union its neighborhood at elimination time.
  Graph g = graph;
  std::vector<int> position(n);
  for (int i = 0; i < n; ++i) position[order[i]] = i;
  std::vector<std::vector<int>> bags(n);
  for (int v : order) {
    bags[v].push_back(v);
    for (int w : g.Neighbors(v)) bags[v].push_back(w);
    g.MakeNeighborsClique(v);
    g.IsolateVertex(v);
  }
  // Parent of v's bag: the earliest-eliminated vertex among bag(v) \ {v};
  // the last eliminated vertex is the root. Build in reverse elimination
  // order so parents get smaller TreeDecomposition ids than children.
  TreeDecomposition td;
  std::vector<int> td_id(n, -1);
  for (int i = n - 1; i >= 0; --i) {
    const int v = order[i];
    int parent_vertex = -1;
    int best_pos = std::numeric_limits<int>::max();
    for (int w : bags[v]) {
      if (w == v) continue;
      if (position[w] < best_pos) {
        best_pos = position[w];
        parent_vertex = w;
      }
    }
    // parent_vertex was eliminated after v? No: bag neighbors of v at its
    // elimination time are all eliminated later than v, so their positions
    // are > i. The parent is the *first* of them to be eliminated.
    const int parent_id = parent_vertex < 0 ? -1 : td_id[parent_vertex];
    if (parent_id < 0 && td.num_nodes() > 0) {
      // Disconnected graph: attach to the root to keep a single tree.
      td_id[v] = td.AddNode(bags[v], td.root());
    } else {
      td_id[v] = td.AddNode(bags[v], parent_id);
    }
  }
  return td;
}

TreeDecomposition HeuristicDecomposition(const Graph& graph,
                                         EliminationHeuristic heuristic) {
  return DecompositionFromOrder(graph,
                                GreedyEliminationOrder(graph, heuristic));
}

}  // namespace ctsdd
