// Treewidth lower bounds.
//
// MMD (maximum minimum degree, a.k.a. degeneracy): repeatedly delete a
// minimum-degree vertex; the maximum minimum degree observed lower-bounds
// the treewidth. MMD+ (least-c variant): instead of deleting, contract
// the minimum-degree vertex into its least-degree neighbor, which can
// only raise the bound. Used to certify the exact DP and to sandwich
// heuristic widths on graphs too large for the exact algorithm.

#ifndef CTSDD_GRAPH_LOWER_BOUND_H_
#define CTSDD_GRAPH_LOWER_BOUND_H_

#include "graph/graph.h"

namespace ctsdd {

// The degeneracy bound: max over the deletion sequence of the minimum
// degree. Always <= treewidth.
int TreewidthLowerBoundMmd(const Graph& graph);

// MMD+ with contraction into the least-degree neighbor. Always >= MMD
// and still <= treewidth.
int TreewidthLowerBoundMmdPlus(const Graph& graph);

}  // namespace ctsdd

#endif  // CTSDD_GRAPH_LOWER_BOUND_H_
