#include "graph/path_decomposition.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"

namespace ctsdd {

std::vector<std::vector<int>> PathDecompositionFromLayout(
    const Graph& graph, const std::vector<int>& layout) {
  const int n = graph.num_vertices();
  CTSDD_CHECK_EQ(static_cast<int>(layout.size()), n);
  std::vector<int> position(n);
  for (int i = 0; i < n; ++i) position[layout[i]] = i;
  std::vector<std::vector<int>> bags;
  bags.reserve(n);
  for (int i = 0; i < n; ++i) {
    std::vector<int> bag = {layout[i]};
    for (int j = 0; j < i; ++j) {
      const int u = layout[j];
      for (int w : graph.Neighbors(u)) {
        if (position[w] >= i) {
          bag.push_back(u);
          break;
        }
      }
    }
    std::sort(bag.begin(), bag.end());
    bag.erase(std::unique(bag.begin(), bag.end()), bag.end());
    bags.push_back(std::move(bag));
  }
  return bags;
}

int PathLayoutWidth(const Graph& graph, const std::vector<int>& layout) {
  int width = 0;
  for (const auto& bag : PathDecompositionFromLayout(graph, layout)) {
    width = std::max(width, static_cast<int>(bag.size()) - 1);
  }
  return width;
}

TreeDecomposition PathAsTreeDecomposition(const Graph& graph,
                                          const std::vector<int>& layout) {
  const auto bags = PathDecompositionFromLayout(graph, layout);
  TreeDecomposition td;
  if (bags.empty()) {
    td.AddNode({}, -1);
    return td;
  }
  // Root at the last bag so the path hangs downward; children get larger
  // ids than parents as required by TreeDecomposition::AddNode.
  int prev = -1;
  for (int i = static_cast<int>(bags.size()) - 1; i >= 0; --i) {
    prev = td.AddNode(bags[i], prev);
  }
  return td;
}

std::vector<int> BfsLayout(const Graph& graph) {
  const int n = graph.num_vertices();
  std::vector<int> layout;
  layout.reserve(n);
  std::vector<bool> seen(n, false);

  // Pseudo-peripheral start: repeat BFS from the last-visited vertex twice.
  auto bfs_last = [&](int start) {
    std::vector<bool> visited(n, false);
    std::queue<int> queue;
    queue.push(start);
    visited[start] = true;
    int last = start;
    while (!queue.empty()) {
      last = queue.front();
      queue.pop();
      for (int w : graph.Neighbors(last)) {
        if (!visited[w]) {
          visited[w] = true;
          queue.push(w);
        }
      }
    }
    return last;
  };

  for (int s = 0; s < n; ++s) {
    if (seen[s]) continue;
    int start = bfs_last(bfs_last(s));
    std::queue<int> queue;
    queue.push(start);
    seen[start] = true;
    while (!queue.empty()) {
      const int v = queue.front();
      queue.pop();
      layout.push_back(v);
      for (int w : graph.Neighbors(v)) {
        if (!seen[w]) {
          seen[w] = true;
          queue.push(w);
        }
      }
    }
  }
  return layout;
}

}  // namespace ctsdd
