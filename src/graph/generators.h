// Graph generators for tests and width-parameterized benchmark families.

#ifndef CTSDD_GRAPH_GENERATORS_H_
#define CTSDD_GRAPH_GENERATORS_H_

#include "graph/graph.h"
#include "util/random.h"

namespace ctsdd {

// Path on n vertices (treewidth 1 for n >= 2).
Graph PathGraph(int n);

// Cycle on n >= 3 vertices (treewidth 2).
Graph CycleGraph(int n);

// Complete graph on n vertices (treewidth n - 1).
Graph CompleteGraph(int n);

// rows x cols grid (treewidth min(rows, cols)).
Graph GridGraph(int rows, int cols);

// A random tree on n vertices (treewidth 1 for n >= 2).
Graph RandomTree(int n, Rng* rng);

// A random k-tree on n >= k+1 vertices: treewidth exactly k (for n > k).
Graph RandomKTree(int n, int k, Rng* rng);

// A random subgraph of a k-tree keeping each edge with probability p
// (treewidth at most k — the standard "partial k-tree" model).
Graph RandomPartialKTree(int n, int k, double edge_keep_prob, Rng* rng);

// Erdos–Renyi G(n, p).
Graph RandomGraph(int n, double p, Rng* rng);

// Caterpillar: a path of `spine` vertices with `legs` pendant vertices per
// spine vertex (pathwidth 1).
Graph Caterpillar(int spine, int legs);

}  // namespace ctsdd

#endif  // CTSDD_GRAPH_GENERATORS_H_
