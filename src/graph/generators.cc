#include "graph/generators.h"

#include <vector>

#include "util/logging.h"

namespace ctsdd {

Graph PathGraph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

Graph CycleGraph(int n) {
  CTSDD_CHECK_GE(n, 3);
  Graph g = PathGraph(n);
  g.AddEdge(n - 1, 0);
  return g;
}

Graph CompleteGraph(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

Graph GridGraph(int rows, int cols) {
  CTSDD_CHECK_GE(rows, 1);
  CTSDD_CHECK_GE(cols, 1);
  Graph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph RandomTree(int n, Rng* rng) {
  Graph g(n);
  for (int v = 1; v < n; ++v) {
    g.AddEdge(v, static_cast<int>(rng->NextBelow(v)));
  }
  return g;
}

Graph RandomKTree(int n, int k, Rng* rng) {
  CTSDD_CHECK_GE(k, 1);
  CTSDD_CHECK_GE(n, k + 1);
  Graph g = CompleteGraph(k + 1);
  g.EnsureVertices(n);
  // Track the k-cliques available for extension; simple approach: remember
  // for each added vertex the clique it attached to, and sample cliques as
  // (existing vertex set) combinations discovered along the way.
  std::vector<std::vector<int>> cliques;
  {
    std::vector<int> base;
    for (int i = 0; i <= k; ++i) base.push_back(i);
    // All k-subsets of the initial (k+1)-clique.
    for (int skip = 0; skip <= k; ++skip) {
      std::vector<int> clique;
      for (int i = 0; i <= k; ++i) {
        if (i != skip) clique.push_back(i);
      }
      cliques.push_back(clique);
    }
  }
  for (int v = k + 1; v < n; ++v) {
    // Copy: the push_backs below may reallocate `cliques`.
    const std::vector<int> clique = cliques[rng->NextBelow(cliques.size())];
    for (int u : clique) g.AddEdge(v, u);
    // New k-cliques: clique with one member replaced by v.
    for (size_t drop = 0; drop < clique.size(); ++drop) {
      std::vector<int> next;
      for (size_t i = 0; i < clique.size(); ++i) {
        next.push_back(i == drop ? v : clique[i]);
      }
      cliques.push_back(std::move(next));
    }
  }
  return g;
}

Graph RandomPartialKTree(int n, int k, double edge_keep_prob, Rng* rng) {
  const Graph ktree = RandomKTree(n, k, rng);
  Graph g(n);
  for (int v = 0; v < n; ++v) {
    for (int w : ktree.Neighbors(v)) {
      if (w > v && rng->NextBool(edge_keep_prob)) g.AddEdge(v, w);
    }
  }
  return g;
}

Graph RandomGraph(int n, double p, Rng* rng) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng->NextBool(p)) g.AddEdge(i, j);
    }
  }
  return g;
}

Graph Caterpillar(int spine, int legs) {
  CTSDD_CHECK_GE(spine, 1);
  CTSDD_CHECK_GE(legs, 0);
  Graph g(spine * (1 + legs));
  for (int i = 0; i + 1 < spine; ++i) g.AddEdge(i, i + 1);
  int next = spine;
  for (int i = 0; i < spine; ++i) {
    for (int l = 0; l < legs; ++l) g.AddEdge(i, next++);
  }
  return g;
}

}  // namespace ctsdd
