#include "graph/graph.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace ctsdd {

Graph::Graph(int num_vertices) : adj_(num_vertices) {
  CTSDD_CHECK_GE(num_vertices, 0);
}

void Graph::EnsureVertices(int n) {
  if (n > num_vertices()) adj_.resize(n);
}

void Graph::AddEdge(int u, int v) {
  CTSDD_CHECK_GE(u, 0);
  CTSDD_CHECK_GE(v, 0);
  if (u == v) return;
  EnsureVertices(std::max(u, v) + 1);
  if (adj_[u].insert(v).second) {
    adj_[v].insert(u);
    ++num_edges_;
  }
}

bool Graph::HasEdge(int u, int v) const {
  if (u < 0 || u >= num_vertices() || v < 0 || v >= num_vertices()) {
    return false;
  }
  return adj_[u].count(v) > 0;
}

const std::set<int>& Graph::Neighbors(int v) const {
  CTSDD_CHECK_GE(v, 0);
  CTSDD_CHECK_LT(v, num_vertices());
  return adj_[v];
}

int Graph::Degree(int v) const {
  return static_cast<int>(Neighbors(v).size());
}

Graph Graph::InducedSubgraph(const std::vector<int>& vertices) const {
  std::vector<int> index(num_vertices(), -1);
  for (int i = 0; i < static_cast<int>(vertices.size()); ++i) {
    index[vertices[i]] = i;
  }
  Graph sub(static_cast<int>(vertices.size()));
  for (int i = 0; i < static_cast<int>(vertices.size()); ++i) {
    for (int w : Neighbors(vertices[i])) {
      if (index[w] > i) sub.AddEdge(i, index[w]);
    }
  }
  return sub;
}

std::vector<std::vector<int>> Graph::ConnectedComponents() const {
  std::vector<std::vector<int>> components;
  std::vector<bool> seen(num_vertices(), false);
  std::vector<int> stack;
  for (int s = 0; s < num_vertices(); ++s) {
    if (seen[s]) continue;
    components.emplace_back();
    stack.push_back(s);
    seen[s] = true;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      components.back().push_back(v);
      for (int w : adj_[v]) {
        if (!seen[w]) {
          seen[w] = true;
          stack.push_back(w);
        }
      }
    }
  }
  return components;
}

bool Graph::IsConnected() const {
  return ConnectedComponents().size() <= 1;
}

void Graph::IsolateVertex(int v) {
  CTSDD_CHECK_GE(v, 0);
  CTSDD_CHECK_LT(v, num_vertices());
  for (int w : adj_[v]) {
    adj_[w].erase(v);
    --num_edges_;
  }
  adj_[v].clear();
}

int Graph::MakeNeighborsClique(int v) {
  int fill = 0;
  const std::vector<int> nbrs(adj_[v].begin(), adj_[v].end());
  for (size_t i = 0; i < nbrs.size(); ++i) {
    for (size_t j = i + 1; j < nbrs.size(); ++j) {
      if (!HasEdge(nbrs[i], nbrs[j])) {
        AddEdge(nbrs[i], nbrs[j]);
        ++fill;
      }
    }
  }
  return fill;
}

std::string Graph::DebugString() const {
  std::ostringstream os;
  os << "Graph(n=" << num_vertices() << ", m=" << num_edges() << ")";
  for (int v = 0; v < num_vertices(); ++v) {
    if (adj_[v].empty()) continue;
    os << "\n  " << v << ":";
    for (int w : adj_[v]) os << " " << w;
  }
  return os.str();
}

}  // namespace ctsdd
