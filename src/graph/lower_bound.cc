#include "graph/lower_bound.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/logging.h"

namespace ctsdd {
namespace {

// Shared driver: pick the min-degree vertex, record its degree, then
// either delete it or contract it into a least-degree neighbor.
int MmdDriver(const Graph& graph, bool contract) {
  Graph g = graph;
  const int n = g.num_vertices();
  std::vector<bool> alive(n, true);
  int remaining = n;
  int bound = 0;
  while (remaining > 1) {
    int v = -1;
    int min_degree = std::numeric_limits<int>::max();
    for (int u = 0; u < n; ++u) {
      if (alive[u] && g.Degree(u) < min_degree) {
        min_degree = g.Degree(u);
        v = u;
      }
    }
    bound = std::max(bound, min_degree);
    if (contract && min_degree > 0) {
      // Contract v into its least-degree neighbor w: w inherits v's
      // other neighbors.
      int w = -1;
      int w_degree = std::numeric_limits<int>::max();
      for (int u : g.Neighbors(v)) {
        if (g.Degree(u) < w_degree) {
          w_degree = g.Degree(u);
          w = u;
        }
      }
      const std::vector<int> nbrs(g.Neighbors(v).begin(),
                                  g.Neighbors(v).end());
      for (int u : nbrs) {
        if (u != w) g.AddEdge(w, u);
      }
    }
    g.IsolateVertex(v);
    alive[v] = false;
    --remaining;
  }
  return bound;
}

}  // namespace

int TreewidthLowerBoundMmd(const Graph& graph) {
  return MmdDriver(graph, /*contract=*/false);
}

int TreewidthLowerBoundMmdPlus(const Graph& graph) {
  return MmdDriver(graph, /*contract=*/true);
}

}  // namespace ctsdd
