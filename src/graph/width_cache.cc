#include "graph/width_cache.h"

#include <utility>

#include "util/hashing.h"

namespace ctsdd {
namespace {

constexpr int32_t kEmptySlot = -1;

uint64_t HashSignature(const std::vector<uint64_t>& signature) {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (const uint64_t word : signature) h = HashCombine(h, word);
  return h;
}

}  // namespace

WidthCache& WidthCache::Global() {
  static WidthCache* cache = new WidthCache();
  return *cache;
}

std::vector<uint64_t> WidthCache::Signature(Kind kind, const Graph& graph) {
  const int n = graph.num_vertices();
  const int words_per_row = n == 0 ? 0 : (n - 1) / 64 + 1;
  std::vector<uint64_t> signature;
  signature.reserve(2 + static_cast<size_t>(n) * words_per_row);
  signature.push_back(static_cast<uint64_t>(kind));
  signature.push_back(static_cast<uint64_t>(n));
  for (int v = 0; v < n; ++v) {
    size_t row = signature.size();
    signature.resize(row + words_per_row, 0);
    for (const int w : graph.Neighbors(v)) {
      signature[row + w / 64] |= (1ULL << (w % 64));
    }
  }
  return signature;
}

bool WidthCache::Lookup(Kind kind, const Graph& graph, int* width,
                        std::vector<int>* order) {
  const std::vector<uint64_t> signature = Signature(kind, graph);
  const uint64_t hash = HashSignature(signature);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  if (slot_entry_.empty()) return false;
  const size_t mask = slot_entry_.size() - 1;
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    const int32_t e = slot_entry_[i];
    if (e == kEmptySlot) return false;
    if (hashes_[i] == hash && entries_[e].signature == signature) {
      *width = entries_[e].width;
      if (order != nullptr) *order = entries_[e].order;
      ++stats_.hits;
      return true;
    }
  }
}

void WidthCache::Insert(Kind kind, const Graph& graph, int width,
                        std::vector<int> order) {
  std::vector<uint64_t> signature = Signature(kind, graph);
  const uint64_t hash = HashSignature(signature);
  std::lock_guard<std::mutex> lock(mu_);
  if (slot_entry_.empty()) {
    hashes_.assign(1 << 8, 0);
    slot_entry_.assign(1 << 8, kEmptySlot);
  } else if ((entries_.size() + 1) * 3 > slot_entry_.size() * 2) {
    std::vector<uint64_t> old_hashes = std::move(hashes_);
    std::vector<int32_t> old_slots = std::move(slot_entry_);
    hashes_.assign(old_slots.size() * 2, 0);
    slot_entry_.assign(old_slots.size() * 2, kEmptySlot);
    const size_t mask = slot_entry_.size() - 1;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (old_slots[i] == kEmptySlot) continue;
      size_t j = old_hashes[i] & mask;
      while (slot_entry_[j] != kEmptySlot) j = (j + 1) & mask;
      hashes_[j] = old_hashes[i];
      slot_entry_[j] = old_slots[i];
    }
  }
  const size_t mask = slot_entry_.size() - 1;
  size_t i = hash & mask;
  for (; slot_entry_[i] != kEmptySlot; i = (i + 1) & mask) {
    if (hashes_[i] == hash &&
        entries_[slot_entry_[i]].signature == signature) {
      return;  // already cached (concurrent solvers may race to insert)
    }
  }
  hashes_[i] = hash;
  slot_entry_[i] = static_cast<int32_t>(entries_.size());
  entries_.push_back({std::move(signature), width, std::move(order)});
}

WidthCache::Stats WidthCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void WidthCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  hashes_.clear();
  slot_entry_.clear();
  entries_.clear();
  stats_ = Stats{};
}

}  // namespace ctsdd
