// Path decompositions derived from vertex layouts.
//
// A layout v_1, ..., v_n induces the path decomposition whose i-th bag is
// {v_j : j <= i and v_j has a neighbor v_k with k >= i} ∪ {v_i}; its width
// equals the vertex separation of the layout, and the minimum over layouts
// is the pathwidth.

#ifndef CTSDD_GRAPH_PATH_DECOMPOSITION_H_
#define CTSDD_GRAPH_PATH_DECOMPOSITION_H_

#include <vector>

#include "graph/graph.h"
#include "graph/tree_decomposition.h"

namespace ctsdd {

// Bags of the path decomposition induced by `layout` (one per vertex, in
// layout order).
std::vector<std::vector<int>> PathDecompositionFromLayout(
    const Graph& graph, const std::vector<int>& layout);

// Width of the induced path decomposition (max bag size - 1).
int PathLayoutWidth(const Graph& graph, const std::vector<int>& layout);

// Wraps the bags as a (path-shaped) TreeDecomposition rooted at the last
// bag, so the generic validators and the nice-form transform apply.
TreeDecomposition PathAsTreeDecomposition(const Graph& graph,
                                          const std::vector<int>& layout);

// Heuristic layout: BFS order from a pseudo-peripheral start vertex (a
// classical bandwidth/pathwidth heuristic). Deterministic.
std::vector<int> BfsLayout(const Graph& graph);

}  // namespace ctsdd

#endif  // CTSDD_GRAPH_PATH_DECOMPOSITION_H_
