#include "graph/tree_decomposition.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "util/logging.h"

namespace ctsdd {

int TreeDecomposition::AddNode(std::vector<int> bag, int parent) {
  std::sort(bag.begin(), bag.end());
  bag.erase(std::unique(bag.begin(), bag.end()), bag.end());
  const int id = num_nodes();
  if (parent < 0) {
    CTSDD_CHECK_EQ(id, 0) << "only the first node may be the root";
  } else {
    CTSDD_CHECK_LT(parent, id);
  }
  bags_.push_back(std::move(bag));
  parents_.push_back(parent);
  children_.emplace_back();
  if (parent >= 0) children_[parent].push_back(id);
  return id;
}

int TreeDecomposition::Width() const {
  int width = -1;
  for (const auto& bag : bags_) {
    width = std::max(width, static_cast<int>(bag.size()) - 1);
  }
  return width;
}

Status TreeDecomposition::Validate(const Graph& graph) const {
  const int n = graph.num_vertices();
  // Property 1: every vertex occurs in some bag. Also gather occurrences.
  std::vector<std::vector<int>> occurrences(n);
  for (int node = 0; node < num_nodes(); ++node) {
    for (int v : bags_[node]) {
      if (v < 0 || v >= n) {
        return Status::InvalidArgument("bag contains out-of-range vertex");
      }
      occurrences[v].push_back(node);
    }
  }
  for (int v = 0; v < n; ++v) {
    if (occurrences[v].empty()) {
      return Status::InvalidArgument("vertex " + std::to_string(v) +
                                     " appears in no bag");
    }
  }
  // Property 2: every edge covered by some bag.
  for (int u = 0; u < n; ++u) {
    for (int w : graph.Neighbors(u)) {
      if (w < u) continue;
      bool covered = false;
      for (int node : occurrences[u]) {
        const auto& bag = bags_[node];
        if (std::binary_search(bag.begin(), bag.end(), w)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        return Status::InvalidArgument("edge {" + std::to_string(u) + "," +
                                       std::to_string(w) +
                                       "} covered by no bag");
      }
    }
  }
  // Property 3: occurrences of each vertex form a connected subtree.
  for (int v = 0; v < n; ++v) {
    std::set<int> occ(occurrences[v].begin(), occurrences[v].end());
    // BFS within occ from its first element.
    std::set<int> seen;
    std::vector<int> stack = {*occ.begin()};
    seen.insert(stack.back());
    while (!stack.empty()) {
      const int node = stack.back();
      stack.pop_back();
      std::vector<int> adjacent = children_[node];
      if (parents_[node] >= 0) adjacent.push_back(parents_[node]);
      for (int next : adjacent) {
        if (occ.count(next) && !seen.count(next)) {
          seen.insert(next);
          stack.push_back(next);
        }
      }
    }
    if (seen.size() != occ.size()) {
      return Status::InvalidArgument("occurrences of vertex " +
                                     std::to_string(v) +
                                     " are not connected");
    }
  }
  return Status::Ok();
}

std::string TreeDecomposition::DebugString() const {
  std::ostringstream os;
  os << "TreeDecomposition(width=" << Width() << ")";
  for (int node = 0; node < num_nodes(); ++node) {
    os << "\n  node " << node << " (parent " << parents_[node] << "): {";
    for (size_t i = 0; i < bags_[node].size(); ++i) {
      if (i) os << ",";
      os << bags_[node][i];
    }
    os << "}";
  }
  return os.str();
}

int NiceTreeDecomposition::Width() const {
  int width = -1;
  for (const auto& node : nodes) {
    width = std::max(width, static_cast<int>(node.bag.size()) - 1);
  }
  return width;
}

Status NiceTreeDecomposition::Validate(const Graph& graph) const {
  if (nodes.empty()) return Status::InvalidArgument("empty nice TD");
  if (!nodes[root].bag.empty()) {
    return Status::InvalidArgument("root bag must be empty");
  }
  std::vector<int> forget_count(graph.num_vertices(), 0);
  for (int id = 0; id < static_cast<int>(nodes.size()); ++id) {
    const Node& node = nodes[id];
    if (!std::is_sorted(node.bag.begin(), node.bag.end())) {
      return Status::Internal("bag not sorted");
    }
    switch (node.kind) {
      case NiceNodeKind::kLeaf:
        if (!node.children.empty() || !node.bag.empty()) {
          return Status::InvalidArgument("malformed leaf node");
        }
        break;
      case NiceNodeKind::kIntroduce: {
        if (node.children.size() != 1) {
          return Status::InvalidArgument("introduce node needs one child");
        }
        const auto& child_bag = nodes[node.children[0]].bag;
        if (node.bag.size() != child_bag.size() + 1 ||
            !std::includes(node.bag.begin(), node.bag.end(),
                           child_bag.begin(), child_bag.end()) ||
            !std::binary_search(node.bag.begin(), node.bag.end(),
                                node.vertex) ||
            std::binary_search(child_bag.begin(), child_bag.end(),
                               node.vertex)) {
          return Status::InvalidArgument("malformed introduce node");
        }
        break;
      }
      case NiceNodeKind::kForget: {
        if (node.children.size() != 1) {
          return Status::InvalidArgument("forget node needs one child");
        }
        const auto& child_bag = nodes[node.children[0]].bag;
        if (child_bag.size() != node.bag.size() + 1 ||
            !std::includes(child_bag.begin(), child_bag.end(),
                           node.bag.begin(), node.bag.end()) ||
            !std::binary_search(child_bag.begin(), child_bag.end(),
                                node.vertex) ||
            std::binary_search(node.bag.begin(), node.bag.end(),
                               node.vertex)) {
          return Status::InvalidArgument("malformed forget node");
        }
        if (node.vertex >= 0 &&
            node.vertex < static_cast<int>(forget_count.size())) {
          ++forget_count[node.vertex];
        }
        break;
      }
      case NiceNodeKind::kJoin: {
        if (node.children.size() != 2) {
          return Status::InvalidArgument("join node needs two children");
        }
        if (nodes[node.children[0]].bag != node.bag ||
            nodes[node.children[1]].bag != node.bag) {
          return Status::InvalidArgument("join children bags differ");
        }
        break;
      }
    }
  }
  for (int v = 0; v < graph.num_vertices(); ++v) {
    if (forget_count[v] != 1) {
      return Status::InvalidArgument("vertex " + std::to_string(v) +
                                     " forgotten " +
                                     std::to_string(forget_count[v]) +
                                     " times (want exactly 1)");
    }
  }
  // Reuse the generic validator for the three TD properties.
  TreeDecomposition td;
  // Rebuild as a TreeDecomposition in a parent-before-child order (ids in
  // `nodes` may be arbitrary; do a DFS from root).
  std::vector<int> order;
  std::vector<int> remap(nodes.size(), -1);
  std::vector<int> stack = {root};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    order.push_back(id);
    for (int c : nodes[id].children) stack.push_back(c);
  }
  for (int id : order) {
    const int parent = nodes[id].parent;
    remap[id] = td.AddNode(nodes[id].bag, parent < 0 ? -1 : remap[parent]);
  }
  return td.Validate(graph);
}

namespace {

// Builder that emits the nice nodes bottom-up.
class NiceBuilder {
 public:
  explicit NiceBuilder(const TreeDecomposition& td) : td_(td) {}

  NiceTreeDecomposition Build() {
    NiceTreeDecomposition out;
    if (td_.num_nodes() == 0) {
      out.nodes.push_back({NiceNodeKind::kLeaf, {}, -1, -1, {}});
      out.root = 0;
      return out;
    }
    result_ = &out;
    // Build a chain from the root bag down to the empty bag: the subtree for
    // the root node, then forget all of the root's bag vertices.
    const int top = BuildSubtree(td_.root());
    int current = top;
    std::vector<int> bag = td_.bag(td_.root());
    while (!bag.empty()) {
      const int v = bag.back();
      bag.pop_back();
      current = Emit(NiceNodeKind::kForget, bag, v, {current});
    }
    out.root = current;
    // Fill parent pointers.
    for (int id = 0; id < static_cast<int>(out.nodes.size()); ++id) {
      for (int child : out.nodes[id].children) {
        out.nodes[child].parent = id;
      }
    }
    out.nodes[out.root].parent = -1;
    return out;
  }

 private:
  int Emit(NiceNodeKind kind, std::vector<int> bag, int vertex,
           std::vector<int> children) {
    std::sort(bag.begin(), bag.end());
    result_->nodes.push_back(
        {kind, std::move(bag), vertex, -1, std::move(children)});
    return static_cast<int>(result_->nodes.size()) - 1;
  }

  // Emits a chain that transforms bag `from` into bag `to` (both sorted),
  // starting at nice node `below` whose bag is `from`. Vertices in from\to
  // are forgotten, then vertices in to\from introduced. Returns the top node.
  int MorphBag(int below, std::vector<int> from, const std::vector<int>& to) {
    int current = below;
    std::vector<int> bag = from;
    for (int v : from) {
      if (!std::binary_search(to.begin(), to.end(), v)) {
        bag.erase(std::find(bag.begin(), bag.end(), v));
        current = Emit(NiceNodeKind::kForget, bag, v, {current});
      }
    }
    for (int v : to) {
      if (!std::binary_search(from.begin(), from.end(), v)) {
        bag.insert(std::lower_bound(bag.begin(), bag.end(), v), v);
        current = Emit(NiceNodeKind::kIntroduce, bag, v, {current});
      }
    }
    return current;
  }

  // Emits a chain building bag `bag` from a leaf via introduces.
  int BuildFromLeaf(const std::vector<int>& bag) {
    int current = Emit(NiceNodeKind::kLeaf, {}, -1, {});
    return MorphBag(current, {}, bag);
  }

  // Returns the id of a nice node whose bag equals td_.bag(node) and whose
  // subtree handles all of `node`'s descendants.
  int BuildSubtree(int node) {
    const std::vector<int>& bag = td_.bag(node);
    const auto& children = td_.children(node);
    if (children.empty()) return BuildFromLeaf(bag);
    // One branch per child, each morphed to this node's bag; then join.
    std::vector<int> branches;
    branches.reserve(children.size());
    for (int child : children) {
      const int sub = BuildSubtree(child);
      branches.push_back(MorphBag(sub, td_.bag(child), bag));
    }
    int current = branches[0];
    for (size_t i = 1; i < branches.size(); ++i) {
      current = Emit(NiceNodeKind::kJoin, bag, -1, {current, branches[i]});
    }
    return current;
  }

  const TreeDecomposition& td_;
  NiceTreeDecomposition* result_ = nullptr;
};

}  // namespace

NiceTreeDecomposition MakeNice(const TreeDecomposition& td) {
  return NiceBuilder(td).Build();
}

}  // namespace ctsdd
