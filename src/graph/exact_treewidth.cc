#include "graph/exact_treewidth.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <utility>

#include "graph/elimination.h"
#include "graph/lower_bound.h"
#include "graph/width_cache.h"
#include "util/hashing.h"
#include "util/logging.h"
#include "util/scoped_memo.h"

namespace ctsdd {
namespace {

using Mask = uint64_t;

struct WidthResult {
  int width = 0;
  std::vector<int> order;  // elimination order / vertex layout
};

std::vector<Mask> BitAdjacency(const Graph& g) {
  std::vector<Mask> adj(g.num_vertices(), 0);
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (int w : g.Neighbors(v)) adj[v] |= (Mask{1} << w);
  }
  return adj;
}

Status CheckSize(const Graph& graph) {
  if (graph.num_vertices() > kMaxExactVertices) {
    return Status::ResourceExhausted(
        "exact treewidth limited to " + std::to_string(kMaxExactVertices) +
        " vertices; got " + std::to_string(graph.num_vertices()));
  }
  return Status::Ok();
}

// --- Treewidth branch-and-bound (QuickBB on the BFK recurrence) ---------
//
// States are sets S of already-eliminated vertices carrying g = the
// largest elimination degree paid so far; the value reachable from (S, g)
// is max(g, w(S)) where w(S), the best completion width, depends on S
// only. The search keeps the eliminated graph G_S explicitly (one
// adjacency row copy per tree level), prunes against the incumbent,
// forces simplicial vertices, and dominance-prunes via a subset memo of
// the smallest g each S has been expanded with.
class TreewidthBnb {
 public:
  // `graph` must be connected and is expected to be pre-reduced.
  explicit TreewidthBnb(const Graph& graph)
      : n_(graph.num_vertices()),
        full_(n_ == 0 ? 0 : (~Mask{0} >> (64 - n_))),
        graph_(graph) {}

  // Returns min(tw, cap): a width below `cap` is exact (with a matching
  // elimination order); `cap` itself certifies tw >= cap (empty order).
  WidthResult Solve(int cap) {
    WidthResult result;
    if (n_ == 0) return result;
    // Incumbent: the better of the min-fill and min-degree orders.
    result.order = GreedyEliminationOrder(graph_, EliminationHeuristic::kMinFill);
    result.width = EliminationOrderWidth(graph_, result.order);
    std::vector<int> by_degree =
        GreedyEliminationOrder(graph_, EliminationHeuristic::kMinDegree);
    const int degree_width = EliminationOrderWidth(graph_, by_degree);
    if (degree_width < result.width) {
      result.width = degree_width;
      result.order = std::move(by_degree);
    }
    if (result.width >= cap) {
      result.width = cap;  // only widths below cap are interesting
      result.order.clear();
    }
    const int lb = TreewidthLowerBoundMmdPlus(graph_);
    if (lb >= result.width) return result;  // incumbent is provably optimal
    best_ = &result;
    adj_levels_.assign(n_ + 1, std::vector<Mask>(n_));
    adj_levels_[0] = BitAdjacency(graph_);
    prefix_.clear();
    prefix_.reserve(n_);
    memo_.Reset();
    Dfs(/*depth=*/0, /*eliminated=*/0, /*g=*/0);
    return result;
  }

 private:
  bool IsClique(const std::vector<Mask>& adj, Mask mask) const {
    for (Mask rest = mask; rest != 0; rest &= rest - 1) {
      const int u = std::countr_zero(rest);
      if ((mask & ~adj[u] & ~(Mask{1} << u)) != 0) return false;
    }
    return true;
  }

  // True if mask minus one of its members is a clique (almost-simplicial
  // neighborhood test).
  bool IsAlmostClique(const std::vector<Mask>& adj, Mask mask) const {
    for (Mask rest = mask; rest != 0; rest &= rest - 1) {
      const int skip = std::countr_zero(rest);
      if (IsClique(adj, mask & ~(Mask{1} << skip))) return true;
    }
    return false;
  }

  // MMD+ (contraction degeneracy) on the eliminated graph: each node of
  // the search pays O(n^2) word operations here to lower-bound w(S) =
  // tw(G_S), which prunes entire subtrees the incumbent test alone
  // cannot. Mutates a scratch copy of the rows.
  int LowerBoundMmdPlus(const std::vector<Mask>& adj, Mask alive) {
    std::copy(adj.begin(), adj.end(), scratch_adj_.begin());
    int bound = 0;
    while (std::popcount(alive) > 1) {
      int v = -1;
      int min_deg = std::numeric_limits<int>::max();
      for (Mask rest = alive; rest != 0; rest &= rest - 1) {
        const int u = std::countr_zero(rest);
        const int deg = std::popcount(scratch_adj_[u] & alive);
        if (deg < min_deg) {
          min_deg = deg;
          v = u;
        }
      }
      bound = std::max(bound, min_deg);
      if (min_deg > 0) {
        // Contract v into its least-degree live neighbor.
        int w = -1;
        int w_deg = std::numeric_limits<int>::max();
        for (Mask rest = scratch_adj_[v] & alive; rest != 0;
             rest &= rest - 1) {
          const int u = std::countr_zero(rest);
          const int deg = std::popcount(scratch_adj_[u] & alive);
          if (deg < w_deg) {
            w_deg = deg;
            w = u;
          }
        }
        scratch_adj_[w] |= scratch_adj_[v];
        scratch_adj_[w] &= ~(Mask{1} << w) & ~(Mask{1} << v);
        for (Mask rest = scratch_adj_[v] & alive; rest != 0;
             rest &= rest - 1) {
          const int u = std::countr_zero(rest);
          if (u != w) scratch_adj_[u] |= Mask{1} << w;
        }
      }
      alive &= ~(Mask{1} << v);
    }
    return bound;
  }

  // Writes G_{S + v} into adj_levels_[depth + 1].
  void Eliminate(int depth, int v) {
    const std::vector<Mask>& a = adj_levels_[depth];
    std::vector<Mask>& b = adj_levels_[depth + 1];
    const Mask vbit = Mask{1} << v;
    const Mask nb = a[v];
    for (int u = 0; u < n_; ++u) b[u] = a[u] & ~vbit;
    for (Mask rest = nb; rest != 0; rest &= rest - 1) {
      const int u = std::countr_zero(rest);
      b[u] |= nb & ~(Mask{1} << u);
    }
    b[v] = 0;
  }

  // Replaces the incumbent with width g: the current prefix plus the
  // remaining vertices in any order (only called when that tail is free,
  // i.e. every remaining degree stays <= g).
  void Accept(int g, Mask remaining) {
    best_->width = g;
    best_->order = prefix_;
    for (Mask rest = remaining; rest != 0; rest &= rest - 1) {
      best_->order.push_back(std::countr_zero(rest));
    }
  }

  // Memo payload: the smallest g this subset has been expanded with
  // (dominance) packed with the strongest proven lower bound on w(S).
  static int32_t Pack(int g_seen, int lb) { return (g_seen << 16) | lb; }
  static int UnpackGSeen(int32_t v) { return v >> 16; }
  static int UnpackLb(int32_t v) { return v & 0xffff; }

  int MemoChildLb(Mask child) const {
    int32_t packed;
    if (memo_.Lookup(HashMix64(child), child, &packed)) {
      return UnpackLb(packed);
    }
    return 0;
  }

  void Dfs(int depth, Mask eliminated, int g) {
    // Invariant: g < best_->width (strictly improving prefixes only).
    const std::vector<Mask>& adj = adj_levels_[depth];
    const Mask remaining = full_ & ~eliminated;
    const int r = std::popcount(remaining);
    if (r <= g + 1) {
      // Any completion pays at most r - 1 <= g per elimination.
      Accept(g, remaining);
      return;
    }
    const uint64_t hash = HashMix64(eliminated);
    int32_t packed;
    int lb = 0;
    bool revisit = false;
    if (memo_.Lookup(hash, eliminated, &packed)) {
      lb = UnpackLb(packed);
      if (UnpackGSeen(packed) <= g) return;             // dominance
      if (std::max(g, lb) >= best_->width) return;      // proven bound
      revisit = true;
    }
    // The completion width w(S) is exactly tw(G_S), so any lower bound on
    // the eliminated graph prunes the whole subtree. G_S depends on S
    // only, so revisits reuse the memoized bound instead of recomputing.
    if (!revisit) lb = std::max(lb, LowerBoundMmdPlus(adj, remaining));
    memo_.Upsert(hash, eliminated, Pack(g, lb));
    if (std::max(g, lb) >= best_->width) return;

    // Candidate degrees in the eliminated graph, ascending (ties by id).
    auto& candidates = candidates_[depth];
    int count = 0;
    for (Mask rest = remaining; rest != 0; rest &= rest - 1) {
      const int v = std::countr_zero(rest);
      candidates[count++] = {std::popcount(adj[v]), v};
    }
    std::sort(candidates.begin(), candidates.begin() + count);

    // Safe forcing (Bodlaender–Koster rules on G_S): a simplicial vertex,
    // or an almost-simplicial vertex of degree <= lb <= tw(G_S), is an
    // optimal first elimination — recurse on that single child, and
    // w(S) = max(q, w(S + v)) exactly.
    int forced_v = -1;
    int forced_q = 0;
    for (int i = 0; i < count; ++i) {
      const auto [q, v] = candidates[i];
      if (q <= 1 || IsClique(adj, adj[v]) ||
          (q <= lb && IsAlmostClique(adj, adj[v]))) {
        forced_v = v;
        forced_q = q;
        break;
      }
    }
    if (forced_v >= 0) {
      const Mask child = eliminated | (Mask{1} << forced_v);
      if (std::max(g, forced_q) < best_->width) {
        Eliminate(depth, forced_v);
        prefix_.push_back(forced_v);
        Dfs(depth + 1, child, std::max(g, forced_q));
        prefix_.pop_back();
      }
      lb = std::max(lb, std::max(forced_q, MemoChildLb(child)));
      memo_.Upsert(hash, eliminated, Pack(g, lb));
      return;
    }

    for (int i = 0; i < count; ++i) {
      const auto [q, v] = candidates[i];
      if (std::max(g, q) >= best_->width) break;  // q ascending
      Eliminate(depth, v);
      prefix_.push_back(v);
      Dfs(depth + 1, eliminated | (Mask{1} << v), std::max(g, q));
      prefix_.pop_back();
      if (g >= best_->width) break;  // incumbent overtook this prefix
    }
    // Propagate children's bounds: w(S) = min_v max(q_v, w(S + v)) >=
    // min_v max(q_v, LB[S + v]) — valid no matter which children were
    // pruned or how far the loop got.
    int completion_lb = std::numeric_limits<int>::max();
    for (int i = 0; i < count; ++i) {
      const auto [q, v] = candidates[i];
      completion_lb = std::min(
          completion_lb,
          std::max(q, MemoChildLb(eliminated | (Mask{1} << v))));
    }
    lb = std::max(lb, completion_lb);
    memo_.Upsert(hash, eliminated, Pack(g, lb));
  }

  const int n_;
  const Mask full_;
  const Graph& graph_;
  WidthResult* best_ = nullptr;
  std::vector<std::vector<Mask>> adj_levels_;
  std::array<std::array<std::pair<int, int>, kMaxExactVertices>,
             kMaxExactVertices + 1>
      candidates_;
  std::array<Mask, kMaxExactVertices> scratch_adj_;
  std::vector<int> prefix_;
  ScopedMemo<uint64_t, int32_t> memo_;
};

// --- Pathwidth branch-and-bound (vertex separation) ---------------------
//
// States are sets S of placed vertices with g = the largest boundary paid
// so far; cost(S) = |{u in S : u has a neighbor outside S}|. The boundary
// set is threaded through the recursion (it is a function of S), so no
// per-level graph copies are needed.
class PathwidthBnb {
 public:
  explicit PathwidthBnb(const Graph& graph)
      : n_(graph.num_vertices()),
        full_(n_ == 0 ? 0 : (~Mask{0} >> (64 - n_))),
        adj_(BitAdjacency(graph)),
        graph_(graph) {}

  WidthResult Solve() {
    WidthResult result;
    if (n_ == 0) return result;
    result.order = GreedyLayout();
    result.width = LayoutWidth(result.order);
    const int lb = TreewidthLowerBoundMmdPlus(graph_);  // pw >= tw
    if (lb >= result.width) return result;
    best_ = &result;
    prefix_.clear();
    prefix_.reserve(n_);
    memo_.Reset();
    Dfs(/*placed=*/0, /*boundary=*/0, /*g=*/0);
    return result;
  }

 private:
  // Boundary set after placing v on top of `placed` (with boundary set
  // `boundary`): v joins if it still has unplaced neighbors; placed
  // neighbors of v whose last unplaced neighbor was v leave.
  Mask PlacedBoundary(Mask placed, Mask boundary, int v) const {
    const Mask placed2 = placed | (Mask{1} << v);
    Mask b = boundary;
    if ((adj_[v] & ~placed2) != 0) b |= Mask{1} << v;
    for (Mask rest = boundary & adj_[v]; rest != 0; rest &= rest - 1) {
      const int u = std::countr_zero(rest);
      if ((adj_[u] & ~placed2) == 0) b &= ~(Mask{1} << u);
    }
    return b;
  }

  std::vector<int> GreedyLayout() const {
    std::vector<int> order;
    order.reserve(n_);
    Mask placed = 0;
    Mask boundary = 0;
    for (int step = 0; step < n_; ++step) {
      int best_v = -1;
      int best_cost = std::numeric_limits<int>::max();
      Mask best_boundary = 0;
      for (Mask rest = full_ & ~placed; rest != 0; rest &= rest - 1) {
        const int v = std::countr_zero(rest);
        const Mask b = PlacedBoundary(placed, boundary, v);
        const int cost = std::popcount(b);
        if (cost < best_cost) {
          best_cost = cost;
          best_v = v;
          best_boundary = b;
        }
      }
      order.push_back(best_v);
      placed |= Mask{1} << best_v;
      boundary = best_boundary;
    }
    return order;
  }

  int LayoutWidth(const std::vector<int>& order) const {
    Mask placed = 0;
    Mask boundary = 0;
    int width = 0;
    for (const int v : order) {
      boundary = PlacedBoundary(placed, boundary, v);
      placed |= Mask{1} << v;
      width = std::max(width, std::popcount(boundary));
    }
    return width;
  }

  void Dfs(Mask placed, Mask boundary, int g) {
    // Invariant: g < best_->width and cost(placed) <= g.
    if (placed == full_) {
      best_->width = g;
      best_->order = prefix_;
      return;
    }
    const uint64_t hash = HashMix64(placed);
    int32_t seen;
    if (memo_.Lookup(hash, placed, &seen) && seen <= g) return;
    memo_.Upsert(hash, placed, g);

    // Forced move: a vertex with every neighbor placed can never hurt
    // (placing it first never raises any later prefix's boundary).
    for (Mask rest = full_ & ~placed; rest != 0; rest &= rest - 1) {
      const int v = std::countr_zero(rest);
      if ((adj_[v] & ~placed) != 0) continue;
      prefix_.push_back(v);
      Dfs(placed | (Mask{1} << v), PlacedBoundary(placed, boundary, v), g);
      prefix_.pop_back();
      return;
    }

    // Branch by resulting boundary, ascending (ties by id). Candidates
    // live in a per-depth array: the recursion below reuses deeper rows,
    // and this loop keeps reading its own row after returning.
    auto& candidates = candidates_[std::popcount(placed)];
    int count = 0;
    for (Mask rest = full_ & ~placed; rest != 0; rest &= rest - 1) {
      const int v = std::countr_zero(rest);
      const Mask b = PlacedBoundary(placed, boundary, v);
      const int cost = std::popcount(b);
      if (std::max(g, cost) >= best_->width) continue;
      candidates[count++] = {cost, v, b};
    }
    std::sort(candidates.begin(), candidates.begin() + count,
              [](const PwCandidate& a, const PwCandidate& b) {
                return a.cost != b.cost ? a.cost < b.cost : a.v < b.v;
              });
    for (int i = 0; i < count; ++i) {
      const auto [cost, v, b] = candidates[i];
      if (std::max(g, cost) >= best_->width) break;
      prefix_.push_back(v);
      Dfs(placed | (Mask{1} << v), b, std::max(g, cost));
      prefix_.pop_back();
      if (g >= best_->width) return;
    }
  }

  struct PwCandidate {
    int cost;
    int v;
    Mask boundary;
  };

  const int n_;
  const Mask full_;
  const std::vector<Mask> adj_;
  const Graph& graph_;
  WidthResult* best_ = nullptr;
  std::array<std::array<PwCandidate, kMaxExactVertices>,
             kMaxExactVertices + 1>
      candidates_;
  std::vector<int> prefix_;
  ScopedMemo<uint64_t, int32_t> memo_;
};

// --- Reductions, component splitting, and the cache-backed drivers ------

bool IsCliqueInGraph(const Graph& g, const std::set<int>& vertices,
                     int skip = -1) {
  for (auto it = vertices.begin(); it != vertices.end(); ++it) {
    if (*it == skip) continue;
    auto jt = it;
    for (++jt; jt != vertices.end(); ++jt) {
      if (*jt == skip) continue;
      if (!g.HasEdge(*it, *jt)) return false;
    }
  }
  return true;
}

// Bodlaender–Koster safe reductions on a working copy: simplicial
// vertices are eliminated outright (recording their degree in *low);
// almost-simplicial vertices are eliminated when their degree is at most
// *low. Maintains tw(original) = max(*low, tw(*g restricted to *alive)),
// and appends the eliminated vertices (a valid optimal-order prefix) to
// *prefix.
void ReduceForTreewidth(Graph* g, std::vector<bool>* alive, int* low,
                        std::vector<int>* prefix) {
  const int n = g->num_vertices();
  bool changed = true;
  while (changed) {
    changed = false;
    for (int v = 0; v < n; ++v) {
      if (!(*alive)[v]) continue;
      const std::set<int>& nbrs = g->Neighbors(v);
      bool eliminate = false;
      if (IsCliqueInGraph(*g, nbrs)) {
        *low = std::max(*low, g->Degree(v));
        eliminate = true;
      } else if (g->Degree(v) <= *low) {
        // Almost-simplicial: all neighbors but one form a clique.
        for (const int u : nbrs) {
          if (IsCliqueInGraph(*g, nbrs, /*skip=*/u)) {
            eliminate = true;
            break;
          }
        }
      }
      if (eliminate) {
        g->MakeNeighborsClique(v);
        g->IsolateVertex(v);
        (*alive)[v] = false;
        prefix->push_back(v);
        changed = true;
      }
    }
  }
}

// Returns min(tw, cap); the order is only meaningful when the returned
// width is below cap (the result is then exact).
WidthResult SolveTreewidth(const Graph& graph, int cap) {
  Graph reduced = graph;
  std::vector<bool> alive(graph.num_vertices(), true);
  WidthResult result;
  result.width = TreewidthLowerBoundMmdPlus(graph);
  ReduceForTreewidth(&reduced, &alive, &result.width, &result.order);
  // Split what survives into connected components and solve each.
  for (const std::vector<int>& component : reduced.ConnectedComponents()) {
    if (!alive[component[0]]) continue;  // isolated husk of a reduced vertex
    const WidthResult sub =
        TreewidthBnb(reduced.InducedSubgraph(component)).Solve(cap);
    result.width = std::max(result.width, sub.width);
    for (const int local : sub.order) result.order.push_back(component[local]);
  }
  if (result.width >= cap) {
    result.width = cap;
    result.order.clear();
  }
  return result;
}

WidthResult SolvePathwidth(const Graph& graph) {
  WidthResult result;
  for (const std::vector<int>& component : graph.ConnectedComponents()) {
    // Once a component is fully placed its boundary is empty, so layouts
    // concatenate and the cost is the max over components.
    const WidthResult sub =
        PathwidthBnb(graph.InducedSubgraph(component)).Solve();
    result.width = std::max(result.width, sub.width);
    for (const int local : sub.order) result.order.push_back(component[local]);
  }
  return result;
}

using Kind = WidthCache::Kind;

// Cache-backed driver shared by the four entry points.
template <typename Solver>
StatusOr<WidthResult> CachedSolve(const Graph& graph, Kind kind,
                                  Solver&& solver, bool want_order) {
  CTSDD_RETURN_IF_ERROR(CheckSize(graph));
  WidthResult result;
  if (graph.num_vertices() == 0) return result;
  std::vector<int>* order_out = want_order ? &result.order : nullptr;
  if (WidthCache::Global().Lookup(kind, graph, &result.width, order_out)) {
    return result;
  }
  result = solver(graph);
  WidthCache::Global().Insert(kind, graph, result.width, result.order);
  return result;
}

// Full treewidth solve: tw <= n - 1 < n, so a cap of n is never hit.
WidthResult SolveTreewidthExact(const Graph& graph) {
  return SolveTreewidth(graph, graph.num_vertices());
}

}  // namespace

StatusOr<int> ExactTreewidth(const Graph& graph) {
  auto result = CachedSolve(graph, Kind::kTreewidth, SolveTreewidthExact,
                            /*want_order=*/false);
  CTSDD_RETURN_IF_ERROR(result.status());
  return result->width;
}

StatusOr<int> ExactTreewidthAtMost(const Graph& graph, int cap) {
  CTSDD_RETURN_IF_ERROR(CheckSize(graph));
  if (graph.num_vertices() == 0) return std::min(0, cap);
  if (cap <= 0) return cap;
  int width;
  if (WidthCache::Global().Lookup(Kind::kTreewidth, graph, &width,
                                  /*order=*/nullptr)) {
    return std::min(width, cap);
  }
  WidthResult result = SolveTreewidth(graph, cap);
  if (result.width < cap) {  // conclusive: this is the exact treewidth
    WidthCache::Global().Insert(Kind::kTreewidth, graph, result.width,
                                std::move(result.order));
  }
  return result.width;
}

StatusOr<std::vector<int>> OptimalEliminationOrder(const Graph& graph) {
  auto result = CachedSolve(graph, Kind::kTreewidth, SolveTreewidthExact,
                            /*want_order=*/true);
  CTSDD_RETURN_IF_ERROR(result.status());
  return std::move(result->order);
}

StatusOr<int> ExactPathwidth(const Graph& graph) {
  auto result = CachedSolve(graph, Kind::kPathwidth, SolvePathwidth,
                            /*want_order=*/false);
  CTSDD_RETURN_IF_ERROR(result.status());
  return result->width;
}

StatusOr<std::vector<int>> OptimalPathLayout(const Graph& graph) {
  auto result = CachedSolve(graph, Kind::kPathwidth, SolvePathwidth,
                            /*want_order=*/true);
  CTSDD_RETURN_IF_ERROR(result.status());
  return std::move(result->order);
}

}  // namespace ctsdd
