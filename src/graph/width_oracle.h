// Dense subset-DP reference implementations of exact treewidth and
// pathwidth (the pre-branch-and-bound engine, O(2^n * n^2) time and
// O(2^n) space).
//
// These exist as an *oracle*: the randomized tests cross-check the pruned
// branch-and-bound engine in exact_treewidth.h against them, and
// bench_exact_width uses them as the "before" baseline. They are not
// called from any production path — use ExactTreewidth/ExactPathwidth.

#ifndef CTSDD_GRAPH_WIDTH_ORACLE_H_
#define CTSDD_GRAPH_WIDTH_ORACLE_H_

#include "graph/graph.h"
#include "util/status.h"

namespace ctsdd {

// The dense DP tables are 2^n bytes; 24 vertices (16 MiB) is the ceiling
// the old engine shipped with and is plenty for cross-checks.
inline constexpr int kMaxDenseOracleVertices = 24;

// Exact treewidth by the full Bodlaender et al. subset DP.
StatusOr<int> DenseExactTreewidth(const Graph& graph);

// Exact pathwidth (vertex separation) by the full subset DP.
StatusOr<int> DenseExactPathwidth(const Graph& graph);

}  // namespace ctsdd

#endif  // CTSDD_GRAPH_WIDTH_ORACLE_H_
