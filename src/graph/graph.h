// Simple undirected graph used for circuit primal graphs, tree
// decompositions, and treewidth computation.

#ifndef CTSDD_GRAPH_GRAPH_H_
#define CTSDD_GRAPH_GRAPH_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace ctsdd {

// An undirected simple graph on vertices {0, ..., n-1}. Self-loops are
// ignored on insertion (the paper's loop-decorations in Proposition 1 do not
// affect treewidth and are not needed by the algorithms here).
class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_vertices);

  int num_vertices() const { return static_cast<int>(adj_.size()); }
  int num_edges() const { return num_edges_; }

  // Grows the vertex set to `n` vertices. No-op if already at least n.
  void EnsureVertices(int n);

  // Adds an undirected edge {u, v}. Ignores self-loops and duplicates.
  void AddEdge(int u, int v);

  bool HasEdge(int u, int v) const;

  const std::set<int>& Neighbors(int v) const;

  int Degree(int v) const;

  // Vertex-induced subgraph; `vertices` are relabeled 0..k-1 in the given
  // order. Also returns nothing else — callers track the mapping.
  Graph InducedSubgraph(const std::vector<int>& vertices) const;

  // Connected components as lists of vertex ids.
  std::vector<std::vector<int>> ConnectedComponents() const;

  // True if the graph is connected (vacuously true when empty).
  bool IsConnected() const;

  // Removes vertex v's incident edges (keeps the vertex as isolated).
  void IsolateVertex(int v);

  // Connects all pairs of v's current neighbors (used by elimination).
  // Returns the number of fill edges added.
  int MakeNeighborsClique(int v);

  std::string DebugString() const;

 private:
  std::vector<std::set<int>> adj_;
  int num_edges_ = 0;
};

}  // namespace ctsdd

#endif  // CTSDD_GRAPH_GRAPH_H_
