// Process-wide memo of exact width results, keyed by a canonical hash of
// the graph's adjacency structure.
//
// The compile pipeline recomputes exact treewidth for the same primal
// graph over and over (vtree enumeration in compile/widths.cc re-derives
// C_{F,T} whose primal graph depends only on the tree shape, and repeated
// CompileWithTreewidth calls on one circuit re-solve its primal graph
// verbatim). Exact width is a pure function of the labeled graph, so a
// process-wide cache turns those repeats into hash lookups. Keys are the
// full adjacency bitmask signature — equal signatures mean equal labeled
// graphs, so hits are exact, not heuristic.
//
// The cache stores the optimal order alongside the width: every solver
// run produces one, and OptimalEliminationOrder/OptimalPathLayout hit the
// same entries as their width-only counterparts. Guarded by a mutex so
// future parallel compile paths stay correct; entries are never evicted
// (exact solves are only attempted at <= kMaxExactVertices, so one entry
// is a few hundred bytes and workloads see at most thousands of distinct
// graphs).

#ifndef CTSDD_GRAPH_WIDTH_CACHE_H_
#define CTSDD_GRAPH_WIDTH_CACHE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "graph/graph.h"

namespace ctsdd {

class WidthCache {
 public:
  enum class Kind : uint64_t { kTreewidth = 1, kPathwidth = 2 };

  struct Stats {
    uint64_t lookups = 0;
    uint64_t hits = 0;
  };

  // The process-wide instance used by the exact solvers.
  static WidthCache& Global();

  // On a hit, fills `*width` and (when non-null) `*order` with the cached
  // exact result and returns true.
  bool Lookup(Kind kind, const Graph& graph, int* width,
              std::vector<int>* order);

  // Records an exact result. `order` is the optimal elimination order
  // (treewidth) or vertex layout (pathwidth) achieving `width`.
  void Insert(Kind kind, const Graph& graph, int width,
              std::vector<int> order);

  Stats stats() const;

  // Drops all entries and resets the stats (tests).
  void Clear();

  // The cache key: [kind, n, adjacency bitmask rows]. Equal signatures
  // are equal labeled graphs of the same kind — also useful to callers
  // that dedupe graphs before issuing uncacheable bounded queries.
  static std::vector<uint64_t> Signature(Kind kind, const Graph& graph);

 private:
  struct Entry {
    std::vector<uint64_t> signature;
    int width = 0;
    std::vector<int> order;
  };

  mutable std::mutex mu_;
  // Open-addressed table in the unique_table.h idiom: parallel hash/index
  // arrays with linear probing over power-of-two slots; entry payloads
  // live out-of-line in entries_.
  std::vector<uint64_t> hashes_;
  std::vector<int32_t> slot_entry_;
  std::vector<Entry> entries_;
  Stats stats_;
};

}  // namespace ctsdd

#endif  // CTSDD_GRAPH_WIDTH_CACHE_H_
