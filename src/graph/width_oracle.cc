#include "graph/width_oracle.h"

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

namespace ctsdd {
namespace {

std::vector<uint32_t> BitAdjacency(const Graph& g) {
  std::vector<uint32_t> adj(g.num_vertices(), 0);
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (int w : g.Neighbors(v)) adj[v] |= (1u << w);
  }
  return adj;
}

// Q(S, v): vertices outside S∪{v} reachable from v via paths whose internal
// vertices all lie in S. |Q(S, v)| is the degree of v when eliminated after
// exactly the vertices of S (in the chordal completion).
uint32_t ReachableThrough(const std::vector<uint32_t>& adj, uint32_t s,
                          int v) {
  uint32_t visited = (1u << v);
  uint32_t frontier = adj[v];
  uint32_t reach = adj[v] & ~s & ~(1u << v);
  frontier &= s & ~visited;
  while (frontier != 0) {
    const int u = std::countr_zero(frontier);
    frontier &= frontier - 1;
    if (visited & (1u << u)) continue;
    visited |= (1u << u);
    reach |= adj[u] & ~s & ~(1u << v);
    frontier |= adj[u] & s & ~visited;
  }
  return reach;
}

Status CheckSize(const Graph& graph) {
  if (graph.num_vertices() > kMaxDenseOracleVertices) {
    return Status::ResourceExhausted(
        "dense width oracle limited to " +
        std::to_string(kMaxDenseOracleVertices) + " vertices; got " +
        std::to_string(graph.num_vertices()));
  }
  return Status::Ok();
}

}  // namespace

StatusOr<int> DenseExactTreewidth(const Graph& graph) {
  CTSDD_RETURN_IF_ERROR(CheckSize(graph));
  const int n = graph.num_vertices();
  if (n == 0) return 0;
  const auto adj = BitAdjacency(graph);
  const uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
  // DP over subsets: tw(S) = min_{v in S} max(|Q(S\{v}, v)|, tw(S\{v})).
  std::vector<int8_t> dp(static_cast<size_t>(full) + 1, 0);
  for (uint32_t s = 1; s <= full; ++s) {
    int best = std::numeric_limits<int>::max();
    uint32_t rest = s;
    while (rest != 0) {
      const int v = std::countr_zero(rest);
      rest &= rest - 1;
      const uint32_t without = s & ~(1u << v);
      const int q = std::popcount(ReachableThrough(adj, without, v));
      best = std::min(best, std::max(q, static_cast<int>(dp[without])));
    }
    dp[s] = static_cast<int8_t>(best);
  }
  return static_cast<int>(dp[full]);
}

StatusOr<int> DenseExactPathwidth(const Graph& graph) {
  CTSDD_RETURN_IF_ERROR(CheckSize(graph));
  const int n = graph.num_vertices();
  if (n == 0) return 0;
  const auto adj = BitAdjacency(graph);
  const uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
  // Vertex separation DP: vs(S) = min_{v in S} max(vs(S\{v}), cost(S)),
  // cost(S) = |{u in S : u has a neighbor outside S}|. vs(V) = pathwidth.
  std::vector<int8_t> dp(static_cast<size_t>(full) + 1, 0);
  for (uint32_t s = 1; s <= full; ++s) {
    int boundary = 0;
    uint32_t rest = s;
    while (rest != 0) {
      const int u = std::countr_zero(rest);
      rest &= rest - 1;
      if ((adj[u] & ~s) != 0) ++boundary;
    }
    int best = std::numeric_limits<int>::max();
    rest = s;
    while (rest != 0) {
      const int v = std::countr_zero(rest);
      rest &= rest - 1;
      best = std::min(best, static_cast<int>(dp[s & ~(1u << v)]));
    }
    dp[s] = static_cast<int8_t>(std::max(best, boundary));
  }
  return static_cast<int>(dp[full]);
}

}  // namespace ctsdd
