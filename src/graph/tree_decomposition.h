// Tree decompositions, validation, and the nice-form transform.
//
// A tree decomposition of a graph G = (V, E) is a tree whose nodes carry
// bags (vertex subsets of V) such that (1) every vertex occurs in some bag,
// (2) every edge is contained in some bag, and (3) for each vertex the set
// of bags containing it forms a connected subtree. Its width is the largest
// bag size minus one.
//
// Nice tree decompositions (Kloks) restrict node shapes to Leaf / Introduce /
// Forget / Join and are the form consumed by the Lemma 1 vtree construction:
// rooted at an empty bag, every graph vertex is forgotten exactly once.

#ifndef CTSDD_GRAPH_TREE_DECOMPOSITION_H_
#define CTSDD_GRAPH_TREE_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace ctsdd {

// A rooted tree decomposition. Node 0 is the root unless empty.
class TreeDecomposition {
 public:
  TreeDecomposition() = default;

  // Adds a node with the given bag; returns its id. `parent` is -1 for the
  // root (allowed only for the first node).
  int AddNode(std::vector<int> bag, int parent);

  int num_nodes() const { return static_cast<int>(bags_.size()); }
  const std::vector<int>& bag(int node) const { return bags_[node]; }
  int parent(int node) const { return parents_[node]; }
  const std::vector<int>& children(int node) const { return children_[node]; }
  int root() const { return 0; }

  // Width = max bag size - 1 (or -1 for the empty decomposition).
  int Width() const;

  // Verifies the three tree-decomposition properties against `graph`.
  Status Validate(const Graph& graph) const;

  std::string DebugString() const;

 private:
  std::vector<std::vector<int>> bags_;
  std::vector<int> parents_;
  std::vector<std::vector<int>> children_;
};

// Node kinds of a nice tree decomposition.
enum class NiceNodeKind {
  kLeaf,       // empty bag, no children
  kIntroduce,  // bag = child bag + one vertex
  kForget,     // bag = child bag - one vertex
  kJoin,       // two children with identical bags
};

// A nice tree decomposition, rooted at node 0 which always has an empty bag
// (so every vertex of the underlying graph is forgotten exactly once).
struct NiceTreeDecomposition {
  struct Node {
    NiceNodeKind kind;
    std::vector<int> bag;       // sorted
    int vertex = -1;            // the introduced/forgotten vertex, or -1
    int parent = -1;
    std::vector<int> children;  // 0, 1, or 2 entries
  };

  std::vector<Node> nodes;
  int root = 0;

  int Width() const;

  // Checks structural well-formedness (shapes, bags, forget-once property).
  Status Validate(const Graph& graph) const;
};

// Converts an arbitrary rooted tree decomposition into nice form over the
// same graph. The result's root has an empty bag.
NiceTreeDecomposition MakeNice(const TreeDecomposition& td);

}  // namespace ctsdd

#endif  // CTSDD_GRAPH_TREE_DECOMPOSITION_H_
