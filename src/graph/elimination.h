// Elimination-order based treewidth upper bounds and tree decompositions.
//
// Eliminating a vertex connects its neighbors into a clique and removes the
// vertex; the width of an elimination order is the largest neighborhood
// encountered. Every elimination order yields a tree decomposition of that
// width, and the minimum over all orders is exactly the treewidth.

#ifndef CTSDD_GRAPH_ELIMINATION_H_
#define CTSDD_GRAPH_ELIMINATION_H_

#include <vector>

#include "graph/graph.h"
#include "graph/tree_decomposition.h"
#include "util/random.h"

namespace ctsdd {

enum class EliminationHeuristic {
  kMinDegree,
  kMinFill,
};

// Greedy elimination order. Ties are broken by vertex id (deterministic) or,
// if `rng` is provided, uniformly at random among the tied candidates.
std::vector<int> GreedyEliminationOrder(const Graph& graph,
                                        EliminationHeuristic heuristic,
                                        Rng* rng = nullptr);

// Width of an elimination order (max neighborhood size during elimination,
// i.e., max bag size - 1 of the induced decomposition).
int EliminationOrderWidth(const Graph& graph, const std::vector<int>& order);

// Builds the tree decomposition induced by an elimination order. The root
// bag corresponds to the last vertex eliminated.
TreeDecomposition DecompositionFromOrder(const Graph& graph,
                                         const std::vector<int>& order);

// Convenience: greedy heuristic decomposition (min-fill by default, which
// is almost always at least as good as min-degree).
TreeDecomposition HeuristicDecomposition(
    const Graph& graph,
    EliminationHeuristic heuristic = EliminationHeuristic::kMinFill);

}  // namespace ctsdd

#endif  // CTSDD_GRAPH_ELIMINATION_H_
