// Exact treewidth via dynamic programming over vertex subsets
// (Bodlaender et al.'s formulation of the QuickBB recurrence).
//
// Feasible up to roughly 20 vertices (O(2^n * n^2) time, O(2^n) space).
// For larger graphs use the heuristics in elimination.h.

#ifndef CTSDD_GRAPH_EXACT_TREEWIDTH_H_
#define CTSDD_GRAPH_EXACT_TREEWIDTH_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace ctsdd {

// Maximum vertex count accepted by the exact algorithms.
inline constexpr int kMaxExactVertices = 24;

// Exact treewidth. Fails with kResourceExhausted when the graph has more
// than kMaxExactVertices vertices.
StatusOr<int> ExactTreewidth(const Graph& graph);

// Exact treewidth together with an optimal elimination order.
StatusOr<std::vector<int>> OptimalEliminationOrder(const Graph& graph);

// Exact pathwidth (vertex separation number). Same size limits.
StatusOr<int> ExactPathwidth(const Graph& graph);

// Exact pathwidth together with an optimal vertex layout (the order in
// which vertices enter the path decomposition).
StatusOr<std::vector<int>> OptimalPathLayout(const Graph& graph);

}  // namespace ctsdd

#endif  // CTSDD_GRAPH_EXACT_TREEWIDTH_H_
