// Exact treewidth and pathwidth via pruned branch-and-bound over
// elimination prefixes (QuickBB-style search on the Bodlaender–Fomin–
// Koster recurrence), replacing the exhaustive O(2^n * n^2) subset DP
// (kept as a cross-check oracle in width_oracle.h).
//
// The search is seeded with the min-fill/min-degree heuristic upper bound
// (elimination.h) and the MMD+ degeneracy lower bound (lower_bound.h),
// applies the Bodlaender–Koster safe reductions (simplicial and
// almost-simplicial vertex elimination) and connected-component splitting
// before branching, forces simplicial vertices during the search, and
// memoizes subset states in an open-addressed table instead of a dense
// 2^n array. Results are memoized process-wide across calls in
// WidthCache (width_cache.h), keyed by the graph's adjacency signature.
//
// Practical reach is ~32 vertices on the sparse graphs that arise as
// circuit primal graphs; adversarially dense instances can still take
// exponential time. For larger graphs use the heuristics in
// elimination.h.

#ifndef CTSDD_GRAPH_EXACT_TREEWIDTH_H_
#define CTSDD_GRAPH_EXACT_TREEWIDTH_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace ctsdd {

// Maximum vertex count accepted by the exact algorithms (subset states
// are 64-bit masks; 32 keeps the pruned search reliably fast).
inline constexpr int kMaxExactVertices = 32;

// Exact treewidth. Fails with kResourceExhausted when the graph has more
// than kMaxExactVertices vertices.
StatusOr<int> ExactTreewidth(const Graph& graph);

// Bounded query: returns min(tw(graph), cap). A result below `cap` is the
// exact treewidth; a result equal to `cap` only certifies tw >= cap.
// Seeding `cap` with a running minimum makes "does this graph beat the
// best width seen so far?" sweeps (vtree enumeration in compile/widths)
// dramatically cheaper than computing every exact width: refuting
// "tw < cap" usually falls out of the root lower bound, while the full
// exact solve must refute "tw < tw(graph)", the most expensive target.
StatusOr<int> ExactTreewidthAtMost(const Graph& graph, int cap);

// Exact treewidth together with an optimal elimination order.
StatusOr<std::vector<int>> OptimalEliminationOrder(const Graph& graph);

// Exact pathwidth (vertex separation number). Same size limits.
StatusOr<int> ExactPathwidth(const Graph& graph);

// Exact pathwidth together with an optimal vertex layout (the order in
// which vertices enter the path decomposition).
StatusOr<std::vector<int>> OptimalPathLayout(const Graph& graph);

}  // namespace ctsdd

#endif  // CTSDD_GRAPH_EXACT_TREEWIDTH_H_
