// QueryService: the long-lived query-serving front end (the paper's
// payoff — probabilistic UCQ evaluation through compiled lineage — run
// as a service instead of a one-shot pipeline).
//
// A request is (query, database, weights): lineage L(Q, D) compiles to
// an OBDD or SDD once per (query shape, database content, strategy) and
// is cached; every repeat — including weight-varied repeats, since
// tuple probabilities enter only at weighted-model-count time — pays a
// WMC pass over the compiled diagram and nothing else.
//
// Requests are sharded by (query, database) signature across worker
// threads. Each shard owns its managers (the managers stay
// single-threaded; see util/thread_check.h) and its plan-cache
// partition, and bounds resident memory with the managers' mark-from-
// roots garbage collection: evicted plans release their root refs, the
// next collection reclaims their nodes, and caches shrink back to
// baseline — so the service runs indefinitely where the one-shot
// pipeline's managers grow without limit.

#ifndef CTSDD_SERVE_QUERY_SERVICE_H_
#define CTSDD_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "exec/task_pool.h"
#include "db/query.h"
#include "db/query_compile.h"
#include "obs/debug_server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "serve/plan_cache.h"
#include "serve/plan_stats.h"
#include "serve/quarantine.h"
#include "serve/serve_stats.h"
#include "util/status.h"

namespace ctsdd {

class ShardWorker;
class Supervisor;
struct ShardSlot;

// One probability query against a tuple-independent database.
struct QueryRequest {
  Ucq query;
  // Must outlive the request's execution (the service never copies it).
  const Database* db = nullptr;
  // Per-request tuple probabilities indexed by tuple id; ids beyond the
  // vector (or an empty vector) fall back to the database's own
  // probabilities. Weights never invalidate a cached plan.
  std::vector<double> weights;
  VtreeStrategy strategy = VtreeStrategy::kBalanced;
  PlanRoute route = PlanRoute::kSdd;
  // Per-request deadline measured from batch admission; 0 falls back to
  // ServeOptions::default_deadline_ms (0 there too = no deadline). A
  // request still queued past its deadline fails with DEADLINE_EXCEEDED
  // without compiling; an in-flight compile aborts at the deadline.
  double deadline_ms = 0;
};

struct QueryResponse {
  Status status;  // OK unless lineage/compilation failed
  double probability = 0.0;
  bool plan_cache_hit = false;
  int shard = -1;
  double latency_ms = 0.0;
  // True when the serving plan came off the degradation ladder: the
  // requested route's compile tripped its budget and the alternate
  // representation (OBDD <-> SDD) answered instead. The answer itself is
  // exact — both routes compute the same weighted model count.
  bool degraded = false;
  // Set alongside transient typed failures — an UNAVAILABLE shed or
  // shard restart, or a RESOURCE_EXHAUSTED quarantine reject: the
  // caller's backoff hint (queue drain estimate, detection window, or
  // time to the next parole, respectively), clamped to
  // ServeOptions::retry_after_max_ms for the queue-derived cases.
  double retry_after_ms = 0;
  // Compile-time statistics of the serving plan.
  int lineage_gates = 0;
  int size = 0;
  int width = 0;
};

class QueryService {
 public:
  explicit QueryService(ServeOptions options = {});
  ~QueryService();  // drains and joins every shard

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Executes one request (blocks until its shard answers).
  QueryResponse Execute(const QueryRequest& request);

  // Admits the whole batch at once, fans it out across shards by
  // signature, and blocks until every response is filled. Responses are
  // positionally aligned with requests.
  std::vector<QueryResponse> ExecuteBatch(
      const std::vector<QueryRequest>& requests);

  // Aggregated counters over all shards plus latency percentiles.
  ServiceStats stats() const;

  // The service's always-on flight recorder (never null): recent request
  // records plus anomaly/dump counters, for tests and embedders.
  obs::FlightRecorder* flight_recorder() const { return flight_.get(); }

  // The unified metrics registry, refreshed from the current counters on
  // each call. JSON is a stable flat object; Prometheus is a text
  // exposition. Both include the latency/GC histograms.
  std::string MetricsJson();
  std::string MetricsPrometheus();
  obs::MetricsRegistry* metrics_registry() { return metrics_.get(); }

  // Per-plan telemetry registry (never null): live stats block per
  // cached plan plus the evicted-plan merge totals.
  PlanStatsRegistry* plan_stats() const { return plan_stats_.get(); }

  // Live introspection server (ServeOptions::debug_port). debug_port()
  // is the actually-bound port — useful with port 0 — or -1 when the
  // server is disabled or failed to bind.
  obs::DebugServer* debug_server() const { return debug_server_.get(); }
  int debug_port() const {
    return debug_server_ != nullptr && debug_server_->running()
               ? debug_server_->port()
               : -1;
  }

  const ServeOptions& options() const { return options_; }

 private:
  std::shared_ptr<ShardWorker> MakeWorker(int shard_id);
  void StartDebugServer();

  // Folds the live ServiceStats + flight-recorder counters into the
  // registry (histograms are recorded in place by the shards).
  void PublishMetrics();

  ServeOptions options_;
  // Service-wide work-stealing pool lent to shards for cold compiles
  // (null when options_.exec_workers <= 1). Declared before the shards
  // so it outlives every manager that borrowed it.
  std::unique_ptr<exec::TaskPool> exec_pool_;
  // Unified metrics registry; latency_us_/gc_pause_us_ are its shared
  // histograms (microsecond samples, recorded by every shard). flight_
  // is the bounded ring of recent request records with anomaly dumps.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  obs::Histogram* latency_us_ = nullptr;
  obs::Histogram* gc_pause_us_ = nullptr;
  std::unique_ptr<obs::FlightRecorder> flight_;
  // Poison-query negative cache, checked at admission and before cold
  // compiles. Service-level on purpose: it must survive shard restarts,
  // or every restart would buy a poisonous signature `threshold` more
  // ladder compiles.
  std::unique_ptr<Quarantine> quarantine_;
  // Shared atomics behind ServiceStats::supervision.
  std::unique_ptr<SupervisionCounters> sup_counters_;
  // Per-plan telemetry registry. Declared after metrics_ (it holds
  // registry pointers) and before slots_ (workers publish into it and
  // merge on eviction — including the evictions their destructors run).
  std::unique_ptr<PlanStatsRegistry> plan_stats_;
  // Process-wide memory governor (created when mem_hard_bytes > 0 and no
  // external governor was supplied); options_.mem_governor points at it.
  // Declared before slots_: every shard account parents into it.
  std::unique_ptr<MemGovernor> governor_;
  // Shard table: worker pointers swap under per-slot mutexes when the
  // supervisor restarts a shard.
  std::vector<std::unique_ptr<ShardSlot>> slots_;
  // Requests rejected before reaching any shard (e.g. null database);
  // folded into stats() so monitoring sees them as traffic + failures.
  std::atomic<uint64_t> rejected_requests_{0};
  // Declared after slots_: the supervisor's scan thread walks slots_, so
  // it must stop before any of the above is torn down.
  std::unique_ptr<Supervisor> supervisor_;
  // Declared very last: the debug server's handlers read everything
  // above (slots, governor, registries), so it must stop serving first.
  std::unique_ptr<obs::DebugServer> debug_server_;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace ctsdd

#endif  // CTSDD_SERVE_QUERY_SERVICE_H_
