// One shard of the query service: a worker thread owning its managers.
//
// The managers are single-threaded by contract, so the shard is the unit
// of both concurrency and memory accounting: it runs one thread, pools
// its managers (OBDD managers keyed by exact variable order, SDD
// managers keyed by exact vtree structure — the one shared structure,
// the process-wide WidthCache, carries its own mutex), keeps the plans
// compiled inside them pinned via external root refs, and enforces the
// resident-node ceiling with mark-from-roots garbage collection: when a
// manager exceeds the ceiling, the shard collects; when pinned plans
// alone hold it above, LRU plans are evicted (releasing their roots) and
// collection reruns. Manager pools are themselves LRU-bounded; evicting
// a manager first evicts every plan compiled inside it.

#ifndef CTSDD_SERVE_SHARD_H_
#define CTSDD_SERVE_SHARD_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "circuit/circuit.h"
#include "exec/task_pool.h"
#include "obdd/obdd.h"
#include "sdd/sdd.h"
#include "serve/plan_cache.h"
#include "serve/query_service.h"
#include "serve/serve_stats.h"
#include "util/budget.h"

namespace ctsdd {

// A unit of work handed to a shard: the request/response slots live in
// the batch submitter's frame, which blocks on (remaining, done_cv)
// until every shard has answered.
struct ShardJob {
  const QueryRequest* request = nullptr;
  QueryResponse* response = nullptr;
  PlanKey key;  // signatures precomputed by the router
  // Absolute deadline (from the request's or the service's default
  // deadline_ms, stamped at admission). Checked at dequeue — a job that
  // expired while queued fails without compiling — and threaded into the
  // compile's WorkBudget so in-flight work aborts at the deadline too.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline;
  std::atomic<int>* remaining = nullptr;
  std::mutex* done_mu = nullptr;
  std::condition_variable* done_cv = nullptr;
};

class ShardWorker {
 public:
  // `exec_pool` (optional, may be null) is the service-wide work-stealing
  // pool lent to this shard's managers for cold compiles; the shard
  // attaches it to every manager it pools, and the managers open
  // exec-managed parallel regions around their apply/compile operations.
  ShardWorker(int shard_id, const ServeOptions& options,
              LatencyRecorder* latency, LatencyRecorder* gc_latency,
              exec::TaskPool* exec_pool);
  ~ShardWorker();  // drains the queue, joins the thread

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  // Enqueues a job for the worker thread (thread-safe). Returns false —
  // shedding the job — when the queue is at max_queue_depth; the caller
  // gets a backoff hint (queue depth x smoothed service time) in
  // `*retry_after_ms` and must complete the response itself.
  bool Submit(const ShardJob& job, double* retry_after_ms);

  // Consistent snapshot of the shard's counters (thread-safe).
  ShardStats stats() const;

 private:
  struct PooledObdd {
    std::vector<int> order;  // exact key: the manager's variable order
    std::unique_ptr<ObddManager> manager;
    uint64_t last_used = 0;
  };
  struct PooledSdd {
    std::string vtree_key;  // exact key: serialized vtree structure
    std::unique_ptr<SddManager> manager;
    uint64_t last_used = 0;
  };

  void Loop();
  void Process(const ShardJob& job);
  // Compiles the request's plan, enforcing the compile budget/deadline
  // and running the degradation ladder: requested route first; on a
  // node-budget abort, the alternate route once with a fresh budget; then
  // the typed over-budget status. Deadline/cancel trips never retry.
  StatusOr<CompiledPlan> CompilePlan(const QueryRequest& request,
                                     const ShardJob& job);
  // One budgeted compile on `route` (budget may be null = unbudgeted).
  // On abort the partial nodes are collected immediately and the
  // budget's typed status is returned.
  StatusOr<CompiledPlan> CompileRoute(const QueryRequest& request,
                                      PlanRoute route, const Circuit& circuit,
                                      std::vector<int> vars,
                                      WorkBudget* budget);
  double EvaluatePlan(const CompiledPlan& plan, const QueryRequest& request);
  ObddManager* ObddFor(const std::vector<int>& order);
  SddManager* SddFor(Vtree vtree);
  // Ceiling enforcement + resident-node accounting (see file comment).
  void RunGcPolicy();
  // GarbageCollect with the pause recorded into the service's GC
  // latency reservoir and the shard's reclaim counters.
  template <typename Manager>
  size_t TimedGc(Manager* manager);
  void UpdateStats();

  const int id_;
  const ServeOptions options_;
  LatencyRecorder* const latency_;
  LatencyRecorder* const gc_latency_;
  exec::TaskPool* const exec_pool_;  // shared, may be null

  // Worker-thread state (no locking: only the worker touches it). The
  // pools are declared before the plan cache so the cache — whose
  // eviction callback releases root refs into the pooled managers — is
  // destroyed first.
  std::vector<PooledObdd> obdd_pool_;
  std::vector<PooledSdd> sdd_pool_;
  PlanCache plans_;
  uint64_t use_clock_ = 0;
  int requests_since_gc_check_ = 0;
  // Adaptive GC cadence (requests between policy checks): halved when a
  // check reclaims nodes or finds a manager over its ceiling, doubled
  // (up to 8x the configured interval) when a check finds nothing to do
  // — reclaim-rate feedback instead of a fixed period.
  int gc_interval_ = 1;
  uint64_t local_compiles_ = 0;
  uint64_t local_gc_runs_ = 0;
  uint64_t local_gc_reclaimed_ = 0;
  uint64_t local_manager_evictions_ = 0;
  uint64_t local_targeted_evictions_ = 0;
  uint64_t local_requests_ = 0;
  uint64_t local_failures_ = 0;
  uint64_t local_timeouts_ = 0;
  uint64_t local_fallbacks_ = 0;
  uint64_t local_budget_aborts_ = 0;
  int local_peak_live_ = 0;
  // Written by the worker thread, read by Submit on client threads for
  // the retry-after hint.
  std::atomic<double> ewma_service_ms_{1.0};
  // Bumped by Submit (client threads) when admission sheds a job.
  std::atomic<uint64_t> sheds_{0};

  mutable std::mutex stats_mu_;
  ShardStats stats_;  // published snapshot (guarded by stats_mu_)

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<ShardJob> queue_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace ctsdd

#endif  // CTSDD_SERVE_SHARD_H_
