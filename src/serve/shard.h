// One shard of the query service: a worker thread owning its managers.
//
// The managers are single-threaded by contract, so the shard is the unit
// of both concurrency and memory accounting: it runs one thread, pools
// its managers (OBDD managers keyed by exact variable order, SDD
// managers keyed by exact vtree structure — the one shared structure,
// the process-wide WidthCache, carries its own mutex), keeps the plans
// compiled inside them pinned via external root refs, and enforces the
// resident-node ceiling with mark-from-roots garbage collection: when a
// manager exceeds the ceiling, the shard collects; when pinned plans
// alone hold it above, LRU plans are evicted (releasing their roots) and
// collection reruns. Manager pools are themselves LRU-bounded; evicting
// a manager first evicts every plan compiled inside it.
//
// Supervision surface: the worker stamps an atomic progress counter at
// every job phase and flags busy/exited, so the service's supervisor can
// detect a hang (busy with stale progress past the heartbeat window) or
// a death (thread exited unbidden) from outside. A request may be
// dispatched more than once — a hedge copy to a sibling shard, or a
// supervisor failing it typed when its shard is torn down — so the
// request/response slots live in a shared, claim-guarded JobState:
// exactly one completer wins the atomic claim and fills the response,
// and the winner cancels every other copy's in-flight compile budget.

#ifndef CTSDD_SERVE_SHARD_H_
#define CTSDD_SERVE_SHARD_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "circuit/circuit.h"
#include "exec/task_pool.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obdd/obdd.h"
#include "sdd/sdd.h"
#include "serve/plan_cache.h"
#include "serve/quarantine.h"
#include "serve/query_service.h"
#include "serve/serve_stats.h"
#include "util/budget.h"

namespace ctsdd {

// Shared completion record for one request. Every dispatched copy
// (primary shard job, hedge copy, supervisor fail-over) holds a
// reference; the request/response slots point into the batch
// submitter's frame, which blocks on (remaining, done_mu, done_cv)
// until every response is filled — so they are valid exactly until the
// claim winner decrements `remaining`.
struct JobState {
  QueryRequest request;  // owned copy: outlives the submitter's loop frame
  QueryResponse* response = nullptr;
  PlanKey key;  // signatures precomputed by the router
  int primary_shard = -1;
  // Absolute deadline (from the request's or the service's default
  // deadline_ms, stamped at admission). Checked at dequeue — a job that
  // expired while queued fails without compiling — and threaded into the
  // compile's WorkBudget so in-flight work aborts at the deadline too.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline;
  std::chrono::steady_clock::time_point submitted_at;
  // True when quarantine admission let this request through as a parole
  // trial; workers skip the quarantine re-check for it.
  bool is_parole_trial = false;
  // Tracing hand-off (zero when the tracer was disarmed at admission):
  // every dispatched copy roots its spans under the same trace id, and
  // the claim winner emits the terminal async end event in Publish.
  obs::TraceContext trace;
  double submit_ts_us = 0;  // TraceNowUs() at admission, for queue.wait
  std::atomic<int>* remaining = nullptr;
  std::mutex* done_mu = nullptr;
  std::condition_variable* done_cv = nullptr;

  // First completer wins; every other copy observes `claimed` and
  // discards its result.
  std::atomic<bool> claimed{false};
  // At most one hedge copy per request (set by the supervisor when it
  // collects the candidate).
  std::atomic<bool> hedged{false};

  // In-flight compile budgets of the dispatched copies (slot 0 =
  // primary shard, slot 1 = hedge), registered around the compile under
  // `budget_mu` so the claim winner can cancel a loser's stack-allocated
  // budget without racing its destruction.
  std::mutex budget_mu;
  WorkBudget* budgets[2] = {nullptr, nullptr};

  // Registers (or, with null, deregisters) a copy's compile budget. If
  // the job was claimed while the budget was being set up, it is
  // cancelled immediately — closing the race with a winner that
  // cancelled before registration.
  void RegisterBudget(int side, WorkBudget* budget) {
    std::lock_guard<std::mutex> lock(budget_mu);
    budgets[side] = budget;
    if (budget != nullptr && claimed.load(std::memory_order_acquire)) {
      budget->Cancel(StatusCode::kCancelled);
    }
  }

  // Completion happens in three steps so the winner can finish its
  // bookkeeping between winning and waking the submitter (a stats()
  // call racing the batch return must already see the request counted):
  //   if (TryClaim()) { CancelLoserBudgets(...); <account>; Publish(r); }

  // Wins or loses the one claim. A loser discards its result.
  bool TryClaim() { return !claimed.exchange(true, std::memory_order_acq_rel); }

  // Winner-only: cancels every still-registered copy's budget with
  // `loser_reason` (duplicate work dies through WorkBudget::Cancel).
  // Returns whether a live budget was actually cancelled.
  bool CancelLoserBudgets(StatusCode loser_reason) {
    bool cancelled_any = false;
    std::lock_guard<std::mutex> lock(budget_mu);
    for (WorkBudget*& budget : budgets) {
      if (budget != nullptr) {
        budget->Cancel(loser_reason);
        cancelled_any = true;
        budget = nullptr;
      }
    }
    return cancelled_any;
  }

  // Winner-only: fills the response slot and releases the submitter.
  void Publish(const QueryResponse& result) {
    *response = result;
    // Exactly-once terminal span of the request's async track: only the
    // claim winner reaches Publish.
    if (trace.trace_id != 0) {
      obs::TraceAsyncEnd("request", "request", trace.trace_id);
    }
    // Decrement and notify inside the critical section: the submitter's
    // wait predicate can then only observe zero after acquiring the
    // mutex this thread holds, so it cannot wake, return, and destroy
    // the mutex/condvar while this thread still touches them.
    std::lock_guard<std::mutex> lock(*done_mu);
    if (remaining->fetch_sub(1) == 1) done_cv->notify_all();
  }
};

// A unit of work handed to a shard.
struct ShardJob {
  std::shared_ptr<JobState> state;
  bool is_hedge = false;
};

class ShardWorker {
 public:
  // `exec_pool` (optional, may be null) is the service-wide work-stealing
  // pool lent to this shard's managers for cold compiles; the shard
  // attaches it to every manager it pools, and the managers open
  // exec-managed parallel regions around their apply/compile operations.
  // `quarantine` (may be null) is the service-level poison negative
  // cache: workers re-check it before a cold compile and report compile
  // outcomes into it. `sup` (may be null) carries the shared supervision
  // counters (hedge wins/cancels). `latency_us` / `gc_pause_us` are the
  // service's shared histograms (microsecond samples); `flight` (may be
  // null) is the service's flight recorder — the worker appends one
  // record per claim-winning completion and raises quarantine-strike /
  // memory-denial anomalies. `plan_stats` (may be null) is the service's
  // per-plan telemetry registry: every compiled plan gets a stats block
  // published there and merged back on eviction.
  ShardWorker(int shard_id, const ServeOptions& options,
              obs::Histogram* latency_us, obs::Histogram* gc_pause_us,
              obs::FlightRecorder* flight, exec::TaskPool* exec_pool,
              Quarantine* quarantine, SupervisionCounters* sup,
              PlanStatsRegistry* plan_stats = nullptr);
  ~ShardWorker();  // drains the queue, joins the thread

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  // Enqueues a job for the worker thread (thread-safe). Returns false —
  // shedding the job — when the queue is at max_queue_depth or the
  // worker is retiring; the caller gets a backoff hint (queue depth x
  // smoothed service time, clamped to ServeOptions::retry_after_max_ms)
  // in `*retry_after_ms` and must complete the response itself. Hedge
  // sheds are not counted against the shard (the primary copy is still
  // in flight).
  bool Submit(const ShardJob& job, double* retry_after_ms);

  // Consistent snapshot of the shard's counters (thread-safe).
  ShardStats stats() const;

  // The shard's memory account (root of its managers' and plan cache's
  // accounting subtree); chains to the service governor when one is
  // configured. Byte reads are thread-safe.
  const MemAccount& mem_account() const { return account_; }

  // Adaptive hedge threshold for this shard: latency EWMA plus two
  // standard deviations (of the same smoothing window), clamped to
  // [floor_ms, 8 * floor_ms] so a cold or misbehaving estimate can
  // neither hedge instantly nor never. Thread-safe (supervisor reads it
  // each scan).
  double AdaptiveHedgeMs(double floor_ms) const;

  // --- Supervision surface (all thread-safe) ---

  // Progress counter stamped at every job phase; a busy worker whose
  // progress does not advance within the heartbeat window is hung.
  uint64_t progress() const {
    return progress_.load(std::memory_order_relaxed);
  }
  // True while a job is being processed (between dequeue and completion).
  bool busy() const { return busy_.load(std::memory_order_acquire); }
  // Jobs waiting in the shard queue right now (thread-safe; /statusz).
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }
  // True once the worker thread has returned — after a requested drain,
  // or unbidden (a death fault); the supervisor treats an exit it did
  // not request as a crash.
  bool exited() const { return exited_.load(std::memory_order_acquire); }

  // Begins teardown: marks the worker stopping (subsequent Submits
  // shed), steals every queued job into `*drained`, and reports the
  // in-flight job (state left null when idle). The caller fails the
  // stolen jobs typed; the worker thread exits once its current job —
  // if any — finishes or its budget is cancelled.
  void Retire(std::vector<ShardJob>* drained, ShardJob* in_flight);

  // Collects jobs submitted before `cutoff` that are still unclaimed and
  // not yet hedged, marking them hedged. Called by the supervisor.
  void CollectHedgeCandidates(std::chrono::steady_clock::time_point cutoff,
                              std::vector<std::shared_ptr<JobState>>* out);

  // Fault-injection hooks, to be called from a fault action running on
  // this worker's thread: make the worker thread exit before its next
  // job (abandoning the current one), or trip the budget of the compile
  // currently running on this thread (simulating budget exhaustion or
  // external cancellation mid-compile).
  static void RequestDeathOnCurrentThread();
  static void TripActiveBudgetOnCurrentThread(StatusCode code);

 private:
  // The account is declared before the manager so the manager is
  // destroyed first and releases its bytes into it. Heap-held (and the
  // pools are std::list, whose entries are never moved or re-assigned)
  // so the address the manager's structures charge through is stable —
  // and so no container operation can destroy an account while a live
  // manager still points at it.
  struct PooledObdd {
    std::vector<int> order;  // exact key: the manager's variable order
    std::unique_ptr<MemAccount> account;
    std::unique_ptr<ObddManager> manager;
    uint64_t last_used = 0;
  };
  struct PooledSdd {
    std::string vtree_key;  // exact key: serialized vtree structure
    std::unique_ptr<MemAccount> account;
    std::unique_ptr<SddManager> manager;
    uint64_t last_used = 0;
  };

  void Loop();
  void Process(const ShardJob& job);
  // Delivers `response` through the job's claim; on a win, records
  // latency and folds the outcome into the shard counters.
  void FinishJob(const ShardJob& job, QueryResponse& response, double ms);
  void Beat() { progress_.fetch_add(1, std::memory_order_relaxed); }
  // Compiles the request's plan, enforcing the compile budget/deadline
  // and running the degradation ladder: requested route first; on a
  // node-budget abort, the alternate route once with a fresh budget; then
  // the typed over-budget status. Deadline/cancel trips never retry.
  // Reports double-route budget exhaustion into the quarantine.
  StatusOr<CompiledPlan> CompilePlan(const ShardJob& job);
  // One budgeted compile on `route` (budget may be null = unbudgeted).
  // On abort the partial nodes are collected immediately and the
  // budget's typed status is returned.
  StatusOr<CompiledPlan> CompileRoute(const QueryRequest& request,
                                      PlanRoute route, const Circuit& circuit,
                                      std::vector<int> vars,
                                      WorkBudget* budget);
  double EvaluatePlan(const CompiledPlan& plan, const QueryRequest& request);
  ObddManager* ObddFor(const std::vector<int>& order);
  SddManager* SddFor(Vtree vtree);
  // Ceiling enforcement + resident-node accounting (see file comment).
  void RunGcPolicy();
  // Memory-pressure shed ladder, run when the governor reports pressure:
  // shrink caches + collect every pooled manager (soft tier), then while
  // still critical evict LRU plans and finally whole LRU managers —
  // manager destruction being the only step that returns store/arena
  // chunk bytes to the allocator.
  void RunMemPressureLadder();
  // Backoff hint attached to memory-pressure rejects.
  double MemRetryHintMs() const;
  // LRU manager eviction across both pools (plans inside it first);
  // false when both pools are empty.
  bool EvictLruManager();
  // GarbageCollect with the pause recorded into the service's GC
  // latency reservoir and the shard's reclaim counters.
  template <typename Manager>
  size_t TimedGc(Manager* manager);
  void UpdateStats();

  const int id_;
  const ServeOptions options_;
  obs::Histogram* const latency_us_;   // shared service histogram
  obs::Histogram* const gc_pause_us_;  // shared service histogram
  obs::FlightRecorder* const flight_;  // shared, may be null
  exec::TaskPool* const exec_pool_;    // shared, may be null
  Quarantine* const quarantine_;       // shared, may be null
  SupervisionCounters* const sup_;     // shared, may be null
  PlanStatsRegistry* const plan_stats_;  // shared, may be null

  // Shard memory account: parent of the per-manager accounts and the
  // plan cache's charges; chains to the service governor (stamped into
  // options_.mem_governor). Declared before the pools and the plan
  // cache so everything releasing bytes into it is destroyed first.
  MemAccount account_;

  // Worker-thread state (no locking: only the worker touches it). The
  // pools are declared before the plan cache so the cache — whose
  // eviction callback releases root refs into the pooled managers — is
  // destroyed first.
  std::list<PooledObdd> obdd_pool_;
  std::list<PooledSdd> sdd_pool_;
  PlanCache plans_;
  uint64_t use_clock_ = 0;
  int requests_since_gc_check_ = 0;
  // Adaptive GC cadence (requests between policy checks): halved when a
  // check reclaims nodes or finds a manager over its ceiling, doubled
  // (up to 8x the configured interval) when a check finds nothing to do
  // — reclaim-rate feedback instead of a fixed period.
  int gc_interval_ = 1;
  uint64_t local_compiles_ = 0;
  uint64_t local_gc_runs_ = 0;
  uint64_t local_gc_reclaimed_ = 0;
  uint64_t local_manager_evictions_ = 0;
  uint64_t local_targeted_evictions_ = 0;
  uint64_t local_requests_ = 0;
  uint64_t local_failures_ = 0;
  uint64_t local_timeouts_ = 0;
  uint64_t local_fallbacks_ = 0;
  uint64_t local_budget_aborts_ = 0;
  uint64_t local_duplicate_skips_ = 0;
  uint64_t local_mem_rejects_ = 0;
  uint64_t local_mem_aborts_ = 0;
  uint64_t local_pressure_evictions_ = 0;
  // Set by CompilePlan when the compile it just ran was tripped by the
  // memory governor (worker-thread local; read by Process immediately
  // after the CompilePlan call).
  bool last_compile_mem_pressure_ = false;
  int local_peak_live_ = 0;
  // Flight-record assembly for the request being processed (worker-
  // thread local): Process fills the identity and phase fields, TimedGc
  // accumulates pause time, FinishJob completes and appends it on a
  // claim win.
  obs::FlightRecord pending_record_;
  double request_gc_ms_ = 0;
  uint64_t bytes_at_request_start_ = 0;
  // Claim wins since the outlier bar was last refreshed from the
  // latency histogram.
  uint32_t wins_since_outlier_refresh_ = 0;
  // Written by the worker thread, read by Submit on client threads for
  // the retry-after hint.
  std::atomic<double> ewma_service_ms_{1.0};
  // Squared-deviation EWMA of the same latency stream (same 0.8/0.2
  // smoothing), read by the supervisor for the adaptive hedge threshold.
  std::atomic<double> ewma_var_ms2_{0.0};
  // Bumped by Submit (client threads) when admission sheds a job.
  std::atomic<uint64_t> sheds_{0};
  // Largest post-clamp retry hint handed out (client threads; CAS max).
  std::atomic<double> max_retry_hint_{0};

  // Supervision heartbeats (see accessors above).
  std::atomic<uint64_t> progress_{0};
  std::atomic<bool> busy_{false};
  std::atomic<bool> exited_{false};

  mutable std::mutex stats_mu_;
  ShardStats stats_;  // published snapshot (guarded by stats_mu_)

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<ShardJob> queue_;
  // In-flight job (guarded by mu_): set at dequeue, cleared after
  // completion; Retire reports it so the supervisor can fail it typed.
  std::shared_ptr<JobState> current_;
  bool current_is_hedge_ = false;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace ctsdd

#endif  // CTSDD_SERVE_SHARD_H_
