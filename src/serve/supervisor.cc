#include "serve/supervisor.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/trace.h"

namespace ctsdd {

namespace {

double SinceMs(std::chrono::steady_clock::time_point then,
               std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - then).count();
}

}  // namespace

Supervisor::Supervisor(const ServeOptions& options,
                       std::vector<std::unique_ptr<ShardSlot>>* slots,
                       SupervisionCounters* counters,
                       obs::FlightRecorder* flight, WorkerFactory factory)
    : options_(options),
      slots_(slots),
      counters_(counters),
      flight_(flight),
      factory_(std::move(factory)),
      seen_(slots->size()),
      thread_(&Supervisor::Loop, this) {}

Supervisor::~Supervisor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Destroy the carcasses: their destructors join, which blocks until a
  // hung worker's (finite) stall elapses. Fold the final counters so a
  // stats() call through a still-live service keeps seeing them.
  std::lock_guard<std::mutex> lock(retired_mu_);
  for (auto& worker : retired_) {
    AccumulateShardStats(reaped_totals_, worker->stats());
  }
  retired_.clear();
}

void Supervisor::AddRetiredStats(ShardStats* totals) const {
  std::lock_guard<std::mutex> lock(retired_mu_);
  AccumulateShardStats(*totals, reaped_totals_);
  for (const auto& worker : retired_) {
    AccumulateShardStats(*totals, worker->stats());
  }
}

void Supervisor::Loop() {
  // Scan a few times per heartbeat window so detection latency is a
  // fraction of the window, not a multiple of it.
  const double period_ms = std::max(0.5, options_.heartbeat_window_ms / 4.0);
  const auto period = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(period_ms));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, period, [&] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    ScanOnce(std::chrono::steady_clock::now());
    lock.lock();
  }
}

void Supervisor::ScanOnce(std::chrono::steady_clock::time_point now) {
  Reap();
  for (size_t i = 0; i < slots_->size(); ++i) {
    std::shared_ptr<ShardWorker> worker = (*slots_)[i]->Get();
    if (worker->exited()) {
      // The supervisor never asked this worker to stop, so an exited
      // thread is a crash.
      counters_->deaths_detected.fetch_add(1, std::memory_order_relaxed);
      if (flight_ != nullptr) {
        flight_->NoteAnomaly(
            obs::Anomaly::kHangDetected,
            "shard " + std::to_string(i) + ": worker thread died");
      }
      obs::TraceInstant("serve", "shard.death", {},
                        "shard", static_cast<uint64_t>(i));
      Restart(i, std::move(worker), now);
      continue;
    }
    if (worker->busy()) {
      const uint64_t progress = worker->progress();
      if (progress != seen_[i].progress) {
        seen_[i] = {progress, now};
      } else if (SinceMs(seen_[i].at, now) > options_.heartbeat_window_ms) {
        counters_->hangs_detected.fetch_add(1, std::memory_order_relaxed);
        if (flight_ != nullptr) {
          flight_->NoteAnomaly(
              obs::Anomaly::kHangDetected,
              "shard " + std::to_string(i) + ": no progress for window");
        }
        obs::TraceInstant("serve", "shard.hang", {},
                          "shard", static_cast<uint64_t>(i));
        Restart(i, std::move(worker), now);
      }
      continue;
    }
    seen_[i] = {worker->progress(), now};
  }
  if (options_.hedge_after_ms > 0 && slots_->size() > 1) DispatchHedges(now);
}

void Supervisor::Restart(size_t i, std::shared_ptr<ShardWorker> old,
                         std::chrono::steady_clock::time_point now) {
  counters_->shard_restarts.fetch_add(1, std::memory_order_relaxed);
  // Fresh worker first: new traffic flows while the carcass drains. Its
  // recompiles are pointer-identical by canonicity, so swapping managers
  // under the plans is invisible to answers.
  std::shared_ptr<ShardWorker> fresh = factory_(static_cast<int>(i));
  {
    std::lock_guard<std::mutex> lock((*slots_)[i]->mu);
    (*slots_)[i]->worker = std::move(fresh);
  }
  // Enroll the carcass in the retired list *before* failing its jobs:
  // the moment a failed response unblocks a submitter, a stats() call
  // must still find the old worker's counters (it is no longer in the
  // slot, so the retired list is its only home).
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    retired_.push_back(old);
  }
  std::vector<ShardJob> orphans;
  ShardJob in_flight;
  old->Retire(&orphans, &in_flight);
  if (in_flight.state != nullptr) orphans.push_back(std::move(in_flight));
  for (const ShardJob& job : orphans) {
    QueryResponse response;
    response.status =
        Status::Unavailable("shard restarted; retry");
    response.shard = static_cast<int>(i);
    // Backoff hint: the fresh worker is accepting immediately, but give
    // clients one detection window so a retry storm does not land while
    // the carcass still holds the CPU.
    response.retry_after_ms =
        std::clamp(options_.heartbeat_window_ms, 0.1,
                   std::max(0.1, options_.retry_after_max_ms));
    // Claim may fail if the job's hedge copy answered in the meantime —
    // then there is nothing to fail. The winner path cancels the hung
    // copy's registered budget (typed kUnavailable) so a budget-bound
    // stall unwinds instead of running to completion. Counter bumps
    // precede Publish so a stats() racing the batch return sees them.
    if (job.state->TryClaim()) {
      job.state->CancelLoserBudgets(StatusCode::kUnavailable);
      counters_->failed_on_restart.fetch_add(1, std::memory_order_relaxed);
      if (flight_ != nullptr) {
        // Restart failures bypass the worker's FinishJob path; account
        // for them here so the ring covers every typed rejection.
        obs::FlightRecord rec;
        rec.trace_id = job.state->trace.trace_id;
        rec.query_sig = job.state->key.query_sig;
        rec.db_sig = job.state->key.db_sig;
        rec.shard = static_cast<int>(i);
        rec.status_code = static_cast<int>(StatusCode::kUnavailable);
        rec.hedged = job.is_hedge;
        flight_->Record(rec);
      }
      job.state->Publish(response);
    }
  }
  seen_[i] = {0, now};
}

void Supervisor::DispatchHedges(std::chrono::steady_clock::time_point now) {
  std::vector<std::shared_ptr<JobState>> candidates;
  for (const auto& slot : *slots_) {
    // Per-shard adaptive threshold: the shard's own latency EWMA plus
    // two sigma, clamped to [hedge_after_ms, 8x]. A shard serving cache
    // hits hedges stragglers fast; one grinding through cold compiles
    // does not hedge its own normal work.
    std::shared_ptr<ShardWorker> worker = slot->Get();
    const double after_ms = worker->AdaptiveHedgeMs(options_.hedge_after_ms);
    const auto cutoff =
        now - std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(after_ms));
    worker->CollectHedgeCandidates(cutoff, &candidates);
  }
  for (std::shared_ptr<JobState>& state : candidates) {
    // Next healthy sibling of the primary shard. With every sibling
    // exited (mass death mid-restart) the hedge is skipped; the primary
    // copy still completes or fails through its own shard's restart.
    const size_t n = slots_->size();
    for (size_t k = 1; k < n; ++k) {
      const size_t j = (static_cast<size_t>(state->primary_shard) + k) % n;
      std::shared_ptr<ShardWorker> sibling = (*slots_)[j]->Get();
      if (sibling->exited()) continue;
      counters_->hedges_dispatched.fetch_add(1, std::memory_order_relaxed);
      obs::TraceInstant("serve", "hedge.dispatch", state->trace,
                        "target", static_cast<uint64_t>(j));
      if (!sibling->Submit(ShardJob{state, /*is_hedge=*/true}, nullptr)) {
        counters_->hedge_sheds.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
  }
}

void Supervisor::Reap() {
  std::lock_guard<std::mutex> lock(retired_mu_);
  for (auto it = retired_.begin(); it != retired_.end();) {
    if ((*it)->exited()) {
      AccumulateShardStats(reaped_totals_, (*it)->stats());
      it = retired_.erase(it);  // destructor joins an exited thread: fast
    } else {
      ++it;
    }
  }
}

}  // namespace ctsdd
