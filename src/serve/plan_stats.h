// Per-plan telemetry: every compiled plan carries a stats block that
// records how it was built (route, ladder hops, compile time, predicted
// width parameters) and how it performs (hit count, per-plan WMC
// latency histogram). This is the training set ROADMAP item 4's
// width-driven admission router learns from — predicted treewidth /
// pathwidth on one side, actual compiled node count on the other, one
// row per plan, harvested from live traffic by /plansz.
//
// Ownership and thread-safety: the stats block is shared_ptr-owned by
// the CompiledPlan (plan cache) AND by the PlanStatsRegistry's live
// table, so the debug server can enumerate plans without touching any
// shard's single-threaded cache. The split that makes cross-thread
// reads safe: descriptive fields are written by the compiling shard
// before Register() publishes the block and never after; the live
// counters (hits, wmc_us) are atomics / a concurrent histogram.
//
// Conservation: eviction merges the plan's histogram into the
// registry's "plan.evicted_wmc_us" registry histogram (lossless
// bucket-wise add) before dropping the live-table reference, so
//   sum(live plans' wmc counts) + evicted_wmc_us.count()
// equals total evaluations forever — no telemetry is lost when the
// cache turns over.

#ifndef CTSDD_SERVE_PLAN_STATS_H_
#define CTSDD_SERVE_PLAN_STATS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ctsdd {

struct PlanStats {
  // --- Immutable after Register() publishes the block ---------------
  uint64_t query_sig = 0;
  uint64_t db_sig = 0;
  int shard = -1;
  int route = 0;            // PlanRoute actually compiled (as int)
  int requested_route = 0;  // PlanRoute the client asked for
  int ladder_hops = 1;      // CompileRoute attempts consumed (2 = fallback)
  uint64_t compile_us = 0;
  bool is_constant = false;

  // Compiled-object shape.
  uint64_t nodes = 0;        // plan size (OBDD nodes / SDD elements)
  uint64_t edges = 0;        // child pointers (2 per node/element)
  uint64_t width = 0;        // route-specific width of the compiled form
  uint64_t pinned_nodes = 0;
  uint64_t pinned_bytes = 0;  // manager-account growth across the compile
  int lineage_gates = 0;
  int num_vars = 0;

  // Width-engine predictions (-1 = not run / not applicable). The
  // heuristic is a min-fill upper bound on the lineage circuit's
  // treewidth; exact values only for circuits small enough for the
  // exact engines.
  int predicted_treewidth = -1;
  int exact_treewidth = -1;
  int exact_pathwidth = -1;

  // --- Live counters (concurrent-safe) ------------------------------
  std::atomic<uint64_t> hits{0};  // cache hits (first compile not counted)
  obs::Histogram wmc_us;          // per-evaluation WMC latency

  uint64_t evaluations() const { return wmc_us.count(); }
};

// Process-wide side table of live plan stats plus the merge target for
// evicted ones. Shared by every shard of a service; all methods are
// thread-safe.
class PlanStatsRegistry {
 public:
  explicit PlanStatsRegistry(obs::MetricsRegistry* metrics);

  // Publishes a fully-initialized stats block into the live table.
  void Register(std::shared_ptr<PlanStats> stats);

  // Eviction hook (also covers shard restart and cache destruction —
  // every PlanCache removal funnels through its on_evict): merges the
  // plan's histogram and counters into the registry totals, then drops
  // the live reference.
  void OnEviction(const std::shared_ptr<PlanStats>& stats);

  // Stable snapshot of every live plan's stats block.
  std::vector<std::shared_ptr<PlanStats>> Snapshot() const;

  size_t live_plans() const;
  uint64_t evicted_plans() const { return evicted_plans_->value(); }

  // Merge target for evicted per-plan WMC histograms (conservation
  // partner of the live blocks' wmc_us).
  const obs::Histogram& evicted_wmc_us() const { return *evicted_wmc_us_; }

 private:
  obs::Histogram* evicted_wmc_us_;
  obs::Counter* evicted_plans_;
  obs::Counter* evicted_hits_;
  obs::Counter* evicted_evals_;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<PlanStats>> live_;
};

}  // namespace ctsdd

#endif  // CTSDD_SERVE_PLAN_STATS_H_
