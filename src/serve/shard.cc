#include "serve/shard.h"

#include <algorithm>
#include <map>
#include <utility>

#include "circuit/eval.h"
#include "db/lineage.h"
#include "obdd/obdd_compile.h"
#include "sdd/sdd_compile.h"
#include "serve/signature.h"
#include "util/timer.h"

namespace ctsdd {

ShardWorker::ShardWorker(int shard_id, const ServeOptions& options,
                         LatencyRecorder* latency, exec::TaskPool* exec_pool)
    : id_(shard_id),
      options_(options),
      latency_(latency),
      exec_pool_(exec_pool),
      plans_(options.plan_cache_capacity,
             [](const PlanKey&, CompiledPlan& plan) {
               // Unpin the plan's lineage: the released nodes become
               // garbage for the owning manager's next collection.
               if (plan.obdd) plan.obdd->ReleaseRootRef(plan.obdd_root);
               if (plan.sdd) plan.sdd->ReleaseRootRef(plan.sdd_root);
             }),
      thread_(&ShardWorker::Loop, this) {}

ShardWorker::~ShardWorker() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // The managers are bound to the (now joined) worker thread; detach so
  // the destroying thread may release the cached plans' root refs.
  for (PooledObdd& e : obdd_pool_) e.manager->DetachOwningThread();
  for (PooledSdd& e : sdd_pool_) e.manager->DetachOwningThread();
}

void ShardWorker::Submit(const ShardJob& job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(job);
  }
  cv_.notify_one();
}

ShardStats ShardWorker::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void ShardWorker::Loop() {
  for (;;) {
    ShardJob job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      job = queue_.front();
      queue_.pop_front();
    }
    Process(job);
  }
}

void ShardWorker::Process(const ShardJob& job) {
  Timer timer;
  const QueryRequest& request = *job.request;
  QueryResponse& response = *job.response;
  response.shard = id_;

  CompiledPlan* plan = plans_.Lookup(job.key);
  response.plan_cache_hit = plan != nullptr;
  if (plan == nullptr) {
    auto compiled = CompilePlan(request);
    if (compiled.ok()) {
      plan = plans_.Insert(job.key, std::move(compiled).value());
    } else {
      response.status = compiled.status();
    }
  }
  if (plan != nullptr) {
    response.probability = EvaluatePlan(*plan, request);
    response.lineage_gates = plan->lineage_gates;
    response.size = plan->size;
    response.width = plan->width;
  }

  ++local_requests_;
  if (plan == nullptr) ++local_failures_;
  if (++requests_since_gc_check_ >= options_.gc_check_interval) {
    requests_since_gc_check_ = 0;
    RunGcPolicy();
  }
  response.latency_ms = timer.ElapsedMillis();
  latency_->Record(response.latency_ms);
  UpdateStats();

  {
    // Decrement and notify inside the critical section: the submitter's
    // wait predicate can then only observe zero after acquiring the
    // mutex this thread holds, so it cannot wake, return, and destroy
    // the mutex/condvar while this thread still touches them.
    std::lock_guard<std::mutex> lock(*job.done_mu);
    if (job.remaining->fetch_sub(1) == 1) job.done_cv->notify_all();
  }
}

StatusOr<CompiledPlan> ShardWorker::CompilePlan(const QueryRequest& request) {
  ++local_compiles_;
  auto lineage = BuildLineage(request.query, *request.db);
  CTSDD_RETURN_IF_ERROR(lineage.status());
  const Circuit& circuit = lineage.value();

  CompiledPlan plan;
  plan.route = request.route;
  plan.lineage_gates = circuit.num_gates();
  plan.vars = circuit.Vars();
  if (plan.vars.empty()) {
    // Constant lineage: no diagram to build, the truth value is the plan.
    plan.is_constant = true;
    plan.constant_value = Evaluate(
        circuit, std::vector<bool>(std::max(circuit.num_vars(), 0), false));
    return plan;
  }
  if (request.route == PlanRoute::kObdd) {
    ObddManager* manager = ObddFor(plan.vars);
    plan.obdd = manager;
    plan.obdd_root = CompileCircuitToObdd(manager, circuit);
    manager->AddRootRef(plan.obdd_root);
    plan.size = manager->Size(plan.obdd_root);
    plan.width = manager->Width(plan.obdd_root);
    plan.pinned_nodes = plan.size;
  } else {
    auto vtree = VtreeForStrategy(circuit, plan.vars, request.strategy);
    CTSDD_RETURN_IF_ERROR(vtree.status());
    SddManager* manager = SddFor(std::move(vtree).value());
    plan.sdd = manager;
    plan.sdd_root = CompileCircuitToSdd(manager, circuit);
    manager->AddRootRef(plan.sdd_root);
    const SddStats stats = ComputeSddStats(*manager, plan.sdd_root);
    plan.size = stats.size;
    plan.width = stats.width;
    plan.pinned_nodes = stats.decisions;
  }
  return plan;
}

double ShardWorker::EvaluatePlan(const CompiledPlan& plan,
                                 const QueryRequest& request) {
  if (plan.is_constant) return plan.constant_value ? 1.0 : 0.0;
  const auto weight = [&](int tuple) {
    return static_cast<size_t>(tuple) < request.weights.size()
               ? request.weights[tuple]
               : request.db->TupleProb(tuple);
  };
  if (plan.route == PlanRoute::kObdd) {
    std::vector<double> prob_by_level(plan.vars.size());
    for (size_t i = 0; i < plan.vars.size(); ++i) {
      prob_by_level[i] = weight(plan.vars[i]);
    }
    return plan.obdd->WeightedModelCount(plan.obdd_root, prob_by_level);
  }
  std::map<int, double> probs;
  for (const int v : plan.vars) probs[v] = weight(v);
  return plan.sdd->WeightedModelCount(plan.sdd_root, probs);
}

ObddManager* ShardWorker::ObddFor(const std::vector<int>& order) {
  for (PooledObdd& e : obdd_pool_) {
    if (e.order == order) {
      e.last_used = ++use_clock_;
      return e.manager.get();
    }
  }
  if (obdd_pool_.size() >= options_.manager_pool_capacity) {
    const auto victim = std::min_element(
        obdd_pool_.begin(), obdd_pool_.end(),
        [](const PooledObdd& a, const PooledObdd& b) {
          return a.last_used < b.last_used;
        });
    ObddManager* dying = victim->manager.get();
    plans_.EraseIf(
        [dying](const CompiledPlan& p) { return p.obdd == dying; });
    obdd_pool_.erase(victim);
    ++local_manager_evictions_;
  }
  obdd_pool_.push_back(
      {order, std::make_unique<ObddManager>(order), ++use_clock_});
  // Lend the managers the service-wide pool: cold compiles inside this
  // manager fork across its workers (exec-managed parallel regions).
  obdd_pool_.back().manager->AttachExecutor(exec_pool_);
  return obdd_pool_.back().manager.get();
}

SddManager* ShardWorker::SddFor(Vtree vtree) {
  std::string key = VtreeKeyString(vtree);
  for (PooledSdd& e : sdd_pool_) {
    if (e.vtree_key == key) {
      e.last_used = ++use_clock_;
      return e.manager.get();
    }
  }
  if (sdd_pool_.size() >= options_.manager_pool_capacity) {
    const auto victim = std::min_element(
        sdd_pool_.begin(), sdd_pool_.end(),
        [](const PooledSdd& a, const PooledSdd& b) {
          return a.last_used < b.last_used;
        });
    SddManager* dying = victim->manager.get();
    plans_.EraseIf([dying](const CompiledPlan& p) { return p.sdd == dying; });
    sdd_pool_.erase(victim);
    ++local_manager_evictions_;
  }
  sdd_pool_.push_back({std::move(key),
                       std::make_unique<SddManager>(std::move(vtree)),
                       ++use_clock_});
  sdd_pool_.back().manager->AttachExecutor(exec_pool_);
  return sdd_pool_.back().manager.get();
}

void ShardWorker::RunGcPolicy() {
  const auto enforce = [&](auto* manager) {
    if (manager->NumLiveNodes() <= options_.gc_live_node_ceiling) return;
    ++local_gc_runs_;
    local_gc_reclaimed_ += manager->GarbageCollect();
    // Pinned plans alone may hold the manager above the ceiling. The
    // per-plan pinned-node accounting targets eviction at *this*
    // manager's plans (LRU order among them): a plan's roots pin nodes
    // only in its own manager, so shedding another manager's plans can
    // never bring this one under its ceiling — the old global-LRU
    // fallback only destroyed innocent bystanders' cache hits. When the
    // over-ceiling manager has nothing left to shed, its live set is all
    // permanent (literals) or externally pinned, and the policy stops.
    const auto in_this_manager = [manager](const CompiledPlan& p) {
      return p.obdd == static_cast<const void*>(manager) ||
             p.sdd == static_cast<const void*>(manager);
    };
    while (manager->NumLiveNodes() > options_.gc_live_node_ceiling &&
           plans_.EvictOneMatching(in_this_manager)) {
      ++local_targeted_evictions_;
      ++local_gc_runs_;
      local_gc_reclaimed_ += manager->GarbageCollect();
    }
    // Return cache capacity sized up by the pre-GC workload to baseline
    // (the SDD manager repopulates its semantic cache from survivors).
    manager->ShrinkCaches();
  };
  for (PooledObdd& e : obdd_pool_) enforce(e.manager.get());
  for (PooledSdd& e : sdd_pool_) enforce(e.manager.get());
}

void ShardWorker::UpdateStats() {
  int live = 0;
  for (const PooledObdd& e : obdd_pool_) live += e.manager->NumLiveNodes();
  for (const PooledSdd& e : sdd_pool_) live += e.manager->NumLiveNodes();
  local_peak_live_ = std::max(local_peak_live_, live);
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.requests = local_requests_;
  stats_.failures = local_failures_;
  stats_.plan_hits = plans_.hits();
  stats_.plan_misses = plans_.misses();
  stats_.plan_evictions = plans_.evictions();
  stats_.targeted_evictions = local_targeted_evictions_;
  stats_.compiles = local_compiles_;
  stats_.gc_runs = local_gc_runs_;
  stats_.gc_reclaimed = local_gc_reclaimed_;
  stats_.manager_evictions = local_manager_evictions_;
  stats_.live_nodes = live;
  stats_.peak_live_nodes = local_peak_live_;
}

}  // namespace ctsdd
