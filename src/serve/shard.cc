#include "serve/shard.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "circuit/eval.h"
#include "circuit/primal_graph.h"
#include "db/lineage.h"
#include "graph/exact_treewidth.h"
#include "obdd/obdd_compile.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "sdd/sdd_compile.h"
#include "serve/signature.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace ctsdd {

namespace {

// Fault-action hooks run on the worker's own thread (HitSlow calls the
// armed action inline at the fault point), so thread-locals address
// "this worker" without any registry.
thread_local bool t_death_requested = false;
thread_local WorkBudget* t_active_budget = nullptr;

}  // namespace

void ShardWorker::RequestDeathOnCurrentThread() { t_death_requested = true; }

void ShardWorker::TripActiveBudgetOnCurrentThread(StatusCode code) {
  if (t_active_budget != nullptr) t_active_budget->Cancel(code);
}

ShardWorker::ShardWorker(int shard_id, const ServeOptions& options,
                         obs::Histogram* latency_us, obs::Histogram* gc_pause_us,
                         obs::FlightRecorder* flight, exec::TaskPool* exec_pool,
                         Quarantine* quarantine, SupervisionCounters* sup,
                         PlanStatsRegistry* plan_stats)
    : id_(shard_id),
      options_(options),
      latency_us_(latency_us),
      gc_pause_us_(gc_pause_us),
      flight_(flight),
      exec_pool_(exec_pool),
      quarantine_(quarantine),
      sup_(sup),
      plan_stats_(plan_stats),
      gc_interval_(std::max(1, options.gc_check_interval)),
      plans_(options.plan_cache_capacity,
             [this](const PlanKey&, CompiledPlan& plan) {
               // Unpin the plan's lineage: the released nodes become
               // garbage for the owning manager's next collection.
               if (plan.obdd) plan.obdd->ReleaseRootRef(plan.obdd_root);
               if (plan.sdd) plan.sdd->ReleaseRootRef(plan.sdd_root);
               // Telemetry conservation: fold the evicted plan's
               // histogram and counters into the service totals before
               // the block leaves the live table. Covers every removal
               // path — LRU pressure, GC shedding, manager eviction,
               // shard restart, cache destruction.
               if (plan_stats_ != nullptr && plan.stats != nullptr) {
                 plan_stats_->OnEviction(plan.stats);
               }
             }),
      thread_(&ShardWorker::Loop, this) {
  // Safe after the worker thread started: no job can be submitted (and
  // so no byte charged) before this constructor returns the worker.
  account_.SetGovernor(options_.mem_governor);
  plans_.SetMemAccount(&account_);
}

ShardWorker::~ShardWorker() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // The managers are bound to the (now joined) worker thread; detach so
  // the destroying thread may release the cached plans' root refs.
  for (PooledObdd& e : obdd_pool_) e.manager->DetachOwningThread();
  for (PooledSdd& e : sdd_pool_) e.manager->DetachOwningThread();
}

bool ShardWorker::Submit(const ShardJob& job, double* retry_after_ms) {
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_ && (options_.max_queue_depth == 0 ||
                       queue_.size() < options_.max_queue_depth)) {
      queue_.push_back(job);
      cv_.notify_one();
      return true;
    }
    depth = queue_.size();
  }
  // Hedge sheds are invisible to the shard's own counters: the primary
  // copy is still in flight, so nothing was lost — the supervisor
  // tracks them separately.
  if (!job.is_hedge) sheds_.fetch_add(1, std::memory_order_relaxed);
  if (retry_after_ms != nullptr) {
    // Expected drain time of the queue ahead of a retry: depth jobs at
    // the smoothed per-request service time — clamped, because a deep
    // queue times a momentarily inflated EWMA would otherwise tell a
    // well-behaved client to go away for minutes.
    const double hint = std::clamp(
        static_cast<double>(depth) *
            ewma_service_ms_.load(std::memory_order_relaxed),
        0.1, std::max(0.1, options_.retry_after_max_ms));
    *retry_after_ms = hint;
    double seen = max_retry_hint_.load(std::memory_order_relaxed);
    while (hint > seen && !max_retry_hint_.compare_exchange_weak(
                              seen, hint, std::memory_order_relaxed)) {
    }
  }
  return false;
}

ShardStats ShardWorker::stats() const {
  ShardStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  // Shed counts and retry hints are written on client threads at
  // admission; fold them in here so they show even when the worker
  // never published a snapshot.
  out.sheds = sheds_.load(std::memory_order_relaxed);
  out.max_retry_hint_ms = max_retry_hint_.load(std::memory_order_relaxed);
  // Byte accounting reads straight from the shard account's atomics —
  // always current, even mid-compile.
  out.mem_bytes = account_.bytes();
  for (int l = 0; l < kMemLayerCount; ++l) {
    out.mem_bytes_by_layer[static_cast<size_t>(l)] =
        account_.bytes(static_cast<MemLayer>(l));
  }
  return out;
}

double ShardWorker::AdaptiveHedgeMs(double floor_ms) const {
  const double ewma = ewma_service_ms_.load(std::memory_order_relaxed);
  const double var = ewma_var_ms2_.load(std::memory_order_relaxed);
  const double threshold = ewma + 2.0 * std::sqrt(std::max(var, 0.0));
  return std::clamp(threshold, floor_ms, 8.0 * floor_ms);
}

void ShardWorker::Retire(std::vector<ShardJob>* drained, ShardJob* in_flight) {
  std::lock_guard<std::mutex> lock(mu_);
  stopping_ = true;
  while (!queue_.empty()) {
    drained->push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  if (current_ != nullptr) {
    in_flight->state = current_;
    in_flight->is_hedge = current_is_hedge_;
  }
  cv_.notify_all();
}

void ShardWorker::CollectHedgeCandidates(
    std::chrono::steady_clock::time_point cutoff,
    std::vector<std::shared_ptr<JobState>>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto consider = [&](const std::shared_ptr<JobState>& state) {
    if (state == nullptr) return;
    if (state->submitted_at > cutoff) return;
    if (state->claimed.load(std::memory_order_acquire)) return;
    // One hedge per request: the exchange both tests and marks.
    if (state->hedged.exchange(true, std::memory_order_acq_rel)) return;
    out->push_back(state);
  };
  consider(current_);
  for (const ShardJob& job : queue_) consider(job.state);
}

void ShardWorker::Loop() {
  obs::SetCurrentThreadName("shard-" + std::to_string(id_));
  for (;;) {
    ShardJob job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        exited_.store(true, std::memory_order_release);
        return;  // stopping and drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      current_ = job.state;
      current_is_hedge_ = job.is_hedge;
    }
    busy_.store(true, std::memory_order_release);
    Beat();
    // Chaos sites: a hang stalls the worker here (supervisor sees busy +
    // stale progress), a death makes the thread exit abandoning the
    // in-flight job (supervisor sees an exit it did not request).
    CTSDD_FAULT_POINT_COARSE("serve.shard.hang");
    CTSDD_FAULT_POINT_COARSE("serve.shard.death");
    if (t_death_requested) {
      t_death_requested = false;
      exited_.store(true, std::memory_order_release);
      return;
    }
    Process(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_.reset();
    }
    busy_.store(false, std::memory_order_release);
    Beat();
  }
}

void ShardWorker::Process(const ShardJob& job) {
  JobState& state = *job.state;
  if (state.claimed.load(std::memory_order_acquire)) {
    // Another copy (hedge sibling or the supervisor) already answered.
    ++local_duplicate_skips_;
    UpdateStats();
    return;
  }
  CTSDD_FAULT_POINT_COARSE("serve.shard.process");
  Timer timer;
  const QueryRequest& request = state.request;
  QueryResponse response;  // local: delivered only through the claim
  response.shard = id_;

  // Start the request's flight record (completed in FinishJob on a claim
  // win; duplicate skips never record).
  pending_record_ = obs::FlightRecord{};
  pending_record_.trace_id = state.trace.trace_id;
  pending_record_.query_sig = state.key.query_sig;
  pending_record_.db_sig = state.key.db_sig;
  pending_record_.shard = id_;
  pending_record_.hedged = job.is_hedge;
  pending_record_.queue_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - state.submitted_at)
          .count();
  request_gc_ms_ = 0;
  bytes_at_request_start_ = account_.bytes();
  // Queue wait lives on the request's async track, not this thread's:
  // it started while this worker was busy with earlier requests, so an
  // 'X' event here would overlap and break per-thread span nesting.
  if (obs::TraceArmed() && state.submit_ts_us > 0 &&
      state.trace.trace_id != 0) {
    obs::TraceAsyncSince("serve", "queue.wait", state.trace.trace_id,
                         state.submit_ts_us);
  }
  obs::TraceSpan process_span("serve", "shard.process", state.trace);
  if (process_span.armed()) {
    process_span.AddArg("shard", static_cast<uint64_t>(id_));
    if (job.is_hedge) process_span.AddArg2("hedge", 1);
  }

  // Deadline respect at dequeue: a job that expired while queued fails
  // typed, without paying for a compile it can no longer use.
  if (state.has_deadline &&
      std::chrono::steady_clock::now() >= state.deadline) {
    response.status =
        Status::DeadlineExceeded("deadline expired while queued");
    FinishJob(job, response, timer.ElapsedMillis());
    return;
  }

  CompiledPlan* plan = plans_.Lookup(state.key);
  response.plan_cache_hit = plan != nullptr;
  pending_record_.cache_hit = plan != nullptr;
  if (plan != nullptr && plan->stats != nullptr) {
    plan->stats->hits.fetch_add(1, std::memory_order_relaxed);
  }
  Beat();
  if (plan == nullptr) {
    // Quarantine re-check at compile time: the signature may have been
    // quarantined after this copy was admitted (several poison requests
    // in flight at once), and a restart must not buy poison a fresh
    // compile. Parole trials skip the check — they *are* the probe.
    if (quarantine_ != nullptr && !state.is_parole_trial &&
        quarantine_->Rejects(state.key.query_sig, state.key.db_sig,
                             std::chrono::steady_clock::now())) {
      response.status = Status::ResourceExhausted(
          "query signature quarantined; retry after parole");
      FinishJob(job, response, timer.ElapsedMillis());
      return;
    }
    // Critical-tier admission tightening: a cold compile is the one
    // discretionary load a pressured process can refuse outright. Reject
    // it typed with a backoff hint (cache hits above keep serving) and
    // run the shed ladder now — the reject alone frees nothing.
    if (options_.mem_governor != nullptr &&
        options_.mem_governor->tier() == MemGovernor::Tier::kCritical) {
      ++local_mem_rejects_;
      if (flight_ != nullptr) {
        flight_->NoteAnomaly(obs::Anomaly::kMemoryDenial,
                             "shard " + std::to_string(id_) +
                                 ": critical tier rejected cold compile");
      }
      RunMemPressureLadder();
      response.status = Status::ResourceExhausted(
          "memory pressure: cold compile rejected; retry later");
      response.retry_after_ms = MemRetryHintMs();
      FinishJob(job, response, timer.ElapsedMillis());
      return;
    }
    Timer compile_timer;
    auto compiled = CompilePlan(job);
    pending_record_.compile_ms = compile_timer.ElapsedMillis();
    if (compiled.ok()) {
      plan = plans_.Insert(state.key, std::move(compiled).value());
      if (plan->stats != nullptr) {
        // Finish the descriptive fields, then publish: the registry's
        // readers only ever see a complete block.
        plan->stats->compile_us =
            static_cast<uint64_t>(pending_record_.compile_ms * 1000.0);
        plan->stats->query_sig = state.key.query_sig;
        plan->stats->db_sig = state.key.db_sig;
        plan->stats->shard = id_;
        if (plan_stats_ != nullptr) plan_stats_->Register(plan->stats);
      }
      if (quarantine_ != nullptr) {
        quarantine_->ReportSuccess(state.key.query_sig, state.key.db_sig);
      }
    } else {
      response.status = compiled.status();
      if (last_compile_mem_pressure_) {
        // The governor tripped this compile at an allocation seam: hand
        // the client a backoff hint and shed before the next request.
        response.retry_after_ms = MemRetryHintMs();
        if (flight_ != nullptr) {
          flight_->NoteAnomaly(obs::Anomaly::kMemoryDenial,
                               "shard " + std::to_string(id_) +
                                   ": governor tripped in-flight compile");
        }
        RunMemPressureLadder();
      }
    }
  }
  Beat();
  if (plan != nullptr) {
    pending_record_.route = static_cast<int>(plan->route);
    pending_record_.plan_size = plan->size;
    {
      obs::TraceSpan wmc_span("serve", "wmc", state.trace);
      Timer wmc_timer;
      response.probability = EvaluatePlan(*plan, request);
      pending_record_.wmc_ms = wmc_timer.ElapsedMillis();
      if (plan->stats != nullptr) {
        plan->stats->wmc_us.Record(
            static_cast<uint64_t>(pending_record_.wmc_ms * 1000.0));
      }
      if (wmc_span.armed()) {
        wmc_span.AddArg("plan_size", static_cast<uint64_t>(plan->size));
      }
    }
    response.lineage_gates = plan->lineage_gates;
    response.size = plan->size;
    response.width = plan->width;
    // A cached ladder plan keeps answering for the original key, so
    // repeats report degraded too.
    response.degraded = plan->route != request.route;
    pending_record_.degraded = response.degraded;
  }
  Beat();

  if (++requests_since_gc_check_ >= gc_interval_) {
    requests_since_gc_check_ = 0;
    RunGcPolicy();
  }
  FinishJob(job, response, timer.ElapsedMillis());
}

void ShardWorker::FinishJob(const ShardJob& job, QueryResponse& response,
                            double ms) {
  response.latency_ms = ms;
  Beat();
  if (!job.state->TryClaim()) {
    // The computed result is discarded; the plan (if any) stays cached,
    // so the duplicate work still warms this shard.
    ++local_duplicate_skips_;
    UpdateStats();
    return;
  }
  const bool cancelled_other =
      job.state->CancelLoserBudgets(StatusCode::kCancelled);
  if (sup_ != nullptr) {
    if (job.is_hedge) sup_->hedge_wins.fetch_add(1, std::memory_order_relaxed);
    if (cancelled_other) {
      sup_->hedge_cancels.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ++local_requests_;
  if (!response.status.ok()) {
    ++local_failures_;
    if (response.status.code() == StatusCode::kDeadlineExceeded) {
      ++local_timeouts_;
    }
  }
  latency_us_->Record(static_cast<uint64_t>(ms * 1000.0));
  if (flight_ != nullptr) {
    pending_record_.status_code = static_cast<int>(response.status.code());
    pending_record_.total_ms = ms;
    pending_record_.gc_ms = request_gc_ms_;
    pending_record_.bytes_charged =
        static_cast<int64_t>(account_.bytes()) -
        static_cast<int64_t>(bytes_at_request_start_);
    flight_->Record(pending_record_);
    // Refresh the outlier bar from the live latency distribution every
    // so often: far-above-p99 completions then dump the ring.
    if (++wins_since_outlier_refresh_ >= 64) {
      wins_since_outlier_refresh_ = 0;
      const double p99_ms = latency_us_->ValueAtPercentile(0.99) / 1000.0;
      if (p99_ms > 0) flight_->SetLatencyOutlierMs(8.0 * p99_ms);
    }
  }
  const double ewma = ewma_service_ms_.load(std::memory_order_relaxed);
  const double next_ewma = 0.8 * ewma + 0.2 * ms;
  ewma_service_ms_.store(next_ewma, std::memory_order_relaxed);
  // Squared-deviation EWMA of the same stream: the spread estimate
  // behind the adaptive hedge threshold (ewma + 2 sigma).
  const double dev = ms - next_ewma;
  const double var = ewma_var_ms2_.load(std::memory_order_relaxed);
  ewma_var_ms2_.store(0.8 * var + 0.2 * dev * dev,
                      std::memory_order_relaxed);
  // Publish counters before waking the submitter: a stats() call racing
  // the batch's return must already see this request accounted for.
  UpdateStats();
  job.state->Publish(response);
}

namespace {

// Remaining milliseconds until the job's deadline (0 = no deadline,
// which WorkBudget reads as "none"). A job whose deadline just passed
// gets an expired-but-armed budget, tripping on the first lease.
double DeadlineLeftMs(const JobState& state) {
  if (!state.has_deadline) return 0;
  const double left =
      std::chrono::duration<double, std::milli>(
          state.deadline - std::chrono::steady_clock::now())
          .count();
  return std::max(left, 1e-9);
}

PlanRoute AlternateRoute(PlanRoute route) {
  return route == PlanRoute::kObdd ? PlanRoute::kSdd : PlanRoute::kObdd;
}

}  // namespace

StatusOr<CompiledPlan> ShardWorker::CompilePlan(const ShardJob& job) {
  CTSDD_FAULT_POINT_COARSE("serve.compile");
  JobState& state = *job.state;
  const QueryRequest& request = state.request;
  const int side = job.is_hedge ? 1 : 0;
  ++local_compiles_;
  last_compile_mem_pressure_ = false;
  obs::TraceSpan compile_span("compile", "compile", state.trace);
  if (compile_span.armed()) {
    compile_span.AddArg("route", static_cast<uint64_t>(request.route));
  }
  auto lineage = BuildLineage(request.query, *request.db);
  CTSDD_RETURN_IF_ERROR(lineage.status());
  const Circuit& circuit = lineage.value();
  std::vector<int> vars = circuit.Vars();
  if (vars.empty()) {
    // Constant lineage: no diagram to build, the truth value is the plan.
    CompiledPlan plan;
    plan.route = request.route;
    plan.lineage_gates = circuit.num_gates();
    plan.is_constant = true;
    plan.constant_value = Evaluate(
        circuit, std::vector<bool>(std::max(circuit.num_vars(), 0), false));
    plan.stats = std::make_shared<PlanStats>();
    plan.stats->route = static_cast<int>(plan.route);
    plan.stats->requested_route = static_cast<int>(request.route);
    plan.stats->is_constant = true;
    plan.stats->lineage_gates = plan.lineage_gates;
    return plan;
  }

  // Width predictions for the admission-router training set (ROADMAP
  // item 4): a min-fill upper bound on the lineage circuit's treewidth,
  // plus exact treewidth/pathwidth when the circuit fits the exact
  // engines. Gated on gate count so the heuristic stays a small fixed
  // fraction of a cold compile; results are stamped onto whichever
  // ladder plan ultimately wins.
  int pred_tw = -1;
  int exact_tw = -1;
  int exact_pw = -1;
  if (options_.width_predict_max_gates > 0 &&
      circuit.num_gates() <= options_.width_predict_max_gates) {
    pred_tw = HeuristicCircuitTreewidth(circuit);
    if (circuit.num_gates() <= kMaxExactVertices) {
      auto tw = ExactCircuitTreewidth(circuit);
      if (tw.ok()) exact_tw = tw.value();
      auto pw = ExactPathwidth(PrimalGraph(circuit));
      if (pw.ok()) exact_pw = pw.value();
    }
  }
  const auto stamp = [&](StatusOr<CompiledPlan>& result, int hops) {
    if (!result.ok() || result.value().stats == nullptr) return;
    PlanStats& s = *result.value().stats;
    s.ladder_hops = hops;
    s.predicted_treewidth = pred_tw;
    s.exact_treewidth = exact_tw;
    s.exact_pathwidth = exact_pw;
  };

  if (options_.compile_node_budget == 0 && !state.has_deadline &&
      sup_ == nullptr && options_.mem_governor == nullptr) {
    // Unbudgeted fast path: no budget attached, no abort branches taken.
    // Under supervision the budgeted path runs even with unlimited
    // limits — its lease pulse is what keeps a long compile's heartbeat
    // alive (and gives the supervisor a cancel handle on restart).
    auto fast = CompileRoute(request, request.route, circuit, std::move(vars),
                             nullptr);
    stamp(fast, 1);
    return fast;
  }

  WorkBudget primary(options_.compile_node_budget, DeadlineLeftMs(state));
  primary.BindPulse(&progress_);
  if (obs::TraceArmed()) primary.SetTraceContext(obs::CurrentContext());
  state.RegisterBudget(side, &primary);
  t_active_budget = &primary;
  auto first = CompileRoute(request, request.route, circuit, vars, &primary);
  t_active_budget = nullptr;
  state.RegisterBudget(side, nullptr);
  if (first.ok() || primary.reason() != StatusCode::kResourceExhausted ||
      primary.memory_pressure()) {
    // Success, a non-budget failure (e.g. bad vtree), or a deadline/
    // cancel trip — the ladder only retries node-budget exhaustion
    // (more time cannot be bought, but a different representation can
    // be smaller). A memory-pressure trip also returns directly: the
    // alternate route would hit the same process-wide ceiling, so the
    // caller sheds and backs the client off instead.
    if (!first.ok() && primary.memory_pressure()) {
      ++local_mem_aborts_;
      last_compile_mem_pressure_ = true;
    }
    stamp(first, 1);
    return first;
  }
  ++local_budget_aborts_;
  ++local_fallbacks_;
  WorkBudget fallback(options_.compile_node_budget, DeadlineLeftMs(state));
  fallback.BindPulse(&progress_);
  if (obs::TraceArmed()) fallback.SetTraceContext(obs::CurrentContext());
  state.RegisterBudget(side, &fallback);
  t_active_budget = &fallback;
  auto second = CompileRoute(request, AlternateRoute(request.route), circuit,
                             std::move(vars), &fallback);
  t_active_budget = nullptr;
  state.RegisterBudget(side, nullptr);
  stamp(second, 2);
  if (second.ok()) return second;
  if (fallback.reason() == StatusCode::kResourceExhausted) {
    if (fallback.memory_pressure()) {
      // The fallback died at the memory ceiling, not on its node budget:
      // a process-state problem, not a poison signature — no strike.
      ++local_mem_aborts_;
      last_compile_mem_pressure_ = true;
      return second;
    }
    ++local_budget_aborts_;
    // Both ladder routes exhausted their budgets: this signature is
    // poison for the current budget — strike it so repeats stop burning
    // full ladder compiles.
    if (quarantine_ != nullptr) {
      quarantine_->ReportExhausted(state.key.query_sig, state.key.db_sig,
                                   std::chrono::steady_clock::now());
      if (flight_ != nullptr) {
        flight_->NoteAnomaly(obs::Anomaly::kQuarantineStrike,
                             "shard " + std::to_string(id_) +
                                 ": double-route budget exhaustion");
      }
    }
  }
  return second;
}

StatusOr<CompiledPlan> ShardWorker::CompileRoute(const QueryRequest& request,
                                                 PlanRoute route,
                                                 const Circuit& circuit,
                                                 std::vector<int> vars,
                                                 WorkBudget* budget) {
  CTSDD_FAULT_POINT_COARSE("serve.compile.route");
  CompiledPlan plan;
  plan.route = route;
  plan.lineage_gates = circuit.num_gates();
  plan.vars = std::move(vars);
  plan.stats = std::make_shared<PlanStats>();
  plan.stats->route = static_cast<int>(route);
  plan.stats->requested_route = static_cast<int>(request.route);
  plan.stats->lineage_gates = plan.lineage_gates;
  plan.stats->num_vars = static_cast<int>(plan.vars.size());
  MemGovernor* gov = options_.mem_governor;
  if (route == PlanRoute::kObdd) {
    ObddManager* manager = ObddFor(plan.vars);
    const MemAccount* acct = manager->mem_account();
    const uint64_t bytes_before = acct != nullptr ? acct->bytes() : 0;
    if (budget != nullptr) manager->AttachBudget(budget);
    // Register with the governor while the compile is in flight: when
    // another shard drives the process to the hard ceiling, the governor
    // cancels the largest registered compile by account bytes.
    if (gov != nullptr && budget != nullptr) {
      gov->RegisterCompile(budget, manager->mem_account());
    }
    const auto root = CompileCircuitToObdd(manager, circuit);
    if (gov != nullptr && budget != nullptr) gov->UnregisterCompile(budget);
    if (budget != nullptr) manager->DetachBudget();
    if (root < 0) {
      // Reclaim the aborted compile's partial nodes now instead of
      // letting them ride until the next policy check.
      TimedGc(manager);
      return budget->status();
    }
    plan.obdd = manager;
    plan.obdd_root = root;
    manager->AddRootRef(root);
    plan.size = manager->Size(root);
    plan.width = manager->Width(root);
    plan.pinned_nodes = plan.size;
    plan.stats->nodes = static_cast<uint64_t>(plan.size);
    plan.stats->edges = 2 * static_cast<uint64_t>(plan.size);
    plan.stats->width = static_cast<uint64_t>(plan.width);
    plan.stats->pinned_nodes = static_cast<uint64_t>(plan.pinned_nodes);
    const uint64_t bytes_after = acct != nullptr ? acct->bytes() : 0;
    plan.stats->pinned_bytes =
        bytes_after > bytes_before ? bytes_after - bytes_before : 0;
  } else {
    auto vtree = VtreeForStrategy(circuit, plan.vars, request.strategy);
    CTSDD_RETURN_IF_ERROR(vtree.status());
    SddManager* manager = SddFor(std::move(vtree).value());
    const MemAccount* acct = manager->mem_account();
    const uint64_t bytes_before = acct != nullptr ? acct->bytes() : 0;
    if (budget != nullptr) manager->AttachBudget(budget);
    if (gov != nullptr && budget != nullptr) {
      gov->RegisterCompile(budget, manager->mem_account());
    }
    const auto root = CompileCircuitToSdd(manager, circuit);
    if (gov != nullptr && budget != nullptr) gov->UnregisterCompile(budget);
    if (budget != nullptr) manager->DetachBudget();
    if (root < 0) {
      TimedGc(manager);
      return budget->status();
    }
    plan.sdd = manager;
    plan.sdd_root = root;
    manager->AddRootRef(root);
    const SddStats stats = ComputeSddStats(*manager, root);
    plan.size = stats.size;
    plan.width = stats.width;
    plan.pinned_nodes = stats.decisions;
    plan.stats->nodes = static_cast<uint64_t>(stats.size);
    plan.stats->edges = 2 * static_cast<uint64_t>(stats.size);
    plan.stats->width = static_cast<uint64_t>(stats.width);
    plan.stats->pinned_nodes = static_cast<uint64_t>(stats.decisions);
    const uint64_t bytes_after = acct != nullptr ? acct->bytes() : 0;
    plan.stats->pinned_bytes =
        bytes_after > bytes_before ? bytes_after - bytes_before : 0;
  }
  return plan;
}

double ShardWorker::EvaluatePlan(const CompiledPlan& plan,
                                 const QueryRequest& request) {
  if (plan.is_constant) return plan.constant_value ? 1.0 : 0.0;
  const auto weight = [&](int tuple) {
    return static_cast<size_t>(tuple) < request.weights.size()
               ? request.weights[tuple]
               : request.db->TupleProb(tuple);
  };
  if (plan.route == PlanRoute::kObdd) {
    std::vector<double> prob_by_level(plan.vars.size());
    for (size_t i = 0; i < plan.vars.size(); ++i) {
      prob_by_level[i] = weight(plan.vars[i]);
    }
    return plan.obdd->WeightedModelCount(plan.obdd_root, prob_by_level);
  }
  std::map<int, double> probs;
  for (const int v : plan.vars) probs[v] = weight(v);
  return plan.sdd->WeightedModelCount(plan.sdd_root, probs);
}

ObddManager* ShardWorker::ObddFor(const std::vector<int>& order) {
  for (PooledObdd& e : obdd_pool_) {
    if (e.order == order) {
      e.last_used = ++use_clock_;
      return e.manager.get();
    }
  }
  if (obdd_pool_.size() >= options_.manager_pool_capacity) {
    const auto victim = std::min_element(
        obdd_pool_.begin(), obdd_pool_.end(),
        [](const PooledObdd& a, const PooledObdd& b) {
          return a.last_used < b.last_used;
        });
    ObddManager* dying = victim->manager.get();
    plans_.EraseIf(
        [dying](const CompiledPlan& p) { return p.obdd == dying; });
    obdd_pool_.erase(victim);
    ++local_manager_evictions_;
  }
  obdd_pool_.push_back({order, std::make_unique<MemAccount>(&account_),
                        std::make_unique<ObddManager>(order), ++use_clock_});
  // Lend the managers the service-wide pool: cold compiles inside this
  // manager fork across its workers (exec-managed parallel regions).
  obdd_pool_.back().manager->AttachExecutor(exec_pool_);
  obdd_pool_.back().manager->AttachMemAccount(obdd_pool_.back().account.get());
  return obdd_pool_.back().manager.get();
}

SddManager* ShardWorker::SddFor(Vtree vtree) {
  std::string key = VtreeKeyString(vtree);
  for (PooledSdd& e : sdd_pool_) {
    if (e.vtree_key == key) {
      e.last_used = ++use_clock_;
      return e.manager.get();
    }
  }
  if (sdd_pool_.size() >= options_.manager_pool_capacity) {
    const auto victim = std::min_element(
        sdd_pool_.begin(), sdd_pool_.end(),
        [](const PooledSdd& a, const PooledSdd& b) {
          return a.last_used < b.last_used;
        });
    SddManager* dying = victim->manager.get();
    plans_.EraseIf([dying](const CompiledPlan& p) { return p.sdd == dying; });
    sdd_pool_.erase(victim);
    ++local_manager_evictions_;
  }
  sdd_pool_.push_back({std::move(key), std::make_unique<MemAccount>(&account_),
                       std::make_unique<SddManager>(std::move(vtree)),
                       ++use_clock_});
  sdd_pool_.back().manager->AttachExecutor(exec_pool_);
  sdd_pool_.back().manager->AttachMemAccount(sdd_pool_.back().account.get());
  return sdd_pool_.back().manager.get();
}

template <typename Manager>
size_t ShardWorker::TimedGc(Manager* manager) {
  Timer timer;
  const size_t reclaimed = manager->GarbageCollect();
  const double ms = timer.ElapsedMillis();
  gc_pause_us_->Record(static_cast<uint64_t>(ms * 1000.0));
  request_gc_ms_ += ms;
  ++local_gc_runs_;
  local_gc_reclaimed_ += reclaimed;
  return reclaimed;
}

double ShardWorker::MemRetryHintMs() const {
  // A few service times of backoff: enough for the ladder run the caller
  // just triggered to take effect before the client retries.
  return std::clamp(4.0 * ewma_service_ms_.load(std::memory_order_relaxed),
                    0.1, std::max(0.1, options_.retry_after_max_ms));
}

bool ShardWorker::EvictLruManager() {
  const auto obdd_it =
      std::min_element(obdd_pool_.begin(), obdd_pool_.end(),
                       [](const PooledObdd& a, const PooledObdd& b) {
                         return a.last_used < b.last_used;
                       });
  const auto sdd_it =
      std::min_element(sdd_pool_.begin(), sdd_pool_.end(),
                       [](const PooledSdd& a, const PooledSdd& b) {
                         return a.last_used < b.last_used;
                       });
  const bool have_obdd = obdd_it != obdd_pool_.end();
  const bool have_sdd = sdd_it != sdd_pool_.end();
  if (!have_obdd && !have_sdd) return false;
  if (have_obdd && (!have_sdd || obdd_it->last_used <= sdd_it->last_used)) {
    ObddManager* dying = obdd_it->manager.get();
    plans_.EraseIf([dying](const CompiledPlan& p) { return p.obdd == dying; });
    obdd_pool_.erase(obdd_it);
  } else {
    SddManager* dying = sdd_it->manager.get();
    plans_.EraseIf([dying](const CompiledPlan& p) { return p.sdd == dying; });
    sdd_pool_.erase(sdd_it);
  }
  ++local_manager_evictions_;
  return true;
}

void ShardWorker::RunMemPressureLadder() {
  MemGovernor* gov = options_.mem_governor;
  if (gov == nullptr || gov->tier() == MemGovernor::Tier::kNone) return;
  // Soft tier: give back everything that regrows on demand — collect
  // garbage and shrink the computed caches in every pooled manager.
  for (PooledObdd& e : obdd_pool_) {
    TimedGc(e.manager.get());
    e.manager->ShrinkCaches();
  }
  for (PooledSdd& e : sdd_pool_) {
    TimedGc(e.manager.get());
    e.manager->ShrinkCaches();
  }
  // Critical tier: shed state — unpinned (LRU) plans in batches, each
  // batch followed by a collection so the released roots turn into
  // bytes; then whole managers. Destroying a manager is the only step
  // that returns node-store and arena chunks to the allocator.
  while (gov->tier() == MemGovernor::Tier::kCritical) {
    int evicted = 0;
    while (evicted < 8 && plans_.EvictOne()) ++evicted;
    if (evicted > 0) {
      local_pressure_evictions_ += static_cast<uint64_t>(evicted);
      for (PooledObdd& e : obdd_pool_) TimedGc(e.manager.get());
      for (PooledSdd& e : sdd_pool_) TimedGc(e.manager.get());
      continue;
    }
    if (!EvictLruManager()) break;  // nothing left to shed on this shard
    ++local_pressure_evictions_;
  }
}

void ShardWorker::RunGcPolicy() {
  RunMemPressureLadder();
  size_t reclaimed_this_check = 0;
  bool saw_pressure = false;
  const auto enforce = [&](auto* manager) {
    if (manager->NumLiveNodes() <= options_.gc_live_node_ceiling) return;
    saw_pressure = true;
    reclaimed_this_check += TimedGc(manager);
    // Pinned plans alone may hold the manager above the ceiling. The
    // per-plan pinned-node accounting targets eviction at *this*
    // manager's plans (LRU order among them): a plan's roots pin nodes
    // only in its own manager, so shedding another manager's plans can
    // never bring this one under its ceiling — the old global-LRU
    // fallback only destroyed innocent bystanders' cache hits. When the
    // over-ceiling manager has nothing left to shed, its live set is all
    // permanent (literals) or externally pinned, and the policy stops.
    const auto in_this_manager = [manager](const CompiledPlan& p) {
      return p.obdd == static_cast<const void*>(manager) ||
             p.sdd == static_cast<const void*>(manager);
    };
    while (manager->NumLiveNodes() > options_.gc_live_node_ceiling &&
           plans_.EvictOneMatching(in_this_manager)) {
      ++local_targeted_evictions_;
      reclaimed_this_check += TimedGc(manager);
    }
    // Return cache capacity sized up by the pre-GC workload to baseline
    // (the SDD manager repopulates its semantic cache from survivors).
    manager->ShrinkCaches();
  };
  for (PooledObdd& e : obdd_pool_) enforce(e.manager.get());
  for (PooledSdd& e : sdd_pool_) enforce(e.manager.get());
  // Reclaim-rate feedback: when a check finds pressure (a manager over
  // its ceiling, or nodes actually reclaimed) check again sooner; when
  // it finds nothing, back off — up to 8x the configured cadence.
  if (saw_pressure || reclaimed_this_check > 0) {
    gc_interval_ = std::max(1, gc_interval_ / 2);
  } else {
    gc_interval_ = std::min(gc_interval_ * 2,
                            8 * std::max(1, options_.gc_check_interval));
  }
}

void ShardWorker::UpdateStats() {
  int live = 0;
  for (const PooledObdd& e : obdd_pool_) live += e.manager->NumLiveNodes();
  for (const PooledSdd& e : sdd_pool_) live += e.manager->NumLiveNodes();
  local_peak_live_ = std::max(local_peak_live_, live);
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.requests = local_requests_;
  stats_.failures = local_failures_;
  stats_.timeouts = local_timeouts_;
  stats_.fallbacks = local_fallbacks_;
  stats_.budget_aborts = local_budget_aborts_;
  stats_.duplicate_skips = local_duplicate_skips_;
  stats_.plan_hits = plans_.hits();
  stats_.plan_misses = plans_.misses();
  stats_.plan_evictions = plans_.evictions();
  stats_.targeted_evictions = local_targeted_evictions_;
  stats_.compiles = local_compiles_;
  stats_.gc_runs = local_gc_runs_;
  stats_.gc_reclaimed = local_gc_reclaimed_;
  stats_.manager_evictions = local_manager_evictions_;
  stats_.mem_rejects = local_mem_rejects_;
  stats_.mem_aborts = local_mem_aborts_;
  stats_.pressure_evictions = local_pressure_evictions_;
  stats_.live_nodes = live;
  stats_.peak_live_nodes = local_peak_live_;
  stats_.plan_cache_size = plans_.size();
}

}  // namespace ctsdd
