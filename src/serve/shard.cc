#include "serve/shard.h"

#include <algorithm>
#include <map>
#include <utility>

#include "circuit/eval.h"
#include "db/lineage.h"
#include "obdd/obdd_compile.h"
#include "sdd/sdd_compile.h"
#include "serve/signature.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace ctsdd {

ShardWorker::ShardWorker(int shard_id, const ServeOptions& options,
                         LatencyRecorder* latency, LatencyRecorder* gc_latency,
                         exec::TaskPool* exec_pool)
    : id_(shard_id),
      options_(options),
      latency_(latency),
      gc_latency_(gc_latency),
      exec_pool_(exec_pool),
      gc_interval_(std::max(1, options.gc_check_interval)),
      plans_(options.plan_cache_capacity,
             [](const PlanKey&, CompiledPlan& plan) {
               // Unpin the plan's lineage: the released nodes become
               // garbage for the owning manager's next collection.
               if (plan.obdd) plan.obdd->ReleaseRootRef(plan.obdd_root);
               if (plan.sdd) plan.sdd->ReleaseRootRef(plan.sdd_root);
             }),
      thread_(&ShardWorker::Loop, this) {}

ShardWorker::~ShardWorker() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // The managers are bound to the (now joined) worker thread; detach so
  // the destroying thread may release the cached plans' root refs.
  for (PooledObdd& e : obdd_pool_) e.manager->DetachOwningThread();
  for (PooledSdd& e : sdd_pool_) e.manager->DetachOwningThread();
}

bool ShardWorker::Submit(const ShardJob& job, double* retry_after_ms) {
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.max_queue_depth == 0 ||
        queue_.size() < options_.max_queue_depth) {
      queue_.push_back(job);
      cv_.notify_one();
      return true;
    }
    depth = queue_.size();
  }
  sheds_.fetch_add(1, std::memory_order_relaxed);
  if (retry_after_ms != nullptr) {
    // Expected drain time of the queue ahead of a retry: depth jobs at
    // the smoothed per-request service time.
    *retry_after_ms = static_cast<double>(depth) *
                      ewma_service_ms_.load(std::memory_order_relaxed);
  }
  return false;
}

ShardStats ShardWorker::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ShardStats out = stats_;
  // Sheds are counted on client threads at admission; fold them in here
  // so they show even when the worker never published a snapshot.
  out.sheds = sheds_.load(std::memory_order_relaxed);
  return out;
}

void ShardWorker::Loop() {
  for (;;) {
    ShardJob job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      job = queue_.front();
      queue_.pop_front();
    }
    Process(job);
  }
}

void ShardWorker::Process(const ShardJob& job) {
  CTSDD_FAULT_POINT("serve.shard.process");
  Timer timer;
  const QueryRequest& request = *job.request;
  QueryResponse& response = *job.response;
  response.shard = id_;

  // Deadline respect at dequeue: a job that expired while queued fails
  // typed, without paying for a compile it can no longer use.
  if (job.has_deadline && std::chrono::steady_clock::now() >= job.deadline) {
    response.status =
        Status::DeadlineExceeded("deadline expired while queued");
    ++local_requests_;
    ++local_failures_;
    ++local_timeouts_;
    response.latency_ms = timer.ElapsedMillis();
    latency_->Record(response.latency_ms);
    UpdateStats();
    std::lock_guard<std::mutex> lock(*job.done_mu);
    if (job.remaining->fetch_sub(1) == 1) job.done_cv->notify_all();
    return;
  }

  CompiledPlan* plan = plans_.Lookup(job.key);
  response.plan_cache_hit = plan != nullptr;
  if (plan == nullptr) {
    auto compiled = CompilePlan(request, job);
    if (compiled.ok()) {
      plan = plans_.Insert(job.key, std::move(compiled).value());
    } else {
      response.status = compiled.status();
      if (response.status.code() == StatusCode::kDeadlineExceeded) {
        ++local_timeouts_;
      }
    }
  }
  if (plan != nullptr) {
    response.probability = EvaluatePlan(*plan, request);
    response.lineage_gates = plan->lineage_gates;
    response.size = plan->size;
    response.width = plan->width;
    // A cached ladder plan keeps answering for the original key, so
    // repeats report degraded too.
    response.degraded = plan->route != request.route;
  }

  ++local_requests_;
  if (plan == nullptr) ++local_failures_;
  if (++requests_since_gc_check_ >= gc_interval_) {
    requests_since_gc_check_ = 0;
    RunGcPolicy();
  }
  response.latency_ms = timer.ElapsedMillis();
  latency_->Record(response.latency_ms);
  const double ewma = ewma_service_ms_.load(std::memory_order_relaxed);
  ewma_service_ms_.store(0.8 * ewma + 0.2 * response.latency_ms,
                         std::memory_order_relaxed);
  UpdateStats();

  {
    // Decrement and notify inside the critical section: the submitter's
    // wait predicate can then only observe zero after acquiring the
    // mutex this thread holds, so it cannot wake, return, and destroy
    // the mutex/condvar while this thread still touches them.
    std::lock_guard<std::mutex> lock(*job.done_mu);
    if (job.remaining->fetch_sub(1) == 1) job.done_cv->notify_all();
  }
}

namespace {

// Remaining milliseconds until the job's deadline (0 = no deadline,
// which WorkBudget reads as "none"). A job whose deadline just passed
// gets an expired-but-armed budget, tripping on the first lease.
double DeadlineLeftMs(const ShardJob& job) {
  if (!job.has_deadline) return 0;
  const double left =
      std::chrono::duration<double, std::milli>(
          job.deadline - std::chrono::steady_clock::now())
          .count();
  return std::max(left, 1e-9);
}

PlanRoute AlternateRoute(PlanRoute route) {
  return route == PlanRoute::kObdd ? PlanRoute::kSdd : PlanRoute::kObdd;
}

}  // namespace

StatusOr<CompiledPlan> ShardWorker::CompilePlan(const QueryRequest& request,
                                                const ShardJob& job) {
  CTSDD_FAULT_POINT("serve.compile");
  ++local_compiles_;
  auto lineage = BuildLineage(request.query, *request.db);
  CTSDD_RETURN_IF_ERROR(lineage.status());
  const Circuit& circuit = lineage.value();
  std::vector<int> vars = circuit.Vars();
  if (vars.empty()) {
    // Constant lineage: no diagram to build, the truth value is the plan.
    CompiledPlan plan;
    plan.route = request.route;
    plan.lineage_gates = circuit.num_gates();
    plan.is_constant = true;
    plan.constant_value = Evaluate(
        circuit, std::vector<bool>(std::max(circuit.num_vars(), 0), false));
    return plan;
  }

  if (options_.compile_node_budget == 0 && !job.has_deadline) {
    // Unbudgeted fast path: no budget attached, no abort branches taken.
    return CompileRoute(request, request.route, circuit, std::move(vars),
                        nullptr);
  }

  WorkBudget primary(options_.compile_node_budget, DeadlineLeftMs(job));
  auto first = CompileRoute(request, request.route, circuit, vars, &primary);
  if (first.ok() || primary.reason() != StatusCode::kResourceExhausted) {
    // Success, a non-budget failure (e.g. bad vtree), or a deadline/
    // cancel trip — the ladder only retries node-budget exhaustion
    // (more time cannot be bought, but a different representation can
    // be smaller).
    return first;
  }
  ++local_budget_aborts_;
  ++local_fallbacks_;
  WorkBudget fallback(options_.compile_node_budget, DeadlineLeftMs(job));
  auto second = CompileRoute(request, AlternateRoute(request.route), circuit,
                             std::move(vars), &fallback);
  if (second.ok()) return second;
  if (fallback.reason() == StatusCode::kResourceExhausted) {
    ++local_budget_aborts_;
  }
  return second;
}

StatusOr<CompiledPlan> ShardWorker::CompileRoute(const QueryRequest& request,
                                                 PlanRoute route,
                                                 const Circuit& circuit,
                                                 std::vector<int> vars,
                                                 WorkBudget* budget) {
  CompiledPlan plan;
  plan.route = route;
  plan.lineage_gates = circuit.num_gates();
  plan.vars = std::move(vars);
  if (route == PlanRoute::kObdd) {
    ObddManager* manager = ObddFor(plan.vars);
    if (budget != nullptr) manager->AttachBudget(budget);
    const auto root = CompileCircuitToObdd(manager, circuit);
    if (budget != nullptr) manager->DetachBudget();
    if (root < 0) {
      // Reclaim the aborted compile's partial nodes now instead of
      // letting them ride until the next policy check.
      TimedGc(manager);
      return budget->status();
    }
    plan.obdd = manager;
    plan.obdd_root = root;
    manager->AddRootRef(root);
    plan.size = manager->Size(root);
    plan.width = manager->Width(root);
    plan.pinned_nodes = plan.size;
  } else {
    auto vtree = VtreeForStrategy(circuit, plan.vars, request.strategy);
    CTSDD_RETURN_IF_ERROR(vtree.status());
    SddManager* manager = SddFor(std::move(vtree).value());
    if (budget != nullptr) manager->AttachBudget(budget);
    const auto root = CompileCircuitToSdd(manager, circuit);
    if (budget != nullptr) manager->DetachBudget();
    if (root < 0) {
      TimedGc(manager);
      return budget->status();
    }
    plan.sdd = manager;
    plan.sdd_root = root;
    manager->AddRootRef(root);
    const SddStats stats = ComputeSddStats(*manager, root);
    plan.size = stats.size;
    plan.width = stats.width;
    plan.pinned_nodes = stats.decisions;
  }
  return plan;
}

double ShardWorker::EvaluatePlan(const CompiledPlan& plan,
                                 const QueryRequest& request) {
  if (plan.is_constant) return plan.constant_value ? 1.0 : 0.0;
  const auto weight = [&](int tuple) {
    return static_cast<size_t>(tuple) < request.weights.size()
               ? request.weights[tuple]
               : request.db->TupleProb(tuple);
  };
  if (plan.route == PlanRoute::kObdd) {
    std::vector<double> prob_by_level(plan.vars.size());
    for (size_t i = 0; i < plan.vars.size(); ++i) {
      prob_by_level[i] = weight(plan.vars[i]);
    }
    return plan.obdd->WeightedModelCount(plan.obdd_root, prob_by_level);
  }
  std::map<int, double> probs;
  for (const int v : plan.vars) probs[v] = weight(v);
  return plan.sdd->WeightedModelCount(plan.sdd_root, probs);
}

ObddManager* ShardWorker::ObddFor(const std::vector<int>& order) {
  for (PooledObdd& e : obdd_pool_) {
    if (e.order == order) {
      e.last_used = ++use_clock_;
      return e.manager.get();
    }
  }
  if (obdd_pool_.size() >= options_.manager_pool_capacity) {
    const auto victim = std::min_element(
        obdd_pool_.begin(), obdd_pool_.end(),
        [](const PooledObdd& a, const PooledObdd& b) {
          return a.last_used < b.last_used;
        });
    ObddManager* dying = victim->manager.get();
    plans_.EraseIf(
        [dying](const CompiledPlan& p) { return p.obdd == dying; });
    obdd_pool_.erase(victim);
    ++local_manager_evictions_;
  }
  obdd_pool_.push_back(
      {order, std::make_unique<ObddManager>(order), ++use_clock_});
  // Lend the managers the service-wide pool: cold compiles inside this
  // manager fork across its workers (exec-managed parallel regions).
  obdd_pool_.back().manager->AttachExecutor(exec_pool_);
  return obdd_pool_.back().manager.get();
}

SddManager* ShardWorker::SddFor(Vtree vtree) {
  std::string key = VtreeKeyString(vtree);
  for (PooledSdd& e : sdd_pool_) {
    if (e.vtree_key == key) {
      e.last_used = ++use_clock_;
      return e.manager.get();
    }
  }
  if (sdd_pool_.size() >= options_.manager_pool_capacity) {
    const auto victim = std::min_element(
        sdd_pool_.begin(), sdd_pool_.end(),
        [](const PooledSdd& a, const PooledSdd& b) {
          return a.last_used < b.last_used;
        });
    SddManager* dying = victim->manager.get();
    plans_.EraseIf([dying](const CompiledPlan& p) { return p.sdd == dying; });
    sdd_pool_.erase(victim);
    ++local_manager_evictions_;
  }
  sdd_pool_.push_back({std::move(key),
                       std::make_unique<SddManager>(std::move(vtree)),
                       ++use_clock_});
  sdd_pool_.back().manager->AttachExecutor(exec_pool_);
  return sdd_pool_.back().manager.get();
}

template <typename Manager>
size_t ShardWorker::TimedGc(Manager* manager) {
  Timer timer;
  const size_t reclaimed = manager->GarbageCollect();
  gc_latency_->Record(timer.ElapsedMillis());
  ++local_gc_runs_;
  local_gc_reclaimed_ += reclaimed;
  return reclaimed;
}

void ShardWorker::RunGcPolicy() {
  size_t reclaimed_this_check = 0;
  bool saw_pressure = false;
  const auto enforce = [&](auto* manager) {
    if (manager->NumLiveNodes() <= options_.gc_live_node_ceiling) return;
    saw_pressure = true;
    reclaimed_this_check += TimedGc(manager);
    // Pinned plans alone may hold the manager above the ceiling. The
    // per-plan pinned-node accounting targets eviction at *this*
    // manager's plans (LRU order among them): a plan's roots pin nodes
    // only in its own manager, so shedding another manager's plans can
    // never bring this one under its ceiling — the old global-LRU
    // fallback only destroyed innocent bystanders' cache hits. When the
    // over-ceiling manager has nothing left to shed, its live set is all
    // permanent (literals) or externally pinned, and the policy stops.
    const auto in_this_manager = [manager](const CompiledPlan& p) {
      return p.obdd == static_cast<const void*>(manager) ||
             p.sdd == static_cast<const void*>(manager);
    };
    while (manager->NumLiveNodes() > options_.gc_live_node_ceiling &&
           plans_.EvictOneMatching(in_this_manager)) {
      ++local_targeted_evictions_;
      reclaimed_this_check += TimedGc(manager);
    }
    // Return cache capacity sized up by the pre-GC workload to baseline
    // (the SDD manager repopulates its semantic cache from survivors).
    manager->ShrinkCaches();
  };
  for (PooledObdd& e : obdd_pool_) enforce(e.manager.get());
  for (PooledSdd& e : sdd_pool_) enforce(e.manager.get());
  // Reclaim-rate feedback: when a check finds pressure (a manager over
  // its ceiling, or nodes actually reclaimed) check again sooner; when
  // it finds nothing, back off — up to 8x the configured cadence.
  if (saw_pressure || reclaimed_this_check > 0) {
    gc_interval_ = std::max(1, gc_interval_ / 2);
  } else {
    gc_interval_ = std::min(gc_interval_ * 2,
                            8 * std::max(1, options_.gc_check_interval));
  }
}

void ShardWorker::UpdateStats() {
  int live = 0;
  for (const PooledObdd& e : obdd_pool_) live += e.manager->NumLiveNodes();
  for (const PooledSdd& e : sdd_pool_) live += e.manager->NumLiveNodes();
  local_peak_live_ = std::max(local_peak_live_, live);
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.requests = local_requests_;
  stats_.failures = local_failures_;
  stats_.timeouts = local_timeouts_;
  stats_.fallbacks = local_fallbacks_;
  stats_.budget_aborts = local_budget_aborts_;
  stats_.plan_hits = plans_.hits();
  stats_.plan_misses = plans_.misses();
  stats_.plan_evictions = plans_.evictions();
  stats_.targeted_evictions = local_targeted_evictions_;
  stats_.compiles = local_compiles_;
  stats_.gc_runs = local_gc_runs_;
  stats_.gc_reclaimed = local_gc_reclaimed_;
  stats_.manager_evictions = local_manager_evictions_;
  stats_.live_nodes = live;
  stats_.peak_live_nodes = local_peak_live_;
}

}  // namespace ctsdd
