// Bounded LRU cache of compiled query plans.
//
// A plan is the reusable product of one (query, database, strategy)
// compilation: the rooted OBDD or SDD lineage inside a pooled manager,
// pinned against garbage collection via the manager's external-root
// refs, plus the variable list that turns request weights into a
// weighted model count. Repeats — including weight-varied repeats —
// skip recompilation entirely and pay only the WMC pass.
//
// The cache is single-threaded (each shard owns one; see serve/shard.h)
// and capacity-bounded with LRU eviction. Eviction runs the owner's
// callback so the plan's root refs are released before the entry is
// destroyed — that is what turns an evicted plan's nodes into garbage
// the next collection can reclaim.

#ifndef CTSDD_SERVE_PLAN_CACHE_H_
#define CTSDD_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <iterator>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/query_compile.h"
#include "obdd/obdd.h"
#include "sdd/sdd.h"
#include "serve/plan_stats.h"
#include "util/hashing.h"
#include "util/mem_governor.h"

namespace ctsdd {

// Which decision-diagram route a plan was compiled through.
enum class PlanRoute : uint8_t { kObdd, kSdd };

struct PlanKey {
  uint64_t query_sig = 0;
  uint64_t db_sig = 0;
  VtreeStrategy strategy = VtreeStrategy::kBalanced;
  PlanRoute route = PlanRoute::kSdd;
  bool operator==(const PlanKey&) const = default;
};

struct PlanKeyHash {
  size_t operator()(const PlanKey& k) const {
    return static_cast<size_t>(
        Hash3(k.query_sig, k.db_sig,
              (static_cast<uint64_t>(k.strategy) << 8) |
                  static_cast<uint64_t>(k.route)));
  }
};

struct CompiledPlan {
  PlanRoute route = PlanRoute::kSdd;
  // Exactly one manager pointer is set for non-constant lineages; the
  // pointed-to manager is owned by the shard's pool and outlives the
  // plan (plan eviction precedes manager eviction).
  ObddManager* obdd = nullptr;
  ObddManager::NodeId obdd_root = 0;
  SddManager* sdd = nullptr;
  SddManager::NodeId sdd_root = 0;
  // Sorted lineage variables (tuple ids); doubles as the OBDD order.
  std::vector<int> vars;
  // Constant lineage (no variables): the fixed truth value.
  bool is_constant = false;
  bool constant_value = false;
  // Compile-time statistics carried into responses.
  int lineage_gates = 0;
  int size = 0;
  int width = 0;
  // Nodes this plan pins in its manager while cached (reachable internal
  // OBDD nodes / SDD decision nodes from the pinned root). The GC policy
  // uses it to target eviction at the manager actually over its
  // resident-node ceiling instead of shedding in global LRU order.
  int pinned_nodes = 0;
  // Per-plan telemetry, shared with the PlanStatsRegistry live table so
  // the debug server reads it without touching this (single-threaded)
  // cache. Null only for plans built before telemetry wiring (tests).
  std::shared_ptr<PlanStats> stats;
};

class PlanCache {
 public:
  // `on_evict` runs for every entry leaving the cache (LRU pressure,
  // EvictOne, EraseIf) — the owner releases the plan's root refs there.
  using EvictFn = std::function<void(const PlanKey&, CompiledPlan&)>;

  // Capacity 0 is clamped to 1: Insert must return a resident plan for
  // the request being served, so "cache nothing" still holds the newest
  // entry (and silently-unbounded would defeat the subsystem).
  PlanCache(size_t capacity, EvictFn on_evict)
      : capacity_(capacity == 0 ? 1 : capacity),
        on_evict_(std::move(on_evict)) {}
  ~PlanCache() { EraseIf([](const CompiledPlan&) { return true; }); }

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Attaches the governor account; entry overhead (the entry itself plus
  // the plan's variable list) is charged under MemLayer::kPlanCache at
  // Insert and released at eviction. The pinned diagram nodes themselves
  // are store/arena bytes of the owning manager's account, not counted
  // here (no double-charging). Attach before the first Insert.
  void SetMemAccount(MemAccount* account) { account_ = account; }

  size_t MemoryBytes() const { return charged_bytes_; }

  // Returns the cached plan (bumped to most-recently-used) or nullptr.
  // The pointer is valid until the next Insert/EvictOne/EraseIf.
  CompiledPlan* Lookup(const PlanKey& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &entries_.front().second;
  }

  // Inserts (the key must not be present — callers Lookup first) and
  // returns the resident plan, evicting LRU entries past capacity.
  CompiledPlan* Insert(const PlanKey& key, CompiledPlan plan) {
    while (entries_.size() >= capacity_) EvictOne();
    entries_.emplace_front(key, std::move(plan));
    index_.emplace(key, entries_.begin());
    ChargeEntry(entries_.front().second, +1);
    return &entries_.front().second;
  }

  // Evicts the least-recently-used entry; false when empty. Shards call
  // this under GC pressure, when pinned plans alone exceed the
  // resident-node ceiling.
  bool EvictOne() {
    if (entries_.empty()) return false;
    auto& [key, plan] = entries_.back();
    if (on_evict_) on_evict_(key, plan);
    ChargeEntry(plan, -1);
    index_.erase(key);
    entries_.pop_back();
    ++evictions_;
    return true;
  }

  // Evicts the least-recently-used entry for which `pred` holds; false
  // when none matches. The GC policy uses this to shed plans pinned in
  // the one manager over its resident-node ceiling, preserving every
  // other manager's cached plans (LRU order still decides *which* of the
  // matching plans goes).
  template <typename Pred>
  bool EvictOneMatching(Pred&& pred) {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (!pred(static_cast<const CompiledPlan&>(it->second))) continue;
      if (on_evict_) on_evict_(it->first, it->second);
      ChargeEntry(it->second, -1);
      index_.erase(it->first);
      entries_.erase(std::next(it).base());
      ++evictions_;
      return true;
    }
    return false;
  }

  // Total pinned_nodes over cached plans for which `pred` holds — the
  // per-manager pinned-node accounting behind the eviction policy.
  template <typename Pred>
  int PinnedNodesMatching(Pred&& pred) const {
    int total = 0;
    for (const auto& [key, plan] : entries_) {
      if (pred(static_cast<const CompiledPlan&>(plan))) {
        total += plan.pinned_nodes;
      }
    }
    return total;
  }

  // Evicts every plan for which `pred` holds (e.g. all plans inside a
  // manager about to be destroyed).
  template <typename Pred>
  void EraseIf(Pred&& pred) {
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (!pred(static_cast<const CompiledPlan&>(it->second))) {
        ++it;
        continue;
      }
      if (on_evict_) on_evict_(it->first, it->second);
      ChargeEntry(it->second, -1);
      index_.erase(it->first);
      it = entries_.erase(it);
      ++evictions_;
    }
  }

  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  // Heap overhead of one cached entry: the list node payload plus the
  // plan's variable list. Computed identically at insert and evict (the
  // plan is immutable while cached), so charges round-trip exactly.
  static size_t EntryBytes(const CompiledPlan& plan) {
    // The stats block (dominated by its inline histogram) is charged
    // here too; the pointer is immutable while cached, so insert and
    // evict see the same size.
    return sizeof(std::pair<PlanKey, CompiledPlan>) +
           plan.vars.capacity() * sizeof(int) +
           (plan.stats != nullptr ? sizeof(PlanStats) : 0);
  }

  void ChargeEntry(const CompiledPlan& plan, int sign) {
    const size_t bytes = EntryBytes(plan);
    if (sign > 0) {
      charged_bytes_ += bytes;
    } else {
      charged_bytes_ -= bytes;
    }
    if (account_ != nullptr) {
      account_->Charge(MemLayer::kPlanCache,
                       sign * static_cast<int64_t>(bytes));
    }
  }

  size_t capacity_;
  EvictFn on_evict_;
  MemAccount* account_ = nullptr;
  size_t charged_bytes_ = 0;
  // MRU-first entry list + key index (classic LRU layout; list iterators
  // stay valid across splice, so the index never goes stale).
  std::list<std::pair<PlanKey, CompiledPlan>> entries_;
  std::unordered_map<PlanKey, decltype(entries_)::iterator, PlanKeyHash>
      index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace ctsdd

#endif  // CTSDD_SERVE_PLAN_CACHE_H_
