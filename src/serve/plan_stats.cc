#include "serve/plan_stats.h"

#include <algorithm>

namespace ctsdd {

PlanStatsRegistry::PlanStatsRegistry(obs::MetricsRegistry* metrics)
    : evicted_wmc_us_(metrics->GetHistogram(
          "plan.evicted_wmc_us",
          "WMC latency (us) of evaluations whose plan was later evicted; "
          "merge target that keeps per-plan histogram mass conserved")),
      evicted_plans_(metrics->GetCounter(
          "plan.evicted_plans", "plans evicted from all shard plan caches")),
      evicted_hits_(metrics->GetCounter(
          "plan.evicted_hits", "cache hits accumulated by evicted plans")),
      evicted_evals_(metrics->GetCounter(
          "plan.evicted_evals",
          "WMC evaluations accumulated by evicted plans")) {}

void PlanStatsRegistry::Register(std::shared_ptr<PlanStats> stats) {
  if (stats == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  live_.push_back(std::move(stats));
}

void PlanStatsRegistry::OnEviction(const std::shared_ptr<PlanStats>& stats) {
  if (stats == nullptr) return;
  // Merge before unpublishing: a /plansz scrape racing this eviction
  // either still sees the live block or sees its mass in the evicted
  // totals (it can briefly see both, never neither).
  evicted_wmc_us_->Merge(stats->wmc_us);
  evicted_plans_->Add(1);
  evicted_hits_->Add(stats->hits.load(std::memory_order_relaxed));
  evicted_evals_->Add(stats->wmc_us.count());
  std::lock_guard<std::mutex> lock(mu_);
  live_.erase(std::remove(live_.begin(), live_.end(), stats), live_.end());
}

std::vector<std::shared_ptr<PlanStats>> PlanStatsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_;
}

size_t PlanStatsRegistry::live_plans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

}  // namespace ctsdd
