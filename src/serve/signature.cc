#include "serve/signature.h"

#include <functional>

#include "util/hashing.h"

namespace ctsdd {
namespace {

uint64_t FoldString(uint64_t h, const std::string& s) {
  h = HashCombine(h, s.size());
  for (const char c : s) {
    h = HashCombine(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

}  // namespace

uint64_t QuerySignature(const Ucq& query) {
  uint64_t h = HashMix64(0x51c2a3f0u ^ query.disjuncts.size());
  for (const ConjunctiveQuery& cq : query.disjuncts) {
    h = HashCombine(h, cq.atoms.size());
    for (const Atom& atom : cq.atoms) {
      h = FoldString(h, atom.relation);
      h = HashCombine(h, atom.args.size());
      for (const int arg : atom.args) {
        h = HashCombine(h, static_cast<uint64_t>(static_cast<int64_t>(arg)));
      }
    }
    h = HashCombine(h, cq.inequalities.size());
    for (const Inequality& ineq : cq.inequalities) {
      h = Hash3(h, static_cast<uint64_t>(ineq.var1),
                static_cast<uint64_t>(ineq.var2));
    }
  }
  return h;
}

uint64_t DatabaseSignature(const Database& db) {
  uint64_t h = HashMix64(0x7a11beadULL ^ static_cast<uint64_t>(db.num_relations()));
  for (const std::string& name : db.RelationNames()) {
    h = FoldString(h, name);
    h = HashCombine(h, static_cast<uint64_t>(db.RelationArity(name)));
    const auto& tuples = db.TuplesOf(name);
    h = HashCombine(h, tuples.size());
    for (const DbTuple& t : tuples) {
      h = HashCombine(h, static_cast<uint64_t>(t.id));
      for (const int v : t.values) {
        h = HashCombine(h, static_cast<uint64_t>(static_cast<int64_t>(v)));
      }
    }
  }
  return h;
}

std::string VtreeKeyString(const Vtree& vtree) {
  std::string out;
  std::function<void(int)> rec = [&](int node) {
    if (vtree.is_leaf(node)) {
      out += std::to_string(vtree.var(node));
      return;
    }
    out += '(';
    rec(vtree.left(node));
    out += ' ';
    rec(vtree.right(node));
    out += ')';
  };
  rec(vtree.root());
  return out;
}

}  // namespace ctsdd
