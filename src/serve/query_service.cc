#include "serve/query_service.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include "serve/shard.h"
#include "serve/signature.h"
#include "util/hashing.h"
#include "util/logging.h"

namespace ctsdd {

QueryService::QueryService(ServeOptions options)
    : options_(options),
      exec_pool_(options.exec_workers > 1
                     ? std::make_unique<exec::TaskPool>(options.exec_workers)
                     : nullptr),
      latency_(std::make_unique<LatencyRecorder>(options.latency_window)),
      gc_latency_(std::make_unique<LatencyRecorder>(options.latency_window)) {
  CTSDD_CHECK_GT(options_.num_shards, 0);
  shards_.reserve(options_.num_shards);
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<ShardWorker>(
        i, options_, latency_.get(), gc_latency_.get(), exec_pool_.get()));
  }
}

QueryService::~QueryService() = default;

QueryResponse QueryService::Execute(const QueryRequest& request) {
  return ExecuteBatch({request})[0];
}

std::vector<QueryResponse> QueryService::ExecuteBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<QueryResponse> responses(requests.size());
  if (requests.empty()) return responses;
  std::atomic<int> remaining(static_cast<int>(requests.size()));
  std::mutex done_mu;
  std::condition_variable done_cv;
  const auto admitted_at = std::chrono::steady_clock::now();
  for (size_t i = 0; i < requests.size(); ++i) {
    const QueryRequest& request = requests[i];
    if (request.db == nullptr) {
      responses[i].status = Status::InvalidArgument("request without database");
      rejected_requests_.fetch_add(1, std::memory_order_relaxed);
      remaining.fetch_sub(1);
      continue;
    }
    // Signature-routed sharding: repeats of a (query, database) pair
    // always land on the shard holding their plan and managers.
    const PlanKey key{QuerySignature(request.query),
                      DatabaseSignature(*request.db), request.strategy,
                      request.route};
    const size_t shard =
        static_cast<size_t>(Hash2(key.query_sig, key.db_sig)) %
        shards_.size();
    ShardJob job{&requests[i], &responses[i],      key, false, {},
                 &remaining,   &done_mu,           &done_cv};
    const double deadline_ms = request.deadline_ms > 0
                                   ? request.deadline_ms
                                   : options_.default_deadline_ms;
    if (deadline_ms > 0) {
      job.has_deadline = true;
      job.deadline =
          admitted_at + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                deadline_ms));
    }
    double retry_after_ms = 0;
    if (!shards_[shard]->Submit(job, &retry_after_ms)) {
      // Admission control shed the job: fail it typed, with a backoff
      // hint, instead of queueing without bound.
      responses[i].status =
          Status::Unavailable("shard queue full; retry later");
      responses[i].shard = static_cast<int>(shard);
      responses[i].retry_after_ms = retry_after_ms;
      remaining.fetch_sub(1);
    }
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  return responses;
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  out.num_shards = static_cast<int>(shards_.size());
  for (const auto& shard : shards_) {
    const ShardStats s = shard->stats();
    out.totals.requests += s.requests;
    out.totals.failures += s.failures;
    out.totals.plan_hits += s.plan_hits;
    out.totals.plan_misses += s.plan_misses;
    out.totals.plan_evictions += s.plan_evictions;
    out.totals.targeted_evictions += s.targeted_evictions;
    out.totals.compiles += s.compiles;
    out.totals.gc_runs += s.gc_runs;
    out.totals.gc_reclaimed += s.gc_reclaimed;
    out.totals.manager_evictions += s.manager_evictions;
    out.totals.timeouts += s.timeouts;
    out.totals.sheds += s.sheds;
    out.totals.fallbacks += s.fallbacks;
    out.totals.budget_aborts += s.budget_aborts;
    out.totals.live_nodes += s.live_nodes;
    out.totals.peak_live_nodes += s.peak_live_nodes;
  }
  const uint64_t rejected =
      rejected_requests_.load(std::memory_order_relaxed);
  // Rejected and shed requests never reach a worker's counters; fold
  // them in so monitoring sees them as traffic + failures.
  out.totals.requests += rejected + out.totals.sheds;
  out.totals.failures += rejected + out.totals.sheds;
  out.p50_ms = latency_->Percentile(0.50);
  out.p95_ms = latency_->Percentile(0.95);
  out.p99_ms = latency_->Percentile(0.99);
  out.gc_pause_p50_ms = gc_latency_->Percentile(0.50);
  out.gc_pause_p99_ms = gc_latency_->Percentile(0.99);
  return out;
}

}  // namespace ctsdd
