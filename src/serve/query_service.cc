#include "serve/query_service.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "obs/trace.h"
#include "serve/shard.h"
#include "serve/signature.h"
#include "serve/supervisor.h"
#include "util/hashing.h"
#include "util/logging.h"

namespace ctsdd {

QueryService::QueryService(ServeOptions options)
    : options_(options),
      exec_pool_(options.exec_workers > 1
                     ? std::make_unique<exec::TaskPool>(options.exec_workers)
                     : nullptr),
      metrics_(std::make_unique<obs::MetricsRegistry>()),
      flight_(std::make_unique<obs::FlightRecorder>(
          obs::FlightRecorder::Options{options.flight_recorder_capacity,
                                       options.flight_dump_dir,
                                       /*min_dump_interval_ms=*/250})),
      quarantine_(std::make_unique<Quarantine>(Quarantine::Options{
          options.quarantine_threshold, options.quarantine_parole_ms,
          options.quarantine_parole_max_ms, options.quarantine_capacity,
          /*trial_timeout_ms=*/std::max(10000.0,
                                        4 * options.quarantine_parole_ms)})),
      sup_counters_(std::make_unique<SupervisionCounters>()) {
  CTSDD_CHECK_GT(options_.num_shards, 0);
  // Histograms before any shard exists: MakeWorker hands each worker the
  // shared recorder pointers.
  latency_us_ = metrics_->GetHistogram("serve.latency_us");
  gc_pause_us_ = metrics_->GetHistogram("serve.gc_pause_us");
  // Memory governor before any shard exists: MakeWorker stamps
  // options_.mem_governor into each worker's account at construction.
  // An embedding that supplies its own governor keeps it; otherwise a
  // non-zero hard watermark turns governed serving on.
  if (options_.mem_governor == nullptr && options_.mem_hard_bytes > 0) {
    governor_ = std::make_unique<MemGovernor>();
    governor_->SetWatermarks(options_.mem_soft_bytes, options_.mem_hard_bytes);
    options_.mem_governor = governor_.get();
  }
  slots_.reserve(options_.num_shards);
  for (int i = 0; i < options_.num_shards; ++i) {
    auto slot = std::make_unique<ShardSlot>();
    slot->worker = MakeWorker(i);
    slots_.push_back(std::move(slot));
  }
  if (options_.heartbeat_window_ms > 0) {
    supervisor_ = std::make_unique<Supervisor>(
        options_, &slots_, sup_counters_.get(), flight_.get(),
        [this](int shard_id) { return MakeWorker(shard_id); });
  }
}

QueryService::~QueryService() = default;

std::shared_ptr<ShardWorker> QueryService::MakeWorker(int shard_id) {
  return std::make_shared<ShardWorker>(
      shard_id, options_, latency_us_, gc_pause_us_, flight_.get(),
      exec_pool_.get(), quarantine_.get(), sup_counters_.get());
}

QueryResponse QueryService::Execute(const QueryRequest& request) {
  return ExecuteBatch({request})[0];
}

std::vector<QueryResponse> QueryService::ExecuteBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<QueryResponse> responses(requests.size());
  if (requests.empty()) return responses;
  std::atomic<int> remaining(static_cast<int>(requests.size()));
  std::mutex done_mu;
  std::condition_variable done_cv;
  const auto admitted_at = std::chrono::steady_clock::now();
  for (size_t i = 0; i < requests.size(); ++i) {
    const QueryRequest& request = requests[i];
    if (request.db == nullptr) {
      responses[i].status = Status::InvalidArgument("request without database");
      rejected_requests_.fetch_add(1, std::memory_order_relaxed);
      obs::FlightRecord rec;
      rec.status_code = static_cast<int>(StatusCode::kInvalidArgument);
      flight_->Record(rec);
      remaining.fetch_sub(1);
      continue;
    }
    // Signature-routed sharding: repeats of a (query, database) pair
    // always land on the shard holding their plan and managers.
    const PlanKey key{QuerySignature(request.query),
                      DatabaseSignature(*request.db), request.strategy,
                      request.route};
    // Poison-query quarantine at admission: a quarantined signature
    // fails typed RESOURCE_EXHAUSTED here, without queueing — no compile
    // slot burnt, no worker touched.
    Quarantine::Admission admission = Quarantine::Admission::kAdmit;
    if (quarantine_->enabled()) {
      double parole_hint = 0;
      admission = quarantine_->Admit(key.query_sig, key.db_sig, admitted_at,
                                     &parole_hint);
      if (admission == Quarantine::Admission::kReject) {
        responses[i].status = Status::ResourceExhausted(
            "query signature quarantined; retry after parole");
        responses[i].retry_after_ms = parole_hint;
        obs::FlightRecord rec;
        rec.query_sig = key.query_sig;
        rec.db_sig = key.db_sig;
        rec.status_code = static_cast<int>(StatusCode::kResourceExhausted);
        flight_->Record(rec);
        remaining.fetch_sub(1);
        continue;
      }
    }
    const size_t shard =
        static_cast<size_t>(Hash2(key.query_sig, key.db_sig)) %
        slots_.size();
    auto state = std::make_shared<JobState>();
    state->request = request;  // owned copy: survives hedging/fail-over
    state->response = &responses[i];
    state->key = key;
    state->primary_shard = static_cast<int>(shard);
    state->submitted_at = admitted_at;
    state->is_parole_trial = admission == Quarantine::Admission::kTrial;
    state->remaining = &remaining;
    state->done_mu = &done_mu;
    state->done_cv = &done_cv;
    if (obs::TraceArmed()) {
      // One trace per request, rooted here: the async request track runs
      // admission -> publish; queue/compile/WMC spans parent under it by
      // trace_id. Publish (claim winner only) emits the matching end.
      state->trace = {obs::NewTraceId(), 0};
      state->submit_ts_us = obs::TraceNowUs();
      obs::TraceAsyncBegin("request", "request", state->trace.trace_id);
    }
    const double deadline_ms = request.deadline_ms > 0
                                   ? request.deadline_ms
                                   : options_.default_deadline_ms;
    if (deadline_ms > 0) {
      state->has_deadline = true;
      state->deadline =
          admitted_at + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                deadline_ms));
    }
    std::shared_ptr<ShardWorker> worker;
    {
      std::lock_guard<std::mutex> lock(slots_[shard]->mu);
      worker = slots_[shard]->worker;
    }
    double retry_after_ms = 0;
    if (!worker->Submit(ShardJob{state, /*is_hedge=*/false},
                        &retry_after_ms)) {
      // Admission control shed the job: fail it typed, with a backoff
      // hint, instead of queueing without bound.
      responses[i].status =
          Status::Unavailable("shard queue full; retry later");
      responses[i].shard = static_cast<int>(shard);
      responses[i].retry_after_ms = retry_after_ms;
      obs::FlightRecord rec;
      rec.trace_id = state->trace.trace_id;
      rec.query_sig = key.query_sig;
      rec.db_sig = key.db_sig;
      rec.shard = static_cast<int>(shard);
      rec.status_code = static_cast<int>(StatusCode::kUnavailable);
      flight_->Record(rec);
      // The shed request never reaches Publish: close its track here.
      if (state->trace.trace_id != 0) {
        obs::TraceAsyncEnd("request", "request", state->trace.trace_id);
      }
      remaining.fetch_sub(1);
    }
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  return responses;
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  out.num_shards = static_cast<int>(slots_.size());
  for (const auto& slot : slots_) {
    AccumulateShardStats(out.totals, slot->Get()->stats());
  }
  // Workers retired by supervisor restarts keep their history.
  if (supervisor_ != nullptr) supervisor_->AddRetiredStats(&out.totals);
  out.supervision = sup_counters_->Snapshot();
  const Quarantine::Counters q = quarantine_->counters();
  out.supervision.quarantine_rejects = q.rejects;
  out.supervision.quarantine_strikes = q.strikes;
  out.supervision.parole_trials = q.parole_trials;
  out.supervision.parole_successes = q.parole_successes;
  out.supervision.quarantine_entries = q.entries;
  const uint64_t rejected =
      rejected_requests_.load(std::memory_order_relaxed);
  // Requests answered outside any worker — invalid-argument rejects,
  // admission sheds, quarantine rejects, and supervisor restart
  // failures — never reach a worker's counters; fold them in so
  // monitoring sees them as traffic + failures.
  const uint64_t outside = rejected + out.totals.sheds +
                           out.supervision.quarantine_rejects +
                           out.supervision.failed_on_restart;
  out.totals.requests += outside;
  out.totals.failures += outside;
  out.governor = SnapshotGovernor(options_.mem_governor);
  // RESOURCE_EXHAUSTED by cause. The populations are disjoint: memory
  // trips never strike quarantine (see CompilePlan), quarantine rejects
  // never touch the governor.
  out.rejected_quarantine = q.rejects;
  out.rejected_memory = out.totals.mem_rejects + out.totals.mem_aborts;
  out.p50_ms = static_cast<double>(latency_us_->ValueAtPercentile(0.50)) / 1e3;
  out.p95_ms = static_cast<double>(latency_us_->ValueAtPercentile(0.95)) / 1e3;
  out.p99_ms = static_cast<double>(latency_us_->ValueAtPercentile(0.99)) / 1e3;
  out.gc_pause_p50_ms =
      static_cast<double>(gc_pause_us_->ValueAtPercentile(0.50)) / 1e3;
  out.gc_pause_p99_ms =
      static_cast<double>(gc_pause_us_->ValueAtPercentile(0.99)) / 1e3;
  return out;
}

void QueryService::PublishMetrics() {
  const ServiceStats s = stats();
  const auto set = [&](const char* name, uint64_t v) {
    metrics_->GetCounter(name)->Set(v);
  };
  set("serve.requests", s.totals.requests);
  set("serve.failures", s.totals.failures);
  set("serve.timeouts", s.totals.timeouts);
  set("serve.sheds", s.totals.sheds);
  set("serve.fallbacks", s.totals.fallbacks);
  set("serve.budget_aborts", s.totals.budget_aborts);
  set("serve.duplicate_skips", s.totals.duplicate_skips);
  set("serve.compiles", s.totals.compiles);
  set("serve.rejected_memory", s.rejected_memory);
  set("serve.rejected_quarantine", s.rejected_quarantine);
  set("plan_cache.hits", s.totals.plan_hits);
  set("plan_cache.misses", s.totals.plan_misses);
  set("plan_cache.evictions", s.totals.plan_evictions);
  set("plan_cache.targeted_evictions", s.totals.targeted_evictions);
  set("plan_cache.manager_evictions", s.totals.manager_evictions);
  set("gc.runs", s.totals.gc_runs);
  set("gc.reclaimed_nodes", s.totals.gc_reclaimed);
  set("supervision.hangs_detected", s.supervision.hangs_detected);
  set("supervision.deaths_detected", s.supervision.deaths_detected);
  set("supervision.shard_restarts", s.supervision.shard_restarts);
  set("supervision.failed_on_restart", s.supervision.failed_on_restart);
  set("supervision.hedges_dispatched", s.supervision.hedges_dispatched);
  set("supervision.hedge_wins", s.supervision.hedge_wins);
  set("supervision.hedge_cancels", s.supervision.hedge_cancels);
  set("quarantine.rejects", s.supervision.quarantine_rejects);
  set("quarantine.strikes", s.supervision.quarantine_strikes);
  set("quarantine.parole_trials", s.supervision.parole_trials);
  set("quarantine.parole_successes", s.supervision.parole_successes);
  set("governor.admit_denials", s.governor.admit_denials);
  set("governor.optional_growth_denials", s.governor.optional_growth_denials);
  set("governor.compile_cancels", s.governor.compile_cancels);
  set("governor.soft_transitions", s.governor.soft_transitions);
  set("governor.critical_transitions", s.governor.critical_transitions);
  set("governor.hard_breaches", s.governor.hard_breaches);
  set("flight.records", flight_->records());
  set("flight.anomalies", flight_->anomalies());
  set("flight.dumps", flight_->dumps());
  for (int a = 0; a < obs::kAnomalyCount; ++a) {
    const auto anomaly = static_cast<obs::Anomaly>(a);
    set((std::string("flight.anomaly.") + obs::AnomalyName(anomaly)).c_str(),
        flight_->anomaly_count(anomaly));
  }
  const auto gauge = [&](const char* name, int64_t v) {
    metrics_->GetGauge(name)->Set(v);
  };
  gauge("serve.live_nodes", s.totals.live_nodes);
  gauge("serve.peak_live_nodes", s.totals.peak_live_nodes);
  gauge("mem.bytes", static_cast<int64_t>(s.totals.mem_bytes));
  gauge("governor.bytes", static_cast<int64_t>(s.governor.bytes));
  gauge("governor.peak_bytes", static_cast<int64_t>(s.governor.peak_bytes));
  gauge("governor.tier", s.governor.tier);
  gauge("quarantine.entries",
        static_cast<int64_t>(s.supervision.quarantine_entries));
}

std::string QueryService::MetricsJson() {
  PublishMetrics();
  return metrics_->JsonSnapshot();
}

std::string QueryService::MetricsPrometheus() {
  PublishMetrics();
  return metrics_->PrometheusText();
}

}  // namespace ctsdd
