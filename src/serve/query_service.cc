#include "serve/query_service.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/profiler.h"
#include "obs/trace.h"
#include "serve/shard.h"
#include "serve/signature.h"
#include "serve/supervisor.h"
#include "util/hashing.h"
#include "util/logging.h"

namespace ctsdd {

namespace {

const char* MemLayerName(MemLayer layer) {
  switch (layer) {
    case MemLayer::kNodeStore:
      return "node_store";
    case MemLayer::kArena:
      return "arena";
    case MemLayer::kUniqueTable:
      return "unique_table";
    case MemLayer::kCache:
      return "cache";
    case MemLayer::kMemo:
      return "memo";
    case MemLayer::kPlanCache:
      return "plan_cache";
  }
  return "unknown";
}

const char* RouteName(int route) {
  return static_cast<PlanRoute>(route) == PlanRoute::kObdd ? "obdd" : "sdd";
}

// Minimal append-only JSON writer for the introspection handlers. Keys
// are trusted literals and values are numeric / boolean / controlled
// identifiers, so no general escaping is needed; 64-bit signatures are
// emitted as decimal strings to survive JavaScript number parsing.
struct JsonOut {
  std::string s;
  bool comma = false;

  void Sep() {
    if (comma) s += ',';
    comma = true;
  }
  void Key(const char* key) {
    Sep();
    if (key != nullptr) {
      s += '"';
      s += key;
      s += "\":";
    }
  }
  void Open(const char* key, char bracket) {
    Key(key);
    s += bracket;
    comma = false;
  }
  void Close(char bracket) {
    s += bracket;
    comma = true;
  }
  template <typename T>
  void Num(const char* key, T v) {
    Key(key);
    s += std::to_string(v);
  }
  // 64-bit value as a decimal string (exact in every JSON consumer).
  void NumStr(const char* key, uint64_t v) {
    Key(key);
    s += '"';
    s += std::to_string(v);
    s += '"';
  }
  void Bool(const char* key, bool v) {
    Key(key);
    s += v ? "true" : "false";
  }
  void Str(const char* key, const char* v) {
    Key(key);
    s += '"';
    s += v;
    s += '"';
  }
  void Raw(const char* key, const std::string& json) {
    Key(key);
    s += json;
  }
};

}  // namespace

QueryService::QueryService(ServeOptions options)
    : options_(options),
      exec_pool_(options.exec_workers > 1
                     ? std::make_unique<exec::TaskPool>(options.exec_workers)
                     : nullptr),
      metrics_(std::make_unique<obs::MetricsRegistry>()),
      flight_(std::make_unique<obs::FlightRecorder>(
          obs::FlightRecorder::Options{options.flight_recorder_capacity,
                                       options.flight_dump_dir,
                                       /*min_dump_interval_ms=*/250})),
      quarantine_(std::make_unique<Quarantine>(Quarantine::Options{
          options.quarantine_threshold, options.quarantine_parole_ms,
          options.quarantine_parole_max_ms, options.quarantine_capacity,
          /*trial_timeout_ms=*/std::max(10000.0,
                                        4 * options.quarantine_parole_ms)})),
      sup_counters_(std::make_unique<SupervisionCounters>()) {
  CTSDD_CHECK_GT(options_.num_shards, 0);
  start_time_ = std::chrono::steady_clock::now();
  // Histograms before any shard exists: MakeWorker hands each worker the
  // shared recorder pointers.
  latency_us_ = metrics_->GetHistogram(
      "serve.latency_us", "End-to-end request latency in microseconds");
  gc_pause_us_ = metrics_->GetHistogram(
      "serve.gc_pause_us", "Garbage-collection pause in microseconds");
  // Plan telemetry before any shard exists: MakeWorker hands each worker
  // the registry pointer, and worker teardown evicts into it.
  plan_stats_ = std::make_unique<PlanStatsRegistry>(metrics_.get());
  // Memory governor before any shard exists: MakeWorker stamps
  // options_.mem_governor into each worker's account at construction.
  // An embedding that supplies its own governor keeps it; otherwise a
  // non-zero hard watermark turns governed serving on.
  if (options_.mem_governor == nullptr && options_.mem_hard_bytes > 0) {
    governor_ = std::make_unique<MemGovernor>();
    governor_->SetWatermarks(options_.mem_soft_bytes, options_.mem_hard_bytes);
    options_.mem_governor = governor_.get();
  }
  slots_.reserve(options_.num_shards);
  for (int i = 0; i < options_.num_shards; ++i) {
    auto slot = std::make_unique<ShardSlot>();
    slot->worker = MakeWorker(i);
    slots_.push_back(std::move(slot));
  }
  if (options_.heartbeat_window_ms > 0) {
    supervisor_ = std::make_unique<Supervisor>(
        options_, &slots_, sup_counters_.get(), flight_.get(),
        [this](int shard_id) { return MakeWorker(shard_id); });
  }
  if (options_.debug_port >= 0) StartDebugServer();
}

QueryService::~QueryService() {
  // Stop serving introspection before any state the handlers read is
  // torn down (member order already guarantees this; being explicit
  // keeps the dependency obvious).
  if (debug_server_ != nullptr) debug_server_->Stop();
}

std::shared_ptr<ShardWorker> QueryService::MakeWorker(int shard_id) {
  return std::make_shared<ShardWorker>(
      shard_id, options_, latency_us_, gc_pause_us_, flight_.get(),
      exec_pool_.get(), quarantine_.get(), sup_counters_.get(),
      plan_stats_.get());
}

void QueryService::StartDebugServer() {
  debug_server_ = std::make_unique<obs::DebugServer>();
  obs::DebugServer* server = debug_server_.get();
  using Request = obs::DebugServer::Request;
  using Response = obs::DebugServer::Response;

  server->Handle("/metrics", [this](const Request&) {
    Response r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = MetricsPrometheus();
    return r;
  });

  // /healthz judges liveness by the same signals the supervisor uses: a
  // busy shard whose progress counter has not advanced within the
  // heartbeat window is hung; an exited worker is dead. The previous
  // observation per shard lives in handler state — the server serves one
  // connection at a time, so no lock is needed.
  struct HealthPrev {
    uint64_t progress = 0;
    std::chrono::steady_clock::time_point changed;
    bool init = false;
  };
  auto prev = std::make_shared<std::vector<HealthPrev>>(slots_.size());
  const double window_ms =
      options_.heartbeat_window_ms > 0 ? options_.heartbeat_window_ms : 1000.0;
  server->Handle("/healthz", [this, prev, window_ms](const Request&) {
    const auto now = std::chrono::steady_clock::now();
    int hung = 0;
    int exited = 0;
    JsonOut shards;
    shards.Open(nullptr, '[');
    for (size_t i = 0; i < slots_.size(); ++i) {
      const auto worker = slots_[i]->Get();
      const bool is_busy = worker->busy();
      const bool is_exited = worker->exited();
      const uint64_t progress = worker->progress();
      HealthPrev& p = (*prev)[i];
      // An idle worker or any progress resets the staleness clock; only
      // busy-with-frozen-progress accumulates toward "hung".
      if (!p.init || progress != p.progress || !is_busy) {
        p.init = true;
        p.progress = progress;
        p.changed = now;
      }
      const double stale_ms =
          std::chrono::duration<double, std::milli>(now - p.changed).count();
      const bool is_hung = is_busy && stale_ms > window_ms;
      hung += is_hung ? 1 : 0;
      exited += is_exited ? 1 : 0;
      shards.Open(nullptr, '{');
      shards.Num("shard", i);
      shards.Bool("busy", is_busy);
      shards.Bool("exited", is_exited);
      shards.Bool("hung", is_hung);
      shards.Num("queue_depth", worker->queue_depth());
      shards.Num("progress", progress);
      shards.Close('}');
    }
    shards.Close(']');
    const bool healthy = hung == 0 && exited == 0;
    JsonOut j;
    j.Open(nullptr, '{');
    j.Str("status", healthy ? "ok" : "unhealthy");
    j.Num("hung_shards", hung);
    j.Num("exited_shards", exited);
    j.Num("quarantine_entries", quarantine_->counters().entries);
    j.Raw("shards", shards.s);
    j.Close('}');
    Response r;
    r.status = healthy ? 200 : 503;
    r.content_type = "application/json";
    r.body = std::move(j.s);
    return r;
  });

  server->Handle("/statusz", [this](const Request&) {
    const ServiceStats s = stats();
    JsonOut j;
    j.Open(nullptr, '{');
    j.Num("uptime_s", std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_time_)
                          .count());
    j.Num("num_shards", s.num_shards);
    j.Open("totals", '{');
    j.Num("requests", s.totals.requests);
    j.Num("failures", s.totals.failures);
    j.Num("timeouts", s.totals.timeouts);
    j.Num("sheds", s.totals.sheds);
    j.Num("compiles", s.totals.compiles);
    j.Num("plan_hits", s.totals.plan_hits);
    j.Num("plan_misses", s.totals.plan_misses);
    j.Num("plan_evictions", s.totals.plan_evictions);
    j.Num("plan_cache_size", s.totals.plan_cache_size);
    j.Num("live_nodes", s.totals.live_nodes);
    j.Num("mem_bytes", s.totals.mem_bytes);
    j.Close('}');
    j.Open("latency_ms", '{');
    j.Num("p50", s.p50_ms);
    j.Num("p95", s.p95_ms);
    j.Num("p99", s.p99_ms);
    j.Close('}');
    j.Open("governor", '{');
    j.Bool("enabled", s.governor.enabled);
    j.Num("tier", s.governor.tier);
    j.Num("bytes", s.governor.bytes);
    j.Num("peak_bytes", s.governor.peak_bytes);
    j.Num("soft_bytes", s.governor.soft_bytes);
    j.Num("hard_bytes", s.governor.hard_bytes);
    j.Close('}');
    j.Open("plans", '{');
    j.Num("live", plan_stats_->live_plans());
    j.Num("evicted", plan_stats_->evicted_plans());
    j.Close('}');
    j.Open("shards", '[');
    for (size_t i = 0; i < slots_.size(); ++i) {
      const auto worker = slots_[i]->Get();
      const ShardStats ss = worker->stats();
      j.Open(nullptr, '{');
      j.Num("shard", i);
      j.Bool("busy", worker->busy());
      j.Bool("exited", worker->exited());
      j.Num("queue_depth", worker->queue_depth());
      j.Num("requests", ss.requests);
      j.Num("failures", ss.failures);
      j.Num("plan_cache_size", ss.plan_cache_size);
      j.Num("live_nodes", ss.live_nodes);
      j.Num("mem_bytes", ss.mem_bytes);
      j.Close('}');
    }
    j.Close(']');
    j.Close('}');
    Response r;
    r.content_type = "application/json";
    r.body = std::move(j.s);
    return r;
  });

  // /memz is a depth-2 memory tree: governor totals, then each shard's
  // account broken down by layer. Per-manager child accounts are owned
  // by their single-threaded workers and deliberately not walked from
  // here; the layer totals include their bytes.
  server->Handle("/memz", [this](const Request&) {
    JsonOut j;
    j.Open(nullptr, '{');
    const MemGovernorStats g = SnapshotGovernor(options_.mem_governor);
    j.Open("governor", '{');
    j.Bool("enabled", g.enabled);
    j.Num("tier", g.tier);
    j.Num("bytes", g.bytes);
    j.Num("peak_bytes", g.peak_bytes);
    j.Num("soft_bytes", g.soft_bytes);
    j.Num("hard_bytes", g.hard_bytes);
    j.Close('}');
    j.Open("shards", '[');
    for (size_t i = 0; i < slots_.size(); ++i) {
      const auto worker = slots_[i]->Get();
      const MemAccount& acct = worker->mem_account();
      j.Open(nullptr, '{');
      j.Num("shard", i);
      j.Num("bytes", acct.bytes());
      j.Open("layers", '{');
      for (int l = 0; l < kMemLayerCount; ++l) {
        const auto layer = static_cast<MemLayer>(l);
        j.Num(MemLayerName(layer), acct.bytes(layer));
      }
      j.Close('}');
      j.Close('}');
    }
    j.Close(']');
    j.Close('}');
    Response r;
    r.content_type = "application/json";
    r.body = std::move(j.s);
    return r;
  });

  server->Handle("/plansz", [this](const Request&) {
    const auto plans = plan_stats_->Snapshot();
    uint64_t live_hits = 0;
    uint64_t live_evals = 0;
    JsonOut rows;
    rows.Open(nullptr, '[');
    for (const auto& p : plans) {
      const uint64_t hits = p->hits.load(std::memory_order_relaxed);
      const uint64_t evals = p->evaluations();
      live_hits += hits;
      live_evals += evals;
      rows.Open(nullptr, '{');
      rows.NumStr("query_sig", p->query_sig);
      rows.NumStr("db_sig", p->db_sig);
      rows.Num("shard", p->shard);
      rows.Str("route", RouteName(p->route));
      rows.Str("requested_route", RouteName(p->requested_route));
      rows.Num("ladder_hops", p->ladder_hops);
      rows.Bool("is_constant", p->is_constant);
      rows.Num("compile_us", p->compile_us);
      rows.Num("lineage_gates", p->lineage_gates);
      rows.Num("num_vars", p->num_vars);
      rows.Num("nodes", p->nodes);
      rows.Num("edges", p->edges);
      rows.Num("width", p->width);
      rows.Num("pinned_nodes", p->pinned_nodes);
      rows.Num("pinned_bytes", p->pinned_bytes);
      rows.Num("predicted_treewidth", p->predicted_treewidth);
      rows.Num("exact_treewidth", p->exact_treewidth);
      rows.Num("exact_pathwidth", p->exact_pathwidth);
      rows.Num("hits", hits);
      rows.Num("evaluations", evals);
      rows.Open("wmc_us", '{');
      rows.Num("count", p->wmc_us.count());
      rows.Num("p50", p->wmc_us.ValueAtPercentile(0.50));
      rows.Num("p99", p->wmc_us.ValueAtPercentile(0.99));
      rows.Num("max", p->wmc_us.max());
      rows.Close('}');
      rows.Close('}');
    }
    rows.Close(']');
    const uint64_t evicted_evals = plan_stats_->evicted_wmc_us().count();
    JsonOut j;
    j.Open(nullptr, '{');
    j.Open("summary", '{');
    j.Num("live_plans", plans.size());
    j.Num("evicted_plans", plan_stats_->evicted_plans());
    j.Num("live_hits", live_hits);
    j.Num("live_evaluations", live_evals);
    j.Num("evicted_evaluations", evicted_evals);
    // Conservation invariant dumped alongside the data: live + evicted
    // evaluation counts account for every WMC pass ever recorded.
    j.Num("total_evaluations", live_evals + evicted_evals);
    j.Close('}');
    j.Raw("plans", rows.s);
    j.Close('}');
    Response r;
    r.content_type = "application/json";
    r.body = std::move(j.s);
    return r;
  });

  server->Handle("/flightz", [this](const Request&) {
    Response r;
    r.content_type = "application/json";
    r.body = flight_->DumpJson("debug_server");
    return r;
  });

  server->Handle("/tracez", [](const Request& req) {
    Response r;
    if (obs::TraceArmed()) {
      r.status = 409;
      r.body = "tracer already armed\n";
      return r;
    }
    const int64_t ms = req.IntParam("ms", 250, 10, 10000);
    obs::Tracer::Clear();
    obs::Tracer::Arm();
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    obs::Tracer::Disarm();
    r.content_type = "application/json";
    r.headers.emplace_back("X-Trace-Dropped",
                           std::to_string(obs::Tracer::Dropped()));
    r.body = obs::Tracer::ChromeTraceJson();
    return r;
  });

  server->Handle("/profilez", [](const Request& req) {
    Response r;
    if (!obs::Profiler::Supported()) {
      r.status = 501;
      r.body = "sampling profiler unsupported on this platform\n";
      return r;
    }
    if (obs::Profiler::armed()) {
      r.status = 409;
      r.body = "profiler already armed\n";
      return r;
    }
    const int64_t ms = req.IntParam("ms", 1000, 10, 30000);
    obs::Profiler::Clear();
    obs::Profiler::Arm();
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    obs::Profiler::Disarm();
    // Exact capture accounting travels as headers, not as comment lines:
    // flamegraph toolchains choke on non-stack lines in collapsed input.
    const obs::Profiler::Stats st = obs::Profiler::stats();
    r.headers.emplace_back("X-Profile-Attempted", std::to_string(st.attempted));
    r.headers.emplace_back("X-Profile-Samples", std::to_string(st.samples));
    r.headers.emplace_back("X-Profile-Dropped", std::to_string(st.dropped));
    r.headers.emplace_back("X-Profile-Threads", std::to_string(st.threads));
    r.body = obs::Profiler::Collapsed();
    return r;
  });

  // Bind failure (port in use, bad address) is not fatal to serving:
  // debug_port() reports -1 and error() holds the reason.
  debug_server_->Start(options_.debug_port, options_.debug_bind_addr);
}

QueryResponse QueryService::Execute(const QueryRequest& request) {
  return ExecuteBatch({request})[0];
}

std::vector<QueryResponse> QueryService::ExecuteBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<QueryResponse> responses(requests.size());
  if (requests.empty()) return responses;
  std::atomic<int> remaining(static_cast<int>(requests.size()));
  std::mutex done_mu;
  std::condition_variable done_cv;
  const auto admitted_at = std::chrono::steady_clock::now();
  for (size_t i = 0; i < requests.size(); ++i) {
    const QueryRequest& request = requests[i];
    if (request.db == nullptr) {
      responses[i].status = Status::InvalidArgument("request without database");
      rejected_requests_.fetch_add(1, std::memory_order_relaxed);
      obs::FlightRecord rec;
      rec.status_code = static_cast<int>(StatusCode::kInvalidArgument);
      flight_->Record(rec);
      remaining.fetch_sub(1);
      continue;
    }
    // Signature-routed sharding: repeats of a (query, database) pair
    // always land on the shard holding their plan and managers.
    const PlanKey key{QuerySignature(request.query),
                      DatabaseSignature(*request.db), request.strategy,
                      request.route};
    // Poison-query quarantine at admission: a quarantined signature
    // fails typed RESOURCE_EXHAUSTED here, without queueing — no compile
    // slot burnt, no worker touched.
    Quarantine::Admission admission = Quarantine::Admission::kAdmit;
    if (quarantine_->enabled()) {
      double parole_hint = 0;
      admission = quarantine_->Admit(key.query_sig, key.db_sig, admitted_at,
                                     &parole_hint);
      if (admission == Quarantine::Admission::kReject) {
        responses[i].status = Status::ResourceExhausted(
            "query signature quarantined; retry after parole");
        responses[i].retry_after_ms = parole_hint;
        obs::FlightRecord rec;
        rec.query_sig = key.query_sig;
        rec.db_sig = key.db_sig;
        rec.status_code = static_cast<int>(StatusCode::kResourceExhausted);
        flight_->Record(rec);
        remaining.fetch_sub(1);
        continue;
      }
    }
    const size_t shard =
        static_cast<size_t>(Hash2(key.query_sig, key.db_sig)) %
        slots_.size();
    auto state = std::make_shared<JobState>();
    state->request = request;  // owned copy: survives hedging/fail-over
    state->response = &responses[i];
    state->key = key;
    state->primary_shard = static_cast<int>(shard);
    state->submitted_at = admitted_at;
    state->is_parole_trial = admission == Quarantine::Admission::kTrial;
    state->remaining = &remaining;
    state->done_mu = &done_mu;
    state->done_cv = &done_cv;
    if (obs::TraceArmed()) {
      // One trace per request, rooted here: the async request track runs
      // admission -> publish; queue/compile/WMC spans parent under it by
      // trace_id. Publish (claim winner only) emits the matching end.
      state->trace = {obs::NewTraceId(), 0};
      state->submit_ts_us = obs::TraceNowUs();
      obs::TraceAsyncBegin("request", "request", state->trace.trace_id);
    }
    const double deadline_ms = request.deadline_ms > 0
                                   ? request.deadline_ms
                                   : options_.default_deadline_ms;
    if (deadline_ms > 0) {
      state->has_deadline = true;
      state->deadline =
          admitted_at + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                deadline_ms));
    }
    std::shared_ptr<ShardWorker> worker;
    {
      std::lock_guard<std::mutex> lock(slots_[shard]->mu);
      worker = slots_[shard]->worker;
    }
    double retry_after_ms = 0;
    if (!worker->Submit(ShardJob{state, /*is_hedge=*/false},
                        &retry_after_ms)) {
      // Admission control shed the job: fail it typed, with a backoff
      // hint, instead of queueing without bound.
      responses[i].status =
          Status::Unavailable("shard queue full; retry later");
      responses[i].shard = static_cast<int>(shard);
      responses[i].retry_after_ms = retry_after_ms;
      obs::FlightRecord rec;
      rec.trace_id = state->trace.trace_id;
      rec.query_sig = key.query_sig;
      rec.db_sig = key.db_sig;
      rec.shard = static_cast<int>(shard);
      rec.status_code = static_cast<int>(StatusCode::kUnavailable);
      flight_->Record(rec);
      // The shed request never reaches Publish: close its track here.
      if (state->trace.trace_id != 0) {
        obs::TraceAsyncEnd("request", "request", state->trace.trace_id);
      }
      remaining.fetch_sub(1);
    }
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  return responses;
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  out.num_shards = static_cast<int>(slots_.size());
  for (const auto& slot : slots_) {
    AccumulateShardStats(out.totals, slot->Get()->stats());
  }
  // Workers retired by supervisor restarts keep their history.
  if (supervisor_ != nullptr) supervisor_->AddRetiredStats(&out.totals);
  out.supervision = sup_counters_->Snapshot();
  const Quarantine::Counters q = quarantine_->counters();
  out.supervision.quarantine_rejects = q.rejects;
  out.supervision.quarantine_strikes = q.strikes;
  out.supervision.parole_trials = q.parole_trials;
  out.supervision.parole_successes = q.parole_successes;
  out.supervision.quarantine_entries = q.entries;
  const uint64_t rejected =
      rejected_requests_.load(std::memory_order_relaxed);
  // Requests answered outside any worker — invalid-argument rejects,
  // admission sheds, quarantine rejects, and supervisor restart
  // failures — never reach a worker's counters; fold them in so
  // monitoring sees them as traffic + failures.
  const uint64_t outside = rejected + out.totals.sheds +
                           out.supervision.quarantine_rejects +
                           out.supervision.failed_on_restart;
  out.totals.requests += outside;
  out.totals.failures += outside;
  out.governor = SnapshotGovernor(options_.mem_governor);
  // RESOURCE_EXHAUSTED by cause. The populations are disjoint: memory
  // trips never strike quarantine (see CompilePlan), quarantine rejects
  // never touch the governor.
  out.rejected_quarantine = q.rejects;
  out.rejected_memory = out.totals.mem_rejects + out.totals.mem_aborts;
  out.p50_ms = static_cast<double>(latency_us_->ValueAtPercentile(0.50)) / 1e3;
  out.p95_ms = static_cast<double>(latency_us_->ValueAtPercentile(0.95)) / 1e3;
  out.p99_ms = static_cast<double>(latency_us_->ValueAtPercentile(0.99)) / 1e3;
  out.gc_pause_p50_ms =
      static_cast<double>(gc_pause_us_->ValueAtPercentile(0.50)) / 1e3;
  out.gc_pause_p99_ms =
      static_cast<double>(gc_pause_us_->ValueAtPercentile(0.99)) / 1e3;
  return out;
}

void QueryService::PublishMetrics() {
  const ServiceStats s = stats();
  const auto set = [&](const char* name, uint64_t v) {
    metrics_->GetCounter(name)->Set(v);
  };
  set("serve.requests", s.totals.requests);
  set("serve.failures", s.totals.failures);
  set("serve.timeouts", s.totals.timeouts);
  set("serve.sheds", s.totals.sheds);
  set("serve.fallbacks", s.totals.fallbacks);
  set("serve.budget_aborts", s.totals.budget_aborts);
  set("serve.duplicate_skips", s.totals.duplicate_skips);
  set("serve.compiles", s.totals.compiles);
  set("serve.rejected_memory", s.rejected_memory);
  set("serve.rejected_quarantine", s.rejected_quarantine);
  set("plan_cache.hits", s.totals.plan_hits);
  set("plan_cache.misses", s.totals.plan_misses);
  set("plan_cache.evictions", s.totals.plan_evictions);
  set("plan_cache.targeted_evictions", s.totals.targeted_evictions);
  set("plan_cache.manager_evictions", s.totals.manager_evictions);
  set("gc.runs", s.totals.gc_runs);
  set("gc.reclaimed_nodes", s.totals.gc_reclaimed);
  set("supervision.hangs_detected", s.supervision.hangs_detected);
  set("supervision.deaths_detected", s.supervision.deaths_detected);
  set("supervision.shard_restarts", s.supervision.shard_restarts);
  set("supervision.failed_on_restart", s.supervision.failed_on_restart);
  set("supervision.hedges_dispatched", s.supervision.hedges_dispatched);
  set("supervision.hedge_wins", s.supervision.hedge_wins);
  set("supervision.hedge_cancels", s.supervision.hedge_cancels);
  set("quarantine.rejects", s.supervision.quarantine_rejects);
  set("quarantine.strikes", s.supervision.quarantine_strikes);
  set("quarantine.parole_trials", s.supervision.parole_trials);
  set("quarantine.parole_successes", s.supervision.parole_successes);
  set("governor.admit_denials", s.governor.admit_denials);
  set("governor.optional_growth_denials", s.governor.optional_growth_denials);
  set("governor.compile_cancels", s.governor.compile_cancels);
  set("governor.soft_transitions", s.governor.soft_transitions);
  set("governor.critical_transitions", s.governor.critical_transitions);
  set("governor.hard_breaches", s.governor.hard_breaches);
  set("flight.records", flight_->records());
  set("flight.anomalies", flight_->anomalies());
  set("flight.dumps", flight_->dumps());
  for (int a = 0; a < obs::kAnomalyCount; ++a) {
    const auto anomaly = static_cast<obs::Anomaly>(a);
    set((std::string("flight.anomaly.") + obs::AnomalyName(anomaly)).c_str(),
        flight_->anomaly_count(anomaly));
  }
  if (exec_pool_ != nullptr) {
    metrics_->GetCounter("exec.tasks_run", "Tasks executed by the exec pool")
        ->Set(exec_pool_->tasks_run());
    metrics_->GetCounter("exec.steals", "Cross-worker deque steals")
        ->Set(exec_pool_->steals());
    metrics_->GetCounter("exec.parks", "Worker sleeps after idle spinning")
        ->Set(exec_pool_->parks());
  }
  metrics_
      ->GetCounter("trace.dropped_events",
                   "Trace events dropped by full per-thread rings")
      ->Set(obs::Tracer::Dropped());
  const obs::Profiler::Stats prof = obs::Profiler::stats();
  metrics_
      ->GetCounter("profiler.attempted",
                   "Profiler signal deliveries (samples + dropped)")
      ->Set(prof.attempted);
  metrics_->GetCounter("profiler.samples", "Profiler samples captured")
      ->Set(prof.samples);
  metrics_
      ->GetCounter("profiler.dropped",
                   "Profiler samples dropped by full per-thread buffers")
      ->Set(prof.dropped);
  if (debug_server_ != nullptr) {
    metrics_->GetCounter("debug.requests", "Debug-server requests served")
        ->Set(debug_server_->requests());
    metrics_
        ->GetCounter("debug.rejected",
                     "Debug-server requests rejected by the framing layer")
        ->Set(debug_server_->rejected());
  }
  const auto gauge = [&](const char* name, int64_t v) {
    metrics_->GetGauge(name)->Set(v);
  };
  gauge("serve.live_nodes", s.totals.live_nodes);
  gauge("serve.peak_live_nodes", s.totals.peak_live_nodes);
  gauge("mem.bytes", static_cast<int64_t>(s.totals.mem_bytes));
  gauge("governor.bytes", static_cast<int64_t>(s.governor.bytes));
  gauge("governor.peak_bytes", static_cast<int64_t>(s.governor.peak_bytes));
  gauge("governor.tier", s.governor.tier);
  gauge("quarantine.entries",
        static_cast<int64_t>(s.supervision.quarantine_entries));
  gauge("plan_cache.size", static_cast<int64_t>(s.totals.plan_cache_size));
  metrics_
      ->GetGauge("plan.live_plans",
                 "Plans with live telemetry blocks in the registry")
      ->Set(static_cast<int64_t>(plan_stats_->live_plans()));
}

std::string QueryService::MetricsJson() {
  PublishMetrics();
  return metrics_->JsonSnapshot();
}

std::string QueryService::MetricsPrometheus() {
  PublishMetrics();
  return metrics_->PrometheusText();
}

}  // namespace ctsdd
