// Poison-query quarantine: a bounded negative cache over query
// signatures whose compiles exhaust the node budget on BOTH degradation-
// ladder routes, again and again. Re-admitting such a signature burns a
// full ladder compile (the most expensive failure the service has) every
// time, so after `threshold` strikes the signature fails typed
// RESOURCE_EXHAUSTED at admission without touching a shard.
//
// Two forgiveness mechanisms keep transient pressure from blacklisting
// forever:
//   - Pre-quarantine strikes decay: halved for every parole interval
//     that passes without a new strike, so a signature that exhausted the
//     budget once during a load spike is forgotten.
//   - Parole: after `parole_ms` in quarantine exactly one trial request
//     is admitted (concurrent requests keep failing fast). A clean
//     compile clears the entry entirely — the plan is now cached and
//     repeats are hits. Another double-route exhaustion doubles the
//     parole interval, up to `parole_max_ms` (exponential backoff on
//     genuinely poisonous queries).
//
// The quarantine is owned by the QueryService, not by any worker: it
// must survive shard restarts, otherwise every restart would reset the
// strike count and a supervisor-heavy chaos stream would re-pay
// `threshold` compiles per restart. All methods are thread-safe (one
// mutex; admission is a hash-map probe).

#ifndef CTSDD_SERVE_QUARANTINE_H_
#define CTSDD_SERVE_QUARANTINE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "util/hashing.h"

namespace ctsdd {

class Quarantine {
 public:
  struct Options {
    int threshold = 0;  // strikes before quarantine; 0 disables
    double parole_ms = 1000;
    double parole_max_ms = 60000;
    size_t capacity = 1024;
    // A parole trial that neither succeeds nor strikes within this long
    // (its worker died mid-compile) releases the trial slot.
    double trial_timeout_ms = 10000;
  };

  struct Counters {
    uint64_t rejects = 0;
    uint64_t strikes = 0;
    uint64_t parole_trials = 0;
    uint64_t parole_successes = 0;
    size_t entries = 0;
  };

  enum class Admission { kAdmit, kTrial, kReject };

  explicit Quarantine(Options options) : options_(options) {}

  bool enabled() const { return options_.threshold > 0; }

  // Admission check for one request keyed by (query_sig, db_sig). On
  // kReject, `*retry_after_ms` is the time until the next parole window.
  Admission Admit(uint64_t query_sig, uint64_t db_sig,
                  std::chrono::steady_clock::time_point now,
                  double* retry_after_ms) {
    if (!enabled()) return Admission::kAdmit;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(Hash2(query_sig, db_sig));
    if (it == map_.end()) return Admission::kAdmit;
    Entry& e = it->second;
    Decay(e, now);
    if (e.strikes <= 0) {
      map_.erase(it);
      return Admission::kAdmit;
    }
    if (e.strikes < options_.threshold) return Admission::kAdmit;
    if (e.trial_in_flight &&
        SinceMs(e.trial_started, now) < options_.trial_timeout_ms) {
      ++counters_.rejects;
      if (retry_after_ms != nullptr) {
        *retry_after_ms = options_.parole_ms;
      }
      return Admission::kReject;
    }
    if (now >= e.parole_until) {
      e.trial_in_flight = true;
      e.trial_started = now;
      ++counters_.parole_trials;
      return Admission::kTrial;
    }
    ++counters_.rejects;
    if (retry_after_ms != nullptr) {
      *retry_after_ms = std::max(
          0.1, std::chrono::duration<double, std::milli>(e.parole_until - now)
                   .count());
    }
    return Admission::kReject;
  }

  // Probe used by workers immediately before a cold compile: true when
  // the signature is quarantined and not due for parole, so a job that
  // was admitted before its signature crossed the threshold (or that
  // survived a shard restart) still cannot buy poison a fresh compile.
  // Unlike Admit, never starts a parole trial, and does not count into
  // the reject counter (the worker folds the failure into its own
  // counters; counting here too would double-book the request).
  bool Rejects(uint64_t query_sig, uint64_t db_sig,
               std::chrono::steady_clock::time_point now) const {
    if (!enabled()) return false;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(Hash2(query_sig, db_sig));
    if (it == map_.end()) return false;
    const Entry& e = it->second;
    if (e.strikes < options_.threshold) return false;
    if (e.trial_in_flight &&
        SinceMs(e.trial_started, now) < options_.trial_timeout_ms) {
      return true;
    }
    return now < e.parole_until;
  }

  // A compile of this signature exhausted the budget on both ladder
  // routes — the only event that counts as poison (deadline and cancel
  // trips are the client's or the supervisor's doing, not the query's).
  void ReportExhausted(uint64_t query_sig, uint64_t db_sig,
                       std::chrono::steady_clock::time_point now) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t key = Hash2(query_sig, db_sig);
    auto it = map_.find(key);
    if (it == map_.end()) {
      if (map_.size() >= options_.capacity) EvictOldestLocked();
      it = map_.emplace(key, Entry{}).first;
    }
    Entry& e = it->second;
    Decay(e, now);
    ++counters_.strikes;
    e.last_strike = now;
    if (e.trial_in_flight) {
      // Failed parole: back off exponentially.
      e.trial_in_flight = false;
      ++e.failed_paroles;
      e.strikes = std::max(e.strikes, options_.threshold);
      e.parole_until = now + MsToDuration(std::min(
                                 options_.parole_ms *
                                     static_cast<double>(uint64_t{1}
                                                         << std::min(
                                                                e.failed_paroles,
                                                                20)),
                                 options_.parole_max_ms));
      return;
    }
    ++e.strikes;
    if (e.strikes >= options_.threshold && e.parole_until.time_since_epoch() ==
                                               Duration::zero()) {
      e.parole_until = now + MsToDuration(options_.parole_ms);
    }
  }

  // A compile of this signature succeeded: full forgiveness (the plan is
  // cached now; keeping stale strikes around would only delay repeats).
  void ReportSuccess(uint64_t query_sig, uint64_t db_sig) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(Hash2(query_sig, db_sig));
    if (it == map_.end()) return;
    if (it->second.trial_in_flight) ++counters_.parole_successes;
    map_.erase(it);
  }

  Counters counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    Counters out = counters_;
    out.entries = map_.size();
    return out;
  }

 private:
  using Clock = std::chrono::steady_clock;
  using Duration = Clock::duration;

  struct Entry {
    int strikes = 0;
    int failed_paroles = 0;
    Clock::time_point last_strike;
    Clock::time_point parole_until;  // epoch = not quarantined yet
    bool trial_in_flight = false;
    Clock::time_point trial_started;
  };

  static Duration MsToDuration(double ms) {
    return std::chrono::duration_cast<Duration>(
        std::chrono::duration<double, std::milli>(ms));
  }

  static double SinceMs(Clock::time_point then, Clock::time_point now) {
    return std::chrono::duration<double, std::milli>(now - then).count();
  }

  // Exponential strike decay for entries below the quarantine threshold:
  // one halving per parole interval since the last strike. Quarantined
  // entries do not decay — their only way out is a parole trial, so the
  // "at most threshold compiles" bound holds for permanent poison.
  void Decay(Entry& e, Clock::time_point now) {
    if (e.strikes >= options_.threshold || e.strikes <= 0) return;
    const double elapsed = SinceMs(e.last_strike, now);
    const int halvings =
        static_cast<int>(elapsed / std::max(options_.parole_ms, 1.0));
    if (halvings <= 0) return;
    e.strikes >>= std::min(halvings, 30);
    e.last_strike = now;
  }

  void EvictOldestLocked() {
    auto victim = map_.begin();
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (it->second.last_strike < victim->second.last_strike) victim = it;
    }
    if (victim != map_.end()) map_.erase(victim);
  }

  const Options options_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> map_;
  Counters counters_;
};

}  // namespace ctsdd

#endif  // CTSDD_SERVE_QUARANTINE_H_
