// Configuration and observability surface of the query-serving subsystem.
//
// ServeOptions sizes the service (shards, per-shard plan cache and
// manager pools, GC ceilings); ShardStats / ServiceStats report what a
// long-running deployment watches: request and cache-hit counts, GC
// reclaim, resident-node ceilings, and end-to-end latency percentiles.
// Latency percentiles come from the service's obs::Histogram recorders
// (src/obs/metrics.h): lossless log-linear histograms, so no sample is
// ever dropped under load the way the old sliding-window reservoir
// dropped them.

#ifndef CTSDD_SERVE_SERVE_STATS_H_
#define CTSDD_SERVE_SERVE_STATS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/mem_governor.h"

namespace ctsdd {

struct ServeOptions {
  // Worker shards. Each shard owns its managers and plan-cache partition
  // and serves requests on its own thread; a request's (query, database)
  // signature picks its shard, so repeats always land where their plan
  // is cached.
  int num_shards = 4;
  // Compiled plans retained per shard (LRU past this).
  size_t plan_cache_capacity = 256;
  // Managers pooled per shard and kind (OBDD by variable order, SDD by
  // vtree); least-recently-used managers are destroyed past the cap,
  // dropping their cached plans.
  size_t manager_pool_capacity = 8;
  // Per-manager resident-node ceiling. When a policy check finds a
  // manager above it, the shard garbage-collects; if pinned plans alone
  // keep it above, LRU plans are evicted and collection reruns.
  int gc_live_node_ceiling = 1 << 20;
  // Requests between GC policy checks on a shard.
  int gc_check_interval = 16;
  // Workers in the shared exec/ pool the service lends to shards for
  // cold compiles (parallel apply/compile inside the managers; see
  // src/exec/). 0 or 1 keeps every compile on the shard's own thread —
  // the sequential path. The pool is shared: shards borrow it for the
  // duration of one compile, so `exec_workers` caps the *extra*
  // parallelism a single cold compile can recruit, not a per-shard
  // reservation.
  int exec_workers = 0;
  // Node-allocation budget per cold compile (0 = unlimited). A compile
  // that trips it aborts cleanly, the shard reclaims the partial nodes,
  // and the degradation ladder retries the alternate route (OBDD <-> SDD)
  // once with a fresh budget before reporting RESOURCE_EXHAUSTED.
  uint64_t compile_node_budget = 0;
  // Deadline applied to requests that do not carry their own (0 = none).
  // Measured from batch admission; requests still queued past it are
  // failed with DEADLINE_EXCEEDED without compiling, and in-flight
  // compiles abort at the deadline.
  double default_deadline_ms = 0;
  // Admission control: jobs beyond this per-shard queue depth are shed
  // with UNAVAILABLE and a retry-after hint instead of queueing without
  // bound (0 = unbounded).
  size_t max_queue_depth = 0;
  // Upper clamp on every retry_after_ms hint handed to clients. Deep
  // queues times a momentarily inflated service-time EWMA can otherwise
  // produce hints of minutes; a well-behaved client sleeping that long
  // turns one overload blip into an outage of its own making.
  double retry_after_max_ms = 250;
  // Supervision: a shard whose worker is busy but whose progress counter
  // has not advanced for this long is declared hung and restarted; a
  // worker thread that exited without being asked is declared dead.
  // Queued and in-flight requests of the torn-down shard fail typed
  // UNAVAILABLE with a retry hint. 0 disables the supervisor thread
  // entirely (no heartbeats, no hedging).
  double heartbeat_window_ms = 0;
  // Hedged re-dispatch: a request waiting on one shard longer than the
  // hedge threshold is re-submitted once to a healthy sibling shard; the
  // first exact answer wins and the loser's in-flight compile budget is
  // cancelled. 0 disables hedging. Requires the supervisor
  // (heartbeat_window_ms). The threshold adapts per shard: each worker
  // tracks a latency EWMA and deviation, and the supervisor hedges jobs
  // older than ewma + 2 sigma — this value is the *floor* of that
  // adaptive threshold and 8x this value is its ceiling, so a
  // misbehaving estimate can neither hedge instantly nor never.
  double hedge_after_ms = 0;
  // Memory governor watermarks over the process-total accounted bytes
  // (util/mem_governor.h). hard = 0 disables governing entirely;
  // soft = 0 derives soft as 3/4 of hard. With a hard ceiling set, every
  // byte-owning structure in every shard is charged to a per-shard
  // account rolled up into one service governor, compiles are admission-
  // checked at their allocation seams (deny-before-allocate, typed
  // RESOURCE_EXHAUSTED with a retry hint), and the shards run a tiered
  // shed ladder (shrink caches, GC, evict plans, evict managers) — the
  // hard ceiling is never crossed by accounted bytes.
  uint64_t mem_soft_bytes = 0;
  uint64_t mem_hard_bytes = 0;
  // Internal plumbing: the service stamps its governor here in the
  // options copy handed to each worker. Leave null in user-built
  // options (a non-null value is honored, for embedding scenarios that
  // share one governor across services).
  MemGovernor* mem_governor = nullptr;
  // Poison-query quarantine: a signature whose compiles exhaust the
  // node budget on BOTH ladder routes this many times is negative-cached
  // and fails RESOURCE_EXHAUSTED at admission without burning a compile
  // slot. 0 disables quarantine.
  int quarantine_threshold = 0;
  // Parole: after this long in quarantine one trial request is admitted;
  // success clears the entry, another double-route exhaustion doubles
  // the parole interval (capped below). Pre-quarantine strikes decay by
  // halving per parole interval, so transient pressure is forgiven.
  double quarantine_parole_ms = 1000;
  double quarantine_parole_max_ms = 60000;
  // Bound on distinct quarantined signatures (oldest strike evicted).
  size_t quarantine_capacity = 1024;
  // Flight recorder (obs/flight_recorder.h): most recent request records
  // retained for anomaly dumps. Always on; sizes the evidence window.
  size_t flight_recorder_capacity = 256;
  // When non-empty, anomaly dumps are also written to
  // <dir>/flight_<seq>.json (the latest dump is always readable via
  // QueryService::flight_recorder()->last_dump_json()).
  std::string flight_dump_dir;
  // Live introspection endpoint (obs/debug_server.h): -1 disables,
  // 0 binds an ephemeral port (read it back via
  // QueryService::debug_port()), otherwise the given port. The server
  // exposes /metrics, /healthz, /statusz, /memz, /plansz, /flightz,
  // /tracez and /profilez for the life of the service.
  int debug_port = -1;
  // Bind address for the debug server. Loopback by default on purpose:
  // the endpoints expose plans, memory maps and stacks — widen only on
  // trusted networks.
  std::string debug_bind_addr = "127.0.0.1";
  // Width-prediction gate for per-plan telemetry: cold compiles whose
  // lineage circuit has at most this many gates also run the min-fill
  // treewidth heuristic (and the exact treewidth/pathwidth engines when
  // small enough), recording predicted-width vs. actual-size pairs for
  // the admission-router training set. 0 disables prediction. The
  // default keeps the heuristic's cost well under a typical compile.
  int width_predict_max_gates = 256;
};

// Counters owned by the supervision layer (service-level, not summed
// from shards): detection/restart events, hedging, and quarantine.
struct SupervisionStats {
  uint64_t hangs_detected = 0;
  uint64_t deaths_detected = 0;
  uint64_t shard_restarts = 0;
  // Queued or in-flight requests failed typed UNAVAILABLE when their
  // shard was torn down.
  uint64_t failed_on_restart = 0;
  uint64_t hedges_dispatched = 0;
  // Hedge submissions dropped because the sibling's queue was full (the
  // primary copy is still in flight, so nothing is lost).
  uint64_t hedge_sheds = 0;
  // Requests answered by the hedge copy (the primary lost the claim).
  uint64_t hedge_wins = 0;
  // In-flight compile budgets cancelled by a claim winner.
  uint64_t hedge_cancels = 0;
  uint64_t quarantine_rejects = 0;
  // Double-route budget exhaustions recorded against a signature — each
  // strike is one full ladder compile burned on a poison query.
  uint64_t quarantine_strikes = 0;
  uint64_t parole_trials = 0;
  uint64_t parole_successes = 0;
  uint64_t quarantine_entries = 0;  // current negative-cache size
};

// The live atomics behind SupervisionStats' event counters: the
// supervisor thread and shard workers both bump them; the quarantine
// fields are filled from the Quarantine's own counters at snapshot time.
struct SupervisionCounters {
  std::atomic<uint64_t> hangs_detected{0};
  std::atomic<uint64_t> deaths_detected{0};
  std::atomic<uint64_t> shard_restarts{0};
  std::atomic<uint64_t> failed_on_restart{0};
  std::atomic<uint64_t> hedges_dispatched{0};
  std::atomic<uint64_t> hedge_sheds{0};
  std::atomic<uint64_t> hedge_wins{0};
  std::atomic<uint64_t> hedge_cancels{0};

  SupervisionStats Snapshot() const {
    SupervisionStats out;
    out.hangs_detected = hangs_detected.load(std::memory_order_relaxed);
    out.deaths_detected = deaths_detected.load(std::memory_order_relaxed);
    out.shard_restarts = shard_restarts.load(std::memory_order_relaxed);
    out.failed_on_restart = failed_on_restart.load(std::memory_order_relaxed);
    out.hedges_dispatched = hedges_dispatched.load(std::memory_order_relaxed);
    out.hedge_sheds = hedge_sheds.load(std::memory_order_relaxed);
    out.hedge_wins = hedge_wins.load(std::memory_order_relaxed);
    out.hedge_cancels = hedge_cancels.load(std::memory_order_relaxed);
    return out;
  }
};

// One shard's counters (a consistent snapshot taken between requests).
struct ShardStats {
  uint64_t requests = 0;
  uint64_t failures = 0;
  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
  uint64_t plan_evictions = 0;
  // Evictions the GC policy targeted at the specific manager over its
  // resident-node ceiling (vs. global-LRU fallback shedding).
  uint64_t targeted_evictions = 0;
  uint64_t compiles = 0;
  uint64_t gc_runs = 0;
  uint64_t gc_reclaimed = 0;
  uint64_t manager_evictions = 0;
  // Requests failed with DEADLINE_EXCEEDED — expired while queued or
  // aborted mid-compile by their deadline.
  uint64_t timeouts = 0;
  // Jobs rejected at admission (queue depth over max_queue_depth).
  uint64_t sheds = 0;
  // Degradation-ladder retries on the alternate route after a budget
  // abort on the requested one.
  uint64_t fallbacks = 0;
  // Compiles aborted by the node-allocation budget.
  uint64_t budget_aborts = 0;
  // Jobs this worker dequeued after another copy (hedge or supervisor)
  // had already answered them — skipped without compiling.
  uint64_t duplicate_skips = 0;
  // Largest retry_after_ms hint handed out by this shard's admission
  // control (post-clamp), for observing hint sanity under deep queues.
  double max_retry_hint_ms = 0;
  // Memory-governor interactions (all zero when ungoverned):
  // cold compiles rejected typed RESOURCE_EXHAUSTED at the critical
  // pressure tier, compiles tripped mid-flight by the governor's
  // deny-before-allocate admission (distinguished from node-budget
  // aborts by WorkBudget's memory-pressure marker), and plan/manager
  // evictions forced by the pressure shed ladder.
  uint64_t mem_rejects = 0;
  uint64_t mem_aborts = 0;
  uint64_t pressure_evictions = 0;
  // Accounted resident bytes of this shard (total and by layer),
  // snapshotted from the shard's MemAccount at stats() time.
  uint64_t mem_bytes = 0;
  std::array<uint64_t, kMemLayerCount> mem_bytes_by_layer = {};
  int live_nodes = 0;       // resident nodes across the shard's managers
  int peak_live_nodes = 0;  // max of live_nodes over policy checks
  // Plans currently resident in this shard's cache (occupancy gauge,
  // not a monotone counter).
  uint64_t plan_cache_size = 0;
};

// Field-wise sum of shard counter snapshots (service totals over live
// and retired workers). max_retry_hint_ms takes the max, not the sum.
inline void AccumulateShardStats(ShardStats& into, const ShardStats& s) {
  into.requests += s.requests;
  into.failures += s.failures;
  into.plan_hits += s.plan_hits;
  into.plan_misses += s.plan_misses;
  into.plan_evictions += s.plan_evictions;
  into.targeted_evictions += s.targeted_evictions;
  into.compiles += s.compiles;
  into.gc_runs += s.gc_runs;
  into.gc_reclaimed += s.gc_reclaimed;
  into.manager_evictions += s.manager_evictions;
  into.timeouts += s.timeouts;
  into.sheds += s.sheds;
  into.fallbacks += s.fallbacks;
  into.budget_aborts += s.budget_aborts;
  into.duplicate_skips += s.duplicate_skips;
  into.max_retry_hint_ms =
      std::max(into.max_retry_hint_ms, s.max_retry_hint_ms);
  into.mem_rejects += s.mem_rejects;
  into.mem_aborts += s.mem_aborts;
  into.pressure_evictions += s.pressure_evictions;
  into.mem_bytes += s.mem_bytes;
  for (int l = 0; l < kMemLayerCount; ++l) {
    into.mem_bytes_by_layer[static_cast<size_t>(l)] +=
        s.mem_bytes_by_layer[static_cast<size_t>(l)];
  }
  into.live_nodes += s.live_nodes;
  into.peak_live_nodes += s.peak_live_nodes;
  into.plan_cache_size += s.plan_cache_size;
}

// Snapshot of the service's memory governor (all zero / disabled when no
// hard watermark is configured).
struct MemGovernorStats {
  bool enabled = false;
  uint64_t soft_bytes = 0;
  uint64_t hard_bytes = 0;
  uint64_t bytes = 0;       // current governor-accounted process bytes
  uint64_t peak_bytes = 0;  // high-water mark of the above
  int tier = 0;             // MemGovernor::Tier at snapshot time
  uint64_t admit_denials = 0;
  uint64_t optional_growth_denials = 0;
  uint64_t compile_cancels = 0;
  uint64_t injected_denials = 0;  // mem.reserve fault-injected denials
  uint64_t soft_transitions = 0;
  uint64_t critical_transitions = 0;
  // Charges observed above the hard ceiling — zero by construction when
  // every allocating path reserves first; tests and the bench gate on it.
  uint64_t hard_breaches = 0;
};

inline MemGovernorStats SnapshotGovernor(const MemGovernor* gov) {
  MemGovernorStats out;
  if (gov == nullptr) return out;
  out.enabled = gov->enabled();
  out.soft_bytes = gov->soft_bytes();
  out.hard_bytes = gov->hard_bytes();
  out.bytes = gov->bytes();
  out.peak_bytes = gov->peak_bytes();
  out.tier = static_cast<int>(gov->tier());
  out.admit_denials = gov->admit_denials();
  out.optional_growth_denials = gov->optional_growth_denials();
  out.compile_cancels = gov->compile_cancels();
  out.injected_denials = gov->injected_denials();
  out.soft_transitions = gov->soft_transitions();
  out.critical_transitions = gov->critical_transitions();
  out.hard_breaches = gov->hard_breaches();
  return out;
}

// Aggregated service view (sums over shards + latency percentiles).
// Shard totals include workers retired by supervisor restarts, so the
// counters stay monotone across the life of the service.
struct ServiceStats {
  ShardStats totals;
  SupervisionStats supervision;
  MemGovernorStats governor;
  // RESOURCE_EXHAUSTED responses split by cause: memory pressure
  // (critical-tier cold-compile rejects + governor-tripped compiles) vs
  // poison-query quarantine. Memory rejects never feed quarantine
  // strikes, so the two populations are disjoint.
  uint64_t rejected_memory = 0;
  uint64_t rejected_quarantine = 0;
  int num_shards = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  // Garbage-collection pause percentiles (one sample per collection).
  double gc_pause_p50_ms = 0.0;
  double gc_pause_p99_ms = 0.0;

  double plan_hit_rate() const {
    const uint64_t lookups = totals.plan_hits + totals.plan_misses;
    return lookups == 0
               ? 0.0
               : static_cast<double>(totals.plan_hits) /
                     static_cast<double>(lookups);
  }
};

}  // namespace ctsdd

#endif  // CTSDD_SERVE_SERVE_STATS_H_
