// Configuration and observability surface of the query-serving subsystem.
//
// ServeOptions sizes the service (shards, per-shard plan cache and
// manager pools, GC ceilings); ShardStats / ServiceStats report what a
// long-running deployment watches: request and cache-hit counts, GC
// reclaim, resident-node ceilings, and end-to-end latency percentiles.

#ifndef CTSDD_SERVE_SERVE_STATS_H_
#define CTSDD_SERVE_SERVE_STATS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace ctsdd {

struct ServeOptions {
  // Worker shards. Each shard owns its managers and plan-cache partition
  // and serves requests on its own thread; a request's (query, database)
  // signature picks its shard, so repeats always land where their plan
  // is cached.
  int num_shards = 4;
  // Compiled plans retained per shard (LRU past this).
  size_t plan_cache_capacity = 256;
  // Managers pooled per shard and kind (OBDD by variable order, SDD by
  // vtree); least-recently-used managers are destroyed past the cap,
  // dropping their cached plans.
  size_t manager_pool_capacity = 8;
  // Per-manager resident-node ceiling. When a policy check finds a
  // manager above it, the shard garbage-collects; if pinned plans alone
  // keep it above, LRU plans are evicted and collection reruns.
  int gc_live_node_ceiling = 1 << 20;
  // Requests between GC policy checks on a shard.
  int gc_check_interval = 16;
  // Ring-buffer window for latency percentiles.
  size_t latency_window = 8192;
  // Workers in the shared exec/ pool the service lends to shards for
  // cold compiles (parallel apply/compile inside the managers; see
  // src/exec/). 0 or 1 keeps every compile on the shard's own thread —
  // the sequential path. The pool is shared: shards borrow it for the
  // duration of one compile, so `exec_workers` caps the *extra*
  // parallelism a single cold compile can recruit, not a per-shard
  // reservation.
  int exec_workers = 0;
  // Node-allocation budget per cold compile (0 = unlimited). A compile
  // that trips it aborts cleanly, the shard reclaims the partial nodes,
  // and the degradation ladder retries the alternate route (OBDD <-> SDD)
  // once with a fresh budget before reporting RESOURCE_EXHAUSTED.
  uint64_t compile_node_budget = 0;
  // Deadline applied to requests that do not carry their own (0 = none).
  // Measured from batch admission; requests still queued past it are
  // failed with DEADLINE_EXCEEDED without compiling, and in-flight
  // compiles abort at the deadline.
  double default_deadline_ms = 0;
  // Admission control: jobs beyond this per-shard queue depth are shed
  // with UNAVAILABLE and a retry-after hint instead of queueing without
  // bound (0 = unbounded).
  size_t max_queue_depth = 0;
};

// One shard's counters (a consistent snapshot taken between requests).
struct ShardStats {
  uint64_t requests = 0;
  uint64_t failures = 0;
  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
  uint64_t plan_evictions = 0;
  // Evictions the GC policy targeted at the specific manager over its
  // resident-node ceiling (vs. global-LRU fallback shedding).
  uint64_t targeted_evictions = 0;
  uint64_t compiles = 0;
  uint64_t gc_runs = 0;
  uint64_t gc_reclaimed = 0;
  uint64_t manager_evictions = 0;
  // Requests failed with DEADLINE_EXCEEDED — expired while queued or
  // aborted mid-compile by their deadline.
  uint64_t timeouts = 0;
  // Jobs rejected at admission (queue depth over max_queue_depth).
  uint64_t sheds = 0;
  // Degradation-ladder retries on the alternate route after a budget
  // abort on the requested one.
  uint64_t fallbacks = 0;
  // Compiles aborted by the node-allocation budget.
  uint64_t budget_aborts = 0;
  int live_nodes = 0;       // resident nodes across the shard's managers
  int peak_live_nodes = 0;  // max of live_nodes over policy checks
};

// Aggregated service view (sums over shards + latency percentiles).
struct ServiceStats {
  ShardStats totals;
  int num_shards = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  // Garbage-collection pause percentiles (one sample per collection).
  double gc_pause_p50_ms = 0.0;
  double gc_pause_p99_ms = 0.0;

  double plan_hit_rate() const {
    const uint64_t lookups = totals.plan_hits + totals.plan_misses;
    return lookups == 0
               ? 0.0
               : static_cast<double>(totals.plan_hits) /
                     static_cast<double>(lookups);
  }
};

// Sliding-window latency reservoir shared by all shards. Record() is
// mutex-guarded (one short critical section per request); Percentile()
// copies the window and selects, so it is safe to call concurrently.
class LatencyRecorder {
 public:
  // A zero window is clamped to one sample (the ring-buffer arithmetic
  // below needs a non-empty window).
  explicit LatencyRecorder(size_t window = 8192)
      : window_(window == 0 ? 1 : window) {
    samples_.reserve(window_);
  }

  void Record(double ms) {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.size() < window_) {
      samples_.push_back(ms);
    } else {
      samples_[next_] = ms;
    }
    next_ = (next_ + 1) % window_;
  }

  // p in [0, 1]; 0 when no samples have been recorded.
  double Percentile(double p) const {
    std::vector<double> copy;
    {
      std::lock_guard<std::mutex> lock(mu_);
      copy = samples_;
    }
    if (copy.empty()) return 0.0;
    const size_t rank = std::min(
        copy.size() - 1, static_cast<size_t>(p * (copy.size() - 1) + 0.5));
    std::nth_element(copy.begin(), copy.begin() + rank, copy.end());
    return copy[rank];
  }

 private:
  mutable std::mutex mu_;
  size_t window_;
  size_t next_ = 0;
  std::vector<double> samples_;
};

}  // namespace ctsdd

#endif  // CTSDD_SERVE_SERVE_STATS_H_
