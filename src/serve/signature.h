// Content signatures for the serving layer's cache keys.
//
// A compiled plan is reusable exactly when the query shape and the
// database's *structure* (relations and tuples — not probabilities) are
// unchanged: tuple probabilities enter only at weighted-model-count time
// and come from each request, so weight-varied repeats of a query share
// one plan. Signatures are 64-bit content hashes; the plan cache keys on
// the (query, database) signature pair, making an accidental collision a
// 128-bit event — far below the cache's correctness horizon. Manager
// pools, where a collision would silently mix vtrees, key on exact
// serialized structure instead (VtreeKeyString / the order vector).

#ifndef CTSDD_SERVE_SIGNATURE_H_
#define CTSDD_SERVE_SIGNATURE_H_

#include <cstdint>
#include <string>

#include "db/database.h"
#include "db/query.h"
#include "vtree/vtree.h"

namespace ctsdd {

// Hash of the UCQ's shape: disjuncts, atoms (relation names and term
// lists), and inequalities, in the order given. Queries that differ only
// by a syntactic reordering hash differently — a cold compile, never a
// wrong answer.
uint64_t QuerySignature(const Ucq& query);

// Hash of the database's schema and tuple contents (relation names,
// arities, tuple ids and values). Tuple probabilities are deliberately
// excluded: they are per-request weights, not plan structure.
uint64_t DatabaseSignature(const Database& db);

// Exact structural serialization of a vtree ("(v" / "(l r)" nested
// form), used as the SDD manager-pool key.
std::string VtreeKeyString(const Vtree& vtree);

}  // namespace ctsdd

#endif  // CTSDD_SERVE_SIGNATURE_H_
