// Supervision layer for the query service: detection, containment, and
// repair of shard failures.
//
// The supervisor is one thread scanning the shard slots a few times per
// heartbeat window. Detection is heartbeat-based: every ShardWorker
// stamps an atomic progress counter at each job phase, so
//   - hung  = busy with unchanged progress for longer than
//     ServeOptions::heartbeat_window_ms (a stall anywhere in a phase —
//     the window must exceed the worst-case single compile), and
//   - dead  = the worker thread exited without being asked (a crash
//     simulated by the serve.shard.death fault site).
//
// Repair is a restart: a fresh worker (empty manager pools + plan
// cache) is swapped into the slot first, so new traffic flows
// immediately; then the old worker is retired — its queued jobs are
// stolen and failed typed UNAVAILABLE with a retry hint (never silently
// dropped), its in-flight job is failed the same way and its registered
// compile budget cancelled so a budget-bound hang unwinds, and the
// carcass is kept until its thread actually exits (joining a hung
// thread would block the supervisor) before its counters are folded
// into the retired totals. Recompiles on the fresh worker are
// pointer-identical by canonicity, the property the managers already
// enforce.
//
// The same scan drives hedged re-dispatch: any unclaimed job older than
// ServeOptions::hedge_after_ms is submitted once more to the next
// healthy sibling shard. The two copies race through JobState's claim;
// the first exact answer wins and cancels the loser's budget.

#ifndef CTSDD_SERVE_SUPERVISOR_H_
#define CTSDD_SERVE_SUPERVISOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "serve/serve_stats.h"
#include "serve/shard.h"

namespace ctsdd {

// One slot in the service's shard table. The worker pointer is swapped
// under the slot mutex on restart; clients copy the shared_ptr out and
// submit outside the lock (a retiring worker sheds the stray submit).
struct ShardSlot {
  mutable std::mutex mu;
  std::shared_ptr<ShardWorker> worker;

  std::shared_ptr<ShardWorker> Get() const {
    std::lock_guard<std::mutex> lock(mu);
    return worker;
  }
};

class Supervisor {
 public:
  using WorkerFactory = std::function<std::shared_ptr<ShardWorker>(int)>;

  // `slots` must outlive the supervisor (the service destroys the
  // supervisor first). `factory` builds a replacement worker for a slot.
  // `flight` (may be null) receives hang/death anomalies and one record
  // per request failed by a restart.
  Supervisor(const ServeOptions& options,
             std::vector<std::unique_ptr<ShardSlot>>* slots,
             SupervisionCounters* counters, obs::FlightRecorder* flight,
             WorkerFactory factory);
  ~Supervisor();  // stops the scan thread, then drains retired workers

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // Folds the counters of retired (restart-replaced) workers — both the
  // still-draining carcasses and the already-reaped totals — into
  // `*totals`, keeping service counters monotone across restarts.
  void AddRetiredStats(ShardStats* totals) const;

 private:
  struct Seen {
    uint64_t progress = 0;
    std::chrono::steady_clock::time_point at;
  };

  void Loop();
  void ScanOnce(std::chrono::steady_clock::time_point now);
  // Swaps a fresh worker into slot `i`, fails the old worker's queued +
  // in-flight jobs typed, and parks the carcass for reaping.
  void Restart(size_t i, std::shared_ptr<ShardWorker> old,
               std::chrono::steady_clock::time_point now);
  void DispatchHedges(std::chrono::steady_clock::time_point now);
  // Destroys retired workers whose threads have exited, folding their
  // final counters into reaped_totals_.
  void Reap();

  const ServeOptions options_;
  std::vector<std::unique_ptr<ShardSlot>>* const slots_;
  SupervisionCounters* const counters_;
  obs::FlightRecorder* const flight_;  // may be null
  const WorkerFactory factory_;

  std::vector<Seen> seen_;  // scan-thread only

  mutable std::mutex retired_mu_;
  std::vector<std::shared_ptr<ShardWorker>> retired_;
  ShardStats reaped_totals_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace ctsdd

#endif  // CTSDD_SERVE_SUPERVISOR_H_
