// Linear-time model counting and weighted model counting on deterministic
// decomposable NNF circuits — the tractability that motivates query
// compilation (Section 1): once a lineage is in deterministic
// decomposable form (C_{F,T}, S_{F,T}, an SDD, or an OBDD read as a
// circuit), probability computation is a single bottom-up pass with
// products at AND gates and sums at OR gates.
//
// Model counts additionally need gap factors 2^{|vars(g)| - |vars(h)|}
// where a child mentions fewer variables than its parent (implicit
// smoothing); probabilities need none, since each free variable
// contributes p + (1 - p) = 1.
//
// The functions below *trust* determinism/decomposability (they are
// guaranteed by construction for this library's compilers and checkable
// exactly with nnf/checks.h); on a non-deterministic OR the results are
// simply wrong, matching the paper's point that determinism is the
// feature that buys counting.

#ifndef CTSDD_NNF_WMC_H_
#define CTSDD_NNF_WMC_H_

#include <cstdint>
#include <map>

#include "circuit/circuit.h"
#include "util/status.h"

namespace ctsdd {

// Number of models of a deterministic decomposable NNF over exactly the
// variables appearing in it (vars(C)). Fails on circuits with > 62
// variables (count would overflow) or non-NNF shape.
StatusOr<uint64_t> CountModelsDetDecomposable(const Circuit& circuit);

// Probability of the circuit when variable v is independently true with
// probability prob.at(v) (variables absent from the map default to 0.5).
StatusOr<double> WmcDetDecomposable(const Circuit& circuit,
                                    const std::map<int, double>& prob);

}  // namespace ctsdd

#endif  // CTSDD_NNF_WMC_H_
