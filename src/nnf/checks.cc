#include "nnf/checks.h"

#include <algorithm>

#include "nnf/nnf.h"
#include "util/logging.h"

namespace ctsdd {

bool IsDecomposable(const Circuit& circuit) {
  for (int id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    if (g.kind != GateKind::kAnd) continue;
    std::vector<std::vector<int>> var_sets;
    var_sets.reserve(g.inputs.size());
    for (int input : g.inputs) {
      var_sets.push_back(circuit.VarsBelow(input));
    }
    for (size_t i = 0; i < var_sets.size(); ++i) {
      for (size_t j = i + 1; j < var_sets.size(); ++j) {
        std::vector<int> common;
        std::set_intersection(var_sets[i].begin(), var_sets[i].end(),
                              var_sets[j].begin(), var_sets[j].end(),
                              std::back_inserter(common));
        if (!common.empty()) return false;
      }
    }
  }
  return true;
}

bool IsDeterministic(const Circuit& circuit) {
  // Pairwise emptiness of sat(C_h) ∩ sat(C_h'), each over var(C): two
  // subcircuits conflict iff their conjunction (over the union of their
  // own variables) is satisfiable.
  std::vector<BoolFunc> funcs = AllGateFuncs(circuit);
  for (int id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    if (g.kind != GateKind::kOr) continue;
    for (size_t i = 0; i < g.inputs.size(); ++i) {
      for (size_t j = i + 1; j < g.inputs.size(); ++j) {
        const BoolFunc conflict = funcs[g.inputs[i]] & funcs[g.inputs[j]];
        if (!conflict.IsConstantFalse()) return false;
      }
    }
  }
  return true;
}

bool IsStructuredBy(const Circuit& circuit, const Vtree& vtree) {
  for (int id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    if (g.kind != GateKind::kAnd) continue;
    if (g.inputs.size() != 2) return false;
    if (StructuringNode(circuit, vtree, id) < 0) return false;
  }
  return true;
}

Status CheckDeterministicStructuredNnf(const Circuit& circuit,
                                       const Vtree& vtree) {
  CTSDD_RETURN_IF_ERROR(circuit.Validate());
  if (!circuit.IsNnf()) return Status::Internal("not in NNF");
  if (!IsDecomposable(circuit)) return Status::Internal("not decomposable");
  if (!IsStructuredBy(circuit, vtree)) {
    return Status::Internal("not structured by the vtree");
  }
  if (!IsDeterministic(circuit)) return Status::Internal("not deterministic");
  return Status::Ok();
}

}  // namespace ctsdd
