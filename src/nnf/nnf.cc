#include "nnf/nnf.h"

#include <algorithm>

#include "util/logging.h"

namespace ctsdd {

BoolFunc GateFunc(const Circuit& circuit, int gate) {
  // Restrict evaluation to the subcircuit rooted at `gate`.
  const std::vector<int> vars = circuit.VarsBelow(gate);
  CTSDD_CHECK_LE(static_cast<int>(vars.size()), BoolFunc::kMaxVars);
  Circuit sub = circuit;  // evaluation only follows gates below `gate`
  sub.SetOutput(gate);
  return BoolFunc::FromCircuitOver(sub, vars);
}

std::vector<BoolFunc> AllGateFuncs(const Circuit& circuit) {
  std::vector<BoolFunc> funcs;
  funcs.reserve(circuit.num_gates());
  for (int id = 0; id < circuit.num_gates(); ++id) {
    funcs.push_back(GateFunc(circuit, id));
  }
  return funcs;
}

int StructuringNode(const Circuit& circuit, const Vtree& vtree, int gate) {
  const Gate& g = circuit.gate(gate);
  if (g.kind != GateKind::kAnd || g.inputs.size() != 2) return -1;
  const std::vector<int> left_vars = circuit.VarsBelow(g.inputs[0]);
  const std::vector<int> right_vars = circuit.VarsBelow(g.inputs[1]);
  auto contained = [&](const std::vector<int>& vars, int vnode) {
    const auto& below = vtree.VarsBelow(vnode);
    return std::includes(below.begin(), below.end(), vars.begin(),
                         vars.end());
  };
  int best = -1;
  for (int v = 0; v < vtree.num_nodes(); ++v) {
    if (vtree.is_leaf(v)) continue;
    if (!vtree.IsAncestorOrSelf(vtree.root(), v)) continue;
    if (contained(left_vars, vtree.left(v)) &&
        contained(right_vars, vtree.right(v))) {
      if (best < 0 || vtree.depth(v) > vtree.depth(best)) best = v;
    }
  }
  return best;
}

std::vector<int> StructuredGateProfile(const Circuit& circuit,
                                       const Vtree& vtree) {
  std::vector<int> profile(vtree.num_nodes(), 0);
  for (int id = 0; id < circuit.num_gates(); ++id) {
    const int v = StructuringNode(circuit, vtree, id);
    if (v >= 0) ++profile[v];
  }
  return profile;
}

}  // namespace ctsdd
