#include "nnf/rectangle_cover.h"

#include <algorithm>

#include "func/factor.h"
#include "util/logging.h"

namespace ctsdd {

std::vector<Rectangle> CanonicalRectangleCover(const BoolFunc& f,
                                               const std::vector<int>& y) {
  // Complement of y within f's variables.
  std::vector<int> y_sorted = y;
  std::sort(y_sorted.begin(), y_sorted.end());
  std::vector<int> rest;
  for (int v : f.vars()) {
    if (!std::binary_search(y_sorted.begin(), y_sorted.end(), v)) {
      rest.push_back(v);
    }
  }
  const FactorSet fy = ComputeFactors(f, y_sorted);
  const FactorSet frest = ComputeFactors(f, rest);
  // Pairs whose rectangle lies inside F: test a sample point of the
  // rectangle (Lemma 2 makes the sample decisive).
  std::vector<Rectangle> cover;
  for (int i = 0; i < fy.size(); ++i) {
    const int64_t bi = fy.factors[i].AnyModelIndex();
    CTSDD_CHECK_GE(bi, 0);
    for (int j = 0; j < frest.size(); ++j) {
      const int64_t bj = frest.factors[j].AnyModelIndex();
      CTSDD_CHECK_GE(bj, 0);
      // Combine (bi over y-part, bj over rest) into an index of f.
      uint32_t index = 0;
      for (int pos = 0; pos < f.num_vars(); ++pos) {
        const int var = f.vars()[pos];
        const auto iy = std::lower_bound(fy.y_vars.begin(), fy.y_vars.end(),
                                         var);
        bool bit;
        if (iy != fy.y_vars.end() && *iy == var) {
          bit = (bi >> (iy - fy.y_vars.begin())) & 1;
        } else {
          const auto ir = std::lower_bound(frest.y_vars.begin(),
                                           frest.y_vars.end(), var);
          CTSDD_CHECK(ir != frest.y_vars.end() && *ir == var);
          bit = (bj >> (ir - frest.y_vars.begin())) & 1;
        }
        if (bit) index |= (1u << pos);
      }
      if (f.EvalIndex(index)) {
        cover.push_back({fy.factors[i], frest.factors[j]});
      }
    }
  }
  return cover;
}

Status ValidateDisjointCover(const BoolFunc& f, const std::vector<int>& y,
                             const std::vector<Rectangle>& cover) {
  (void)y;
  // Union of rectangles equals f and rectangles are pairwise disjoint:
  // check by accumulating the union and intersecting incrementally.
  BoolFunc unioned = BoolFunc::ConstantOver(f.vars(), false);
  for (const Rectangle& r : cover) {
    BoolFunc rect = (r.row_part & r.col_part).ExpandTo(f.vars());
    const BoolFunc overlap = unioned & rect;
    if (!overlap.IsConstantFalse()) {
      return Status::Internal("rectangles overlap");
    }
    unioned = unioned | rect;
  }
  if (!(unioned == f.ExpandTo(unioned.vars()))) {
    return Status::Internal("cover does not equal the function");
  }
  return Status::Ok();
}

}  // namespace ctsdd
