// Helpers for viewing circuits as (structured) NNFs: per-gate semantic
// functions and per-vtree-node gate accounting, shared by the checks,
// width definitions, and rectangle-cover machinery.

#ifndef CTSDD_NNF_NNF_H_
#define CTSDD_NNF_NNF_H_

#include <vector>

#include "circuit/circuit.h"
#include "func/bool_func.h"
#include "vtree/vtree.h"

namespace ctsdd {

// The function computed by the subcircuit rooted at `gate`, over exactly
// var(C_g). Exponential in |var(C_g)|; intended for verification.
BoolFunc GateFunc(const Circuit& circuit, int gate);

// Functions of all gates at once (each over its own variable set).
std::vector<BoolFunc> AllGateFuncs(const Circuit& circuit);

// For each internal vtree node v (indexed by vtree node id), the number of
// fanin-2 AND gates of the circuit structured by v — i.e., gates g with
// wires from h, h' such that var(C_h) ⊆ X_{left(v)} and
// var(C_h') ⊆ X_{right(v)}. A gate structured by several nodes is counted
// at its deepest structuring node. Gates structured by no node get -1 from
// StructuringNode and are not counted.
std::vector<int> StructuredGateProfile(const Circuit& circuit,
                                       const Vtree& vtree);

// The deepest vtree node structuring AND gate `gate`, or -1.
int StructuringNode(const Circuit& circuit, const Vtree& vtree, int gate);

}  // namespace ctsdd

#endif  // CTSDD_NNF_NNF_H_
