// Exact verification of the circuit properties of Section 2.1:
// negation normal form, decomposability, determinism, structuredness.
//
// Determinism is co-NP-hard in general; these checks are semantic (truth
// table based) and intended for the verification of compiled outputs with
// at most BoolFunc::kMaxVars variables, which covers the test regime.

#ifndef CTSDD_NNF_CHECKS_H_
#define CTSDD_NNF_CHECKS_H_

#include "circuit/circuit.h"
#include "util/status.h"
#include "vtree/vtree.h"

namespace ctsdd {

// Every AND gate's wiring circuits are defined on pairwise disjoint
// variable sets.
bool IsDecomposable(const Circuit& circuit);

// Every OR gate's wiring circuits have pairwise disjoint model sets, each
// viewed as a circuit over var(C) (exact, exponential in var counts).
bool IsDeterministic(const Circuit& circuit);

// Every AND gate has fanin 2 and is structured by some node of `vtree`.
bool IsStructuredBy(const Circuit& circuit, const Vtree& vtree);

// Convenience: NNF + decomposable + deterministic + structured.
Status CheckDeterministicStructuredNnf(const Circuit& circuit,
                                       const Vtree& vtree);

}  // namespace ctsdd

#endif  // CTSDD_NNF_CHECKS_H_
