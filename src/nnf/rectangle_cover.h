// Disjoint rectangle covers (Section 2.2, Theorem 1).
//
// For a partition (Y, X \ Y) of F's variables, the factorized implicants
// of F's own top-level factor give a canonical disjoint rectangle cover
// (Lemma 3 applied with Y' = X \ Y and H the factor of F relative to X
// whose cofactor is the constant-1 function). Theorem 1 says any
// deterministic structured NNF computing F and respecting a vtree with a
// node of scope Y yields a cover of size at most |C|; Theorem 2 bounds any
// such cover from below by the rank of the communication matrix.

#ifndef CTSDD_NNF_RECTANGLE_COVER_H_
#define CTSDD_NNF_RECTANGLE_COVER_H_

#include <utility>
#include <vector>

#include "func/bool_func.h"
#include "util/status.h"

namespace ctsdd {

// One combinatorial rectangle A(Y) x B(X \ Y).
struct Rectangle {
  BoolFunc row_part;  // over Y
  BoolFunc col_part;  // over X \ Y
};

// The canonical factor-based disjoint rectangle cover of F with underlying
// partition (Y ∩ X, X \ Y).
std::vector<Rectangle> CanonicalRectangleCover(const BoolFunc& f,
                                               const std::vector<int>& y);

// Verifies that `cover` is a disjoint rectangle cover of f (each rectangle
// with underlying partition (Y, X \ Y)).
Status ValidateDisjointCover(const BoolFunc& f, const std::vector<int>& y,
                             const std::vector<Rectangle>& cover);

}  // namespace ctsdd

#endif  // CTSDD_NNF_RECTANGLE_COVER_H_
