#include "nnf/wmc.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace ctsdd {
namespace {

// Sorted variable sets of every gate, computed in one bottom-up pass.
std::vector<std::vector<int>> GateVarSets(const Circuit& circuit) {
  std::vector<std::vector<int>> vars(circuit.num_gates());
  for (int id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    if (g.kind == GateKind::kVar) {
      vars[id] = {g.var};
      continue;
    }
    std::vector<int> merged;
    for (int input : g.inputs) {
      std::vector<int> next;
      std::set_union(merged.begin(), merged.end(), vars[input].begin(),
                     vars[input].end(), std::back_inserter(next));
      merged = std::move(next);
    }
    vars[id] = std::move(merged);
  }
  return vars;
}

}  // namespace

StatusOr<uint64_t> CountModelsDetDecomposable(const Circuit& circuit) {
  CTSDD_RETURN_IF_ERROR(circuit.Validate());
  if (!circuit.IsNnf()) {
    return Status::FailedPrecondition("circuit is not in NNF");
  }
  const auto vars = GateVarSets(circuit);
  const int total_vars =
      static_cast<int>(vars[circuit.output()].size());
  if (total_vars > 62) {
    return Status::ResourceExhausted("too many variables for uint64 count");
  }
  std::vector<uint64_t> count(circuit.num_gates(), 0);
  for (int id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    switch (g.kind) {
      case GateKind::kConstFalse:
        count[id] = 0;
        break;
      case GateKind::kConstTrue:
        count[id] = 1;  // over the empty variable set
        break;
      case GateKind::kVar:
        count[id] = 1;
        break;
      case GateKind::kNot:
        // NNF: input is a variable or constant.
        count[id] = circuit.gate(g.inputs[0]).kind == GateKind::kVar
                        ? 1
                        : (count[g.inputs[0]] == 0 ? 1 : 0);
        break;
      case GateKind::kAnd: {
        // Decomposable: children have disjoint variable sets; models
        // multiply (children jointly cover vars[id] exactly).
        uint64_t product = 1;
        for (int input : g.inputs) product *= count[input];
        count[id] = product;
        break;
      }
      case GateKind::kOr: {
        // Deterministic: children have disjoint model sets; models add
        // after scaling each child to the gate's variable set.
        uint64_t total = 0;
        for (int input : g.inputs) {
          const int gap = static_cast<int>(vars[id].size()) -
                          static_cast<int>(vars[input].size());
          total += count[input] << gap;
        }
        count[id] = total;
        break;
      }
    }
  }
  return count[circuit.output()];
}

StatusOr<double> WmcDetDecomposable(const Circuit& circuit,
                                    const std::map<int, double>& prob) {
  CTSDD_RETURN_IF_ERROR(circuit.Validate());
  if (!circuit.IsNnf()) {
    return Status::FailedPrecondition("circuit is not in NNF");
  }
  auto prob_of = [&prob](int var) {
    const auto it = prob.find(var);
    return it == prob.end() ? 0.5 : it->second;
  };
  std::vector<double> weight(circuit.num_gates(), 0.0);
  for (int id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    switch (g.kind) {
      case GateKind::kConstFalse:
        weight[id] = 0.0;
        break;
      case GateKind::kConstTrue:
        weight[id] = 1.0;
        break;
      case GateKind::kVar:
        weight[id] = prob_of(g.var);
        break;
      case GateKind::kNot: {
        const Gate& in = circuit.gate(g.inputs[0]);
        weight[id] = in.kind == GateKind::kVar ? 1.0 - prob_of(in.var)
                                               : 1.0 - weight[g.inputs[0]];
        break;
      }
      case GateKind::kAnd: {
        double product = 1.0;
        for (int input : g.inputs) product *= weight[input];
        weight[id] = product;
        break;
      }
      case GateKind::kOr: {
        // Free variables of a child contribute factor 1 each, so no gap
        // correction is needed for probabilities.
        double total = 0.0;
        for (int input : g.inputs) total += weight[input];
        weight[id] = total;
        break;
      }
    }
  }
  return weight[circuit.output()];
}

}  // namespace ctsdd
