// Variable trees (vtrees): rooted, ordered, binary trees whose leaves
// correspond bijectively to variables (Section 2.1). Vtrees structure both
// the paper's canonical deterministic structured NNFs and SDDs; a
// right-linear vtree recovers OBDDs with the left-to-right leaf order as
// the variable order.

#ifndef CTSDD_VTREE_VTREE_H_
#define CTSDD_VTREE_VTREE_H_

#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace ctsdd {

class Vtree {
 public:
  Vtree() = default;

  // --- Bottom-up construction ---
  int AddLeaf(int var);
  int AddInternal(int left, int right);
  // Sets the root and freezes the tree: computes parents, depths, and the
  // sorted variable set below every node. Must be called before queries.
  void SetRoot(int node);

  // --- Factories ---
  // Right-linear vtree: ((x1, (x2, (x3, ...)))) — every left child is a
  // leaf; corresponds to an OBDD with variable order `vars`.
  static Vtree RightLinear(const std::vector<int>& vars);
  // Left-linear: mirror image of right-linear.
  static Vtree LeftLinear(const std::vector<int>& vars);
  // Balanced vtree over `vars` (split at midpoints).
  static Vtree Balanced(const std::vector<int>& vars);
  // Uniformly random binary shape over a random permutation of `vars`.
  static Vtree Random(const std::vector<int>& vars, Rng* rng);

  // --- Queries (valid after SetRoot) ---
  int num_nodes() const { return static_cast<int>(var_.size()); }
  int num_leaves() const;
  int root() const { return root_; }
  bool is_leaf(int node) const { return var_[node] >= 0; }
  int var(int node) const { return var_[node]; }
  int left(int node) const { return left_[node]; }
  int right(int node) const { return right_[node]; }
  int parent(int node) const { return parent_[node]; }
  int depth(int node) const { return depth_[node]; }

  // X_v: sorted global variable ids at the leaves of the subtree at `node`.
  const std::vector<int>& VarsBelow(int node) const {
    return vars_below_[node];
  }
  // All variables (VarsBelow(root)).
  const std::vector<int>& Vars() const { return vars_below_[root_]; }

  // The leaf node carrying variable `var`, or -1.
  int LeafOf(int var) const;

  // True if `ancestor` is `node` or an ancestor of `node`.
  bool IsAncestorOrSelf(int ancestor, int node) const;

  // Lowest common ancestor of two nodes.
  int Lca(int a, int b) const;

  // True if every left child is a leaf (the OBDD case).
  bool IsRightLinear() const;

  // Leaves in left-to-right order (the OBDD variable order when
  // right-linear).
  std::vector<int> LeafOrder() const;

  // Internal nodes in a bottom-up (children before parents) order.
  std::vector<int> InternalNodesBottomUp() const;

  Status Validate() const;

  std::string DebugString() const;

 private:
  void ComputeBelow(int node);

  std::vector<int> var_;     // leaf variable or -1 for internal nodes
  std::vector<int> left_;    // -1 for leaves
  std::vector<int> right_;   // -1 for leaves
  std::vector<int> parent_;  // -1 for root (set by SetRoot)
  std::vector<int> depth_;
  std::vector<std::vector<int>> vars_below_;
  int root_ = -1;
};

}  // namespace ctsdd

#endif  // CTSDD_VTREE_VTREE_H_
