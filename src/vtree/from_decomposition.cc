#include "vtree/from_decomposition.h"

#include <functional>

#include "circuit/primal_graph.h"
#include "graph/elimination.h"
#include "util/logging.h"

namespace ctsdd {

StatusOr<Vtree> VtreeFromNiceDecomposition(
    const Circuit& circuit, const NiceTreeDecomposition& nice) {
  // Recursively combine: a forget node for a variable gate contributes a
  // leaf; joins combine both sides; everything else passes through. The
  // result is already dummy-free (pruning is implicit: decomposition leaves
  // contribute nothing).
  Vtree vt;
  int vars_attached = 0;
  std::function<int(int)> build = [&](int node) -> int {
    const auto& nd = nice.nodes[node];
    int below = -1;
    for (int child : nd.children) {
      const int sub = build(child);
      if (sub < 0) continue;
      below = (below < 0) ? sub : vt.AddInternal(below, sub);
    }
    if (nd.kind == NiceNodeKind::kForget && nd.vertex >= 0 &&
        nd.vertex < circuit.num_gates() &&
        circuit.gate(nd.vertex).kind == GateKind::kVar) {
      const int leaf = vt.AddLeaf(circuit.gate(nd.vertex).var);
      ++vars_attached;
      below = (below < 0) ? leaf : vt.AddInternal(below, leaf);
    }
    return below;
  };
  const int root = build(nice.root);
  const int num_circuit_vars = static_cast<int>(circuit.Vars().size());
  if (vars_attached != num_circuit_vars) {
    return Status::InvalidArgument(
        "nice decomposition forgets " + std::to_string(vars_attached) +
        " variable gates; circuit has " + std::to_string(num_circuit_vars));
  }
  if (root < 0) {
    return Status::InvalidArgument("circuit has no variables");
  }
  vt.SetRoot(root);
  return vt;
}

StatusOr<Vtree> VtreeForCircuit(const Circuit& circuit) {
  const Graph primal = PrimalGraph(circuit);
  const TreeDecomposition td = HeuristicDecomposition(primal);
  return VtreeFromNiceDecomposition(circuit, MakeNice(td));
}

StatusOr<Vtree> VtreeForCircuitWithOrder(const Circuit& circuit,
                                         const std::vector<int>& gate_order) {
  const Graph primal = PrimalGraph(circuit);
  const TreeDecomposition td = DecompositionFromOrder(primal, gate_order);
  return VtreeFromNiceDecomposition(circuit, MakeNice(td));
}

}  // namespace ctsdd
