// The Lemma 1 vtree construction: from a (nice) tree decomposition of a
// circuit's gates to a vtree for the circuit's variables.
//
// The paper attaches a fresh leaf for variable x to the unique node of the
// nice decomposition that forgets x's input gate, and pads the remaining
// leaves with dummy variables. We additionally prune the dummy leaves and
// contract unary chains, which only removes vtree nodes and leaves every
// surviving node's variable set X_v unchanged — so the factor-width bound
// |factors(F, X_v)| <= 2^{(k+1)2^k} of Lemma 1 is preserved.

#ifndef CTSDD_VTREE_FROM_DECOMPOSITION_H_
#define CTSDD_VTREE_FROM_DECOMPOSITION_H_

#include "circuit/circuit.h"
#include "graph/tree_decomposition.h"
#include "vtree/vtree.h"

namespace ctsdd {

// Builds the Lemma-1 vtree for `circuit` from a nice tree decomposition of
// its primal graph (vertex i of the decomposition = gate i). Fails if some
// circuit variable's gate is never forgotten (i.e., `nice` is not a valid
// nice decomposition of the circuit's gates).
StatusOr<Vtree> VtreeFromNiceDecomposition(const Circuit& circuit,
                                           const NiceTreeDecomposition& nice);

// Convenience: heuristic (min-fill) tree decomposition of the circuit's
// primal graph, made nice, then the Lemma-1 vtree.
StatusOr<Vtree> VtreeForCircuit(const Circuit& circuit);

// Same, but from an explicit elimination order of the circuit's gates.
StatusOr<Vtree> VtreeForCircuitWithOrder(const Circuit& circuit,
                                         const std::vector<int>& gate_order);

}  // namespace ctsdd

#endif  // CTSDD_VTREE_FROM_DECOMPOSITION_H_
