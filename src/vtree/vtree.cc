#include "vtree/vtree.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "util/logging.h"

namespace ctsdd {

int Vtree::AddLeaf(int var) {
  CTSDD_CHECK_GE(var, 0);
  var_.push_back(var);
  left_.push_back(-1);
  right_.push_back(-1);
  parent_.push_back(-1);
  depth_.push_back(0);
  vars_below_.emplace_back();
  return num_nodes() - 1;
}

int Vtree::AddInternal(int left, int right) {
  CTSDD_CHECK_GE(left, 0);
  CTSDD_CHECK_LT(left, num_nodes());
  CTSDD_CHECK_GE(right, 0);
  CTSDD_CHECK_LT(right, num_nodes());
  CTSDD_CHECK_NE(left, right);
  var_.push_back(-1);
  left_.push_back(left);
  right_.push_back(right);
  parent_.push_back(-1);
  depth_.push_back(0);
  vars_below_.emplace_back();
  return num_nodes() - 1;
}

void Vtree::ComputeBelow(int node) {
  if (is_leaf(node)) {
    vars_below_[node] = {var_[node]};
    return;
  }
  const int l = left_[node];
  const int r = right_[node];
  parent_[l] = node;
  parent_[r] = node;
  depth_[l] = depth_[node] + 1;
  depth_[r] = depth_[node] + 1;
  ComputeBelow(l);
  ComputeBelow(r);
  vars_below_[node].clear();
  std::merge(vars_below_[l].begin(), vars_below_[l].end(),
             vars_below_[r].begin(), vars_below_[r].end(),
             std::back_inserter(vars_below_[node]));
}

void Vtree::SetRoot(int node) {
  CTSDD_CHECK_GE(node, 0);
  CTSDD_CHECK_LT(node, num_nodes());
  root_ = node;
  parent_[root_] = -1;
  depth_[root_] = 0;
  ComputeBelow(root_);
  CTSDD_CHECK_OK(Validate());
}

Vtree Vtree::RightLinear(const std::vector<int>& vars) {
  CTSDD_CHECK(!vars.empty());
  Vtree vt;
  int node = vt.AddLeaf(vars.back());
  for (int i = static_cast<int>(vars.size()) - 2; i >= 0; --i) {
    node = vt.AddInternal(vt.AddLeaf(vars[i]), node);
  }
  vt.SetRoot(node);
  return vt;
}

Vtree Vtree::LeftLinear(const std::vector<int>& vars) {
  CTSDD_CHECK(!vars.empty());
  Vtree vt;
  int node = vt.AddLeaf(vars.front());
  for (size_t i = 1; i < vars.size(); ++i) {
    node = vt.AddInternal(node, vt.AddLeaf(vars[i]));
  }
  vt.SetRoot(node);
  return vt;
}

Vtree Vtree::Balanced(const std::vector<int>& vars) {
  CTSDD_CHECK(!vars.empty());
  Vtree vt;
  std::function<int(int, int)> build = [&](int lo, int hi) -> int {
    if (lo + 1 == hi) return vt.AddLeaf(vars[lo]);
    const int mid = (lo + hi) / 2;
    const int l = build(lo, mid);
    const int r = build(mid, hi);
    return vt.AddInternal(l, r);
  };
  vt.SetRoot(build(0, static_cast<int>(vars.size())));
  return vt;
}

Vtree Vtree::Random(const std::vector<int>& vars, Rng* rng) {
  CTSDD_CHECK(!vars.empty());
  const std::vector<int> perm = rng->Permutation(static_cast<int>(vars.size()));
  Vtree vt;
  // Start with leaves in permuted order; repeatedly merge a random adjacent
  // pair, producing a uniform-ish random shape.
  std::vector<int> roots;
  roots.reserve(vars.size());
  for (int p : perm) roots.push_back(vt.AddLeaf(vars[p]));
  while (roots.size() > 1) {
    const size_t i = rng->NextBelow(roots.size() - 1);
    const int merged = vt.AddInternal(roots[i], roots[i + 1]);
    roots[i] = merged;
    roots.erase(roots.begin() + i + 1);
  }
  vt.SetRoot(roots[0]);
  return vt;
}

int Vtree::num_leaves() const {
  int count = 0;
  for (int v : var_) count += (v >= 0);
  return count;
}

int Vtree::LeafOf(int var) const {
  for (int node = 0; node < num_nodes(); ++node) {
    if (var_[node] == var) return node;
  }
  return -1;
}

bool Vtree::IsAncestorOrSelf(int ancestor, int node) const {
  while (node >= 0) {
    if (node == ancestor) return true;
    node = parent_[node];
  }
  return false;
}

int Vtree::Lca(int a, int b) const {
  while (depth_[a] > depth_[b]) a = parent_[a];
  while (depth_[b] > depth_[a]) b = parent_[b];
  while (a != b) {
    a = parent_[a];
    b = parent_[b];
  }
  return a;
}

bool Vtree::IsRightLinear() const {
  std::vector<int> stack = {root_};
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    if (is_leaf(node)) continue;
    if (!is_leaf(left_[node])) return false;
    stack.push_back(right_[node]);
  }
  return true;
}

std::vector<int> Vtree::LeafOrder() const {
  std::vector<int> order;
  std::function<void(int)> walk = [&](int node) {
    if (is_leaf(node)) {
      order.push_back(var_[node]);
      return;
    }
    walk(left_[node]);
    walk(right_[node]);
  };
  walk(root_);
  return order;
}

std::vector<int> Vtree::InternalNodesBottomUp() const {
  std::vector<int> order;
  std::function<void(int)> walk = [&](int node) {
    if (is_leaf(node)) return;
    walk(left_[node]);
    walk(right_[node]);
    order.push_back(node);
  };
  walk(root_);
  return order;
}

Status Vtree::Validate() const {
  if (root_ < 0) return Status::FailedPrecondition("root not set");
  // Reachable nodes form a binary tree; leaves carry distinct variables.
  std::vector<bool> seen(num_nodes(), false);
  std::vector<int> stack = {root_};
  std::vector<int> leaf_vars;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    if (seen[node]) return Status::Internal("vtree node reached twice");
    seen[node] = true;
    if (is_leaf(node)) {
      leaf_vars.push_back(var_[node]);
    } else {
      stack.push_back(left_[node]);
      stack.push_back(right_[node]);
    }
  }
  std::sort(leaf_vars.begin(), leaf_vars.end());
  if (std::adjacent_find(leaf_vars.begin(), leaf_vars.end()) !=
      leaf_vars.end()) {
    return Status::Internal("duplicate variable in vtree");
  }
  return Status::Ok();
}

std::string Vtree::DebugString() const {
  std::ostringstream os;
  std::function<void(int)> walk = [&](int node) {
    if (is_leaf(node)) {
      os << "x" << var_[node];
      return;
    }
    os << "(";
    walk(left_[node]);
    os << " ";
    walk(right_[node]);
    os << ")";
  };
  if (root_ < 0) {
    os << "<unrooted>";
  } else {
    walk(root_);
  }
  return os.str();
}

}  // namespace ctsdd
