#include "lowerbound/comm_matrix.h"

#include <algorithm>

#include "util/logging.h"

namespace ctsdd {

CommMatrix BuildCommMatrix(const BoolFunc& f, const std::vector<int>& x1_vars,
                           const std::vector<int>& x2_vars) {
  std::vector<int> x1 = x1_vars;
  std::vector<int> x2 = x2_vars;
  std::sort(x1.begin(), x1.end());
  std::sort(x2.begin(), x2.end());
  CTSDD_CHECK_LE(x1.size(), 12u);
  CTSDD_CHECK_LE(x2.size(), 12u);
  // The two blocks must partition f's variables.
  std::vector<int> all = x1;
  all.insert(all.end(), x2.begin(), x2.end());
  std::sort(all.begin(), all.end());
  CTSDD_CHECK(all == f.vars()) << "(X1, X2) must partition the variables";

  // Positions of x1/x2 variables within f's variable list.
  std::vector<int> pos1;
  std::vector<int> pos2;
  for (int i = 0; i < f.num_vars(); ++i) {
    if (std::binary_search(x1.begin(), x1.end(), f.vars()[i])) {
      pos1.push_back(i);
    } else {
      pos2.push_back(i);
    }
  }

  CommMatrix m;
  m.rows = 1 << x1.size();
  m.cols = 1 << x2.size();
  m.data.assign(static_cast<size_t>(m.rows) * m.cols, 0.0);
  for (uint32_t index = 0; index < f.table_size(); ++index) {
    uint32_t r = 0;
    for (size_t i = 0; i < pos1.size(); ++i) {
      r |= ((index >> pos1[i]) & 1u) << i;
    }
    uint32_t c = 0;
    for (size_t i = 0; i < pos2.size(); ++i) {
      c |= ((index >> pos2[i]) & 1u) << i;
    }
    m.at(static_cast<int>(r), static_cast<int>(c)) =
        f.EvalIndex(index) ? 1.0 : 0.0;
  }
  return m;
}

}  // namespace ctsdd
