// Real matrix rank by Gaussian elimination with partial pivoting, and the
// Theorem 2 rectangle-cover lower bounds built on it. For the 0/1 matrices
// arising here the double-precision computation is exact in practice and
// is cross-checked against closed forms (e.g., rank(cm(D_n)) = 2^n, (8)).

#ifndef CTSDD_LOWERBOUND_RANK_H_
#define CTSDD_LOWERBOUND_RANK_H_

#include <vector>

#include "func/bool_func.h"
#include "lowerbound/comm_matrix.h"

namespace ctsdd {

// Rank of the matrix (destructive on a copy).
int MatrixRank(CommMatrix matrix);

// rank(cm(F, X1, X2)): Theorem 2 lower bound on disjoint rectangle covers
// of F with underlying partition (X1, X2).
int CoverLowerBound(const BoolFunc& f, const std::vector<int>& x1_vars,
                    const std::vector<int>& x2_vars);

// Convenience for the disjointness function (7): builds D_n and returns
// rank(cm(D_n, X_n, Y_n)) — equation (8) says this is exactly 2^n.
int DisjointnessRank(int n);

}  // namespace ctsdd

#endif  // CTSDD_LOWERBOUND_RANK_H_
