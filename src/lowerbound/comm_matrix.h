// Communication matrices (Section 2.2): cm(F, X1, X2) has rows indexed by
// assignments of X1, columns by assignments of X2, and entry F(b1 ∪ b2);
// its real rank lower-bounds the size of any disjoint rectangle cover with
// underlying partition (X1, X2) (Theorem 2), which in turn lower-bounds
// deterministic structured NNF size via Theorem 1.

#ifndef CTSDD_LOWERBOUND_COMM_MATRIX_H_
#define CTSDD_LOWERBOUND_COMM_MATRIX_H_

#include <vector>

#include "func/bool_func.h"

namespace ctsdd {

// A dense 0/1 matrix stored row-major as doubles (for rank computation).
struct CommMatrix {
  int rows = 0;
  int cols = 0;
  std::vector<double> data;

  double& at(int r, int c) { return data[static_cast<size_t>(r) * cols + c]; }
  double at(int r, int c) const {
    return data[static_cast<size_t>(r) * cols + c];
  }
};

// Builds cm(F, X1, X2) where x1_vars ∪ x2_vars must partition f's
// variables. Row index bit i corresponds to the i-th variable of x1_vars
// in sorted order (BoolFunc convention), likewise for columns.
// Requires |x1_vars| <= 12 and |x2_vars| <= 12.
CommMatrix BuildCommMatrix(const BoolFunc& f, const std::vector<int>& x1_vars,
                           const std::vector<int>& x2_vars);

}  // namespace ctsdd

#endif  // CTSDD_LOWERBOUND_COMM_MATRIX_H_
