#include "lowerbound/rank.h"

#include <algorithm>
#include <cmath>

#include "circuit/families.h"
#include "util/logging.h"

namespace ctsdd {

int MatrixRank(CommMatrix matrix) {
  constexpr double kTolerance = 1e-9;
  int rank = 0;
  int pivot_row = 0;
  for (int col = 0; col < matrix.cols && pivot_row < matrix.rows; ++col) {
    // Partial pivoting.
    int best = pivot_row;
    for (int r = pivot_row + 1; r < matrix.rows; ++r) {
      if (std::fabs(matrix.at(r, col)) > std::fabs(matrix.at(best, col))) {
        best = r;
      }
    }
    if (std::fabs(matrix.at(best, col)) < kTolerance) continue;
    if (best != pivot_row) {
      for (int c = col; c < matrix.cols; ++c) {
        std::swap(matrix.at(best, c), matrix.at(pivot_row, c));
      }
    }
    const double pivot = matrix.at(pivot_row, col);
    for (int r = pivot_row + 1; r < matrix.rows; ++r) {
      const double factor = matrix.at(r, col) / pivot;
      if (factor == 0.0) continue;
      for (int c = col; c < matrix.cols; ++c) {
        matrix.at(r, c) -= factor * matrix.at(pivot_row, c);
      }
    }
    ++pivot_row;
    ++rank;
  }
  return rank;
}

int CoverLowerBound(const BoolFunc& f, const std::vector<int>& x1_vars,
                    const std::vector<int>& x2_vars) {
  return MatrixRank(BuildCommMatrix(f, x1_vars, x2_vars));
}

int DisjointnessRank(int n) {
  CTSDD_CHECK_GE(n, 1);
  CTSDD_CHECK_LE(n, 12);
  const Circuit circuit = DisjointnessCircuit(n);
  const BoolFunc f = BoolFunc::FromCircuit(circuit);
  std::vector<int> x_vars;
  std::vector<int> y_vars;
  for (int i = 0; i < n; ++i) {
    x_vars.push_back(i);
    y_vars.push_back(n + i);
  }
  return CoverLowerBound(f, x_vars, y_vars);
}

}  // namespace ctsdd
