// Unions of conjunctive queries with and without inequalities (Section 4).
//
// A term is a query variable (id >= 0) or a constant (encoded negatively);
// a conjunctive query is an existentially closed conjunction of relational
// atoms and inequalities x != y between query variables; a UCQ is a
// disjunction of conjunctive queries (all Boolean queries).

#ifndef CTSDD_DB_QUERY_H_
#define CTSDD_DB_QUERY_H_

#include <string>
#include <vector>

namespace ctsdd {

// Term encoding: variables are >= 0, constant c is EncodeConstant(c) < 0.
inline int EncodeConstant(int c) { return -(c + 1); }
inline bool IsConstantTerm(int term) { return term < 0; }
inline int DecodeConstant(int term) { return -term - 1; }

struct Atom {
  std::string relation;
  std::vector<int> args;  // terms
};

struct Inequality {
  int var1 = -1;
  int var2 = -1;
};

struct ConjunctiveQuery {
  std::vector<Atom> atoms;
  std::vector<Inequality> inequalities;

  // Distinct query variables, sorted.
  std::vector<int> Variables() const;
  bool HasSelfJoin() const;  // some relation appears in two atoms
};

struct Ucq {
  std::vector<ConjunctiveQuery> disjuncts;

  bool HasInequalities() const;
  std::string DebugString() const;
};

// --- Named query families used in the paper's Section 4 experiments ---

// The inversion chain of length k (Jha–Suciu; Lemma 7):
//   Q_k =  R(x), S_1(x, y)
//       or S_1(x, y), S_2(x, y)
//       or ...
//       or S_{k-1}(x, y), S_k(x, y)
//       or S_k(x, y), T(y)
// Q_k contains an inversion of length k; restricting its lineages yields
// the H^i_{k,n} functions.
Ucq InversionChainUcq(int k);

// The canonical hierarchical (inversion-free) query R(x), S(x, y):
// constant-width OBDD lineages.
Ucq HierarchicalRSQuery();

// Non-hierarchical H0: R(x), S(x, y), T(y) — the textbook hard query.
Ucq NonHierarchicalH0Query();

// Inequality variant of the hierarchical query:
//   R(x), S(x, y), x' != x, R(x'), S(x', y') — a simple inversion-free UCQ
// with an inequality (polynomial-size, non-constant-width OBDDs).
Ucq InequalityExampleQuery();

// R(x), S(y), x != y — the canonical inversion-free inequality query
// whose lineages have polynomial-size OBDDs of width Theta(n) under the
// R-block-then-S-block tuple order (the Figure 3 "polynomial but not
// constant width" witness).
Ucq DistinctPairQuery();

// R(c), S(c, y) for a fixed constant c: one distinct lineage function
// per constant over a shared database — the parameterized long tail the
// serving benchmarks and GC stress tests sample from.
Ucq PerConstantRsQuery(int c);

}  // namespace ctsdd

#endif  // CTSDD_DB_QUERY_H_
