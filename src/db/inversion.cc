#include "db/inversion.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <tuple>
#include <vector>

namespace ctsdd {
namespace {

// at(x): indices of atoms of `cq` containing variable x.
std::map<int, std::set<int>> AtomSets(const ConjunctiveQuery& cq) {
  std::map<int, std::set<int>> at;
  for (size_t a = 0; a < cq.atoms.size(); ++a) {
    for (int arg : cq.atoms[a].args) {
      if (!IsConstantTerm(arg)) at[arg].insert(static_cast<int>(a));
    }
  }
  return at;
}

enum class PairType { kEqual, kGreater, kLess, kIncomparable };

PairType Compare(const std::set<int>& ax, const std::set<int>& ay) {
  const bool x_in_y =
      std::includes(ay.begin(), ay.end(), ax.begin(), ax.end());
  const bool y_in_x =
      std::includes(ax.begin(), ax.end(), ay.begin(), ay.end());
  if (x_in_y && y_in_x) return PairType::kEqual;
  if (y_in_x) return PairType::kGreater;  // at(x) ⊋ at(y)
  if (x_in_y) return PairType::kLess;     // at(x) ⊊ at(y)
  return PairType::kIncomparable;
}

// A node of the unification graph: a relation with an ordered position
// pair carrying the (x, y) variable pair.
using PosPair = std::tuple<std::string, int, int>;

struct Occurrence {
  PosPair node;
  PairType type;
  int disjunct;
  int x;  // variable at the first position
  int y;  // variable at the second position
};

std::vector<Occurrence> CollectOccurrences(const Ucq& query) {
  std::vector<Occurrence> occurrences;
  for (size_t d = 0; d < query.disjuncts.size(); ++d) {
    const ConjunctiveQuery& cq = query.disjuncts[d];
    const auto at = AtomSets(cq);
    for (const Atom& atom : cq.atoms) {
      for (size_t i = 0; i < atom.args.size(); ++i) {
        for (size_t j = 0; j < atom.args.size(); ++j) {
          if (i == j) continue;
          const int x = atom.args[i];
          const int y = atom.args[j];
          if (IsConstantTerm(x) || IsConstantTerm(y) || x == y) continue;
          occurrences.push_back(
              {{atom.relation, static_cast<int>(i), static_cast<int>(j)},
               Compare(at.at(x), at.at(y)),
               static_cast<int>(d),
               x,
               y});
        }
      }
    }
  }
  return occurrences;
}

}  // namespace

bool IsHierarchical(const ConjunctiveQuery& cq) {
  const auto at = AtomSets(cq);
  for (auto itx = at.begin(); itx != at.end(); ++itx) {
    for (auto ity = std::next(itx); ity != at.end(); ++ity) {
      std::vector<int> common;
      std::set_intersection(itx->second.begin(), itx->second.end(),
                            ity->second.begin(), ity->second.end(),
                            std::back_inserter(common));
      if (common.empty()) continue;
      if (Compare(itx->second, ity->second) == PairType::kIncomparable) {
        return false;
      }
    }
  }
  return true;
}

bool IsHierarchicalUcq(const Ucq& query) {
  for (const ConjunctiveQuery& cq : query.disjuncts) {
    if (!IsHierarchical(cq)) return false;
  }
  return true;
}

int FindInversionLength(const Ucq& query) {
  const std::vector<Occurrence> occurrences = CollectOccurrences(query);
  // A variable pair straddling incomparable atom sets inside one atom is
  // an immediate (length-1) inversion witness.
  for (const Occurrence& occ : occurrences) {
    if (occ.type == PairType::kIncomparable) return 1;
  }
  // Unification edges: two occurrences in the same disjunct carrying the
  // same (x, y) variable pair link their relation-position nodes.
  std::map<PosPair, std::vector<PosPair>> edges;
  for (size_t i = 0; i < occurrences.size(); ++i) {
    for (size_t j = i + 1; j < occurrences.size(); ++j) {
      const Occurrence& a = occurrences[i];
      const Occurrence& b = occurrences[j];
      if (a.disjunct != b.disjunct || a.node == b.node) continue;
      if (a.x == b.x && a.y == b.y) {
        edges[a.node].push_back(b.node);
        edges[b.node].push_back(a.node);
      }
    }
  }
  // BFS from every GT-typed node to any LT-typed node.
  std::set<PosPair> gt_nodes;
  std::set<PosPair> lt_nodes;
  for (const Occurrence& occ : occurrences) {
    if (occ.type == PairType::kGreater) gt_nodes.insert(occ.node);
    if (occ.type == PairType::kLess) lt_nodes.insert(occ.node);
  }
  int best = 0;
  std::map<PosPair, int> dist;
  std::queue<PosPair> frontier;
  for (const PosPair& node : gt_nodes) {
    dist[node] = 1;
    frontier.push(node);
  }
  while (!frontier.empty()) {
    const PosPair node = frontier.front();
    frontier.pop();
    if (lt_nodes.count(node)) {
      best = dist[node];
      break;
    }
    const auto it = edges.find(node);
    if (it == edges.end()) continue;
    for (const PosPair& next : it->second) {
      if (!dist.count(next)) {
        dist[next] = dist[node] + 1;
        frontier.push(next);
      }
    }
  }
  return best;
}

bool HasInversion(const Ucq& query) { return FindInversionLength(query) > 0; }

}  // namespace ctsdd
