#include "db/query.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace ctsdd {

std::vector<int> ConjunctiveQuery::Variables() const {
  std::set<int> vars;
  for (const Atom& atom : atoms) {
    for (int arg : atom.args) {
      if (!IsConstantTerm(arg)) vars.insert(arg);
    }
  }
  for (const Inequality& ineq : inequalities) {
    vars.insert(ineq.var1);
    vars.insert(ineq.var2);
  }
  return std::vector<int>(vars.begin(), vars.end());
}

bool ConjunctiveQuery::HasSelfJoin() const {
  std::set<std::string> seen;
  for (const Atom& atom : atoms) {
    if (!seen.insert(atom.relation).second) return true;
  }
  return false;
}

bool Ucq::HasInequalities() const {
  for (const ConjunctiveQuery& cq : disjuncts) {
    if (!cq.inequalities.empty()) return true;
  }
  return false;
}

std::string Ucq::DebugString() const {
  std::ostringstream os;
  for (size_t d = 0; d < disjuncts.size(); ++d) {
    if (d) os << " v ";
    const ConjunctiveQuery& cq = disjuncts[d];
    os << "(";
    bool first = true;
    for (const Atom& atom : cq.atoms) {
      if (!first) os << ", ";
      first = false;
      os << atom.relation << "(";
      for (size_t i = 0; i < atom.args.size(); ++i) {
        if (i) os << ",";
        if (IsConstantTerm(atom.args[i])) {
          os << "'" << DecodeConstant(atom.args[i]) << "'";
        } else {
          os << "v" << atom.args[i];
        }
      }
      os << ")";
    }
    for (const Inequality& ineq : cq.inequalities) {
      os << ", v" << ineq.var1 << "!=v" << ineq.var2;
    }
    os << ")";
  }
  return os.str();
}

Ucq InversionChainUcq(int k) {
  Ucq q;
  // Variables 0 (x) and 1 (y), fresh per disjunct semantically (each CQ is
  // existentially closed independently).
  {
    ConjunctiveQuery first;
    first.atoms.push_back({"R", {0}});
    first.atoms.push_back({"S1", {0, 1}});
    q.disjuncts.push_back(first);
  }
  for (int i = 1; i < k; ++i) {
    ConjunctiveQuery middle;
    middle.atoms.push_back({"S" + std::to_string(i), {0, 1}});
    middle.atoms.push_back({"S" + std::to_string(i + 1), {0, 1}});
    q.disjuncts.push_back(middle);
  }
  {
    ConjunctiveQuery last;
    last.atoms.push_back({"S" + std::to_string(k), {0, 1}});
    last.atoms.push_back({"T", {1}});
    q.disjuncts.push_back(last);
  }
  return q;
}

Ucq HierarchicalRSQuery() {
  Ucq q;
  ConjunctiveQuery cq;
  cq.atoms.push_back({"R", {0}});
  cq.atoms.push_back({"S", {0, 1}});
  q.disjuncts.push_back(cq);
  return q;
}

Ucq NonHierarchicalH0Query() {
  Ucq q;
  ConjunctiveQuery cq;
  cq.atoms.push_back({"R", {0}});
  cq.atoms.push_back({"S", {0, 1}});
  cq.atoms.push_back({"T", {1}});
  q.disjuncts.push_back(cq);
  return q;
}

Ucq PerConstantRsQuery(int c) {
  Ucq q;
  ConjunctiveQuery cq;
  cq.atoms.push_back({"R", {EncodeConstant(c)}});
  cq.atoms.push_back({"S", {EncodeConstant(c), 0}});
  q.disjuncts.push_back(std::move(cq));
  return q;
}

Ucq DistinctPairQuery() {
  Ucq q;
  ConjunctiveQuery cq;
  cq.atoms.push_back({"R", {0}});
  cq.atoms.push_back({"S", {1}});
  cq.inequalities.push_back({0, 1});
  q.disjuncts.push_back(cq);
  return q;
}

Ucq InequalityExampleQuery() {
  Ucq q;
  ConjunctiveQuery cq;
  cq.atoms.push_back({"R", {0}});
  cq.atoms.push_back({"S", {0, 1}});
  cq.atoms.push_back({"R", {2}});
  cq.inequalities.push_back({0, 2});
  q.disjuncts.push_back(cq);
  return q;
}

}  // namespace ctsdd
