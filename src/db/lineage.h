// Lineage construction: the Boolean function L(Q, D) over the tuples of D
// accepting exactly the subdatabases satisfying Q (Section 1 / Section 4).
//
// The lineage is produced as a monotone circuit (OR over disjuncts and
// groundings of ANDs over matched tuples), computable in polynomial time
// for a fixed query — the object the paper's compilation pipeline starts
// from.

#ifndef CTSDD_DB_LINEAGE_H_
#define CTSDD_DB_LINEAGE_H_

#include "circuit/circuit.h"
#include "db/database.h"
#include "db/query.h"
#include "util/status.h"

namespace ctsdd {

// Builds L(Q, D). The circuit's variables are tuple ids of `db` (it
// declares db.num_tuples() variables). Fails on unknown relations or
// arity mismatches.
StatusOr<Circuit> BuildLineage(const Ucq& query, const Database& db);

// Ground-truth query probability by brute force over the lineage
// variables (requires few enough tuples; for tests).
StatusOr<double> BruteForceQueryProbability(const Ucq& query,
                                            const Database& db);

// --- Database generators for the Section 4 experiments ---

// The bipartite chain database for InversionChainUcq(k) over domain [n]:
// R(l), S_i(l, m), T(m) for all l, m in [n], all with probability `prob`.
// Lineages of the chain query over this database restrict to the
// H^i_{k,n} functions (Lemma 7).
Database ChainDatabase(int k, int n, double prob = 0.5);

// Bipartite database for queries over R(x), S(x,y), T(y) with domain [n].
Database BipartiteRstDatabase(int n, double prob = 0.5);

}  // namespace ctsdd

#endif  // CTSDD_DB_LINEAGE_H_
