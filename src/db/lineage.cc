#include "db/lineage.h"

#include <algorithm>
#include <functional>

#include "circuit/eval.h"
#include "util/logging.h"

namespace ctsdd {

StatusOr<Circuit> BuildLineage(const Ucq& query, const Database& db) {
  Circuit circuit;
  circuit.DeclareVars(db.num_tuples());
  const std::vector<int> domain = db.ActiveDomain();
  std::vector<int> or_terms;

  for (const ConjunctiveQuery& cq : query.disjuncts) {
    for (const Atom& atom : cq.atoms) {
      if (!db.HasRelation(atom.relation)) {
        return Status::InvalidArgument("unknown relation " + atom.relation);
      }
      if (db.RelationArity(atom.relation) !=
          static_cast<int>(atom.args.size())) {
        return Status::InvalidArgument("arity mismatch on " + atom.relation);
      }
    }
    const std::vector<int> vars = cq.Variables();
    // Enumerate all assignments of the query variables into the active
    // domain; emit one AND term per satisfying grounding.
    std::vector<int> assignment(vars.size(), 0);
    std::function<void(size_t)> enumerate = [&](size_t next) {
      if (next == vars.size()) {
        // Check inequalities.
        auto value_of = [&](int var) {
          const auto it = std::lower_bound(vars.begin(), vars.end(), var);
          return domain[assignment[it - vars.begin()]];
        };
        for (const Inequality& ineq : cq.inequalities) {
          if (value_of(ineq.var1) == value_of(ineq.var2)) return;
        }
        // Match each atom to a tuple.
        std::vector<int> tuple_vars;
        for (const Atom& atom : cq.atoms) {
          std::vector<int> values;
          values.reserve(atom.args.size());
          for (int arg : atom.args) {
            values.push_back(IsConstantTerm(arg) ? DecodeConstant(arg)
                                                 : value_of(arg));
          }
          const int tuple = db.FindTuple(atom.relation, values);
          if (tuple < 0) return;  // grounding unmatched: contributes false
          tuple_vars.push_back(tuple);
        }
        std::sort(tuple_vars.begin(), tuple_vars.end());
        tuple_vars.erase(std::unique(tuple_vars.begin(), tuple_vars.end()),
                         tuple_vars.end());
        std::vector<int> gates;
        gates.reserve(tuple_vars.size());
        for (int t : tuple_vars) gates.push_back(circuit.VarGate(t));
        or_terms.push_back(gates.size() == 1
                               ? gates[0]
                               : circuit.AndGate(std::move(gates)));
        return;
      }
      for (size_t d = 0; d < domain.size(); ++d) {
        assignment[next] = static_cast<int>(d);
        enumerate(next + 1);
      }
    };
    if (vars.empty()) {
      enumerate(0);
    } else if (!domain.empty()) {
      enumerate(0);
    }
  }

  if (or_terms.empty()) {
    circuit.SetOutput(circuit.ConstGate(false));
  } else if (or_terms.size() == 1) {
    circuit.SetOutput(or_terms[0]);
  } else {
    circuit.SetOutput(circuit.OrGate(std::move(or_terms)));
  }
  return circuit;
}

StatusOr<double> BruteForceQueryProbability(const Ucq& query,
                                            const Database& db) {
  auto lineage = BuildLineage(query, db);
  CTSDD_RETURN_IF_ERROR(lineage.status());
  const Circuit& circuit = lineage.value();
  const int n = db.num_tuples();
  if (n > 24) {
    return Status::ResourceExhausted("too many tuples for brute force");
  }
  double total = 0.0;
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<bool> present(n);
    double weight = 1.0;
    for (int t = 0; t < n; ++t) {
      present[t] = (mask >> t) & 1;
      weight *= present[t] ? db.TupleProb(t) : 1.0 - db.TupleProb(t);
    }
    if (weight == 0.0) continue;
    if (Evaluate(circuit, present)) total += weight;
  }
  return total;
}

Database ChainDatabase(int k, int n, double prob) {
  CTSDD_CHECK_GE(k, 1);
  CTSDD_CHECK_GE(n, 1);
  Database db;
  db.AddRelation("R", 1);
  for (int i = 1; i <= k; ++i) {
    db.AddRelation("S" + std::to_string(i), 2);
  }
  db.AddRelation("T", 1);
  for (int l = 1; l <= n; ++l) db.AddTuple("R", {l}, prob);
  for (int i = 1; i <= k; ++i) {
    for (int l = 1; l <= n; ++l) {
      for (int m = 1; m <= n; ++m) {
        db.AddTuple("S" + std::to_string(i), {l, m}, prob);
      }
    }
  }
  for (int m = 1; m <= n; ++m) db.AddTuple("T", {m}, prob);
  return db;
}

Database BipartiteRstDatabase(int n, double prob) {
  CTSDD_CHECK_GE(n, 1);
  Database db;
  db.AddRelation("R", 1);
  db.AddRelation("S", 2);
  db.AddRelation("T", 1);
  for (int l = 1; l <= n; ++l) db.AddTuple("R", {l}, prob);
  for (int l = 1; l <= n; ++l) {
    for (int m = 1; m <= n; ++m) db.AddTuple("S", {l, m}, prob);
  }
  for (int m = 1; m <= n; ++m) db.AddTuple("T", {m}, prob);
  return db;
}

}  // namespace ctsdd
