// Hierarchy and inversion tests for UCQs (Section 4; Dalvi–Suciu 2007).
//
// For a conjunctive query, at(x) is the set of atoms containing variable
// x; the query is *hierarchical* when for every two variables the sets
// at(x), at(y) are comparable or disjoint. For self-join-free queries,
// hierarchical = inversion-free = constant-width OBDD lineages (Jha–Suciu).
//
// An *inversion* (Dalvi–Suciu) starts from a pair of unifiable atoms
// where a variable pair flips its hierarchy relation: we detect length-1
// witnesses by scanning pairs of atoms of the same relation whose
// positions (i, j) carry, in one occurrence, a "root" variable
// (at(x) ⊋ at(y)) and in the other a "leaf" variable (at(x) ⊊ at(y)),
// chained through shared relations for longer inversions. This covers the
// query families evaluated here (the chain queries of Lemma 7 and all
// hierarchical baselines); a complete Dalvi–Suciu inversion test over
// arbitrary UCQ unification paths is documented as out of scope in
// DESIGN.md.

#ifndef CTSDD_DB_INVERSION_H_
#define CTSDD_DB_INVERSION_H_

#include "db/query.h"

namespace ctsdd {

// Hierarchical test for one conjunctive query.
bool IsHierarchical(const ConjunctiveQuery& cq);

// All disjuncts hierarchical.
bool IsHierarchicalUcq(const Ucq& query);

// Detects an inversion witness: a chain of relations
// q_0 --R_1-- q_1 --R_2-- ... where some disjunct contains R_i with an
// (x ⊐ y)-typed occurrence and another contains R_i with an (x ⊏ y)-typed
// occurrence, possibly chained through disjuncts containing both (the
// "middle" disjuncts of the chain queries). Returns the inversion length
// (>= 1) or 0 when no witness is found.
int FindInversionLength(const Ucq& query);

// Convenience: FindInversionLength(query) > 0.
bool HasInversion(const Ucq& query);

}  // namespace ctsdd

#endif  // CTSDD_DB_INVERSION_H_
