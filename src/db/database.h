// Tuple-independent probabilistic databases (Section 1; Suciu et al.).
//
// Every tuple is a Boolean variable of query lineages; tuple ids are dense
// and double as the global variable ids used by circuits, OBDDs, and SDDs.

#ifndef CTSDD_DB_DATABASE_H_
#define CTSDD_DB_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace ctsdd {

// Constants of the active domain are plain ints.
struct DbTuple {
  int id = -1;  // tuple id == lineage Boolean variable id
  std::vector<int> values;
  double prob = 0.5;
};

class Database {
 public:
  // Declares a relation; returns its index. Names must be unique.
  int AddRelation(const std::string& name, int arity);

  // Inserts a tuple (duplicates rejected); returns the tuple id.
  int AddTuple(const std::string& relation, std::vector<int> values,
               double prob);

  int num_relations() const { return static_cast<int>(names_.size()); }
  int num_tuples() const { return static_cast<int>(tuple_probs_.size()); }

  bool HasRelation(const std::string& name) const;
  // Relation names in declaration (index) order, for callers that iterate
  // the whole schema (e.g. content signatures in serve/).
  const std::vector<std::string>& RelationNames() const { return names_; }
  int RelationArity(const std::string& name) const;
  const std::vector<DbTuple>& TuplesOf(const std::string& name) const;

  // Tuple id of relation(values), or -1 if absent.
  int FindTuple(const std::string& relation,
                const std::vector<int>& values) const;

  double TupleProb(int tuple_id) const { return tuple_probs_[tuple_id]; }
  // Probabilities indexed by tuple id.
  const std::vector<double>& tuple_probs() const { return tuple_probs_; }

  // All constants appearing in tuples, sorted.
  std::vector<int> ActiveDomain() const;

 private:
  int RelationIndex(const std::string& name) const;

  std::vector<std::string> names_;
  std::vector<int> arities_;
  std::vector<std::vector<DbTuple>> tuples_;
  std::map<std::string, int> index_;
  std::vector<double> tuple_probs_;
};

}  // namespace ctsdd

#endif  // CTSDD_DB_DATABASE_H_
