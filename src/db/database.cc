#include "db/database.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace ctsdd {

int Database::AddRelation(const std::string& name, int arity) {
  CTSDD_CHECK_GE(arity, 1);
  CTSDD_CHECK(index_.find(name) == index_.end())
      << "duplicate relation " << name;
  const int idx = num_relations();
  names_.push_back(name);
  arities_.push_back(arity);
  tuples_.emplace_back();
  index_.emplace(name, idx);
  return idx;
}

int Database::RelationIndex(const std::string& name) const {
  const auto it = index_.find(name);
  CTSDD_CHECK(it != index_.end()) << "unknown relation " << name;
  return it->second;
}

int Database::AddTuple(const std::string& relation, std::vector<int> values,
                       double prob) {
  const int rel = RelationIndex(relation);
  CTSDD_CHECK_EQ(static_cast<int>(values.size()), arities_[rel]);
  CTSDD_CHECK_GE(prob, 0.0);
  CTSDD_CHECK_LE(prob, 1.0);
  CTSDD_CHECK_EQ(FindTuple(relation, values), -1) << "duplicate tuple";
  DbTuple tuple;
  tuple.id = num_tuples();
  tuple.values = std::move(values);
  tuple.prob = prob;
  tuples_[rel].push_back(tuple);
  tuple_probs_.push_back(prob);
  return tuple.id;
}

bool Database::HasRelation(const std::string& name) const {
  return index_.find(name) != index_.end();
}

int Database::RelationArity(const std::string& name) const {
  return arities_[RelationIndex(name)];
}

const std::vector<DbTuple>& Database::TuplesOf(
    const std::string& name) const {
  return tuples_[RelationIndex(name)];
}

int Database::FindTuple(const std::string& relation,
                        const std::vector<int>& values) const {
  for (const DbTuple& t : tuples_[RelationIndex(relation)]) {
    if (t.values == values) return t.id;
  }
  return -1;
}

std::vector<int> Database::ActiveDomain() const {
  std::set<int> domain;
  for (const auto& rel : tuples_) {
    for (const DbTuple& t : rel) {
      domain.insert(t.values.begin(), t.values.end());
    }
  }
  return std::vector<int>(domain.begin(), domain.end());
}

}  // namespace ctsdd
