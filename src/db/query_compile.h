// Query compilation (Section 1): lineage -> tractable circuit ->
// probability. Implements the OBDD and SDD routes with selectable
// vtree/order strategies, including the paper's treewidth-driven pipeline.

#ifndef CTSDD_DB_QUERY_COMPILE_H_
#define CTSDD_DB_QUERY_COMPILE_H_

#include <string>

#include <vector>

#include "circuit/circuit.h"
#include "db/database.h"
#include "db/lineage.h"
#include "db/query.h"
#include "obdd/obdd.h"
#include "sdd/sdd.h"
#include "util/status.h"
#include "vtree/vtree.h"

namespace ctsdd {

enum class VtreeStrategy {
  kRightLinear,  // OBDD-style, tuple-id order
  kBalanced,
  kFromTreewidth,  // Lemma 1 vtree from the lineage circuit
};

// The vtree the given strategy prescribes for compiling `circuit`, whose
// sorted variable set is `vars` (non-empty). Shared by the one-shot
// CompileQuery below and the serve/ layer's plan compiler.
StatusOr<Vtree> VtreeForStrategy(const Circuit& circuit,
                                 const std::vector<int>& vars,
                                 VtreeStrategy strategy);

struct QueryCompilation {
  int num_tuples = 0;
  int lineage_gates = 0;
  double probability = 0.0;

  // OBDD route (tuple-id order).
  int obdd_size = 0;
  int obdd_width = 0;

  // SDD route (per the chosen strategy).
  int sdd_size = 0;
  int sdd_width = 0;

  std::string DebugString() const;
};

// Compiles L(Q, D) to both an OBDD (tuple-id order) and an SDD (chosen
// strategy), checks the two probabilities agree, and returns statistics.
StatusOr<QueryCompilation> CompileQuery(
    const Ucq& query, const Database& db,
    VtreeStrategy strategy = VtreeStrategy::kFromTreewidth);

}  // namespace ctsdd

#endif  // CTSDD_DB_QUERY_COMPILE_H_
