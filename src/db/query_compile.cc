#include "db/query_compile.h"

#include <cmath>
#include <map>
#include <sstream>

#include "compile/pipeline.h"
#include "obdd/obdd_compile.h"
#include "sdd/sdd_compile.h"
#include "util/logging.h"
#include "vtree/from_decomposition.h"

namespace ctsdd {

std::string QueryCompilation::DebugString() const {
  std::ostringstream os;
  os << "tuples=" << num_tuples << " lineage_gates=" << lineage_gates
     << " P=" << probability << " obdd(size=" << obdd_size
     << ",width=" << obdd_width << ") sdd(size=" << sdd_size
     << ",width=" << sdd_width << ")";
  return os.str();
}

StatusOr<Vtree> VtreeForStrategy(const Circuit& circuit,
                                 const std::vector<int>& vars,
                                 VtreeStrategy strategy) {
  switch (strategy) {
    case VtreeStrategy::kRightLinear:
      return Vtree::RightLinear(vars);
    case VtreeStrategy::kBalanced:
      return Vtree::Balanced(vars);
    case VtreeStrategy::kFromTreewidth:
      return VtreeForCircuit(circuit);
  }
  return Status::InvalidArgument("unknown vtree strategy");
}

StatusOr<QueryCompilation> CompileQuery(const Ucq& query, const Database& db,
                                        VtreeStrategy strategy) {
  auto lineage = BuildLineage(query, db);
  CTSDD_RETURN_IF_ERROR(lineage.status());
  const Circuit& circuit = lineage.value();

  QueryCompilation out;
  out.num_tuples = db.num_tuples();
  out.lineage_gates = circuit.num_gates();

  // Variables of the lineage (a tuple may not appear in any grounding).
  const std::vector<int> vars = circuit.Vars();

  // --- OBDD route: tuple-id order. ---
  std::vector<int> order = vars;
  ObddManager obdd(order);
  const auto obdd_root = CompileCircuitToObdd(&obdd, circuit);
  out.obdd_size = obdd.Size(obdd_root);
  out.obdd_width = obdd.Width(obdd_root);
  std::vector<double> prob_by_level(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    prob_by_level[i] = db.TupleProb(order[i]);
  }
  const double obdd_prob = obdd.WeightedModelCount(obdd_root, prob_by_level);

  // --- SDD route. ---
  double sdd_prob = 0.0;
  if (vars.empty()) {
    // Constant lineage.
    sdd_prob = obdd_prob;
  } else {
    auto vtree_or = VtreeForStrategy(circuit, vars, strategy);
    CTSDD_RETURN_IF_ERROR(vtree_or.status());
    Vtree vtree = std::move(vtree_or).value();
    SddManager sdd(vtree);
    const auto sdd_root = CompileCircuitToSdd(&sdd, circuit);
    const SddStats stats = ComputeSddStats(sdd, sdd_root);
    out.sdd_size = stats.size;
    out.sdd_width = stats.width;
    std::map<int, double> probs;
    for (int v : vars) probs[v] = db.TupleProb(v);
    sdd_prob = sdd.WeightedModelCount(sdd_root, probs);
  }

  if (std::fabs(obdd_prob - sdd_prob) > 1e-9) {
    return Status::Internal("OBDD and SDD probabilities disagree: " +
                            std::to_string(obdd_prob) + " vs " +
                            std::to_string(sdd_prob));
  }
  out.probability = obdd_prob;
  return out;
}

}  // namespace ctsdd
