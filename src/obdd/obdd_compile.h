// Compiling circuits and semantic functions into OBDDs, plus small-n
// exhaustive search over variable orders (used to measure OBDD width/size
// of a *function* rather than of one particular order).

#ifndef CTSDD_OBDD_OBDD_COMPILE_H_
#define CTSDD_OBDD_OBDD_COMPILE_H_

#include <vector>

#include "circuit/circuit.h"
#include "func/bool_func.h"
#include "obdd/obdd.h"

namespace ctsdd {

// Bottom-up compilation of a circuit (manager order must cover its vars).
ObddManager::NodeId CompileCircuitToObdd(ObddManager* manager,
                                         const Circuit& circuit);

// Compilation of an explicit function (manager order must cover its vars;
// manager variables outside f's set are irrelevant).
ObddManager::NodeId CompileFuncToObdd(ObddManager* manager,
                                      const BoolFunc& f);

struct ObddStats {
  int size = 0;
  int width = 0;
  std::vector<int> order;  // the variable order achieving the stats
};

// Stats of f under one particular order.
ObddStats ObddStatsForOrder(const BoolFunc& f, const std::vector<int>& order);

// Exhaustive minimum over all orders of f's variables; `minimize_width`
// selects the objective (width vs size). Requires f.num_vars() <= 10.
ObddStats BestObddOverAllOrders(const BoolFunc& f, bool minimize_width);

// Greedy sifting-style local search over orders starting from f's natural
// variable order; usable beyond the exhaustive range.
ObddStats BestObddBySifting(const BoolFunc& f, bool minimize_width,
                            int rounds = 2);

}  // namespace ctsdd

#endif  // CTSDD_OBDD_OBDD_COMPILE_H_
