// A reduced ordered binary decision diagram (OBDD) package with a shared
// unique table, apply/ite with memoization, model counting, and weighted
// model counting (the probability computation of Section 1).
//
// OBDDs are the linear-vtree special case of SDDs (Section 3.2.2); the
// paper measures functions by OBDD *width* — the largest number of nodes
// labeled by the same variable — which this package reports alongside size.
//
// Storage follows the classic BDD-package layout: nodes live in a chunked
// stable-address store indexed by dense ids (util/node_store.h),
// hash-consed through an open-addressed unique table
// (util/unique_table.h); operation results are memoized in bounded
// computed caches (util/computed_cache.h) that stay fixed-size no matter
// how long the operation sequence runs. Cache eviction can only cost
// recomputation, never change results — canonicity lives in the unique
// table alone.
//
// Parallel apply (exec/): AttachExecutor hands the manager a
// work-stealing pool; Ite and the n-ary folds then fork their independent
// cofactor branches across the pool's workers inside a *parallel region*
// — the one window where the single-owner contract relaxes. Within a
// region the unique table runs its CAS insert-or-find protocol, the
// computed caches and per-operation memos are lock-striped, node ids are
// claimed in per-worker blocks, and the debug-build owning-thread
// assertion is suspended (util/thread_check.h ParallelRegion). Results
// are pointer-identical to the sequential path: canonicity hash-conses
// every (level, lo, hi) to one id regardless of which worker builds it
// first.

#ifndef CTSDD_OBDD_OBDD_H_
#define CTSDD_OBDD_OBDD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "exec/task_pool.h"
#include "util/budget.h"
#include "util/computed_cache.h"
#include "util/logging.h"
#include "util/mem_governor.h"
#include "util/node_store.h"
#include "util/scoped_memo.h"
#include "util/spinlock.h"
#include "util/status.h"
#include "util/thread_check.h"
#include "util/unique_table.h"

namespace ctsdd {

// Computed-cache bounds (maximum slot counts; rounded up to powers of
// two — the caches start small and grow under eviction pressure up to the
// bound). Small bounds force eviction and recomputation but never wrong
// results; the apply-core tests exercise exactly that. Namespace-scope
// (not nested) so it can serve as a defaulted constructor argument.
struct ObddOptions {
  size_t ite_cache_slots = 1 << 22;
  size_t nary_cache_slots = 1 << 18;
};

class ObddManager {
 public:
  // Node ids: 0 = false terminal, 1 = true terminal, >= 2 internal.
  // kAborted is the cooperative-abort sentinel: when an attached
  // WorkBudget trips, operations unwind by returning it instead of a
  // node. It is never stored in the unique table, caches, or memos, so
  // an aborted operation leaves no trace beyond unreferenced garbage
  // nodes (reclaimed by the next GarbageCollect).
  using NodeId = int;
  static constexpr NodeId kFalse = 0;
  static constexpr NodeId kTrue = 1;
  static constexpr NodeId kAborted = -2;

  using Options = ObddOptions;

  // `var_order[i]` is the global variable id tested at level i.
  explicit ObddManager(std::vector<int> var_order, Options options = {});

  const std::vector<int>& var_order() const { return var_order_; }
  int num_levels() const { return static_cast<int>(var_order_.size()); }
  // Level of a global variable id; -1 if not in the order.
  int LevelOf(int var) const;

  NodeId False() const { return kFalse; }
  NodeId True() const { return kTrue; }
  NodeId Literal(int var, bool positive);

  NodeId Not(NodeId f);
  NodeId And(NodeId f, NodeId g);
  NodeId Or(NodeId f, NodeId g);
  NodeId Xor(NodeId f, NodeId g);
  NodeId Ite(NodeId f, NodeId g, NodeId h);

  // Multi-way conjunction/disjunction by simultaneous cofactoring: all
  // operands are cofactored on the smallest live level at once, so a wide
  // gate costs one sweep instead of a chain of binary applies that re-walks
  // the accumulated result per operand. Neutral operands are dropped and
  // absorbing terminals short-circuit before any recursion.
  NodeId AndN(std::vector<NodeId> ops);
  NodeId OrN(std::vector<NodeId> ops);

  // Hash-conses the node (level, lo, hi), applying the reduction rule
  // (lo == hi collapses). Both children must already be normalized at
  // deeper levels — the caller asserts the ordering invariant, as in the
  // classic bdd_makenode interface. Compilers that Shannon-expand along
  // the variable order use this to sidestep a full Ite per node.
  NodeId MakeNode(int level, NodeId lo, NodeId hi);

  // Shannon cofactors of f by the level-`level` variable.
  NodeId CofactorLo(NodeId f, int level) const;
  NodeId CofactorHi(NodeId f, int level) const;

  // Restricts f by var := value.
  NodeId Restrict(NodeId f, int var, bool value);

  bool Evaluate(NodeId f, const std::vector<bool>& values_by_level) const;

  // Number of models over the full variable order.
  uint64_t CountModels(NodeId f) const;

  // Probability of f when variable at level i is independently true with
  // probability prob_by_level[i].
  double WeightedModelCount(NodeId f,
                            const std::vector<double>& prob_by_level) const;

  // Reachable node count, terminals excluded.
  int Size(NodeId f) const;

  // Max number of reachable nodes on a single level (OBDD width).
  int Width(NodeId f) const;

  // Nodes per level, for profile plots.
  std::vector<int> LevelProfile(NodeId f) const;

  // Total node slots ever created (manager footprint high-water mark).
  int NumNodes() const { return static_cast<int>(nodes_.size()); }
  // Nodes currently resident (slots minus the GC free list), terminals
  // included. This is the quantity a long-running service bounds.
  int NumLiveNodes() const {
    return static_cast<int>(nodes_.size() - free_ids_.size());
  }

  // --- Parallel execution ------------------------------------------------
  //
  // AttachExecutor lends the manager a work-stealing pool; while one with
  // workers() > 1 is attached, Ite/AndN/OrN (and everything built on
  // them) fork independent cofactor branches across the pool inside a
  // parallel region. BeginParallelRegion/EndParallelRegion expose the
  // region explicitly so a compiler driving many operations (or the
  // serve/ layer's cold compiles) pays the region transition once rather
  // than per operation. Regions must not overlap GC/root bookkeeping, and
  // results are pointer-identical to sequential execution (canonicity).

  void AttachExecutor(exec::TaskPool* pool) { pool_ = pool; }
  exec::TaskPool* executor() const { return pool_; }
  bool InParallelRegion() const { return par_active_; }

  void BeginParallelRegion();
  void EndParallelRegion();

  // --- Budgets and cancellation ------------------------------------------
  //
  // While a budget is attached, every operation that allocates nodes
  // (Ite/AndN/OrN/MakeNode and the compilers built on them) charges the
  // budget per node allocation (amortized through per-context leases)
  // and unwinds with kAborted once it trips — on node exhaustion, on
  // deadline, or on an external Cancel(). The abort is cooperative and
  // exception-free: recursions observe a negative operand or the tripped
  // flag and return kAborted without touching the unique table or
  // caches, so the manager stays Validate()-clean and a post-abort
  // recompile (after detaching or refreshing the budget) is
  // pointer-identical by canonicity. Attach/Detach must happen outside
  // operations and parallel regions. With no budget attached the hot
  // path pays a single predictable branch.

  void AttachBudget(WorkBudget* budget);
  void DetachBudget() { AttachBudget(nullptr); }
  WorkBudget* budget() const { return budget_; }
  bool AbortRequested() const {
    return budget_ != nullptr && budget_->tripped();
  }
  // Cancel token for exec::ParallelFor, or nullptr without a budget.
  const std::atomic<bool>* budget_token() const {
    return budget_ == nullptr ? nullptr : budget_->token();
  }

  // Structural self-check: every live node is reduced (lo != hi), level-
  // ordered, reachable children are live, and the unique table maps each
  // live node to itself (no duplicates, no strays). Used by tests to
  // assert aborted operations left the manager consistent. O(nodes).
  Status Validate() const;

  // --- Memory accounting --------------------------------------------------
  //
  // AttachMemAccount charges every byte-owning structure (node store,
  // unique table, computed caches, per-operation memos) to `account`,
  // transferring the already-resident bytes; pass nullptr to detach.
  // When the account chains to an enabled MemGovernor AND a budget is
  // attached, the budget-lease refill seams become enforcement points:
  // a refill whose worst-case allocation burst no longer fits under the
  // hard watermark trips the budget typed RESOURCE_EXHAUSTED with the
  // memory-pressure marker *before* allocating, so accounted bytes never
  // cross the ceiling. Attach outside operations and parallel regions.

  void AttachMemAccount(MemAccount* account);
  MemAccount* mem_account() const { return mem_account_; }
  // Recomputed accounted-resident bytes across all instrumented
  // structures; equals mem_account()->bytes() at quiescent points
  // (debug-asserted at the end of every GarbageCollect).
  size_t MemoryBytes() const {
    return nodes_.MemoryBytes() + unique_.MemoryBytes() +
           ite_cache_.MemoryBytes() + nary_cache_.MemoryBytes() +
           ite_memo_.MemoryBytes() + nary_memo_.MemoryBytes();
  }

  // --- Memory lifecycle -------------------------------------------------
  //
  // The manager never frees nodes on its own: canonicity requires every
  // reachable node to stay in the unique table, and the manager cannot
  // see which ids a caller still holds. Callers that want collection
  // register the roots they care about; GarbageCollect() then marks from
  // the registered roots (plus the terminals), sweeps every unreachable
  // internal node onto a free list for MakeNode to reuse, and rebuilds
  // the unique table over the survivors. Live node ids never change, so
  // held NodeIds of protected roots (and anything they reach) stay valid,
  // and recompiling a collected function reproduces pointer-identical ids
  // for every surviving subgraph (canonicity is preserved — the tests pin
  // this down). The computed caches are invalidated (freed ids may be
  // reused) but that only costs recomputation.

  // Registers `id` as an external root (ref-counted: k calls require k
  // releases). Terminals need no protection.
  void AddRootRef(NodeId id);
  // Drops one reference added by AddRootRef.
  void ReleaseRootRef(NodeId id);

  // Mark-from-roots collection; returns the number of nodes reclaimed.
  // Must not be called from inside an operation (apply depth 0) or a
  // parallel region.
  size_t GarbageCollect();

  // Returns the computed caches and per-operation memos to their initial
  // footprint (contents dropped — only recomputation cost). Pair with
  // GarbageCollect() when a service wants a manager back to baseline.
  void ShrinkCaches();

  struct GcStats {
    uint64_t runs = 0;       // GarbageCollect() invocations
    uint64_t reclaimed = 0;  // nodes freed across all runs
  };
  const GcStats& gc_stats() const { return gc_stats_; }

  // Releases thread-affinity (debug builds assert single-threaded use);
  // the next operation binds the manager to its calling thread.
  void DetachOwningThread() { thread_check_.Detach(); }

  struct Node {
    int level;  // index into var_order_
    NodeId lo;
    NodeId hi;
  };
  const Node& node(NodeId id) const { return nodes_[id]; }
  bool IsTerminal(NodeId id) const { return id <= 1; }

 private:
  // Two-level memoization, mirroring the SDD apply path: the bounded
  // global caches give cross-operation reuse; exact memos scoped to each
  // top-level operation preserve the polynomial recursion bound even when
  // the lossy caches evict (a lossy cache alone turns deep recursions
  // exponential once the live set outgrows it). Ite and ApplyN nest into
  // each other, so they share one depth counter and reset together when
  // the outermost operation returns. In a parallel region the memos are
  // region-scoped instead (reset at EndParallelRegion), and both
  // memoization levels go through their lock-striped protocols.
  //
  // The recursions are templated on the protocol: the kPar == false
  // instantiation is the original single-owner code path, untouched; the
  // kPar == true instantiation forks cofactor branches while depth <
  // kForkDepth and uses the concurrent unique-table/cache entry points.
  NodeId ApplyN(std::vector<NodeId> ops, bool is_and);
  template <bool kPar>
  NodeId MakeNodeT(int level, NodeId lo, NodeId hi);
  template <bool kPar>
  NodeId IteRecT(NodeId f, NodeId g, NodeId h, int depth);
  template <bool kPar>
  NodeId ApplyNRecT(std::vector<NodeId> ops, bool is_and, int depth);
  // Node allocation inside a parallel region: bump-allocates from the
  // calling worker's claimed id block (util/node_store.h ClaimBlock), so
  // the only cross-worker allocation traffic is one fetch_add per block.
  NodeId AllocNodePar(int level, NodeId lo, NodeId hi);
  void LeaveOp() {
    if (--op_depth_ == 0) {
      ite_memo_.Reset();
      nary_memo_.Reset();
    }
  }

  struct IteKey {
    NodeId f = 0, g = 0, h = 0;
    bool operator==(const IteKey&) const = default;
  };
  struct NaryKey {
    bool is_and = false;
    std::vector<NodeId> ops;
    bool operator==(const NaryKey&) const = default;
  };

  // Fork cutoff: cofactor branches fork while the recursion is at depth
  // < kForkDepth, then run sequentially (still on concurrent data
  // structures). 2^kForkDepth potential tasks keep every worker fed
  // through the unbalanced subproblem sizes apply produces, while deep
  // recursions stay fork-free.
  static constexpr int kForkDepth = 7;
  static constexpr size_t kAllocBlock = 128;  // ids per worker claim

  struct AllocCursor {
    size_t next = 0;
    size_t end = 0;
    // Remaining node allocations pre-charged against the attached
    // budget (see ChargePar).
    uint32_t lease = 0;
    // GC-recycled ids batched out of the shared free list (see
    // AllocNodePar — parallel regions must reuse freed ids or the node
    // store would grow monotonically across GC cycles).
    std::vector<NodeId> recycled;
  };

  // Budget charging, amortized via leases: the shared budget atomic is
  // touched once per lease_chunk_ allocations, not once per node.
  // ChargeSeq returns false when the budget denies the allocation (the
  // caller returns kAborted before allocating). ChargePar charges but
  // never denies: a worker that loses the refill race still allocates
  // its node (the trip is already recorded), bounding total overshoot by
  // the number of in-flight workers — well under one id block.
  // The refills stay out of line: AcquireLease (atomics, clock reads)
  // inlined into MakeNodeT bloats the unbudgeted allocation fast path
  // enough to measurably slow the layered compilers.
  bool ChargeSeq() {
    if (budget_lease_ > 0) {
      --budget_lease_;
      return true;
    }
    return RefillSeqLease();
  }
  bool RefillSeqLease();
  // Deny-before-allocate gate at the lease seams: asks the governor for
  // headroom covering one lease's worst-case allocation burst (unique-
  // table doubling + memo growth + fresh chunks). Trips the budget with
  // the memory-pressure marker on denial.
  bool AdmitMemGrowth();
  void ChargePar(AllocCursor& cursor) {
    if (cursor.lease > 0) {
      --cursor.lease;
      return;
    }
    RefillParLease(cursor);
  }
  void RefillParLease(AllocCursor& cursor);

  std::vector<int> var_order_;
  std::unordered_map<int, int> level_of_var_;
  NodeStore<Node> nodes_;
  UniqueTable unique_;
  ComputedCache<IteKey, NodeId> ite_cache_;
  ComputedCache<NaryKey, NodeId> nary_cache_;
  ScopedMemo<IteKey, NodeId> ite_memo_;
  ScopedMemo<NaryKey, NodeId> nary_memo_;
  int op_depth_ = 0;
  // Parallel-region state: the attached pool, the region flag, and one
  // id-block cursor per pool slot.
  exec::TaskPool* pool_ = nullptr;
  bool par_active_ = false;
  std::vector<AllocCursor> alloc_cursors_;
  // Attached budget (may be null) and the sequential-path lease state.
  WorkBudget* budget_ = nullptr;
  uint32_t budget_lease_ = 0;
  uint32_t lease_chunk_ = 0;
  // Governor accounting (may be null). The governor pointer is resolved
  // once at attach so the refill seams pay loads, not a parent walk.
  // The slack term in the admission burst covers fixed-size mandatory
  // allocations a lease can trigger: node-store chunks, lazy memo-shard
  // arrays across all stripes, and the computed caches' floor arrays.
  static constexpr uint64_t kMemBurstSlack = 1u << 20;
  MemAccount* mem_account_ = nullptr;
  MemGovernor* mem_governor_ = nullptr;
  // GC state: external root ref-counts (indexed by node id, lazily grown)
  // and the free list MakeNode pops before growing nodes_. A freed slot's
  // level is set to kDeadLevel so stale-id use trips level checks fast.
  static constexpr int kDeadLevel = -2;
  std::vector<int32_t> external_refs_;
  std::vector<NodeId> free_ids_;
  // Guards free_ids_ inside parallel regions only (AllocNodePar refills
  // cursor batches from it); single-owner access outside regions stays
  // lock-free, ordered by the region bracket.
  SpinLock free_ids_lock_;
  GcStats gc_stats_;
  ThreadChecker thread_check_;
};

}  // namespace ctsdd

#endif  // CTSDD_OBDD_OBDD_H_
