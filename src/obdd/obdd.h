// A reduced ordered binary decision diagram (OBDD) package with a shared
// unique table, apply/ite with memoization, model counting, and weighted
// model counting (the probability computation of Section 1).
//
// OBDDs are the linear-vtree special case of SDDs (Section 3.2.2); the
// paper measures functions by OBDD *width* — the largest number of nodes
// labeled by the same variable — which this package reports alongside size.

#ifndef CTSDD_OBDD_OBDD_H_
#define CTSDD_OBDD_OBDD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace ctsdd {

class ObddManager {
 public:
  // Node ids: 0 = false terminal, 1 = true terminal, >= 2 internal.
  using NodeId = int;
  static constexpr NodeId kFalse = 0;
  static constexpr NodeId kTrue = 1;

  // `var_order[i]` is the global variable id tested at level i.
  explicit ObddManager(std::vector<int> var_order);

  const std::vector<int>& var_order() const { return var_order_; }
  int num_levels() const { return static_cast<int>(var_order_.size()); }
  // Level of a global variable id; -1 if not in the order.
  int LevelOf(int var) const;

  NodeId False() const { return kFalse; }
  NodeId True() const { return kTrue; }
  NodeId Literal(int var, bool positive);

  NodeId Not(NodeId f);
  NodeId And(NodeId f, NodeId g);
  NodeId Or(NodeId f, NodeId g);
  NodeId Xor(NodeId f, NodeId g);
  NodeId Ite(NodeId f, NodeId g, NodeId h);

  // Shannon cofactors of f by the level-`level` variable.
  NodeId CofactorLo(NodeId f, int level) const;
  NodeId CofactorHi(NodeId f, int level) const;

  // Restricts f by var := value.
  NodeId Restrict(NodeId f, int var, bool value);

  bool Evaluate(NodeId f, const std::vector<bool>& values_by_level) const;

  // Number of models over the full variable order.
  uint64_t CountModels(NodeId f) const;

  // Probability of f when variable at level i is independently true with
  // probability prob_by_level[i].
  double WeightedModelCount(NodeId f,
                            const std::vector<double>& prob_by_level) const;

  // Reachable node count, terminals excluded.
  int Size(NodeId f) const;

  // Max number of reachable nodes on a single level (OBDD width).
  int Width(NodeId f) const;

  // Nodes per level, for profile plots.
  std::vector<int> LevelProfile(NodeId f) const;

  // Total nodes ever created (manager footprint).
  int NumNodes() const { return static_cast<int>(nodes_.size()); }

  struct Node {
    int level;  // index into var_order_
    NodeId lo;
    NodeId hi;
  };
  const Node& node(NodeId id) const { return nodes_[id]; }
  bool IsTerminal(NodeId id) const { return id <= 1; }

 private:
  NodeId MakeNode(int level, NodeId lo, NodeId hi);

  struct Key {
    int level;
    NodeId lo;
    NodeId hi;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = static_cast<uint64_t>(k.level) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(k.lo) + 0x9e3779b97f4a7c15ULL + (h << 6);
      h ^= static_cast<uint64_t>(k.hi) + 0x9e3779b97f4a7c15ULL + (h << 6);
      return static_cast<size_t>(h);
    }
  };
  struct IteKey {
    NodeId f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    size_t operator()(const IteKey& k) const {
      uint64_t h = static_cast<uint64_t>(k.f) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(k.g) + 0x9e3779b97f4a7c15ULL + (h << 6);
      h ^= static_cast<uint64_t>(k.h) + 0x9e3779b97f4a7c15ULL + (h << 6);
      return static_cast<size_t>(h);
    }
  };

  std::vector<int> var_order_;
  std::unordered_map<int, int> level_of_var_;
  std::vector<Node> nodes_;
  std::unordered_map<Key, NodeId, KeyHash> unique_;
  std::unordered_map<IteKey, NodeId, IteKeyHash> ite_cache_;
};

}  // namespace ctsdd

#endif  // CTSDD_OBDD_OBDD_H_
