#include "obdd/obdd.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>

#include "util/hashing.h"

namespace ctsdd {

ObddManager::ObddManager(std::vector<int> var_order, Options options)
    : var_order_(std::move(var_order)),
      ite_cache_(options.ite_cache_slots),
      nary_cache_(options.nary_cache_slots) {
  for (int i = 0; i < num_levels(); ++i) {
    const auto [it, inserted] = level_of_var_.emplace(var_order_[i], i);
    CTSDD_CHECK(inserted) << "duplicate variable in order";
    (void)it;
  }
  // Terminals occupy ids 0 and 1 with a sentinel level beyond the last.
  nodes_.push_back({num_levels(), -1, -1});
  nodes_.push_back({num_levels(), -1, -1});
}

int ObddManager::LevelOf(int var) const {
  const auto it = level_of_var_.find(var);
  return it == level_of_var_.end() ? -1 : it->second;
}

ObddManager::NodeId ObddManager::MakeNode(int level, NodeId lo, NodeId hi) {
  thread_check_.Check();
  if (lo == hi) return lo;  // reduction rule
  CTSDD_CHECK_LT(level, nodes_[lo].level);
  CTSDD_CHECK_LT(level, nodes_[hi].level);
  const uint64_t hash = Hash3(static_cast<uint64_t>(level),
                              static_cast<uint64_t>(lo),
                              static_cast<uint64_t>(hi));
  const int32_t found = unique_.Find(hash, [&](int32_t id) {
    const Node& n = nodes_[id];
    return n.level == level && n.lo == lo && n.hi == hi;
  });
  if (found != UniqueTable::kEmpty) return found;
  NodeId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
    nodes_[id] = {level, lo, hi};
  } else {
    nodes_.push_back({level, lo, hi});
    id = static_cast<NodeId>(nodes_.size()) - 1;
  }
  unique_.Insert(hash, id);
  return id;
}

void ObddManager::AddRootRef(NodeId id) {
  thread_check_.Check();
  if (IsTerminal(id)) return;
  CTSDD_CHECK_NE(nodes_[id].level, kDeadLevel);
  if (external_refs_.size() < nodes_.size()) {
    external_refs_.resize(nodes_.size(), 0);
  }
  ++external_refs_[id];
}

void ObddManager::ReleaseRootRef(NodeId id) {
  thread_check_.Check();
  if (IsTerminal(id)) return;
  CTSDD_CHECK(id >= 0 && static_cast<size_t>(id) < external_refs_.size() &&
              external_refs_[id] > 0)
      << "ReleaseRootRef without a matching AddRootRef";
  --external_refs_[id];
}

size_t ObddManager::GarbageCollect() {
  thread_check_.Check();
  CTSDD_CHECK_EQ(op_depth_, 0) << "GC inside an operation";
  ++gc_stats_.runs;
  // Mark from the registered external roots.
  std::vector<bool> marked(nodes_.size(), false);
  marked[kFalse] = marked[kTrue] = true;
  std::vector<NodeId> stack;
  for (size_t id = 0; id < external_refs_.size(); ++id) {
    if (external_refs_[id] > 0) stack.push_back(static_cast<NodeId>(id));
  }
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (marked[u]) continue;
    marked[u] = true;
    stack.push_back(nodes_[u].lo);
    stack.push_back(nodes_[u].hi);
  }
  // Sweep: dead internal nodes go to the free list; the unique table is
  // rebuilt over the survivors (open addressing cannot delete in place).
  size_t live = 0;
  for (size_t id = 2; id < nodes_.size(); ++id) {
    if (marked[id] && nodes_[id].level != kDeadLevel) ++live;
  }
  unique_.Clear(live);
  size_t reclaimed = 0;
  for (size_t id = 2; id < nodes_.size(); ++id) {
    Node& n = nodes_[id];
    if (n.level == kDeadLevel) continue;  // already on the free list
    if (!marked[id]) {
      n = {kDeadLevel, -1, -1};
      free_ids_.push_back(static_cast<NodeId>(id));
      ++reclaimed;
      continue;
    }
    unique_.Insert(Hash3(static_cast<uint64_t>(n.level),
                         static_cast<uint64_t>(n.lo),
                         static_cast<uint64_t>(n.hi)),
                   static_cast<int32_t>(id));
  }
  // Freed ids may be reused, so cached results naming them must go.
  ite_cache_.Clear();
  nary_cache_.Clear();
  gc_stats_.reclaimed += reclaimed;
  return reclaimed;
}

void ObddManager::ShrinkCaches() {
  thread_check_.Check();
  CTSDD_CHECK_EQ(op_depth_, 0) << "ShrinkCaches inside an operation";
  ite_cache_.Shrink();
  nary_cache_.Shrink();
  ite_memo_.Shrink();
  nary_memo_.Shrink();
}

ObddManager::NodeId ObddManager::Literal(int var, bool positive) {
  const int level = LevelOf(var);
  CTSDD_CHECK_GE(level, 0) << "variable x" << var << " not in order";
  return positive ? MakeNode(level, kFalse, kTrue)
                  : MakeNode(level, kTrue, kFalse);
}

ObddManager::NodeId ObddManager::CofactorLo(NodeId f, int level) const {
  const Node& n = nodes_[f];
  return n.level == level ? n.lo : f;
}

ObddManager::NodeId ObddManager::CofactorHi(NodeId f, int level) const {
  const Node& n = nodes_[f];
  return n.level == level ? n.hi : f;
}

ObddManager::NodeId ObddManager::Ite(NodeId f, NodeId g, NodeId h) {
  thread_check_.Check();
  ++op_depth_;
  const NodeId result = IteRec(f, g, h);
  LeaveOp();
  return result;
}

ObddManager::NodeId ObddManager::IteRec(NodeId f, NodeId g, NodeId h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  const IteKey key{f, g, h};
  const uint64_t hash = Hash3(static_cast<uint64_t>(f),
                              static_cast<uint64_t>(g),
                              static_cast<uint64_t>(h));
  NodeId cached;
  if (ite_cache_.Lookup(hash, key, &cached)) return cached;
  if (ite_memo_.Lookup(hash, key, &cached)) return cached;
  const int level =
      std::min({nodes_[f].level, nodes_[g].level, nodes_[h].level});
  const NodeId lo = IteRec(CofactorLo(f, level), CofactorLo(g, level),
                           CofactorLo(h, level));
  const NodeId hi = IteRec(CofactorHi(f, level), CofactorHi(g, level),
                           CofactorHi(h, level));
  const NodeId result = MakeNode(level, lo, hi);
  ite_cache_.Store(hash, key, result);
  ite_memo_.Insert(hash, key, result);
  return result;
}

ObddManager::NodeId ObddManager::Not(NodeId f) {
  return Ite(f, kFalse, kTrue);
}

ObddManager::NodeId ObddManager::And(NodeId f, NodeId g) {
  return Ite(f, g, kFalse);
}

ObddManager::NodeId ObddManager::Or(NodeId f, NodeId g) {
  return Ite(f, kTrue, g);
}

ObddManager::NodeId ObddManager::Xor(NodeId f, NodeId g) {
  return Ite(f, Not(g), g);
}

ObddManager::NodeId ObddManager::ApplyN(std::vector<NodeId> ops,
                                        bool is_and) {
  thread_check_.Check();
  ++op_depth_;
  const NodeId result = ApplyNRec(std::move(ops), is_and);
  LeaveOp();
  return result;
}

ObddManager::NodeId ObddManager::ApplyNRec(std::vector<NodeId> ops,
                                           bool is_and) {
  const NodeId absorbing = is_and ? kFalse : kTrue;
  const NodeId neutral = is_and ? kTrue : kFalse;
  // Normalize: drop neutral operands, short-circuit on absorbing ones,
  // canonicalize order (min level first) and deduplicate.
  size_t out = 0;
  for (const NodeId op : ops) {
    if (op == absorbing) return absorbing;
    if (op != neutral) ops[out++] = op;
  }
  ops.resize(out);
  std::sort(ops.begin(), ops.end(), [&](NodeId a, NodeId b) {
    return nodes_[a].level != nodes_[b].level
               ? nodes_[a].level < nodes_[b].level
               : a < b;
  });
  ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
  if (ops.empty()) return neutral;
  if (ops.size() == 1) return ops[0];
  if (ops.size() == 2) {
    return is_and ? And(ops[0], ops[1]) : Or(ops[0], ops[1]);
  }
  uint64_t hash = HashMix64(is_and ? 0x517cc1b727220a95ULL : 1);
  for (const NodeId op : ops) {
    hash = HashCombine(hash, static_cast<uint64_t>(op));
  }
  NaryKey key{is_and, ops};
  NodeId cached;
  if (nary_cache_.Lookup(hash, key, &cached)) return cached;
  if (nary_memo_.Lookup(hash, key, &cached)) return cached;
  const int level = nodes_[ops[0]].level;  // min level after the sort
  std::vector<NodeId> lo_ops;
  std::vector<NodeId> hi_ops;
  lo_ops.reserve(ops.size());
  hi_ops.reserve(ops.size());
  for (const NodeId op : ops) {
    lo_ops.push_back(CofactorLo(op, level));
    hi_ops.push_back(CofactorHi(op, level));
  }
  const NodeId lo = ApplyNRec(std::move(lo_ops), is_and);
  const NodeId hi = ApplyNRec(std::move(hi_ops), is_and);
  const NodeId result = MakeNode(level, lo, hi);
  nary_cache_.Store(hash, key, result);
  nary_memo_.Insert(hash, std::move(key), result);
  return result;
}

ObddManager::NodeId ObddManager::AndN(std::vector<NodeId> ops) {
  return ApplyN(std::move(ops), /*is_and=*/true);
}

ObddManager::NodeId ObddManager::OrN(std::vector<NodeId> ops) {
  return ApplyN(std::move(ops), /*is_and=*/false);
}

ObddManager::NodeId ObddManager::Restrict(NodeId f, int var, bool value) {
  const int level = LevelOf(var);
  CTSDD_CHECK_GE(level, 0);
  // Recursive restrict with a local cache keyed by node id.
  std::unordered_map<NodeId, NodeId> cache;
  std::function<NodeId(NodeId)> rec = [&](NodeId u) -> NodeId {
    if (IsTerminal(u) || nodes_[u].level > level) return u;
    const auto it = cache.find(u);
    if (it != cache.end()) return it->second;
    NodeId result;
    if (nodes_[u].level == level) {
      result = value ? nodes_[u].hi : nodes_[u].lo;
    } else {
      result = MakeNode(nodes_[u].level, rec(nodes_[u].lo), rec(nodes_[u].hi));
    }
    cache.emplace(u, result);
    return result;
  };
  return rec(f);
}

bool ObddManager::Evaluate(NodeId f,
                           const std::vector<bool>& values_by_level) const {
  CTSDD_CHECK_EQ(static_cast<int>(values_by_level.size()), num_levels());
  while (!IsTerminal(f)) {
    const Node& n = nodes_[f];
    f = values_by_level[n.level] ? n.hi : n.lo;
  }
  return f == kTrue;
}

uint64_t ObddManager::CountModels(NodeId f) const {
  CTSDD_CHECK_LE(num_levels(), 63);
  std::unordered_map<NodeId, uint64_t> memo;
  // count(u) = number of models of the subfunction over levels
  // [node(u).level, num_levels).
  std::function<uint64_t(NodeId)> rec = [&](NodeId u) -> uint64_t {
    if (u == kFalse) return 0;
    if (u == kTrue) return 1;
    const auto it = memo.find(u);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[u];
    const uint64_t lo = rec(n.lo)
                        << (nodes_[n.lo].level - n.level - 1);
    const uint64_t hi = rec(n.hi)
                        << (nodes_[n.hi].level - n.level - 1);
    const uint64_t result = lo + hi;
    memo.emplace(u, result);
    return result;
  };
  return rec(f) << nodes_[f].level;
}

double ObddManager::WeightedModelCount(
    NodeId f, const std::vector<double>& prob_by_level) const {
  CTSDD_CHECK_EQ(static_cast<int>(prob_by_level.size()), num_levels());
  std::unordered_map<NodeId, double> memo;
  std::function<double(NodeId)> rec = [&](NodeId u) -> double {
    if (u == kFalse) return 0.0;
    if (u == kTrue) return 1.0;
    const auto it = memo.find(u);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[u];
    const double p = prob_by_level[n.level];
    const double result = (1.0 - p) * rec(n.lo) + p * rec(n.hi);
    memo.emplace(u, result);
    return result;
  };
  return rec(f);
}

int ObddManager::Size(NodeId f) const {
  std::set<NodeId> seen;
  std::vector<NodeId> stack = {f};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (IsTerminal(u) || seen.count(u)) continue;
    seen.insert(u);
    stack.push_back(nodes_[u].lo);
    stack.push_back(nodes_[u].hi);
  }
  return static_cast<int>(seen.size());
}

std::vector<int> ObddManager::LevelProfile(NodeId f) const {
  std::vector<int> profile(num_levels(), 0);
  std::set<NodeId> seen;
  std::vector<NodeId> stack = {f};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (IsTerminal(u) || seen.count(u)) continue;
    seen.insert(u);
    ++profile[nodes_[u].level];
    stack.push_back(nodes_[u].lo);
    stack.push_back(nodes_[u].hi);
  }
  return profile;
}

int ObddManager::Width(NodeId f) const {
  const auto profile = LevelProfile(f);
  return profile.empty() ? 0 : *std::max_element(profile.begin(),
                                                 profile.end());
}

}  // namespace ctsdd
