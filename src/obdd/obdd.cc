#include "obdd/obdd.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>

namespace ctsdd {

ObddManager::ObddManager(std::vector<int> var_order)
    : var_order_(std::move(var_order)) {
  for (int i = 0; i < num_levels(); ++i) {
    const auto [it, inserted] = level_of_var_.emplace(var_order_[i], i);
    CTSDD_CHECK(inserted) << "duplicate variable in order";
    (void)it;
  }
  // Terminals occupy ids 0 and 1 with a sentinel level beyond the last.
  nodes_.push_back({num_levels(), -1, -1});
  nodes_.push_back({num_levels(), -1, -1});
}

int ObddManager::LevelOf(int var) const {
  const auto it = level_of_var_.find(var);
  return it == level_of_var_.end() ? -1 : it->second;
}

ObddManager::NodeId ObddManager::MakeNode(int level, NodeId lo, NodeId hi) {
  if (lo == hi) return lo;  // reduction rule
  const Key key{level, lo, hi};
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  nodes_.push_back({level, lo, hi});
  const NodeId id = static_cast<NodeId>(nodes_.size()) - 1;
  unique_.emplace(key, id);
  return id;
}

ObddManager::NodeId ObddManager::Literal(int var, bool positive) {
  const int level = LevelOf(var);
  CTSDD_CHECK_GE(level, 0) << "variable x" << var << " not in order";
  return positive ? MakeNode(level, kFalse, kTrue)
                  : MakeNode(level, kTrue, kFalse);
}

ObddManager::NodeId ObddManager::CofactorLo(NodeId f, int level) const {
  const Node& n = nodes_[f];
  return n.level == level ? n.lo : f;
}

ObddManager::NodeId ObddManager::CofactorHi(NodeId f, int level) const {
  const Node& n = nodes_[f];
  return n.level == level ? n.hi : f;
}

ObddManager::NodeId ObddManager::Ite(NodeId f, NodeId g, NodeId h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  const IteKey key{f, g, h};
  const auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;
  const int level =
      std::min({nodes_[f].level, nodes_[g].level, nodes_[h].level});
  const NodeId lo =
      Ite(CofactorLo(f, level), CofactorLo(g, level), CofactorLo(h, level));
  const NodeId hi =
      Ite(CofactorHi(f, level), CofactorHi(g, level), CofactorHi(h, level));
  const NodeId result = MakeNode(level, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

ObddManager::NodeId ObddManager::Not(NodeId f) {
  return Ite(f, kFalse, kTrue);
}

ObddManager::NodeId ObddManager::And(NodeId f, NodeId g) {
  return Ite(f, g, kFalse);
}

ObddManager::NodeId ObddManager::Or(NodeId f, NodeId g) {
  return Ite(f, kTrue, g);
}

ObddManager::NodeId ObddManager::Xor(NodeId f, NodeId g) {
  return Ite(f, Not(g), g);
}

ObddManager::NodeId ObddManager::Restrict(NodeId f, int var, bool value) {
  const int level = LevelOf(var);
  CTSDD_CHECK_GE(level, 0);
  // Recursive restrict with a local cache keyed by node id.
  std::unordered_map<NodeId, NodeId> cache;
  std::vector<NodeId> stack = {f};
  // Simple recursive lambda (depth bounded by number of levels).
  std::function<NodeId(NodeId)> rec = [&](NodeId u) -> NodeId {
    if (IsTerminal(u) || nodes_[u].level > level) return u;
    const auto it = cache.find(u);
    if (it != cache.end()) return it->second;
    NodeId result;
    if (nodes_[u].level == level) {
      result = value ? nodes_[u].hi : nodes_[u].lo;
    } else {
      result = MakeNode(nodes_[u].level, rec(nodes_[u].lo), rec(nodes_[u].hi));
    }
    cache.emplace(u, result);
    return result;
  };
  (void)stack;
  return rec(f);
}

bool ObddManager::Evaluate(NodeId f,
                           const std::vector<bool>& values_by_level) const {
  CTSDD_CHECK_EQ(static_cast<int>(values_by_level.size()), num_levels());
  while (!IsTerminal(f)) {
    const Node& n = nodes_[f];
    f = values_by_level[n.level] ? n.hi : n.lo;
  }
  return f == kTrue;
}

uint64_t ObddManager::CountModels(NodeId f) const {
  CTSDD_CHECK_LE(num_levels(), 63);
  std::unordered_map<NodeId, uint64_t> memo;
  // count(u) = number of models of the subfunction over levels
  // [node(u).level, num_levels).
  std::function<uint64_t(NodeId)> rec = [&](NodeId u) -> uint64_t {
    if (u == kFalse) return 0;
    if (u == kTrue) return 1;
    const auto it = memo.find(u);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[u];
    const uint64_t lo = rec(n.lo)
                        << (nodes_[n.lo].level - n.level - 1);
    const uint64_t hi = rec(n.hi)
                        << (nodes_[n.hi].level - n.level - 1);
    const uint64_t result = lo + hi;
    memo.emplace(u, result);
    return result;
  };
  return rec(f) << nodes_[f].level;
}

double ObddManager::WeightedModelCount(
    NodeId f, const std::vector<double>& prob_by_level) const {
  CTSDD_CHECK_EQ(static_cast<int>(prob_by_level.size()), num_levels());
  std::unordered_map<NodeId, double> memo;
  std::function<double(NodeId)> rec = [&](NodeId u) -> double {
    if (u == kFalse) return 0.0;
    if (u == kTrue) return 1.0;
    const auto it = memo.find(u);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[u];
    const double p = prob_by_level[n.level];
    const double result = (1.0 - p) * rec(n.lo) + p * rec(n.hi);
    memo.emplace(u, result);
    return result;
  };
  return rec(f);
}

int ObddManager::Size(NodeId f) const {
  std::set<NodeId> seen;
  std::vector<NodeId> stack = {f};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (IsTerminal(u) || seen.count(u)) continue;
    seen.insert(u);
    stack.push_back(nodes_[u].lo);
    stack.push_back(nodes_[u].hi);
  }
  return static_cast<int>(seen.size());
}

std::vector<int> ObddManager::LevelProfile(NodeId f) const {
  std::vector<int> profile(num_levels(), 0);
  std::set<NodeId> seen;
  std::vector<NodeId> stack = {f};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (IsTerminal(u) || seen.count(u)) continue;
    seen.insert(u);
    ++profile[nodes_[u].level];
    stack.push_back(nodes_[u].lo);
    stack.push_back(nodes_[u].hi);
  }
  return profile;
}

int ObddManager::Width(NodeId f) const {
  const auto profile = LevelProfile(f);
  return profile.empty() ? 0 : *std::max_element(profile.begin(),
                                                 profile.end());
}

}  // namespace ctsdd
