#include "obdd/obdd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <set>

#include "obs/trace.h"
#include "util/fault_injection.h"
#include "util/hashing.h"

namespace ctsdd {

ObddManager::ObddManager(std::vector<int> var_order, Options options)
    : var_order_(std::move(var_order)),
      ite_cache_(options.ite_cache_slots),
      nary_cache_(options.nary_cache_slots) {
  for (int i = 0; i < num_levels(); ++i) {
    const auto [it, inserted] = level_of_var_.emplace(var_order_[i], i);
    CTSDD_CHECK(inserted) << "duplicate variable in order";
    (void)it;
  }
  // Terminals occupy ids 0 and 1 with a sentinel level beyond the last.
  nodes_.PushBack({num_levels(), -1, -1});
  nodes_.PushBack({num_levels(), -1, -1});
}

int ObddManager::LevelOf(int var) const {
  const auto it = level_of_var_.find(var);
  return it == level_of_var_.end() ? -1 : it->second;
}

template <bool kPar>
ObddManager::NodeId ObddManager::MakeNodeT(int level, NodeId lo, NodeId hi) {
  if (lo == hi) return lo;  // reduction rule
  // Abort-sentinel children unwind the construction. The register-only
  // sign test beats consulting the budget here: kAborted only arises
  // while a budget is attached, and a tripped budget is re-observed at
  // the next lease refill (denying the allocation) anyway.
  if ((lo | hi) < 0) return kAborted;
  CTSDD_CHECK_LT(level, nodes_[lo].level);
  CTSDD_CHECK_LT(level, nodes_[hi].level);
  const uint64_t hash = Hash3(static_cast<uint64_t>(level),
                              static_cast<uint64_t>(lo),
                              static_cast<uint64_t>(hi));
  const auto eq = [&](int32_t id) {
    const Node& n = nodes_[id];
    return n.level == level && n.lo == lo && n.hi == hi;
  };
  if constexpr (kPar) {
    return unique_.FindOrInsert(
        hash, eq, [&] { return AllocNodePar(level, lo, hi); });
  } else {
    const int32_t found = unique_.Find(hash, eq);
    if (found != UniqueTable::kEmpty) return found;
    if (budget_ != nullptr && !ChargeSeq()) return kAborted;
    CTSDD_FAULT_POINT("obdd.alloc");
    NodeId id;
    if (!free_ids_.empty()) {
      id = free_ids_.back();
      free_ids_.pop_back();
      nodes_[id] = {level, lo, hi};
    } else {
      id = static_cast<NodeId>(nodes_.PushBack({level, lo, hi}));
    }
    unique_.Insert(hash, id);
    return id;
  }
}

ObddManager::NodeId ObddManager::AllocNodePar(int level, NodeId lo,
                                              NodeId hi) {
  AllocCursor& cursor = alloc_cursors_[pool_->CurrentSlot()];
  if (budget_ != nullptr) ChargePar(cursor);
  CTSDD_FAULT_POINT("obdd.alloc");
  if (!cursor.recycled.empty()) {
    const NodeId id = cursor.recycled.back();
    cursor.recycled.pop_back();
    nodes_[id] = {level, lo, hi};
    return id;
  }
  if (cursor.next == cursor.end) {
    // Refill from the GC free list before claiming fresh ids: without
    // reuse, every parallel operation would grow the store past what
    // collection can ever reclaim.
    {
      SpinLockGuard guard(free_ids_lock_);
      const size_t take = std::min(kAllocBlock, free_ids_.size());
      if (take > 0) {
        cursor.recycled.assign(free_ids_.end() - take, free_ids_.end());
        free_ids_.resize(free_ids_.size() - take);
      }
    }
    if (!cursor.recycled.empty()) {
      const NodeId id = cursor.recycled.back();
      cursor.recycled.pop_back();
      nodes_[id] = {level, lo, hi};
      return id;
    }
    cursor.next = nodes_.ClaimBlock(kAllocBlock);
    cursor.end = cursor.next + kAllocBlock;
  }
  const NodeId id = static_cast<NodeId>(cursor.next++);
  nodes_[id] = {level, lo, hi};
  return id;
}

ObddManager::NodeId ObddManager::MakeNode(int level, NodeId lo, NodeId hi) {
  thread_check_.Check();
  return par_active_ ? MakeNodeT<true>(level, lo, hi)
                     : MakeNodeT<false>(level, lo, hi);
}

void ObddManager::BeginParallelRegion() {
  CTSDD_CHECK(pool_ != nullptr && pool_->parallel())
      << "BeginParallelRegion without a parallel executor attached";
  CTSDD_CHECK(!par_active_) << "parallel regions do not nest";
  CTSDD_CHECK_EQ(op_depth_, 0) << "parallel region inside an operation";
  thread_check_.Check();  // verify ownership before suspending it
  thread_check_.BeginShared();
  alloc_cursors_.assign(pool_->max_slots(), AllocCursor{});
  // Pre-size the striped caches: they cannot grow while the region runs,
  // and warm-up thrash on the apply path is pure recomputation.
  ite_cache_.BeginConcurrent(1 << 16);
  nary_cache_.BeginConcurrent(1 << 12);
  ite_memo_.BeginConcurrent();
  nary_memo_.BeginConcurrent();
  par_active_ = true;
}

void ObddManager::EndParallelRegion() {
  CTSDD_CHECK(par_active_);
  par_active_ = false;
  // Unused tails of per-worker id blocks become ordinary free-list
  // entries: marked dead, reusable by the next sequential MakeNode, and
  // invisible to GC marking.
  for (AllocCursor& cursor : alloc_cursors_) {
    for (size_t id = cursor.next; id < cursor.end; ++id) {
      nodes_[id] = {kDeadLevel, -1, -1};
      free_ids_.push_back(static_cast<NodeId>(id));
    }
    // Unused recycled ids go back too (they are already dead-marked).
    free_ids_.insert(free_ids_.end(), cursor.recycled.begin(),
                     cursor.recycled.end());
    cursor = AllocCursor{};
  }
  ite_cache_.EndConcurrent();
  nary_cache_.EndConcurrent();
  ite_memo_.EndConcurrent();
  nary_memo_.EndConcurrent();
  // The memos were region-scoped: one reset bounds their footprint by
  // the region's largest live set, mirroring LeaveOp.
  ite_memo_.Reset();
  nary_memo_.Reset();
  thread_check_.EndShared();
}

void ObddManager::AttachBudget(WorkBudget* budget) {
  thread_check_.Check();
  CTSDD_CHECK_EQ(op_depth_, 0) << "AttachBudget inside an operation";
  CTSDD_CHECK(!par_active_) << "AttachBudget inside a parallel region";
  budget_ = budget;
  budget_lease_ = 0;
  lease_chunk_ = 0;
  if (budget != nullptr) {
    // Lease granularity: fine enough that overshoot stays within the
    // acceptance bound (<= budget/16), coarse enough that the shared
    // atomic is off the per-node path.
    const uint64_t b = budget->node_budget();
    lease_chunk_ = static_cast<uint32_t>(
        b == 0 ? 256
               : std::min<uint64_t>(256, std::max<uint64_t>(1, b / 16)));
  }
}

bool ObddManager::RefillSeqLease() {
  if (!AdmitMemGrowth()) return false;
  budget_lease_ = static_cast<uint32_t>(budget_->AcquireLease(lease_chunk_));
  if (budget_lease_ == 0) return false;
  --budget_lease_;
  return true;
}

void ObddManager::RefillParLease(AllocCursor& cursor) {
  if (!AdmitMemGrowth()) {
    cursor.lease = 0;
    return;
  }
  cursor.lease = static_cast<uint32_t>(budget_->AcquireLease(lease_chunk_));
  if (cursor.lease > 0) --cursor.lease;
}

bool ObddManager::AdmitMemGrowth() {
  if (mem_governor_ == nullptr || !mem_governor_->enabled()) return true;
  // Worst-case accounted growth before the next refill check: the unique
  // table may double (possibly twice while small), each memo shard may
  // double or lazily allocate, and the node store may open fresh chunks.
  // Charging is deny-before-allocate at this seam only, so the margin
  // must cover everything mandatory-charged in between. Memo bytes come
  // from the account's atomic per-layer counter, not the memos' num_slots
  // walk — parallel workers hit this seam while other stripes grow.
  const uint64_t burst =
      2 * unique_.MemoryBytes() +
      static_cast<uint64_t>(mem_account_->bytes(MemLayer::kMemo)) +
      kMemBurstSlack;
  if (mem_governor_->AdmitProjected(burst)) return true;
  budget_->MarkMemoryPressure();
  budget_->Cancel(StatusCode::kResourceExhausted);
  return false;
}

void ObddManager::AttachMemAccount(MemAccount* account) {
  thread_check_.Check();
  CTSDD_CHECK_EQ(op_depth_, 0) << "AttachMemAccount inside an operation";
  CTSDD_CHECK(!par_active_) << "AttachMemAccount inside a parallel region";
  mem_account_ = account;
  mem_governor_ = account != nullptr ? account->governor() : nullptr;
  nodes_.SetMemAccount(account);
  unique_.SetMemAccount(account);
  ite_cache_.SetMemAccount(account);
  nary_cache_.SetMemAccount(account);
  ite_memo_.SetMemAccount(account);
  nary_memo_.SetMemAccount(account);
}

Status ObddManager::Validate() const {
  const int levels = num_levels();
  const size_t n = nodes_.size();
  std::vector<bool> dead(n, false);
  for (const NodeId id : free_ids_) {
    if (id < 2 || static_cast<size_t>(id) >= n) {
      return Status::Internal("free-list id out of range");
    }
    if (nodes_[id].level != kDeadLevel) {
      return Status::Internal("free-list id not dead-marked");
    }
    dead[id] = true;
  }
  for (size_t id = 2; id < n; ++id) {
    const Node& node = nodes_[id];
    if (node.level == kDeadLevel) {
      if (!dead[id]) {
        return Status::Internal("dead node missing from the free list");
      }
      continue;
    }
    if (node.level < 0 || node.level >= levels) {
      return Status::Internal("node level out of range");
    }
    if (node.lo < 0 || static_cast<size_t>(node.lo) >= n || node.hi < 0 ||
        static_cast<size_t>(node.hi) >= n) {
      return Status::Internal("node child out of range");
    }
    if (node.lo == node.hi) {
      return Status::Internal("unreduced node (lo == hi)");
    }
    if (nodes_[node.lo].level <= node.level ||
        nodes_[node.hi].level <= node.level) {
      return Status::Internal("child level not below parent (or dead child)");
    }
    const uint64_t hash = Hash3(static_cast<uint64_t>(node.level),
                                static_cast<uint64_t>(node.lo),
                                static_cast<uint64_t>(node.hi));
    const int32_t found = unique_.Find(hash, [&](int32_t cand) {
      const Node& c = nodes_[cand];
      return c.level == node.level && c.lo == node.lo && c.hi == node.hi;
    });
    if (found != static_cast<int32_t>(id)) {
      return Status::Internal(
          found == UniqueTable::kEmpty
              ? "live node missing from the unique table"
              : "duplicate node in the unique table");
    }
  }
  return Status::Ok();
}

void ObddManager::AddRootRef(NodeId id) {
  thread_check_.Check();
  if (IsTerminal(id)) return;
  CTSDD_CHECK_NE(nodes_[id].level, kDeadLevel);
  if (external_refs_.size() < nodes_.size()) {
    external_refs_.resize(nodes_.size(), 0);
  }
  ++external_refs_[id];
}

void ObddManager::ReleaseRootRef(NodeId id) {
  thread_check_.Check();
  if (IsTerminal(id)) return;
  CTSDD_CHECK(id >= 0 && static_cast<size_t>(id) < external_refs_.size() &&
              external_refs_[id] > 0)
      << "ReleaseRootRef without a matching AddRootRef";
  --external_refs_[id];
}

size_t ObddManager::GarbageCollect() {
  thread_check_.Check();
  CTSDD_CHECK_EQ(op_depth_, 0) << "GC inside an operation";
  CTSDD_CHECK(!par_active_) << "GC inside a parallel region";
  obs::TraceSpan gc_span("gc", "obdd.gc");
  ++gc_stats_.runs;
  // Mark from the registered external roots.
  std::vector<uint8_t> marked(nodes_.size(), 0);
  marked[kFalse] = marked[kTrue] = 1;
  std::vector<NodeId> roots;
  for (size_t id = 0; id < external_refs_.size(); ++id) {
    if (external_refs_[id] > 0) roots.push_back(static_cast<NodeId>(id));
  }
  if (pool_ != nullptr && pool_->parallel() && roots.size() > 1) {
    // Mark as exec tasks, one DFS per root: claiming a node with a
    // relaxed atomic exchange makes subgraphs shared between roots
    // traverse exactly once, and running on the shared pool lets a cold
    // compile on another shard overlap this GC pause instead of
    // serializing behind it.
    exec::ParallelFor(pool_, roots.size(), [&](size_t i) {
      std::vector<NodeId> stack{roots[i]};
      while (!stack.empty()) {
        const NodeId u = stack.back();
        stack.pop_back();
        if (std::atomic_ref<uint8_t>(marked[u]).exchange(
                1, std::memory_order_relaxed)) {
          continue;
        }
        stack.push_back(nodes_[u].lo);
        stack.push_back(nodes_[u].hi);
      }
    });
  } else {
    std::vector<NodeId> stack = std::move(roots);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      if (marked[u]) continue;
      marked[u] = 1;
      stack.push_back(nodes_[u].lo);
      stack.push_back(nodes_[u].hi);
    }
  }
  // Sweep: dead internal nodes go to the free list; the unique table is
  // rebuilt over the survivors (open addressing cannot delete in place).
  size_t live = 0;
  for (size_t id = 2; id < nodes_.size(); ++id) {
    if (marked[id] && nodes_[id].level != kDeadLevel) ++live;
  }
  unique_.Clear(live);
  size_t reclaimed = 0;
  for (size_t id = 2; id < nodes_.size(); ++id) {
    Node& n = nodes_[id];
    if (n.level == kDeadLevel) continue;  // already on the free list
    if (!marked[id]) {
      n = {kDeadLevel, -1, -1};
      free_ids_.push_back(static_cast<NodeId>(id));
      ++reclaimed;
      continue;
    }
    unique_.Insert(Hash3(static_cast<uint64_t>(n.level),
                         static_cast<uint64_t>(n.lo),
                         static_cast<uint64_t>(n.hi)),
                   static_cast<int32_t>(id));
  }
  // Freed ids may be reused, so cached results naming them must go.
  ite_cache_.Clear();
  nary_cache_.Clear();
  gc_stats_.reclaimed += reclaimed;
#ifndef NDEBUG
  // GC is a quiescent point: the rolled-up account must agree with the
  // recomputed per-structure bytes exactly, or accounting has drifted.
  if (mem_account_ != nullptr) {
    CTSDD_CHECK_EQ(mem_account_->bytes(),
                   static_cast<uint64_t>(MemoryBytes()))
        << "OBDD memory accounting drift after GC";
  }
#endif
  gc_span.AddArg("reclaimed", reclaimed);
  return reclaimed;
}

void ObddManager::ShrinkCaches() {
  thread_check_.Check();
  CTSDD_CHECK_EQ(op_depth_, 0) << "ShrinkCaches inside an operation";
  CTSDD_CHECK(!par_active_) << "ShrinkCaches inside a parallel region";
  ite_cache_.Shrink();
  nary_cache_.Shrink();
  ite_memo_.Shrink();
  nary_memo_.Shrink();
}

ObddManager::NodeId ObddManager::Literal(int var, bool positive) {
  const int level = LevelOf(var);
  CTSDD_CHECK_GE(level, 0) << "variable x" << var << " not in order";
  return positive ? MakeNode(level, kFalse, kTrue)
                  : MakeNode(level, kTrue, kFalse);
}

ObddManager::NodeId ObddManager::CofactorLo(NodeId f, int level) const {
  const Node& n = nodes_[f];
  return n.level == level ? n.lo : f;
}

ObddManager::NodeId ObddManager::CofactorHi(NodeId f, int level) const {
  const Node& n = nodes_[f];
  return n.level == level ? n.hi : f;
}

ObddManager::NodeId ObddManager::Ite(NodeId f, NodeId g, NodeId h) {
  thread_check_.Check();
  if (par_active_) {
    // Nested call issued from inside an open region (a compiler task or
    // a caller that spans several operations in one region): recurse on
    // the concurrent path; the region owner resets the memos.
    return IteRecT<true>(f, g, h, 0);
  }
  if (pool_ != nullptr && pool_->parallel()) {
    BeginParallelRegion();
    const NodeId result = IteRecT<true>(f, g, h, 0);
    EndParallelRegion();
    return result;
  }
  ++op_depth_;
  const NodeId result = IteRecT<false>(f, g, h, 0);
  LeaveOp();
  return result;
}

template <bool kPar>
ObddManager::NodeId ObddManager::IteRecT(NodeId f, NodeId g, NodeId h,
                                         int depth) {
  if (budget_ != nullptr && ((f | g | h) < 0 || budget_->tripped())) {
    return kAborted;
  }
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  const IteKey key{f, g, h};
  const uint64_t hash = Hash3(static_cast<uint64_t>(f),
                              static_cast<uint64_t>(g),
                              static_cast<uint64_t>(h));
  NodeId cached;
  if constexpr (kPar) {
    if (ite_cache_.LookupC(hash, key, &cached)) return cached;
    if (ite_memo_.LookupC(hash, key, &cached)) return cached;
  } else {
    if (ite_cache_.Lookup(hash, key, &cached)) return cached;
    if (ite_memo_.Lookup(hash, key, &cached)) return cached;
  }
  const int level =
      std::min({nodes_[f].level, nodes_[g].level, nodes_[h].level});
  const NodeId fl = CofactorLo(f, level), gl = CofactorLo(g, level),
               hl = CofactorLo(h, level);
  const NodeId fh = CofactorHi(f, level), gh = CofactorHi(g, level),
               hh = CofactorHi(h, level);
  NodeId lo, hi;
  if constexpr (kPar) {
    if (depth < kForkDepth) {
      exec::ParallelInvoke(
          pool_, [&] { lo = IteRecT<true>(fl, gl, hl, depth + 1); },
          [&] { hi = IteRecT<true>(fh, gh, hh, depth + 1); });
    } else {
      lo = IteRecT<true>(fl, gl, hl, depth + 1);
      hi = IteRecT<true>(fh, gh, hh, depth + 1);
    }
  } else {
    lo = IteRecT<false>(fl, gl, hl, depth + 1);
    hi = IteRecT<false>(fh, gh, hh, depth + 1);
  }
  const NodeId result = MakeNodeT<kPar>(level, lo, hi);
  if (budget_ != nullptr && result < 0) return result;  // never cached
  if constexpr (kPar) {
    ite_cache_.StoreC(hash, key, result);
    ite_memo_.InsertC(hash, key, result);
  } else {
    ite_cache_.Store(hash, key, result);
    ite_memo_.Insert(hash, key, result);
  }
  return result;
}

ObddManager::NodeId ObddManager::Not(NodeId f) {
  return Ite(f, kFalse, kTrue);
}

ObddManager::NodeId ObddManager::And(NodeId f, NodeId g) {
  return Ite(f, g, kFalse);
}

ObddManager::NodeId ObddManager::Or(NodeId f, NodeId g) {
  return Ite(f, kTrue, g);
}

ObddManager::NodeId ObddManager::Xor(NodeId f, NodeId g) {
  return Ite(f, Not(g), g);
}

ObddManager::NodeId ObddManager::ApplyN(std::vector<NodeId> ops,
                                        bool is_and) {
  thread_check_.Check();
  if (par_active_) {
    return ApplyNRecT<true>(std::move(ops), is_and, 0);
  }
  if (pool_ != nullptr && pool_->parallel()) {
    BeginParallelRegion();
    const NodeId result = ApplyNRecT<true>(std::move(ops), is_and, 0);
    EndParallelRegion();
    return result;
  }
  ++op_depth_;
  const NodeId result = ApplyNRecT<false>(std::move(ops), is_and, 0);
  LeaveOp();
  return result;
}

template <bool kPar>
ObddManager::NodeId ObddManager::ApplyNRecT(std::vector<NodeId> ops,
                                            bool is_and, int depth) {
  if (budget_ != nullptr) {
    if (budget_->tripped()) return kAborted;
    for (const NodeId op : ops) {
      if (op < 0) return kAborted;
    }
  }
  const NodeId absorbing = is_and ? kFalse : kTrue;
  const NodeId neutral = is_and ? kTrue : kFalse;
  // Normalize: drop neutral operands, short-circuit on absorbing ones,
  // canonicalize order (min level first) and deduplicate.
  // Decorated sort: pack (level, id) into one word per operand so the
  // comparator never re-touches the node store (one node access per
  // operand instead of one per comparison). Equal ids pack equally, so
  // the adjacent-unique dedup carries over.
  std::vector<uint64_t> keyed;
  keyed.reserve(ops.size());
  for (const NodeId op : ops) {
    if (op == absorbing) return absorbing;
    if (op != neutral) {
      keyed.push_back((static_cast<uint64_t>(nodes_[op].level) << 32) |
                      static_cast<uint32_t>(op));
    }
  }
  std::sort(keyed.begin(), keyed.end());
  keyed.erase(std::unique(keyed.begin(), keyed.end()), keyed.end());
  ops.resize(keyed.size());
  for (size_t i = 0; i < keyed.size(); ++i) {
    ops[i] = static_cast<NodeId>(static_cast<uint32_t>(keyed[i]));
  }
  if (ops.empty()) return neutral;
  if (ops.size() == 1) return ops[0];
  if (ops.size() == 2) {
    const NodeId a = ops[0], b = ops[1];
    return is_and ? IteRecT<kPar>(a, b, kFalse, depth)
                  : IteRecT<kPar>(a, kTrue, b, depth);
  }
  uint64_t hash = HashMix64(is_and ? 0x517cc1b727220a95ULL : 1);
  for (const NodeId op : ops) {
    hash = HashCombine(hash, static_cast<uint64_t>(op));
  }
  NaryKey key{is_and, ops};
  NodeId cached;
  if constexpr (kPar) {
    if (nary_cache_.LookupC(hash, key, &cached)) return cached;
    if (nary_memo_.LookupC(hash, key, &cached)) return cached;
  } else {
    if (nary_cache_.Lookup(hash, key, &cached)) return cached;
    if (nary_memo_.Lookup(hash, key, &cached)) return cached;
  }
  const int level = nodes_[ops[0]].level;  // min level after the sort
  std::vector<NodeId> lo_ops;
  std::vector<NodeId> hi_ops;
  lo_ops.reserve(ops.size());
  hi_ops.reserve(ops.size());
  for (const NodeId op : ops) {
    lo_ops.push_back(CofactorLo(op, level));
    hi_ops.push_back(CofactorHi(op, level));
  }
  NodeId lo, hi;
  if constexpr (kPar) {
    if (depth < kForkDepth) {
      exec::ParallelInvoke(
          pool_,
          [&] { lo = ApplyNRecT<true>(std::move(lo_ops), is_and, depth + 1); },
          [&] {
            hi = ApplyNRecT<true>(std::move(hi_ops), is_and, depth + 1);
          });
    } else {
      lo = ApplyNRecT<true>(std::move(lo_ops), is_and, depth + 1);
      hi = ApplyNRecT<true>(std::move(hi_ops), is_and, depth + 1);
    }
  } else {
    lo = ApplyNRecT<false>(std::move(lo_ops), is_and, depth + 1);
    hi = ApplyNRecT<false>(std::move(hi_ops), is_and, depth + 1);
  }
  const NodeId result = MakeNodeT<kPar>(level, lo, hi);
  if (budget_ != nullptr && result < 0) return result;  // never cached
  if constexpr (kPar) {
    nary_cache_.StoreC(hash, key, result);
    nary_memo_.InsertC(hash, std::move(key), result);
  } else {
    nary_cache_.Store(hash, key, result);
    nary_memo_.Insert(hash, std::move(key), result);
  }
  return result;
}

ObddManager::NodeId ObddManager::AndN(std::vector<NodeId> ops) {
  return ApplyN(std::move(ops), /*is_and=*/true);
}

ObddManager::NodeId ObddManager::OrN(std::vector<NodeId> ops) {
  return ApplyN(std::move(ops), /*is_and=*/false);
}

ObddManager::NodeId ObddManager::Restrict(NodeId f, int var, bool value) {
  const int level = LevelOf(var);
  CTSDD_CHECK_GE(level, 0);
  // Recursive restrict with a local cache keyed by node id.
  std::unordered_map<NodeId, NodeId> cache;
  std::function<NodeId(NodeId)> rec = [&](NodeId u) -> NodeId {
    if (IsTerminal(u) || nodes_[u].level > level) return u;
    const auto it = cache.find(u);
    if (it != cache.end()) return it->second;
    NodeId result;
    if (nodes_[u].level == level) {
      result = value ? nodes_[u].hi : nodes_[u].lo;
    } else {
      result = MakeNode(nodes_[u].level, rec(nodes_[u].lo), rec(nodes_[u].hi));
    }
    cache.emplace(u, result);
    return result;
  };
  return rec(f);
}

bool ObddManager::Evaluate(NodeId f,
                           const std::vector<bool>& values_by_level) const {
  CTSDD_CHECK_EQ(static_cast<int>(values_by_level.size()), num_levels());
  while (!IsTerminal(f)) {
    const Node& n = nodes_[f];
    f = values_by_level[n.level] ? n.hi : n.lo;
  }
  return f == kTrue;
}

uint64_t ObddManager::CountModels(NodeId f) const {
  CTSDD_CHECK_LE(num_levels(), 63);
  std::unordered_map<NodeId, uint64_t> memo;
  // count(u) = number of models of the subfunction over levels
  // [node(u).level, num_levels).
  std::function<uint64_t(NodeId)> rec = [&](NodeId u) -> uint64_t {
    if (u == kFalse) return 0;
    if (u == kTrue) return 1;
    const auto it = memo.find(u);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[u];
    const uint64_t lo = rec(n.lo)
                        << (nodes_[n.lo].level - n.level - 1);
    const uint64_t hi = rec(n.hi)
                        << (nodes_[n.hi].level - n.level - 1);
    const uint64_t result = lo + hi;
    memo.emplace(u, result);
    return result;
  };
  return rec(f) << nodes_[f].level;
}

double ObddManager::WeightedModelCount(
    NodeId f, const std::vector<double>& prob_by_level) const {
  CTSDD_CHECK_EQ(static_cast<int>(prob_by_level.size()), num_levels());
  std::unordered_map<NodeId, double> memo;
  std::function<double(NodeId)> rec = [&](NodeId u) -> double {
    if (u == kFalse) return 0.0;
    if (u == kTrue) return 1.0;
    const auto it = memo.find(u);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[u];
    const double p = prob_by_level[n.level];
    const double result = (1.0 - p) * rec(n.lo) + p * rec(n.hi);
    memo.emplace(u, result);
    return result;
  };
  return rec(f);
}

int ObddManager::Size(NodeId f) const {
  std::set<NodeId> seen;
  std::vector<NodeId> stack = {f};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (IsTerminal(u) || seen.count(u)) continue;
    seen.insert(u);
    stack.push_back(nodes_[u].lo);
    stack.push_back(nodes_[u].hi);
  }
  return static_cast<int>(seen.size());
}

std::vector<int> ObddManager::LevelProfile(NodeId f) const {
  std::vector<int> profile(num_levels(), 0);
  std::set<NodeId> seen;
  std::vector<NodeId> stack = {f};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (IsTerminal(u) || seen.count(u)) continue;
    seen.insert(u);
    ++profile[nodes_[u].level];
    stack.push_back(nodes_[u].lo);
    stack.push_back(nodes_[u].hi);
  }
  return profile;
}

int ObddManager::Width(NodeId f) const {
  const auto profile = LevelProfile(f);
  return profile.empty() ? 0 : *std::max_element(profile.begin(),
                                                 profile.end());
}

}  // namespace ctsdd
