#include "obdd/obdd_compile.h"

#include <algorithm>
#include <functional>

#include "util/logging.h"

namespace ctsdd {

ObddManager::NodeId CompileCircuitToObdd(ObddManager* manager,
                                         const Circuit& circuit) {
  CTSDD_CHECK_GE(circuit.output(), 0);
  std::vector<ObddManager::NodeId> value(circuit.num_gates());
  for (int id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    switch (g.kind) {
      case GateKind::kConstFalse:
        value[id] = manager->False();
        break;
      case GateKind::kConstTrue:
        value[id] = manager->True();
        break;
      case GateKind::kVar:
        value[id] = manager->Literal(g.var, true);
        break;
      case GateKind::kNot:
        value[id] = manager->Not(value[g.inputs[0]]);
        break;
      case GateKind::kAnd: {
        ObddManager::NodeId acc = manager->True();
        for (int input : g.inputs) acc = manager->And(acc, value[input]);
        value[id] = acc;
        break;
      }
      case GateKind::kOr: {
        ObddManager::NodeId acc = manager->False();
        for (int input : g.inputs) acc = manager->Or(acc, value[input]);
        value[id] = acc;
        break;
      }
    }
  }
  return value[circuit.output()];
}

ObddManager::NodeId CompileFuncToObdd(ObddManager* manager,
                                      const BoolFunc& f) {
  // Shannon-expand along the manager's order restricted to f's variables.
  // Memoize on the (sub)function itself.
  std::unordered_map<BoolFunc, ObddManager::NodeId, BoolFunc::Hasher> memo;
  // Order f's variables by manager level.
  std::vector<int> vars = f.vars();
  std::sort(vars.begin(), vars.end(), [&](int a, int b) {
    return manager->LevelOf(a) < manager->LevelOf(b);
  });
  for (int v : vars) {
    CTSDD_CHECK_GE(manager->LevelOf(v), 0)
        << "variable x" << v << " missing from OBDD order";
  }
  std::function<ObddManager::NodeId(const BoolFunc&, size_t)> rec =
      [&](const BoolFunc& g, size_t next) -> ObddManager::NodeId {
    if (g.IsConstantFalse()) return manager->False();
    if (g.IsConstantTrue()) return manager->True();
    const auto it = memo.find(g);
    if (it != memo.end()) return it->second;
    CTSDD_CHECK_LT(next, vars.size());
    const int var = vars[next];
    const ObddManager::NodeId lo = rec(g.Restrict(var, false), next + 1);
    const ObddManager::NodeId hi = rec(g.Restrict(var, true), next + 1);
    const ObddManager::NodeId result =
        manager->Ite(manager->Literal(var, true), hi, lo);
    memo.emplace(g, result);
    return result;
  };
  return rec(f, 0);
}

ObddStats ObddStatsForOrder(const BoolFunc& f, const std::vector<int>& order) {
  ObddManager manager(order);
  const auto root = CompileFuncToObdd(&manager, f);
  return {manager.Size(root), manager.Width(root), order};
}

ObddStats BestObddOverAllOrders(const BoolFunc& f, bool minimize_width) {
  CTSDD_CHECK_LE(f.num_vars(), 10) << "exhaustive order search too large";
  std::vector<int> order = f.vars();
  std::sort(order.begin(), order.end());
  ObddStats best;
  bool first = true;
  do {
    const ObddStats stats = ObddStatsForOrder(f, order);
    const int objective = minimize_width ? stats.width : stats.size;
    const int best_objective = minimize_width ? best.width : best.size;
    if (first || objective < best_objective) {
      best = stats;
      first = false;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

ObddStats BestObddBySifting(const BoolFunc& f, bool minimize_width,
                            int rounds) {
  std::vector<int> order = f.vars();
  ObddStats best = ObddStatsForOrder(f, order);
  auto objective = [&](const ObddStats& s) {
    return minimize_width ? s.width : s.size;
  };
  for (int round = 0; round < rounds; ++round) {
    bool improved = false;
    // Move each variable through every position, keep the best placement.
    for (size_t i = 0; i < order.size(); ++i) {
      for (size_t j = 0; j < order.size(); ++j) {
        if (i == j) continue;
        std::vector<int> candidate = best.order;
        const int var = candidate[i];
        candidate.erase(candidate.begin() + i);
        candidate.insert(candidate.begin() + j, var);
        const ObddStats stats = ObddStatsForOrder(f, candidate);
        if (objective(stats) < objective(best)) {
          best = stats;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  return best;
}

}  // namespace ctsdd
