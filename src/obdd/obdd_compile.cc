#include "obdd/obdd_compile.h"

#include <algorithm>
#include <functional>

#include "util/logging.h"

namespace ctsdd {

ObddManager::NodeId CompileCircuitToObdd(ObddManager* manager,
                                         const Circuit& circuit) {
  CTSDD_CHECK_GE(circuit.output(), 0);
  // With a parallel executor attached, one region spans the whole
  // bottom-up sweep: each gate's Ite/n-ary fold forks internally and the
  // region transition cost is paid once instead of per gate.
  const bool open_region = manager->executor() != nullptr &&
                           manager->executor()->parallel() &&
                           !manager->InParallelRegion();
  if (open_region) manager->BeginParallelRegion();
  std::vector<ObddManager::NodeId> value(circuit.num_gates());
  for (int id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    switch (g.kind) {
      case GateKind::kConstFalse:
        value[id] = manager->False();
        break;
      case GateKind::kConstTrue:
        value[id] = manager->True();
        break;
      case GateKind::kVar:
        value[id] = manager->Literal(g.var, true);
        break;
      case GateKind::kNot:
        value[id] = manager->Not(value[g.inputs[0]]);
        break;
      case GateKind::kAnd:
      case GateKind::kOr: {
        // Multi-way apply: one simultaneous-cofactor sweep over all
        // operands (neutral operands dropped, absorbing terminals
        // short-circuited inside AndN/OrN) instead of a left-linear
        // accumulator that re-walks the partial result per input.
        std::vector<ObddManager::NodeId> inputs;
        inputs.reserve(g.inputs.size());
        for (int input : g.inputs) inputs.push_back(value[input]);
        value[id] = g.kind == GateKind::kAnd
                        ? manager->AndN(std::move(inputs))
                        : manager->OrN(std::move(inputs));
        break;
      }
    }
  }
  if (open_region) manager->EndParallelRegion();
  return value[circuit.output()];
}

ObddManager::NodeId CompileFuncToObdd(ObddManager* manager,
                                      const BoolFunc& f) {
  if (f.IsConstantFalse()) return manager->False();
  if (f.IsConstantTrue()) return manager->True();
  // Order f's variables by manager level.
  std::vector<int> vars = f.vars();
  std::sort(vars.begin(), vars.end(), [&](int a, int b) {
    return manager->LevelOf(a) < manager->LevelOf(b);
  });
  for (int v : vars) {
    CTSDD_CHECK_GE(manager->LevelOf(v), 0)
        << "variable x" << v << " missing from OBDD order";
  }
  const int n = static_cast<int>(vars.size());
  if (n <= 20) {
    // Direct layered construction: one terminal per table entry, then one
    // MakeNode sweep per level from the deepest variable up. The unique
    // table deduplicates and the reduction rule collapses as the layers
    // shrink, so no function-valued memo (and none of its allocation and
    // hashing traffic) is needed. Index convention: bit (n-1-k) of a
    // layer index holds the value of vars[k], so the deepest variable is
    // bit 0 and one merge step halves the layer.
    std::vector<int> pos(n);
    for (int k = 0; k < n; ++k) {
      pos[k] = static_cast<int>(
          std::lower_bound(f.vars().begin(), f.vars().end(), vars[k]) -
          f.vars().begin());
    }
    std::vector<ObddManager::NodeId> layer(1u << n);
    for (uint32_t j = 0; j < (1u << n); ++j) {
      uint32_t index = 0;
      for (int k = 0; k < n; ++k) {
        if ((j >> (n - 1 - k)) & 1) index |= 1u << pos[k];
      }
      layer[j] = f.EvalIndex(index) ? manager->True() : manager->False();
    }
    for (int d = n - 1; d >= 0; --d) {
      const int level = manager->LevelOf(vars[d]);
      for (uint32_t j = 0; j < (1u << d); ++j) {
        layer[j] = manager->MakeNode(level, layer[2 * j], layer[2 * j + 1]);
      }
    }
    return layer[0];
  }
  // Beyond 2^20 table entries the layer array would dominate memory;
  // fall back to Shannon expansion memoized on the subfunction itself.
  std::unordered_map<BoolFunc, ObddManager::NodeId, BoolFunc::Hasher> memo;
  std::function<ObddManager::NodeId(const BoolFunc&, size_t)> rec =
      [&](const BoolFunc& g, size_t next) -> ObddManager::NodeId {
    if (g.IsConstantFalse()) return manager->False();
    if (g.IsConstantTrue()) return manager->True();
    const auto it = memo.find(g);
    if (it != memo.end()) return it->second;
    CTSDD_CHECK_LT(next, vars.size());
    const int var = vars[next];
    const ObddManager::NodeId lo = rec(g.Restrict(var, false), next + 1);
    const ObddManager::NodeId hi = rec(g.Restrict(var, true), next + 1);
    // Children are over strictly later levels, so the node can be built
    // directly instead of through a full Ite.
    const ObddManager::NodeId result =
        manager->MakeNode(manager->LevelOf(var), lo, hi);
    if (result < 0) return result;  // budget abort: never memoized
    memo.emplace(g, result);
    return result;
  };
  return rec(f, 0);
}

ObddStats ObddStatsForOrder(const BoolFunc& f, const std::vector<int>& order) {
  ObddManager manager(order);
  const auto root = CompileFuncToObdd(&manager, f);
  return {manager.Size(root), manager.Width(root), order};
}

ObddStats BestObddOverAllOrders(const BoolFunc& f, bool minimize_width) {
  CTSDD_CHECK_LE(f.num_vars(), 10) << "exhaustive order search too large";
  std::vector<int> order = f.vars();
  std::sort(order.begin(), order.end());
  ObddStats best;
  bool first = true;
  do {
    const ObddStats stats = ObddStatsForOrder(f, order);
    const int objective = minimize_width ? stats.width : stats.size;
    const int best_objective = minimize_width ? best.width : best.size;
    if (first || objective < best_objective) {
      best = stats;
      first = false;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

ObddStats BestObddBySifting(const BoolFunc& f, bool minimize_width,
                            int rounds) {
  std::vector<int> order = f.vars();
  ObddStats best = ObddStatsForOrder(f, order);
  auto objective = [&](const ObddStats& s) {
    return minimize_width ? s.width : s.size;
  };
  for (int round = 0; round < rounds; ++round) {
    bool improved = false;
    // Move each variable through every position, keep the best placement.
    for (size_t i = 0; i < order.size(); ++i) {
      for (size_t j = 0; j < order.size(); ++j) {
        if (i == j) continue;
        std::vector<int> candidate = best.order;
        const int var = candidate[i];
        candidate.erase(candidate.begin() + i);
        candidate.insert(candidate.begin() + j, var);
        const ObddStats stats = ObddStatsForOrder(f, candidate);
        if (objective(stats) < objective(best)) {
          best = stats;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  return best;
}

}  // namespace ctsdd
