#include "sdd/sdd.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>

#include "obs/trace.h"
#include "util/fault_injection.h"
#include "util/hashing.h"
#include "util/logging.h"

namespace ctsdd {
namespace {

// Truth table word of "index bit p is set" (the positive literal pattern
// for a variable at scope position p < 6).
constexpr uint64_t kIndexBitSet[6] = {
    0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
    0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL,
};

// Dead-slot sentinel: a freed node reads as a constant with var == -2
// until MakeDecision/Literal recycles its id (real constants never enter
// the sweep — ids 0/1 are skipped — and live literals have var >= 0).
constexpr int kDeadVar = -2;

}  // namespace

SddManager::SddManager(Vtree vtree, Options options)
    : vtree_(std::move(vtree)),
      apply_cache_(options.apply_cache_slots),
      sem_cache_(options.sem_cache_slots, options.sem_cache_init_slots) {
  CTSDD_CHECK_GE(vtree_.root(), 0) << "vtree must be rooted";
  // Small anchors: topmost ancestor (parents before children) whose scope
  // still fits one truth-table word.
  anchor_of_vnode_.assign(vtree_.num_nodes(), -1);
  anchor_mask_of_vnode_.assign(vtree_.num_nodes(), 0);
  std::vector<int> stack = {vtree_.root()};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    if (static_cast<int>(vtree_.VarsBelow(v).size()) <= kSmallScopeVars) {
      const int parent = vtree_.parent(v);
      const int up = (parent >= 0) ? anchor_of_vnode_[parent] : -1;
      const int anchor = (up >= 0) ? up : v;
      anchor_of_vnode_[v] = anchor;
      const int bits = 1 << vtree_.VarsBelow(anchor).size();
      anchor_mask_of_vnode_[v] =
          (bits >= 64) ? ~0ULL : ((1ULL << bits) - 1);
    }
    if (!vtree_.is_leaf(v)) {
      stack.push_back(vtree_.right(v));
      stack.push_back(vtree_.left(v));
    }
  }
  EnsureCtxSlots(1);
  // Terminal constants (negations of each other).
  nodes_.PushBack({Kind::kConst, false, -1, -1, nullptr, 0});
  nodes_.PushBack({Kind::kConst, true, -1, -1, nullptr, 0});
  // Constant FastInfo entries are mostly unused (constants short-circuit
  // before any probe), but the negation links keep KnownNegation total.
  fast_info_.Reserve(2);
  fast_info_[0] = {kTrue, -1, 0};
  fast_info_[1] = {kFalse, -1, ~0ULL};
  const std::vector<int>& vars = vtree_.Vars();
  const int max_var = vars.empty() ? -1 : vars.back();
  literal_ids_.assign(2 * (max_var + 1), -1);
}

void SddManager::LinkNegations(NodeId a, NodeId b) {
  NegationOf(fast_info_[a]).store(b, std::memory_order_relaxed);
  NegationOf(fast_info_[b]).store(a, std::memory_order_relaxed);
}

uint64_t SddManager::Hash2SemKey(int anchor, uint64_t word) {
  return Hash2(static_cast<uint64_t>(anchor), word);
}

uint64_t SddManager::DecisionHash(int vnode, ElementSpan elements) {
  uint64_t hash = HashMix64(static_cast<uint64_t>(vnode));
  for (const auto& [p, s] : elements) {
    hash = HashCombine(hash, (static_cast<uint64_t>(p) << 32) |
                                 static_cast<uint32_t>(s));
  }
  return hash;
}

template <bool kPar>
void SddManager::RegisterSemanticT(NodeId id) {
  const Node& n = nodes_[id];
  const int anchor = anchor_of_vnode_[n.vnode];
  FastInfo& info = fast_info_[id];
  NegationOf(info).store(-1, std::memory_order_relaxed);
  if (anchor < 0) {
    info.anchor = -1;
    info.word = 0;
    return;
  }
  const uint64_t mask = anchor_mask_of_vnode_[n.vnode];
  uint64_t w = 0;
  if (n.kind == Kind::kLiteral) {
    const std::vector<int>& scope = vtree_.VarsBelow(anchor);
    const int pos = static_cast<int>(
        std::lower_bound(scope.begin(), scope.end(), n.var) - scope.begin());
    w = (n.sense ? kIndexBitSet[pos] : ~kIndexBitSet[pos]) & mask;
  } else {
    // Primes and non-constant subs live below n.vnode, so they share its
    // anchor and their words are directly composable.
    for (uint32_t i = 0; i < n.num_elems; ++i) {
      const auto& [p, s] = n.elems[i];
      const uint64_t ws =
          (s == kFalse) ? 0 : (s == kTrue) ? mask : fast_info_[s].word;
      w |= fast_info_[p].word & ws;
    }
  }
  info.anchor = anchor;
  info.word = w;
  const uint64_t hash = Hash2SemKey(anchor, w);
  if constexpr (kPar) {
    sem_cache_.StoreC(hash, SemKey{anchor, w}, id);
  } else {
    sem_cache_.Store(hash, SemKey{anchor, w}, id);
  }
}

SddManager::NodeId SddManager::LookupSemantic(int vnode, uint64_t word) {
  const int anchor = anchor_of_vnode_[vnode];
  CTSDD_CHECK_GE(anchor, 0);
  if (word == 0) return kFalse;
  if (word == anchor_mask_of_vnode_[vnode]) return kTrue;
  NodeId hit;
  const uint64_t hash = Hash2SemKey(anchor, word);
  const SemKey key{anchor, word};
  const bool found = par_active_ ? sem_cache_.LookupC(hash, key, &hit)
                                 : sem_cache_.Lookup(hash, key, &hit);
  return found ? hit : -1;
}

void SddManager::AddCounters(const PerfCounters& delta) {
  counters_.apply_calls += delta.apply_calls;
  counters_.element_products += delta.element_products;
  counters_.absorb_collapses += delta.absorb_collapses;
  counters_.compression_merges += delta.compression_merges;
  counters_.nary_applies += delta.nary_applies;
  counters_.nary_fallbacks += delta.nary_fallbacks;
  counters_.sem_apply_hits += delta.sem_apply_hits;
  counters_.semantic_partitions += delta.semantic_partitions;
  counters_.semantic_memo_hits += delta.semantic_memo_hits;
}

void SddManager::BeginParallelRegion() {
  CTSDD_CHECK(pool_ != nullptr && pool_->parallel())
      << "BeginParallelRegion without a parallel executor attached";
  CTSDD_CHECK(!par_active_) << "parallel regions do not nest";
  CTSDD_CHECK_EQ(apply_depth_, 0) << "parallel region inside an operation";
  thread_check_.Check();  // verify ownership before suspending it
  // Pre-intern every literal: parallel tasks then always hit the
  // literal_ids_ cache and never write it (or link negations through the
  // sequential Literal path).
  for (const int v : vtree_.Vars()) {
    Literal(v, true);
    Literal(v, false);
  }
  thread_check_.BeginShared();
  EnsureCtxSlots(1 + static_cast<size_t>(pool_->max_slots()));
  // Pre-size the striped caches: they cannot grow while the region runs,
  // and a semantic-cache miss cascades into recompilation.
  apply_cache_.BeginConcurrent(1 << 16);
  sem_cache_.BeginConcurrent(1 << 14);
  apply_memo_.BeginConcurrent();
  par_active_ = true;
}

void SddManager::EndParallelRegion() {
  CTSDD_CHECK(par_active_);
  par_active_ = false;
  for (Ctx& cx : ctxs_) {
    // Unused tails of per-worker id blocks become ordinary free-list
    // entries, reusable by the next sequential allocation and invisible
    // to GC marking.
    for (size_t id = cx.alloc_next; id < cx.alloc_end; ++id) {
      nodes_[id] = {Kind::kConst, false, kDeadVar, -1, nullptr, 0};
      fast_info_[id] = {-1, -1, 0};
      free_ids_.push_back(static_cast<NodeId>(id));
    }
    cx.alloc_next = cx.alloc_end = 0;
    // Unused recycled ids go back too (they are already dead-marked).
    free_ids_.insert(free_ids_.end(), cx.recycled.begin(),
                     cx.recycled.end());
    cx.recycled.clear();
    cx.nary_memo.clear();
    AddCounters(cx.counters);
    cx.counters = PerfCounters{};
  }
  apply_cache_.EndConcurrent();
  sem_cache_.EndConcurrent();
  apply_memo_.EndConcurrent();
  apply_memo_.Reset();  // region-scoped, like LeaveOp for an operation
  thread_check_.EndShared();
}

void SddManager::AttachBudget(WorkBudget* budget) {
  thread_check_.Check();
  CTSDD_CHECK_EQ(apply_depth_, 0) << "AttachBudget inside an operation";
  CTSDD_CHECK(!par_active_) << "AttachBudget inside a parallel region";
  budget_ = budget;
  lease_chunk_ = 0;
  for (Ctx& cx : ctxs_) cx.budget_lease = 0;
  if (budget != nullptr) {
    // Lease granularity: fine enough that overshoot stays within the
    // acceptance bound (<= budget/16), coarse enough that the shared
    // atomic is off the per-node path.
    const uint64_t b = budget->node_budget();
    lease_chunk_ = static_cast<uint32_t>(
        b == 0 ? 256
               : std::min<uint64_t>(256, std::max<uint64_t>(1, b / 16)));
  }
}

bool SddManager::RefillLease(Ctx& cx) {
  if (!AdmitMemGrowth()) return false;
  cx.budget_lease =
      static_cast<uint32_t>(budget_->AcquireLease(lease_chunk_));
  return cx.budget_lease > 0;
}

bool SddManager::AdmitMemGrowth() {
  if (mem_governor_ == nullptr || !mem_governor_->enabled()) return true;
  // Worst-case accounted growth before the next refill check: the unique
  // table may double, the apply memo may double or lazily allocate
  // shards, and the stores/arenas may open fresh chunks. Memo bytes come
  // from the account's atomic per-layer counter (workers hit this seam
  // while other stripes grow); the slack covers the chunk-granular rest.
  const uint64_t burst =
      2 * unique_.MemoryBytes() +
      static_cast<uint64_t>(mem_account_->bytes(MemLayer::kMemo)) +
      kMemBurstSlack;
  if (mem_governor_->AdmitProjected(burst)) return true;
  budget_->MarkMemoryPressure();
  budget_->Cancel(StatusCode::kResourceExhausted);
  return false;
}

void SddManager::AttachMemAccount(MemAccount* account) {
  thread_check_.Check();
  CTSDD_CHECK_EQ(apply_depth_, 0) << "AttachMemAccount inside an operation";
  CTSDD_CHECK(!par_active_) << "AttachMemAccount inside a parallel region";
  mem_account_ = account;
  mem_governor_ = account != nullptr ? account->governor() : nullptr;
  nodes_.SetMemAccount(account);
  fast_info_.SetMemAccount(account);
  unique_.SetMemAccount(account);
  apply_cache_.SetMemAccount(account);
  sem_cache_.SetMemAccount(account);
  apply_memo_.SetMemAccount(account);
  for (Ctx& cx : ctxs_) cx.element_arena.SetMemAccount(account);
}

Status SddManager::Validate() const {
  const size_t n = nodes_.size();
  std::vector<bool> dead(n, false);
  for (const NodeId id : free_ids_) {
    if (id < 2 || static_cast<size_t>(id) >= n) {
      return Status::Internal("free-list id out of range");
    }
    const Node& slot = nodes_[id];
    if (slot.kind != Kind::kConst || slot.var != kDeadVar) {
      return Status::Internal("free-list id not dead-marked");
    }
    dead[id] = true;
  }
  for (size_t id = 2; id < n; ++id) {
    const Node& node = nodes_[id];
    if (node.kind == Kind::kConst) {
      if (node.var != kDeadVar) {
        return Status::Internal("non-terminal constant node");
      }
      if (!dead[id]) {
        return Status::Internal("dead node missing from the free list");
      }
      continue;
    }
    if (node.kind == Kind::kLiteral) {
      if (node.var < 0 || !vtree_.is_leaf(node.vnode) ||
          vtree_.LeafOf(node.var) != node.vnode) {
        return Status::Internal("malformed literal node");
      }
      const size_t key = (static_cast<size_t>(node.var) << 1) | node.sense;
      if (key >= literal_ids_.size() ||
          literal_ids_[key] != static_cast<NodeId>(id)) {
        return Status::Internal("literal not interned under its variable");
      }
      continue;
    }
    if (vtree_.is_leaf(node.vnode)) {
      return Status::Internal("decision normalized at a vtree leaf");
    }
    if (node.num_elems < 2 || node.elems == nullptr) {
      return Status::Internal("untrimmed or element-less decision");
    }
    for (uint32_t i = 0; i < node.num_elems; ++i) {
      const auto& [p, s] = node.elems[i];
      for (const NodeId child : {p, s}) {
        if (child < 0 || static_cast<size_t>(child) >= n) {
          return Status::Internal("element id out of range");
        }
        const Node& c = nodes_[child];
        if (child > 1 && c.kind == Kind::kConst) {
          return Status::Internal("element references a dead node");
        }
      }
      if (p <= 1) {
        return Status::Internal("constant prime in multi-element decision");
      }
    }
    const int32_t found = unique_.Find(
        DecisionHash(node.vnode, {node.elems, node.num_elems}),
        [&](int32_t cand) {
          const Node& c = nodes_[cand];
          return c.vnode == node.vnode && c.num_elems == node.num_elems &&
                 std::equal(node.elems, node.elems + node.num_elems,
                            c.elems);
        });
    if (found != static_cast<int32_t>(id)) {
      return Status::Internal(
          found == UniqueTable::kEmpty
              ? "live decision missing from the unique table"
              : "duplicate decision in the unique table");
    }
  }
  return Status::Ok();
}

void SddManager::AddRootRef(NodeId id) {
  thread_check_.Check();
  if (IsConst(id)) return;
  CTSDD_CHECK_NE(nodes_[id].var, kDeadVar) << "AddRootRef on a freed node";
  if (external_refs_.size() < nodes_.size()) {
    external_refs_.resize(nodes_.size(), 0);
  }
  ++external_refs_[id];
}

void SddManager::ReleaseRootRef(NodeId id) {
  thread_check_.Check();
  if (IsConst(id)) return;
  CTSDD_CHECK(id >= 0 && static_cast<size_t>(id) < external_refs_.size() &&
              external_refs_[id] > 0)
      << "ReleaseRootRef without a matching AddRootRef";
  --external_refs_[id];
}

size_t SddManager::GarbageCollect() {
  thread_check_.Check();
  CTSDD_CHECK_EQ(apply_depth_, 0) << "GC inside an operation";
  CTSDD_CHECK(!par_active_) << "GC inside a parallel region";
  obs::TraceSpan gc_span("gc", "sdd.gc");
  ++gc_stats_.runs;
  // Mark from the permanent roots (constants, literals) and every node
  // holding an external reference.
  std::vector<uint8_t> marked(nodes_.size(), 0);
  marked[kFalse] = marked[kTrue] = 1;
  std::vector<NodeId> roots;
  for (const NodeId lit : literal_ids_) {
    if (lit >= 0) roots.push_back(lit);
  }
  for (size_t id = 0; id < external_refs_.size(); ++id) {
    if (external_refs_[id] > 0) roots.push_back(static_cast<NodeId>(id));
  }
  if (pool_ != nullptr && pool_->parallel() && roots.size() > 1) {
    // Mark as exec tasks, one DFS per root: nodes are claimed with a
    // relaxed atomic exchange so shared subgraphs traverse once, and a
    // cold compile on another shard overlaps this GC pause on the
    // shared pool instead of serializing behind it.
    exec::ParallelFor(pool_, roots.size(), [&](size_t i) {
      std::vector<NodeId> stack{roots[i]};
      while (!stack.empty()) {
        const NodeId u = stack.back();
        stack.pop_back();
        if (std::atomic_ref<uint8_t>(marked[u]).exchange(
                1, std::memory_order_relaxed)) {
          continue;
        }
        const Node& n = nodes_[u];
        for (uint32_t j = 0; j < n.num_elems; ++j) {
          stack.push_back(n.elems[j].first);
          stack.push_back(n.elems[j].second);
        }
      }
    });
  } else {
    std::vector<NodeId> stack = std::move(roots);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      if (marked[u]) continue;
      marked[u] = 1;
      const Node& n = nodes_[u];
      for (uint32_t i = 0; i < n.num_elems; ++i) {
        stack.push_back(n.elems[i].first);
        stack.push_back(n.elems[i].second);
      }
    }
  }
  // Rebuild the unique table over the surviving decisions (open
  // addressing cannot delete in place), sweeping dead nodes onto the id
  // free list and recycling their element spans by exact size.
  size_t live_decisions = 0;
  for (size_t id = 2; id < nodes_.size(); ++id) {
    if (marked[id] && nodes_[id].kind == Kind::kDecision) ++live_decisions;
  }
  unique_.Clear(live_decisions);
  size_t reclaimed = 0;
  for (size_t id = 2; id < nodes_.size(); ++id) {
    Node& n = nodes_[id];
    if (n.var == kDeadVar && n.kind == Kind::kConst) continue;  // still free
    if (!marked[id]) {
      if (n.kind == Kind::kDecision && n.num_elems > 0) {
        free_elements_[n.num_elems].push_back(const_cast<Element*>(n.elems));
      }
      n = {Kind::kConst, false, kDeadVar, -1, nullptr, 0};
      fast_info_[id] = {-1, -1, 0};
      free_ids_.push_back(static_cast<NodeId>(id));
      ++reclaimed;
      continue;
    }
    if (n.kind == Kind::kDecision) {
      unique_.Insert(DecisionHash(n.vnode, {n.elems, n.num_elems}),
                     static_cast<int32_t>(id));
    }
  }
  // Sever negation links into collected nodes: the link slots are id-
  // valued, and a freed id may be recycled by an unrelated function.
  for (size_t id = 0; id < nodes_.size(); ++id) {
    if (!marked[id]) continue;
    NodeId& neg = fast_info_[id].negation;
    if (neg >= 0 && !marked[neg]) neg = -1;
  }
  // Caches hold freed ids; invalidate them, then re-register the
  // survivors' semantic words so FastApply does not cold-start.
  apply_cache_.Clear();
  sem_cache_.Clear();
  RebuildSemanticCache();
  gc_stats_.reclaimed += reclaimed;
#ifndef NDEBUG
  // GC is a quiescent point: the rolled-up account must agree with the
  // recomputed per-structure bytes exactly, or accounting has drifted.
  if (mem_account_ != nullptr) {
    CTSDD_CHECK_EQ(mem_account_->bytes(),
                   static_cast<uint64_t>(MemoryBytes()))
        << "SDD memory accounting drift after GC";
  }
#endif
  gc_span.AddArg("reclaimed", reclaimed);
  return reclaimed;
}

void SddManager::RebuildSemanticCache() {
  for (size_t id = 2; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    // Non-terminal kConst slots are dead sentinels (real constants are
    // ids 0 and 1, skipped above).
    if (n.kind == Kind::kConst) continue;
    const FastInfo& fi = fast_info_[id];
    if (fi.anchor >= 0) {
      sem_cache_.Store(Hash2SemKey(fi.anchor, fi.word),
                       SemKey{fi.anchor, fi.word}, static_cast<NodeId>(id));
    }
  }
}

void SddManager::ShrinkCaches() {
  thread_check_.Check();
  CTSDD_CHECK_EQ(apply_depth_, 0) << "ShrinkCaches inside an operation";
  CTSDD_CHECK(!par_active_) << "ShrinkCaches inside a parallel region";
  apply_cache_.Shrink();
  apply_memo_.Shrink();
  for (Ctx& cx : ctxs_) cx.scratch.clear();
  // The semantic cache backs an invariant (live small-scope functions
  // resolve by word), not just memoized work: release its grown array,
  // then repopulate compactly from the live nodes.
  sem_cache_.Shrink();
  RebuildSemanticCache();
}

SddManager::NodeId SddManager::Literal(int var, bool positive) {
  thread_check_.Check();
  const size_t key = (static_cast<size_t>(var) << 1) | positive;
  CTSDD_CHECK(var >= 0 && key < literal_ids_.size())
      << "variable x" << var << " not in vtree";
  if (literal_ids_[key] >= 0) return literal_ids_[key];
  CTSDD_CHECK(!par_active_)
      << "literal interning inside a parallel region (BeginParallelRegion "
         "pre-interns the full literal set)";
  const int leaf = vtree_.LeafOf(var);
  CTSDD_CHECK_GE(leaf, 0) << "variable x" << var << " not in vtree";
  const NodeId id = NewNode({Kind::kLiteral, positive, var, leaf, nullptr, 0});
  RegisterSemanticT<false>(id);
  literal_ids_[key] = id;
  // Complement literals are always linked: the second one created links
  // both, so Apply's x op !x short-circuit never misses a literal pair.
  if (literal_ids_[key ^ 1] >= 0) LinkNegations(id, literal_ids_[key ^ 1]);
  return id;
}

template <bool kPar>
SddManager::NodeId SddManager::MakeDecisionT(Ctx& cx, int vnode,
                                             Elements* elements_in,
                                             int depth) {
  Elements& elements = *elements_in;
  if (budget_ != nullptr && budget_->tripped()) return kAborted;
  // Drop false primes.
  elements.erase(std::remove_if(elements.begin(), elements.end(),
                                [](const auto& e) { return e.first == kFalse; }),
                 elements.end());
  CTSDD_CHECK(!elements.empty())
      << "decision with no satisfiable prime (primes must be exhaustive)";
  // Compress: merge elements with equal subs by disjoining their primes.
  // Sorting by sub turns compression into one linear merge over the runs;
  // each run's primes (pairwise disjoint by construction) fuse with a
  // single balanced OrN instead of a sequential pairwise-Or chain. All
  // Apply calls happen before the unique-table probe below, so no table
  // operation intervenes between Find and Insert.
  std::sort(elements.begin(), elements.end(),
            [](const Element& x, const Element& y) {
              return x.second != y.second ? x.second < y.second
                                          : x.first < y.first;
            });
  size_t out = 0;
  for (size_t i = 0; i < elements.size();) {
    const NodeId sub = elements[i].second;
    NodeId prime = elements[i].first;
    size_t j = i + 1;
    while (j < elements.size() && elements[j].second == sub) ++j;
    if (j - i > 1) {
      ++cx.counters.compression_merges;
      // Balanced in-place fold of the run's primes (they are pairwise
      // disjoint, so operand sizes roughly add: pairing keeps each Or
      // small instead of one ever-growing accumulator).
      size_t len = j - i;
      while (len > 1) {
        size_t w = 0;
        for (size_t p = 0; p + 1 < len; p += 2) {
          elements[i + w++].first =
              ApplyRecT<kPar>(cx, elements[i + p].first,
                              elements[i + p + 1].first, Op::kOr, depth + 1);
        }
        if (len % 2 == 1) elements[i + w++].first = elements[i + len - 1].first;
        len = w;
      }
      prime = elements[i].first;
    }
    elements[out++] = {prime, sub};
    i = j;
  }
  elements.resize(out);
  // Abort propagation: a negative prime or sub is an upstream kAborted
  // (either passed in or produced by the compression applies above).
  // Checked before the trim-rule CHECKs and the unique-table probe so an
  // aborted partial decision never materializes.
  if (budget_ != nullptr) {
    for (const auto& [p, s] : elements) {
      if ((p | s) < 0) return kAborted;
    }
  }
  // Trim rule 1: {(true, s)} -> s.
  if (elements.size() == 1) {
    CTSDD_CHECK_EQ(elements[0].first, kTrue)
        << "single-element decision must have a valid (exhaustive) prime";
    return elements[0].second;
  }
  // Trim rule 2: {(p, true), (q, false)} -> p (since q = !p by partition).
  if (elements.size() == 2) {
    NodeId true_prime = -1;
    NodeId false_prime = -1;
    for (const auto& [p, s] : elements) {
      if (s == kTrue) true_prime = p;
      if (s == kFalse) false_prime = p;
    }
    if (true_prime >= 0 && false_prime >= 0) return true_prime;
  }
  std::sort(elements.begin(), elements.end());
  const uint64_t hash = DecisionHash(vnode, {elements.data(), elements.size()});
  const auto eq = [&](int32_t id) {
    const Node& n = nodes_[id];
    return n.vnode == vnode && n.num_elems == elements.size() &&
           std::equal(elements.begin(), elements.end(), n.elems);
  };
  if constexpr (kPar) {
    return unique_.FindOrInsert(hash, eq, [&] {
      if (budget_ != nullptr) ChargePar(cx);
      CTSDD_FAULT_POINT("sdd.alloc");
      Element* stored = AllocateElements<true>(cx, elements.size());
      std::copy(elements.begin(), elements.end(), stored);
      const NodeId id =
          AllocNodePar(cx, {Kind::kDecision, false, -1, vnode, stored,
                            static_cast<uint32_t>(elements.size())});
      RegisterSemanticT<true>(id);
      return id;
    });
  } else {
    const int32_t found = unique_.Find(hash, eq);
    if (found != UniqueTable::kEmpty) return found;
    if (budget_ != nullptr && !ChargeSeq(cx)) return kAborted;
    CTSDD_FAULT_POINT("sdd.alloc");
    Element* stored = AllocateElements<false>(cx, elements.size());
    std::copy(elements.begin(), elements.end(), stored);
    const NodeId id = NewNode({Kind::kDecision, false, -1, vnode, stored,
                               static_cast<uint32_t>(elements.size())});
    RegisterSemanticT<false>(id);
    unique_.Insert(hash, id);
    return id;
  }
}

SddManager::NodeId SddManager::NewNode(const Node& n) {
  if (!free_ids_.empty()) {
    const NodeId id = free_ids_.back();
    free_ids_.pop_back();
    nodes_[id] = n;
    return id;
  }
  const size_t id = nodes_.PushBack(n);
  fast_info_.Reserve(id + 1);
  return static_cast<NodeId>(id);
}

SddManager::NodeId SddManager::AllocNodePar(Ctx& cx, const Node& n) {
  if (!cx.recycled.empty()) {
    const NodeId id = cx.recycled.back();
    cx.recycled.pop_back();
    nodes_[id] = n;
    return id;
  }
  if (cx.alloc_next == cx.alloc_end) {
    // Refill from the GC free list before claiming fresh ids: without
    // reuse, every parallel cold compile would grow the store past what
    // collection can ever reclaim.
    {
      SpinLockGuard guard(free_ids_lock_);
      const size_t take = std::min(kAllocBlock, free_ids_.size());
      if (take > 0) {
        cx.recycled.assign(free_ids_.end() - take, free_ids_.end());
        free_ids_.resize(free_ids_.size() - take);
      }
    }
    if (!cx.recycled.empty()) {
      const NodeId id = cx.recycled.back();
      cx.recycled.pop_back();
      nodes_[id] = n;
      return id;
    }
    cx.alloc_next = nodes_.ClaimBlock(kAllocBlock);
    cx.alloc_end = cx.alloc_next + kAllocBlock;
    fast_info_.Reserve(cx.alloc_end);
  }
  const NodeId id = static_cast<NodeId>(cx.alloc_next++);
  nodes_[id] = n;
  return id;
}

template <bool kPar>
SddManager::Element* SddManager::AllocateElements(Ctx& cx, size_t n) {
  if (n == 0) return nullptr;
  if constexpr (!kPar) {
    // The free map stays empty until a collection has run, so pre-GC
    // workloads never pay the bucket probe on this hot path.
    if (!free_elements_.empty()) {
      const auto it = free_elements_.find(n);
      if (it != free_elements_.end() && !it->second.empty()) {
        Element* out = it->second.back();
        it->second.pop_back();
        return out;
      }
    }
  }
  return cx.element_arena.Allocate(n);
}

SddManager::NodeId SddManager::Decision(int vnode, Elements elements) {
  thread_check_.Check();
  CTSDD_CHECK(!vtree_.is_leaf(vnode))
      << "decisions are normalized at internal vtree nodes";
  if (par_active_) {
    return MakeDecisionT<true>(CurCtx(), vnode, &elements, 0);
  }
  ++apply_depth_;
  const NodeId result = MakeDecisionT<false>(ctxs_[0], vnode, &elements, 0);
  LeaveOp();
  return result;
}

template <bool kPar>
SddManager::ElementSpan SddManager::LiftTo(Ctx& cx, int vnode, NodeId a,
                                           std::array<Element, 2>* store,
                                           int depth) {
  const Node& n = nodes_[a];
  if (n.kind == Kind::kDecision && n.vnode == vnode) {
    return {n.elems, n.num_elems};
  }
  const int where = n.vnode;
  CTSDD_CHECK_GE(where, 0);
  if (vtree_.IsAncestorOrSelf(vtree_.left(vnode), where)) {
    // `a` lives in the left subtree: (a AND true) OR (!a AND false).
    // NotRec may grow nodes_, so `n` is dead after this point.
    const NodeId not_a = NotRecT<kPar>(cx, a, depth);
    // Valid lifts are never empty, so an empty span is the abort
    // sentinel (callers check before reading elements).
    if (budget_ != nullptr && not_a < 0) return {};
    (*store)[0] = {a, kTrue};
    (*store)[1] = {not_a, kFalse};
    return {store->data(), 2};
  }
  CTSDD_CHECK(vtree_.IsAncestorOrSelf(vtree_.right(vnode), where))
      << "operand does not respect the vtree";
  (*store)[0] = {kTrue, a};
  return {store->data(), 1};
}

SddManager::NodeId SddManager::Apply(NodeId a, NodeId b, Op op) {
  thread_check_.Check();
  if (par_active_) {
    // Nested call from inside an open region (compiler task or a caller
    // spanning several operations): the region owner resets the memos.
    return ApplyRecT<true>(CurCtx(), a, b, op, 0);
  }
  if (pool_ != nullptr && pool_->parallel()) {
    BeginParallelRegion();
    const NodeId result = ApplyRecT<true>(CurCtx(), a, b, op, 0);
    EndParallelRegion();
    return result;
  }
  ++apply_depth_;
  const NodeId result = ApplyRecT<false>(ctxs_[0], a, b, op, 0);
  // The exact memos only live for the outermost operation; resetting them
  // here keeps apply memory bounded by a single operation's footprint.
  LeaveOp();
  return result;
}

template <bool kPar>
SddManager::NodeId SddManager::ApplyRecT(Ctx& cx, NodeId a, NodeId b, Op op,
                                         int depth) {
  if (budget_ != nullptr && ((a | b) < 0 || budget_->tripped())) {
    return kAborted;
  }
  ++cx.counters.apply_calls;
  // Terminals, f op f, recorded negations, and the small-scope word
  // semantics — all resolved before any cache probe.
  const NodeId fast = FastApplyT<kPar>(cx, a, b, op);
  if (fast >= 0) return fast;
  if (a > b) std::swap(a, b);
  const ApplyKey key{a, b, op};
  const uint64_t hash = Hash3(static_cast<uint64_t>(a),
                              static_cast<uint64_t>(b),
                              static_cast<uint64_t>(op));
  NodeId cached;
  if constexpr (kPar) {
    if (apply_cache_.LookupC(hash, key, &cached)) return cached;
    if (apply_memo_.LookupC(hash, key, &cached)) return cached;
  } else {
    if (apply_cache_.Lookup(hash, key, &cached)) return cached;
    if (apply_memo_.Lookup(hash, key, &cached)) return cached;
  }

  // Distinct literals of one variable are complements, caught above; the
  // LCA of the remaining cases is internal.
  const int lca = vtree_.Lca(nodes_[a].vnode, nodes_[b].vnode);
  CTSDD_CHECK(!vtree_.is_leaf(lca));
  // The spans stay valid across the recursive Apply calls below: arena
  // chunks never move and the lift stores live on this frame.
  std::array<Element, 2> store_a, store_b;
  const ElementSpan ea = LiftTo<kPar>(cx, lca, a, &store_a, depth);
  const ElementSpan eb = LiftTo<kPar>(cx, lca, b, &store_b, depth);
  // An empty span is LiftTo's abort sentinel (valid lifts never are).
  if (budget_ != nullptr && (ea.empty() || eb.empty())) return kAborted;
  // Depth-indexed scratch: deeper recursive frames (including the ones
  // MakeDecision's compression spawns) use deeper buffers, so this
  // frame's elements survive the recursion without a fresh allocation.
  while (cx.scratch.size() <= cx.rec_depth) cx.scratch.emplace_back();
  Elements& out = cx.scratch[cx.rec_depth];
  ++cx.rec_depth;
  out.clear();
  out.reserve(ea.size() + eb.size() + ea.size() * eb.size());
  // Absorbing-sub collapse: a row (column) whose sub is already the op's
  // absorbing terminal contributes that sub on its whole prime, and
  // since the other operand's primes are exhaustive the merged prime
  // collapses to the row's own prime — zero applies. (The emitted rows
  // and columns may overlap on the absorbing sub; compression disjoins
  // them, and X | (!X & Y) = X | Y keeps the partition exact.)
  const NodeId absorbing = (op == Op::kAnd) ? kFalse : kTrue;
  for (const auto& [p1, s1] : ea) {
    if (s1 == absorbing) out.emplace_back(p1, s1);
  }
  for (const auto& [p2, s2] : eb) {
    if (s2 == absorbing) out.emplace_back(p2, s2);
  }
  cx.counters.absorb_collapses += out.size();
  bool forked = false;
  if constexpr (kPar) {
    // Row-parallel element product: each row of `ea` crosses all of `eb`
    // independently — fork them across the pool while shallow. Rows
    // collect into per-row buffers and merge afterwards; MakeDecision
    // sorts, so emission order is immaterial (canonicity).
    if (depth < kForkDepth && ea.size() >= 2) {
      forked = true;
      std::vector<Elements> row_out(ea.size());
      exec::ParallelFor(
          pool_, ea.size(), budget_token(), [&](size_t r) {
            Ctx& wcx = CurCtx();
            const auto& [p1, s1] = ea[r];
            if (s1 == absorbing) return;
            Elements& row = row_out[r];
            for (const auto& [p2, s2] : eb) {
              if (s2 == absorbing) continue;
              NodeId p = FastApplyT<true>(wcx, p1, p2, Op::kAnd);
              if (p < 0) {
                p = ApplyRecT<true>(wcx, p1, p2, Op::kAnd, depth + 1);
              }
              if (p == kFalse) continue;
              NodeId s =
                  (s1 == s2) ? s1 : FastApplyT<true>(wcx, s1, s2, op);
              if (s < 0) s = ApplyRecT<true>(wcx, s1, s2, op, depth + 1);
              row.emplace_back(p, s);
            }
          });
      for (const Elements& row : row_out) {
        out.insert(out.end(), row.begin(), row.end());
      }
    }
  }
  if (!forked) {
    for (const auto& [p1, s1] : ea) {
      if (s1 == absorbing) continue;
      for (const auto& [p2, s2] : eb) {
        if (s2 == absorbing) continue;
        // Inline resolution first: for unstructured operands most prime
        // pairs are disjoint and die in FastApply's word compare without
        // a recursive call.
        NodeId p = FastApplyT<kPar>(cx, p1, p2, Op::kAnd);
        if (p < 0) p = ApplyRecT<kPar>(cx, p1, p2, Op::kAnd, depth + 1);
        if (p == kFalse) continue;
        NodeId s = (s1 == s2) ? s1 : FastApplyT<kPar>(cx, s1, s2, op);
        if (s < 0) s = ApplyRecT<kPar>(cx, s1, s2, op, depth + 1);
        out.emplace_back(p, s);
      }
    }
  }
  cx.counters.element_products += out.size();
  const NodeId result = MakeDecisionT<kPar>(cx, lca, &out, depth);
  --cx.rec_depth;
  if (budget_ != nullptr && result < 0) return result;  // never cached
  if constexpr (kPar) {
    apply_cache_.StoreC(hash, key, result);
    apply_memo_.InsertC(hash, key, result);
  } else {
    apply_cache_.Store(hash, key, result);
    apply_memo_.Insert(hash, key, result);
  }
  return result;
}

SddManager::NodeId SddManager::And(NodeId a, NodeId b) {
  return Apply(a, b, Op::kAnd);
}

SddManager::NodeId SddManager::Or(NodeId a, NodeId b) {
  return Apply(a, b, Op::kOr);
}

bool SddManager::NormalizeNaryOps(Ctx& cx, std::vector<NodeId>* ops_in,
                                  Op op, NodeId* out) {
  std::vector<NodeId>& ops = *ops_in;
  // Abort propagation, checked before the fast_info_ negation probes
  // below dereference any operand.
  if (budget_ != nullptr) {
    for (const NodeId x : ops) {
      if (x < 0) {
        *out = kAborted;
        return true;
      }
    }
  }
  const NodeId absorbing = (op == Op::kAnd) ? kFalse : kTrue;
  const NodeId identity = (op == Op::kAnd) ? kTrue : kFalse;
  size_t n = 0;
  for (const NodeId x : ops) {
    if (x == absorbing) {
      *out = absorbing;
      return true;
    }
    if (x != identity) ops[n++] = x;
  }
  ops.resize(n);
  // Duplicate and complementary operands decide or shrink the fold before
  // any apply runs. The sorted probe set is scratch (reused across calls
  // to keep this allocation-free on the hot path — NormalizeNaryOps never
  // re-enters itself within a context): the caller's operand order is
  // deliberate (fold locality) and must be preserved.
  std::vector<NodeId>& sorted = cx.nary_probe_scratch;
  sorted.assign(ops.begin(), ops.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (const NodeId x : sorted) {
    const NodeId nx =
        NegationOf(fast_info_[x]).load(std::memory_order_relaxed);
    if (nx >= 0 && std::binary_search(sorted.begin(), sorted.end(), nx)) {
      *out = absorbing;  // x op !x
      return true;
    }
  }
  if (sorted.size() < ops.size()) {
    // Drop duplicates, keeping first occurrences in order.
    std::vector<NodeId> seen;
    seen.reserve(sorted.size());
    size_t kept = 0;
    for (const NodeId x : ops) {
      const auto it = std::lower_bound(seen.begin(), seen.end(), x);
      if (it != seen.end() && *it == x) continue;
      seen.insert(it, x);
      ops[kept++] = x;
    }
    ops.resize(kept);
  }
  if (ops.empty()) {
    *out = identity;
    return true;
  }
  if (ops.size() == 1) {
    *out = ops[0];
    return true;
  }
  return false;
}

template <bool kPar>
SddManager::NodeId SddManager::ApplyNT(Ctx& cx,
                                       const std::vector<NodeId>& ops, Op op,
                                       int depth) {
  if (ops.size() == 2) return ApplyRecT<kPar>(cx, ops[0], ops[1], op, depth);
  if (budget_ != nullptr) {
    if (budget_->tripped()) return kAborted;
    for (const NodeId x : ops) {
      if (x < 0) return kAborted;
    }
  }
  NaryKey key{op, ops};
  std::sort(key.ops.begin(), key.ops.end());  // order-insensitive memo key
  const auto it = cx.nary_memo.find(key);
  if (it != cx.nary_memo.end()) return it->second;

  int lca = nodes_[ops[0]].vnode;
  for (size_t i = 1; i < ops.size(); ++i) {
    lca = vtree_.Lca(lca, nodes_[ops[i]].vnode);
  }
  CTSDD_CHECK(!vtree_.is_leaf(lca));
  // Lift every operand to `lca`. Lift stores are preallocated so the
  // spans stay valid; LiftTo may grow nodes_, never move arena chunks.
  std::vector<std::array<Element, 2>> stores(ops.size());
  std::vector<ElementSpan> spans(ops.size());
  size_t product = 1;
  for (size_t i = 0; i < ops.size(); ++i) {
    spans[i] = LiftTo<kPar>(cx, lca, ops[i], &stores[i], depth);
    // An empty span is LiftTo's abort sentinel.
    if (budget_ != nullptr && spans[i].empty()) return kAborted;
    // Saturate at the cap: the running multiply must not wrap (eight
    // 256-element operands already reach 2^64).
    product = (product > kNaryProductCap)
                  ? product
                  : product * std::max<size_t>(spans[i].size(), 1);
  }
  NodeId result;
  if (product > kNaryProductCap) {
    // The meet of these partitions is too wide for one expansion; fold
    // with binary applies, whose per-step canonicalization keeps
    // intermediates compressed. Sequential for And (each conjunct
    // constrains the accumulator), balanced for Or (disjuncts don't).
    ++cx.counters.nary_fallbacks;
    if (op == Op::kAnd) {
      result = ops[0];
      for (size_t i = 1; i < ops.size() && result != kFalse; ++i) {
        result = ApplyRecT<kPar>(cx, result, ops[i], op, depth);
      }
    } else {
      std::vector<NodeId> fold = ops;
      while (fold.size() > 1) {
        size_t next = 0;
        for (size_t i = 0; i + 1 < fold.size(); i += 2) {
          fold[next++] = ApplyRecT<kPar>(cx, fold[i], fold[i + 1], op, depth);
        }
        if (fold.size() % 2 == 1) fold[next++] = fold.back();
        fold.resize(next);
      }
      result = fold[0];
    }
    if (budget_ != nullptr && result < 0) return result;  // never memoized
    cx.nary_memo.emplace(std::move(key), result);
    return result;
  }

  ++cx.counters.nary_applies;
  while (cx.scratch.size() <= cx.rec_depth) cx.scratch.emplace_back();
  Elements& out = cx.scratch[cx.rec_depth];
  ++cx.rec_depth;
  out.clear();
  // Absorbing-sub collapse, n-ary: an element whose sub is already the
  // op's absorbing terminal contributes (prime, absorbing) outright (the
  // other operands' primes are exhaustive over its prime), and the
  // product below skips it — its cells are covered.
  const NodeId absorbing = (op == Op::kAnd) ? kFalse : kTrue;
  for (const ElementSpan& span : spans) {
    for (const auto& [p, s] : span) {
      if (s == absorbing) {
        out.emplace_back(p, s);
        ++cx.counters.absorb_collapses;
      }
    }
  }
  // Smallest element lists first: dead partial primes prune the widest
  // subtrees of the product as early as possible.
  std::vector<size_t> order(spans.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return spans[x].size() < spans[y].size();
  });
  std::vector<NodeId> subs(spans.size());
  std::vector<NodeId> sub_ops;  // leaf fold buffer, reused across leaves
  sub_ops.reserve(spans.size());
  // Depth-first element product with live-prime pruning: each level picks
  // one element of one operand, conjoining its prime into the running
  // cell prime; a false cell prime cuts the whole subtree. Leaves fold
  // their collected subs with a recursive n-ary apply.
  auto dfs = [&](auto&& self, size_t level, NodeId acc) -> void {
    if (level == spans.size()) {
      sub_ops.assign(subs.begin(), subs.end());
      NodeId s;
      if (!NormalizeNaryOps(cx, &sub_ops, op, &s)) {
        s = ApplyNT<kPar>(cx, sub_ops, op, depth + 1);
      }
      out.emplace_back(acc, s);
      return;
    }
    for (const auto& [p, s] : spans[order[level]]) {
      if (s == absorbing) continue;  // collapsed above
      NodeId cell = p;
      if (acc != kTrue) {
        cell = FastApplyT<kPar>(cx, acc, p, Op::kAnd);
        if (cell < 0) cell = ApplyRecT<kPar>(cx, acc, p, Op::kAnd, depth + 1);
      }
      // Aborted cell prime: skip the subtree — the tripped check after
      // the product returns kAborted before anything uses `out`.
      if (budget_ != nullptr && cell < 0) return;
      if (cell == kFalse) continue;
      subs[level] = s;
      self(self, level + 1, cell);
    }
  };
  dfs(dfs, 0, kTrue);
  if (budget_ != nullptr && budget_->tripped()) {
    --cx.rec_depth;
    return kAborted;
  }
  cx.counters.element_products += out.size();
  result = MakeDecisionT<kPar>(cx, lca, &out, depth);
  --cx.rec_depth;
  if (budget_ != nullptr && result < 0) return result;  // never memoized
  cx.nary_memo.emplace(std::move(key), result);
  return result;
}

template <bool kPar>
SddManager::NodeId SddManager::AndNT(Ctx& cx, std::vector<NodeId> ops) {
  NodeId result;
  if (NormalizeNaryOps(cx, &ops, Op::kAnd, &result)) return result;
  if (ops.size() <= kNaryFoldArity) {
    // One n-ary element product: wide gates canonicalize once instead of
    // paying MakeDecision per binary apply.
    result = ApplyNT<kPar>(cx, ops, Op::kAnd, 0);
  } else {
    // Sequential accumulation: each conjunct constrains the accumulator,
    // so intermediates shrink as constraints pile up (the CNF-compilation
    // regime, where a balanced fold would first build large unconstrained
    // halves — ~300x slower on the ladder workloads).
    result = ops[0];
    for (size_t i = 1; i < ops.size() && result != kFalse; ++i) {
      result = ApplyRecT<kPar>(cx, result, ops[i], Op::kAnd, 0);
    }
  }
  return result;
}

template <bool kPar>
SddManager::NodeId SddManager::OrNT(Ctx& cx, std::vector<NodeId> ops) {
  NodeId result;
  if (NormalizeNaryOps(cx, &ops, Op::kOr, &result)) return result;
  // Balanced chunked fold: disjuncts do not constrain each other, so a
  // sequential accumulator would re-walk an ever-growing DNF-like result
  // per operand; combining up to kNaryFoldArity scope-adjacent disjuncts
  // per n-ary product keeps intermediates local and skips their pairwise
  // canonicalization.
  while (ops.size() > 1) {
    size_t next = 0;
    bool saw_true = false;
    for (size_t i = 0; i < ops.size() && !saw_true; i += kNaryFoldArity) {
      const size_t end = std::min(ops.size(), i + kNaryFoldArity);
      std::vector<NodeId> chunk(ops.begin() + i, ops.begin() + end);
      NodeId combined;
      if (!NormalizeNaryOps(cx, &chunk, Op::kOr, &combined)) {
        combined = ApplyNT<kPar>(cx, chunk, Op::kOr, 0);
      }
      saw_true = (combined == kTrue);
      ops[next++] = combined;
    }
    ops.resize(next);
    if (saw_true) {
      ops = {kTrue};
      break;
    }
  }
  return ops[0];
}

SddManager::NodeId SddManager::AndN(std::vector<NodeId> ops) {
  thread_check_.Check();
  if (par_active_) {
    return AndNT<true>(CurCtx(), std::move(ops));
  }
  if (pool_ != nullptr && pool_->parallel()) {
    BeginParallelRegion();
    const NodeId result = AndNT<true>(CurCtx(), std::move(ops));
    EndParallelRegion();
    return result;
  }
  ++apply_depth_;
  const NodeId result = AndNT<false>(ctxs_[0], std::move(ops));
  LeaveOp();
  return result;
}

SddManager::NodeId SddManager::OrN(std::vector<NodeId> ops) {
  thread_check_.Check();
  if (par_active_) {
    return OrNT<true>(CurCtx(), std::move(ops));
  }
  if (pool_ != nullptr && pool_->parallel()) {
    BeginParallelRegion();
    const NodeId result = OrNT<true>(CurCtx(), std::move(ops));
    EndParallelRegion();
    return result;
  }
  ++apply_depth_;
  const NodeId result = OrNT<false>(ctxs_[0], std::move(ops));
  LeaveOp();
  return result;
}

SddManager::NodeId SddManager::Not(NodeId a) {
  thread_check_.Check();
  if (par_active_) {
    return NotRecT<true>(CurCtx(), a, 0);
  }
  ++apply_depth_;
  const NodeId result = NotRecT<false>(ctxs_[0], a, 0);
  LeaveOp();
  return result;
}

template <bool kPar>
SddManager::NodeId SddManager::NotRecT(Ctx& cx, NodeId a, int depth) {
  if (budget_ != nullptr && (a < 0 || budget_->tripped())) return kAborted;
  if (a == kFalse) return kTrue;
  if (a == kTrue) return kFalse;
  // The exact negation links are a complete, unbounded memo: every
  // negation ever computed (and every complement literal pair) is linked,
  // so a hit here is O(1) and a whole-diagram negation visits each
  // unlinked node once.
  const NodeId linked =
      NegationOf(fast_info_[a]).load(std::memory_order_relaxed);
  if (linked >= 0) return linked;
  // Copy the node header: recursive calls below may grow nodes_. The
  // element pointer stays valid (arena chunks never move).
  const Node n = nodes_[a];
  NodeId result;
  if (n.kind == Kind::kLiteral) {
    result = Literal(n.var, !n.sense);
  } else {
    Elements out(n.elems, n.elems + n.num_elems);
    for (auto& [p, s] : out) s = NotRecT<kPar>(cx, s, depth);
    result = MakeDecisionT<kPar>(cx, n.vnode, &out, depth);
  }
  if (budget_ != nullptr && result < 0) return result;  // never linked
  LinkNegations(a, result);
  return result;
}

SddManager::NodeId SddManager::Restrict(NodeId a, int var, bool value) {
  thread_check_.Check();
  CTSDD_CHECK(!par_active_) << "Restrict inside a parallel region";
  const int leaf = vtree_.LeafOf(var);
  CTSDD_CHECK_GE(leaf, 0);
  ++apply_depth_;
  std::unordered_map<NodeId, NodeId> memo;
  std::function<NodeId(NodeId)> rec = [&](NodeId u) -> NodeId {
    if (IsConst(u)) return u;
    // Copy the node header: recursive calls may grow nodes_.
    const Node n = nodes_[u];
    // If var is outside u's scope, u is unchanged.
    if (!vtree_.IsAncestorOrSelf(n.vnode, leaf)) return u;
    const auto it = memo.find(u);
    if (it != memo.end()) return it->second;
    NodeId result;
    if (n.kind == Kind::kLiteral) {
      result = (n.sense == value) ? kTrue : kFalse;
    } else {
      Elements out(n.elems, n.elems + n.num_elems);
      if (vtree_.IsAncestorOrSelf(vtree_.left(n.vnode), leaf)) {
        for (auto& [p, s] : out) p = rec(p);
      } else {
        for (auto& [p, s] : out) s = rec(s);
      }
      result = MakeDecisionT<false>(ctxs_[0], n.vnode, &out, 0);
    }
    memo.emplace(u, result);
    return result;
  };
  const NodeId result = rec(a);
  LeaveOp();
  return result;
}

SddManager::NodeId SddManager::Exists(NodeId a, int var) {
  return Or(Restrict(a, var, false), Restrict(a, var, true));
}

SddManager::NodeId SddManager::Forall(NodeId a, int var) {
  return And(Restrict(a, var, false), Restrict(a, var, true));
}

SddManager::NodeId SddManager::ExistsAll(NodeId a,
                                         const std::vector<int>& vars) {
  for (int var : vars) a = Exists(a, var);
  return a;
}

bool SddManager::AnyModel(NodeId a, std::map<int, bool>* out) const {
  out->clear();
  if (a == kFalse) return false;
  // Walk down: at each decision pick a satisfiable (prime, sub) pair with
  // sub != false; fill unconstrained variables with false.
  std::function<bool(NodeId)> descend = [&](NodeId u) -> bool {
    if (u == kFalse) return false;
    if (u == kTrue) return true;
    const Node& n = nodes_[u];
    if (n.kind == Kind::kLiteral) {
      out->emplace(n.var, n.sense);
      return true;
    }
    for (const auto& [p, s] : elements(u)) {
      if (s == kFalse) continue;
      // Primes are satisfiable by construction.
      if (!descend(p)) continue;
      return descend(s);
    }
    return false;
  };
  if (!descend(a)) return false;
  for (int v : vtree_.Vars()) out->try_emplace(v, false);
  return true;
}

bool SddManager::Evaluate(NodeId a,
                          const std::map<int, bool>& assignment) const {
  std::function<bool(NodeId)> rec = [&](NodeId u) -> bool {
    if (u == kFalse) return false;
    if (u == kTrue) return true;
    const Node& n = nodes_[u];
    if (n.kind == Kind::kLiteral) {
      const auto it = assignment.find(n.var);
      CTSDD_CHECK(it != assignment.end())
          << "assignment missing variable x" << n.var;
      return it->second == n.sense;
    }
    for (const auto& [p, s] : elements(u)) {
      if (rec(p)) return rec(s);
    }
    CTSDD_CHECK(false) << "primes must be exhaustive";
    return false;
  };
  return rec(a);
}

uint64_t SddManager::CountModelsAt(
    NodeId a, int vnode, std::unordered_map<uint64_t, uint64_t>* memo) const {
  const int scope = static_cast<int>(vtree_.VarsBelow(vnode).size());
  CTSDD_CHECK_LE(scope, 62);
  if (a == kFalse) return 0;
  if (a == kTrue) return 1ULL << scope;
  const uint64_t key = (static_cast<uint64_t>(a) << 20) |
                       static_cast<uint64_t>(vnode);
  const auto it = memo->find(key);
  if (it != memo->end()) return it->second;
  const Node& n = nodes_[a];
  CTSDD_CHECK(vtree_.IsAncestorOrSelf(vnode, n.vnode))
      << "node out of scope for model counting";
  uint64_t result;
  if (n.kind == Kind::kLiteral) {
    result = 1ULL << (scope - 1);
  } else {
    const int w = n.vnode;
    uint64_t base = 0;
    for (const auto& [p, s] : elements(a)) {
      base += CountModelsAt(p, vtree_.left(w), memo) *
              CountModelsAt(s, vtree_.right(w), memo);
    }
    const int w_scope = static_cast<int>(vtree_.VarsBelow(w).size());
    result = base << (scope - w_scope);
  }
  memo->emplace(key, result);
  return result;
}

uint64_t SddManager::CountModels(NodeId a) const {
  std::unordered_map<uint64_t, uint64_t> memo;
  return CountModelsAt(a, vtree_.root(), &memo);
}

double SddManager::WmcAt(NodeId a, int vnode,
                         const std::vector<double>& prob_of_var,
                         std::unordered_map<uint64_t, double>* memo) const {
  if (a == kFalse) return 0.0;
  if (a == kTrue) return 1.0;
  const uint64_t key = (static_cast<uint64_t>(a) << 20) |
                       static_cast<uint64_t>(vnode);
  const auto it = memo->find(key);
  if (it != memo->end()) return it->second;
  const Node& n = nodes_[a];
  double result;
  if (n.kind == Kind::kLiteral) {
    const double p = prob_of_var[n.var];
    result = n.sense ? p : 1.0 - p;
  } else {
    const int w = n.vnode;
    result = 0.0;
    for (const auto& [p, s] : elements(a)) {
      result += WmcAt(p, vtree_.left(w), prob_of_var, memo) *
                WmcAt(s, vtree_.right(w), prob_of_var, memo);
    }
  }
  memo->emplace(key, result);
  return result;
}

double SddManager::WeightedModelCount(
    NodeId a, const std::map<int, double>& prob) const {
  int max_var = 0;
  for (int v : vtree_.Vars()) max_var = std::max(max_var, v);
  std::vector<double> prob_of_var(max_var + 1, 0.5);
  for (const auto& [v, p] : prob) {
    if (v <= max_var) prob_of_var[v] = p;
  }
  std::unordered_map<uint64_t, double> memo;
  return WmcAt(a, vtree_.root(), prob_of_var, &memo);
}

BoolFunc SddManager::ToBoolFunc(NodeId a) const {
  const std::vector<int>& all = vtree_.Vars();
  CTSDD_CHECK_LE(static_cast<int>(all.size()), BoolFunc::kMaxVars);
  std::unordered_map<NodeId, BoolFunc> memo;
  std::function<BoolFunc(NodeId)> rec = [&](NodeId u) -> BoolFunc {
    if (u == kFalse) return BoolFunc::Constant(false);
    if (u == kTrue) return BoolFunc::Constant(true);
    const auto it = memo.find(u);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[u];
    BoolFunc result;
    if (n.kind == Kind::kLiteral) {
      result = BoolFunc::Literal(n.var, n.sense);
    } else {
      result = BoolFunc::Constant(false);
      for (const auto& [p, s] : elements(u)) {
        result = result | (rec(p) & rec(s));
      }
    }
    memo.emplace(u, result);
    return result;
  };
  return rec(a).ExpandTo(all);
}

int SddManager::Size(NodeId a) const {
  int total = 0;
  for (int count : VtreeProfile(a)) total += count;
  return total;
}

int SddManager::NumDecisions(NodeId a) const {
  int count = 0;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack = {a};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (IsConst(u) || seen[u]) continue;
    seen[u] = true;
    if (nodes_[u].kind == Kind::kDecision) {
      ++count;
      for (const auto& [p, s] : elements(u)) {
        stack.push_back(p);
        stack.push_back(s);
      }
    }
  }
  return count;
}

std::vector<int> SddManager::VtreeProfile(NodeId a) const {
  std::vector<int> profile(vtree_.num_nodes(), 0);
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack = {a};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (IsConst(u) || seen[u]) continue;
    seen[u] = true;
    const Node& n = nodes_[u];
    if (n.kind == Kind::kDecision) {
      profile[n.vnode] += static_cast<int>(n.num_elems);
      for (const auto& [p, s] : elements(u)) {
        stack.push_back(p);
        stack.push_back(s);
      }
    }
  }
  return profile;
}

int SddManager::Width(NodeId a) const {
  int width = 0;
  for (int count : VtreeProfile(a)) width = std::max(width, count);
  return width;
}

Status SddManager::Validate(NodeId a) {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack = {a};
  std::unordered_map<uint64_t, uint64_t> memo;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (IsConst(u) || seen[u]) continue;
    seen[u] = true;
    // Copy the node header: the disjointness checks below may grow nodes_.
    // The element pointer stays valid (arena chunks never move).
    const Node n = nodes_[u];
    if (n.kind == Kind::kLiteral) continue;
    if (vtree_.is_leaf(n.vnode)) {
      return Status::Internal("decision normalized at a vtree leaf");
    }
    if (n.num_elems < 2) {
      return Status::Internal("untrimmed single-element decision");
    }
    const int left = vtree_.left(n.vnode);
    const int right = vtree_.right(n.vnode);
    const ElementSpan elems{n.elems, n.num_elems};
    uint64_t prime_models = 0;
    std::vector<NodeId> subs;
    for (const auto& [p, s] : elems) {
      if (p == kFalse || p == kTrue) {
        return Status::Internal("constant prime in multi-element decision");
      }
      if (!vtree_.IsAncestorOrSelf(left, nodes_[p].vnode)) {
        return Status::Internal("prime outside left vtree subtree");
      }
      if (!IsConst(s) && !vtree_.IsAncestorOrSelf(right, nodes_[s].vnode)) {
        return Status::Internal("sub outside right vtree subtree");
      }
      prime_models += CountModelsAt(p, left, &memo);
      subs.push_back(s);
      stack.push_back(p);
      stack.push_back(s);
    }
    // Pairwise disjointness of primes.
    for (size_t i = 0; i < elems.size(); ++i) {
      for (size_t j = i + 1; j < elems.size(); ++j) {
        if (And(elems[i].first, elems[j].first) != kFalse) {
          return Status::Internal("primes not pairwise disjoint");
        }
      }
    }
    // Exhaustiveness: disjoint primes partition iff counts sum to the cube.
    const int left_scope = static_cast<int>(vtree_.VarsBelow(left).size());
    if (prime_models != (1ULL << left_scope)) {
      return Status::Internal("primes do not partition their scope");
    }
    std::sort(subs.begin(), subs.end());
    if (std::adjacent_find(subs.begin(), subs.end()) != subs.end()) {
      return Status::Internal("duplicate subs (compression violated)");
    }
  }
  return Status::Ok();
}

}  // namespace ctsdd
