#include "sdd/sdd.h"

#include <algorithm>
#include <array>
#include <functional>

#include "util/hashing.h"
#include "util/logging.h"

namespace ctsdd {

SddManager::SddManager(Vtree vtree, Options options)
    : vtree_(std::move(vtree)),
      apply_cache_(options.apply_cache_slots),
      neg_cache_(options.neg_cache_slots) {
  CTSDD_CHECK_GE(vtree_.root(), 0) << "vtree must be rooted";
  // Terminal constants.
  nodes_.push_back({Kind::kConst, false, -1, -1, nullptr, 0});
  nodes_.push_back({Kind::kConst, true, -1, -1, nullptr, 0});
  const std::vector<int>& vars = vtree_.Vars();
  const int max_var = vars.empty() ? -1 : vars.back();
  literal_ids_.assign(2 * (max_var + 1), -1);
}

SddManager::NodeId SddManager::Literal(int var, bool positive) {
  const size_t key = (static_cast<size_t>(var) << 1) | positive;
  CTSDD_CHECK(var >= 0 && key < literal_ids_.size())
      << "variable x" << var << " not in vtree";
  if (literal_ids_[key] >= 0) return literal_ids_[key];
  const int leaf = vtree_.LeafOf(var);
  CTSDD_CHECK_GE(leaf, 0) << "variable x" << var << " not in vtree";
  nodes_.push_back({Kind::kLiteral, positive, var, leaf, nullptr, 0});
  const NodeId id = static_cast<NodeId>(nodes_.size()) - 1;
  literal_ids_[key] = id;
  return id;
}

SddManager::NodeId SddManager::MakeDecision(int vnode, Elements* elements_in) {
  Elements& elements = *elements_in;
  // Drop false primes.
  elements.erase(std::remove_if(elements.begin(), elements.end(),
                                [](const auto& e) { return e.first == kFalse; }),
                 elements.end());
  CTSDD_CHECK(!elements.empty())
      << "decision with no satisfiable prime (primes must be exhaustive)";
  // Compress: merge elements with equal subs by disjoining their primes.
  // Sorting by sub groups the merge candidates; all Apply calls happen
  // before the unique-table probe below, so no table operation intervenes
  // between Find and Insert.
  std::sort(elements.begin(), elements.end(),
            [](const Element& x, const Element& y) {
              return x.second != y.second ? x.second < y.second
                                          : x.first < y.first;
            });
  size_t out = 0;
  for (size_t i = 0; i < elements.size();) {
    const NodeId sub = elements[i].second;
    NodeId prime = elements[i].first;
    size_t j = i + 1;
    for (; j < elements.size() && elements[j].second == sub; ++j) {
      prime = Apply(prime, elements[j].first, Op::kOr);
    }
    elements[out++] = {prime, sub};
    i = j;
  }
  elements.resize(out);
  // Trim rule 1: {(true, s)} -> s.
  if (elements.size() == 1) {
    CTSDD_CHECK_EQ(elements[0].first, kTrue)
        << "single-element decision must have a valid (exhaustive) prime";
    return elements[0].second;
  }
  // Trim rule 2: {(p, true), (q, false)} -> p (since q = !p by partition).
  if (elements.size() == 2) {
    NodeId true_prime = -1;
    NodeId false_prime = -1;
    for (const auto& [p, s] : elements) {
      if (s == kTrue) true_prime = p;
      if (s == kFalse) false_prime = p;
    }
    if (true_prime >= 0 && false_prime >= 0) return true_prime;
  }
  std::sort(elements.begin(), elements.end());
  uint64_t hash = HashMix64(static_cast<uint64_t>(vnode));
  for (const auto& [p, s] : elements) {
    hash = HashCombine(hash, (static_cast<uint64_t>(p) << 32) |
                                 static_cast<uint32_t>(s));
  }
  const int32_t found = unique_.Find(hash, [&](int32_t id) {
    const Node& n = nodes_[id];
    return n.vnode == vnode && n.num_elems == elements.size() &&
           std::equal(elements.begin(), elements.end(), n.elems);
  });
  if (found != UniqueTable::kEmpty) return found;
  Element* stored = element_arena_.Allocate(elements.size());
  std::copy(elements.begin(), elements.end(), stored);
  nodes_.push_back({Kind::kDecision, false, -1, vnode, stored,
                    static_cast<uint32_t>(elements.size())});
  const NodeId id = static_cast<NodeId>(nodes_.size()) - 1;
  unique_.Insert(hash, id);
  return id;
}

SddManager::ElementSpan SddManager::LiftTo(int vnode, NodeId a,
                                           std::array<Element, 2>* store) {
  const Node& n = nodes_[a];
  if (n.kind == Kind::kDecision && n.vnode == vnode) {
    return {n.elems, n.num_elems};
  }
  const int where = n.vnode;
  CTSDD_CHECK_GE(where, 0);
  if (vtree_.IsAncestorOrSelf(vtree_.left(vnode), where)) {
    // `a` lives in the left subtree: (a AND true) OR (!a AND false).
    // Not(a) may grow nodes_, so `n` is dead after this point.
    const NodeId not_a = Not(a);
    (*store)[0] = {a, kTrue};
    (*store)[1] = {not_a, kFalse};
    return {store->data(), 2};
  }
  CTSDD_CHECK(vtree_.IsAncestorOrSelf(vtree_.right(vnode), where))
      << "operand does not respect the vtree";
  (*store)[0] = {kTrue, a};
  return {store->data(), 1};
}

SddManager::NodeId SddManager::Apply(NodeId a, NodeId b, Op op) {
  ++apply_depth_;
  const NodeId result = ApplyRec(a, b, op);
  // The exact memo only lives for the outermost operation; resetting it
  // here keeps apply memory bounded by a single operation's footprint.
  if (--apply_depth_ == 0) apply_memo_.Reset();
  return result;
}

SddManager::NodeId SddManager::ApplyRec(NodeId a, NodeId b, Op op) {
  // Terminal cases.
  if (op == Op::kAnd) {
    if (a == kFalse || b == kFalse) return kFalse;
    if (a == kTrue) return b;
    if (b == kTrue) return a;
  } else {
    if (a == kTrue || b == kTrue) return kTrue;
    if (a == kFalse) return b;
    if (b == kFalse) return a;
  }
  if (a == b) return a;
  if (a > b) std::swap(a, b);
  const ApplyKey key{a, b, op};
  const uint64_t hash = Hash3(static_cast<uint64_t>(a),
                              static_cast<uint64_t>(b),
                              static_cast<uint64_t>(op));
  NodeId cached;
  if (apply_cache_.Lookup(hash, key, &cached)) return cached;
  if (apply_memo_.Lookup(hash, key, &cached)) return cached;

  const Kind kind_a = nodes_[a].kind;
  const Kind kind_b = nodes_[b].kind;
  const int var_a = nodes_[a].var;
  const int var_b = nodes_[b].var;
  NodeId result;
  if (kind_a == Kind::kLiteral && kind_b == Kind::kLiteral &&
      var_a == var_b) {
    // Same variable, different signs (equal handled above).
    result = (op == Op::kAnd) ? kFalse : kTrue;
  } else {
    const int lca = vtree_.Lca(nodes_[a].vnode, nodes_[b].vnode);
    CTSDD_CHECK(!vtree_.is_leaf(lca));
    // The spans stay valid across the recursive Apply calls below: arena
    // chunks never move and the lift stores live on this frame.
    std::array<Element, 2> store_a, store_b;
    const ElementSpan ea = LiftTo(lca, a, &store_a);
    const ElementSpan eb = LiftTo(lca, b, &store_b);
    // Depth-indexed scratch: deeper recursive frames (including the ones
    // MakeDecision's compression spawns) use deeper buffers, so this
    // frame's elements survive the recursion without a fresh allocation.
    while (scratch_.size() <= rec_depth_) scratch_.emplace_back();
    Elements& out = scratch_[rec_depth_];
    ++rec_depth_;
    out.clear();
    out.reserve(ea.size() * eb.size());
    for (const auto& [p1, s1] : ea) {
      for (const auto& [p2, s2] : eb) {
        const NodeId p = Apply(p1, p2, Op::kAnd);
        if (p == kFalse) continue;
        out.emplace_back(p, Apply(s1, s2, op));
      }
    }
    result = MakeDecision(lca, &out);
    --rec_depth_;
  }
  apply_cache_.Store(hash, key, result);
  apply_memo_.Insert(hash, key, result);
  return result;
}

SddManager::NodeId SddManager::And(NodeId a, NodeId b) {
  return Apply(a, b, Op::kAnd);
}

SddManager::NodeId SddManager::Or(NodeId a, NodeId b) {
  return Apply(a, b, Op::kOr);
}

SddManager::NodeId SddManager::AndN(std::vector<NodeId> ops) {
  size_t out = 0;
  for (const NodeId op : ops) {
    if (op == kFalse) return kFalse;
    if (op != kTrue) ops[out++] = op;
  }
  ops.resize(out);
  if (ops.empty()) return kTrue;
  // Sequential accumulation: each conjunct constrains the accumulator, so
  // intermediates shrink as constraints pile up (the CNF-compilation
  // regime, where a balanced fold would first build large unconstrained
  // halves — ~300x slower on the ladder workloads).
  NodeId acc = ops[0];
  for (size_t i = 1; i < ops.size(); ++i) {
    acc = And(acc, ops[i]);
    if (acc == kFalse) return kFalse;
  }
  return acc;
}

SddManager::NodeId SddManager::OrN(std::vector<NodeId> ops) {
  size_t out = 0;
  for (const NodeId op : ops) {
    if (op == kTrue) return kTrue;
    if (op != kFalse) ops[out++] = op;
  }
  ops.resize(out);
  if (ops.empty()) return kFalse;
  // Balanced pairwise fold: disjuncts do not constrain each other, so a
  // sequential accumulator would re-walk an ever-growing DNF-like result
  // per operand; pairing keeps intermediate results local.
  while (ops.size() > 1) {
    size_t next = 0;
    for (size_t i = 0; i + 1 < ops.size(); i += 2) {
      const NodeId combined = Or(ops[i], ops[i + 1]);
      if (combined == kTrue) return kTrue;
      ops[next++] = combined;
    }
    if (ops.size() % 2 == 1) ops[next++] = ops.back();
    ops.resize(next);
  }
  return ops[0];
}

SddManager::NodeId SddManager::Not(NodeId a) {
  ++neg_depth_;
  const NodeId result = NotRec(a);
  if (--neg_depth_ == 0) neg_memo_.Reset();
  return result;
}

SddManager::NodeId SddManager::NotRec(NodeId a) {
  if (a == kFalse) return kTrue;
  if (a == kTrue) return kFalse;
  NodeId cached;
  const uint64_t hash = HashMix64(static_cast<uint64_t>(a));
  if (neg_cache_.Lookup(hash, a, &cached)) return cached;
  if (neg_memo_.Lookup(hash, a, &cached)) return cached;
  // Copy the node header: recursive calls below may grow nodes_. The
  // element pointer stays valid (arena chunks never move).
  const Node n = nodes_[a];
  NodeId result;
  if (n.kind == Kind::kLiteral) {
    result = Literal(n.var, !n.sense);
  } else {
    Elements out(n.elems, n.elems + n.num_elems);
    for (auto& [p, s] : out) s = NotRec(s);
    result = MakeDecision(n.vnode, &out);
  }
  neg_cache_.Store(hash, a, result);
  neg_cache_.Store(HashMix64(static_cast<uint64_t>(result)), result, a);
  neg_memo_.Insert(hash, a, result);
  return result;
}

SddManager::NodeId SddManager::Restrict(NodeId a, int var, bool value) {
  const int leaf = vtree_.LeafOf(var);
  CTSDD_CHECK_GE(leaf, 0);
  std::unordered_map<NodeId, NodeId> memo;
  std::function<NodeId(NodeId)> rec = [&](NodeId u) -> NodeId {
    if (IsConst(u)) return u;
    // Copy the node header: recursive calls may grow nodes_.
    const Node n = nodes_[u];
    // If var is outside u's scope, u is unchanged.
    if (!vtree_.IsAncestorOrSelf(n.vnode, leaf)) return u;
    const auto it = memo.find(u);
    if (it != memo.end()) return it->second;
    NodeId result;
    if (n.kind == Kind::kLiteral) {
      result = (n.sense == value) ? kTrue : kFalse;
    } else {
      Elements out(n.elems, n.elems + n.num_elems);
      if (vtree_.IsAncestorOrSelf(vtree_.left(n.vnode), leaf)) {
        for (auto& [p, s] : out) p = rec(p);
      } else {
        for (auto& [p, s] : out) s = rec(s);
      }
      result = MakeDecision(n.vnode, &out);
    }
    memo.emplace(u, result);
    return result;
  };
  return rec(a);
}

SddManager::NodeId SddManager::Exists(NodeId a, int var) {
  return Or(Restrict(a, var, false), Restrict(a, var, true));
}

SddManager::NodeId SddManager::Forall(NodeId a, int var) {
  return And(Restrict(a, var, false), Restrict(a, var, true));
}

SddManager::NodeId SddManager::ExistsAll(NodeId a,
                                         const std::vector<int>& vars) {
  for (int var : vars) a = Exists(a, var);
  return a;
}

bool SddManager::AnyModel(NodeId a, std::map<int, bool>* out) const {
  out->clear();
  if (a == kFalse) return false;
  // Walk down: at each decision pick a satisfiable (prime, sub) pair with
  // sub != false; fill unconstrained variables with false.
  std::function<bool(NodeId)> descend = [&](NodeId u) -> bool {
    if (u == kFalse) return false;
    if (u == kTrue) return true;
    const Node& n = nodes_[u];
    if (n.kind == Kind::kLiteral) {
      out->emplace(n.var, n.sense);
      return true;
    }
    for (const auto& [p, s] : elements(u)) {
      if (s == kFalse) continue;
      // Primes are satisfiable by construction.
      if (!descend(p)) continue;
      return descend(s);
    }
    return false;
  };
  if (!descend(a)) return false;
  for (int v : vtree_.Vars()) out->try_emplace(v, false);
  return true;
}

bool SddManager::Evaluate(NodeId a,
                          const std::map<int, bool>& assignment) const {
  std::function<bool(NodeId)> rec = [&](NodeId u) -> bool {
    if (u == kFalse) return false;
    if (u == kTrue) return true;
    const Node& n = nodes_[u];
    if (n.kind == Kind::kLiteral) {
      const auto it = assignment.find(n.var);
      CTSDD_CHECK(it != assignment.end())
          << "assignment missing variable x" << n.var;
      return it->second == n.sense;
    }
    for (const auto& [p, s] : elements(u)) {
      if (rec(p)) return rec(s);
    }
    CTSDD_CHECK(false) << "primes must be exhaustive";
    return false;
  };
  return rec(a);
}

uint64_t SddManager::CountModelsAt(
    NodeId a, int vnode, std::unordered_map<uint64_t, uint64_t>* memo) const {
  const int scope = static_cast<int>(vtree_.VarsBelow(vnode).size());
  CTSDD_CHECK_LE(scope, 62);
  if (a == kFalse) return 0;
  if (a == kTrue) return 1ULL << scope;
  const uint64_t key = (static_cast<uint64_t>(a) << 20) |
                       static_cast<uint64_t>(vnode);
  const auto it = memo->find(key);
  if (it != memo->end()) return it->second;
  const Node& n = nodes_[a];
  CTSDD_CHECK(vtree_.IsAncestorOrSelf(vnode, n.vnode))
      << "node out of scope for model counting";
  uint64_t result;
  if (n.kind == Kind::kLiteral) {
    result = 1ULL << (scope - 1);
  } else {
    const int w = n.vnode;
    uint64_t base = 0;
    for (const auto& [p, s] : elements(a)) {
      base += CountModelsAt(p, vtree_.left(w), memo) *
              CountModelsAt(s, vtree_.right(w), memo);
    }
    const int w_scope = static_cast<int>(vtree_.VarsBelow(w).size());
    result = base << (scope - w_scope);
  }
  memo->emplace(key, result);
  return result;
}

uint64_t SddManager::CountModels(NodeId a) const {
  std::unordered_map<uint64_t, uint64_t> memo;
  return CountModelsAt(a, vtree_.root(), &memo);
}

double SddManager::WmcAt(NodeId a, int vnode,
                         const std::vector<double>& prob_of_var,
                         std::unordered_map<uint64_t, double>* memo) const {
  if (a == kFalse) return 0.0;
  if (a == kTrue) return 1.0;
  const uint64_t key = (static_cast<uint64_t>(a) << 20) |
                       static_cast<uint64_t>(vnode);
  const auto it = memo->find(key);
  if (it != memo->end()) return it->second;
  const Node& n = nodes_[a];
  double result;
  if (n.kind == Kind::kLiteral) {
    const double p = prob_of_var[n.var];
    result = n.sense ? p : 1.0 - p;
  } else {
    const int w = n.vnode;
    result = 0.0;
    for (const auto& [p, s] : elements(a)) {
      result += WmcAt(p, vtree_.left(w), prob_of_var, memo) *
                WmcAt(s, vtree_.right(w), prob_of_var, memo);
    }
  }
  memo->emplace(key, result);
  return result;
}

double SddManager::WeightedModelCount(
    NodeId a, const std::map<int, double>& prob) const {
  int max_var = 0;
  for (int v : vtree_.Vars()) max_var = std::max(max_var, v);
  std::vector<double> prob_of_var(max_var + 1, 0.5);
  for (const auto& [v, p] : prob) {
    if (v <= max_var) prob_of_var[v] = p;
  }
  std::unordered_map<uint64_t, double> memo;
  return WmcAt(a, vtree_.root(), prob_of_var, &memo);
}

BoolFunc SddManager::ToBoolFunc(NodeId a) const {
  const std::vector<int>& all = vtree_.Vars();
  CTSDD_CHECK_LE(static_cast<int>(all.size()), BoolFunc::kMaxVars);
  std::unordered_map<NodeId, BoolFunc> memo;
  std::function<BoolFunc(NodeId)> rec = [&](NodeId u) -> BoolFunc {
    if (u == kFalse) return BoolFunc::Constant(false);
    if (u == kTrue) return BoolFunc::Constant(true);
    const auto it = memo.find(u);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[u];
    BoolFunc result;
    if (n.kind == Kind::kLiteral) {
      result = BoolFunc::Literal(n.var, n.sense);
    } else {
      result = BoolFunc::Constant(false);
      for (const auto& [p, s] : elements(u)) {
        result = result | (rec(p) & rec(s));
      }
    }
    memo.emplace(u, result);
    return result;
  };
  return rec(a).ExpandTo(all);
}

int SddManager::Size(NodeId a) const {
  int total = 0;
  for (int count : VtreeProfile(a)) total += count;
  return total;
}

int SddManager::NumDecisions(NodeId a) const {
  int count = 0;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack = {a};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (IsConst(u) || seen[u]) continue;
    seen[u] = true;
    if (nodes_[u].kind == Kind::kDecision) {
      ++count;
      for (const auto& [p, s] : elements(u)) {
        stack.push_back(p);
        stack.push_back(s);
      }
    }
  }
  return count;
}

std::vector<int> SddManager::VtreeProfile(NodeId a) const {
  std::vector<int> profile(vtree_.num_nodes(), 0);
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack = {a};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (IsConst(u) || seen[u]) continue;
    seen[u] = true;
    const Node& n = nodes_[u];
    if (n.kind == Kind::kDecision) {
      profile[n.vnode] += static_cast<int>(n.num_elems);
      for (const auto& [p, s] : elements(u)) {
        stack.push_back(p);
        stack.push_back(s);
      }
    }
  }
  return profile;
}

int SddManager::Width(NodeId a) const {
  int width = 0;
  for (int count : VtreeProfile(a)) width = std::max(width, count);
  return width;
}

Status SddManager::Validate(NodeId a) {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack = {a};
  std::unordered_map<uint64_t, uint64_t> memo;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (IsConst(u) || seen[u]) continue;
    seen[u] = true;
    // Copy the node header: the disjointness checks below may grow nodes_.
    // The element pointer stays valid (arena chunks never move).
    const Node n = nodes_[u];
    if (n.kind == Kind::kLiteral) continue;
    if (vtree_.is_leaf(n.vnode)) {
      return Status::Internal("decision normalized at a vtree leaf");
    }
    if (n.num_elems < 2) {
      return Status::Internal("untrimmed single-element decision");
    }
    const int left = vtree_.left(n.vnode);
    const int right = vtree_.right(n.vnode);
    const ElementSpan elems{n.elems, n.num_elems};
    uint64_t prime_models = 0;
    std::vector<NodeId> subs;
    for (const auto& [p, s] : elems) {
      if (p == kFalse || p == kTrue) {
        return Status::Internal("constant prime in multi-element decision");
      }
      if (!vtree_.IsAncestorOrSelf(left, nodes_[p].vnode)) {
        return Status::Internal("prime outside left vtree subtree");
      }
      if (!IsConst(s) && !vtree_.IsAncestorOrSelf(right, nodes_[s].vnode)) {
        return Status::Internal("sub outside right vtree subtree");
      }
      prime_models += CountModelsAt(p, left, &memo);
      subs.push_back(s);
      stack.push_back(p);
      stack.push_back(s);
    }
    // Pairwise disjointness of primes.
    for (size_t i = 0; i < elems.size(); ++i) {
      for (size_t j = i + 1; j < elems.size(); ++j) {
        if (And(elems[i].first, elems[j].first) != kFalse) {
          return Status::Internal("primes not pairwise disjoint");
        }
      }
    }
    // Exhaustiveness: disjoint primes partition iff counts sum to the cube.
    const int left_scope = static_cast<int>(vtree_.VarsBelow(left).size());
    if (prime_models != (1ULL << left_scope)) {
      return Status::Internal("primes do not partition their scope");
    }
    std::sort(subs.begin(), subs.end());
    if (std::adjacent_find(subs.begin(), subs.end()) != subs.end()) {
      return Status::Internal("duplicate subs (compression violated)");
    }
  }
  return Status::Ok();
}

}  // namespace ctsdd
