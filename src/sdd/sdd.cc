#include "sdd/sdd.h"

#include <algorithm>
#include <functional>

#include "util/logging.h"

namespace ctsdd {

SddManager::SddManager(Vtree vtree) : vtree_(std::move(vtree)) {
  CTSDD_CHECK_GE(vtree_.root(), 0) << "vtree must be rooted";
  // Terminal constants.
  nodes_.push_back({Kind::kConst, false, -1, -1, {}});
  nodes_.push_back({Kind::kConst, true, -1, -1, {}});
}

SddManager::NodeId SddManager::Literal(int var, bool positive) {
  const uint64_t key = (static_cast<uint64_t>(var) << 1) | positive;
  const auto it = literal_ids_.find(key);
  if (it != literal_ids_.end()) return it->second;
  const int leaf = vtree_.LeafOf(var);
  CTSDD_CHECK_GE(leaf, 0) << "variable x" << var << " not in vtree";
  nodes_.push_back({Kind::kLiteral, positive, var, leaf, {}});
  const NodeId id = static_cast<NodeId>(nodes_.size()) - 1;
  literal_ids_.emplace(key, id);
  return id;
}

SddManager::NodeId SddManager::MakeDecision(int vnode, Elements elements) {
  // Drop false primes.
  elements.erase(std::remove_if(elements.begin(), elements.end(),
                                [](const auto& e) { return e.first == kFalse; }),
                 elements.end());
  CTSDD_CHECK(!elements.empty())
      << "decision with no satisfiable prime (primes must be exhaustive)";
  // Compress: merge elements with equal subs by disjoining their primes.
  std::map<NodeId, NodeId> prime_of_sub;  // sub -> accumulated prime
  for (const auto& [p, s] : elements) {
    const auto it = prime_of_sub.find(s);
    if (it == prime_of_sub.end()) {
      prime_of_sub.emplace(s, p);
    } else {
      it->second = Apply(it->second, p, Op::kOr);
    }
  }
  elements.clear();
  for (const auto& [s, p] : prime_of_sub) elements.emplace_back(p, s);
  // Trim rule 1: {(true, s)} -> s.
  if (elements.size() == 1) {
    CTSDD_CHECK_EQ(elements[0].first, kTrue)
        << "single-element decision must have a valid (exhaustive) prime";
    return elements[0].second;
  }
  // Trim rule 2: {(p, true), (q, false)} -> p (since q = !p by partition).
  if (elements.size() == 2) {
    NodeId true_prime = -1;
    NodeId false_prime = -1;
    for (const auto& [p, s] : elements) {
      if (s == kTrue) true_prime = p;
      if (s == kFalse) false_prime = p;
    }
    if (true_prime >= 0 && false_prime >= 0) return true_prime;
  }
  std::sort(elements.begin(), elements.end());
  const ElementsKey key{vnode, elements};
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  nodes_.push_back({Kind::kDecision, false, -1, vnode, elements});
  const NodeId id = static_cast<NodeId>(nodes_.size()) - 1;
  unique_.emplace(key, id);
  return id;
}

SddManager::Elements SddManager::LiftTo(int vnode, NodeId a) {
  const Node& n = nodes_[a];
  if (n.kind == Kind::kDecision && n.vnode == vnode) return n.elements;
  const int where = n.vnode;
  CTSDD_CHECK_GE(where, 0);
  if (vtree_.IsAncestorOrSelf(vtree_.left(vnode), where)) {
    // `a` lives in the left subtree: (a AND true) OR (!a AND false).
    return Elements{{a, kTrue}, {Not(a), kFalse}};
  }
  CTSDD_CHECK(vtree_.IsAncestorOrSelf(vtree_.right(vnode), where))
      << "operand does not respect the vtree";
  return Elements{{kTrue, a}};
}

SddManager::NodeId SddManager::Apply(NodeId a, NodeId b, Op op) {
  // Terminal cases.
  if (op == Op::kAnd) {
    if (a == kFalse || b == kFalse) return kFalse;
    if (a == kTrue) return b;
    if (b == kTrue) return a;
  } else {
    if (a == kTrue || b == kTrue) return kTrue;
    if (a == kFalse) return b;
    if (b == kFalse) return a;
  }
  if (a == b) return a;
  if (a > b) std::swap(a, b);
  const ApplyKey key{a, b, op};
  const auto it = apply_cache_.find(key);
  if (it != apply_cache_.end()) return it->second;

  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  NodeId result;
  if (na.kind == Kind::kLiteral && nb.kind == Kind::kLiteral &&
      na.var == nb.var) {
    // Same variable, different signs (equal handled above).
    result = (op == Op::kAnd) ? kFalse : kTrue;
  } else {
    const int lca = vtree_.Lca(na.vnode, nb.vnode);
    CTSDD_CHECK(!vtree_.is_leaf(lca));
    const Elements ea = LiftTo(lca, a);
    const Elements eb = LiftTo(lca, b);
    Elements out;
    out.reserve(ea.size() * eb.size());
    for (const auto& [p1, s1] : ea) {
      for (const auto& [p2, s2] : eb) {
        const NodeId p = Apply(p1, p2, Op::kAnd);
        if (p == kFalse) continue;
        out.emplace_back(p, Apply(s1, s2, op));
      }
    }
    result = MakeDecision(lca, std::move(out));
  }
  apply_cache_.emplace(key, result);
  return result;
}

SddManager::NodeId SddManager::And(NodeId a, NodeId b) {
  return Apply(a, b, Op::kAnd);
}

SddManager::NodeId SddManager::Or(NodeId a, NodeId b) {
  return Apply(a, b, Op::kOr);
}

SddManager::NodeId SddManager::Not(NodeId a) {
  if (a == kFalse) return kTrue;
  if (a == kTrue) return kFalse;
  const auto it = neg_cache_.find(a);
  if (it != neg_cache_.end()) return it->second;
  // Copy: recursive calls below may grow nodes_ and invalidate references.
  const Node n = nodes_[a];
  NodeId result;
  if (n.kind == Kind::kLiteral) {
    result = Literal(n.var, !n.sense);
  } else {
    Elements out = n.elements;
    for (auto& [p, s] : out) s = Not(s);
    result = MakeDecision(n.vnode, std::move(out));
  }
  neg_cache_.emplace(a, result);
  neg_cache_.emplace(result, a);
  return result;
}

SddManager::NodeId SddManager::Restrict(NodeId a, int var, bool value) {
  const int leaf = vtree_.LeafOf(var);
  CTSDD_CHECK_GE(leaf, 0);
  std::unordered_map<NodeId, NodeId> memo;
  std::function<NodeId(NodeId)> rec = [&](NodeId u) -> NodeId {
    if (IsConst(u)) return u;
    // Copy: recursive calls below may grow nodes_ and invalidate references.
    const Node n = nodes_[u];
    // If var is outside u's scope, u is unchanged.
    if (!vtree_.IsAncestorOrSelf(n.vnode, leaf)) return u;
    const auto it = memo.find(u);
    if (it != memo.end()) return it->second;
    NodeId result;
    if (n.kind == Kind::kLiteral) {
      result = (n.sense == value) ? kTrue : kFalse;
    } else {
      Elements out = n.elements;
      if (vtree_.IsAncestorOrSelf(vtree_.left(n.vnode), leaf)) {
        for (auto& [p, s] : out) p = rec(p);
      } else {
        for (auto& [p, s] : out) s = rec(s);
      }
      result = MakeDecision(n.vnode, std::move(out));
    }
    memo.emplace(u, result);
    return result;
  };
  return rec(a);
}

SddManager::NodeId SddManager::Exists(NodeId a, int var) {
  return Or(Restrict(a, var, false), Restrict(a, var, true));
}

SddManager::NodeId SddManager::Forall(NodeId a, int var) {
  return And(Restrict(a, var, false), Restrict(a, var, true));
}

SddManager::NodeId SddManager::ExistsAll(NodeId a,
                                         const std::vector<int>& vars) {
  for (int var : vars) a = Exists(a, var);
  return a;
}

bool SddManager::AnyModel(NodeId a, std::map<int, bool>* out) const {
  out->clear();
  if (a == kFalse) return false;
  // Walk down: at each decision pick a satisfiable (prime, sub) pair with
  // sub != false; fill unconstrained variables with false.
  std::function<bool(NodeId)> descend = [&](NodeId u) -> bool {
    if (u == kFalse) return false;
    if (u == kTrue) return true;
    const Node& n = nodes_[u];
    if (n.kind == Kind::kLiteral) {
      out->emplace(n.var, n.sense);
      return true;
    }
    for (const auto& [p, s] : n.elements) {
      if (s == kFalse) continue;
      // Primes are satisfiable by construction.
      if (!descend(p)) continue;
      return descend(s);
    }
    return false;
  };
  if (!descend(a)) return false;
  for (int v : vtree_.Vars()) out->try_emplace(v, false);
  return true;
}

bool SddManager::Evaluate(NodeId a,
                          const std::map<int, bool>& assignment) const {
  std::function<bool(NodeId)> rec = [&](NodeId u) -> bool {
    if (u == kFalse) return false;
    if (u == kTrue) return true;
    const Node& n = nodes_[u];
    if (n.kind == Kind::kLiteral) {
      const auto it = assignment.find(n.var);
      CTSDD_CHECK(it != assignment.end())
          << "assignment missing variable x" << n.var;
      return it->second == n.sense;
    }
    for (const auto& [p, s] : n.elements) {
      if (rec(p)) return rec(s);
    }
    CTSDD_CHECK(false) << "primes must be exhaustive";
    return false;
  };
  return rec(a);
}

uint64_t SddManager::CountModelsAt(
    NodeId a, int vnode, std::unordered_map<uint64_t, uint64_t>* memo) const {
  const int scope = static_cast<int>(vtree_.VarsBelow(vnode).size());
  CTSDD_CHECK_LE(scope, 62);
  if (a == kFalse) return 0;
  if (a == kTrue) return 1ULL << scope;
  const uint64_t key = (static_cast<uint64_t>(a) << 20) |
                       static_cast<uint64_t>(vnode);
  const auto it = memo->find(key);
  if (it != memo->end()) return it->second;
  const Node& n = nodes_[a];
  CTSDD_CHECK(vtree_.IsAncestorOrSelf(vnode, n.vnode))
      << "node out of scope for model counting";
  uint64_t result;
  if (n.kind == Kind::kLiteral) {
    result = 1ULL << (scope - 1);
  } else {
    const int w = n.vnode;
    uint64_t base = 0;
    for (const auto& [p, s] : n.elements) {
      base += CountModelsAt(p, vtree_.left(w), memo) *
              CountModelsAt(s, vtree_.right(w), memo);
    }
    const int w_scope = static_cast<int>(vtree_.VarsBelow(w).size());
    result = base << (scope - w_scope);
  }
  memo->emplace(key, result);
  return result;
}

uint64_t SddManager::CountModels(NodeId a) const {
  std::unordered_map<uint64_t, uint64_t> memo;
  return CountModelsAt(a, vtree_.root(), &memo);
}

double SddManager::WmcAt(NodeId a, int vnode,
                         const std::vector<double>& prob_of_var,
                         std::unordered_map<uint64_t, double>* memo) const {
  if (a == kFalse) return 0.0;
  if (a == kTrue) return 1.0;
  const uint64_t key = (static_cast<uint64_t>(a) << 20) |
                       static_cast<uint64_t>(vnode);
  const auto it = memo->find(key);
  if (it != memo->end()) return it->second;
  const Node& n = nodes_[a];
  double result;
  if (n.kind == Kind::kLiteral) {
    const double p = prob_of_var[n.var];
    result = n.sense ? p : 1.0 - p;
  } else {
    const int w = n.vnode;
    result = 0.0;
    for (const auto& [p, s] : n.elements) {
      result += WmcAt(p, vtree_.left(w), prob_of_var, memo) *
                WmcAt(s, vtree_.right(w), prob_of_var, memo);
    }
  }
  memo->emplace(key, result);
  return result;
}

double SddManager::WeightedModelCount(
    NodeId a, const std::map<int, double>& prob) const {
  int max_var = 0;
  for (int v : vtree_.Vars()) max_var = std::max(max_var, v);
  std::vector<double> prob_of_var(max_var + 1, 0.5);
  for (const auto& [v, p] : prob) {
    if (v <= max_var) prob_of_var[v] = p;
  }
  std::unordered_map<uint64_t, double> memo;
  return WmcAt(a, vtree_.root(), prob_of_var, &memo);
}

BoolFunc SddManager::ToBoolFunc(NodeId a) const {
  const std::vector<int>& all = vtree_.Vars();
  CTSDD_CHECK_LE(static_cast<int>(all.size()), BoolFunc::kMaxVars);
  std::unordered_map<NodeId, BoolFunc> memo;
  std::function<BoolFunc(NodeId)> rec = [&](NodeId u) -> BoolFunc {
    if (u == kFalse) return BoolFunc::Constant(false);
    if (u == kTrue) return BoolFunc::Constant(true);
    const auto it = memo.find(u);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[u];
    BoolFunc result;
    if (n.kind == Kind::kLiteral) {
      result = BoolFunc::Literal(n.var, n.sense);
    } else {
      result = BoolFunc::Constant(false);
      for (const auto& [p, s] : n.elements) {
        result = result | (rec(p) & rec(s));
      }
    }
    memo.emplace(u, result);
    return result;
  };
  return rec(a).ExpandTo(all);
}

int SddManager::Size(NodeId a) const {
  int total = 0;
  for (int count : VtreeProfile(a)) total += count;
  return total;
}

int SddManager::NumDecisions(NodeId a) const {
  int count = 0;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack = {a};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (IsConst(u) || seen[u]) continue;
    seen[u] = true;
    if (nodes_[u].kind == Kind::kDecision) {
      ++count;
      for (const auto& [p, s] : nodes_[u].elements) {
        stack.push_back(p);
        stack.push_back(s);
      }
    }
  }
  return count;
}

std::vector<int> SddManager::VtreeProfile(NodeId a) const {
  std::vector<int> profile(vtree_.num_nodes(), 0);
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack = {a};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (IsConst(u) || seen[u]) continue;
    seen[u] = true;
    const Node& n = nodes_[u];
    if (n.kind == Kind::kDecision) {
      profile[n.vnode] += static_cast<int>(n.elements.size());
      for (const auto& [p, s] : n.elements) {
        stack.push_back(p);
        stack.push_back(s);
      }
    }
  }
  return profile;
}

int SddManager::Width(NodeId a) const {
  int width = 0;
  for (int count : VtreeProfile(a)) width = std::max(width, count);
  return width;
}

Status SddManager::Validate(NodeId a) {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack = {a};
  std::unordered_map<uint64_t, uint64_t> memo;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (IsConst(u) || seen[u]) continue;
    seen[u] = true;
    // Copy: the disjointness checks below may grow nodes_.
    const Node n = nodes_[u];
    if (n.kind == Kind::kLiteral) continue;
    if (vtree_.is_leaf(n.vnode)) {
      return Status::Internal("decision normalized at a vtree leaf");
    }
    if (n.elements.size() < 2) {
      return Status::Internal("untrimmed single-element decision");
    }
    const int left = vtree_.left(n.vnode);
    const int right = vtree_.right(n.vnode);
    uint64_t prime_models = 0;
    std::vector<NodeId> subs;
    for (const auto& [p, s] : n.elements) {
      if (p == kFalse || p == kTrue) {
        return Status::Internal("constant prime in multi-element decision");
      }
      if (!vtree_.IsAncestorOrSelf(left, nodes_[p].vnode)) {
        return Status::Internal("prime outside left vtree subtree");
      }
      if (!IsConst(s) && !vtree_.IsAncestorOrSelf(right, nodes_[s].vnode)) {
        return Status::Internal("sub outside right vtree subtree");
      }
      prime_models += CountModelsAt(p, left, &memo);
      subs.push_back(s);
      stack.push_back(p);
      stack.push_back(s);
    }
    // Pairwise disjointness of primes.
    for (size_t i = 0; i < n.elements.size(); ++i) {
      for (size_t j = i + 1; j < n.elements.size(); ++j) {
        if (And(n.elements[i].first, n.elements[j].first) != kFalse) {
          return Status::Internal("primes not pairwise disjoint");
        }
      }
    }
    // Exhaustiveness: disjoint primes partition iff counts sum to the cube.
    const int left_scope = static_cast<int>(vtree_.VarsBelow(left).size());
    if (prime_models != (1ULL << left_scope)) {
      return Status::Internal("primes do not partition their scope");
    }
    std::sort(subs.begin(), subs.end());
    if (std::adjacent_find(subs.begin(), subs.end()) != subs.end()) {
      return Status::Internal("duplicate subs (compression violated)");
    }
  }
  return Status::Ok();
}

}  // namespace ctsdd
