// Compiling circuits and semantic functions into canonical SDDs.
//
// Because the manager maintains compressed + trimmed (canonical) form, the
// result is *the* canonical SDD of the function for the manager's vtree,
// regardless of the construction route (Darwiche 2011; the paper's S_{F,T}
// in Section 3.2.2 is the same object, and compile/sdd_canonical.cc builds
// it directly from factors — the constructions are cross-checked in the
// tests).
//
// Two routes exist for explicit functions:
//
//  - kVtreeSemantic (default): recurses on the vtree. At each internal
//    node v it partitions the current subfunction into its distinct
//    left-scope cofactors with one word-parallel BoolFunc::CofactorsOver
//    sweep, and emits the already-compressed {(prime_i, sub_i)} partition
//    directly — the primes are the cofactor equivalence classes, so no
//    Shannon expansion and no Or(And, And) applies ever run. Memoized per
//    subfunction (the minimal vtree node is determined by the
//    subfunction's support, so the function alone is the key).
//  - kShannonApply: the historical variable-at-a-time Shannon expansion
//    through binary applies. Quadratically more apply work; retained as a
//    cross-check oracle for the randomized equivalence tests.
//
// Circuit compilation picks the semantic route automatically when the
// circuit's variable count makes an explicit truth table cheap (the
// word-parallel circuit sweep plus the partition recursion beat thousands
// of small applies by orders of magnitude); wider circuits use the
// bottom-up apply route with the manager's n-ary folds.

#ifndef CTSDD_SDD_SDD_COMPILE_H_
#define CTSDD_SDD_SDD_COMPILE_H_

#include "circuit/circuit.h"
#include "func/bool_func.h"
#include "sdd/sdd.h"

namespace ctsdd {

// Strategy for CompileFuncToSdd. kVtreeSemantic is the production path;
// kShannonApply is the retained oracle.
enum class SddFuncCompile { kVtreeSemantic, kShannonApply };

// Largest circuit variable count routed through the semantic compiler by
// CompileCircuitToSdd (2^18-entry tables; must be <= BoolFunc::kMaxVars).
inline constexpr int kSemanticCircuitMaxVars = 18;

// Bottom-up apply-based compilation of a circuit, with the semantic
// fast path for small variable counts. The manager's vtree must contain
// every circuit variable.
SddManager::NodeId CompileCircuitToSdd(SddManager* manager,
                                       const Circuit& circuit);

// Compilation of an explicit function (see strategy notes above).
SddManager::NodeId CompileFuncToSdd(
    SddManager* manager, const BoolFunc& f,
    SddFuncCompile strategy = SddFuncCompile::kVtreeSemantic);

struct SddStats {
  int size = 0;       // total elements (AND gates)
  int width = 0;      // Definition 5 width
  int decisions = 0;  // decision (OR) nodes
};

SddStats ComputeSddStats(const SddManager& manager, SddManager::NodeId root);

}  // namespace ctsdd

#endif  // CTSDD_SDD_SDD_COMPILE_H_
