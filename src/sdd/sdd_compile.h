// Compiling circuits and semantic functions into canonical SDDs via apply.
//
// Because the manager maintains compressed + trimmed (canonical) form, the
// result is *the* canonical SDD of the function for the manager's vtree,
// regardless of the construction route (Darwiche 2011; the paper's S_{F,T}
// in Section 3.2.2 is the same object, and compile/sdd_canonical.cc builds
// it directly from factors — the two constructions are cross-checked in
// the tests).

#ifndef CTSDD_SDD_SDD_COMPILE_H_
#define CTSDD_SDD_SDD_COMPILE_H_

#include "circuit/circuit.h"
#include "func/bool_func.h"
#include "sdd/sdd.h"

namespace ctsdd {

// Bottom-up apply-based compilation of a circuit. The manager's vtree must
// contain every circuit variable.
SddManager::NodeId CompileCircuitToSdd(SddManager* manager,
                                       const Circuit& circuit);

// Compilation of an explicit function by Shannon expansion + apply.
SddManager::NodeId CompileFuncToSdd(SddManager* manager, const BoolFunc& f);

struct SddStats {
  int size = 0;       // total elements (AND gates)
  int width = 0;      // Definition 5 width
  int decisions = 0;  // decision (OR) nodes
};

SddStats ComputeSddStats(const SddManager& manager, SddManager::NodeId root);

}  // namespace ctsdd

#endif  // CTSDD_SDD_SDD_COMPILE_H_
