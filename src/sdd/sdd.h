// Sentential decision diagrams (Darwiche 2011; Section 2.1 of the paper).
//
// An SDD respecting a vtree T is either a constant, a literal, or a
// decision node normalized at an internal vtree node v: a set of elements
// {(p_i, s_i)} where the primes p_i are SDDs over X_{left(v)} forming an
// exhaustive, pairwise-disjoint case distinction ((1)-(2) in the paper)
// and the subs s_i are SDDs over X_{right(v)}. Canonical SDDs additionally
// keep subs distinct ((3)); with compression and trimming the manager
// below maintains canonical form, so semantically equal SDDs are pointer
// equal.
//
// Width (Definition 5) is reported as the maximum, over vtree nodes v, of
// the number of elements of reachable decision nodes normalized at v —
// each element is one AND gate structured by v in the circuit reading of
// the SDD.
//
// Storage: nodes live in a chunked stable-address store
// (util/node_store.h); decision-node elements live in per-context pool
// arenas with stable addresses (util/arena.h); a node is (vnode, pointer,
// count), so the unique-table probe hashes the raw element words in place
// instead of copying an owning vector per key, and Apply can walk an
// operand's elements while recursive calls allocate. Apply results are
// memoized in a bounded computed cache (util/computed_cache.h): eviction
// costs recomputation, never correctness — canonicity lives in the unique
// table alone. Negations are exact permanent links (one atomic int per
// node), and the apply hot path consults them to resolve f op !f without
// a cache probe.
//
// Parallel apply/compile (exec/): AttachExecutor lends the manager a
// work-stealing pool; apply entry points then fork independent element
// products across workers inside a *parallel region*, and the
// vtree-guided semantic compiler (sdd/sdd_compile.cc) forks its
// left-scope cofactor partitions the same way. Within a region the
// unique table runs its CAS insert-or-find protocol, the apply/semantic
// caches and the apply memo are lock-striped, node ids and element spans
// are allocated from per-worker stripes, and the owning-thread assertion
// is suspended (util/thread_check.h ParallelRegion). Results are
// pointer-identical to sequential compilation — canonicity hash-conses
// every decision to one id regardless of which worker builds it first —
// so GC, negation links, and the semantic cache work unchanged.

#ifndef CTSDD_SDD_SDD_H_
#define CTSDD_SDD_SDD_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/task_pool.h"
#include "func/bool_func.h"
#include "util/arena.h"
#include "util/budget.h"
#include "util/computed_cache.h"
#include "util/mem_governor.h"
#include "util/node_store.h"
#include "util/scoped_memo.h"
#include "util/spinlock.h"
#include "util/status.h"
#include "util/thread_check.h"
#include "util/unique_table.h"
#include "vtree/vtree.h"

namespace ctsdd {

// Computed-cache bounds (maximum slot counts; rounded up to powers of
// two — the caches start small and grow under eviction pressure up to the
// bound). Shrinking these forces eviction and recomputation but cannot
// change any result; the apply-core tests pin that down. Namespace-scope
// (not nested) so it can serve as a defaulted constructor argument.
struct SddOptions {
  size_t apply_cache_slots = 1 << 22;
  size_t sem_cache_slots = 1 << 21;  // (anchor, word) -> node cache
  // The semantic cache starts at this size instead of growing from the
  // default 256 slots: a miss there cascades into a whole recompilation
  // of the missed function, so warm-up thrash is disproportionately
  // expensive.
  size_t sem_cache_init_slots = 1 << 14;
};

class SddManager {
 public:
  using NodeId = int;
  static constexpr NodeId kFalse = 0;
  static constexpr NodeId kTrue = 1;
  // Cooperative-abort sentinel (see AttachBudget): returned in place of a
  // node id when an attached WorkBudget trips. Never stored in the unique
  // table, caches, memos, or negation links.
  static constexpr NodeId kAborted = -2;

  // One (prime, sub) pair of a decision node.
  using Element = std::pair<NodeId, NodeId>;
  // Elements of a decision node, sorted by (prime, sub) id.
  using Elements = std::vector<Element>;
  // Read-only view into an element arena; stays valid for the manager's
  // lifetime (arenas never move allocated chunks).
  using ElementSpan = std::span<const Element>;

  using Options = SddOptions;

  explicit SddManager(Vtree vtree, Options options = {});

  const Vtree& vtree() const { return vtree_; }

  NodeId False() const { return kFalse; }
  NodeId True() const { return kTrue; }
  NodeId Literal(int var, bool positive);

  // Canonicalizes (compress + trim + hash-cons) `elements` into a decision
  // at internal vtree node `vnode`. The caller must supply a valid
  // partition: primes non-false, pairwise disjoint and jointly exhaustive
  // over the left scope of `vnode`, subs within the right scope — exactly
  // the contract Validate() checks. This is the entry point for compilers
  // that construct partitions directly (the vtree-guided semantic compiler
  // in sdd/sdd_compile.cc) instead of going through Apply. Safe to call
  // from worker tasks inside an open parallel region.
  NodeId Decision(int vnode, Elements elements);

  NodeId And(NodeId a, NodeId b);
  NodeId Or(NodeId a, NodeId b);
  NodeId Not(NodeId a);

  // Multi-way conjunction/disjunction with neutral operands dropped and
  // absorbing terminals short-circuited. AndN accumulates sequentially
  // (each conjunct constrains the intermediate, the CNF regime); OrN folds
  // pairwise in a balanced tree (disjuncts don't constrain each other, so
  // a sequential accumulator would re-walk a growing DNF per operand).
  NodeId AndN(std::vector<NodeId> ops);
  NodeId OrN(std::vector<NodeId> ops);

  // Conditions on var := value.
  NodeId Restrict(NodeId a, int var, bool value);

  // Existential / universal quantification of one variable:
  // Exists = f|x=0 OR f|x=1, Forall = f|x=0 AND f|x=1. Note that
  // disjoining the two restrictions does not preserve determinism in
  // general — this is exactly the paper's observation (Section 1) about
  // why the Tseitin route of Petke–Razgon cannot stay deterministic; the
  // manager re-canonicalizes, which may cost size.
  NodeId Exists(NodeId a, int var);
  NodeId Forall(NodeId a, int var);

  // Existentially quantifies a set of variables (in the given order).
  NodeId ExistsAll(NodeId a, const std::vector<int>& vars);

  // Some model of `a` as a (var -> value) map over the full vtree
  // variable set; nullopt-like: returns false and leaves `out` empty when
  // unsatisfiable.
  bool AnyModel(NodeId a, std::map<int, bool>* out) const;

  bool Evaluate(NodeId a, const std::map<int, bool>& assignment) const;

  // Models over the full vtree variable set.
  uint64_t CountModels(NodeId a) const;

  // Probability under independent variable probabilities (by global id;
  // variables absent from the map default to probability 0.5).
  double WeightedModelCount(NodeId a,
                            const std::map<int, double>& prob) const;

  // The function computed by `a`, over the full vtree variable set
  // (requires <= BoolFunc::kMaxVars variables; for tests).
  BoolFunc ToBoolFunc(NodeId a) const;

  // --- Structural statistics ---

  // Total elements over reachable decision nodes (the standard SDD size).
  int Size(NodeId a) const;
  // Number of reachable decision nodes.
  int NumDecisions(NodeId a) const;
  // Definition 5 width: max over vtree nodes of elements structured there.
  int Width(NodeId a) const;
  // Elements per vtree node (indexed by vtree node id).
  std::vector<int> VtreeProfile(NodeId a) const;

  // Checks the SDD invariants of `a`: primes partition their scope
  // (pairwise-disjoint via Apply, exhaustive via model counts), subs are
  // distinct (canonicity), and nodes respect the vtree. Non-const because
  // the disjointness checks go through the apply cache.
  Status Validate(NodeId a);

  int NumNodes() const { return static_cast<int>(nodes_.size()); }
  // Nodes currently resident (slots minus the GC free list), constants
  // included. The quantity a long-running service bounds.
  int NumLiveNodes() const {
    return static_cast<int>(nodes_.size() - free_ids_.size());
  }

  // --- Parallel execution ------------------------------------------------
  //
  // Same contract as ObddManager: with a parallel pool attached, apply
  // entry points fork inside an exec-managed region, and compilers (the
  // vtree-semantic path) may span many operations in one explicit region.
  // Regions exclude GC/root bookkeeping; results are pointer-identical
  // to sequential execution.

  void AttachExecutor(exec::TaskPool* pool) { pool_ = pool; }
  exec::TaskPool* executor() const { return pool_; }
  bool InParallelRegion() const { return par_active_; }

  void BeginParallelRegion();
  void EndParallelRegion();

  // --- Budgets and cancellation ------------------------------------------
  //
  // Same contract as ObddManager: while a budget is attached, decision
  // allocations charge it (amortized through per-context leases) and
  // every apply/compile recursion unwinds with kAborted once it trips —
  // on node exhaustion, deadline, or external Cancel(). Aborted partial
  // results are never cached, interned, or negation-linked, so the
  // manager stays Validate()-clean, the garbage left behind is
  // unreferenced (reclaimed by GarbageCollect), and a post-abort
  // recompile is pointer-identical by canonicity. Literal interning is
  // never charged (bounded by 2·|vars|). Attach/Detach must happen
  // outside operations and parallel regions.

  void AttachBudget(WorkBudget* budget);
  void DetachBudget() { AttachBudget(nullptr); }
  WorkBudget* budget() const { return budget_; }
  bool AbortRequested() const {
    return budget_ != nullptr && budget_->tripped();
  }
  // Cancel token for exec::ParallelFor, or nullptr without a budget.
  const std::atomic<bool>* budget_token() const {
    return budget_ == nullptr ? nullptr : budget_->token();
  }

  // Manager-wide structural self-check (contrast Validate(NodeId), which
  // checks one root's partition semantics): every live node is well-
  // formed, element ids are live and in range, dead slots match the free
  // list, and the unique table maps each live decision to itself. Used
  // by tests to assert aborted operations left the manager consistent.
  Status Validate() const;

  // --- Memory lifecycle -------------------------------------------------
  //
  // Same contract as ObddManager: the manager only collects nodes that
  // are unreachable from registered external roots (constants and the
  // literal nodes are permanent). Live node ids never change across a
  // collection, the unique table is rebuilt over the survivors, negation
  // links into collected nodes are severed, and the (anchor, word)
  // semantic cache is rebuilt from the survivors — so recompiling a
  // collected function reproduces pointer-identical ids for every
  // surviving subgraph. Freed decision nodes donate their element spans
  // to a size-bucketed free list that MakeDecision reuses, so the element
  // arenas' footprint is bounded by their live + recycled high-water mark.

  // Registers `id` as an external root (ref-counted). Constants and
  // literals need no protection (they are permanent).
  void AddRootRef(NodeId id);
  // Drops one reference added by AddRootRef.
  void ReleaseRootRef(NodeId id);

  // Mark-from-roots collection; returns the number of nodes reclaimed.
  // Must not be called from inside an operation (apply depth 0) or a
  // parallel region.
  size_t GarbageCollect();

  // Returns the computed caches and per-operation memos to their initial
  // footprint (contents dropped — only recomputation cost; the semantic
  // cache repopulates as nodes are created).
  void ShrinkCaches();

  struct GcStats {
    uint64_t runs = 0;       // GarbageCollect() invocations
    uint64_t reclaimed = 0;  // nodes freed across all runs
  };
  const GcStats& gc_stats() const { return gc_stats_; }

  // --- Memory accounting --------------------------------------------------
  //
  // Same contract as ObddManager: AttachMemAccount charges every byte-
  // owning structure (both node stores, the unique table, apply/semantic
  // caches, the apply memo, and every context's element arena) to
  // `account`, transferring already-resident bytes; nullptr detaches.
  // With an enabled governor in the account chain AND an attached budget,
  // the lease-refill seams deny-before-allocate: a refill whose worst-
  // case burst no longer fits under the hard watermark trips the budget
  // typed RESOURCE_EXHAUSTED with the memory-pressure marker. Attach
  // outside operations and parallel regions.

  void AttachMemAccount(MemAccount* account);
  MemAccount* mem_account() const { return mem_account_; }
  // Recomputed accounted-resident bytes; equals mem_account()->bytes()
  // at quiescent points (debug-asserted at the end of GarbageCollect).
  // Sequential contexts only (walks the context arenas).
  size_t MemoryBytes() const {
    size_t total = nodes_.MemoryBytes() + fast_info_.MemoryBytes() +
                   unique_.MemoryBytes() + apply_cache_.MemoryBytes() +
                   sem_cache_.MemoryBytes() + apply_memo_.MemoryBytes();
    for (const Ctx& cx : ctxs_) total += cx.element_arena.MemoryBytes();
    return total;
  }

  // Releases thread-affinity (debug builds assert single-threaded use);
  // the next operation binds the manager to its calling thread.
  void DetachOwningThread() { thread_check_.Detach(); }

  // Computed-cache effectiveness counters, for benches and tuning.
  struct CacheStats {
    uint64_t lookups;
    uint64_t hits;
    size_t slots;
  };
  CacheStats apply_cache_stats() const {
    return {apply_cache_.lookups(), apply_cache_.hits(),
            apply_cache_.num_slots()};
  }
  // The exact per-operation apply memo (second memoization level).
  CacheStats apply_memo_stats() const {
    return {apply_memo_.lookups(), apply_memo_.hits(),
            apply_memo_.num_slots()};
  }
  // The small-scope (anchor, word) -> node semantic cache.
  CacheStats sem_cache_stats() const {
    return {sem_cache_.lookups(), sem_cache_.hits(), sem_cache_.num_slots()};
  }

  // Work counters for the apply/compile hot paths, for benches and
  // regression diagnosis. Monotone over the manager's lifetime; inside a
  // parallel region increments accumulate per worker and merge when the
  // region ends, so read them outside regions.
  struct PerfCounters {
    uint64_t apply_calls = 0;       // ApplyRec entries (incl. recursive)
    uint64_t element_products = 0;  // (prime, sub) pairs emitted by apply
    uint64_t absorb_collapses = 0;  // rows/cols fused by an absorbing sub
    uint64_t compression_merges = 0;  // equal-sub groups fused (OrN merge)
    uint64_t nary_applies = 0;        // n-ary element-product expansions
    uint64_t nary_fallbacks = 0;      // ApplyN product-cap binary fallbacks
    uint64_t sem_apply_hits = 0;       // applies resolved by word semantics
    uint64_t semantic_partitions = 0;  // semantic-compiler vtree partitions
    uint64_t semantic_memo_hits = 0;   // semantic-compiler subfunction hits
  };
  const PerfCounters& counters() const { return counters_; }
  // The semantic compiler (sdd/sdd_compile.cc) reports its partition and
  // memo-hit counts here so one stats surface covers both pipelines.
  // Single-owner contexts only; worker tasks report through
  // AddCounters().
  PerfCounters* mutable_counters() { return &counters_; }
  // Merges a batch of externally accumulated counters (the parallel
  // semantic compiler's per-task tallies).
  void AddCounters(const PerfCounters& delta);

  // The recorded negation of `a`, or -1 when not (yet) known. Complement
  // literal pairs and every Not() result are linked eagerly, which lets
  // Apply short-circuit f op !f without a cache probe.
  NodeId KnownNegation(NodeId a) const {
    return NegationOf(const_cast<FastInfo&>(fast_info_[a]))
        .load(std::memory_order_relaxed);
  }

  // --- Small-scope semantic layer ---
  //
  // Every vtree subtree with at most kSmallScopeVars variables has a
  // "small anchor": its topmost ancestor whose scope still fits one
  // 64-bit truth table. Each node normalized inside such a subtree
  // carries its truth table word over the anchor's scope, and a bounded
  // cache maps (anchor, word) back to the canonical node. Apply calls
  // whose operands share an anchor then resolve by pure word arithmetic:
  // disjoint primes return false from one AND, subsumption returns an
  // operand, and any result function ever materialized is found without
  // recursing — the vtree-aware semantics of the compiler, applied to the
  // apply hot path. Cache eviction only costs recomputation; results are
  // canonical either way.
  static constexpr int kSmallScopeVars = 6;

  // The small anchor of `vnode`, or -1 if its scope exceeds
  // kSmallScopeVars variables.
  int SmallAnchor(int vnode) const { return anchor_of_vnode_[vnode]; }
  // The canonical node computing truth table `word` over the scope of
  // `vnode`'s small anchor, or -1 when none is cached. `vnode` must have
  // a small anchor and `word` must be masked to the anchor's table.
  // Routes through the striped cache protocol inside a parallel region.
  NodeId LookupSemantic(int vnode, uint64_t word);

  // --- Node access (read-only) ---
  enum class Kind : uint8_t { kConst, kLiteral, kDecision };
  struct Node {
    Kind kind;
    // kConst: value in `sense`. kLiteral: var + sense. kDecision: vnode +
    // elements in the arena.
    bool sense = false;
    int var = -1;
    int vnode = -1;  // vtree node where normalized (leaf for literals)
    const Element* elems = nullptr;
    uint32_t num_elems = 0;
  };
  const Node& node(NodeId id) const { return nodes_[id]; }
  // The (prime, sub) pairs of a decision node (empty for others). The view
  // stays valid across later manager operations.
  ElementSpan elements(NodeId id) const {
    const Node& n = nodes_[id];
    return {n.elems, n.num_elems};
  }
  bool IsConst(NodeId id) const { return id <= 1; }

  // The vtree node a node is normalized at (-1 for constants).
  int VtreeOf(NodeId id) const { return nodes_[id].vnode; }

 private:
  enum class Op : uint8_t { kAnd, kOr };

  struct NaryKey {
    Op op = Op::kAnd;
    std::vector<NodeId> ops;  // sorted, unique, constant-free
    bool operator==(const NaryKey&) const = default;
  };
  struct NaryKeyHash {
    size_t operator()(const NaryKey& k) const {
      uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(k.op);
      for (const NodeId id : k.ops) {
        h ^= static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
      }
      return static_cast<size_t>(h);
    }
  };

  // Per-execution-context state: one Ctx per pool slot (plus slot 0 for
  // the single-owner path). Everything an apply recursion mutates that is
  // not a shared, protocol-guarded structure lives here, so workers never
  // contend: depth-indexed element scratch, the n-ary memo and probe
  // buffer, the element arena stripe, the node-id block cursor, and the
  // worker's counter tally (merged into counters_ at region end).
  struct Ctx {
    // Per-recursion-depth element buffers reused across ApplyRec frames,
    // so the hot path performs no per-call allocation once warmed up. A
    // deque keeps references stable while deeper frames extend it.
    std::deque<Elements> scratch;
    size_t rec_depth = 0;
    // Scratch for NormalizeNaryOps's sorted probe set (that function
    // never re-enters itself within a context, so one buffer suffices).
    std::vector<NodeId> nary_probe_scratch;
    // Exact memo for n-ary folds within the current top-level operation.
    // Context-local even in parallel regions: a duplicated n-ary fold
    // across workers costs recomputation, never correctness.
    std::unordered_map<NaryKey, NodeId, NaryKeyHash> nary_memo;
    // Element span stripe (stable addresses; see AllocateElements).
    PoolArena<Element> element_arena;
    // Node-id block cursor (parallel regions only), plus the context's
    // batch of GC-recycled ids (refilled from the shared free list under
    // free_ids_lock_ — parallel regions must reuse freed ids or the node
    // store would grow monotonically across GC cycles).
    size_t alloc_next = 0;
    size_t alloc_end = 0;
    std::vector<NodeId> recycled;
    PerfCounters counters;
    // Remaining node allocations pre-charged against the attached budget
    // (see ChargeSeq/ChargePar; reset by AttachBudget).
    uint32_t budget_lease = 0;
  };

  // Fan-in up to which AndN/OrN use the n-ary element product (ApplyN)
  // instead of folding binary applies; above it, AndN accumulates
  // sequentially and OrN folds ApplyN chunks of this arity.
  static constexpr size_t kNaryFoldArity = 8;
  // Element-product budget for one ApplyN expansion (product of operand
  // element counts); past it the operands fall back to binary folding,
  // whose intermediate canonicalization keeps the meet partition in check.
  static constexpr size_t kNaryProductCap = 4096;
  // Fork cutoff for the parallel apply path: element-product rows fork
  // while the recursion is at depth < kForkDepth (the row fan-out per
  // level is the operand's element count, so a shallow cutoff already
  // yields hundreds of tasks).
  static constexpr int kForkDepth = 4;
  static constexpr size_t kAllocBlock = 128;  // node ids per worker claim

  // The execution context for the current thread: slot 0 outside
  // parallel regions, 1 + pool slot inside.
  Ctx& CurCtx() {
    return par_active_ ? ctxs_[1 + static_cast<size_t>(pool_->CurrentSlot())]
                       : ctxs_[0];
  }

  // Budget charging, amortized via per-context leases (one shared-atomic
  // touch per lease_chunk_ allocations). ChargeSeq denies (the caller
  // returns kAborted before allocating); ChargePar charges but never
  // denies — a worker losing the refill race still allocates, bounding
  // overshoot by the number of in-flight workers.
  bool ChargeSeq(Ctx& cx) {
    if (cx.budget_lease == 0) {
      if (!RefillLease(cx)) return false;
    }
    --cx.budget_lease;
    return true;
  }
  void ChargePar(Ctx& cx) {
    if (cx.budget_lease == 0) {
      if (!RefillLease(cx)) return;
    }
    --cx.budget_lease;
  }
  // Out-of-line lease refill (slow path, once per lease_chunk_
  // allocations): the governor's deny-before-allocate admission check,
  // then the shared-atomic lease acquisition. Safe from worker threads.
  bool RefillLease(Ctx& cx);
  // See ObddManager::AdmitMemGrowth: trips the budget with the memory-
  // pressure marker when the projected burst no longer fits.
  bool AdmitMemGrowth();

  // Canonicalizes (compress + trim + hash-cons) the elements in *elements,
  // which is consumed as scratch space. All recursive Apply calls the
  // compression needs happen before the unique-table probe.
  template <bool kPar>
  NodeId MakeDecisionT(Ctx& cx, int vnode, Elements* elements, int depth);
  // The unique-table hash of a decision's sorted elements (shared by
  // MakeDecision and the GC rebuild).
  static uint64_t DecisionHash(int vnode, ElementSpan elements);
  // Arena allocation with recycling: exact-size spans freed by the GC are
  // reused before the arena grows (single-owner path; parallel contexts
  // allocate straight from their stripe).
  template <bool kPar>
  Element* AllocateElements(Ctx& cx, size_t n);
  // Places `n` in a GC-recycled slot when one is free, else appends
  // (single-owner path).
  NodeId NewNode(const Node& n);
  // Node allocation inside a parallel region: bump-allocates from the
  // context's claimed id block.
  NodeId AllocNodePar(Ctx& cx, const Node& n);
  // Re-registers every live small-scope node's (anchor, word) -> id
  // entry, restoring the semantic layer after the cache was cleared
  // (GC) or released (ShrinkCaches).
  void RebuildSemanticCache();
  // Two-level memoization: the bounded global apply cache gives cross-
  // operation reuse; an exact memo scoped to each top-level Apply call
  // preserves the O(|a|·|b|) apply bound even when the global cache
  // evicts (a lossy cache alone turns deep recursions exponential once
  // the live set outgrows it). The memo is cleared when the outermost
  // Apply returns (or the parallel region ends), so its memory is
  // bounded by one operation's (region's) footprint.
  //
  // The recursions are templated on the protocol, like the OBDD manager:
  // kPar == false is the original single-owner path; kPar == true forks
  // element-product rows below kForkDepth and uses the concurrent
  // unique-table/cache entry points.
  NodeId Apply(NodeId a, NodeId b, Op op);
  template <bool kPar>
  NodeId ApplyRecT(Ctx& cx, NodeId a, NodeId b, Op op, int depth);
  // Constant-time resolution attempt, inlined into the element-product
  // loops so the (dominant) trivially-resolvable pairs never pay a
  // recursive call: terminals, equality, recorded negations, and the
  // small-scope word semantics (disjointness, coverage, subsumption, and
  // cached result functions). Returns -1 when a full ApplyRec is needed.
  template <bool kPar>
  NodeId FastApplyT(Ctx& cx, NodeId a, NodeId b, Op op) {
    if (op == Op::kAnd) {
      if (a == kFalse || b == kFalse) return kFalse;
      if (a == kTrue) return b;
      if (b == kTrue) return a;
    } else {
      if (a == kTrue || b == kTrue) return kTrue;
      if (a == kFalse) return b;
      if (b == kFalse) return a;
    }
    if (a == b) return a;
    FastInfo& fa = fast_info_[a];
    FastInfo& fb = fast_info_[b];
    if (NegationOf(fa).load(std::memory_order_relaxed) == b) {
      return (op == Op::kAnd) ? kFalse : kTrue;
    }
    const int anchor = fa.anchor;
    if (anchor < 0 || anchor != fb.anchor) return -1;
    const uint64_t wr =
        (op == Op::kAnd) ? (fa.word & fb.word) : (fa.word | fb.word);
    NodeId hit = -1;
    if (wr == 0) {
      hit = kFalse;
    } else if (wr == anchor_mask_of_vnode_[anchor]) {
      hit = kTrue;
    } else if (wr == fa.word) {
      hit = a;
    } else if (wr == fb.word) {
      hit = b;
    } else {
      NodeId cached;
      const uint64_t hash = Hash2SemKey(anchor, wr);
      const SemKey key{anchor, wr};
      const bool found = kPar ? sem_cache_.LookupC(hash, key, &cached)
                              : sem_cache_.Lookup(hash, key, &cached);
      if (found) hit = cached;
    }
    if (hit >= 0) ++cx.counters.sem_apply_hits;
    return hit;
  }
  static uint64_t Hash2SemKey(int anchor, uint64_t word);
  // n-ary apply: lifts all operands to their common vtree LCA and runs one
  // pruned element product over every operand's element list — dead
  // (false) partial primes cut whole subtrees of the product, subs combine
  // by a recursive n-ary fold, and the result canonicalizes once instead
  // of once per binary apply. `ops` must be constant-free and duplicate-
  // free with >= 2 entries (NormalizeNaryOps's postcondition); order is
  // free — the caller's sequence is preserved, and only the internal memo
  // key is sorted. Falls back to binary folds past kNaryProductCap.
  template <bool kPar>
  NodeId ApplyNT(Ctx& cx, const std::vector<NodeId>& ops, Op op, int depth);
  template <bool kPar>
  NodeId AndNT(Ctx& cx, std::vector<NodeId> ops);
  template <bool kPar>
  NodeId OrNT(Ctx& cx, std::vector<NodeId> ops);
  // Shared operand normalization for AndN/OrN/ApplyN: drops identity
  // operands and duplicates, sorts, and detects absorbing terminals and
  // complementary pairs. Returns true if the fold is decided immediately
  // (result in *out).
  bool NormalizeNaryOps(Ctx& cx, std::vector<NodeId>* ops, Op op,
                        NodeId* out);
  template <bool kPar>
  NodeId NotRecT(Ctx& cx, NodeId a, int depth);
  // Records a <-> b as negations of each other (for apply short-circuits).
  // Concurrent last-writer-wins is benign: negations are canonical, so
  // racing writers store the same pair.
  void LinkNegations(NodeId a, NodeId b);
  // Computes and registers the semantic word of a freshly created node
  // whose vnode has a small anchor (no-op otherwise). Must be called for
  // every node before its id is published.
  template <bool kPar>
  void RegisterSemanticT(NodeId id);
  // A view of `a` as elements normalized at `vnode` (having lifted it if
  // needed); lifted literal/decision cases materialize into *store.
  template <bool kPar>
  ElementSpan LiftTo(Ctx& cx, int vnode, NodeId a,
                     std::array<Element, 2>* store, int depth);
  // Resets the memos when the outermost single-owner operation returns,
  // and folds the sequential context's counter tally into the manager's
  // (parallel contexts merge at EndParallelRegion instead).
  void LeaveOp() {
    if (--apply_depth_ == 0) {
      apply_memo_.Reset();
      ctxs_[0].nary_memo.clear();
      AddCounters(ctxs_[0].counters);
      ctxs_[0].counters = PerfCounters{};
    }
  }
  void EnsureCtxSlots(size_t n) {
    while (ctxs_.size() < n) {
      ctxs_.emplace_back();
      ctxs_.back().element_arena.SetMemAccount(mem_account_);
    }
  }

  uint64_t CountModelsAt(NodeId a, int vnode,
                         std::unordered_map<uint64_t, uint64_t>* memo) const;
  double WmcAt(NodeId a, int vnode, const std::vector<double>& prob_of_var,
               std::unordered_map<uint64_t, double>* memo) const;

  struct ApplyKey {
    NodeId a = 0, b = 0;
    Op op = Op::kAnd;
    bool operator==(const ApplyKey&) const = default;
  };
  struct SemKey {
    int32_t anchor = -1;
    uint64_t word = 0;
    bool operator==(const SemKey&) const = default;
  };
  // Per-node record for FastApply, packed so one pair of loads answers
  // the negation and small-scope checks: the recorded negation (-1 if
  // unknown), the vnode's small anchor (-1 if the scope is wide), and
  // the truth table word over the anchor scope (valid iff anchor >= 0;
  // written before the node id is published, read-only afterwards). The
  // struct stays POD — chunk allocation leaves entries untouched until
  // their id is created — and the negation field, which parallel tasks
  // link while others read, is accessed through std::atomic_ref (below).
  struct FastInfo {
    NodeId negation;
    int32_t anchor;
    uint64_t word;
  };
  // Atomic view of a FastInfo's negation link (relaxed loads/stores are
  // plain moves on x86; the view is what makes concurrent LinkNegations
  // vs FastApply reads well-defined).
  static std::atomic_ref<NodeId> NegationOf(FastInfo& info) {
    return std::atomic_ref<NodeId>(info.negation);
  }
  struct ApplyKeyHash {
    size_t operator()(const ApplyKey& k) const {
      uint64_t h = (static_cast<uint64_t>(k.a) << 33) ^
                   (static_cast<uint64_t>(k.b) << 1) ^
                   static_cast<uint64_t>(k.op);
      h *= 0x9e3779b97f4a7c15ULL;
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };

  Vtree vtree_;
  NodeStore<Node> nodes_;
  NodeStore<FastInfo> fast_info_;  // indexed in lockstep with nodes_
  UniqueTable unique_;
  std::vector<NodeId> literal_ids_;  // (var << 1 | sign) -> id or -1
  ComputedCache<ApplyKey, NodeId> apply_cache_;
  // Exact memo for the currently running top-level operation (see
  // ApplyRecT): preserves the polynomial recursion bounds that the
  // bounded lossy caches alone cannot guarantee; reset when the
  // outermost operation (or parallel region) ends so memory stays
  // bounded per operation.
  ScopedMemo<ApplyKey, NodeId> apply_memo_;
  int apply_depth_ = 0;
  // Small-scope semantic layer (see SmallAnchor): per-vtree-node anchors
  // and masks plus the (anchor, word) -> canonical node cache.
  std::vector<int> anchor_of_vnode_;
  std::vector<uint64_t> anchor_mask_of_vnode_;
  ComputedCache<SemKey, NodeId> sem_cache_;
  PerfCounters counters_;
  // Execution contexts: ctxs_[0] is the single-owner context; parallel
  // regions use ctxs_[1 + slot]. A deque keeps references stable while
  // EnsureCtxSlots appends.
  std::deque<Ctx> ctxs_;
  exec::TaskPool* pool_ = nullptr;
  bool par_active_ = false;
  // Attached budget (may be null) and the lease granularity derived from
  // its node budget at attach time.
  WorkBudget* budget_ = nullptr;
  uint32_t lease_chunk_ = 0;
  // Governor accounting (may be null); the governor pointer is resolved
  // once at attach. The burst slack covers fixed-size mandatory
  // allocations per lease: store and arena chunks, lazy memo shards,
  // and the caches' floor arrays.
  static constexpr uint64_t kMemBurstSlack = 1u << 20;
  MemAccount* mem_account_ = nullptr;
  MemGovernor* mem_governor_ = nullptr;
  // GC state: external root ref-counts (indexed by node id, lazily
  // grown), the node-id free list MakeDecision pops before growing
  // nodes_, and the size-bucketed element-span free list (spans are
  // arena-backed and can never be returned to the allocator, but exact-
  // size reuse bounds the arenas at their live + recycled high-water
  // mark).
  std::vector<int32_t> external_refs_;
  std::vector<NodeId> free_ids_;
  // Guards free_ids_ inside parallel regions only (AllocNodePar refills
  // context batches from it); single-owner access outside regions stays
  // lock-free, ordered by the region bracket.
  SpinLock free_ids_lock_;
  std::unordered_map<size_t, std::vector<Element*>> free_elements_;
  GcStats gc_stats_;
  ThreadChecker thread_check_;
};

}  // namespace ctsdd

#endif  // CTSDD_SDD_SDD_H_
