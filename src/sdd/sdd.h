// Sentential decision diagrams (Darwiche 2011; Section 2.1 of the paper).
//
// An SDD respecting a vtree T is either a constant, a literal, or a
// decision node normalized at an internal vtree node v: a set of elements
// {(p_i, s_i)} where the primes p_i are SDDs over X_{left(v)} forming an
// exhaustive, pairwise-disjoint case distinction ((1)-(2) in the paper)
// and the subs s_i are SDDs over X_{right(v)}. Canonical SDDs additionally
// keep subs distinct ((3)); with compression and trimming the manager
// below maintains canonical form, so semantically equal SDDs are pointer
// equal.
//
// Width (Definition 5) is reported as the maximum, over vtree nodes v, of
// the number of elements of reachable decision nodes normalized at v —
// each element is one AND gate structured by v in the circuit reading of
// the SDD.
//
// Storage: decision-node elements live in a chunked pool arena with stable
// addresses (util/arena.h); a node is (vnode, pointer, count), so the
// unique-table probe hashes the raw element words in place instead of
// copying an owning vector per key, and Apply can walk an operand's
// elements while recursive calls allocate. Apply and negation results are
// memoized in bounded computed caches (util/computed_cache.h): eviction
// costs recomputation, never correctness — canonicity lives in the unique
// table alone.

#ifndef CTSDD_SDD_SDD_H_
#define CTSDD_SDD_SDD_H_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "func/bool_func.h"
#include "util/arena.h"
#include "util/computed_cache.h"
#include "util/scoped_memo.h"
#include "util/status.h"
#include "util/unique_table.h"
#include "vtree/vtree.h"

namespace ctsdd {

// Computed-cache bounds (maximum slot counts; rounded up to powers of
// two — the caches start small and grow under eviction pressure up to the
// bound). Shrinking these forces eviction and recomputation but cannot
// change any result; the apply-core tests pin that down. Namespace-scope
// (not nested) so it can serve as a defaulted constructor argument.
struct SddOptions {
  size_t apply_cache_slots = 1 << 22;
  size_t neg_cache_slots = 1 << 20;
};

class SddManager {
 public:
  using NodeId = int;
  static constexpr NodeId kFalse = 0;
  static constexpr NodeId kTrue = 1;

  // One (prime, sub) pair of a decision node.
  using Element = std::pair<NodeId, NodeId>;
  // Elements of a decision node, sorted by (prime, sub) id.
  using Elements = std::vector<Element>;
  // Read-only view into the element arena; stays valid for the manager's
  // lifetime (the arena never moves allocated chunks).
  using ElementSpan = std::span<const Element>;

  using Options = SddOptions;

  explicit SddManager(Vtree vtree, Options options = {});

  const Vtree& vtree() const { return vtree_; }

  NodeId False() const { return kFalse; }
  NodeId True() const { return kTrue; }
  NodeId Literal(int var, bool positive);

  NodeId And(NodeId a, NodeId b);
  NodeId Or(NodeId a, NodeId b);
  NodeId Not(NodeId a);

  // Multi-way conjunction/disjunction with neutral operands dropped and
  // absorbing terminals short-circuited. AndN accumulates sequentially
  // (each conjunct constrains the intermediate, the CNF regime); OrN folds
  // pairwise in a balanced tree (disjuncts don't constrain each other, so
  // a sequential accumulator would re-walk a growing DNF per operand).
  NodeId AndN(std::vector<NodeId> ops);
  NodeId OrN(std::vector<NodeId> ops);

  // Conditions on var := value.
  NodeId Restrict(NodeId a, int var, bool value);

  // Existential / universal quantification of one variable:
  // Exists = f|x=0 OR f|x=1, Forall = f|x=0 AND f|x=1. Note that
  // disjoining the two restrictions does not preserve determinism in
  // general — this is exactly the paper's observation (Section 1) about
  // why the Tseitin route of Petke–Razgon cannot stay deterministic; the
  // manager re-canonicalizes, which may cost size.
  NodeId Exists(NodeId a, int var);
  NodeId Forall(NodeId a, int var);

  // Existentially quantifies a set of variables (in the given order).
  NodeId ExistsAll(NodeId a, const std::vector<int>& vars);

  // Some model of `a` as a (var -> value) map over the full vtree
  // variable set; nullopt-like: returns false and leaves `out` empty when
  // unsatisfiable.
  bool AnyModel(NodeId a, std::map<int, bool>* out) const;

  bool Evaluate(NodeId a, const std::map<int, bool>& assignment) const;

  // Models over the full vtree variable set.
  uint64_t CountModels(NodeId a) const;

  // Probability under independent variable probabilities (by global id;
  // variables absent from the map default to probability 0.5).
  double WeightedModelCount(NodeId a,
                            const std::map<int, double>& prob) const;

  // The function computed by `a`, over the full vtree variable set
  // (requires <= BoolFunc::kMaxVars variables; for tests).
  BoolFunc ToBoolFunc(NodeId a) const;

  // --- Structural statistics ---

  // Total elements over reachable decision nodes (the standard SDD size).
  int Size(NodeId a) const;
  // Number of reachable decision nodes.
  int NumDecisions(NodeId a) const;
  // Definition 5 width: max over vtree nodes of elements structured there.
  int Width(NodeId a) const;
  // Elements per vtree node (indexed by vtree node id).
  std::vector<int> VtreeProfile(NodeId a) const;

  // Checks the SDD invariants of `a`: primes partition their scope
  // (pairwise-disjoint via Apply, exhaustive via model counts), subs are
  // distinct (canonicity), and nodes respect the vtree. Non-const because
  // the disjointness checks go through the apply cache.
  Status Validate(NodeId a);

  int NumNodes() const { return static_cast<int>(nodes_.size()); }

  // Computed-cache effectiveness counters, for benches and tuning.
  struct CacheStats {
    uint64_t lookups;
    uint64_t hits;
    size_t slots;
  };
  CacheStats apply_cache_stats() const {
    return {apply_cache_.lookups(), apply_cache_.hits(),
            apply_cache_.num_slots()};
  }
  CacheStats neg_cache_stats() const {
    return {neg_cache_.lookups(), neg_cache_.hits(), neg_cache_.num_slots()};
  }

  // --- Node access (read-only) ---
  enum class Kind : uint8_t { kConst, kLiteral, kDecision };
  struct Node {
    Kind kind;
    // kConst: value in `sense`. kLiteral: var + sense. kDecision: vnode +
    // elements in the arena.
    bool sense = false;
    int var = -1;
    int vnode = -1;  // vtree node where normalized (leaf for literals)
    const Element* elems = nullptr;
    uint32_t num_elems = 0;
  };
  const Node& node(NodeId id) const { return nodes_[id]; }
  // The (prime, sub) pairs of a decision node (empty for others). The view
  // stays valid across later manager operations.
  ElementSpan elements(NodeId id) const {
    const Node& n = nodes_[id];
    return {n.elems, n.num_elems};
  }
  bool IsConst(NodeId id) const { return id <= 1; }

  // The vtree node a node is normalized at (-1 for constants).
  int VtreeOf(NodeId id) const { return nodes_[id].vnode; }

 private:
  enum class Op : uint8_t { kAnd, kOr };

  // Canonicalizes (compress + trim + hash-cons) the elements in *elements,
  // which is consumed as scratch space. All recursive Apply calls the
  // compression needs happen before the unique-table probe.
  NodeId MakeDecision(int vnode, Elements* elements);
  // Two-level memoization: the bounded global apply cache gives cross-
  // operation reuse; an exact memo scoped to each top-level Apply call
  // preserves the O(|a|·|b|) apply bound even when the global cache
  // evicts (a lossy cache alone turns deep recursions exponential once
  // the live set outgrows it). The memo is cleared when the outermost
  // Apply returns, so its memory is bounded by one operation's footprint.
  NodeId Apply(NodeId a, NodeId b, Op op);
  NodeId ApplyRec(NodeId a, NodeId b, Op op);
  NodeId NotRec(NodeId a);
  // A view of `a` as elements normalized at `vnode` (having lifted it if
  // needed); lifted literal/decision cases materialize into *store.
  ElementSpan LiftTo(int vnode, NodeId a, std::array<Element, 2>* store);

  uint64_t CountModelsAt(NodeId a, int vnode,
                         std::unordered_map<uint64_t, uint64_t>* memo) const;
  double WmcAt(NodeId a, int vnode, const std::vector<double>& prob_of_var,
               std::unordered_map<uint64_t, double>* memo) const;

  struct ApplyKey {
    NodeId a = 0, b = 0;
    Op op = Op::kAnd;
    bool operator==(const ApplyKey&) const = default;
  };
  struct ApplyKeyHash {
    size_t operator()(const ApplyKey& k) const {
      uint64_t h = (static_cast<uint64_t>(k.a) << 33) ^
                   (static_cast<uint64_t>(k.b) << 1) ^
                   static_cast<uint64_t>(k.op);
      h *= 0x9e3779b97f4a7c15ULL;
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };

  Vtree vtree_;
  std::vector<Node> nodes_;
  PoolArena<Element> element_arena_;
  UniqueTable unique_;
  std::vector<NodeId> literal_ids_;  // (var << 1 | sign) -> id or -1
  ComputedCache<ApplyKey, NodeId> apply_cache_;
  ComputedCache<NodeId, NodeId> neg_cache_;
  // Exact memos for the currently running top-level operation (see
  // ApplyRec): they preserve the polynomial recursion bounds that the
  // bounded lossy caches alone cannot guarantee, and are reset when the
  // outermost operation returns so memory stays bounded per operation.
  ScopedMemo<ApplyKey, NodeId> apply_memo_;
  int apply_depth_ = 0;
  ScopedMemo<NodeId, NodeId> neg_memo_;
  int neg_depth_ = 0;
  // Per-recursion-depth element buffers reused across ApplyRec frames, so
  // the hot path performs no per-call allocation once warmed up. A deque
  // keeps references stable while deeper frames extend it.
  std::deque<Elements> scratch_;
  size_t rec_depth_ = 0;
};

}  // namespace ctsdd

#endif  // CTSDD_SDD_SDD_H_
