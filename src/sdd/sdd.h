// Sentential decision diagrams (Darwiche 2011; Section 2.1 of the paper).
//
// An SDD respecting a vtree T is either a constant, a literal, or a
// decision node normalized at an internal vtree node v: a set of elements
// {(p_i, s_i)} where the primes p_i are SDDs over X_{left(v)} forming an
// exhaustive, pairwise-disjoint case distinction ((1)-(2) in the paper)
// and the subs s_i are SDDs over X_{right(v)}. Canonical SDDs additionally
// keep subs distinct ((3)); with compression and trimming the manager
// below maintains canonical form, so semantically equal SDDs are pointer
// equal.
//
// Width (Definition 5) is reported as the maximum, over vtree nodes v, of
// the number of elements of reachable decision nodes normalized at v —
// each element is one AND gate structured by v in the circuit reading of
// the SDD.

#ifndef CTSDD_SDD_SDD_H_
#define CTSDD_SDD_SDD_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "func/bool_func.h"
#include "util/status.h"
#include "vtree/vtree.h"

namespace ctsdd {

class SddManager {
 public:
  using NodeId = int;
  static constexpr NodeId kFalse = 0;
  static constexpr NodeId kTrue = 1;

  // Elements of a decision node, sorted by (prime, sub) id.
  using Elements = std::vector<std::pair<NodeId, NodeId>>;

  explicit SddManager(Vtree vtree);

  const Vtree& vtree() const { return vtree_; }

  NodeId False() const { return kFalse; }
  NodeId True() const { return kTrue; }
  NodeId Literal(int var, bool positive);

  NodeId And(NodeId a, NodeId b);
  NodeId Or(NodeId a, NodeId b);
  NodeId Not(NodeId a);

  // Conditions on var := value.
  NodeId Restrict(NodeId a, int var, bool value);

  // Existential / universal quantification of one variable:
  // Exists = f|x=0 OR f|x=1, Forall = f|x=0 AND f|x=1. Note that
  // disjoining the two restrictions does not preserve determinism in
  // general — this is exactly the paper's observation (Section 1) about
  // why the Tseitin route of Petke–Razgon cannot stay deterministic; the
  // manager re-canonicalizes, which may cost size.
  NodeId Exists(NodeId a, int var);
  NodeId Forall(NodeId a, int var);

  // Existentially quantifies a set of variables (in the given order).
  NodeId ExistsAll(NodeId a, const std::vector<int>& vars);

  // Some model of `a` as a (var -> value) map over the full vtree
  // variable set; nullopt-like: returns false and leaves `out` empty when
  // unsatisfiable.
  bool AnyModel(NodeId a, std::map<int, bool>* out) const;

  bool Evaluate(NodeId a, const std::map<int, bool>& assignment) const;

  // Models over the full vtree variable set.
  uint64_t CountModels(NodeId a) const;

  // Probability under independent variable probabilities (by global id;
  // variables absent from the map default to probability 0.5).
  double WeightedModelCount(NodeId a,
                            const std::map<int, double>& prob) const;

  // The function computed by `a`, over the full vtree variable set
  // (requires <= BoolFunc::kMaxVars variables; for tests).
  BoolFunc ToBoolFunc(NodeId a) const;

  // --- Structural statistics ---

  // Total elements over reachable decision nodes (the standard SDD size).
  int Size(NodeId a) const;
  // Number of reachable decision nodes.
  int NumDecisions(NodeId a) const;
  // Definition 5 width: max over vtree nodes of elements structured there.
  int Width(NodeId a) const;
  // Elements per vtree node (indexed by vtree node id).
  std::vector<int> VtreeProfile(NodeId a) const;

  // Checks the SDD invariants of `a`: primes partition their scope
  // (pairwise-disjoint via Apply, exhaustive via model counts), subs are
  // distinct (canonicity), and nodes respect the vtree. Non-const because
  // the disjointness checks go through the apply cache.
  Status Validate(NodeId a);

  int NumNodes() const { return static_cast<int>(nodes_.size()); }

  // --- Node access (read-only) ---
  enum class Kind : uint8_t { kConst, kLiteral, kDecision };
  struct Node {
    Kind kind;
    // kConst: value in `sense`. kLiteral: var + sense. kDecision: vnode +
    // elements.
    bool sense = false;
    int var = -1;
    int vnode = -1;  // vtree node where normalized (leaf for literals)
    Elements elements;
  };
  const Node& node(NodeId id) const { return nodes_[id]; }
  bool IsConst(NodeId id) const { return id <= 1; }

  // The vtree node a node is normalized at (-1 for constants).
  int VtreeOf(NodeId id) const { return nodes_[id].vnode; }

 private:
  enum class Op : uint8_t { kAnd, kOr };

  NodeId MakeDecision(int vnode, Elements elements);
  NodeId Apply(NodeId a, NodeId b, Op op);
  // Applies at the given vtree node, having lifted both operands to it.
  Elements LiftTo(int vnode, NodeId a);

  uint64_t CountModelsAt(NodeId a, int vnode,
                         std::unordered_map<uint64_t, uint64_t>* memo) const;
  double WmcAt(NodeId a, int vnode, const std::vector<double>& prob_of_var,
               std::unordered_map<uint64_t, double>* memo) const;

  struct ElementsKey {
    int vnode;
    Elements elements;
    bool operator==(const ElementsKey&) const = default;
  };
  struct ElementsKeyHash {
    size_t operator()(const ElementsKey& k) const {
      uint64_t h = static_cast<uint64_t>(k.vnode) * 0x9e3779b97f4a7c15ULL;
      for (const auto& [p, s] : k.elements) {
        h ^= (static_cast<uint64_t>(p) << 32 | static_cast<uint32_t>(s)) +
             0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return static_cast<size_t>(h);
    }
  };
  struct ApplyKey {
    NodeId a, b;
    Op op;
    bool operator==(const ApplyKey&) const = default;
  };
  struct ApplyKeyHash {
    size_t operator()(const ApplyKey& k) const {
      uint64_t h = (static_cast<uint64_t>(k.a) << 33) ^
                   (static_cast<uint64_t>(k.b) << 1) ^
                   static_cast<uint64_t>(k.op);
      h *= 0x9e3779b97f4a7c15ULL;
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };

  Vtree vtree_;
  std::vector<Node> nodes_;
  std::unordered_map<ElementsKey, NodeId, ElementsKeyHash> unique_;
  std::unordered_map<uint64_t, NodeId> literal_ids_;  // (var<<1|sign) -> id
  std::unordered_map<ApplyKey, NodeId, ApplyKeyHash> apply_cache_;
  std::unordered_map<NodeId, NodeId> neg_cache_;
};

}  // namespace ctsdd

#endif  // CTSDD_SDD_SDD_H_
