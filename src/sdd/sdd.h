// Sentential decision diagrams (Darwiche 2011; Section 2.1 of the paper).
//
// An SDD respecting a vtree T is either a constant, a literal, or a
// decision node normalized at an internal vtree node v: a set of elements
// {(p_i, s_i)} where the primes p_i are SDDs over X_{left(v)} forming an
// exhaustive, pairwise-disjoint case distinction ((1)-(2) in the paper)
// and the subs s_i are SDDs over X_{right(v)}. Canonical SDDs additionally
// keep subs distinct ((3)); with compression and trimming the manager
// below maintains canonical form, so semantically equal SDDs are pointer
// equal.
//
// Width (Definition 5) is reported as the maximum, over vtree nodes v, of
// the number of elements of reachable decision nodes normalized at v —
// each element is one AND gate structured by v in the circuit reading of
// the SDD.
//
// Storage: decision-node elements live in a chunked pool arena with stable
// addresses (util/arena.h); a node is (vnode, pointer, count), so the
// unique-table probe hashes the raw element words in place instead of
// copying an owning vector per key, and Apply can walk an operand's
// elements while recursive calls allocate. Apply results are memoized in a
// bounded computed cache (util/computed_cache.h): eviction costs
// recomputation, never correctness — canonicity lives in the unique table
// alone. Negations are exact permanent links (one int per node), and the
// apply hot path consults them to resolve f op !f without a cache probe.

#ifndef CTSDD_SDD_SDD_H_
#define CTSDD_SDD_SDD_H_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "func/bool_func.h"
#include "util/arena.h"
#include "util/computed_cache.h"
#include "util/scoped_memo.h"
#include "util/status.h"
#include "util/thread_check.h"
#include "util/unique_table.h"
#include "vtree/vtree.h"

namespace ctsdd {

// Computed-cache bounds (maximum slot counts; rounded up to powers of
// two — the caches start small and grow under eviction pressure up to the
// bound). Shrinking these forces eviction and recomputation but cannot
// change any result; the apply-core tests pin that down. Namespace-scope
// (not nested) so it can serve as a defaulted constructor argument.
struct SddOptions {
  size_t apply_cache_slots = 1 << 22;
  size_t sem_cache_slots = 1 << 21;  // (anchor, word) -> node cache
  // The semantic cache starts at this size instead of growing from the
  // default 256 slots: a miss there cascades into a whole recompilation
  // of the missed function, so warm-up thrash is disproportionately
  // expensive.
  size_t sem_cache_init_slots = 1 << 14;
};

class SddManager {
 public:
  using NodeId = int;
  static constexpr NodeId kFalse = 0;
  static constexpr NodeId kTrue = 1;

  // One (prime, sub) pair of a decision node.
  using Element = std::pair<NodeId, NodeId>;
  // Elements of a decision node, sorted by (prime, sub) id.
  using Elements = std::vector<Element>;
  // Read-only view into the element arena; stays valid for the manager's
  // lifetime (the arena never moves allocated chunks).
  using ElementSpan = std::span<const Element>;

  using Options = SddOptions;

  explicit SddManager(Vtree vtree, Options options = {});

  const Vtree& vtree() const { return vtree_; }

  NodeId False() const { return kFalse; }
  NodeId True() const { return kTrue; }
  NodeId Literal(int var, bool positive);

  // Canonicalizes (compress + trim + hash-cons) `elements` into a decision
  // at internal vtree node `vnode`. The caller must supply a valid
  // partition: primes non-false, pairwise disjoint and jointly exhaustive
  // over the left scope of `vnode`, subs within the right scope — exactly
  // the contract Validate() checks. This is the entry point for compilers
  // that construct partitions directly (the vtree-guided semantic compiler
  // in sdd/sdd_compile.cc) instead of going through Apply.
  NodeId Decision(int vnode, Elements elements);

  NodeId And(NodeId a, NodeId b);
  NodeId Or(NodeId a, NodeId b);
  NodeId Not(NodeId a);

  // Multi-way conjunction/disjunction with neutral operands dropped and
  // absorbing terminals short-circuited. AndN accumulates sequentially
  // (each conjunct constrains the intermediate, the CNF regime); OrN folds
  // pairwise in a balanced tree (disjuncts don't constrain each other, so
  // a sequential accumulator would re-walk a growing DNF per operand).
  NodeId AndN(std::vector<NodeId> ops);
  NodeId OrN(std::vector<NodeId> ops);

  // Conditions on var := value.
  NodeId Restrict(NodeId a, int var, bool value);

  // Existential / universal quantification of one variable:
  // Exists = f|x=0 OR f|x=1, Forall = f|x=0 AND f|x=1. Note that
  // disjoining the two restrictions does not preserve determinism in
  // general — this is exactly the paper's observation (Section 1) about
  // why the Tseitin route of Petke–Razgon cannot stay deterministic; the
  // manager re-canonicalizes, which may cost size.
  NodeId Exists(NodeId a, int var);
  NodeId Forall(NodeId a, int var);

  // Existentially quantifies a set of variables (in the given order).
  NodeId ExistsAll(NodeId a, const std::vector<int>& vars);

  // Some model of `a` as a (var -> value) map over the full vtree
  // variable set; nullopt-like: returns false and leaves `out` empty when
  // unsatisfiable.
  bool AnyModel(NodeId a, std::map<int, bool>* out) const;

  bool Evaluate(NodeId a, const std::map<int, bool>& assignment) const;

  // Models over the full vtree variable set.
  uint64_t CountModels(NodeId a) const;

  // Probability under independent variable probabilities (by global id;
  // variables absent from the map default to probability 0.5).
  double WeightedModelCount(NodeId a,
                            const std::map<int, double>& prob) const;

  // The function computed by `a`, over the full vtree variable set
  // (requires <= BoolFunc::kMaxVars variables; for tests).
  BoolFunc ToBoolFunc(NodeId a) const;

  // --- Structural statistics ---

  // Total elements over reachable decision nodes (the standard SDD size).
  int Size(NodeId a) const;
  // Number of reachable decision nodes.
  int NumDecisions(NodeId a) const;
  // Definition 5 width: max over vtree nodes of elements structured there.
  int Width(NodeId a) const;
  // Elements per vtree node (indexed by vtree node id).
  std::vector<int> VtreeProfile(NodeId a) const;

  // Checks the SDD invariants of `a`: primes partition their scope
  // (pairwise-disjoint via Apply, exhaustive via model counts), subs are
  // distinct (canonicity), and nodes respect the vtree. Non-const because
  // the disjointness checks go through the apply cache.
  Status Validate(NodeId a);

  int NumNodes() const { return static_cast<int>(nodes_.size()); }
  // Nodes currently resident (slots minus the GC free list), constants
  // included. The quantity a long-running service bounds.
  int NumLiveNodes() const {
    return static_cast<int>(nodes_.size() - free_ids_.size());
  }

  // --- Memory lifecycle -------------------------------------------------
  //
  // Same contract as ObddManager: the manager only collects nodes that
  // are unreachable from registered external roots (constants and the
  // literal nodes are permanent). Live node ids never change across a
  // collection, the unique table is rebuilt over the survivors, negation
  // links into collected nodes are severed, and the (anchor, word)
  // semantic cache is rebuilt from the survivors — so recompiling a
  // collected function reproduces pointer-identical ids for every
  // surviving subgraph. Freed decision nodes donate their element spans
  // to a size-bucketed free list that MakeDecision reuses, so the element
  // arena's footprint is bounded by its live + recycled high-water mark.

  // Registers `id` as an external root (ref-counted). Constants and
  // literals need no protection (they are permanent).
  void AddRootRef(NodeId id);
  // Drops one reference added by AddRootRef.
  void ReleaseRootRef(NodeId id);

  // Mark-from-roots collection; returns the number of nodes reclaimed.
  // Must not be called from inside an operation (apply depth 0).
  size_t GarbageCollect();

  // Returns the computed caches and per-operation memos to their initial
  // footprint (contents dropped — only recomputation cost; the semantic
  // cache repopulates as nodes are created).
  void ShrinkCaches();

  struct GcStats {
    uint64_t runs = 0;       // GarbageCollect() invocations
    uint64_t reclaimed = 0;  // nodes freed across all runs
  };
  const GcStats& gc_stats() const { return gc_stats_; }

  // Releases thread-affinity (debug builds assert single-threaded use);
  // the next operation binds the manager to its calling thread.
  void DetachOwningThread() { thread_check_.Detach(); }

  // Computed-cache effectiveness counters, for benches and tuning.
  struct CacheStats {
    uint64_t lookups;
    uint64_t hits;
    size_t slots;
  };
  CacheStats apply_cache_stats() const {
    return {apply_cache_.lookups(), apply_cache_.hits(),
            apply_cache_.num_slots()};
  }
  // The exact per-operation apply memo (second memoization level).
  CacheStats apply_memo_stats() const {
    return {apply_memo_.lookups(), apply_memo_.hits(),
            apply_memo_.num_slots()};
  }
  // The small-scope (anchor, word) -> node semantic cache.
  CacheStats sem_cache_stats() const {
    return {sem_cache_.lookups(), sem_cache_.hits(), sem_cache_.num_slots()};
  }

  // Work counters for the apply/compile hot paths, for benches and
  // regression diagnosis. Monotone over the manager's lifetime.
  struct PerfCounters {
    uint64_t apply_calls = 0;       // ApplyRec entries (incl. recursive)
    uint64_t element_products = 0;  // (prime, sub) pairs emitted by apply
    uint64_t absorb_collapses = 0;  // rows/cols fused by an absorbing sub
    uint64_t compression_merges = 0;  // equal-sub groups fused (OrN merge)
    uint64_t nary_applies = 0;        // n-ary element-product expansions
    uint64_t nary_fallbacks = 0;      // ApplyN product-cap binary fallbacks
    uint64_t sem_apply_hits = 0;       // applies resolved by word semantics
    uint64_t semantic_partitions = 0;  // semantic-compiler vtree partitions
    uint64_t semantic_memo_hits = 0;   // semantic-compiler subfunction hits
  };
  const PerfCounters& counters() const { return counters_; }
  // The semantic compiler (sdd/sdd_compile.cc) reports its partition and
  // memo-hit counts here so one stats surface covers both pipelines.
  PerfCounters* mutable_counters() { return &counters_; }

  // The recorded negation of `a`, or -1 when not (yet) known. Complement
  // literal pairs and every Not() result are linked eagerly, which lets
  // Apply short-circuit f op !f without a cache probe.
  NodeId KnownNegation(NodeId a) const { return fast_info_[a].negation; }

  // --- Small-scope semantic layer ---
  //
  // Every vtree subtree with at most kSmallScopeVars variables has a
  // "small anchor": its topmost ancestor whose scope still fits one
  // 64-bit truth table. Each node normalized inside such a subtree
  // carries its truth table word over the anchor's scope, and a bounded
  // cache maps (anchor, word) back to the canonical node. Apply calls
  // whose operands share an anchor then resolve by pure word arithmetic:
  // disjoint primes return false from one AND, subsumption returns an
  // operand, and any result function ever materialized is found without
  // recursing — the vtree-aware semantics of the compiler, applied to the
  // apply hot path. Cache eviction only costs recomputation; results are
  // canonical either way.
  static constexpr int kSmallScopeVars = 6;

  // The small anchor of `vnode`, or -1 if its scope exceeds
  // kSmallScopeVars variables.
  int SmallAnchor(int vnode) const { return anchor_of_vnode_[vnode]; }
  // The canonical node computing truth table `word` over the scope of
  // `vnode`'s small anchor, or -1 when none is cached. `vnode` must have
  // a small anchor and `word` must be masked to the anchor's table.
  NodeId LookupSemantic(int vnode, uint64_t word);

  // --- Node access (read-only) ---
  enum class Kind : uint8_t { kConst, kLiteral, kDecision };
  struct Node {
    Kind kind;
    // kConst: value in `sense`. kLiteral: var + sense. kDecision: vnode +
    // elements in the arena.
    bool sense = false;
    int var = -1;
    int vnode = -1;  // vtree node where normalized (leaf for literals)
    const Element* elems = nullptr;
    uint32_t num_elems = 0;
  };
  const Node& node(NodeId id) const { return nodes_[id]; }
  // The (prime, sub) pairs of a decision node (empty for others). The view
  // stays valid across later manager operations.
  ElementSpan elements(NodeId id) const {
    const Node& n = nodes_[id];
    return {n.elems, n.num_elems};
  }
  bool IsConst(NodeId id) const { return id <= 1; }

  // The vtree node a node is normalized at (-1 for constants).
  int VtreeOf(NodeId id) const { return nodes_[id].vnode; }

 private:
  enum class Op : uint8_t { kAnd, kOr };

  // Fan-in up to which AndN/OrN use the n-ary element product (ApplyN)
  // instead of folding binary applies; above it, AndN accumulates
  // sequentially and OrN folds ApplyN chunks of this arity.
  static constexpr size_t kNaryFoldArity = 8;
  // Element-product budget for one ApplyN expansion (product of operand
  // element counts); past it the operands fall back to binary folding,
  // whose intermediate canonicalization keeps the meet partition in check.
  static constexpr size_t kNaryProductCap = 4096;

  // Canonicalizes (compress + trim + hash-cons) the elements in *elements,
  // which is consumed as scratch space. All recursive Apply calls the
  // compression needs happen before the unique-table probe.
  NodeId MakeDecision(int vnode, Elements* elements);
  // The unique-table hash of a decision's sorted elements (shared by
  // MakeDecision and the GC rebuild).
  static uint64_t DecisionHash(int vnode, ElementSpan elements);
  // Arena allocation with recycling: exact-size spans freed by the GC are
  // reused before the arena grows.
  Element* AllocateElements(size_t n);
  // Places `n` in a GC-recycled slot when one is free, else appends.
  NodeId NewNode(Node n);
  // Re-registers every live small-scope node's (anchor, word) -> id
  // entry, restoring the semantic layer after the cache was cleared
  // (GC) or released (ShrinkCaches).
  void RebuildSemanticCache();
  // Two-level memoization: the bounded global apply cache gives cross-
  // operation reuse; an exact memo scoped to each top-level Apply call
  // preserves the O(|a|·|b|) apply bound even when the global cache
  // evicts (a lossy cache alone turns deep recursions exponential once
  // the live set outgrows it). The memo is cleared when the outermost
  // Apply returns, so its memory is bounded by one operation's footprint.
  NodeId Apply(NodeId a, NodeId b, Op op);
  NodeId ApplyRec(NodeId a, NodeId b, Op op);
  // Constant-time resolution attempt, inlined into the element-product
  // loops so the (dominant) trivially-resolvable pairs never pay a
  // recursive call: terminals, equality, recorded negations, and the
  // small-scope word semantics (disjointness, coverage, subsumption, and
  // cached result functions). Returns -1 when a full ApplyRec is needed.
  NodeId FastApply(NodeId a, NodeId b, Op op) {
    if (op == Op::kAnd) {
      if (a == kFalse || b == kFalse) return kFalse;
      if (a == kTrue) return b;
      if (b == kTrue) return a;
    } else {
      if (a == kTrue || b == kTrue) return kTrue;
      if (a == kFalse) return b;
      if (b == kFalse) return a;
    }
    if (a == b) return a;
    const FastInfo& fa = fast_info_[a];
    const FastInfo& fb = fast_info_[b];
    if (fa.negation == b) return (op == Op::kAnd) ? kFalse : kTrue;
    const int anchor = fa.anchor;
    if (anchor < 0 || anchor != fb.anchor) return -1;
    const uint64_t wr =
        (op == Op::kAnd) ? (fa.word & fb.word) : (fa.word | fb.word);
    NodeId hit = -1;
    if (wr == 0) {
      hit = kFalse;
    } else if (wr == anchor_mask_of_vnode_[anchor]) {
      hit = kTrue;
    } else if (wr == fa.word) {
      hit = a;
    } else if (wr == fb.word) {
      hit = b;
    } else {
      NodeId cached;
      if (sem_cache_.Lookup(Hash2SemKey(anchor, wr), SemKey{anchor, wr},
                            &cached)) {
        hit = cached;
      }
    }
    if (hit >= 0) ++counters_.sem_apply_hits;
    return hit;
  }
  static uint64_t Hash2SemKey(int anchor, uint64_t word);
  // n-ary apply: lifts all operands to their common vtree LCA and runs one
  // pruned element product over every operand's element list — dead
  // (false) partial primes cut whole subtrees of the product, subs combine
  // by a recursive n-ary fold, and the result canonicalizes once instead
  // of once per binary apply. `ops` must be constant-free and duplicate-
  // free with >= 2 entries (NormalizeNaryOps's postcondition); order is
  // free — the caller's sequence is preserved, and only the internal memo
  // key is sorted. Falls back to binary folds past kNaryProductCap.
  NodeId ApplyN(const std::vector<NodeId>& ops, Op op);
  // Shared operand normalization for AndN/OrN/ApplyN: drops identity
  // operands and duplicates, sorts, and detects absorbing terminals and
  // complementary pairs. Returns true if the fold is decided immediately
  // (result in *out).
  bool NormalizeNaryOps(std::vector<NodeId>* ops, Op op, NodeId* out);
  NodeId NotRec(NodeId a);
  // Records a <-> b as negations of each other (for apply short-circuits).
  void LinkNegations(NodeId a, NodeId b);
  // Computes and registers the semantic word of a freshly created node
  // whose vnode has a small anchor (no-op otherwise). Must be called for
  // every node pushed onto nodes_, in id order.
  void RegisterSemantic(NodeId id);
  // A view of `a` as elements normalized at `vnode` (having lifted it if
  // needed); lifted literal/decision cases materialize into *store.
  ElementSpan LiftTo(int vnode, NodeId a, std::array<Element, 2>* store);

  uint64_t CountModelsAt(NodeId a, int vnode,
                         std::unordered_map<uint64_t, uint64_t>* memo) const;
  double WmcAt(NodeId a, int vnode, const std::vector<double>& prob_of_var,
               std::unordered_map<uint64_t, double>* memo) const;

  struct ApplyKey {
    NodeId a = 0, b = 0;
    Op op = Op::kAnd;
    bool operator==(const ApplyKey&) const = default;
  };
  struct NaryKey {
    Op op = Op::kAnd;
    std::vector<NodeId> ops;  // sorted, unique, constant-free
    bool operator==(const NaryKey&) const = default;
  };
  struct NaryKeyHash {
    size_t operator()(const NaryKey& k) const {
      uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(k.op);
      for (const NodeId id : k.ops) {
        h ^= static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
      }
      return static_cast<size_t>(h);
    }
  };
  struct SemKey {
    int32_t anchor = -1;
    uint64_t word = 0;
    bool operator==(const SemKey&) const = default;
  };
  // Per-node record for FastApply, packed so one pair of loads answers
  // the negation and small-scope checks: the recorded negation (-1 if
  // unknown), the vnode's small anchor (-1 if the scope is wide), and the
  // truth table word over the anchor scope (valid iff anchor >= 0).
  struct FastInfo {
    NodeId negation = -1;
    int32_t anchor = -1;
    uint64_t word = 0;
  };
  struct ApplyKeyHash {
    size_t operator()(const ApplyKey& k) const {
      uint64_t h = (static_cast<uint64_t>(k.a) << 33) ^
                   (static_cast<uint64_t>(k.b) << 1) ^
                   static_cast<uint64_t>(k.op);
      h *= 0x9e3779b97f4a7c15ULL;
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };

  Vtree vtree_;
  std::vector<Node> nodes_;
  PoolArena<Element> element_arena_;
  UniqueTable unique_;
  std::vector<NodeId> literal_ids_;  // (var << 1 | sign) -> id or -1
  ComputedCache<ApplyKey, NodeId> apply_cache_;
  // Exact memos for the currently running top-level operation (see
  // ApplyRec): they preserve the polynomial recursion bounds that the
  // bounded lossy caches alone cannot guarantee, and are reset when the
  // outermost operation returns so memory stays bounded per operation.
  ScopedMemo<ApplyKey, NodeId> apply_memo_;
  // Exact memo for n-ary folds within the current top-level operation
  // (same lifetime discipline as apply_memo_).
  std::unordered_map<NaryKey, NodeId, NaryKeyHash> nary_memo_;
  int apply_depth_ = 0;
  // One FastInfo per node (see FastApply). The negation links double as
  // an exact, unbounded negation memo — complement literals and every
  // NotRec result are linked eagerly — which is why there is no separate
  // bounded negation cache.
  std::vector<FastInfo> fast_info_;
  // Small-scope semantic layer (see SmallAnchor): per-vtree-node anchors
  // and masks plus the (anchor, word) -> canonical node cache.
  std::vector<int> anchor_of_vnode_;
  std::vector<uint64_t> anchor_mask_of_vnode_;
  ComputedCache<SemKey, NodeId> sem_cache_;
  PerfCounters counters_;
  // Per-recursion-depth element buffers reused across ApplyRec frames, so
  // the hot path performs no per-call allocation once warmed up. A deque
  // keeps references stable while deeper frames extend it.
  std::deque<Elements> scratch_;
  size_t rec_depth_ = 0;
  // Scratch for NormalizeNaryOps's sorted probe set (that function never
  // re-enters itself, so one buffer suffices).
  std::vector<NodeId> nary_probe_scratch_;
  // GC state: external root ref-counts (indexed by node id, lazily
  // grown), the node-id free list MakeDecision pops before growing
  // nodes_, and the size-bucketed element-span free list (spans are
  // arena-backed and can never be returned to the allocator, but exact-
  // size reuse bounds the arena at its live + recycled high-water mark).
  std::vector<int32_t> external_refs_;
  std::vector<NodeId> free_ids_;
  std::unordered_map<size_t, std::vector<Element*>> free_elements_;
  GcStats gc_stats_;
  ThreadChecker thread_check_;
};

}  // namespace ctsdd

#endif  // CTSDD_SDD_SDD_H_
