#include "sdd/sdd_compile.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "util/logging.h"

namespace ctsdd {

namespace {

// Combines wide gates by balanced pairwise reduction instead of a left
// fold: intermediate results stay local (small scopes conjoin/disjoin
// first), which avoids the blowup a sequential accumulation suffers on
// wide DNF-like gates.
SddManager::NodeId FoldBalanced(SddManager* manager,
                                std::vector<SddManager::NodeId> items,
                                bool is_and) {
  if (items.empty()) return is_and ? manager->True() : manager->False();
  while (items.size() > 1) {
    std::vector<SddManager::NodeId> next;
    next.reserve((items.size() + 1) / 2);
    for (size_t i = 0; i + 1 < items.size(); i += 2) {
      next.push_back(is_and ? manager->And(items[i], items[i + 1])
                            : manager->Or(items[i], items[i + 1]));
    }
    if (items.size() % 2 == 1) next.push_back(items.back());
    items = std::move(next);
  }
  return items[0];
}

}  // namespace

SddManager::NodeId CompileCircuitToSdd(SddManager* manager,
                                       const Circuit& circuit) {
  CTSDD_CHECK_GE(circuit.output(), 0);
  // Preorder positions of vtree nodes: inputs of wide gates are sorted by
  // the position of the vtree node they are normalized at, so that
  // scope-adjacent operands combine first in the balanced fold.
  const Vtree& vt = manager->vtree();
  std::vector<int> preorder(vt.num_nodes(), 0);
  {
    int counter = 0;
    std::vector<int> stack = {vt.root()};
    while (!stack.empty()) {
      const int node = stack.back();
      stack.pop_back();
      preorder[node] = counter++;
      if (!vt.is_leaf(node)) {
        stack.push_back(vt.right(node));
        stack.push_back(vt.left(node));
      }
    }
  }
  auto position = [&](SddManager::NodeId id) {
    const int vnode = manager->VtreeOf(id);
    return vnode < 0 ? -1 : preorder[vnode];
  };
  std::vector<SddManager::NodeId> value(circuit.num_gates());
  for (int id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    switch (g.kind) {
      case GateKind::kConstFalse:
        value[id] = manager->False();
        break;
      case GateKind::kConstTrue:
        value[id] = manager->True();
        break;
      case GateKind::kVar:
        value[id] = manager->Literal(g.var, true);
        break;
      case GateKind::kNot:
        value[id] = manager->Not(value[g.inputs[0]]);
        break;
      case GateKind::kAnd:
      case GateKind::kOr: {
        std::vector<SddManager::NodeId> inputs;
        inputs.reserve(g.inputs.size());
        for (int input : g.inputs) inputs.push_back(value[input]);
        std::stable_sort(inputs.begin(), inputs.end(),
                         [&](SddManager::NodeId a, SddManager::NodeId b) {
                           return position(a) < position(b);
                         });
        value[id] =
            FoldBalanced(manager, std::move(inputs), g.kind == GateKind::kAnd);
        break;
      }
    }
  }
  return value[circuit.output()];
}

SddManager::NodeId CompileFuncToSdd(SddManager* manager, const BoolFunc& f) {
  std::unordered_map<BoolFunc, SddManager::NodeId, BoolFunc::Hasher> memo;
  std::function<SddManager::NodeId(const BoolFunc&)> rec =
      [&](const BoolFunc& g) -> SddManager::NodeId {
    if (g.IsConstantFalse()) return manager->False();
    if (g.IsConstantTrue()) return manager->True();
    const auto it = memo.find(g);
    if (it != memo.end()) return it->second;
    const int var = g.vars()[0];
    const SddManager::NodeId lo = rec(g.Restrict(var, false));
    const SddManager::NodeId hi = rec(g.Restrict(var, true));
    const SddManager::NodeId x = manager->Literal(var, true);
    const SddManager::NodeId result = manager->Or(
        manager->And(x, hi), manager->And(manager->Not(x), lo));
    memo.emplace(g, result);
    return result;
  };
  return rec(f);
}

SddStats ComputeSddStats(const SddManager& manager, SddManager::NodeId root) {
  SddStats stats;
  stats.size = manager.Size(root);
  stats.width = manager.Width(root);
  stats.decisions = manager.NumDecisions(root);
  return stats;
}

}  // namespace ctsdd
