#include "sdd/sdd_compile.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/task_pool.h"
#include "util/logging.h"

namespace ctsdd {
namespace {

// The vtree-guided semantic compiler (the default CompileFuncToSdd route).
//
// Invariant: CompileShrunk(v, g) takes a subfunction g that depends on
// every variable in g.vars() (callers shrink first), with all of those
// variables below vtree node `v`. It descends to the minimal vtree node
// covering the support, so the memo can key on the function alone: the
// canonical SDD node of a function is unique for the vtree, and the node
// it is normalized at is determined by its support.
//
// Parallel compilation: when the manager carries a parallel executor,
// Compile opens one manager parallel region for the whole recursion and
// Partition forks its left-scope cofactor classes across the pool — each
// class's (prime, sub) pair compiles independently, and Decision
// canonicalizes through the manager's concurrent protocol, so the result
// is pointer-identical to the sequential compile. The subfunction memo is
// sharded under short mutexes (one BoolFunc hash per probe), and counter
// tallies accumulate relaxed-atomically, merged into the manager when the
// compile finishes.
class SemanticSddCompiler {
 public:
  explicit SemanticSddCompiler(SddManager* manager)
      : m_(manager), vt_(manager->vtree()), pool_(manager->executor()) {}

  SddManager::NodeId Compile(const BoolFunc& f) {
    for (int v : f.vars()) {
      CTSDD_CHECK_GE(vt_.LeafOf(v), 0)
          << "vtree missing function variable x" << v;
    }
    const bool open_region = pool_ != nullptr && pool_->parallel() &&
                             !m_->InParallelRegion();
    if (open_region) m_->BeginParallelRegion();
    const SddManager::NodeId result = CompileShrunk(vt_.root(), f.Shrink(), 0);
    if (open_region) m_->EndParallelRegion();
    SddManager::PerfCounters tally;
    tally.semantic_partitions =
        partitions_.load(std::memory_order_relaxed);
    tally.semantic_memo_hits = memo_hits_.load(std::memory_order_relaxed);
    m_->AddCounters(tally);
    return result;
  }

 private:
  using NodeId = SddManager::NodeId;

  // Fork cutoff: partition classes fork while the vtree recursion is at
  // depth < kForkDepth. Class counts are the cofactor multiplicities
  // (up to 2^|left vars|), so shallow levels alone saturate the pool.
  static constexpr int kForkDepth = 8;
  static constexpr size_t kMemoShards = 16;

  bool Covers(int node, const std::vector<int>& vars) const {
    const std::vector<int>& below = vt_.VarsBelow(node);
    return std::includes(below.begin(), below.end(), vars.begin(),
                         vars.end());
  }

  bool InParallel() const { return m_->InParallelRegion(); }

  NodeId CompileShrunk(int v, const BoolFunc& g, int depth) {
    // Budget poll: covers the deadline/cancel paths even when this
    // subtree resolves entirely from memos (no allocations to charge).
    WorkBudget* const budget = m_->budget();
    if (budget != nullptr && !budget->CheckPoint()) {
      return SddManager::kAborted;
    }
    if (g.IsConstantFalse()) return SddManager::kFalse;
    if (g.IsConstantTrue()) return SddManager::kTrue;
    // Descend to the minimal vtree node covering g's support.
    const std::vector<int>& gv = g.vars();
    while (!vt_.is_leaf(v)) {
      if (Covers(vt_.left(v), gv)) {
        v = vt_.left(v);
      } else if (Covers(vt_.right(v), gv)) {
        v = vt_.right(v);
      } else {
        break;
      }
    }
    // Small-scope functions bypass the BoolFunc-keyed memo entirely: the
    // manager's (anchor, word) cache is their memo, probes are word ops,
    // and every node built below registers itself on creation.
    const int anchor = m_->SmallAnchor(v);
    if (anchor >= 0) {
      const NodeId hit =
          m_->LookupSemantic(v, g.WordOver(vt_.VarsBelow(anchor)));
      if (hit >= 0) {
        memo_hits_.fetch_add(1, std::memory_order_relaxed);
        return hit;
      }
      if (vt_.is_leaf(v)) {
        // One relevant variable: g is that literal (a constant would
        // have been caught above, and g depends on the variable).
        return m_->Literal(gv[0], /*positive=*/g.EvalIndex(1));
      }
      return Partition(v, g, depth);
    }
    const uint64_t ghash = BoolFunc::Hasher{}(g);
    MemoShard& shard = memo_[ghash % kMemoShards];
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      const auto it = shard.map.find(g);
      if (it != shard.map.end()) {
        memo_hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    const NodeId result = Partition(v, g, depth);
    if (result >= 0) {  // aborted results are never memoized
      // A racing task may have compiled g concurrently; both computed
      // the same canonical node, so either entry wins.
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.emplace(g, result);
    }
    return result;
  }

  // Decomposes g at internal vtree node v (g has support on both sides of
  // v): enumerates all left-scope cofactors in one word-parallel sweep,
  // groups equal ones, and emits one element per distinct cofactor. The
  // group indicator functions are the primes — exhaustive and pairwise
  // disjoint by construction, with distinct subs, so the partition is
  // already compressed and MakeDecision runs zero applies. With a pool
  // attached, the classes — independent (prime, sub) compilations — fork
  // across workers.
  NodeId Partition(int v, const BoolFunc& g, int depth) {
    partitions_.fetch_add(1, std::memory_order_relaxed);
    const std::vector<int>& below_left = vt_.VarsBelow(vt_.left(v));
    std::vector<int> left_vars;
    for (int x : g.vars()) {
      if (std::binary_search(below_left.begin(), below_left.end(), x)) {
        left_vars.push_back(x);
      }
    }
    const int k = static_cast<int>(left_vars.size());
    CTSDD_CHECK_GE(k, 1);
    if (m_->SmallAnchor(vt_.left(v)) >= 0 &&
        m_->SmallAnchor(vt_.right(v)) >= 0) {
      return WordPartition(v, g, left_vars, depth);
    }
    const std::vector<BoolFunc> cofactors = g.CofactorsOver(left_vars);
    // Group equal cofactors; build each class's prime truth table over
    // the left variables (bit a set iff assignment a lands in the class).
    std::unordered_map<BoolFunc, int, BoolFunc::Hasher> class_of;
    std::vector<const BoolFunc*> reps;  // stable: map references persist
    std::vector<std::vector<uint64_t>> prime_words;
    const size_t words = ((1u << k) + 63) / 64;
    for (uint32_t a = 0; a < (1u << k); ++a) {
      const auto [slot, inserted] =
          class_of.emplace(cofactors[a], static_cast<int>(reps.size()));
      if (inserted) {
        reps.push_back(&slot->first);
        prime_words.emplace_back(words, 0);
      }
      prime_words[slot->second][a >> 6] |= 1ULL << (a & 63);
    }
    CTSDD_CHECK_GE(reps.size(), 2u);  // g depends on some left variable
    SddManager::Elements elements(reps.size());
    const auto compile_class = [&](size_t c) {
      const NodeId prime = CompileShrunk(
          vt_.left(v),
          BoolFunc::FromWords(left_vars, std::move(prime_words[c]))
              .Shrink(),
          depth + 1);
      const NodeId sub =
          CompileShrunk(vt_.right(v), reps[c]->Shrink(), depth + 1);
      elements[c] = {prime, sub};
    };
    if (InParallel() && depth < kForkDepth) {
      exec::ParallelFor(pool_, reps.size(), m_->budget_token(),
                        compile_class);
    } else {
      for (size_t c = 0; c < reps.size(); ++c) compile_class(c);
    }
    // A cancelled ParallelFor may have skipped classes entirely, leaving
    // default-constructed elements: abort before they canonicalize.
    if (m_->AbortRequested()) return SddManager::kAborted;
    return m_->Decision(v, std::move(elements));
  }

  // Partition specialization for nodes whose children both have small
  // (one-word) scopes: cofactor enumeration, grouping, and the prime
  // indicators all run on plain 64-bit words with no BoolFunc
  // allocations, and primes/subs resolve through the manager's semantic
  // layer (building a BoolFunc only on a cache miss).
  NodeId WordPartition(int v, const BoolFunc& g,
                       const std::vector<int>& left_vars, int depth) {
    const int n = g.num_vars();
    const int k = static_cast<int>(left_vars.size());
    const int mr = n - k;
    CTSDD_CHECK_LE(k, 6);
    CTSDD_CHECK_GE(mr, 1);
    CTSDD_CHECK_LE(mr, 6);
    std::vector<int> right_vars;
    right_vars.reserve(mr);
    // Bit positions of the left/right variables within g's table index.
    int pos_left[6], pos_right[6];
    {
      int li = 0, ri = 0;
      for (int i = 0; i < n; ++i) {
        if (li < k && g.vars()[i] == left_vars[li]) {
          pos_left[li++] = i;
        } else {
          pos_right[ri++] = i;
          right_vars.push_back(g.vars()[i]);
        }
      }
    }
    // Scatter tables: table index bits of each left/right assignment.
    uint32_t scat_left[64], scat_right[64];
    scat_left[0] = scat_right[0] = 0;
    for (uint32_t x = 1; x < (1u << k); ++x) {
      scat_left[x] =
          scat_left[x & (x - 1)] | (1u << pos_left[std::countr_zero(x)]);
    }
    for (uint32_t x = 1; x < (1u << mr); ++x) {
      scat_right[x] =
          scat_right[x & (x - 1)] | (1u << pos_right[std::countr_zero(x)]);
    }
    // Enumerate cofactor words and group equal ones (at most 2^k <= 64
    // classes: a linear probe beats any hash map at this size).
    uint64_t class_word[64], prime_word[64];
    int num_classes = 0;
    for (uint32_t a = 0; a < (1u << k); ++a) {
      uint64_t w = 0;
      const uint32_t base = scat_left[a];
      for (uint32_t b = 0; b < (1u << mr); ++b) {
        w |= static_cast<uint64_t>(g.EvalIndex(base | scat_right[b])) << b;
      }
      int c = -1;
      for (int i = 0; i < num_classes; ++i) {
        if (class_word[i] == w) {
          c = i;
          break;
        }
      }
      if (c < 0) {
        c = num_classes++;
        class_word[c] = w;
        prime_word[c] = 0;
      }
      prime_word[c] |= 1ULL << a;
    }
    CTSDD_CHECK_GE(num_classes, 2);
    SddManager::Elements elements;
    elements.reserve(num_classes);
    for (int c = 0; c < num_classes; ++c) {
      const NodeId prime =
          CompileSmallWord(vt_.left(v), prime_word[c], left_vars, depth);
      const NodeId sub =
          CompileSmallWord(vt_.right(v), class_word[c], right_vars, depth);
      elements.emplace_back(prime, sub);
    }
    return m_->Decision(v, std::move(elements));
  }

  // Compiles the one-word function `w` over sorted `wvars` into the small
  // subtree at `child`: constants and semantic-layer hits are O(1); only
  // unseen functions materialize a BoolFunc and recurse.
  NodeId CompileSmallWord(int child, uint64_t w,
                          const std::vector<int>& wvars, int depth) {
    const uint32_t bits = 1u << wvars.size();
    const uint64_t full = (bits >= 64) ? ~0ULL : ((1ULL << bits) - 1);
    if (w == 0) return SddManager::kFalse;
    if ((w & full) == full) return SddManager::kTrue;
    const int anchor = m_->SmallAnchor(child);
    const NodeId hit = m_->LookupSemantic(
        child, BoolFunc::ExpandWord(w, wvars, vt_.VarsBelow(anchor)));
    if (hit >= 0) return hit;
    return CompileShrunk(child,
                         BoolFunc::FromWords(wvars, {w & full}).Shrink(),
                         depth + 1);
  }

  struct MemoShard {
    std::mutex mu;
    std::unordered_map<BoolFunc, NodeId, BoolFunc::Hasher> map;
  };

  SddManager* m_;
  const Vtree& vt_;
  exec::TaskPool* pool_;
  std::array<MemoShard, kMemoShards> memo_;
  std::atomic<uint64_t> partitions_{0};
  std::atomic<uint64_t> memo_hits_{0};
};

SddManager::NodeId CompileFuncToSddShannon(SddManager* manager,
                                           const BoolFunc& f) {
  std::unordered_map<BoolFunc, SddManager::NodeId, BoolFunc::Hasher> memo;
  std::function<SddManager::NodeId(const BoolFunc&)> rec =
      [&](const BoolFunc& g) -> SddManager::NodeId {
    if (g.IsConstantFalse()) return manager->False();
    if (g.IsConstantTrue()) return manager->True();
    const auto it = memo.find(g);
    if (it != memo.end()) return it->second;
    const int var = g.vars()[0];
    const SddManager::NodeId lo = rec(g.Restrict(var, false));
    const SddManager::NodeId hi = rec(g.Restrict(var, true));
    const SddManager::NodeId x = manager->Literal(var, true);
    const SddManager::NodeId result = manager->Or(
        manager->And(x, hi), manager->And(manager->Not(x), lo));
    if (result < 0) return result;  // budget abort: never memoized
    memo.emplace(g, result);
    return result;
  };
  return rec(f);
}

}  // namespace

SddManager::NodeId CompileCircuitToSdd(SddManager* manager,
                                       const Circuit& circuit) {
  CTSDD_CHECK_GE(circuit.output(), 0);
  // Semantic fast path: for small variable counts the word-parallel
  // circuit sweep plus the vtree-guided partition recursion replace
  // thousands of small applies.
  if (static_cast<int>(circuit.Vars().size()) <= kSemanticCircuitMaxVars) {
    return CompileFuncToSdd(
        manager, BoolFunc::FromCircuitOver(circuit, circuit.Vars()));
  }
  // Preorder positions of vtree nodes: inputs of wide gates are sorted by
  // the position of the vtree node they are normalized at, so that
  // scope-adjacent operands combine first in the chunked n-ary Or fold.
  const Vtree& vt = manager->vtree();
  std::vector<int> preorder(vt.num_nodes(), 0);
  {
    int counter = 0;
    std::vector<int> stack = {vt.root()};
    while (!stack.empty()) {
      const int node = stack.back();
      stack.pop_back();
      preorder[node] = counter++;
      if (!vt.is_leaf(node)) {
        stack.push_back(vt.right(node));
        stack.push_back(vt.left(node));
      }
    }
  }
  auto position = [&](SddManager::NodeId id) {
    if (id < 0) return -1;  // aborted operand (budget trip upstream)
    const int vnode = manager->VtreeOf(id);
    return vnode < 0 ? -1 : preorder[vnode];
  };
  // One parallel region for the whole bottom-up sweep: each gate's n-ary
  // fold forks internally, and the per-gate region transition cost is
  // paid once.
  const bool open_region = manager->executor() != nullptr &&
                           manager->executor()->parallel() &&
                           !manager->InParallelRegion();
  if (open_region) manager->BeginParallelRegion();
  std::vector<SddManager::NodeId> value(circuit.num_gates());
  for (int id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    switch (g.kind) {
      case GateKind::kConstFalse:
        value[id] = manager->False();
        break;
      case GateKind::kConstTrue:
        value[id] = manager->True();
        break;
      case GateKind::kVar:
        value[id] = manager->Literal(g.var, true);
        break;
      case GateKind::kNot:
        value[id] = manager->Not(value[g.inputs[0]]);
        break;
      case GateKind::kAnd:
      case GateKind::kOr: {
        std::vector<SddManager::NodeId> inputs;
        inputs.reserve(g.inputs.size());
        for (int input : g.inputs) inputs.push_back(value[input]);
        if (g.kind == GateKind::kOr) {
          // Or fold: scope-adjacent disjuncts combine first.
          std::stable_sort(inputs.begin(), inputs.end(),
                           [&](SddManager::NodeId a, SddManager::NodeId b) {
                             return position(a) < position(b);
                           });
        }
        // And inputs keep the circuit's own order: conjuncts are
        // accumulated sequentially (SddManager::AndN) and the circuit's
        // structural locality beats a vtree-preorder sort by orders of
        // magnitude on constraint-chain workloads (the sort fronts the
        // most global constraints, maximizing intermediate sizes).
        value[id] = g.kind == GateKind::kAnd
                        ? manager->AndN(std::move(inputs))
                        : manager->OrN(std::move(inputs));
        break;
      }
    }
  }
  if (open_region) manager->EndParallelRegion();
  return value[circuit.output()];
}

SddManager::NodeId CompileFuncToSdd(SddManager* manager, const BoolFunc& f,
                                    SddFuncCompile strategy) {
  if (strategy == SddFuncCompile::kShannonApply) {
    return CompileFuncToSddShannon(manager, f);
  }
  return SemanticSddCompiler(manager).Compile(f);
}

SddStats ComputeSddStats(const SddManager& manager, SddManager::NodeId root) {
  SddStats stats;
  stats.size = manager.Size(root);
  stats.width = manager.Width(root);
  stats.decisions = manager.NumDecisions(root);
  return stats;
}

}  // namespace ctsdd
