#include "sdd/sdd_compile.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "util/logging.h"

namespace ctsdd {

SddManager::NodeId CompileCircuitToSdd(SddManager* manager,
                                       const Circuit& circuit) {
  CTSDD_CHECK_GE(circuit.output(), 0);
  // Preorder positions of vtree nodes: inputs of wide gates are sorted by
  // the position of the vtree node they are normalized at, so that
  // scope-adjacent operands combine first in the balanced fold.
  const Vtree& vt = manager->vtree();
  std::vector<int> preorder(vt.num_nodes(), 0);
  {
    int counter = 0;
    std::vector<int> stack = {vt.root()};
    while (!stack.empty()) {
      const int node = stack.back();
      stack.pop_back();
      preorder[node] = counter++;
      if (!vt.is_leaf(node)) {
        stack.push_back(vt.right(node));
        stack.push_back(vt.left(node));
      }
    }
  }
  auto position = [&](SddManager::NodeId id) {
    const int vnode = manager->VtreeOf(id);
    return vnode < 0 ? -1 : preorder[vnode];
  };
  std::vector<SddManager::NodeId> value(circuit.num_gates());
  for (int id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    switch (g.kind) {
      case GateKind::kConstFalse:
        value[id] = manager->False();
        break;
      case GateKind::kConstTrue:
        value[id] = manager->True();
        break;
      case GateKind::kVar:
        value[id] = manager->Literal(g.var, true);
        break;
      case GateKind::kNot:
        value[id] = manager->Not(value[g.inputs[0]]);
        break;
      case GateKind::kAnd:
      case GateKind::kOr: {
        std::vector<SddManager::NodeId> inputs;
        inputs.reserve(g.inputs.size());
        for (int input : g.inputs) inputs.push_back(value[input]);
        if (g.kind == GateKind::kOr) {
          // Balanced Or fold: scope-adjacent disjuncts combine first.
          std::stable_sort(inputs.begin(), inputs.end(),
                           [&](SddManager::NodeId a, SddManager::NodeId b) {
                             return position(a) < position(b);
                           });
        }
        // And inputs keep the circuit's own order: conjuncts are
        // accumulated sequentially (SddManager::AndN) and the circuit's
        // structural locality beats a vtree-preorder sort by orders of
        // magnitude on constraint-chain workloads (the sort fronts the
        // most global constraints, maximizing intermediate sizes).
        value[id] = g.kind == GateKind::kAnd
                        ? manager->AndN(std::move(inputs))
                        : manager->OrN(std::move(inputs));
        break;
      }
    }
  }
  return value[circuit.output()];
}

SddManager::NodeId CompileFuncToSdd(SddManager* manager, const BoolFunc& f) {
  std::unordered_map<BoolFunc, SddManager::NodeId, BoolFunc::Hasher> memo;
  std::function<SddManager::NodeId(const BoolFunc&)> rec =
      [&](const BoolFunc& g) -> SddManager::NodeId {
    if (g.IsConstantFalse()) return manager->False();
    if (g.IsConstantTrue()) return manager->True();
    const auto it = memo.find(g);
    if (it != memo.end()) return it->second;
    const int var = g.vars()[0];
    const SddManager::NodeId lo = rec(g.Restrict(var, false));
    const SddManager::NodeId hi = rec(g.Restrict(var, true));
    const SddManager::NodeId x = manager->Literal(var, true);
    const SddManager::NodeId result = manager->Or(
        manager->And(x, hi), manager->And(manager->Not(x), lo));
    memo.emplace(g, result);
    return result;
  };
  return rec(f);
}

SddStats ComputeSddStats(const SddManager& manager, SddManager::NodeId root) {
  SddStats stats;
  stats.size = manager.Size(root);
  stats.width = manager.Width(root);
  stats.decisions = manager.NumDecisions(root);
  return stats;
}

}  // namespace ctsdd
