#include "viz/dot.h"

#include <sstream>
#include <vector>

namespace ctsdd {

std::string CircuitToDot(const Circuit& circuit) {
  std::ostringstream os;
  os << "digraph circuit {\n  rankdir=BT;\n";
  for (int id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    os << "  g" << id;
    switch (g.kind) {
      case GateKind::kVar:
        os << " [shape=plaintext,label=\"x" << g.var << "\"];\n";
        break;
      case GateKind::kConstFalse:
        os << " [shape=plaintext,label=\"0\"];\n";
        break;
      case GateKind::kConstTrue:
        os << " [shape=plaintext,label=\"1\"];\n";
        break;
      case GateKind::kNot:
        os << " [shape=box,label=\"NOT\"];\n";
        break;
      case GateKind::kAnd:
        os << " [shape=box,label=\"AND\"];\n";
        break;
      case GateKind::kOr:
        os << " [shape=box,label=\"OR\"];\n";
        break;
    }
    for (int input : g.inputs) {
      os << "  g" << input << " -> g" << id << ";\n";
    }
  }
  if (circuit.output() >= 0) {
    os << "  out [shape=plaintext,label=\"output\"];\n  g"
       << circuit.output() << " -> out;\n";
  }
  os << "}\n";
  return os.str();
}

std::string VtreeToDot(const Vtree& vtree) {
  std::ostringstream os;
  os << "graph vtree {\n";
  std::vector<int> stack = {vtree.root()};
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    if (vtree.is_leaf(node)) {
      os << "  v" << node << " [shape=plaintext,label=\"x"
         << vtree.var(node) << "\"];\n";
      continue;
    }
    os << "  v" << node << " [shape=point];\n";
    os << "  v" << node << " -- v" << vtree.left(node) << ";\n";
    os << "  v" << node << " -- v" << vtree.right(node) << ";\n";
    stack.push_back(vtree.left(node));
    stack.push_back(vtree.right(node));
  }
  os << "}\n";
  return os.str();
}

namespace {

std::string SddLeafLabel(const SddManager& manager, SddManager::NodeId id) {
  if (id == SddManager::kFalse) return "F";
  if (id == SddManager::kTrue) return "T";
  const auto& node = manager.node(id);
  if (node.kind == SddManager::Kind::kLiteral) {
    return (node.sense ? "x" : "!x") + std::to_string(node.var);
  }
  return "";  // decision: drawn as its own record
}

}  // namespace

std::string SddToDot(const SddManager& manager, SddManager::NodeId root) {
  std::ostringstream os;
  os << "digraph sdd {\n  node [shape=record];\n";
  std::vector<bool> seen(manager.NumNodes(), false);
  std::vector<SddManager::NodeId> stack = {root};
  while (!stack.empty()) {
    const auto id = stack.back();
    stack.pop_back();
    if (manager.IsConst(id) || seen[id]) continue;
    seen[id] = true;
    const auto& node = manager.node(id);
    if (node.kind != SddManager::Kind::kDecision) continue;
    const auto elements = manager.elements(id);
    os << "  n" << id << " [label=\"";
    for (size_t i = 0; i < elements.size(); ++i) {
      const auto [p, s] = elements[i];
      if (i) os << "|";
      os << "{<p" << i << "> " << SddLeafLabel(manager, p) << "|<s" << i
         << "> " << SddLeafLabel(manager, s) << "}";
    }
    os << "\" xlabel=\"v" << node.vnode << "\"];\n";
    for (size_t i = 0; i < elements.size(); ++i) {
      const auto [p, s] = elements[i];
      if (!manager.IsConst(p) &&
          manager.node(p).kind == SddManager::Kind::kDecision) {
        os << "  n" << id << ":p" << i << " -> n" << p << ";\n";
        stack.push_back(p);
      }
      if (!manager.IsConst(s) &&
          manager.node(s).kind == SddManager::Kind::kDecision) {
        os << "  n" << id << ":s" << i << " -> n" << s << ";\n";
        stack.push_back(s);
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace ctsdd
