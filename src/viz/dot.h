// Graphviz (DOT) exports for circuits, vtrees, and SDDs — debugging and
// documentation aids (`dot -Tpdf` renders them).

#ifndef CTSDD_VIZ_DOT_H_
#define CTSDD_VIZ_DOT_H_

#include <string>

#include "circuit/circuit.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace ctsdd {

// Gates as boxes (AND/OR/NOT) and plaintext variables; edges follow wires.
std::string CircuitToDot(const Circuit& circuit);

// Internal vtree nodes as points, leaves labeled with their variables.
std::string VtreeToDot(const Vtree& vtree);

// Decision nodes as element records "p|s" (the standard SDD drawing);
// terminal/literal children inlined into the records.
std::string SddToDot(const SddManager& manager, SddManager::NodeId root);

}  // namespace ctsdd

#endif  // CTSDD_VIZ_DOT_H_
