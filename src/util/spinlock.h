// Minimal test-and-test-and-set spinlock for the lock-striped cache paths.
//
// The striped critical sections it guards are a handful of loads/stores
// (one cache slot probe or update), far below the cost of parking a
// thread, so a spinlock beats std::mutex there; everything long-lived
// (worker parking, resize) uses real mutexes. Acquire/release ordering
// makes the guarded writes visible to the next holder — and keeps
// ThreadSanitizer able to reason about the happens-before edges.

#ifndef CTSDD_UTIL_SPINLOCK_H_
#define CTSDD_UTIL_SPINLOCK_H_

#include <atomic>

namespace ctsdd {

class SpinLock {
 public:
  void lock() {
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      // Test-and-test-and-set: spin on the cheap load, not the RMW.
      while (locked_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }
  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

// std::lock_guard-compatible; kept separate from any header that would
// drag <mutex> into the hot-path translation units.
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.lock(); }
  ~SpinLockGuard() { lock_.unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace ctsdd

#endif  // CTSDD_UTIL_SPINLOCK_H_
