// WorkBudget: a cooperative resource budget for long-running compiles.
//
// A budget carries up to three independent limits — a node-allocation
// budget, a wall-clock deadline, and an external cancel flag — and trips
// exactly once, remembering the first reason. Hot paths interact with it
// in two cheap ways:
//
//   - AcquireLease(want): charge up to `want` node allocations against
//     the budget in one atomic fetch_add. Callers amortize by leasing a
//     block (e.g. budget/16, capped) and decrementing a thread-local
//     counter, so the shared atomic is touched once per lease, not once
//     per node.
//   - CheckPoint(): amortized deadline poll — the (relatively expensive)
//     steady_clock read runs only every 256th call.
//
// Both return "keep going?" and never block. Once tripped, every
// subsequent lease is denied and `tripped()` / `token()` read true, so
// concurrent workers in a parallel region all observe the abort promptly.
// The tripped flag is exposed as a raw `const std::atomic<bool>*` token
// so cancellation can be threaded into exec::ParallelFor without the
// callee knowing about budgets.
//
// Thread-safety: all members are atomics; a single WorkBudget may be
// polled and charged from any number of threads concurrently. Cancel()
// may be called from outside the compiling thread(s).

#ifndef CTSDD_UTIL_BUDGET_H_
#define CTSDD_UTIL_BUDGET_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>

#include "obs/trace.h"
#include "util/status.h"

namespace ctsdd {

class WorkBudget {
 public:
  // `node_budget` = 0 means unlimited nodes; `deadline_ms` <= 0 means no
  // deadline. A budget with both unlimited still honours Cancel().
  explicit WorkBudget(uint64_t node_budget, double deadline_ms = 0)
      : node_budget_(node_budget),
        has_deadline_(deadline_ms > 0),
        deadline_(std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          deadline_ms > 0 ? deadline_ms : 0))) {}

  WorkBudget(const WorkBudget&) = delete;
  WorkBudget& operator=(const WorkBudget&) = delete;

  // Trips the budget from outside. The default reason models a client
  // disconnect; callers that abort for a different typed cause (a
  // supervisor failing a hung shard's in-flight compile with
  // kUnavailable, a fault action simulating budget exhaustion with
  // kResourceExhausted) pass their own code so the unwind stays typed.
  void Cancel(StatusCode code = StatusCode::kCancelled) { Trip(code); }

  bool tripped() const {
    return tripped_flag_.load(std::memory_order_relaxed);
  }

  // Address of the tripped flag, for exec::ParallelFor-style cancel
  // tokens. Valid for the lifetime of the budget.
  const std::atomic<bool>* token() const { return &tripped_flag_; }

  // First trip reason, or kOk if not tripped.
  StatusCode reason() const {
    return static_cast<StatusCode>(reason_.load(std::memory_order_acquire));
  }

  // Status describing why the budget tripped (Ok if it has not).
  Status status() const {
    switch (reason()) {
      case StatusCode::kResourceExhausted:
        return Status::ResourceExhausted("node budget exhausted");
      case StatusCode::kDeadlineExceeded:
        return Status::DeadlineExceeded("compile deadline exceeded");
      case StatusCode::kCancelled:
        return Status::Cancelled("compile cancelled");
      case StatusCode::kUnavailable:
        return Status::Unavailable("compile cancelled: shard unavailable");
      default:
        return Status::Ok();
    }
  }

  // Marks this budget's trip as memory-pressure-caused (set by the
  // memory governor just before Cancel(kResourceExhausted)). Serving
  // uses the marker to keep pressure rejects out of the poison
  // quarantine: a compile denied for process memory says nothing about
  // the query. Sticky for the budget's lifetime.
  void MarkMemoryPressure() {
    memory_pressure_.store(true, std::memory_order_release);
  }
  bool memory_pressure() const {
    return memory_pressure_.load(std::memory_order_acquire);
  }

  // Binds a liveness pulse: every granted lease bumps `*pulse`. Shard
  // supervision reads the same counter as the worker's heartbeat, so a
  // long compile that is still allocating reads as progress while a
  // stalled one goes stale. Bind before handing the budget to any
  // compiling thread (binding is not synchronized against leases).
  void BindPulse(std::atomic<uint64_t>* pulse) { pulse_ = pulse; }

  // Attaches the owning request's trace context so lease grants show up
  // as span events under the request's compile span when the tracer is
  // armed. Set before handing the budget to any compiling thread.
  void SetTraceContext(obs::TraceContext ctx) { trace_ctx_ = ctx; }

  // Charges up to `want` node allocations; returns how many were
  // granted (0 if the budget is tripped or exhausted). A short grant
  // (< want) means the budget boundary was reached: the caller may
  // allocate the granted count and must re-lease afterwards.
  uint64_t AcquireLease(uint64_t want) {
    if (pulse_ != nullptr) pulse_->fetch_add(1, std::memory_order_relaxed);
    if (tripped()) return 0;
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      Trip(StatusCode::kDeadlineExceeded);
      return 0;
    }
    if (node_budget_ == 0) {
      if (obs::TraceArmed()) {
        obs::TraceInstant("compile", "budget.lease", trace_ctx_, "granted",
                          want);
      }
      return want;
    }
    const uint64_t old = used_.fetch_add(want, std::memory_order_relaxed);
    if (old >= node_budget_) {
      Trip(StatusCode::kResourceExhausted);
      if (obs::TraceArmed()) {
        obs::TraceInstant("compile", "budget.exhausted", trace_ctx_, "used",
                          old);
      }
      return 0;
    }
    const uint64_t granted = std::min(want, node_budget_ - old);
    if (obs::TraceArmed()) {
      obs::TraceInstant("compile", "budget.lease", trace_ctx_, "granted",
                        granted);
    }
    return granted;
  }

  // Amortized deadline/cancel poll: cheap counter bump, with the clock
  // read every 256th call. Returns false once tripped.
  bool CheckPoint() {
    if (tripped()) return false;
    if (!has_deadline_) return true;
    if ((polls_.fetch_add(1, std::memory_order_relaxed) & 0xFF) != 0) {
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline_) {
      Trip(StatusCode::kDeadlineExceeded);
      return false;
    }
    return true;
  }

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t node_budget() const { return node_budget_; }

 private:
  void Trip(StatusCode code) {
    int expected = 0;
    reason_.compare_exchange_strong(expected, static_cast<int>(code),
                                    std::memory_order_acq_rel);
    tripped_flag_.store(true, std::memory_order_release);
  }

  const uint64_t node_budget_;
  const bool has_deadline_;
  const std::chrono::steady_clock::time_point deadline_;
  std::atomic<uint64_t>* pulse_ = nullptr;
  // Set while quiescent (before compile threads run); read-only after.
  obs::TraceContext trace_ctx_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint32_t> polls_{0};
  std::atomic<int> reason_{0};  // StatusCode of the first trip, 0 = none
  std::atomic<bool> tripped_flag_{false};
  std::atomic<bool> memory_pressure_{false};
};

}  // namespace ctsdd

#endif  // CTSDD_UTIL_BUDGET_H_
