#include "util/random.h"

#include <algorithm>

#include "util/logging.h"

namespace ctsdd {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  CTSDD_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::NextInt(int lo, int hi) {
  CTSDD_CHECK_LE(lo, hi);
  return lo + static_cast<int>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  for (int i = n - 1; i > 0; --i) {
    const int j = static_cast<int>(NextBelow(static_cast<uint64_t>(i) + 1));
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

}  // namespace ctsdd
