#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace ctsdd {
namespace internal_logging {

void DieBecause(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "%s:%d: CHECK failed: %s\n", file, line,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

CheckFailureStream::CheckFailureStream(const char* file, int line,
                                       const char* condition)
    : file_(file), line_(line) {
  stream_ << condition;
}

CheckFailureStream::~CheckFailureStream() {
  DieBecause(file_, line_, stream_.str());
}

}  // namespace internal_logging
}  // namespace ctsdd
