// Open-addressed exact memo table scoped to one logical operation.
//
// Complements util/computed_cache.h: the computed cache is bounded and
// lossy (eviction costs recomputation), while recursive apply algorithms
// need an *exact* memo within a single top-level operation to keep their
// polynomial complexity bound. This table provides that at array speed:
// linear probing over flat slots, O(1) generational reset between
// operations (stale slots read as free), and a high-water trim so one
// giant operation does not pin its peak footprint forever.
//
// Exactness holds within a generation: nothing goes stale mid-operation,
// so probe sequences are stable and an inserted key is always found.
//
// Concurrent protocol (exec-managed parallel regions): the memo is
// lock-striped by hash — BeginConcurrent() activates kStripes shards,
// each an independent probe array guarded by its own spinlock, selected
// by the hash's top bits (the low bits index within the shard). A probe
// chain therefore never leaves its stripe, and one short critical
// section covers lookup, insert, and any in-shard growth. LookupC /
// InsertC are the striped entry points; sequential Lookup/Insert/Upsert
// stay lock-free on a separate inline table and must not interleave with
// them (the managers' parallel-region contract — memos are reset between
// operations, so no entry outlives the protocol it was written under).

#ifndef CTSDD_UTIL_SCOPED_MEMO_H_
#define CTSDD_UTIL_SCOPED_MEMO_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/mem_governor.h"
#include "util/spinlock.h"

namespace ctsdd {

// Key must be equality-comparable and cheap to copy.
template <typename Key, typename Value = int32_t>
class ScopedMemo {
 public:
  // The slot arrays are allocated lazily on the first Insert, so managers
  // that never run an apply pay nothing for the memo.
  explicit ScopedMemo(size_t trim_slots = 1 << 20) {
    trim_slots_ = kInitialSlots;
    while (trim_slots_ < trim_slots) trim_slots_ <<= 1;
  }

  ~ScopedMemo() {
    ChargeBytes(-static_cast<int64_t>(num_slots() * sizeof(Slot)));
  }

  // Attaches the governor account (releasing from any previous one).
  // Memo growth is *mandatory* — linear probing needs headroom for
  // exactness — so it is charged, never denied; the managers' admission
  // burst margin covers it. Attach while quiescent; growth charges may
  // come from stripe threads (the account is atomic).
  void SetMemAccount(MemAccount* account) {
    const int64_t held = static_cast<int64_t>(num_slots() * sizeof(Slot));
    ChargeBytes(-held);
    account_ = account;
    ChargeBytes(held);
  }

  size_t MemoryBytes() const { return num_slots() * sizeof(Slot); }

  // Starts a new operation: invalidates every entry in O(1) and releases
  // excess capacity left behind by an unusually large previous operation.
  void Reset() {
    ++generation_;
    ResetShard(&seq_, trim_slots_);
    // The trim budget bounds the whole memo, not each stripe: divide it
    // across the stripes so a large parallel region cannot leave
    // kStripes x trim_slots_ resident behind.
    const size_t stripe_trim =
        std::max(kInitialSlots, trim_slots_ / kStripes);
    for (Shard& shard : stripes_) ResetShard(&shard, stripe_trim);
  }

  // Invalidates all entries and releases the slot arrays entirely (they
  // are re-allocated lazily at the initial size on the next Insert).
  // Reset() only trims down to `trim_slots`, so a memo sized up by one
  // giant operation keeps that much capacity; Shrink() returns it to
  // baseline for managers entering an idle period.
  void Shrink() {
    ChargeBytes(-static_cast<int64_t>(num_slots() * sizeof(Slot)));
    ++generation_;
    seq_.live = 0;
    seq_.slots.clear();
    seq_.slots.shrink_to_fit();
    stripes_.clear();
    stripes_.shrink_to_fit();
  }

  bool Lookup(uint64_t hash, const Key& key, Value* out) const {
    ++lookups_;
    if (LookupIn(seq_, hash, key, out)) {
      ++hits_;
      return true;
    }
    return false;
  }

  // Inserts the key or overwrites the value stored under an equal key.
  // Branch-and-bound dominance memos use this to tighten a state's bound
  // in place when the search re-reaches it along a better prefix.
  void Upsert(uint64_t hash, const Key& key, Value value) {
    Shard& shard = seq_;
    if (!shard.slots.empty()) {
      const size_t mask = shard.slots.size() - 1;
      for (size_t i = hash & mask;; i = (i + 1) & mask) {
        Slot& slot = shard.slots[i];
        if (slot.stamp != generation_) break;  // free (empty or stale)
        if (slot.key == key) {
          slot.value = std::move(value);
          return;
        }
      }
    }
    Insert(hash, key, std::move(value));
  }

  // Inserts a key not currently present (callers always Lookup first).
  void Insert(uint64_t hash, Key key, Value value) {
    InsertIn(&seq_, hash, std::move(key), std::move(value));
  }

  // --- Concurrent protocol (see file comment) ---------------------------

  void BeginConcurrent() {
    if (locks_ == nullptr) {
      locks_ = std::make_unique<SpinLock[]>(kStripes);
    }
    if (stripes_.size() < kStripes) stripes_.resize(kStripes);
    concurrent_ = true;
  }

  void EndConcurrent() { concurrent_ = false; }
  bool concurrent() const { return concurrent_; }

  bool LookupC(uint64_t hash, const Key& key, Value* out) const {
    c_lookups_.fetch_add(1, std::memory_order_relaxed);
    const size_t stripe = StripeOf(hash);
    SpinLockGuard guard(locks_[stripe]);
    if (LookupIn(stripes_[stripe], hash, key, out)) {
      c_hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  // Insert-or-overwrite: two workers may race to compute the same key
  // (both missed before either finished); the results are identical —
  // canonical node ids — so last-writer-wins is exact, not lossy.
  void InsertC(uint64_t hash, Key key, Value value) {
    const size_t stripe = StripeOf(hash);
    SpinLockGuard guard(locks_[stripe]);
    Shard& shard = stripes_[stripe];
    if (!shard.slots.empty()) {
      const size_t mask = shard.slots.size() - 1;
      for (size_t i = hash & mask;; i = (i + 1) & mask) {
        Slot& slot = shard.slots[i];
        if (slot.stamp != generation_) break;
        if (slot.key == key) {
          slot.value = std::move(value);
          return;
        }
      }
    }
    InsertIn(&shard, hash, std::move(key), std::move(value));
  }

  size_t num_slots() const {
    size_t total = seq_.slots.size();
    for (const Shard& shard : stripes_) total += shard.slots.size();
    return total;
  }
  // Cumulative across generations (Reset does not clear them): memo
  // effectiveness counters for manager-level stats reporting.
  uint64_t lookups() const {
    return lookups_ + c_lookups_.load(std::memory_order_relaxed);
  }
  uint64_t hits() const {
    return hits_ + c_hits_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kInitialSlots = 1 << 8;
  static constexpr size_t kStripes = 64;

  struct Slot {
    uint64_t hash = 0;
    Key key{};
    Value value{};
    uint64_t stamp = 0;  // slot is live iff stamp == generation_
  };

  struct Shard {
    std::vector<Slot> slots;
    size_t live = 0;
  };

  void ResetShard(Shard* shard, size_t trim) {
    shard->live = 0;
    if (shard->slots.size() > trim) {
      ChargeBytes(-static_cast<int64_t>(
          (shard->slots.size() - trim) * sizeof(Slot)));
      shard->slots.assign(trim, Slot{});
      // assign leaves stamp 0 everywhere; generation_ > 0 keeps them
      // free.
    }
  }

  static size_t StripeOf(uint64_t hash) {
    // Top bits pick the stripe; the low bits index within the shard, so
    // the two selections stay independent.
    return hash >> 58;  // 64 - log2(kStripes)
  }

  bool LookupIn(const Shard& shard, uint64_t hash, const Key& key,
                Value* out) const {
    if (shard.slots.empty()) return false;
    const size_t mask = shard.slots.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      const Slot& slot = shard.slots[i];
      if (slot.stamp != generation_) return false;  // free (empty/stale)
      if (slot.key == key) {
        *out = slot.value;
        return true;
      }
    }
  }

  void InsertIn(Shard* shard, uint64_t hash, Key key, Value value) {
    if (shard->slots.empty()) {
      shard->slots.resize(kInitialSlots);
      ChargeBytes(static_cast<int64_t>(kInitialSlots * sizeof(Slot)));
    } else if ((shard->live + 1) * 3 > shard->slots.size() * 2) {
      GrowShard(shard);
    }
    InsertNoGrow(shard, hash, std::move(key), std::move(value));
    ++shard->live;
  }

  void InsertNoGrow(Shard* shard, uint64_t hash, Key key, Value value) {
    const size_t mask = shard->slots.size() - 1;
    size_t i = hash & mask;
    while (shard->slots[i].stamp == generation_) i = (i + 1) & mask;
    shard->slots[i] = {hash, std::move(key), std::move(value), generation_};
  }

  void GrowShard(Shard* shard) {
    std::vector<Slot> old = std::move(shard->slots);
    shard->slots.assign(old.size() * 2, Slot{});
    ChargeBytes(static_cast<int64_t>(old.size() * sizeof(Slot)));
    for (Slot& s : old) {
      if (s.stamp != generation_) continue;
      InsertNoGrow(shard, s.hash, std::move(s.key), std::move(s.value));
    }
  }

  void ChargeBytes(int64_t delta) {
    if (account_ != nullptr && delta != 0) {
      account_->Charge(MemLayer::kMemo, delta);
    }
  }

  // The single-owner table lives inline (the original flat layout: one
  // pointer load per probe); the lock-striped tables exist only once
  // BeginConcurrent ran. Entries never migrate between the two — memos
  // are reset between operations, and an operation runs under exactly
  // one protocol.
  Shard seq_;
  std::vector<Shard> stripes_;
  MemAccount* account_ = nullptr;
  size_t trim_slots_ = 0;
  uint64_t generation_ = 1;
  mutable uint64_t lookups_ = 0;
  mutable uint64_t hits_ = 0;
  // Concurrent-protocol state, separate so the sequential hot path never
  // pays an atomic increment.
  std::unique_ptr<SpinLock[]> locks_;
  bool concurrent_ = false;
  mutable std::atomic<uint64_t> c_lookups_{0};
  mutable std::atomic<uint64_t> c_hits_{0};
};

}  // namespace ctsdd

#endif  // CTSDD_UTIL_SCOPED_MEMO_H_
