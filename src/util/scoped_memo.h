// Open-addressed exact memo table scoped to one logical operation.
//
// Complements util/computed_cache.h: the computed cache is bounded and
// lossy (eviction costs recomputation), while recursive apply algorithms
// need an *exact* memo within a single top-level operation to keep their
// polynomial complexity bound. This table provides that at array speed:
// linear probing over flat slots, O(1) generational reset between
// operations (stale slots read as free), and a high-water trim so one
// giant operation does not pin its peak footprint forever.
//
// Exactness holds within a generation: nothing goes stale mid-operation,
// so probe sequences are stable and an inserted key is always found.

#ifndef CTSDD_UTIL_SCOPED_MEMO_H_
#define CTSDD_UTIL_SCOPED_MEMO_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ctsdd {

// Key must be equality-comparable and cheap to copy.
template <typename Key, typename Value = int32_t>
class ScopedMemo {
 public:
  // The slot array is allocated lazily on the first Insert, so managers
  // that never run an apply pay nothing for the memo.
  explicit ScopedMemo(size_t trim_slots = 1 << 20) {
    trim_slots_ = kInitialSlots;
    while (trim_slots_ < trim_slots) trim_slots_ <<= 1;
  }

  // Starts a new operation: invalidates every entry in O(1) and releases
  // excess capacity left behind by an unusually large previous operation.
  void Reset() {
    ++generation_;
    live_ = 0;
    if (slots_.size() > trim_slots_) {
      slots_.assign(trim_slots_, Slot{});
      // assign leaves stamp 0 everywhere; generation_ > 0 keeps them free.
    }
  }

  // Invalidates all entries and releases the slot array entirely (it is
  // re-allocated lazily at the initial size on the next Insert). Reset()
  // only trims down to `trim_slots`, so a memo sized up by one giant
  // operation keeps that much capacity; Shrink() returns it to baseline
  // for managers entering an idle period.
  void Shrink() {
    ++generation_;
    live_ = 0;
    slots_.clear();
    slots_.shrink_to_fit();
  }

  bool Lookup(uint64_t hash, const Key& key, Value* out) const {
    ++lookups_;
    if (slots_.empty()) return false;
    const size_t mask = slots_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      const Slot& slot = slots_[i];
      if (slot.stamp != generation_) return false;  // free (empty or stale)
      if (slot.key == key) {
        *out = slot.value;
        ++hits_;
        return true;
      }
    }
  }

  // Inserts the key or overwrites the value stored under an equal key.
  // Branch-and-bound dominance memos use this to tighten a state's bound
  // in place when the search re-reaches it along a better prefix.
  void Upsert(uint64_t hash, const Key& key, Value value) {
    if (!slots_.empty()) {
      const size_t mask = slots_.size() - 1;
      for (size_t i = hash & mask;; i = (i + 1) & mask) {
        Slot& slot = slots_[i];
        if (slot.stamp != generation_) break;  // free (empty or stale)
        if (slot.key == key) {
          slot.value = std::move(value);
          return;
        }
      }
    }
    Insert(hash, key, std::move(value));
  }

  // Inserts a key not currently present (callers always Lookup first).
  void Insert(uint64_t hash, Key key, Value value) {
    if (slots_.empty()) {
      slots_.resize(kInitialSlots);
    } else if ((live_ + 1) * 3 > slots_.size() * 2) {
      Grow();
    }
    InsertNoGrow(hash, std::move(key), std::move(value));
    ++live_;
  }

  size_t num_slots() const { return slots_.size(); }
  // Cumulative across generations (Reset does not clear them): memo
  // effectiveness counters for manager-level stats reporting.
  uint64_t lookups() const { return lookups_; }
  uint64_t hits() const { return hits_; }

 private:
  static constexpr size_t kInitialSlots = 1 << 8;

  struct Slot {
    uint64_t hash = 0;
    Key key{};
    Value value{};
    uint64_t stamp = 0;  // slot is live iff stamp == generation_
  };

  void InsertNoGrow(uint64_t hash, Key key, Value value) {
    const size_t mask = slots_.size() - 1;
    size_t i = hash & mask;
    while (slots_[i].stamp == generation_) i = (i + 1) & mask;
    slots_[i] = {hash, std::move(key), std::move(value), generation_};
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    for (Slot& s : old) {
      if (s.stamp != generation_) continue;
      InsertNoGrow(s.hash, std::move(s.key), std::move(s.value));
    }
  }

  std::vector<Slot> slots_;
  size_t trim_slots_ = 0;
  uint64_t generation_ = 1;
  size_t live_ = 0;
  mutable uint64_t lookups_ = 0;
  mutable uint64_t hits_ = 0;
};

}  // namespace ctsdd

#endif  // CTSDD_UTIL_SCOPED_MEMO_H_
