// Library version constants.

#ifndef CTSDD_UTIL_VERSION_H_
#define CTSDD_UTIL_VERSION_H_

namespace ctsdd {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace ctsdd

#endif  // CTSDD_UTIL_VERSION_H_
