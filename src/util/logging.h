// CHECK macros and minimal logging for invariant enforcement.
//
// CHECK(cond) aborts the process with a diagnostic when `cond` is false.
// These guard programming errors (violated invariants), not recoverable
// conditions — those go through util/status.h.

#ifndef CTSDD_UTIL_LOGGING_H_
#define CTSDD_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace ctsdd {
namespace internal_logging {

// Aborts the process after printing `file:line: message` to stderr.
[[noreturn]] void DieBecause(const char* file, int line,
                             const std::string& message);

// Stream collector used by the CHECK macros to build failure messages.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* file, int line, const char* condition);
  [[noreturn]] ~CheckFailureStream();

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace ctsdd

#define CTSDD_CHECK(cond)                                             \
  while (!(cond))                                                     \
  ::ctsdd::internal_logging::CheckFailureStream(__FILE__, __LINE__, #cond)

#define CTSDD_CHECK_EQ(a, b) CTSDD_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define CTSDD_CHECK_NE(a, b) CTSDD_CHECK((a) != (b))
#define CTSDD_CHECK_LT(a, b) CTSDD_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define CTSDD_CHECK_LE(a, b) CTSDD_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define CTSDD_CHECK_GT(a, b) CTSDD_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define CTSDD_CHECK_GE(a, b) CTSDD_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

// Checks that a Status-returning expression is OK.
#define CTSDD_CHECK_OK(expr)                          \
  do {                                                \
    const ::ctsdd::Status _s = (expr);                \
    CTSDD_CHECK(_s.ok()) << _s.ToString();            \
  } while (0)

#endif  // CTSDD_UTIL_LOGGING_H_
