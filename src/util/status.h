// Lightweight Status / StatusOr error-handling primitives.
//
// The library's public API reports recoverable errors through Status and
// StatusOr<T> rather than exceptions, following the conventions of
// production database codebases. Programming errors (violated invariants)
// are handled with CHECK macros from util/logging.h instead.

#ifndef CTSDD_UTIL_STATUS_H_
#define CTSDD_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace ctsdd {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kUnimplemented = 4,
  kInternal = 5,
  kResourceExhausted = 6,
  kFailedPrecondition = 7,
  kDeadlineExceeded = 8,
  kCancelled = 9,
  kUnavailable = 10,
};

// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

// A Status carries a code and, when not OK, an explanatory message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// StatusOr<T> holds either a value of type T or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr ergonomics:
  // `return value;` and `return Status::...;` both work.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : rep_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  // Precondition: ok(). Checked in logging.h-based accessors; here we rely
  // on std::get which throws std::bad_variant_access on misuse in debug use.
  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace ctsdd

// Evaluates `expr` (a Status) and returns it from the enclosing function if
// it is not OK.
#define CTSDD_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::ctsdd::Status _ctsdd_status = (expr);           \
    if (!_ctsdd_status.ok()) return _ctsdd_status;    \
  } while (0)

#endif  // CTSDD_UTIL_STATUS_H_
