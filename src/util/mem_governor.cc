#include "util/mem_governor.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include "util/budget.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace ctsdd {
namespace {

thread_local bool t_fail_next_reservation = false;

}  // namespace

struct MemGovernor::Registry {
  std::mutex mu;
  std::vector<CompileReg> compiles;
};

MemGovernor::Registry& MemGovernor::registry() {
  Registry* reg = registry_.load(std::memory_order_acquire);
  if (reg == nullptr) {
    Registry* fresh = new Registry();
    if (registry_.compare_exchange_strong(reg, fresh,
                                          std::memory_order_acq_rel)) {
      reg = fresh;
    } else {
      delete fresh;  // lost the race; reg holds the winner
    }
  }
  return *reg;
}

MemGovernor::~MemGovernor() {
  // Every attached account and registered compile must already be gone
  // (serving tears shards down before its governor). The registry is
  // only lazily created, so this is usually a null delete.
  delete registry_.load(std::memory_order_acquire);
}

MemGovernor* MemGovernor::Process() {
  static MemGovernor* instance = new MemGovernor();
  return instance;
}

void MemGovernor::SetWatermarks(uint64_t soft_bytes, uint64_t hard_bytes) {
  if (hard_bytes > 0 && soft_bytes == 0) {
    soft_bytes = hard_bytes - hard_bytes / 4;
  }
  soft_.store(soft_bytes, std::memory_order_relaxed);
  hard_.store(hard_bytes, std::memory_order_relaxed);
}

MemGovernor::Tier MemGovernor::tier() const {
  return static_cast<Tier>(tier_.load(std::memory_order_relaxed));
}

void MemGovernor::OnCharge(int64_t delta) {
  const int64_t signed_now =
      bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
  const uint64_t now =
      signed_now > 0 ? static_cast<uint64_t>(signed_now) : 0;
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now,
                                      std::memory_order_relaxed)) {
  }
  const uint64_t hard = hard_.load(std::memory_order_relaxed);
  if (hard == 0) return;
  const uint64_t soft = soft_.load(std::memory_order_relaxed);
  // Critical opens 3/4 of the way from soft to hard: enough runway that
  // admission rejection still precedes any denial storm at the ceiling.
  const uint64_t critical = soft + (hard - std::min(hard, soft)) / 4 * 3;
  const int next = now >= critical ? 2 : (now >= soft ? 1 : 0);
  const int prev = tier_.exchange(next, std::memory_order_relaxed);
  if (next > prev) {
    if (next >= 1 && prev < 1) {
      soft_transitions_.fetch_add(1, std::memory_order_relaxed);
    }
    if (next >= 2 && prev < 2) {
      critical_transitions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (delta > 0 && now > hard) {
    // Every reserving path checks AdmitProjected first, so this is
    // unreachable by construction; counting it keeps the claim testable,
    // and cancel-largest claws the overshoot back immediately.
    hard_breaches_.fetch_add(1, std::memory_order_relaxed);
    CancelLargestCompile();
  }
}

bool MemGovernor::AdmitProjected(uint64_t projected_bytes) {
  if (!enabled()) return true;
  CTSDD_FAULT_POINT_COARSE("mem.reserve");
  if (t_fail_next_reservation) {
    t_fail_next_reservation = false;
    injected_denials_.fetch_add(1, std::memory_order_relaxed);
    admit_denials_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const uint64_t hard = hard_.load(std::memory_order_relaxed);
  if (bytes() + projected_bytes <= hard) return true;
  admit_denials_.fetch_add(1, std::memory_order_relaxed);
  // The denied compile trips itself; also cancel the largest in-flight
  // compile so the bytes backing the denial actually become reclaimable
  // (its partial nodes are garbage at the next collection).
  CancelLargestCompile();
  return false;
}

bool MemGovernor::AllowOptionalGrowth(uint64_t growth_bytes) {
  if (!enabled()) return true;
  const uint64_t soft = soft_.load(std::memory_order_relaxed);
  if (bytes() + growth_bytes <= soft) return true;
  optional_growth_denials_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void MemGovernor::RegisterCompile(WorkBudget* budget,
                                  const MemAccount* account) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.compiles.push_back({budget, account});
}

void MemGovernor::UnregisterCompile(WorkBudget* budget) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (size_t i = 0; i < reg.compiles.size(); ++i) {
    if (reg.compiles[i].budget == budget) {
      reg.compiles[i] = reg.compiles.back();
      reg.compiles.pop_back();
      return;
    }
  }
}

bool MemGovernor::CancelLargestCompile() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  WorkBudget* victim = nullptr;
  uint64_t victim_bytes = 0;
  for (const CompileReg& c : reg.compiles) {
    if (c.budget->tripped()) continue;
    const uint64_t b = c.account != nullptr ? c.account->bytes() : 0;
    if (victim == nullptr || b > victim_bytes) {
      victim = c.budget;
      victim_bytes = b;
    }
  }
  if (victim == nullptr) return false;
  victim->MarkMemoryPressure();
  victim->Cancel(StatusCode::kResourceExhausted);
  compile_cancels_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void MemGovernor::FailNextReservationOnCurrentThread() {
  t_fail_next_reservation = true;
}

}  // namespace ctsdd
