// Chunked node store with stable addresses and lock-free reads.
//
// The managers' node arenas were flat std::vectors: compact and fast, but
// push_back reallocation moves every node — fatal once parallel apply has
// other workers dereferencing node ids mid-insert. This store keeps nodes
// in fixed-size chunks that never move, behind a fixed-capacity inline
// directory of chunk pointers, so operator[] stays valid across any
// concurrent growth:
//
//   - operator[] is one dependent load (chunk pointer, indexed off the
//     store object itself) + the element access — safe on any thread for
//     any id that was *published* to it. The chunk pointers are plain
//     (non-atomic) on purpose: a reader only touches chunk c through an
//     id that was published (release store into a unique table) after
//     EnsureCapacity created c, so the chunk-pointer write happens-before
//     every read of it and there is no data race to order — while plain
//     loads let the compiler hoist and CSE chunk pointers in the apply
//     loops, which atomic accesses would forbid (measured ~1.5x on the
//     ApplyN-heavy workloads). Keeping the directory inline (no growable
//     indirection) holds the loops at vector speed.
//   - PushBack is the sequential append (single-owner mode; the relaxed
//     atomics compile to plain moves).
//   - ClaimBlock(n) is the parallel allocation primitive: each worker
//     claims a block of ids with one fetch_add and bump-allocates inside
//     it, so id allocation is striped per worker and the only shared
//     write is the (rare) block claim. Unused block tails are the
//     claimer's to account for (the managers mark them dead and free-list
//     them when the parallel region ends).
//
// Capacity is kMaxChunks * 2^kChunkBits ids (64M at the defaults, ~32KB
// of inline directory); exceeding it is a CHECK failure, far above any
// workload the managers bound with GC ceilings. Chunks are allocated
// with default-initialization: POD element types leave pages untouched
// until first written, so thousands of tiny short-lived managers (order
// search) pay one ~192KB virtual allocation, not a physical one.

#ifndef CTSDD_UTIL_NODE_STORE_H_
#define CTSDD_UTIL_NODE_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>

#include "util/logging.h"
#include "util/mem_governor.h"

namespace ctsdd {

template <typename T, size_t kChunkBits = 14, size_t kMaxChunks = 4096>
class NodeStore {
 public:
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kChunkMask = kChunkSize - 1;

  NodeStore() {
    for (size_t i = 0; i < kMaxChunks; ++i) chunks_[i] = nullptr;
  }

  ~NodeStore() {
    for (size_t i = 0; i < num_chunks_; ++i) delete[] chunks_[i];
    if (account_ != nullptr && num_chunks_ > 0) {
      account_->Charge(MemLayer::kNodeStore,
                       -static_cast<int64_t>(num_chunks_ * kChunkBytes));
    }
  }

  NodeStore(const NodeStore&) = delete;
  NodeStore& operator=(const NodeStore&) = delete;

  size_t size() const { return size_.load(std::memory_order_relaxed); }

  T& operator[](size_t i) { return chunks_[i >> kChunkBits][i & kChunkMask]; }
  const T& operator[](size_t i) const {
    return chunks_[i >> kChunkBits][i & kChunkMask];
  }

  // Sequential append (single-owner mode). Returns the new id.
  size_t PushBack(T value) {
    const size_t id = size_.load(std::memory_order_relaxed);
    EnsureCapacity(id + 1);
    (*this)[id] = std::move(value);
    size_.store(id + 1, std::memory_order_relaxed);
    return id;
  }

  // Claims `n` fresh consecutive ids (thread-safe); their chunks exist on
  // return. The caller owns initializing every claimed slot — including
  // any tail it ends up not using.
  size_t ClaimBlock(size_t n) {
    const size_t first = size_.fetch_add(n, std::memory_order_relaxed);
    EnsureCapacity(first + n);
    return first;
  }

  // Makes ids [0, upto) addressable without advancing size() — for side
  // stores indexed in lockstep with a primary store (the SDD manager's
  // per-node FastInfo records). Thread-safe.
  void Reserve(size_t upto) { EnsureCapacity(upto); }

  // Memory-governor accounting: charges the already-allocated chunks to
  // `account` (releasing them from any previous account) and every
  // future chunk as it is created. Attach while quiescent or from the
  // owning thread; charges themselves are chunk-granular and ride the
  // grow lock.
  void SetMemAccount(MemAccount* account) {
    std::lock_guard<std::mutex> lock(grow_mu_);
    const int64_t held = static_cast<int64_t>(num_chunks_ * kChunkBytes);
    if (account_ != nullptr && held > 0) {
      account_->Charge(MemLayer::kNodeStore, -held);
    }
    account_ = account;
    if (account_ != nullptr && held > 0) {
      account_->Charge(MemLayer::kNodeStore, held);
    }
  }

  // Recomputed resident bytes, for exactness asserts at quiescent points.
  size_t MemoryBytes() const {
    return chunks_ready_.load(std::memory_order_acquire) * kChunkBytes;
  }

 private:
  static constexpr size_t kChunkBytes = kChunkSize * sizeof(T);

  // Makes every chunk covering ids [0, upto) exist. Thread-safe; cheap
  // when already satisfied (one relaxed load).
  void EnsureCapacity(size_t upto) {
    const size_t chunks_needed = (upto + kChunkSize - 1) >> kChunkBits;
    if (chunks_needed <= chunks_ready_.load(std::memory_order_acquire)) {
      return;
    }
    std::lock_guard<std::mutex> lock(grow_mu_);
    CTSDD_CHECK_LE(chunks_needed, kMaxChunks) << "NodeStore capacity";
    while (num_chunks_ < chunks_needed) {
      // Default-initialization on purpose: POD nodes stay untouched (the
      // owner initializes every id it publishes), so the physical cost
      // of a chunk is paid by use, not by allocation.
      chunks_[num_chunks_] = new T[kChunkSize];
      ++num_chunks_;
      if (account_ != nullptr) {
        account_->Charge(MemLayer::kNodeStore,
                         static_cast<int64_t>(kChunkBytes));
      }
    }
    // The release pairs with the fast-path acquire above: a claimer that
    // sees chunks_ready_ >= needed also sees the chunk pointers. Readers
    // of *published ids* are ordered by the id publication instead (see
    // file comment).
    chunks_ready_.store(num_chunks_, std::memory_order_release);
  }

  std::atomic<size_t> size_{0};
  std::atomic<size_t> chunks_ready_{0};  // fast-path guard
  size_t num_chunks_ = 0;                // guarded by grow_mu_
  MemAccount* account_ = nullptr;        // guarded by grow_mu_
  std::mutex grow_mu_;
  T* chunks_[kMaxChunks];
};

}  // namespace ctsdd

#endif  // CTSDD_UTIL_NODE_STORE_H_
