// Process-wide memory governor: byte-accurate hierarchical accounting
// with watermark-tiered pressure response.
//
// The paper's size bounds are per-diagram promises; a serving process
// composing many shards, manager pools, plan caches, and computed caches
// has no aggregate guarantee — a burst of wide-but-under-budget compiles
// can still drive the process into the kernel OOM killer, the one
// failure a thread supervisor cannot restart its way out of. The
// governor closes that gap with two pieces:
//
//   - MemAccount: a node in an accounting tree (structure -> manager ->
//     shard -> governor). Instrumented containers (util/node_store.h,
//     util/arena.h, util/computed_cache.h, util/scoped_memo.h,
//     util/unique_table.h, serve/plan_cache.h) charge byte deltas at
//     their existing allocation seams — chunk claims, span chunks, slot
//     array growth, table rebuilds — so charges are inherently amortized
//     to chunk granularity: a handful of relaxed fetch_adds per ~16KB
//     allocated, never per node. Every charge propagates up the parent
//     chain; the account a governor is attached to feeds the process
//     total.
//   - MemGovernor: soft/hard watermarks over the process total and the
//     pressure machinery serving needs: a tier snapshot (None / Soft /
//     Critical) that drives the serve-layer shed ladder (shrink caches,
//     force GC, evict unpinned plans, evict idle managers, reject cold
//     compiles typed RESOURCE_EXHAUSTED), deny-before-allocate admission
//     (`AdmitProjected`) consulted at the managers' budget-lease refill
//     seams so a compile that cannot fit its worst-case allocation burst
//     trips *before* allocating — the hard ceiling is never crossed —
//     and a registry of in-flight compiles so the governor can cancel
//     the largest one (`WorkBudget::Cancel(kResourceExhausted)`) when
//     denial alone cannot relieve pressure.
//
// Exactness contract: at every quiescent point (GC end, eviction end),
// an account's bytes() equals the owning structures' recomputed
// MemoryBytes() sums — debug-asserted by the managers and pinned by the
// randomized round-trip tests. All shedding preserves exactness and
// pointer-identical recompiles (shrink/GC/evict are the same operations
// the bounded-serving policy already runs).
//
// Fault site: `mem.reserve` (coarse, always compiled) fires on every
// governed reservation; an armed action may call
// MemGovernor::FailNextReservationOnCurrentThread() to inject a
// byte-level reservation failure into release chaos streams.
//
// Thread-safety: accounts are charged from any thread (relaxed atomics);
// parent links and governor attachment are set while quiescent. The
// governor's queries and counters are lock-free; the compile registry
// takes a small mutex on register/unregister/cancel (compile-granular).

#ifndef CTSDD_UTIL_MEM_GOVERNOR_H_
#define CTSDD_UTIL_MEM_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace ctsdd {

class WorkBudget;
class MemGovernor;

// Accounting layers, reported per-layer in serve stats. kPlanCache covers
// the serve-layer plan-entry overhead (the pinned diagram nodes
// themselves are store/arena bytes of the owning manager).
enum class MemLayer : int {
  kNodeStore = 0,
  kArena = 1,
  kUniqueTable = 2,
  kCache = 3,
  kMemo = 4,
  kPlanCache = 5,
};
inline constexpr int kMemLayerCount = 6;

class MemAccount {
 public:
  MemAccount() = default;
  explicit MemAccount(MemAccount* parent) : parent_(parent) {}
  MemAccount(const MemAccount&) = delete;
  MemAccount& operator=(const MemAccount&) = delete;

  // Structural edits; perform while no charges are in flight.
  void SetParent(MemAccount* parent) { parent_ = parent; }
  void SetGovernor(MemGovernor* governor) { governor_ = governor; }
  MemGovernor* governor() const {
    for (const MemAccount* a = this; a != nullptr; a = a->parent_) {
      if (a->governor_ != nullptr) return a->governor_;
    }
    return nullptr;
  }

  // Charges `delta` bytes (negative to release) against this account and
  // every ancestor; the attached governor (if any, at any level) sees
  // the process-total update.
  void Charge(MemLayer layer, int64_t delta);

  uint64_t bytes() const {
    const int64_t v = total_.load(std::memory_order_relaxed);
    return v > 0 ? static_cast<uint64_t>(v) : 0;
  }
  uint64_t bytes(MemLayer layer) const {
    const int64_t v =
        layers_[static_cast<int>(layer)].load(std::memory_order_relaxed);
    return v > 0 ? static_cast<uint64_t>(v) : 0;
  }

 private:
  MemAccount* parent_ = nullptr;
  MemGovernor* governor_ = nullptr;
  std::atomic<int64_t> total_{0};
  std::atomic<int64_t> layers_[kMemLayerCount] = {};
};

class MemGovernor {
 public:
  // Pressure tiers over the process total. The serve-layer response
  // ladder keys off these: at kSoft shards shed (shrink caches, force
  // GC, evict unpinned plans, evict idle managers) and optional cache
  // growth is denied; at kCritical admission additionally rejects cold
  // compiles typed RESOURCE_EXHAUSTED with a retry hint. The hard
  // ceiling itself is enforced by deny-before-allocate at the lease
  // seams plus cancel-largest — tiers only decide how aggressively to
  // get *out* of pressure.
  enum class Tier : int { kNone = 0, kSoft = 1, kCritical = 2 };

  MemGovernor() = default;
  ~MemGovernor();
  MemGovernor(const MemGovernor&) = delete;
  MemGovernor& operator=(const MemGovernor&) = delete;

  // Process-wide instance (created on first use, never destroyed).
  // Serving embeds its own instance per QueryService so tests stay
  // isolated; standalone tools that want one governor across every
  // manager use this.
  static MemGovernor* Process();

  // hard = 0 disables enforcement (accounting still flows). soft = 0
  // derives soft as 3/4 of hard. Set before traffic flows.
  void SetWatermarks(uint64_t soft_bytes, uint64_t hard_bytes);

  bool enabled() const {
    return hard_.load(std::memory_order_relaxed) > 0;
  }
  uint64_t soft_bytes() const {
    return soft_.load(std::memory_order_relaxed);
  }
  uint64_t hard_bytes() const {
    return hard_.load(std::memory_order_relaxed);
  }
  uint64_t bytes() const {
    const int64_t v = bytes_.load(std::memory_order_relaxed);
    return v > 0 ? static_cast<uint64_t>(v) : 0;
  }
  uint64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

  Tier tier() const;

  // Deny-before-allocate: true iff `projected_bytes` more would still
  // fit under the hard ceiling. Consulted at the managers' lease-refill
  // seams with a worst-case burst estimate; a denial is final for that
  // compile (the caller trips its budget typed RESOURCE_EXHAUSTED with
  // the memory-pressure marker) and cancels the largest registered
  // in-flight compile so pressure actually falls. Hits the
  // `mem.reserve` fault site.
  bool AdmitProjected(uint64_t projected_bytes);

  // True iff a *discretionary* allocation (computed-cache doubling) may
  // proceed: denied at or above the soft watermark. Mandatory growth
  // (unique-table doubling, memo growth) is never denied — it is covered
  // by the admission burst margin instead.
  bool AllowOptionalGrowth(uint64_t growth_bytes);

  // In-flight compile registry for cancel-largest. `account` is the
  // compiling manager's account (its bytes rank the compile).
  void RegisterCompile(WorkBudget* budget, const MemAccount* account);
  void UnregisterCompile(WorkBudget* budget);

  // Cancels the largest registered un-tripped compile, marking its
  // budget memory-pressured. Returns true if one was cancelled.
  bool CancelLargestCompile();

  // Arms a one-shot injected reservation failure on the calling thread:
  // the next AdmitProjected on this thread denies. Designed as the
  // action of a `mem.reserve` fault spec.
  static void FailNextReservationOnCurrentThread();

  // Called by accounts on every charge that reaches this governor.
  void OnCharge(int64_t delta);

  // Monotone counters (process lifetime).
  uint64_t admit_denials() const {
    return admit_denials_.load(std::memory_order_relaxed);
  }
  uint64_t optional_growth_denials() const {
    return optional_growth_denials_.load(std::memory_order_relaxed);
  }
  uint64_t compile_cancels() const {
    return compile_cancels_.load(std::memory_order_relaxed);
  }
  uint64_t injected_denials() const {
    return injected_denials_.load(std::memory_order_relaxed);
  }
  // Entries into the soft / critical tier (rising edges only).
  uint64_t soft_transitions() const {
    return soft_transitions_.load(std::memory_order_relaxed);
  }
  uint64_t critical_transitions() const {
    return critical_transitions_.load(std::memory_order_relaxed);
  }
  // Belt-and-braces: charges observed to land above the hard ceiling.
  // Zero by construction when every allocating path reserves first; the
  // bench and tests gate on it.
  uint64_t hard_breaches() const {
    return hard_breaches_.load(std::memory_order_relaxed);
  }

 private:
  struct CompileReg {
    WorkBudget* budget;
    const MemAccount* account;
  };

  std::atomic<uint64_t> soft_{0};
  std::atomic<uint64_t> hard_{0};
  std::atomic<int64_t> bytes_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<int> tier_{0};

  std::atomic<uint64_t> admit_denials_{0};
  std::atomic<uint64_t> optional_growth_denials_{0};
  std::atomic<uint64_t> compile_cancels_{0};
  std::atomic<uint64_t> injected_denials_{0};
  std::atomic<uint64_t> soft_transitions_{0};
  std::atomic<uint64_t> critical_transitions_{0};
  std::atomic<uint64_t> hard_breaches_{0};

  // Compile registry; small (one entry per in-flight compile).
  struct Registry;
  Registry& registry();
  std::atomic<Registry*> registry_{nullptr};
};

inline void MemAccount::Charge(MemLayer layer, int64_t delta) {
  if (delta == 0) return;
  for (MemAccount* a = this; a != nullptr; a = a->parent_) {
    a->layers_[static_cast<int>(layer)].fetch_add(
        delta, std::memory_order_relaxed);
    a->total_.fetch_add(delta, std::memory_order_relaxed);
    if (a->governor_ != nullptr) a->governor_->OnCharge(delta);
  }
}

}  // namespace ctsdd

#endif  // CTSDD_UTIL_MEM_GOVERNOR_H_
