// Bounded, lossy computed cache for memoizing decision-diagram operations
// (ITE, Apply, negation, n-ary folds) — the CUDD-style "computed table".
//
// Unlike the unique table, entries here are advisory: a miss only costs a
// recomputation, so the cache is a direct-mapped array that overwrites on
// collision. To avoid conflict thrash on apply-heavy workloads whose live
// result set exceeds the initial array, the table doubles itself when
// evictions of live entries pile up — but only up to the caller-supplied
// slot bound, so memory stays bounded no matter how long an operation
// sequence runs (the guarantee the unbounded std::unordered_map caches it
// replaces could not give). Clear() is generational: a stamp bump
// invalidates every entry in O(1) without touching the array.
//
// Concurrent protocol (exec-managed parallel regions): BeginConcurrent()
// freezes the slot array (growth would move entries under readers) and
// arms a lock stripe; LookupC/StoreC guard each probe with the spinlock
// of the slot's stripe — a slot maps to exactly one stripe, so one short
// critical section covers the whole read-check or overwrite. Losing an
// entry to a racing overwrite only costs recomputation, exactly like
// eviction. Sequential Lookup/Store never touch a lock and are unchanged;
// the two protocols must not interleave (the managers' parallel-region
// contract).

#ifndef CTSDD_UTIL_COMPUTED_CACHE_H_
#define CTSDD_UTIL_COMPUTED_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/mem_governor.h"
#include "util/spinlock.h"

namespace ctsdd {

// Key must be equality-comparable and cheap to copy or move.
template <typename Key, typename Value = int32_t>
class ComputedCache {
 public:
  // `max_slots` is the hard size bound. The array starts at `init_slots`
  // (clamped to the bound) and doubles under eviction pressure until it
  // reaches the bound. The slot array is allocated lazily on the first
  // Store, so managers that never exercise an operation (or tiny
  // short-lived managers, of which order-search loops create thousands)
  // pay nothing for the cache. Raise `init_slots` for caches whose misses
  // trigger cascading recomputation (e.g. the SDD semantic node cache),
  // where warm-up thrash at the default size is costlier than the array.
  explicit ComputedCache(size_t max_slots = 1 << 22,
                         size_t init_slots = kInitialSlots) {
    max_slots_ = 2;
    while (max_slots_ < max_slots) max_slots_ <<= 1;
    init_slots_ = 2;
    while (init_slots_ < init_slots) init_slots_ <<= 1;
    init_slots_ = std::min(init_slots_, max_slots_);
  }

  ~ComputedCache() {
    if (account_ != nullptr && charged_bytes_ > 0) {
      account_->Charge(MemLayer::kCache,
                       -static_cast<int64_t>(charged_bytes_));
    }
  }

  // Attaches the governor account. Cache growth is *discretionary*: a
  // miss only costs recomputation, so above the soft watermark the
  // governor denies doubling (and clamps presizes) instead of being
  // charged for it — the one layer that sheds by simply not growing.
  // Sequential-context only (growth never happens inside the striped
  // protocol).
  void SetMemAccount(MemAccount* account) {
    if (account_ != nullptr && charged_bytes_ > 0) {
      account_->Charge(MemLayer::kCache,
                       -static_cast<int64_t>(charged_bytes_));
    }
    account_ = account;
    if (account_ != nullptr && charged_bytes_ > 0) {
      account_->Charge(MemLayer::kCache,
                       static_cast<int64_t>(charged_bytes_));
    }
  }

  size_t MemoryBytes() const { return slots_.size() * sizeof(Slot); }

  size_t num_slots() const { return slots_.size(); }
  size_t max_slots() const { return max_slots_; }
  uint64_t lookups() const {
    return lookups_ + c_lookups_.load(std::memory_order_relaxed);
  }
  uint64_t hits() const {
    return hits_ + c_hits_.load(std::memory_order_relaxed);
  }

  bool Lookup(uint64_t hash, const Key& key, Value* out) {
    ++lookups_;
    if (slots_.empty()) return false;
    const Slot& slot = slots_[hash & (slots_.size() - 1)];
    if (slot.stamp == generation_ && slot.key == key) {
      *out = slot.value;
      ++hits_;
      return true;
    }
    return false;
  }

  void Store(uint64_t hash, Key key, Value value) {
    if (slots_.empty()) {
      // Under soft-watermark pressure the lazy array comes up at the
      // floor instead of the tuned init size; misses recompute.
      const size_t init = AllowGrowthTo(init_slots_)
                              ? init_slots_
                              : std::min(init_slots_, kInitialSlots);
      slots_.resize(init);
      SyncBytes();
    }
    Slot& slot = slots_[hash & (slots_.size() - 1)];
    if (slot.stamp == generation_ && !(slot.key == key)) {
      // Conflict eviction of a live entry: when half the table has been
      // churned since the last resize, the live result set has outgrown
      // the array — double it (within the bound) instead of thrashing.
      if (++evictions_ >= slots_.size() / 2 + 1 &&
          slots_.size() < max_slots_ && AllowGrowthTo(slots_.size() * 2)) {
        Grow();
        Slot& moved = slots_[hash & (slots_.size() - 1)];
        moved.hash = hash;
        moved.key = std::move(key);
        moved.value = std::move(value);
        moved.stamp = generation_;
        return;
      }
    }
    slot.hash = hash;
    slot.key = std::move(key);
    slot.value = std::move(value);
    slot.stamp = generation_;
  }

  // --- Concurrent protocol (see file comment) ---------------------------

  // Arms the stripe locks and pre-sizes the array to at least
  // `min_slots` (clamped to the bound, at least one slot per stripe):
  // the array cannot grow while stripes are live, so warm-up thrash
  // would otherwise be locked in for the whole region.
  void BeginConcurrent(size_t min_slots) {
    if (locks_ == nullptr) {
      locks_ = std::make_unique<SpinLock[]>(kStripes);
    }
    size_t target = std::max<size_t>(min_slots, kStripes);
    target = std::min(target, max_slots_);
    size_t init = init_slots_;
    // The presize is a warm-up optimization (the array is frozen for the
    // region, so thrash would be locked in); under pressure the governor
    // trades that thrash for bytes. One slot per stripe stays mandatory.
    if (!AllowGrowthTo(std::max(target, init))) {
      target = std::min<size_t>(std::max<size_t>(kStripes, kInitialSlots),
                                max_slots_);
      init = target;
    }
    if (slots_.empty()) {
      size_t n = init;
      while (n < target) n <<= 1;
      slots_.resize(std::min(n, max_slots_));
    }
    while (slots_.size() < target) Grow();
    SyncBytes();
    concurrent_ = true;
  }

  void EndConcurrent() { concurrent_ = false; }
  bool concurrent() const { return concurrent_; }

  bool LookupC(uint64_t hash, const Key& key, Value* out) {
    c_lookups_.fetch_add(1, std::memory_order_relaxed);
    const size_t index = hash & (slots_.size() - 1);
    SpinLockGuard guard(locks_[index & (kStripes - 1)]);
    const Slot& slot = slots_[index];
    if (slot.stamp == generation_ && slot.key == key) {
      *out = slot.value;
      c_hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  void StoreC(uint64_t hash, Key key, Value value) {
    const size_t index = hash & (slots_.size() - 1);
    SpinLockGuard guard(locks_[index & (kStripes - 1)]);
    Slot& slot = slots_[index];
    slot.hash = hash;
    slot.key = std::move(key);
    slot.value = std::move(value);
    slot.stamp = generation_;
  }

  // Invalidates all entries in O(1).
  void Clear() { ++generation_; }

  // Invalidates all entries AND returns the slot array to its initial
  // footprint (the array is re-allocated lazily at `init_slots` on the
  // next Store). Clear() alone never releases capacity, so a cache that
  // sized up under one workload's eviction pressure would pin its peak
  // footprint for the manager's lifetime — long-running services call
  // this from the managers' ShrinkCaches() after garbage collection.
  void Shrink() {
    ++generation_;
    evictions_ = 0;
    slots_.clear();
    slots_.shrink_to_fit();
    SyncBytes();
  }

 private:
  static constexpr size_t kInitialSlots = 1 << 8;
  static constexpr size_t kStripes = 64;

  struct Slot {
    uint64_t hash = 0;  // retained so live entries can move on Grow()
    Key key{};
    Value value{};
    uint32_t stamp = 0;  // entry is live iff stamp == generation_
  };

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    for (Slot& s : old) {
      if (s.stamp != generation_) continue;
      slots_[s.hash & (slots_.size() - 1)] = std::move(s);
    }
    evictions_ = 0;
    SyncBytes();
  }

  // True iff sizing the slot array to `target_slots` is within the
  // governor's discretionary-growth allowance (always true ungoverned).
  bool AllowGrowthTo(size_t target_slots) const {
    if (account_ == nullptr || target_slots <= slots_.size()) return true;
    MemGovernor* gov = account_->governor();
    if (gov == nullptr) return true;
    return gov->AllowOptionalGrowth(
        (target_slots - slots_.size()) * sizeof(Slot));
  }

  void SyncBytes() {
    const size_t now = slots_.size() * sizeof(Slot);
    if (account_ != nullptr && now != charged_bytes_) {
      account_->Charge(MemLayer::kCache, static_cast<int64_t>(now) -
                                             static_cast<int64_t>(
                                                 charged_bytes_));
    }
    charged_bytes_ = now;
  }

  std::vector<Slot> slots_;
  size_t max_slots_ = 0;
  size_t init_slots_ = kInitialSlots;
  size_t charged_bytes_ = 0;
  MemAccount* account_ = nullptr;
  uint32_t generation_ = 1;
  uint64_t lookups_ = 0;
  uint64_t hits_ = 0;
  uint64_t evictions_ = 0;
  // Concurrent-protocol state: stripe locks (allocated on first use) and
  // counters kept separate so the sequential hot path never pays an
  // atomic increment.
  std::unique_ptr<SpinLock[]> locks_;
  bool concurrent_ = false;
  std::atomic<uint64_t> c_lookups_{0};
  std::atomic<uint64_t> c_hits_{0};
};

}  // namespace ctsdd

#endif  // CTSDD_UTIL_COMPUTED_CACHE_H_
