// Bounded, lossy computed cache for memoizing decision-diagram operations
// (ITE, Apply, negation, n-ary folds) — the CUDD-style "computed table".
//
// Unlike the unique table, entries here are advisory: a miss only costs a
// recomputation, so the cache is a direct-mapped array that overwrites on
// collision. To avoid conflict thrash on apply-heavy workloads whose live
// result set exceeds the initial array, the table doubles itself when
// evictions of live entries pile up — but only up to the caller-supplied
// slot bound, so memory stays bounded no matter how long an operation
// sequence runs (the guarantee the unbounded std::unordered_map caches it
// replaces could not give). Clear() is generational: a stamp bump
// invalidates every entry in O(1) without touching the array.

#ifndef CTSDD_UTIL_COMPUTED_CACHE_H_
#define CTSDD_UTIL_COMPUTED_CACHE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ctsdd {

// Key must be equality-comparable and cheap to copy or move.
template <typename Key, typename Value = int32_t>
class ComputedCache {
 public:
  // `max_slots` is the hard size bound. The array starts at `init_slots`
  // (clamped to the bound) and doubles under eviction pressure until it
  // reaches the bound. The slot array is allocated lazily on the first
  // Store, so managers that never exercise an operation (or tiny
  // short-lived managers, of which order-search loops create thousands)
  // pay nothing for the cache. Raise `init_slots` for caches whose misses
  // trigger cascading recomputation (e.g. the SDD semantic node cache),
  // where warm-up thrash at the default size is costlier than the array.
  explicit ComputedCache(size_t max_slots = 1 << 22,
                         size_t init_slots = kInitialSlots) {
    max_slots_ = 2;
    while (max_slots_ < max_slots) max_slots_ <<= 1;
    init_slots_ = 2;
    while (init_slots_ < init_slots) init_slots_ <<= 1;
    init_slots_ = std::min(init_slots_, max_slots_);
  }

  size_t num_slots() const { return slots_.size(); }
  size_t max_slots() const { return max_slots_; }
  uint64_t lookups() const { return lookups_; }
  uint64_t hits() const { return hits_; }

  bool Lookup(uint64_t hash, const Key& key, Value* out) {
    ++lookups_;
    if (slots_.empty()) return false;
    const Slot& slot = slots_[hash & (slots_.size() - 1)];
    if (slot.stamp == generation_ && slot.key == key) {
      *out = slot.value;
      ++hits_;
      return true;
    }
    return false;
  }

  void Store(uint64_t hash, Key key, Value value) {
    if (slots_.empty()) {
      slots_.resize(init_slots_);
    }
    Slot& slot = slots_[hash & (slots_.size() - 1)];
    if (slot.stamp == generation_ && !(slot.key == key)) {
      // Conflict eviction of a live entry: when half the table has been
      // churned since the last resize, the live result set has outgrown
      // the array — double it (within the bound) instead of thrashing.
      if (++evictions_ >= slots_.size() / 2 + 1 &&
          slots_.size() < max_slots_) {
        Grow();
        Slot& moved = slots_[hash & (slots_.size() - 1)];
        moved.hash = hash;
        moved.key = std::move(key);
        moved.value = std::move(value);
        moved.stamp = generation_;
        return;
      }
    }
    slot.hash = hash;
    slot.key = std::move(key);
    slot.value = std::move(value);
    slot.stamp = generation_;
  }

  // Invalidates all entries in O(1).
  void Clear() { ++generation_; }

  // Invalidates all entries AND returns the slot array to its initial
  // footprint (the array is re-allocated lazily at `init_slots` on the
  // next Store). Clear() alone never releases capacity, so a cache that
  // sized up under one workload's eviction pressure would pin its peak
  // footprint for the manager's lifetime — long-running services call
  // this from the managers' ShrinkCaches() after garbage collection.
  void Shrink() {
    ++generation_;
    evictions_ = 0;
    slots_.clear();
    slots_.shrink_to_fit();
  }

 private:
  static constexpr size_t kInitialSlots = 1 << 8;

  struct Slot {
    uint64_t hash = 0;  // retained so live entries can move on Grow()
    Key key{};
    Value value{};
    uint32_t stamp = 0;  // entry is live iff stamp == generation_
  };

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    for (Slot& s : old) {
      if (s.stamp != generation_) continue;
      slots_[s.hash & (slots_.size() - 1)] = std::move(s);
    }
    evictions_ = 0;
  }

  std::vector<Slot> slots_;
  size_t max_slots_ = 0;
  size_t init_slots_ = kInitialSlots;
  uint32_t generation_ = 1;
  uint64_t lookups_ = 0;
  uint64_t hits_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace ctsdd

#endif  // CTSDD_UTIL_COMPUTED_CACHE_H_
