// Wall-clock timer for benchmark harnesses.

#ifndef CTSDD_UTIL_TIMER_H_
#define CTSDD_UTIL_TIMER_H_

#include <chrono>

namespace ctsdd {

// Measures elapsed wall-clock time since construction or the last Reset().
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ctsdd

#endif  // CTSDD_UTIL_TIMER_H_
