// Hash mixing primitives shared by the node-store layer (unique tables,
// computed caches) and anything else that needs fast, well-distributed
// 64-bit hashes of small integer tuples.

#ifndef CTSDD_UTIL_HASHING_H_
#define CTSDD_UTIL_HASHING_H_

#include <cstdint>

namespace ctsdd {

// SplitMix64 finalizer: a full-avalanche bijection on 64-bit words.
inline uint64_t HashMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Incrementally folds `value` into `seed` (boost-style combine with a
// stronger mix). Order-sensitive.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return HashMix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                           (seed >> 2)));
}

inline uint64_t Hash2(uint64_t a, uint64_t b) {
  return HashCombine(HashMix64(a), b);
}

inline uint64_t Hash3(uint64_t a, uint64_t b, uint64_t c) {
  return HashCombine(Hash2(a, b), c);
}

}  // namespace ctsdd

#endif  // CTSDD_UTIL_HASHING_H_
