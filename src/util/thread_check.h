// Debug-build owning-thread assertion for single-threaded components.
//
// Threading contract of this library: ObddManager and SddManager are
// single-threaded — one thread owns a manager and performs every
// operation on it (the serve/ layer enforces this by giving each shard
// worker its own managers). The only object shared between manager
// threads is the process-wide WidthCache, which carries its own mutex.
//
// A ThreadChecker binds to the first thread that calls Check() and
// aborts (CTSDD_CHECK) if any other thread calls it afterwards, catching
// accidental cross-thread sharing in debug builds before it corrupts an
// arena or a unique table. Detach() releases ownership so a manager
// built on one thread can be handed off to another (a shard worker
// adopting a manager constructed by the pool); the next Check() rebinds.
//
// Release builds (NDEBUG) compile the whole thing to nothing.

#ifndef CTSDD_UTIL_THREAD_CHECK_H_
#define CTSDD_UTIL_THREAD_CHECK_H_

#ifndef NDEBUG
#include <atomic>
#include <thread>

#include "util/logging.h"
#endif

namespace ctsdd {

#ifndef NDEBUG

class ThreadChecker {
 public:
  void Check() const {
    const std::thread::id self = std::this_thread::get_id();
    // Atomic bind: two unbound-state racers must not both "win" through
    // an unsynchronized write — the checker's own detection would then
    // hinge on a data race. compare_exchange makes exactly one thread
    // the owner and sends the other into the CHECK below.
    std::thread::id expected{};
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
      return;
    }
    CTSDD_CHECK(expected == self)
        << "single-threaded component used from a second thread "
           "(Detach() before handing it off)";
  }

  // Releases ownership; the next Check() binds to its calling thread.
  void Detach() { owner_.store(std::thread::id{}, std::memory_order_relaxed); }

 private:
  mutable std::atomic<std::thread::id> owner_{};
};

#else  // NDEBUG

class ThreadChecker {
 public:
  void Check() const {}
  void Detach() {}
};

#endif  // NDEBUG

}  // namespace ctsdd

#endif  // CTSDD_UTIL_THREAD_CHECK_H_
