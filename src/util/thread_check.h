// Debug-build owning-thread assertion for single-threaded components.
//
// Threading contract of this library: ObddManager and SddManager are
// single-threaded — one thread owns a manager and performs every
// operation on it (the serve/ layer enforces this by giving each shard
// worker its own managers). The only object shared between manager
// threads is the process-wide WidthCache, which carries its own mutex.
//
// A ThreadChecker binds to the first thread that calls Check() and
// aborts (CTSDD_CHECK) if any other thread calls it afterwards, catching
// accidental cross-thread sharing in debug builds before it corrupts an
// arena or a unique table. Detach() releases ownership so a manager
// built on one thread can be handed off to another (a shard worker
// adopting a manager constructed by the pool); the next Check() rebinds.
//
// Exec-managed escape: inside a parallel region (exec/ work-stealing
// apply/compile), the component is *deliberately* shared — the concurrent
// unique-table and lock-striped cache paths carry the synchronization.
// A ParallelRegion guard suspends the single-owner assertion for exactly
// the region's extent (guards nest), so the assertion stays armed
// everywhere else: any cross-thread touch outside an exec-managed region
// still aborts. Leaving the outermost region releases ownership (the
// next Check() rebinds), matching the Detach() hand-off semantics.
//
// Release builds (NDEBUG) compile the whole thing to nothing.

#ifndef CTSDD_UTIL_THREAD_CHECK_H_
#define CTSDD_UTIL_THREAD_CHECK_H_

#ifndef NDEBUG
#include <atomic>
#include <thread>

#include "util/logging.h"
#endif

namespace ctsdd {

#ifndef NDEBUG

class ThreadChecker {
 public:
  void Check() const {
    if (shared_depth_.load(std::memory_order_relaxed) > 0) return;
    const std::thread::id self = std::this_thread::get_id();
    // Atomic bind: two unbound-state racers must not both "win" through
    // an unsynchronized write — the checker's own detection would then
    // hinge on a data race. compare_exchange makes exactly one thread
    // the owner and sends the other into the CHECK below.
    std::thread::id expected{};
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
      return;
    }
    CTSDD_CHECK(expected == self)
        << "single-threaded component used from a second thread "
           "(Detach() before handing it off)";
  }

  // Releases ownership; the next Check() binds to its calling thread.
  void Detach() { owner_.store(std::thread::id{}, std::memory_order_relaxed); }

  // Shared-mode escape (see ParallelRegion below). Nestable.
  void BeginShared() const {
    shared_depth_.fetch_add(1, std::memory_order_relaxed);
  }
  void EndShared() const {
    if (shared_depth_.fetch_sub(1, std::memory_order_relaxed) == 1) {
      // Release ownership: the next single-threaded Check() rebinds.
      owner_.store(std::thread::id{}, std::memory_order_relaxed);
    }
  }

 private:
  mutable std::atomic<std::thread::id> owner_{};
  mutable std::atomic<int> shared_depth_{0};
};

#else  // NDEBUG

class ThreadChecker {
 public:
  void Check() const {}
  void Detach() {}
  void BeginShared() const {}
  void EndShared() const {}
};

#endif  // NDEBUG

// RAII shared-mode window for a ThreadChecker: while at least one
// ParallelRegion is live, Check() passes on every thread (the exec layer
// owns synchronization there); when the last one ends, ownership resets
// and the single-owner assertion re-arms for whoever touches the
// component next. No-op in release builds, like the checker itself.
class ParallelRegion {
 public:
  explicit ParallelRegion(const ThreadChecker& checker) : checker_(&checker) {
    checker_->BeginShared();
  }
  ~ParallelRegion() { checker_->EndShared(); }

  ParallelRegion(const ParallelRegion&) = delete;
  ParallelRegion& operator=(const ParallelRegion&) = delete;

 private:
  const ThreadChecker* checker_;
};

}  // namespace ctsdd

#endif  // CTSDD_UTIL_THREAD_CHECK_H_
