// Chunked pool arena with stable addresses.
//
// Allocate(n) hands out n contiguous default-constructed slots whose
// address never moves afterwards (chunks are never reallocated), so
// callers can hold pointers/spans across later allocations — the property
// the SDD manager relies on to walk a decision node's elements while
// recursive Apply calls create new nodes. Oversized requests get a
// dedicated chunk. No individual free: the arena lives as long as its
// manager, like the node store itself.
//
// Memory-governor accounting: chunk allocations (the only allocation
// events) charge their exact byte size to an attached MemAccount, and the
// destructor releases the total — so charges are chunk-granular and the
// arena's accounted bytes equal MemoryBytes() at all times.

#ifndef CTSDD_UTIL_ARENA_H_
#define CTSDD_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/mem_governor.h"

namespace ctsdd {

template <typename T, size_t kChunkSize = 4096>
class PoolArena {
 public:
  ~PoolArena() {
    if (account_ != nullptr && bytes_ > 0) {
      account_->Charge(MemLayer::kArena, -static_cast<int64_t>(bytes_));
    }
  }

  // Pointer stays valid for the arena's lifetime.
  T* Allocate(size_t n) {
    if (n == 0) return nullptr;
    if (n > kChunkSize) {
      // Dedicated chunk, spliced in *behind* the active chunk so the
      // current chunk's remaining capacity is not orphaned.
      chunks_.emplace_back(new T[n]);
      ChargeChunk(n);
      T* out = chunks_.back().get();
      if (chunks_.size() >= 2) {
        std::swap(chunks_[chunks_.size() - 2], chunks_.back());
      } else {
        used_ = kChunkSize;  // the dedicated chunk is full; force a new one
      }
      return out;
    }
    if (chunks_.empty() || used_ + n > kChunkSize) {
      chunks_.emplace_back(new T[kChunkSize]);
      ChargeChunk(kChunkSize);
      used_ = 0;
    }
    T* out = chunks_.back().get() + used_;
    used_ += n;
    return out;
  }

  size_t num_chunks() const { return chunks_.size(); }

  // Attaches the governor account (releasing from any previous one).
  // Call from the owning thread; the arena itself is single-owner.
  void SetMemAccount(MemAccount* account) {
    if (account_ != nullptr && bytes_ > 0) {
      account_->Charge(MemLayer::kArena, -static_cast<int64_t>(bytes_));
    }
    account_ = account;
    if (account_ != nullptr && bytes_ > 0) {
      account_->Charge(MemLayer::kArena, static_cast<int64_t>(bytes_));
    }
  }

  // Recomputed resident bytes (tracked at allocation, verified against
  // the account at quiescent points).
  size_t MemoryBytes() const { return bytes_; }

 private:
  void ChargeChunk(size_t n) {
    const size_t chunk_bytes = n * sizeof(T);
    bytes_ += chunk_bytes;
    if (account_ != nullptr) {
      account_->Charge(MemLayer::kArena,
                       static_cast<int64_t>(chunk_bytes));
    }
  }

  std::vector<std::unique_ptr<T[]>> chunks_;
  size_t used_ = 0;
  size_t bytes_ = 0;
  MemAccount* account_ = nullptr;
};

}  // namespace ctsdd

#endif  // CTSDD_UTIL_ARENA_H_
