// Chunked pool arena with stable addresses.
//
// Allocate(n) hands out n contiguous default-constructed slots whose
// address never moves afterwards (chunks are never reallocated), so
// callers can hold pointers/spans across later allocations — the property
// the SDD manager relies on to walk a decision node's elements while
// recursive Apply calls create new nodes. Oversized requests get a
// dedicated chunk. No individual free: the arena lives as long as its
// manager, like the node store itself.

#ifndef CTSDD_UTIL_ARENA_H_
#define CTSDD_UTIL_ARENA_H_

#include <cstddef>
#include <memory>
#include <vector>

namespace ctsdd {

template <typename T, size_t kChunkSize = 4096>
class PoolArena {
 public:
  // Pointer stays valid for the arena's lifetime.
  T* Allocate(size_t n) {
    if (n == 0) return nullptr;
    if (n > kChunkSize) {
      // Dedicated chunk, spliced in *behind* the active chunk so the
      // current chunk's remaining capacity is not orphaned.
      chunks_.emplace_back(new T[n]);
      T* out = chunks_.back().get();
      if (chunks_.size() >= 2) {
        std::swap(chunks_[chunks_.size() - 2], chunks_.back());
      } else {
        used_ = kChunkSize;  // the dedicated chunk is full; force a new one
      }
      return out;
    }
    if (chunks_.empty() || used_ + n > kChunkSize) {
      chunks_.emplace_back(new T[kChunkSize]);
      used_ = 0;
    }
    T* out = chunks_.back().get() + used_;
    used_ += n;
    return out;
  }

  size_t num_chunks() const { return chunks_.size(); }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  size_t used_ = 0;
};

}  // namespace ctsdd

#endif  // CTSDD_UTIL_ARENA_H_
