// Open-addressed unique table for hash-consing decision-diagram nodes.
//
// The table stores (hash, node id) pairs in a power-of-two slot array with
// linear probing; key material lives in the owning manager's node store, so
// a probe is one cache line of table metadata plus the client-supplied
// equality check against the candidate node. This replaces the
// std::unordered_map-of-owning-keys pattern (one heap key per entry, a
// pointer chase per probe) in the managers' hot apply loops.
//
// Usage pattern (no rehash can occur between Find and Insert as long as the
// caller performs no other table operations in between):
//
//   const uint64_t h = <hash of key>;
//   int32_t id = table.Find(h, [&](int32_t cand) { return <key matches cand>; });
//   if (id < 0) {
//     id = <create node>;
//     table.Insert(h, id);
//   }

#ifndef CTSDD_UTIL_UNIQUE_TABLE_H_
#define CTSDD_UTIL_UNIQUE_TABLE_H_

#include <cstdint>
#include <vector>

namespace ctsdd {

class UniqueTable {
 public:
  static constexpr int32_t kEmpty = -1;

  explicit UniqueTable(size_t initial_slots = 1 << 10) {
    size_t n = 16;
    while (n < initial_slots) n <<= 1;
    hashes_.resize(n, 0);
    ids_.resize(n, kEmpty);
  }

  size_t size() const { return size_; }
  size_t num_slots() const { return ids_.size(); }

  // Empties the table, shrinking the slot array to hold `expected_live`
  // entries under the growth load factor (at least the construction-time
  // minimum). Garbage collection uses this to rebuild the table over the
  // surviving nodes: open addressing cannot delete entries in place
  // (tombstones would break the Find/Insert probe contract), so the sweep
  // clears and re-inserts the live set.
  void Clear(size_t expected_live = 0) {
    size_t n = 16;
    while (n * 2 < expected_live * 3) n <<= 1;
    hashes_.assign(n, 0);
    hashes_.shrink_to_fit();
    ids_.assign(n, kEmpty);
    ids_.shrink_to_fit();
    size_ = 0;
  }

  // Returns the id of the entry whose stored hash equals `hash` and for
  // which `eq(id)` is true, or kEmpty.
  template <typename Eq>
  int32_t Find(uint64_t hash, Eq&& eq) const {
    const size_t mask = ids_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      const int32_t id = ids_[i];
      if (id == kEmpty) return kEmpty;
      if (hashes_[i] == hash && eq(id)) return id;
    }
  }

  // Inserts `id` under `hash`. The caller must have checked absence via
  // Find with the same hash (duplicate keys would shadow each other).
  void Insert(uint64_t hash, int32_t id) {
    if ((size_ + 1) * 3 > ids_.size() * 2) Grow();
    InsertNoGrow(hash, id);
    ++size_;
  }

 private:
  void InsertNoGrow(uint64_t hash, int32_t id) {
    const size_t mask = ids_.size() - 1;
    size_t i = hash & mask;
    while (ids_[i] != kEmpty) i = (i + 1) & mask;
    hashes_[i] = hash;
    ids_[i] = id;
  }

  void Grow() {
    std::vector<uint64_t> old_hashes = std::move(hashes_);
    std::vector<int32_t> old_ids = std::move(ids_);
    hashes_.assign(old_ids.size() * 2, 0);
    ids_.assign(old_ids.size() * 2, kEmpty);
    for (size_t i = 0; i < old_ids.size(); ++i) {
      if (old_ids[i] != kEmpty) InsertNoGrow(old_hashes[i], old_ids[i]);
    }
  }

  std::vector<uint64_t> hashes_;
  std::vector<int32_t> ids_;
  size_t size_ = 0;
};

}  // namespace ctsdd

#endif  // CTSDD_UTIL_UNIQUE_TABLE_H_
