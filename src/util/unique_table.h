// Open-addressed unique table for hash-consing decision-diagram nodes.
//
// The table stores (hash, node id) pairs in a power-of-two slot array with
// linear probing; key material lives in the owning manager's node store, so
// a probe is one cache line of table metadata plus the client-supplied
// equality check against the candidate node. This replaces the
// std::unordered_map-of-owning-keys pattern (one heap key per entry, a
// pointer chase per probe) in the managers' hot apply loops.
//
// Two access protocols share the same storage:
//
//  - Single-owner (the managers' default): Find / Insert, no locking. The
//    slots are atomics accessed with relaxed ordering, which compiles to
//    the plain loads/stores of the original flat-array table. Usage
//    pattern (no rehash can occur between Find and Insert as long as the
//    caller performs no other table operations in between):
//
//      const uint64_t h = <hash of key>;
//      int32_t id = table.Find(h, [&](int32_t cand) { return <matches>; });
//      if (id < 0) { id = <create node>; table.Insert(h, id); }
//
//  - Concurrent (exec-managed parallel regions): FindOrInsert performs a
//    CAS-based insert-or-find. A thread that finds no match claims the
//    first empty probe slot by CASing in a reservation, constructs the
//    node (the `make` callback — so exactly one node is ever built per
//    key, no losers to garbage-collect), publishes the id with a release
//    store, and every other thread racing on that key either waits out
//    the reservation or acquires the published id. Canonicity is
//    preserved under any interleaving: for a given key, one slot wins
//    and every caller returns its id. Growth takes the table's
//    shared_mutex exclusively; FindOrInsert holds it shared, so probes
//    never observe a mid-rebuild array.
//
// The two protocols must not run concurrently with each other — that is
// the managers' parallel-region contract, enforced in debug builds by
// util/thread_check.h.

#ifndef CTSDD_UTIL_UNIQUE_TABLE_H_
#define CTSDD_UTIL_UNIQUE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "util/mem_governor.h"

namespace ctsdd {

class UniqueTable {
 public:
  static constexpr int32_t kEmpty = -1;
  // A slot claimed by an in-flight concurrent insert, pre-publication.
  static constexpr int32_t kReserved = -2;

  explicit UniqueTable(size_t initial_slots = 1 << 10) {
    size_t n = 16;
    while (n < initial_slots) n <<= 1;
    Allocate(n);
  }

  ~UniqueTable() {
    if (account_ != nullptr) {
      account_->Charge(MemLayer::kUniqueTable,
                       -static_cast<int64_t>(MemoryBytes()));
    }
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }
  size_t num_slots() const {
    return num_slots_.load(std::memory_order_relaxed);
  }

  // Attaches the governor account (releasing from any previous one).
  // Doubling is mandatory growth — charged, never denied; the managers'
  // admission burst margin budgets for it up front. Attach while
  // quiescent; Allocate charges under the rebuild's exclusivity.
  void SetMemAccount(MemAccount* account) {
    const int64_t held = static_cast<int64_t>(MemoryBytes());
    if (account_ != nullptr) {
      account_->Charge(MemLayer::kUniqueTable, -held);
    }
    account_ = account;
    if (account_ != nullptr) {
      account_->Charge(MemLayer::kUniqueTable, held);
    }
  }

  size_t MemoryBytes() const {
    return num_slots_.load(std::memory_order_relaxed) * kSlotBytes;
  }

  // Empties the table, shrinking the slot array to hold `expected_live`
  // entries under the growth load factor (at least the construction-time
  // minimum). Garbage collection uses this to rebuild the table over the
  // surviving nodes: open addressing cannot delete entries in place
  // (tombstones would break the Find/Insert probe contract), so the sweep
  // clears and re-inserts the live set. Single-owner protocol only.
  void Clear(size_t expected_live = 0) {
    size_t n = 16;
    while (n * 2 < expected_live * 3) n <<= 1;
    Allocate(n);
    size_.store(0, std::memory_order_relaxed);
  }

  // Returns the id of the entry whose stored hash equals `hash` and for
  // which `eq(id)` is true, or kEmpty. Single-owner protocol.
  template <typename Eq>
  int32_t Find(uint64_t hash, Eq&& eq) const {
    const size_t mask = num_slots_.load(std::memory_order_relaxed) - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      const int32_t id = ids_[i].load(std::memory_order_relaxed);
      if (id == kEmpty) return kEmpty;
      if (hashes_[i].load(std::memory_order_relaxed) == hash && eq(id)) {
        return id;
      }
    }
  }

  // Inserts `id` under `hash`. The caller must have checked absence via
  // Find with the same hash (duplicate keys would shadow each other).
  // Single-owner protocol.
  void Insert(uint64_t hash, int32_t id) {
    const size_t slots = num_slots_.load(std::memory_order_relaxed);
    const size_t count = size_.load(std::memory_order_relaxed);
    if ((count + 1) * 3 > slots * 2) {
      GrowLocked(slots * 2);
    }
    InsertNoGrow(hash, id);
    // Plain load+store, not fetch_add: single-owner protocol, and a
    // locked RMW on every node insert costs real throughput.
    size_.store(count + 1, std::memory_order_relaxed);
  }

  // Concurrent insert-or-find: returns the id of the existing entry
  // matching (`hash`, `eq`), or claims a slot, calls `make()` exactly
  // once to construct the node, publishes its id, and returns it. Safe
  // to call from any number of threads; `make` may allocate through the
  // caller's striped arena but must not touch this table.
  template <typename Eq, typename Make>
  int32_t FindOrInsert(uint64_t hash, Eq&& eq, Make&& make) {
    int32_t result = kEmpty;
    bool inserted = false;
    {
      std::shared_lock<std::shared_mutex> lock(resize_mu_);
      const size_t mask = num_slots_.load(std::memory_order_relaxed) - 1;
      size_t i = hash & mask;
      for (;;) {
        int32_t id = ids_[i].load(std::memory_order_acquire);
        if (id == kEmpty) {
          if (ids_[i].compare_exchange_strong(id, kReserved,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
            result = make();
            hashes_[i].store(hash, std::memory_order_relaxed);
            ids_[i].store(result, std::memory_order_release);
            size_.fetch_add(1, std::memory_order_relaxed);
            inserted = true;
            break;
          }
          continue;  // somebody claimed slot i: re-examine it
        }
        if (id == kReserved) {
          // Publication in flight (a handful of stores): wait it out —
          // skipping ahead could duplicate the key being published.
#if defined(__x86_64__) || defined(__i386__)
          __builtin_ia32_pause();
#endif
          continue;
        }
        if (hashes_[i].load(std::memory_order_relaxed) == hash && eq(id)) {
          result = id;
          break;
        }
        i = (i + 1) & mask;
      }
    }
    if (inserted && size_.load(std::memory_order_relaxed) * 3 >
                        num_slots_.load(std::memory_order_relaxed) * 2) {
      std::unique_lock<std::shared_mutex> lock(resize_mu_);
      const size_t slots = num_slots_.load(std::memory_order_relaxed);
      if (size_.load(std::memory_order_relaxed) * 3 > slots * 2) {
        GrowLocked(slots * 2);
      }
    }
    return result;
  }

 private:
  static constexpr size_t kSlotBytes =
      sizeof(std::atomic<uint64_t>) + sizeof(std::atomic<int32_t>);

  void Allocate(size_t n) {
    const size_t old_n = num_slots_.load(std::memory_order_relaxed);
    hashes_ = std::make_unique<std::atomic<uint64_t>[]>(n);
    ids_ = std::make_unique<std::atomic<int32_t>[]>(n);
    for (size_t i = 0; i < n; ++i) {
      hashes_[i].store(0, std::memory_order_relaxed);
      ids_[i].store(kEmpty, std::memory_order_relaxed);
    }
    num_slots_.store(n, std::memory_order_relaxed);
    if (account_ != nullptr && n != old_n) {
      account_->Charge(MemLayer::kUniqueTable,
                       (static_cast<int64_t>(n) -
                        static_cast<int64_t>(old_n)) *
                           static_cast<int64_t>(kSlotBytes));
    }
  }

  void InsertNoGrow(uint64_t hash, int32_t id) {
    const size_t mask = num_slots_.load(std::memory_order_relaxed) - 1;
    size_t i = hash & mask;
    while (ids_[i].load(std::memory_order_relaxed) != kEmpty) {
      i = (i + 1) & mask;
    }
    hashes_[i].store(hash, std::memory_order_relaxed);
    ids_[i].store(id, std::memory_order_relaxed);
  }

  // Rebuilds into `new_slots` slots. Caller holds resize_mu_ exclusively
  // or owns the table outright.
  void GrowLocked(size_t new_slots) {
    std::unique_ptr<std::atomic<uint64_t>[]> old_hashes =
        std::move(hashes_);
    std::unique_ptr<std::atomic<int32_t>[]> old_ids = std::move(ids_);
    const size_t old_n = num_slots_.load(std::memory_order_relaxed);
    Allocate(new_slots);
    for (size_t i = 0; i < old_n; ++i) {
      const int32_t id = old_ids[i].load(std::memory_order_relaxed);
      if (id == kEmpty) continue;
      InsertNoGrow(old_hashes[i].load(std::memory_order_relaxed), id);
    }
  }

  std::unique_ptr<std::atomic<uint64_t>[]> hashes_;
  std::unique_ptr<std::atomic<int32_t>[]> ids_;
  // Relaxed-atomic so the unlocked growth heuristic in FindOrInsert
  // may read it while a resizer writes it; every probe takes a stable
  // local copy inside its lock section.
  std::atomic<size_t> num_slots_{0};
  std::atomic<size_t> size_{0};
  MemAccount* account_ = nullptr;
  std::shared_mutex resize_mu_;
};

}  // namespace ctsdd

#endif  // CTSDD_UTIL_UNIQUE_TABLE_H_
