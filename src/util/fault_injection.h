// Deterministic, seeded fault injection for robustness tests and chaos
// benchmarks.
//
// Production code marks interesting failure points with one of two
// macros; tests arm sites with a FaultSpec (fire at the Nth hit, every
// Nth hit, or probabilistically from a seeded RNG) whose action runs
// inline at the hit — typically cancelling a WorkBudget, sleeping to
// simulate a stall, or requesting the death of a shard worker thread.
//
//   - CTSDD_FAULT_POINT(site): fine-grained sites on allocation-rate hot
//     paths (obdd.alloc, sdd.alloc). Compiled out under NDEBUG so
//     release hot loops carry zero cost; Enabled() reports whether they
//     are live.
//   - CTSDD_FAULT_POINT_COARSE(site): request-granularity sites in the
//     serving layer (serve.shard.*, serve.compile*). Always compiled —
//     the fast path is one relaxed atomic load per request, which lets
//     release-build chaos benchmarks drive hang/death/poison injection.
//
// Arming/disarming takes a mutex; hits on armed sites take the same
// mutex, which is acceptable because faults are only armed in tests and
// chaos runs.

#ifndef CTSDD_UTIL_FAULT_INJECTION_H_
#define CTSDD_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace ctsdd {
namespace fault {

// True when the fine-grained (hot-path) sites are compiled in (debug /
// sanitizer builds). Coarse sites are live in every build.
constexpr bool Enabled() {
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

struct FaultSpec {
  // Fire on the Nth hit of the site (1-based). 0 disables count firing.
  uint64_t fire_at = 0;
  // Fire on every Nth hit (hits divisible by fire_every). 0 disables.
  // Independent of fire_at; the periodic mode drives chaos streams
  // ("hang a shard every ~200 requests").
  uint64_t fire_every = 0;
  // Independently of the count modes, fire each hit with this
  // probability using a deterministic RNG seeded with `seed` (0
  // disables).
  double probability = 0;
  uint64_t seed = 1;
  // Sleep this long when the fault fires (simulated stall / hang).
  int delay_ms = 0;
  // Arbitrary action run when the fault fires (e.g. budget->Cancel() or
  // ShardWorker::RequestDeathOnCurrentThread()).
  std::function<void()> action;
};

// Arms `site`, replacing any existing spec. Resets the hit counter.
void Arm(const std::string& site, FaultSpec spec);

// Disarms one site / all sites.
void Disarm(const std::string& site);
void DisarmAll();

// Number of times the site was hit since it was armed.
uint64_t HitCount(const std::string& site);

// Number of times the site actually fired since it was armed.
uint64_t FireCount(const std::string& site);

// Internal: called by the fault-point macros when any site is armed.
void HitSlow(const char* site);

// Global count of armed sites; the macros' fast-path guard.
extern std::atomic<int> g_armed_count;

// Request-granularity sites: always compiled, one relaxed load when
// nothing is armed.
#define CTSDD_FAULT_POINT_COARSE(site)                                   \
  do {                                                                   \
    if (::ctsdd::fault::g_armed_count.load(std::memory_order_relaxed) >  \
        0) {                                                             \
      ::ctsdd::fault::HitSlow(site);                                     \
    }                                                                    \
  } while (0)

#ifndef NDEBUG
// Hot-path sites: identical to the coarse macro in debug builds,
// nothing in release builds.
#define CTSDD_FAULT_POINT(site) CTSDD_FAULT_POINT_COARSE(site)
#else
#define CTSDD_FAULT_POINT(site) \
  do {                          \
  } while (0)
#endif

}  // namespace fault
}  // namespace ctsdd

#endif  // CTSDD_UTIL_FAULT_INJECTION_H_
