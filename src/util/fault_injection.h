// Deterministic, seeded fault injection for robustness tests.
//
// Production code marks interesting failure points with
// CTSDD_FAULT_POINT("site.name"); tests arm sites with a FaultSpec
// (fire at the Nth hit, or probabilistically from a seeded RNG) whose
// action runs inline at the hit — typically cancelling a WorkBudget or
// sleeping to simulate a stall. In NDEBUG builds the macro compiles to
// nothing and Enabled() is false, so release hot paths carry zero cost.
//
// The fast path when no site is armed is a single relaxed atomic load
// of a global count. Arming/disarming takes a mutex; hits on armed
// sites take the same mutex, which is acceptable because faults are
// only armed in tests.

#ifndef CTSDD_UTIL_FAULT_INJECTION_H_
#define CTSDD_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace ctsdd {
namespace fault {

// True when fault injection is compiled in (debug / sanitizer builds).
constexpr bool Enabled() {
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

struct FaultSpec {
  // Fire on the Nth hit of the site (1-based). 0 disables count firing.
  uint64_t fire_at = 0;
  // Independently of fire_at, fire each hit with this probability using
  // a deterministic RNG seeded with `seed` (0 disables).
  double probability = 0;
  uint64_t seed = 1;
  // Sleep this long when the fault fires (simulated stall).
  int delay_ms = 0;
  // Arbitrary action run when the fault fires (e.g. budget->Cancel()).
  std::function<void()> action;
};

#ifndef NDEBUG

// Arms `site`, replacing any existing spec. Resets the hit counter.
void Arm(const std::string& site, FaultSpec spec);

// Disarms one site / all sites.
void Disarm(const std::string& site);
void DisarmAll();

// Number of times the site was hit since it was armed.
uint64_t HitCount(const std::string& site);

// Internal: called by CTSDD_FAULT_POINT when any site is armed.
void HitSlow(const char* site);

// Global count of armed sites; the macro's fast-path guard.
extern std::atomic<int> g_armed_count;

#define CTSDD_FAULT_POINT(site)                                        \
  do {                                                                 \
    if (::ctsdd::fault::g_armed_count.load(std::memory_order_relaxed) > \
        0) {                                                           \
      ::ctsdd::fault::HitSlow(site);                                   \
    }                                                                  \
  } while (0)

#else  // NDEBUG

inline void Arm(const std::string&, FaultSpec) {}
inline void Disarm(const std::string&) {}
inline void DisarmAll() {}
inline uint64_t HitCount(const std::string&) { return 0; }

#define CTSDD_FAULT_POINT(site) \
  do {                          \
  } while (0)

#endif  // NDEBUG

}  // namespace fault
}  // namespace ctsdd

#endif  // CTSDD_UTIL_FAULT_INJECTION_H_
