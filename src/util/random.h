// Deterministic pseudo-random generation used by tests, generators, and
// benchmarks. All randomness in the library flows through Rng so that every
// experiment is reproducible from a seed.

#ifndef CTSDD_UTIL_RANDOM_H_
#define CTSDD_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace ctsdd {

// SplitMix64-seeded xoshiro256** generator. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over all 64-bit values.
  uint64_t Next64();

  // Uniform in [0, bound). Requires bound > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  // Bernoulli(p) draw; p is clamped to [0, 1].
  bool NextBool(double p = 0.5);

  // Uniform double in [0, 1).
  double NextDouble();

  // A uniformly random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

 private:
  uint64_t state_[4];
};

}  // namespace ctsdd

#endif  // CTSDD_UTIL_RANDOM_H_
