#include "util/fault_injection.h"

#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "util/random.h"

namespace ctsdd {
namespace fault {

std::atomic<int> g_armed_count{0};

namespace {

struct ArmedSite {
  FaultSpec spec;
  uint64_t hits = 0;
  uint64_t fires = 0;
  Rng rng{1};
};

std::mutex& Mutex() {
  static std::mutex mu;
  return mu;
}

std::unordered_map<std::string, ArmedSite>& Registry() {
  static std::unordered_map<std::string, ArmedSite> sites;
  return sites;
}

}  // namespace

void Arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto& registry = Registry();
  auto it = registry.find(site);
  if (it == registry.end()) {
    g_armed_count.fetch_add(1, std::memory_order_relaxed);
    it = registry.emplace(site, ArmedSite{}).first;
  }
  it->second.hits = 0;
  it->second.fires = 0;
  it->second.rng = Rng(spec.seed == 0 ? 1 : spec.seed);
  it->second.spec = std::move(spec);
}

void Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mutex());
  if (Registry().erase(site) > 0) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  g_armed_count.fetch_sub(static_cast<int>(Registry().size()),
                          std::memory_order_relaxed);
  Registry().clear();
}

uint64_t HitCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second.hits;
}

uint64_t FireCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second.fires;
}

void HitSlow(const char* site) {
  std::function<void()> action;
  int delay_ms = 0;
  {
    std::lock_guard<std::mutex> lock(Mutex());
    auto it = Registry().find(site);
    if (it == Registry().end()) return;
    ArmedSite& armed = it->second;
    ++armed.hits;
    bool fire = armed.spec.fire_at != 0 && armed.hits == armed.spec.fire_at;
    if (!fire && armed.spec.fire_every != 0) {
      fire = armed.hits % armed.spec.fire_every == 0;
    }
    if (!fire && armed.spec.probability > 0) {
      fire = armed.rng.NextDouble() < armed.spec.probability;
    }
    if (!fire) return;
    ++armed.fires;
    action = armed.spec.action;  // copy: run outside the lock
    delay_ms = armed.spec.delay_ms;
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  if (action) action();
}

}  // namespace fault
}  // namespace ctsdd
