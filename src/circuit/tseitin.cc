#include "circuit/tseitin.h"

#include "util/logging.h"

namespace ctsdd {

Cnf TseitinCnf(const Circuit& circuit, std::vector<int>* gate_var_of_gate) {
  CTSDD_CHECK_GE(circuit.output(), 0);
  Cnf cnf;
  const int n = circuit.num_vars();
  cnf.num_vars = n;
  // var_of[id] = the CNF variable representing gate id.
  std::vector<int> var_of(circuit.num_gates(), -1);
  auto fresh = [&cnf]() { return cnf.num_vars++; };

  for (int id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    switch (g.kind) {
      case GateKind::kVar:
        var_of[id] = g.var;
        break;
      case GateKind::kConstFalse: {
        var_of[id] = fresh();
        cnf.clauses.push_back({Cnf::NegLit(var_of[id])});
        break;
      }
      case GateKind::kConstTrue: {
        var_of[id] = fresh();
        cnf.clauses.push_back({Cnf::PosLit(var_of[id])});
        break;
      }
      case GateKind::kNot: {
        var_of[id] = fresh();
        const int a = var_of[g.inputs[0]];
        cnf.clauses.push_back({Cnf::NegLit(var_of[id]), Cnf::NegLit(a)});
        cnf.clauses.push_back({Cnf::PosLit(var_of[id]), Cnf::PosLit(a)});
        break;
      }
      case GateKind::kAnd: {
        var_of[id] = fresh();
        const int z = var_of[id];
        std::vector<int> big = {Cnf::PosLit(z)};
        for (int input : g.inputs) {
          const int a = var_of[input];
          cnf.clauses.push_back({Cnf::NegLit(z), Cnf::PosLit(a)});
          big.push_back(Cnf::NegLit(a));
        }
        cnf.clauses.push_back(std::move(big));
        break;
      }
      case GateKind::kOr: {
        var_of[id] = fresh();
        const int z = var_of[id];
        std::vector<int> big = {Cnf::NegLit(z)};
        for (int input : g.inputs) {
          const int a = var_of[input];
          cnf.clauses.push_back({Cnf::PosLit(z), Cnf::NegLit(a)});
          big.push_back(Cnf::PosLit(a));
        }
        cnf.clauses.push_back(std::move(big));
        break;
      }
    }
  }
  // Assert the output.
  cnf.clauses.push_back({Cnf::PosLit(var_of[circuit.output()])});
  if (gate_var_of_gate != nullptr) *gate_var_of_gate = var_of;
  return cnf;
}

Circuit CnfToCircuit(const Cnf& cnf) {
  Circuit circuit;
  circuit.DeclareVars(cnf.num_vars);
  std::vector<int> clause_gates;
  clause_gates.reserve(cnf.clauses.size());
  for (const auto& clause : cnf.clauses) {
    CTSDD_CHECK(!clause.empty()) << "empty clause";
    std::vector<int> lits;
    lits.reserve(clause.size());
    for (int lit : clause) {
      const int vg = circuit.VarGate(Cnf::LitVar(lit));
      lits.push_back(Cnf::LitNegated(lit) ? circuit.NotGate(vg) : vg);
    }
    clause_gates.push_back(lits.size() == 1 ? lits[0]
                                            : circuit.OrGate(std::move(lits)));
  }
  if (clause_gates.empty()) {
    circuit.SetOutput(circuit.ConstGate(true));
  } else if (clause_gates.size() == 1) {
    circuit.SetOutput(clause_gates[0]);
  } else {
    circuit.SetOutput(circuit.AndGate(std::move(clause_gates)));
  }
  return circuit;
}

}  // namespace ctsdd
