// The undirected graph underlying a circuit DAG: one vertex per gate, one
// edge per wire. The paper defines tw(C) as the treewidth of this graph,
// and the circuit treewidth ctw(F) as the minimum over circuits computing F.

#ifndef CTSDD_CIRCUIT_PRIMAL_GRAPH_H_
#define CTSDD_CIRCUIT_PRIMAL_GRAPH_H_

#include "circuit/circuit.h"
#include "graph/graph.h"
#include "util/status.h"

namespace ctsdd {

// Vertex i of the result corresponds to gate i of the circuit.
Graph PrimalGraph(const Circuit& circuit);

// Heuristic upper bound on tw(C) via min-fill elimination.
int HeuristicCircuitTreewidth(const Circuit& circuit);

// Exact tw(C) for circuits with at most kMaxExactVertices gates.
StatusOr<int> ExactCircuitTreewidth(const Circuit& circuit);

}  // namespace ctsdd

#endif  // CTSDD_CIRCUIT_PRIMAL_GRAPH_H_
