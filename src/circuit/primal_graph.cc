#include "circuit/primal_graph.h"

#include "graph/elimination.h"
#include "graph/exact_treewidth.h"

namespace ctsdd {

Graph PrimalGraph(const Circuit& circuit) {
  Graph g(circuit.num_gates());
  for (int id = 0; id < circuit.num_gates(); ++id) {
    for (int input : circuit.gate(id).inputs) {
      g.AddEdge(input, id);
    }
  }
  return g;
}

int HeuristicCircuitTreewidth(const Circuit& circuit) {
  const Graph g = PrimalGraph(circuit);
  return EliminationOrderWidth(
      g, GreedyEliminationOrder(g, EliminationHeuristic::kMinFill));
}

StatusOr<int> ExactCircuitTreewidth(const Circuit& circuit) {
  return ExactTreewidth(PrimalGraph(circuit));
}

}  // namespace ctsdd
