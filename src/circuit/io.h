// Text serialization for circuits and DIMACS CNF parsing.
//
// Circuit format (one gate per line, ids implicit in order):
//   c <comment>
//   vars <n>
//   var <v>                 # input gate labeled with variable v
//   const <0|1>
//   not <gate>
//   and <gate> <gate> ...
//   or <gate> <gate> ...
//   output <gate>

#ifndef CTSDD_CIRCUIT_IO_H_
#define CTSDD_CIRCUIT_IO_H_

#include <iosfwd>
#include <string>

#include "circuit/circuit.h"
#include "circuit/tseitin.h"
#include "util/status.h"

namespace ctsdd {

std::string SerializeCircuit(const Circuit& circuit);

StatusOr<Circuit> ParseCircuit(const std::string& text);

// DIMACS CNF ("p cnf <vars> <clauses>", clauses as 0-terminated literal
// lists; literal i stands for variable i-1).
StatusOr<Cnf> ParseDimacsCnf(const std::string& text);

std::string SerializeDimacsCnf(const Cnf& cnf);

}  // namespace ctsdd

#endif  // CTSDD_CIRCUIT_IO_H_
