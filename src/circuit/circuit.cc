#include "circuit/circuit.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/logging.h"

namespace ctsdd {

const char* GateKindName(GateKind kind) {
  switch (kind) {
    case GateKind::kConstFalse:
      return "false";
    case GateKind::kConstTrue:
      return "true";
    case GateKind::kVar:
      return "var";
    case GateKind::kNot:
      return "not";
    case GateKind::kAnd:
      return "and";
    case GateKind::kOr:
      return "or";
  }
  return "?";
}

int Circuit::AddGate(Gate gate) {
  for (int input : gate.inputs) {
    CTSDD_CHECK_GE(input, 0);
    CTSDD_CHECK_LT(input, num_gates());
  }
  gates_.push_back(std::move(gate));
  return num_gates() - 1;
}

int Circuit::VarGate(int var) {
  CTSDD_CHECK_GE(var, 0);
  if (var >= static_cast<int>(var_gate_.size())) {
    var_gate_.resize(var + 1, -1);
  }
  if (var_gate_[var] < 0) {
    var_gate_[var] = AddGate({GateKind::kVar, var, {}});
    num_vars_ = std::max(num_vars_, var + 1);
  }
  return var_gate_[var];
}

int Circuit::ConstGate(bool value) {
  return AddGate(
      {value ? GateKind::kConstTrue : GateKind::kConstFalse, -1, {}});
}

int Circuit::NotGate(int input) {
  return AddGate({GateKind::kNot, -1, {input}});
}

int Circuit::AndGate(std::vector<int> inputs) {
  CTSDD_CHECK(!inputs.empty()) << "AND gate needs at least one input";
  return AddGate({GateKind::kAnd, -1, std::move(inputs)});
}

int Circuit::OrGate(std::vector<int> inputs) {
  CTSDD_CHECK(!inputs.empty()) << "OR gate needs at least one input";
  return AddGate({GateKind::kOr, -1, std::move(inputs)});
}

void Circuit::SetOutput(int gate) {
  CTSDD_CHECK_GE(gate, 0);
  CTSDD_CHECK_LT(gate, num_gates());
  output_ = gate;
}

void Circuit::DeclareVars(int n) { num_vars_ = std::max(num_vars_, n); }

std::vector<int> Circuit::VarsBelow(int gate) const {
  CTSDD_CHECK_GE(gate, 0);
  CTSDD_CHECK_LT(gate, num_gates());
  std::vector<bool> reached(num_gates(), false);
  std::vector<int> stack = {gate};
  reached[gate] = true;
  std::set<int> vars;
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    const Gate& g = gates_[id];
    if (g.kind == GateKind::kVar) vars.insert(g.var);
    for (int input : g.inputs) {
      if (!reached[input]) {
        reached[input] = true;
        stack.push_back(input);
      }
    }
  }
  return std::vector<int>(vars.begin(), vars.end());
}

bool Circuit::IsNnf() const {
  for (const Gate& g : gates_) {
    if (g.kind == GateKind::kNot) {
      const Gate& in = gates_[g.inputs[0]];
      if (in.kind != GateKind::kVar && in.kind != GateKind::kConstFalse &&
          in.kind != GateKind::kConstTrue) {
        return false;
      }
    }
  }
  return true;
}

Circuit Circuit::ToNnf() const {
  CTSDD_CHECK_GE(output_, 0) << "circuit has no output";
  Circuit out;
  out.DeclareVars(num_vars_);
  // memo[(id, negated)] -> new gate id
  std::vector<int> pos(num_gates(), -1);
  std::vector<int> neg(num_gates(), -1);

  // Iterative post-order over (gate, negated) pairs.
  struct Frame {
    int id;
    bool negated;
    size_t next_input = 0;
  };
  std::vector<Frame> stack;
  auto memo = [&](int id, bool negated) -> int& {
    return negated ? neg[id] : pos[id];
  };
  stack.push_back({output_, false});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const Gate& g = gates_[frame.id];
    if (memo(frame.id, frame.negated) >= 0) {
      stack.pop_back();
      continue;
    }
    switch (g.kind) {
      case GateKind::kConstFalse:
        memo(frame.id, frame.negated) = out.ConstGate(frame.negated);
        stack.pop_back();
        break;
      case GateKind::kConstTrue:
        memo(frame.id, frame.negated) = out.ConstGate(!frame.negated);
        stack.pop_back();
        break;
      case GateKind::kVar: {
        const int var_gate = out.VarGate(g.var);
        memo(frame.id, frame.negated) =
            frame.negated ? out.NotGate(var_gate) : var_gate;
        stack.pop_back();
        break;
      }
      case GateKind::kNot: {
        const int child = g.inputs[0];
        const bool child_neg = !frame.negated;
        if (memo(child, child_neg) < 0) {
          stack.push_back({child, child_neg});
        } else {
          memo(frame.id, frame.negated) = memo(child, child_neg);
          stack.pop_back();
        }
        break;
      }
      case GateKind::kAnd:
      case GateKind::kOr: {
        if (frame.next_input < g.inputs.size()) {
          const int child = g.inputs[frame.next_input++];
          if (memo(child, frame.negated) < 0) {
            stack.push_back({child, frame.negated});
          }
          break;
        }
        std::vector<int> inputs;
        inputs.reserve(g.inputs.size());
        for (int input : g.inputs) {
          inputs.push_back(memo(input, frame.negated));
        }
        const bool make_and = (g.kind == GateKind::kAnd) != frame.negated;
        memo(frame.id, frame.negated) = make_and
                                            ? out.AndGate(std::move(inputs))
                                            : out.OrGate(std::move(inputs));
        stack.pop_back();
        break;
      }
    }
  }
  out.SetOutput(pos[output_] >= 0 ? pos[output_] : neg[output_]);
  CTSDD_CHECK(out.IsNnf());
  return out;
}

Status Circuit::Validate() const {
  if (output_ < 0 || output_ >= num_gates()) {
    return Status::FailedPrecondition("circuit output not set");
  }
  std::vector<bool> var_seen(num_vars_, false);
  for (int id = 0; id < num_gates(); ++id) {
    const Gate& g = gates_[id];
    for (int input : g.inputs) {
      if (input < 0 || input >= id) {
        return Status::Internal("gate inputs must precede the gate");
      }
    }
    switch (g.kind) {
      case GateKind::kConstFalse:
      case GateKind::kConstTrue:
        if (!g.inputs.empty()) return Status::Internal("constant with inputs");
        break;
      case GateKind::kVar:
        if (!g.inputs.empty()) return Status::Internal("variable with inputs");
        if (g.var < 0 || g.var >= num_vars_) {
          return Status::Internal("variable index out of range");
        }
        if (var_seen[g.var]) {
          return Status::Internal("duplicate gate for variable " +
                                  std::to_string(g.var));
        }
        var_seen[g.var] = true;
        break;
      case GateKind::kNot:
        if (g.inputs.size() != 1) return Status::Internal("NOT arity != 1");
        break;
      case GateKind::kAnd:
      case GateKind::kOr:
        if (g.inputs.empty()) return Status::Internal("empty AND/OR gate");
        break;
    }
  }
  return Status::Ok();
}

std::string Circuit::DebugString() const {
  std::ostringstream os;
  os << "Circuit(vars=" << num_vars_ << ", gates=" << num_gates()
     << ", output=g" << output_ << ")";
  for (int id = 0; id < num_gates(); ++id) {
    const Gate& g = gates_[id];
    os << "\n  g" << id << " = " << GateKindName(g.kind);
    if (g.kind == GateKind::kVar) os << " x" << g.var;
    for (int input : g.inputs) os << " g" << input;
  }
  return os.str();
}

}  // namespace ctsdd
