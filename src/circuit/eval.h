// Circuit evaluation under total variable assignments.

#ifndef CTSDD_CIRCUIT_EVAL_H_
#define CTSDD_CIRCUIT_EVAL_H_

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"

namespace ctsdd {

// Evaluates the circuit; assignment[v] is the value of variable v. The
// assignment must cover all of the circuit's variables.
bool Evaluate(const Circuit& circuit, const std::vector<bool>& assignment);

// Evaluates with variable v reading bit v of `mask` (requires
// circuit.num_vars() <= 64).
bool EvaluateMask(const Circuit& circuit, uint64_t mask);

// Values of every gate under the assignment (indexable by gate id).
std::vector<bool> EvaluateAllGates(const Circuit& circuit,
                                   const std::vector<bool>& assignment);

// Brute-force model count over all 2^num_vars assignments
// (requires num_vars <= 30; intended for tests).
uint64_t BruteForceModelCount(const Circuit& circuit);

// Brute-force semantic equivalence test (requires <= 30 shared vars; the
// circuits are compared over the union of their variable sets).
bool BruteForceEquivalent(const Circuit& a, const Circuit& b);

}  // namespace ctsdd

#endif  // CTSDD_CIRCUIT_EVAL_H_
