// Named circuit families from the paper and the width-parameterized
// workload families used by the benchmark harnesses.
//
// Variable numbering conventions are documented per family; helper structs
// expose the index maps so tests and benches can address variables by role.

#ifndef CTSDD_CIRCUIT_FAMILIES_H_
#define CTSDD_CIRCUIT_FAMILIES_H_

#include <vector>

#include "circuit/circuit.h"

namespace ctsdd {

// ---------------------------------------------------------------------------
// Disjointness (paper (7)): D_n(X, Y) = AND_i (!x_i | !y_i), with x_i = i
// and y_i = n + i. Its communication matrix w.r.t. (X, Y) has rank 2^n (8).
Circuit DisjointnessCircuit(int n);

// Complement of disjointness: OR_i (x_i & y_i) — the "intersection"
// function C'_0 appearing in the proof of Theorem 5.
Circuit IntersectionCircuit(int n);

// ---------------------------------------------------------------------------
// The H^i_{k,n} chain functions of Section 4.1. Variable layout:
//   x_l        -> l - 1                      (l in [n])
//   y_m        -> n + (m - 1)                (m in [n])
//   z^i_{l,m}  -> 2n + (i-1)*n^2 + (l-1)*n + (m-1)   (i in [k]; l, m in [n])
// Every H^i_{k,n} circuit is built over the full variable set (2n + k*n^2
// variables declared) so the family shares one numbering.
struct HFamilyVars {
  int k;
  int n;
  int X(int l) const;        // l in [1, n]
  int Y(int m) const;        // m in [1, n]
  int Z(int i, int l, int m) const;  // i in [1, k]
  int TotalVars() const;
};

// H^0_{k,n}(X, Z^1)       = OR_{l,m} (x_l & z^1_{l,m})        for i == 0
// H^i_{k,n}(Z^i, Z^{i+1}) = OR_{l,m} (z^i_{l,m} & z^{i+1}_{l,m}) for 0<i<k
// H^k_{k,n}(Z^k, Y)       = OR_{l,m} (z^k_{l,m} & y_m)        for i == k
Circuit HChainCircuit(int k, int n, int i);

// ---------------------------------------------------------------------------
// Indirect storage access (Appendix A). Valid (k, m) pairs satisfy
// 2^k * m = 2^m, e.g., (1,2), (2,4), (5,8), (12,16); n = k + 2^m.
// Variable layout: y_1..y_k -> 0..k-1; z_1..z_{2^m} -> k..k+2^m-1, where
// block i (i in [1, 2^k]) of the storage consists of
// x_{i,j} = z_{(i-1)*m + j} (j in [1, m]).
struct IsaParams {
  int k;
  int m;
  bool Valid() const;        // 2^k * m == 2^m
  int NumVars() const;       // k + 2^m
  int YVar(int a) const;     // a in [1, k]
  int ZVar(int j) const;     // j in [1, 2^m]
  int XVar(int i, int j) const;  // block i in [1, 2^k], bit j in [1, m]
};

Circuit IsaCircuit(const IsaParams& params);

// ---------------------------------------------------------------------------
// Miscellaneous standard functions.

// Odd parity of n variables (vars 0..n-1), built as a chain of XOR blocks.
Circuit ParityCircuit(int n);

// Threshold-t of n variables: true iff at least t inputs are true. Built by
// the standard O(n*t) dynamic-programming network.
Circuit ThresholdCircuit(int n, int t);

// Majority = Threshold(n, ceil((n+1)/2)).
Circuit MajorityCircuit(int n);

// ---------------------------------------------------------------------------
// Width-parameterized workload families (benchmark substrates).

// Banded CNF: AND_{i=0}^{n-band} OR(x_i, ..., x_{i+band-1}).
// Circuit pathwidth O(band): the natural circuit has a path-like primal
// graph. Workload for the CPW(O(1)) = OBDD(O(1)) region of Figure 1.
Circuit BandedCnfCircuit(int n, int band);

// Tree CNF: variables at the nodes of a complete binary tree with
// `num_leaves` leaves; one clause (x_v | x_left(v) | x_right(v)) per
// internal node v. Circuit treewidth O(1) but pathwidth Theta(log n):
// workload for the CTW(O(1)) \ CPW(O(1)) region of Figure 1.
Circuit TreeCnfCircuit(int num_leaves);

// Chained conjunction-of-equalities ladder of width k: variables arranged
// in an n x k grid; F = AND over rows of OR over the row's window pairs.
// Primal treewidth O(k); used for the Result 1 linear-size sweep.
Circuit LadderCircuit(int n, int k);

}  // namespace ctsdd

#endif  // CTSDD_CIRCUIT_FAMILIES_H_
